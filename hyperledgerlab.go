// Package hyperledgerlab is a faithful, laptop-scale reproduction of
// "Why Do My Blockchain Transactions Fail? A Study of Hyperledger
// Fabric" (Chacko, Mayer, Jacobsen — SIGMOD 2021).
//
// It bundles a deterministic discrete-event simulation of a complete
// Fabric 1.4 network — endorsing peers with versioned world-state
// replicas (LevelDB- and CouchDB-style backends), a Kafka/Raft/solo
// ordering service with a block cutter, clients, VSCC/MVCC/phantom
// validation — together with the paper's four use-case chaincodes
// (EHR, DV, SCM, DRM), its chaincode/workload generator (genChain),
// the three research forks it evaluates (Fabric++, Streamchain,
// FabricSharp), and an experiment harness that regenerates every
// table and figure of the evaluation.
//
// Quick start:
//
//	cfg := hyperledgerlab.DefaultConfig()
//	cfg.Chaincode = hyperledgerlab.EHRChaincode()
//	cfg.Workload = hyperledgerlab.EHRWorkload(1)
//	nw, err := hyperledgerlab.NewNetwork(cfg)
//	if err != nil { ... }
//	report := nw.Run()
//	fmt.Println(report)
//
// Failure semantics follow the paper's §3 exactly: endorsement policy
// failures (Eq. 1), MVCC read conflicts split into intra-block
// (Eq. 3) and inter-block (Eq. 4), and phantom read conflicts
// (Eq. 5). No failure rate is scripted — every failure emerges from
// the Execute-Order-Validate protocol running against the calibrated
// cost model.
//
// # Client retries and effective metrics
//
// The paper's clients are fire-and-forget: a failed transaction is
// simply gone (§4.5). Real applications must detect the failure from
// commit events and resubmit — so the lab also models the client side
// of the story. Config.Retry selects a RetryPolicy (NoRetry,
// ImmediateRetry, ExponentialBackoff with deterministic jitter, any
// policy truncated by GiveUpAfter, or the AIMD AdaptivePolicy that
// watches each client's windowed failure rate and grows/shrinks its
// backoff); clients then track pending transactions, listen for
// commit events from the metrics peer, and resubmit failures on the
// policy's backoff schedule. Config.RetryBudget adds a per-client
// token bucket that rate-limits resubmissions regardless of policy
// (deferring or dropping over-budget retries). Config.Backpressure
// adds the coordinated half: the ordering service condenses its own
// backlog into a congestion hint stamped onto commit events, clients
// pace resubmissions and new closed-loop work by hint×gain, and the
// hint feeds the orderer-hinted BackpressurePolicy (or blends into
// AdaptivePolicy via HintWeight). Config.Gossip adds the
// decentralized alternative — clients gossip their own windowed
// failure-rate estimates to sampled peers, merged by max-with-decay —
// and Config.HintSource selects which producer (orderer, gossip or
// their max) feeds the shared-hint path. Config.SplitSignal splits
// that scalar estimate into a conflict component (MVCC, phantom and
// endorsement failures — the backoff signal) and a congestion
// component (client timeouts, slow commits, orderer pressure — the
// pacing signal), so a contention-bound workload no longer paces
// against an idle orderer; RetryBudget.Adaptive calibrates the token
// bucket per workload from the same classes. Config.ClosedLoop
// switches from
// open-loop Poisson arrivals to a closed loop with
// Config.InFlightPerClient outstanding transactions per client and an
// optional Config.ThinkTime distribution (fixed, exponential or
// log-normal) between jobs.
//
// # Million-client scale: cohort drivers and channel sharding
//
// Config.CohortSize switches the client layer from one simulated
// state object per client to cohort drivers: one object drives N
// statistically identical clients, sharing the retry policy, token
// bucket, pacer and gossip state across the cohort while keeping
// per-member identity (transaction ids, rotation counters) exact.
// With a stateless retry policy and no shared-state subsystems a
// cohorted closed-loop run is byte-identical to the exact simulation
// — the equivalence is locked by a golden test — and memory stays
// within a constant factor as the population grows four orders of
// magnitude. Config.Channels shards the deployment the way production
// Fabric does: each channel gets its own ordering service, its own
// hash chain and its own world-state replica per peer, with chaincode
// keyspaces partitioned across channels by a deterministic hash and
// Config.CrossChannel injecting two-leg transactions that must
// succeed on both channels. The "scale" experiment (cmd/hyperlab -run
// scale) sweeps 10^2..10^6 clients over 1, 4 and 16 channels at a
// fixed total arrival rate.
//
// # Fault injection and node lifecycle
//
// Config.Faults arms a deterministic, seed-derived fault schedule:
// named scenarios (crash, partition, flaky, straggler, slowdb, chaos)
// or explicit FaultEvents that crash and restart peers or the ordering
// service, partition an organization away, inject stragglers, drop
// messages, or slow the state database for a window. Nodes carry a
// lifecycle state (up, crashed, restarting): a crash drops in-flight
// endorsements and queued work; a restart replays the missed ledger
// suffix before the node rejoins, and the replay latency is reported
// as recovery time. Clients gain endorsement/submission deadlines that
// surface as a CLIENT_TIMEOUT failure class feeding the retry path,
// and reports account per-fault-window downtime, deadline expiries,
// orphaned transactions (committed after their client gave up) and
// recovery latency. Schedules are virtual-time driven, so runs stay
// byte-for-byte deterministic at any parallelism, and a nil
// Config.Faults is byte-identical to a build without the subsystem.
// The "faults" experiment (cmd/hyperlab -run faults) sweeps scenario ×
// retry/coordination mode × chaincode; ad-hoc runs take -faults.
//
// Reports expose the resulting effective metrics next to the paper's
// chain-level ones: Goodput (first-submission success throughput),
// RetryAmplification (submissions per logical transaction),
// AvgEndToEnd (latency through every resubmission), GaveUp, a
// per-attempt failure breakdown, budget exhaustion/deferral counts,
// the adaptive-backoff trajectory summary, and the backpressure
// summary (hint trajectory, time spent paced). The "retry-policies"
// experiment (cmd/hyperlab -run retry-policies) sweeps policy × skew
// × block size over the four use-case chaincodes to answer what a
// failure actually costs end-to-end; "retry-cotune" co-tunes block
// size × retry-control strategy (static vs adaptive vs budgeted vs
// paced) × variant (Fabric 1.4 vs Fabric++ early abort);
// "retry-coordination" compares client-local control against the
// orderer-driven backpressure hints head-to-head. See
// docs/ARCHITECTURE.md and docs/EXPERIMENTS.md.
//
// # Test matrix
//
// Tier-1 is `go build ./... && go test ./...`. Beyond unit tests the
// suite pins behaviour four ways: golden-report regression tests lock
// the QuickOptions reports of all four use-case chaincodes on both
// database backends (internal/core/golden_test.go, -update-golden to
// regenerate); a conservation-invariant property test checks that
// every block's validation codes partition its transactions and that
// committed world-state versions advance strictly monotonically per
// key; determinism tests require identical reports for the same
// (config, seed) at any Options.Parallelism, with and without
// retries; and a fuzz test (go test -fuzz=FuzzGenChaincode
// ./internal/gen) with a checked-in seed corpus guards the chaincode
// generator. CI additionally smoke-runs every benchmark at
// -benchtime=1x and replays the fuzz corpus on every push.
//
// The module's import path is "repro"; this root package re-exports
// the public surface of the internal packages. Experiment sweeps run
// on a shared worker pool — see Options.Parallelism and
// Options.RunAll — and stay deterministic at any worker count because
// every (config, seed) cell owns its own rng.
package hyperledgerlab

import (
	"repro/internal/chaincode"
	"repro/internal/chaincodes/drm"
	"repro/internal/chaincodes/dv"
	"repro/internal/chaincodes/ehr"
	"repro/internal/chaincodes/scm"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gen"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/policy"
	"repro/internal/statedb"
	"repro/internal/workload"
)

// Core simulation types.
type (
	// Config describes one experiment run (topology, ordering
	// parameters, database type, endorsement policy, load, variant).
	Config = fabric.Config
	// Network is a fully wired simulated Fabric deployment.
	Network = fabric.Network
	// Report is the run summary: failure percentages by type,
	// latency, committed throughput.
	Report = metrics.Report
	// Variant is a pluggable Fabric fork (Fabric++, Streamchain,
	// FabricSharp); nil means stock Fabric 1.4.
	Variant = fabric.Variant
	// Chaincode is the smart-contract interface.
	Chaincode = chaincode.Chaincode
	// Stub is the world-state access object handed to chaincodes.
	Stub = chaincode.Stub
	// WorkloadGenerator produces the invocation stream of a run.
	WorkloadGenerator = workload.Generator
	// Invocation is one chaincode call.
	Invocation = workload.Invocation
	// ValidationCode is the per-transaction outcome on the chain.
	ValidationCode = ledger.ValidationCode
	// NetworkLink is a latency distribution for netem injection.
	NetworkLink = netem.Link
)

// Validation codes (§3 of the paper).
const (
	Valid                    = ledger.Valid
	MVCCConflictInterBlock   = ledger.MVCCConflictInterBlock
	MVCCConflictIntraBlock   = ledger.MVCCConflictIntraBlock
	PhantomReadConflict      = ledger.PhantomReadConflict
	EndorsementPolicyFailure = ledger.EndorsementPolicyFailure
	AbortedInOrdering        = ledger.AbortedInOrdering
	ClientTimeout            = ledger.ClientTimeout
)

// Database backends (§5.1.2).
const (
	LevelDB = statedb.LevelDB
	CouchDB = statedb.CouchDB
)

// Endorsement policies (Table 5).
const (
	P0 = policy.P0
	P1 = policy.P1
	P2 = policy.P2
	P3 = policy.P3
)

// Client retry/resubmission subsystem.
type (
	// RetryPolicy decides whether a client resubmits a failed
	// transaction and after what backoff.
	RetryPolicy = fabric.RetryPolicy
	// NoRetry is the paper's fire-and-forget client (§4.5).
	NoRetry = fabric.NoRetry
	// ImmediateRetry resubmits right away, up to MaxAttempts.
	ImmediateRetry = fabric.ImmediateRetry
	// ExponentialBackoff resubmits after a capped exponential backoff
	// with deterministic jitter drawn from the simulation rng.
	ExponentialBackoff = fabric.ExponentialBackoff
	// AdaptivePolicy is the AIMD controller: each client watches its
	// own failure rate over a sliding window and grows/shrinks its
	// backoff (multiplicative increase on aborts, additive decrease on
	// commits).
	AdaptivePolicy = fabric.AdaptivePolicy
	// RetryBudget rate-limits resubmissions per client with a token
	// bucket (Config.RetryBudget), independent of the retry policy.
	RetryBudget = fabric.RetryBudget
	// Backpressure enables the orderer-driven congestion signal
	// (Config.Backpressure): the ordering service publishes a smoothed
	// hint with each cut block and clients pace submissions from it.
	Backpressure = fabric.Backpressure
	// BackpressurePolicy is the orderer-hinted retry policy: backoff
	// slides from Floor to Ceiling with the shared congestion hint.
	BackpressurePolicy = fabric.BackpressurePolicy
	// Gossip enables the client-to-client congestion signal
	// (Config.Gossip): clients exchange windowed failure-rate
	// estimates with sampled peers, merged by max-with-decay.
	Gossip = fabric.Gossip
	// HintSource selects which producer feeds the congestion hint
	// (Config.HintSource): orderer, gossip, or their max.
	HintSource = fabric.HintSource
	// SplitSignal splits the client-side outcome estimate into a
	// conflict component (drives backoff) and a congestion component
	// (drives pacing) — see Config.SplitSignal; nil keeps the scalar
	// signal byte-identically.
	SplitSignal = fabric.SplitSignal
	// SignalClass is the control-theoretic class of a transaction
	// outcome: none (success), conflict, or congestion.
	SignalClass = fabric.SignalClass
	// SplitEstimate is a two-component windowed estimate (conflict,
	// congestion) gossiped and merged component-wise.
	SplitEstimate = fabric.SplitEstimate
	// ThinkTime is the closed-loop think-time distribution
	// (Config.ThinkTime): fixed, exponential or log-normal.
	ThinkTime = fabric.ThinkTime
	// ThinkTimeKind selects the think-time distribution.
	ThinkTimeKind = fabric.ThinkTimeKind
	// ClientDriver is the common surface of the exact per-client
	// simulation and the cohort drivers selected by Config.CohortSize
	// (see Network.Drivers).
	ClientDriver = fabric.ClientDriver
)

// Fault-injection subsystem (Config.Faults).
type (
	// Faults is the deterministic fault-injection schedule: a named
	// scenario or explicit events, plus client-side endorsement and
	// submission deadlines. nil disables the subsystem byte-identically.
	Faults = fabric.Faults
	// FaultEvent is one scheduled fault window (kind, onset, duration,
	// target, kind-specific parameters).
	FaultEvent = fabric.FaultEvent
	// FaultKind names a fault primitive (crash-peer, crash-orderer,
	// partition, straggler, loss, slowdb).
	FaultKind = fabric.FaultKind
	// NodeState is a node's lifecycle state (up, crashed, restarting).
	NodeState = fabric.NodeState
)

// Fault kinds for FaultEvent.Kind.
const (
	FaultCrashPeer    = fabric.FaultCrashPeer
	FaultCrashOrderer = fabric.FaultCrashOrderer
	FaultPartition    = fabric.FaultPartition
	FaultStraggler    = fabric.FaultStraggler
	FaultLoss         = fabric.FaultLoss
	FaultSlowDB       = fabric.FaultSlowDB
)

// Node lifecycle states.
const (
	NodeUp         = fabric.NodeUp
	NodeCrashed    = fabric.NodeCrashed
	NodeRestarting = fabric.NodeRestarting
)

// Think-time distributions for Config.ThinkTime.
const (
	ThinkNone        = fabric.ThinkNone
	ThinkFixed       = fabric.ThinkFixed
	ThinkExponential = fabric.ThinkExponential
	ThinkLogNormal   = fabric.ThinkLogNormal
)

// Congestion-hint producers for Config.HintSource.
const (
	HintOrderer = fabric.HintOrderer
	HintGossip  = fabric.HintGossip
	HintBoth    = fabric.HintBoth
)

// Signal classes for SplitSignal (ClassifyOutcome).
const (
	SignalNone       = fabric.SignalNone
	SignalConflict   = fabric.SignalConflict
	SignalCongestion = fabric.SignalCongestion
)

// ClassifyOutcome maps a transaction outcome to its control class:
// Valid is SignalNone, CLIENT_TIMEOUT is SignalCongestion, and every
// chain-reported failure (MVCC, phantom, endorsement, ordering abort)
// is SignalConflict.
func ClassifyOutcome(code ValidationCode) SignalClass { return fabric.ClassifyOutcome(code) }

// GiveUpAfter truncates any retry policy to at most n submissions.
func GiveUpAfter(inner RetryPolicy, n int) RetryPolicy { return fabric.GiveUpAfter(inner, n) }

// RetryPolicies returns the policy ladder compared by the
// retry-policies experiment.
func RetryPolicies() []RetryPolicy { return core.RetryPolicies() }

// CotunePolicy is one rung of the retry-control ladder compared by
// the retry-cotune experiment: a named policy + optional budget.
type CotunePolicy = core.CotunePolicy

// CotunePolicies returns the retry-control strategies (static,
// adaptive, budgeted, paced) compared by the retry-cotune experiment.
func CotunePolicies() []CotunePolicy { return core.CotunePolicies() }

// CoordinationPolicy is one rung of the coordination ladder compared
// by the retry-coordination experiment: a named policy + optional
// budget + optional orderer backpressure signal.
type CoordinationPolicy = core.CoordinationPolicy

// CoordinationPolicies returns the retry-control strategies (aimd,
// budgeted, hinted, hinted+budgeted) compared by the
// retry-coordination experiment.
func CoordinationPolicies() []CoordinationPolicy { return core.CoordinationPolicies() }

// ParseThinkTime parses a think-time spec such as "exp:500ms" or
// "lognormal:1s:0.8" (the CLI's -think syntax).
func ParseThinkTime(s string) (ThinkTime, error) { return fabric.ParseThinkTime(s) }

// ParseBackpressure parses a backpressure spec such as "on" or
// "0.5:1s:2s" (the CLI's -backpressure syntax); "off" and "" return
// nil (disabled).
func ParseBackpressure(s string) (*Backpressure, error) { return fabric.ParseBackpressure(s) }

// ParseGossip parses a gossip spec such as "on" or "2:500ms:0.5" (the
// CLI's -gossip syntax); "off" and "" return nil (disabled).
func ParseGossip(s string) (*Gossip, error) { return fabric.ParseGossip(s) }

// ParseHintSource parses a hint-source spec (the CLI's -hintsource
// syntax): "orderer" (also ""), "gossip" or "both".
func ParseHintSource(s string) (HintSource, error) { return fabric.ParseHintSource(s) }

// ParseSplitSignal parses a split-signal spec (the CLI's -split
// syntax): "on"/"default" enables the split with the default
// congestion-latency threshold, a duration such as "3s" overrides it,
// and "off"/"" return nil (scalar signal, byte-identical).
func ParseSplitSignal(s string) (*SplitSignal, error) { return fabric.ParseSplitSignal(s) }

// ParseFaults parses a fault spec (the CLI's -faults syntax): a
// scenario name ("crash", "chaos", ...), or comma-separated event
// clauses such as "crash-peer:1@5s+10s,partition@20s+5s,etimeout=2s";
// "off" and "" return nil (disabled).
func ParseFaults(s string) (*Faults, error) { return fabric.ParseFaults(s) }

// FaultScenarios lists the predefined fault scenario names accepted by
// Faults.Scenario and the -faults flag.
func FaultScenarios() []string { return fabric.FaultScenarios() }

// DefaultConfig returns the paper's Table 3 defaults on the C1
// cluster. Chaincode and Workload must still be set.
func DefaultConfig() Config { return fabric.DefaultConfig() }

// NewNetwork validates the config and builds the deployment.
func NewNetwork(cfg Config) (*Network, error) { return fabric.NewNetwork(cfg) }

// Use-case chaincodes (§4.3, Table 2).

// EHRChaincode returns the Electronic Health Records contract.
func EHRChaincode() Chaincode { return ehr.New() }

// EHRWorkload returns the EHR invocation stream with the given
// Zipfian skew.
func EHRWorkload(skew float64) WorkloadGenerator { return ehr.NewWorkload(skew) }

// DVChaincode returns the Digital Voting contract.
func DVChaincode() Chaincode { return dv.New() }

// DVWorkload returns the DV invocation stream.
func DVWorkload(skew float64) WorkloadGenerator { return dv.NewWorkload(skew) }

// SCMChaincode returns the Supply Chain Management contract.
func SCMChaincode() Chaincode { return scm.New() }

// SCMWorkload returns the SCM invocation stream.
func SCMWorkload(skew float64) WorkloadGenerator { return scm.NewWorkload(skew) }

// DRMChaincode returns the Digital Rights Management contract.
func DRMChaincode() Chaincode { return drm.New() }

// DRMWorkload returns the DRM invocation stream.
func DRMWorkload(skew float64) WorkloadGenerator { return drm.NewWorkload(skew) }

// Generated chaincodes and workloads (§4.4).
type (
	// ChaincodeSpec declares a generated chaincode.
	ChaincodeSpec = gen.ChaincodeSpec
	// FunctionSpec declares one generated function.
	FunctionSpec = gen.FunctionSpec
	// Mix is a transaction-type distribution.
	Mix = gen.Mix
)

// Workload mixes of §4.4.
var (
	ReadHeavy   = gen.ReadHeavy
	InsertHeavy = gen.InsertHeavy
	UpdateHeavy = gen.UpdateHeavy
	DeleteHeavy = gen.DeleteHeavy
	RangeHeavy  = gen.RangeHeavy
	UniformRU   = gen.UniformRU
)

// GenChainSpec returns the paper's default generated chaincode: five
// functions, 100k keys.
func GenChainSpec() ChaincodeSpec { return gen.GenChainSpec() }

// GenerateChaincode compiles a spec into an executable chaincode.
func GenerateChaincode(spec ChaincodeSpec) (Chaincode, error) { return gen.NewChaincode(spec) }

// RenderChaincode emits the generated chaincode as Go source.
func RenderChaincode(spec ChaincodeSpec, richQueries bool) (string, error) {
	return gen.Render(spec, richQueries)
}

// GenWorkload builds the generated workload stream.
func GenWorkload(spec ChaincodeSpec, mix Mix, skew float64) WorkloadGenerator {
	return gen.NewWorkload(spec, mix, skew)
}

// The compared systems (§4.5) and the experiment harness.
type (
	// System selects a Fabric build for comparison runs.
	System = core.System
	// Cluster is one of the two testbeds of §4.2.
	Cluster = core.Cluster
	// Options scales an experiment (virtual duration, seeds,
	// parallelism).
	Options = core.Options
	// Experiment reproduces one table or figure.
	Experiment = core.Experiment
	// Result is a seed-averaged run summary.
	Result = core.Result
	// Builder produces the config of one experiment cell for one
	// seed; batches of builders fan out via Options.RunAll.
	Builder = core.Builder
)

// Systems and clusters.
const (
	Fabric14         = core.Fabric14
	FabricPP         = core.FabricPP
	Streamchain      = core.Streamchain
	StreamchainNoRAM = core.StreamchainNoRAM
	FabricSharp      = core.FabricSharp
	C1               = core.C1
	C2               = core.C2
)

// Scale-sweep axes of the "scale" experiment: client population and
// channel count.
var (
	ScaleClients  = core.ScaleClients
	ScaleChannels = core.ScaleChannels
)

// Experiments lists every reproducible table and figure.
func Experiments() []Experiment { return core.Experiments() }

// LookupExperiment finds an experiment by id (e.g. "fig7").
func LookupExperiment(id string) (Experiment, error) { return core.Lookup(id) }

// FullOptions is the paper's regime (3 virtual minutes, 3 seeds).
func FullOptions() Options { return core.FullOptions() }

// QuickOptions is a fast smoke regime (30 virtual seconds, 1 seed).
func QuickOptions() Options { return core.QuickOptions() }

// SmokeOptions is the CI regime (5 virtual seconds, shrunken grids).
func SmokeOptions() Options { return core.SmokeOptions() }
