// Command benchjson converts `go test -bench` text output into a JSON
// array, so CI can archive benchmark baselines as machine-readable
// artifacts and diffs against BENCH_baseline.json stay scriptable.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x -benchmem ./... | go run ./cmd/benchjson > bench.json
//
// Each benchmark result line becomes one object:
//
//	{"name": "BenchmarkFig7_MVCCvsBlockSize", "procs": 8,
//	 "iterations": 1, "ns_op": 123456789,
//	 "bytes_op": 1048576, "allocs_op": 4242}
//
// bytes_op and allocs_op are present only when the run used -benchmem.
// Non-benchmark lines (experiment tables, PASS/ok trailers) are
// ignored, so the tool can consume the full test output unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	BytesOp    *int64  `json:"bytes_op,omitempty"`
	AllocsOp   *int64  `json:"allocs_op,omitempty"`
}

// benchLine matches "BenchmarkName-8   10   123 ns/op   456 B/op   7 allocs/op"
// (the -procs suffix and the memory columns are optional).
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// parse extracts every benchmark result from the reader.
func parse(sc *bufio.Scanner) ([]Result, error) {
	var out []Result
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		r := Result{Name: m[1], Procs: 1}
		if m[2] != "" {
			p, err := strconv.Atoi(m[2])
			if err != nil {
				return nil, fmt.Errorf("procs in %q: %w", sc.Text(), err)
			}
			r.Procs = p
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("iterations in %q: %w", sc.Text(), err)
		}
		r.Iterations = iters
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("ns/op in %q: %w", sc.Text(), err)
		}
		r.NsOp = ns
		rest := strings.Fields(m[5])
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseInt(rest[i], 10, 64)
			if err != nil {
				continue
			}
			switch rest[i+1] {
			case "B/op":
				r.BytesOp = &v
			case "allocs/op":
				r.AllocsOp = &v
			}
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	results, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
