// Command benchjson converts `go test -bench` text output into a JSON
// array, so CI can archive benchmark baselines as machine-readable
// artifacts and diffs against BENCH_baseline.json stay scriptable.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x -benchmem ./... | go run ./cmd/benchjson > bench.json
//
// Each benchmark result line becomes one object:
//
//	{"name": "BenchmarkFig7_MVCCvsBlockSize", "procs": 8,
//	 "iterations": 1, "ns_op": 123456789,
//	 "bytes_op": 1048576, "allocs_op": 4242}
//
// bytes_op and allocs_op are present only when the run used -benchmem.
// Non-benchmark lines (experiment tables, PASS/ok trailers) are
// ignored, so the tool can consume the full test output unfiltered.
//
// Compare mode turns the tool into a CI bench-delta gate:
//
//	go test -run '^$' -bench . -benchtime=1x ./... | go run ./cmd/benchjson -compare BENCH_baseline.json -threshold 25
//
// prints a per-benchmark ns/op delta table against the baseline and
// exits 1 when any benchmark regressed by more than the threshold
// percentage. Benchmarks present on only one side are listed but never
// fail the gate (new benchmarks have no baseline; retired ones have no
// current run).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	BytesOp    *int64  `json:"bytes_op,omitempty"`
	AllocsOp   *int64  `json:"allocs_op,omitempty"`
}

// benchLine matches "BenchmarkName-8   10   123 ns/op   456 B/op   7 allocs/op"
// (the -procs suffix and the memory columns are optional).
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// parse extracts every benchmark result from the reader.
func parse(sc *bufio.Scanner) ([]Result, error) {
	var out []Result
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		r := Result{Name: m[1], Procs: 1}
		if m[2] != "" {
			p, err := strconv.Atoi(m[2])
			if err != nil {
				return nil, fmt.Errorf("procs in %q: %w", sc.Text(), err)
			}
			r.Procs = p
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("iterations in %q: %w", sc.Text(), err)
		}
		r.Iterations = iters
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("ns/op in %q: %w", sc.Text(), err)
		}
		r.NsOp = ns
		rest := strings.Fields(m[5])
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseInt(rest[i], 10, 64)
			if err != nil {
				continue
			}
			switch rest[i+1] {
			case "B/op":
				r.BytesOp = &v
			case "allocs/op":
				r.AllocsOp = &v
			}
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

// delta is one compared benchmark: the ns/op change from baseline to
// current, in percent (positive = slower).
type delta struct {
	name             string
	baseNs, curNs    float64
	pct              float64
	baseOnly, curNew bool
}

// compare matches current results against the baseline by name and
// computes per-benchmark ns/op deltas. Unmatched entries on either
// side are carried through flagged baseOnly/curNew.
func compare(current, baseline []Result) []delta {
	base := map[string]Result{}
	for _, r := range baseline {
		base[r.Name] = r
	}
	seen := map[string]bool{}
	var out []delta
	for _, r := range current {
		seen[r.Name] = true
		b, ok := base[r.Name]
		if !ok {
			out = append(out, delta{name: r.Name, curNs: r.NsOp, curNew: true})
			continue
		}
		d := delta{name: r.Name, baseNs: b.NsOp, curNs: r.NsOp}
		if b.NsOp > 0 {
			d.pct = 100 * (r.NsOp - b.NsOp) / b.NsOp
		}
		out = append(out, d)
	}
	for _, b := range baseline {
		if !seen[b.Name] {
			out = append(out, delta{name: b.Name, baseNs: b.NsOp, baseOnly: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// report renders the delta table and returns the benchmarks that
// regressed beyond threshold percent.
func report(deltas []delta, threshold float64) (string, []string) {
	var sb strings.Builder
	var regressed []string
	fmt.Fprintf(&sb, "%-60s %14s %14s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, d := range deltas {
		switch {
		case d.curNew:
			fmt.Fprintf(&sb, "%-60s %14s %14.0f %9s\n", d.name, "-", d.curNs, "new")
		case d.baseOnly:
			fmt.Fprintf(&sb, "%-60s %14.0f %14s %9s\n", d.name, d.baseNs, "-", "gone")
		default:
			mark := ""
			if d.pct > threshold {
				mark = "  << REGRESSION"
				regressed = append(regressed, fmt.Sprintf("%s (+%.1f%%)", d.name, d.pct))
			}
			fmt.Fprintf(&sb, "%-60s %14.0f %14.0f %+8.1f%%%s\n", d.name, d.baseNs, d.curNs, d.pct, mark)
		}
	}
	return sb.String(), regressed
}

func main() {
	baselinePath := flag.String("compare", "", "baseline JSON (a previous benchjson run); compare instead of emitting JSON")
	threshold := flag.Float64("threshold", 25, "compare mode: fail on ns/op regressions above this percentage")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	results, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var baseline []Result
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", *baselinePath, err)
			os.Exit(1)
		}
		table, regressed := report(compare(results, baseline), *threshold)
		fmt.Print(table)
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% ns/op:\n",
				len(regressed), *threshold)
			for _, r := range regressed {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
