package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
BenchmarkFig7_MVCCvsBlockSize-8   	       1	123456789 ns/op	 1048576 B/op	    4242 allocs/op
some experiment table row   12  34
BenchmarkSingleRun_EHR   	       2	  5000000 ns/op
BenchmarkExpAllParallelism/parallel=numcpu-8         	       1	  777 ns/op	 10 B/op	 3 allocs/op
PASS
ok  	repro	12.3s
`
	got, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(got), got)
	}
	r := got[0]
	if r.Name != "BenchmarkFig7_MVCCvsBlockSize" || r.Procs != 8 ||
		r.Iterations != 1 || r.NsOp != 123456789 {
		t.Errorf("first result mismatch: %+v", r)
	}
	if r.BytesOp == nil || *r.BytesOp != 1048576 || r.AllocsOp == nil || *r.AllocsOp != 4242 {
		t.Errorf("memory columns mismatch: %+v", r)
	}
	if got[1].BytesOp != nil || got[1].AllocsOp != nil {
		t.Errorf("no-benchmem line grew memory columns: %+v", got[1])
	}
	if got[1].Procs != 1 {
		t.Errorf("missing -procs suffix should default to 1: %+v", got[1])
	}
	if got[2].Name != "BenchmarkExpAllParallelism/parallel=numcpu" {
		t.Errorf("sub-benchmark name mismatch: %q", got[2].Name)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkStable", NsOp: 1000},
		{Name: "BenchmarkRegressed", NsOp: 1000},
		{Name: "BenchmarkImproved", NsOp: 1000},
		{Name: "BenchmarkRetired", NsOp: 500},
	}
	current := []Result{
		{Name: "BenchmarkStable", NsOp: 1100},    // +10%: inside threshold
		{Name: "BenchmarkRegressed", NsOp: 1400}, // +40%: flagged
		{Name: "BenchmarkImproved", NsOp: 600},   // -40%: never flagged
		{Name: "BenchmarkAdded", NsOp: 42},       // no baseline: never flagged
	}
	deltas := compare(current, baseline)
	if len(deltas) != 5 {
		t.Fatalf("compared %d benchmarks, want 5: %+v", len(deltas), deltas)
	}
	table, regressed := report(deltas, 25)
	if len(regressed) != 1 || !strings.Contains(regressed[0], "BenchmarkRegressed") {
		t.Fatalf("regressed = %v, want exactly BenchmarkRegressed", regressed)
	}
	if !strings.Contains(regressed[0], "+40.0%") {
		t.Errorf("regression %q should carry the delta percentage", regressed[0])
	}
	for _, want := range []string{"REGRESSION", "new", "gone", "BenchmarkRetired"} {
		if !strings.Contains(table, want) {
			t.Errorf("delta table missing %q:\n%s", want, table)
		}
	}
	if strings.Count(table, "REGRESSION") != 1 {
		t.Errorf("table flags %d regressions, want 1:\n%s", strings.Count(table, "REGRESSION"), table)
	}
}

func TestCompareAtThresholdPasses(t *testing.T) {
	deltas := compare(
		[]Result{{Name: "BenchmarkEdge", NsOp: 1250}},
		[]Result{{Name: "BenchmarkEdge", NsOp: 1000}},
	)
	if _, regressed := report(deltas, 25); len(regressed) != 0 {
		t.Errorf("exactly +25%% must not fail a 25%% threshold: %v", regressed)
	}
}

func TestParseRejectsNothing(t *testing.T) {
	got, err := parse(bufio.NewScanner(strings.NewReader("no benchmarks here\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d results from noise", len(got))
	}
}
