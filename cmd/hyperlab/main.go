// Command hyperlab regenerates the tables and figures of "Why Do My
// Blockchain Transactions Fail? A Study of Hyperledger Fabric"
// (SIGMOD 2021) from the simulated testbed.
//
// Usage:
//
//	hyperlab -list                      list all experiments
//	hyperlab -exp fig7                  quick regime (30 virtual s, 1 seed)
//	hyperlab -exp fig7 -full            paper regime (3 virtual min, 3 seeds)
//	hyperlab -exp all                   run everything (quick unless -full)
//	hyperlab -exp all -parallel 8       cap the worker pool (default: all cores)
//	hyperlab -run -chaincode ehr -rate 100 -block 50 -db leveldb -system fabric++
//	                                    one ad-hoc run with a report line
//	hyperlab -render                    emit a generated genChain chaincode
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	lab "repro"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gen"
	"repro/internal/statedb"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		exp       = flag.String("exp", "", "experiment id (table2, table4, fig4..fig26, or 'all')")
		full      = flag.Bool("full", false, "paper regime: 3 virtual minutes x 3 seeds (default: quick)")
		parallel  = flag.Int("parallel", 0, "simulations run concurrently per experiment (0 = all cores)")
		render    = flag.Bool("render", false, "print a generated genChain chaincode and exit")
		run       = flag.Bool("run", false, "run one ad-hoc configuration")
		ccName    = flag.String("chaincode", "ehr", "ad-hoc run: ehr|dv|scm|drm|genchain")
		rate      = flag.Float64("rate", 100, "ad-hoc run: arrival rate in tps")
		blockSize = flag.Int("block", 100, "ad-hoc run: block size")
		db        = flag.String("db", "couchdb", "ad-hoc run: couchdb|leveldb")
		system    = flag.String("system", "fabric", "ad-hoc run: fabric|fabric++|streamchain|fabricsharp")
		cluster   = flag.String("cluster", "C1", "ad-hoc run: C1|C2")
		skew      = flag.Float64("skew", 1, "ad-hoc run: Zipfian key skew")
		duration  = flag.Duration("duration", 30*time.Second, "ad-hoc run: virtual send window")
		seed      = flag.Int64("seed", 1, "ad-hoc run: random seed")
		dump      = flag.Int("dump", 0, "ad-hoc run: print JSON summaries of the first N blocks")
		verbose   = flag.Bool("v", false, "print per-seed progress")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Println("Available experiments (paper table/figure -> id):")
		for _, e := range lab.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
	case *render:
		src, err := lab.RenderChaincode(lab.GenChainSpec(), true)
		if err != nil {
			fatal(err)
		}
		fmt.Println(src)
	case *exp != "":
		runExperiments(*exp, *full, *verbose, *parallel)
	case *run:
		adhoc(*ccName, *rate, *blockSize, *db, *system, *cluster, *skew, *duration, *seed, *dump)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperlab:", err)
	os.Exit(1)
}

func runExperiments(id string, full, verbose bool, parallel int) {
	opts := lab.QuickOptions()
	regime := "quick regime (30 virtual s, 1 seed)"
	if full {
		opts = lab.FullOptions()
		regime = "paper regime (3 virtual min, 3 seeds)"
	}
	opts.Parallelism = parallel
	if verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}
	var exps []lab.Experiment
	if id == "all" {
		exps = lab.Experiments()
	} else {
		e, err := lab.LookupExperiment(id)
		if err != nil {
			fatal(err)
		}
		exps = []lab.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		fmt.Printf("== %s: %s [%s]\n", e.ID, e.Title, regime)
		out, err := e.Run(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func adhoc(ccName string, rate float64, blockSize int, db, system, cluster string, skew float64, duration time.Duration, seed int64, dump int) {
	cfg := fabric.DefaultConfig()

	switch strings.ToUpper(cluster) {
	case "C1":
		core.C1.Apply(&cfg)
	case "C2":
		core.C2.Apply(&cfg)
	default:
		fatal(fmt.Errorf("unknown cluster %q", cluster))
	}

	switch strings.ToLower(db) {
	case "couchdb":
		cfg.DBKind = statedb.CouchDB
	case "leveldb":
		cfg.DBKind = statedb.LevelDB
	default:
		fatal(fmt.Errorf("unknown database %q", db))
	}

	var sys core.System
	switch strings.ToLower(system) {
	case "fabric", "fabric-1.4":
		sys = core.Fabric14
	case "fabric++", "fabricpp":
		sys = core.FabricPP
	case "streamchain":
		sys = core.Streamchain
	case "fabricsharp", "fabric#":
		sys = core.FabricSharp
	default:
		fatal(fmt.Errorf("unknown system %q", system))
	}
	cfg.Variant = sys.Variant()

	switch strings.ToLower(ccName) {
	case "genchain":
		spec := gen.GenChainSpec()
		cfg.Chaincode = gen.MustChaincode(spec)
		cfg.Workload = gen.NewWorkload(spec, gen.UpdateHeavy, skew)
	default:
		f, err := core.UseCase(strings.ToLower(ccName))
		if err != nil {
			fatal(err)
		}
		cfg.Chaincode = f.New()
		cfg.Workload = f.Workload(skew)
	}

	cfg.Rate = rate
	cfg.BlockSize = blockSize
	cfg.Duration = duration
	cfg.Drain = duration
	cfg.Seed = seed
	// Keep full transaction payloads so the hash chain can be
	// re-verified after the run.
	cfg.StripAfterCommit = false

	nw, err := fabric.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	rep := nw.Run()
	fmt.Printf("%s on %s, %s, rate %.0f tps, block %d, db %s, skew %.1f (%v virtual, %v real)\n",
		sys, cluster, ccName, rate, blockSize, cfg.DBKind, skew,
		duration, time.Since(start).Round(time.Millisecond))
	fmt.Println(rep)
	if err := nw.Chain().Verify(); err != nil {
		fatal(fmt.Errorf("chain verification failed: %w", err))
	}
	fmt.Printf("chain: %d blocks, %d transactions, hash chain verified\n",
		nw.Chain().Height(), nw.Chain().TxCount())
	for n := uint64(1); n <= uint64(dump) && n < nw.Chain().Height(); n++ {
		summary, err := nw.Chain().Block(n).MarshalSummary()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(summary))
	}
}
