// Command hyperlab regenerates the tables and figures of "Why Do My
// Blockchain Transactions Fail? A Study of Hyperledger Fabric"
// (SIGMOD 2021) from the simulated testbed, plus the lab's own
// experiments (retry-policies, retry-cotune, retry-coordination,
// scale). See docs/EXPERIMENTS.md for every experiment id and its
// sweep axes.
//
// Usage:
//
//	hyperlab -list                      list all experiments
//	hyperlab -exp fig7                  quick regime (30 virtual s, 1 seed)
//	hyperlab -run retry-policies -quick same as -exp (-quick is the default regime)
//	hyperlab -run retry-cotune -smoke   smoke regime (5 virtual s, shrunken grid; CI)
//	hyperlab -exp fig7 -full            paper regime (3 virtual min, 3 seeds)
//	hyperlab -exp all                   run everything (quick unless -full)
//	hyperlab -exp all -parallel 8       cap the worker pool (default: all cores)
//	hyperlab -adhoc -chaincode ehr -rate 100 -block 50 -db leveldb -system fabric++
//	                                    one ad-hoc run with a report line
//	hyperlab -adhoc -retry adaptive -budget 1:3:drop -closedloop -think exp:500ms
//	                                    ad-hoc run with adaptive resubmission,
//	                                    a per-client retry budget and think time
//	hyperlab -adhoc -retry hinted -backpressure on
//	                                    ad-hoc run with orderer-driven
//	                                    backpressure hints pacing the clients
//	hyperlab -adhoc -retry hinted -backpressure on -gossip 2:500ms -hintsource gossip
//	                                    ad-hoc run paced by the gossiped
//	                                    client-to-client congestion signal
//	hyperlab -adhoc -retry hinted -backpressure on -gossip on -hintsource gossip -split on
//	                                    same stack with the signal split:
//	                                    conflicts drive backoff, congestion
//	                                    drives pacing
//	hyperlab -run scale                 cohort drivers x multi-channel sharding,
//	                                    10^2..10^6 simulated clients
//	hyperlab -adhoc -clients 100000 -cohort 1000 -channels 4 -crosschannel 0.1
//	                                    ad-hoc sharded run: 100k clients in
//	                                    cohorts of 1000 over 4 channels
//	hyperlab -run faults                fault injection: crash/partition/flaky/
//	                                    slowdb scenarios x coordination mode
//	hyperlab -adhoc -faults crash -retry hinted -backpressure on
//	                                    ad-hoc run under the seeded crash
//	                                    scenario with client deadlines
//	hyperlab -adhoc -faults 'partition:1@5s+10s,etimeout=2s'
//	                                    ad-hoc run with an explicit fault event
//	hyperlab -render                    emit a generated genChain chaincode
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	lab "repro"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gen"
	"repro/internal/statedb"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		exp        = flag.String("exp", "", "experiment id (table2, table4, fig4..fig26, retry-policies, or 'all')")
		runID      = flag.String("run", "", "experiment id to run (alias of -exp)")
		full       = flag.Bool("full", false, "paper regime: 3 virtual minutes x 3 seeds")
		quick      = flag.Bool("quick", false, "quick regime: 30 virtual s, 1 seed (the default; overrides -full)")
		smoke      = flag.Bool("smoke", false, "smoke regime: 5 virtual s, shrunken grids (CI; overrides -full and -quick)")
		parallel   = flag.Int("parallel", 0, "simulations run concurrently per experiment (0 = all cores)")
		render     = flag.Bool("render", false, "print a generated genChain chaincode and exit")
		adhocRun   = flag.Bool("adhoc", false, "run one ad-hoc configuration")
		ccName     = flag.String("chaincode", "ehr", "ad-hoc run: ehr|dv|scm|drm|genchain")
		rate       = flag.Float64("rate", 100, "ad-hoc run: arrival rate in tps")
		blockSize  = flag.Int("block", 100, "ad-hoc run: block size")
		db         = flag.String("db", "couchdb", "ad-hoc run: couchdb|leveldb")
		system     = flag.String("system", "fabric", "ad-hoc run: fabric|fabric++|streamchain|fabricsharp")
		cluster    = flag.String("cluster", "C1", "ad-hoc run: C1|C2")
		skew       = flag.Float64("skew", 1, "ad-hoc run: Zipfian key skew")
		duration   = flag.Duration("duration", 30*time.Second, "ad-hoc run: virtual send window")
		seed       = flag.Int64("seed", 1, "ad-hoc run: random seed")
		dump       = flag.Int("dump", 0, "ad-hoc run: print JSON summaries of the first N blocks")
		retry      = flag.String("retry", "none", "ad-hoc run: retry policy none|immediate|backoff|adaptive|hinted")
		budget     = flag.String("budget", "", "ad-hoc run: retry budget 'rate:burst[:drop|defer][:adaptive]', e.g. 1:3, 2:5:drop, 1:3:drop:adaptive (empty = unlimited; default mode defer)")
		backpress  = flag.String("backpressure", "", "ad-hoc run: orderer congestion hints off|on|'smoothing:gain[:maxpause]', e.g. 0.5:1s:2s (empty = off)")
		gossip     = flag.String("gossip", "", "ad-hoc run: client-to-client congestion gossip off|on|'fanout:period[:decay]', e.g. 2:500ms:0.5 (empty = off)")
		hintSource = flag.String("hintsource", "", "ad-hoc run: congestion hint producer orderer|gossip|both (empty = orderer)")
		split      = flag.String("split", "", "ad-hoc run: split conflict/congestion signal off|on|<latency>, e.g. 3s sets the congestion-latency threshold (empty = off)")
		closedLoop = flag.Bool("closedloop", false, "ad-hoc run: closed-loop clients instead of Poisson arrivals")
		inflight   = flag.Int("inflight", 1, "ad-hoc run: closed-loop in-flight window per client")
		think      = flag.String("think", "none", "ad-hoc run: closed-loop think time none|fixed:<dur>|exp:<dur>|lognormal:<dur>[:sigma]")
		clients    = flag.Int("clients", 0, "ad-hoc run: simulated client population (0 = cluster default)")
		cohort     = flag.Int("cohort", 0, "ad-hoc run: clients per cohort driver (0/1 = exact per-client simulation)")
		channels   = flag.Int("channels", 1, "ad-hoc run: channel count; each channel gets its own orderer and ledger")
		crossCh    = flag.Float64("crosschannel", 0, "ad-hoc run: fraction of transactions spanning two channels (needs -channels >= 2)")
		faults     = flag.String("faults", "", "ad-hoc run: fault schedule off|crash|partition|flaky|straggler|slowdb|chaos or 'kind[:target]@start+dur[:param][,...]' with etimeout=/stimeout= clauses (empty = off)")
		verbose    = flag.Bool("v", false, "print per-seed progress")
	)
	flag.Parse()

	id := *exp
	if *runID != "" {
		if id != "" && id != *runID {
			fatal(fmt.Errorf("conflicting -exp %q and -run %q", *exp, *runID))
		}
		id = *runID
	}
	switch {
	case *list:
		fmt.Println("Available experiments (paper table/figure -> id):")
		for _, e := range lab.Experiments() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
	case *render:
		src, err := lab.RenderChaincode(lab.GenChainSpec(), true)
		if err != nil {
			fatal(err)
		}
		fmt.Println(src)
	case id != "":
		runExperiments(id, *full && !*quick, *smoke, *verbose, *parallel)
	case *adhocRun:
		adhoc(adhocOptions{
			ccName: *ccName, rate: *rate, blockSize: *blockSize,
			db: *db, system: *system, cluster: *cluster, skew: *skew,
			duration: *duration, seed: *seed, dump: *dump,
			retry: *retry, budget: *budget, think: *think,
			backpressure: *backpress, gossip: *gossip, hintSource: *hintSource,
			split:      *split,
			closedLoop: *closedLoop, inflight: *inflight,
			clients: *clients, cohort: *cohort,
			channels: *channels, crossChannel: *crossCh,
			faults: *faults,
		})
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperlab:", err)
	os.Exit(1)
}

func runExperiments(id string, full, smoke, verbose bool, parallel int) {
	opts := lab.QuickOptions()
	regime := "quick regime (30 virtual s, 1 seed)"
	if full {
		opts = lab.FullOptions()
		regime = "paper regime (3 virtual min, 3 seeds)"
	}
	if smoke {
		opts = lab.SmokeOptions()
		regime = "smoke regime (5 virtual s, shrunken grid)"
	}
	opts.Parallelism = parallel
	if verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}
	var exps []lab.Experiment
	if id == "all" {
		exps = lab.Experiments()
	} else {
		e, err := lab.LookupExperiment(id)
		if err != nil {
			fatal(err)
		}
		exps = []lab.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		fmt.Printf("== %s: %s [%s]\n", e.ID, e.Title, regime)
		out, err := e.Run(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// adhocOptions bundles the ad-hoc runner's knobs.
type adhocOptions struct {
	ccName, db, system, cluster, retry string
	budget, think, backpressure        string
	gossip, hintSource, faults, split  string
	rate, skew, crossChannel           float64
	blockSize, dump, inflight          int
	clients, cohort, channels          int
	duration                           time.Duration
	seed                               int64
	closedLoop                         bool
}

// parseBudget parses the -budget syntax
// "rate:burst[:drop|defer][:adaptive]" into a RetryBudget ("" = no
// budget).
func parseBudget(s string) (*fabric.RetryBudget, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return nil, fmt.Errorf("budget %q: want rate:burst[:drop|defer][:adaptive]", s)
	}
	var b fabric.RetryBudget
	rate, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return nil, fmt.Errorf("budget rate %q: %w", parts[0], err)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("budget rate must be > 0 (got %g); omit -budget for no budget", rate)
	}
	b.RefillPerSec = rate
	burst, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return nil, fmt.Errorf("budget burst %q: %w", parts[1], err)
	}
	if burst <= 0 {
		return nil, fmt.Errorf("budget burst must be > 0 (got %g)", burst)
	}
	b.Burst = burst
	for _, part := range parts[2:] {
		switch part {
		case "drop":
			b.DropOnEmpty = true
		case "defer":
		case "adaptive":
			b.Adaptive = true
		default:
			return nil, fmt.Errorf("budget mode %q: want drop, defer or adaptive", part)
		}
	}
	return &b, b.Validate()
}

func adhoc(o adhocOptions) {
	cfg := fabric.DefaultConfig()

	switch strings.ToUpper(o.cluster) {
	case "C1":
		core.C1.Apply(&cfg)
	case "C2":
		core.C2.Apply(&cfg)
	default:
		fatal(fmt.Errorf("unknown cluster %q", o.cluster))
	}

	switch strings.ToLower(o.db) {
	case "couchdb":
		cfg.DBKind = statedb.CouchDB
	case "leveldb":
		cfg.DBKind = statedb.LevelDB
	default:
		fatal(fmt.Errorf("unknown database %q", o.db))
	}

	var sys core.System
	switch strings.ToLower(o.system) {
	case "fabric", "fabric-1.4":
		sys = core.Fabric14
	case "fabric++", "fabricpp":
		sys = core.FabricPP
	case "streamchain":
		sys = core.Streamchain
	case "fabricsharp", "fabric#":
		sys = core.FabricSharp
	default:
		fatal(fmt.Errorf("unknown system %q", o.system))
	}
	cfg.Variant = sys.Variant()

	switch strings.ToLower(o.retry) {
	case "none", "":
		cfg.Retry = fabric.NoRetry{}
	case "immediate":
		cfg.Retry = fabric.ImmediateRetry{MaxAttempts: 3}
	case "backoff":
		cfg.Retry = fabric.ExponentialBackoff{
			Initial: 200 * time.Millisecond, Cap: 2 * time.Second,
			MaxAttempts: 5, Jitter: 0.2,
		}
	case "adaptive":
		cfg.Retry = fabric.AdaptivePolicy{MaxAttempts: 5, Jitter: 0.2}
	case "hinted":
		cfg.Retry = fabric.BackpressurePolicy{MaxAttempts: 5, Jitter: 0.2}
	default:
		fatal(fmt.Errorf("unknown retry policy %q", o.retry))
	}
	budget, err := parseBudget(o.budget)
	if err != nil {
		fatal(err)
	}
	cfg.RetryBudget = budget
	bp, err := fabric.ParseBackpressure(o.backpressure)
	if err != nil {
		fatal(err)
	}
	cfg.Backpressure = bp
	gp, err := fabric.ParseGossip(o.gossip)
	if err != nil {
		fatal(err)
	}
	cfg.Gossip = gp
	src, err := fabric.ParseHintSource(o.hintSource)
	if err != nil {
		fatal(err)
	}
	cfg.HintSource = src
	sp, err := fabric.ParseSplitSignal(o.split)
	if err != nil {
		fatal(err)
	}
	cfg.SplitSignal = sp
	// The hinted policy needs a signal that actually reaches the hint
	// path: the orderer's (requires -backpressure) or the gossip
	// estimate (requires -gossip AND a -hintsource that uses it).
	ordererFeeds := bp != nil && src != fabric.HintGossip
	gossipFeeds := gp != nil && src != fabric.HintOrderer
	if _, hinted := cfg.Retry.(fabric.BackpressurePolicy); hinted && !ordererFeeds && !gossipFeeds {
		fmt.Fprintln(os.Stderr, "hyperlab: note: -retry hinted without a hint producer (-backpressure, or -gossip with -hintsource gossip|both) degenerates to a constant floor backoff")
	}
	flt, err := fabric.ParseFaults(o.faults)
	if err != nil {
		fatal(err)
	}
	cfg.Faults = flt
	thinkTime, err := fabric.ParseThinkTime(o.think)
	if err != nil {
		fatal(err)
	}
	cfg.ThinkTime = thinkTime
	cfg.ClosedLoop = o.closedLoop
	cfg.InFlightPerClient = o.inflight
	if o.clients > 0 {
		cfg.Clients = o.clients
	}
	cfg.CohortSize = o.cohort
	cfg.Channels = o.channels
	cfg.CrossChannel = o.crossChannel

	switch strings.ToLower(o.ccName) {
	case "genchain":
		spec := gen.GenChainSpec()
		cfg.Chaincode = gen.MustChaincode(spec)
		cfg.Workload = gen.NewWorkload(spec, gen.UpdateHeavy, o.skew)
	default:
		f, err := core.UseCase(strings.ToLower(o.ccName))
		if err != nil {
			fatal(err)
		}
		cfg.Chaincode = f.New()
		cfg.Workload = f.Workload(o.skew)
	}

	cfg.Rate = o.rate
	cfg.BlockSize = o.blockSize
	cfg.Duration = o.duration
	cfg.Drain = o.duration
	cfg.Seed = o.seed
	// Keep full transaction payloads so the hash chain can be
	// re-verified after the run.
	cfg.StripAfterCommit = false

	nw, err := fabric.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	rep := nw.Run()
	mode := "open-loop"
	if o.closedLoop {
		mode = fmt.Sprintf("closed-loop(%d)", o.inflight)
	}
	if o.cohort > 1 {
		mode += fmt.Sprintf(", %d clients in cohorts of %d", cfg.Clients, o.cohort)
	}
	if o.channels > 1 {
		mode += fmt.Sprintf(", %d channels (%.0f%% cross-channel)", o.channels, 100*o.crossChannel)
	}
	fmt.Printf("%s on %s, %s, rate %.0f tps, block %d, db %s, skew %.1f, retry %s, %s (%v virtual, %v real)\n",
		sys, o.cluster, o.ccName, o.rate, o.blockSize, cfg.DBKind, o.skew,
		cfg.Retry.Name(), mode,
		o.duration, time.Since(start).Round(time.Millisecond))
	fmt.Println(rep)
	if _, none := cfg.Retry.(fabric.NoRetry); !none || cfg.ClosedLoop {
		fmt.Printf("effective: jobs=%d eventual-valid=%d gave-up=%d attempts=%d e2e=%v\n",
			rep.Jobs, rep.EventualValid, rep.GaveUp, rep.Attempts,
			rep.AvgEndToEnd.Round(time.Millisecond))
	}
	if cfg.RetryBudget != nil {
		fmt.Printf("budget %s: exhausted=%d deferred=%d max-deferred-depth=%d\n",
			cfg.RetryBudget.Name(), rep.BudgetExhausted, rep.DeferredRetries, rep.MaxDeferredDepth)
	}
	if rep.AdaptiveBackoffMax > 0 {
		fmt.Printf("adaptive backoff: avg=%v max=%v final=%v\n",
			rep.AdaptiveBackoffAvg.Round(time.Millisecond),
			rep.AdaptiveBackoffMax.Round(time.Millisecond),
			rep.AdaptiveBackoffFinal.Round(time.Millisecond))
	}
	if cfg.Backpressure != nil {
		fmt.Printf("backpressure %s: hint avg=%.3f max=%.3f final=%.3f paced=%d time-paced=%v\n",
			cfg.Backpressure.Name(), rep.BackpressureHintAvg, rep.BackpressureHintMax,
			rep.BackpressureHintFinal, rep.PacedSubmissions,
			rep.TimePaced.Round(time.Millisecond))
	}
	if cfg.Gossip != nil {
		fmt.Printf("gossip %s via %s: msgs=%d merges=%d est avg=%.3f max=%.3f final=%.3f stale avg=%v max=%v\n",
			cfg.Gossip.Name(), cfg.HintSource, rep.GossipMessages, rep.GossipMerges,
			rep.GossipEstimateAvg, rep.GossipEstimateMax, rep.GossipEstimateFinal,
			rep.GossipStalenessAvg.Round(time.Millisecond),
			rep.GossipStalenessMax.Round(time.Millisecond))
	}
	if cfg.SplitSignal != nil {
		fmt.Printf("split %s: conflict avg=%.3f max=%.3f final=%.3f congestion avg=%.3f max=%.3f final=%.3f\n",
			cfg.SplitSignal.Name(), rep.ConflictEstAvg, rep.ConflictEstMax,
			rep.ConflictEstFinal, rep.CongestEstAvg, rep.CongestEstMax,
			rep.CongestEstFinal)
	}
	if cfg.Faults != nil {
		fmt.Printf("faults %s: windows=%d crashes=%d downtime=%v eto=%d sto=%d orphans=%d recoveries=%d recov avg=%v max=%v\n",
			cfg.Faults.Name(), rep.FaultWindows, rep.NodeCrashes,
			rep.NodeDowntime.Round(time.Millisecond),
			rep.EndorseTimeouts, rep.SubmitTimeouts, rep.OrphanedTxs,
			rep.Recoveries,
			rep.RecoveryAvg.Round(time.Millisecond),
			rep.RecoveryMax.Round(time.Millisecond))
	}
	for ch, chain := range nw.Chains() {
		if err := chain.Verify(); err != nil {
			fatal(fmt.Errorf("channel %d chain verification failed: %w", ch, err))
		}
	}
	if chains := nw.Chains(); len(chains) > 1 {
		for ch, chain := range chains {
			fmt.Printf("channel %d: %d blocks, %d transactions, hash chain verified\n",
				ch, chain.Height(), chain.TxCount())
		}
	} else {
		fmt.Printf("chain: %d blocks, %d transactions, hash chain verified\n",
			nw.Chain().Height(), nw.Chain().TxCount())
	}
	for n := uint64(1); n <= uint64(o.dump) && n < nw.Chain().Height(); n++ {
		summary, err := nw.Chain().Block(n).MarshalSummary()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(summary))
	}
}
