// Command docscheck is the docs-freshness gate run by CI: it fails
// when any Go package in the repository is missing a package doc
// comment ("// Package <name> ..." attached to the package clause in
// at least one file), so the documentation layer cannot silently rot
// as new packages are added.
//
// Usage:
//
//	go run ./cmd/docscheck [root]
//
// root defaults to ".". Test-only packages (only _test.go files) and
// testdata/vendored trees are skipped; every other package —
// internal/*, cmd/*, examples/* and the module root — must carry a
// doc comment.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	missing, checked, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d of %d packages missing a package doc comment:\n",
			len(missing), checked)
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		fmt.Fprintln(os.Stderr, `add "// Package <name> ..." above the package clause (or a doc.go)`)
		os.Exit(1)
	}
	fmt.Printf("docscheck: all %d packages documented\n", checked)
}

// check walks every directory under root that contains non-test Go
// files and reports the ones whose package lacks a doc comment.
func check(root string) (missing []string, checked int, err error) {
	dirs := map[string]bool{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}

	var sorted []string
	for dir := range dirs {
		sorted = append(sorted, dir)
	}
	sort.Strings(sorted)

	for _, dir := range sorted {
		documented, found, err := dirDocumented(dir)
		if err != nil {
			return nil, 0, err
		}
		if !found {
			continue
		}
		checked++
		if !documented {
			missing = append(missing, dir)
		}
	}
	return missing, checked, nil
}

// dirDocumented parses the package clause (and its comments) of every
// non-test Go file in dir and reports whether any carries a package
// doc comment. found is false when the directory holds no non-test Go
// files.
func dirDocumented(dir string) (documented, found bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, false, fmt.Errorf("%s: %w", filepath.Join(dir, name), err)
		}
		found = true
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return false, found, nil
}
