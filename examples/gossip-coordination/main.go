// Gossip-coordination stages the source-vs-sharing question behind
// Config.Gossip: when coordinated retry control beats client-local
// control, is the win coming from the orderer's privileged global
// view of its own backlog, or merely from all clients acting on *any*
// common signal?
//
// The stage is the same undersized ordering service as the
// backpressure example (25 ms of serial CPU per transaction ≈ 40 tps
// capacity) under a 50 tps EHR load whose conflicts trigger
// resubmission. Three acts:
//
//  1. producers: the hinted BackpressurePolicy fed by the orderer's
//     hint, by the gossiped client-to-client estimate, and by their
//     max-combination — against the client-local AIMD baseline, the
//     ladder of `hyperlab -run retry-coordination`;
//  2. fanout: the gossip mesh at fanout 1, 2 and 4 — how fast the
//     fleet's alarm spreads, and what the extra messages buy;
//  3. decay: slow vs fast fading of adopted estimates — a fleet that
//     forgets too slowly keeps pacing long after congestion cleared.
//
// Everything is deterministic: same seeds, same tables, at any
// parallelism.
package main

import (
	"fmt"
	"log"
	"time"

	lab "repro"
)

// options is the sweep regime: 40 virtual seconds, one seed.
func options() lab.Options {
	return lab.Options{
		Duration: 40 * time.Second,
		Drain:    30 * time.Second,
		Seeds:    []int64{1},
	}
}

// congestedCell builds one EHR run against the undersized orderer
// with the given coordination wiring.
func congestedCell(policy lab.RetryPolicy, bp *lab.Backpressure, g *lab.Gossip, src lab.HintSource) lab.Builder {
	return func(seed int64) lab.Config {
		cfg := lab.DefaultConfig()
		cfg.Chaincode = lab.EHRChaincode()
		cfg.Workload = lab.EHRWorkload(1)
		cfg.Rate = 50
		cfg.OrdererCosts.PerTx = 25 * time.Millisecond
		cfg.Retry = policy
		cfg.Backpressure = bp
		cfg.Gossip = g
		cfg.HintSource = src
		return cfg
	}
}

func main() {
	o := options()
	hinted := lab.BackpressurePolicy{
		Floor: 100 * time.Millisecond, Ceiling: 4 * time.Second,
		MaxAttempts: 5, Jitter: 0.2,
	}
	aimd := lab.AdaptivePolicy{MaxAttempts: 5, Jitter: 0.2}
	signal := &lab.Backpressure{}

	// Act 1: who should produce the shared signal?
	fmt.Println("== Act 1: hint producers on a saturated orderer (EHR, 50 tps vs ~40 tps capacity)")
	producers := []struct {
		label string
		build lab.Builder
	}{
		{"aimd (client-local)", congestedCell(aimd, nil, nil, "")},
		{"hinted-orderer", congestedCell(hinted, signal, nil, lab.HintOrderer)},
		{"hinted-gossip", congestedCell(hinted, signal, &lab.Gossip{}, lab.HintGossip)},
		{"hinted-both", congestedCell(hinted, signal, &lab.Gossip{}, lab.HintBoth)},
	}
	var builds []lab.Builder
	for _, p := range producers {
		builds = append(builds, p.build)
	}
	results, err := o.RunAll(builds)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range producers {
		r := results[i]
		fmt.Printf("  %-22s goodput=%6.2f tps  amp=%.2f  e2e=%6.2fs  paced=%7.2fs  hint=%.3f  gest=%.3f\n",
			p.label, r.Goodput, r.RetryAmp, r.EndToEndSec, r.PacedSec, r.HintFinal, r.GossipEstFinal)
	}

	// Act 2: how wide must the mesh be?
	fmt.Println("\n== Act 2: gossip fanout (messages bought vs goodput gained)")
	fanouts := []int{1, 2, 4}
	builds = builds[:0]
	for _, f := range fanouts {
		builds = append(builds, congestedCell(hinted, signal, &lab.Gossip{Fanout: f}, lab.HintGossip))
	}
	results, err = o.RunAll(builds)
	if err != nil {
		log.Fatal(err)
	}
	for i, f := range fanouts {
		r := results[i]
		fmt.Printf("  fanout %d: msgs=%6.0f merges=%6.0f goodput=%6.2f tps  stale=%.0fms\n",
			f, r.GossipMsgs, r.GossipMerges, r.Goodput, 1000*r.GossipStaleSec)
	}

	// Act 3: how fast should adopted panic fade?
	fmt.Println("\n== Act 3: estimate decay (per-second fade of adopted estimates)")
	decays := []float64{0.1, 0.5, 2}
	builds = builds[:0]
	for _, d := range decays {
		builds = append(builds, congestedCell(hinted, signal, &lab.Gossip{Decay: d}, lab.HintGossip))
	}
	results, err = o.RunAll(builds)
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range decays {
		r := results[i]
		fmt.Printf("  decay %.1f: gest avg=%.3f final=%.3f  paced=%7.2fs  goodput=%6.2f tps\n",
			d, r.GossipEstAvg, r.GossipEstFinal, r.PacedSec, r.Goodput)
	}
}
