// Blocksize-tuning demonstrates the paper's headline recommendation
// (#1, §6.1) and its "adaptive block size" research direction (§6.2):
// the best block size depends on the transaction arrival rate, so a
// deployment should monitor its load and re-tune.
//
// The example plays a supply-chain seasonality scenario: off-season
// (20 tps) and holiday-season (150 tps) SCM traffic, each swept over
// block sizes. It prints the failure/latency surface, picks the best
// block size per season, and shows how much a statically mis-tuned
// block size costs. The sweeps run through the harness's parallel
// scheduler (Options.RunAll), fanning every (rate, block size) cell
// across all cores — the tables are identical to a sequential run.
package main

import (
	"fmt"
	"log"
	"time"

	lab "repro"
)

// options is the sweep regime: 45 virtual seconds, one seed, and one
// simulation in flight per CPU (Parallelism 0).
func options(seed int64) lab.Options {
	return lab.Options{
		Duration:    45 * time.Second,
		Drain:       30 * time.Second,
		Seeds:       []int64{seed},
		Parallelism: 0,
	}
}

// latency converts a seed-averaged result's latency to a Duration
// for printing.
func latency(res lab.Result) time.Duration {
	return time.Duration(res.LatencySec * float64(time.Second)).Round(time.Millisecond)
}

// builder is one SCM cell of the sweep.
func builder(rate float64, blockSize int) lab.Builder {
	return func(seed int64) lab.Config {
		cfg := lab.DefaultConfig()
		cfg.Rate = rate
		cfg.BlockSize = blockSize
		cfg.Chaincode = lab.SCMChaincode()
		cfg.Workload = lab.SCMWorkload(1)
		return cfg
	}
}

func main() {
	blockSizes := []int{10, 50, 100, 150, 200}
	seasons := []struct {
		name string
		rate float64
	}{
		{"off-season (20 tps)", 20},
		{"holiday season (150 tps)", 150},
	}

	// One batch over the whole season × block-size grid: all cells run
	// concurrently, results come back in input order.
	var builds []lab.Builder
	for _, season := range seasons {
		for _, bs := range blockSizes {
			builds = append(builds, builder(season.rate, bs))
		}
	}
	results, err := options(1).RunAll(builds)
	if err != nil {
		log.Fatal(err)
	}

	best := map[string]int{}
	worst := map[string]int{}
	for si, season := range seasons {
		fmt.Printf("== SCM, %s\n", season.name)
		fmt.Printf("%-12s %-12s %-12s\n", "block size", "failures %", "latency")
		bestPct, worstPct := 101.0, -1.0
		for bi, bs := range blockSizes {
			res := results[si*len(blockSizes)+bi]
			fmt.Printf("%-12d %-12.2f %-12v\n", bs, res.FailurePct, latency(res))
			if res.FailurePct < bestPct {
				bestPct, best[season.name] = res.FailurePct, bs
			}
			if res.FailurePct > worstPct {
				worstPct, worst[season.name] = res.FailurePct, bs
			}
		}
		reduction := 100 * (worstPct - bestPct) / worstPct
		fmt.Printf("-> best block size %d (%.2f%% failures); worst %d (%.2f%%); tuning saves %.0f%% of failures\n\n",
			best[season.name], bestPct, worst[season.name], worstPct, reduction)
	}

	fmt.Println("== Adaptive policy")
	fmt.Printf("Monitor the arrival rate and switch the orderer's BatchSize:\n")
	for _, season := range seasons {
		fmt.Printf("  %-26s -> block size %d\n", season.name, best[season.name])
	}
	fmt.Println("\nA static mis-tune (using the off-season size during the holidays):")
	misTune, err := options(2).RunAll([]lab.Builder{
		builder(150, best[seasons[0].name]),
		builder(150, best[seasons[1].name]),
	})
	if err != nil {
		log.Fatal(err)
	}
	static, tuned := misTune[0], misTune[1]
	fmt.Printf("  static  block %3d: %.2f%% failures, latency %v\n",
		best[seasons[0].name], static.FailurePct, latency(static))
	fmt.Printf("  adapted block %3d: %.2f%% failures, latency %v\n",
		best[seasons[1].name], tuned.FailurePct, latency(tuned))
}
