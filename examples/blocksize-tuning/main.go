// Blocksize-tuning demonstrates the paper's headline recommendation
// (#1, §6.1) and its "adaptive block size" research direction (§6.2):
// the best block size depends on the transaction arrival rate, so a
// deployment should monitor its load and re-tune.
//
// The example plays a supply-chain seasonality scenario: off-season
// (20 tps) and holiday-season (150 tps) SCM traffic, each swept over
// block sizes. It prints the failure/latency surface, picks the best
// block size per season, and shows how much a statically mis-tuned
// block size costs.
package main

import (
	"fmt"
	"log"
	"time"

	lab "repro"
)

func run(rate float64, blockSize int, seed int64) lab.Report {
	cfg := lab.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 45 * time.Second
	cfg.Drain = 30 * time.Second
	cfg.Rate = rate
	cfg.BlockSize = blockSize
	cfg.Chaincode = lab.SCMChaincode()
	cfg.Workload = lab.SCMWorkload(1)
	nw, err := lab.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return nw.Run()
}

func main() {
	blockSizes := []int{10, 50, 100, 150, 200}
	seasons := []struct {
		name string
		rate float64
	}{
		{"off-season (20 tps)", 20},
		{"holiday season (150 tps)", 150},
	}

	best := map[string]int{}
	worst := map[string]int{}
	for _, season := range seasons {
		fmt.Printf("== SCM, %s\n", season.name)
		fmt.Printf("%-12s %-12s %-12s\n", "block size", "failures %", "latency")
		bestPct, worstPct := 101.0, -1.0
		for _, bs := range blockSizes {
			rep := run(season.rate, bs, 1)
			fmt.Printf("%-12d %-12.2f %-12v\n", bs, rep.FailurePct,
				rep.AvgLatency.Round(time.Millisecond))
			if rep.FailurePct < bestPct {
				bestPct, best[season.name] = rep.FailurePct, bs
			}
			if rep.FailurePct > worstPct {
				worstPct, worst[season.name] = rep.FailurePct, bs
			}
		}
		reduction := 100 * (worstPct - bestPct) / worstPct
		fmt.Printf("-> best block size %d (%.2f%% failures); worst %d (%.2f%%); tuning saves %.0f%% of failures\n\n",
			best[season.name], bestPct, worst[season.name], worstPct, reduction)
	}

	fmt.Println("== Adaptive policy")
	fmt.Printf("Monitor the arrival rate and switch the orderer's BatchSize:\n")
	for _, season := range seasons {
		fmt.Printf("  %-26s -> block size %d\n", season.name, best[season.name])
	}
	fmt.Println("\nA static mis-tune (using the off-season size during the holidays):")
	static := run(150, best[seasons[0].name], 2)
	tuned := run(150, best[seasons[1].name], 2)
	fmt.Printf("  static  block %3d: %.2f%% failures, latency %v\n",
		best[seasons[0].name], static.FailurePct, static.AvgLatency.Round(time.Millisecond))
	fmt.Printf("  adapted block %3d: %.2f%% failures, latency %v\n",
		best[seasons[1].name], tuned.FailurePct, tuned.AvgLatency.Round(time.Millisecond))
}
