// Genchain-workloads drives the paper's chaincode/workload generator
// (§4.4): it declares a custom chaincode spec, renders it to Go
// source, runs the five "x-heavy" workloads against both state
// databases, and demonstrates recommendation #3 (§6.1) — avoid rich
// and range queries so LevelDB can be used.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	lab "repro"
)

func run(db lab.Config, mix lab.Mix, spec lab.ChaincodeSpec, kind string) lab.Report {
	cfg := db
	cc, err := lab.GenerateChaincode(spec)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Chaincode = cc
	cfg.Workload = lab.GenWorkload(spec, mix, 1)
	if kind == "leveldb" {
		cfg.DBKind = lab.LevelDB
	} else {
		cfg.DBKind = lab.CouchDB
	}
	nw, err := lab.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return nw.Run()
}

func main() {
	// A custom generated chaincode: three functions over 20k keys.
	spec := lab.ChaincodeSpec{
		Name: "inventory",
		Keys: 20000,
		Functions: []lab.FunctionSpec{
			{Name: "audit", Reads: 3},
			{Name: "restock", Reads: 1, Updates: 2},
			{Name: "scan", RangeReads: 1},
		},
	}
	src, err := lab.RenderChaincode(spec, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Generated chaincode source (%d lines, parses as valid Go):\n",
		strings.Count(src, "\n"))
	for _, line := range strings.SplitN(src, "\n", 8)[:7] {
		fmt.Println("  " + line)
	}
	fmt.Println("  ...")

	base := lab.DefaultConfig()
	base.Duration = 30 * time.Second
	base.Drain = 30 * time.Second
	base.Rate = 50

	// The paper's genChain spec with the five canonical mixes.
	gspec := lab.GenChainSpec()
	gspec.Keys = 20000
	mixes := []struct {
		name string
		mix  lab.Mix
	}{
		{"read-heavy", lab.ReadHeavy},
		{"insert-heavy", lab.InsertHeavy},
		{"update-heavy", lab.UpdateHeavy},
		{"range-heavy", lab.RangeHeavy},
		{"delete-heavy", lab.DeleteHeavy},
	}
	fmt.Printf("\n%-14s %-10s %-12s %-12s\n", "workload", "db", "failures %", "latency")
	for _, m := range mixes {
		for _, kind := range []string{"couchdb", "leveldb"} {
			rep := run(base, m.mix, gspec, kind)
			fmt.Printf("%-14s %-10s %-12.2f %-12v\n",
				m.name, kind, rep.FailurePct, rep.AvgLatency.Round(time.Millisecond))
		}
	}
	fmt.Println("\nTakeaways (§5.1.2/§5.1.5): LevelDB beats CouchDB everywhere;")
	fmt.Println("range-heavy load on CouchDB is catastrophic (the full range is")
	fmt.Println("re-read at validation for phantom detection); insert/delete-heavy")
	fmt.Println("workloads touch unique keys and barely fail.")
}
