// Quickstart: spin up a simulated Fabric network with the paper's
// default configuration (Table 3), drive the Electronic Health
// Records chaincode at 100 tps for one virtual minute, and break the
// transaction outcomes down by failure type (§3).
package main

import (
	"fmt"
	"log"
	"time"

	lab "repro"
)

func main() {
	cfg := lab.DefaultConfig() // Table 3 defaults on the C1 cluster
	cfg.Duration = time.Minute // virtual send window
	cfg.Drain = 30 * time.Second
	cfg.Chaincode = lab.EHRChaincode()
	cfg.Workload = lab.EHRWorkload(1) // Zipfian skew 1
	cfg.StripAfterCommit = false      // keep payloads so we can audit the chain

	nw, err := lab.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	rep := nw.Run()
	fmt.Printf("Simulated %v of EHR traffic at %.0f tps in %v of real time.\n\n",
		cfg.Duration, cfg.Rate, time.Since(start).Round(time.Millisecond))

	fmt.Printf("Transactions:        %6d\n", rep.Total)
	fmt.Printf("  valid:             %6d\n", rep.Valid)
	fmt.Printf("  endorsement fail:  %6d  (%.2f%%)  — Eq. 1, world-state inconsistency\n",
		rep.Counts[lab.EndorsementPolicyFailure], rep.EndorsementPct)
	fmt.Printf("  intra-block MVCC:  %6d  (%.2f%%)  — Eq. 3, same-block dependency\n",
		rep.Counts[lab.MVCCConflictIntraBlock], rep.IntraBlockPct)
	fmt.Printf("  inter-block MVCC:  %6d  (%.2f%%)  — Eq. 4, cross-block dependency\n",
		rep.Counts[lab.MVCCConflictInterBlock], rep.InterBlockPct)
	fmt.Printf("  phantom reads:     %6d  (%.2f%%)  — Eq. 5, range re-execution\n",
		rep.Counts[lab.PhantomReadConflict], rep.PhantomPct)
	fmt.Printf("\nAverage latency:     %v (p95 %v)\n",
		rep.AvgLatency.Round(time.Millisecond), rep.P95Latency.Round(time.Millisecond))
	fmt.Printf("Committed throughput: %.1f tps over %d blocks\n", rep.Throughput, rep.Blocks)

	// Everything on the chain is auditable: failed transactions are
	// appended too (§2 step 8), and the hash chain must verify.
	if err := nw.Chain().Verify(); err != nil {
		log.Fatalf("ledger verification failed: %v", err)
	}
	fmt.Printf("\nLedger verified: %d blocks, %d transactions on chain.\n",
		nw.Chain().Height(), nw.Chain().TxCount())
}
