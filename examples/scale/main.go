// Scale walks the two mechanisms behind `hyperlab -run scale` —
// cohort client drivers and multi-channel sharding — at example pace.
//
// The paper's testbed simulates every client as its own state object,
// which is faithful but caps the population a laptop can hold. Real
// Fabric deployments talk about millions of wallets and devices, and
// production deployments shard load across channels. Three acts:
//
//  1. equivalence: a 6-client closed-loop run split into two
//     3-member cohorts produces the *same* report as the exact
//     simulation — cohorts are an aggregation, not an approximation,
//     while the retry policy is stateless;
//  2. population: 10^2 to 10^5 clients at a fixed 200 tps total
//     arrival rate, cohort size scaled to keep ~100 drivers — the
//     chain-side load stays put while the population grows three
//     orders of magnitude;
//  3. sharding: the same load over 1, 2 and 4 channels with 10%
//     cross-channel two-leg transactions — what per-channel ordering
//     buys and what the distributed legs cost.
//
// Everything is deterministic: same seeds, same tables, at any
// parallelism.
package main

import (
	"fmt"
	"log"
	"time"

	lab "repro"
)

// options is the sweep regime: 30 virtual seconds, one seed.
func options() lab.Options {
	return lab.Options{
		Duration: 30 * time.Second,
		Drain:    30 * time.Second,
		Seeds:    []int64{1},
	}
}

// cell builds one EHR run with the given population, cohort size and
// channel layout under a capped exponential-backoff retry policy.
func cell(clients, cohortSize, channels int, crossChannel float64) lab.Builder {
	return func(seed int64) lab.Config {
		cfg := lab.DefaultConfig()
		cfg.Chaincode = lab.EHRChaincode()
		cfg.Workload = lab.EHRWorkload(2)
		cfg.Rate = 200
		cfg.Clients = clients
		cfg.CohortSize = cohortSize
		cfg.Channels = channels
		cfg.CrossChannel = crossChannel
		cfg.Retry = lab.ExponentialBackoff{
			Initial: 200 * time.Millisecond, Cap: 2 * time.Second,
			MaxAttempts: 5, Jitter: 0.2,
		}
		cfg.Seed = seed
		return cfg
	}
}

func main() {
	o := options()

	// Act 1: cohorts must reproduce the exact simulation.
	fmt.Println("== Act 1: cohort drivers vs exact per-client simulation (6 closed-loop clients)")
	closed := func(cohortSize int) lab.Builder {
		return func(seed int64) lab.Config {
			cfg := cell(6, cohortSize, 1, 0)(seed)
			cfg.ClosedLoop = true
			cfg.InFlightPerClient = 2
			cfg.Rate = 50
			return cfg
		}
	}
	results, err := o.RunAll([]lab.Builder{closed(0), closed(3)})
	if err != nil {
		log.Fatal(err)
	}
	exact, cohort := results[0], results[1]
	fmt.Printf("  exact : goodput=%6.2f tps  amp=%.4f  e2e=%.4fs  gave-up=%.2f%%\n",
		exact.Goodput, exact.RetryAmp, exact.EndToEndSec, exact.GaveUpPct)
	fmt.Printf("  cohort: goodput=%6.2f tps  amp=%.4f  e2e=%.4fs  gave-up=%.2f%%\n",
		cohort.Goodput, cohort.RetryAmp, cohort.EndToEndSec, cohort.GaveUpPct)
	if exact == cohort {
		fmt.Println("  -> identical to the last digit: cohorts aggregate, they do not approximate")
	} else {
		fmt.Println("  -> DIVERGED (this would fail the locked equivalence test)")
	}

	// Act 2: grow the population, hold the load.
	fmt.Println("\n== Act 2: population sweep at a fixed 200 tps total arrival rate")
	pops := []int{100, 1_000, 10_000, 100_000}
	var builds []lab.Builder
	for _, p := range pops {
		size := p / 100
		builds = append(builds, cell(p, size, 1, 0))
	}
	start := time.Now()
	results, err = o.RunAll(builds)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range pops {
		r := results[i]
		fmt.Printf("  %7d clients (~100 cohorts): tput=%6.1f tps  goodput=%6.2f tps  amp=%.2f  e2e=%5.2fs\n",
			p, r.Throughput, r.Goodput, r.RetryAmp, r.EndToEndSec)
	}
	fmt.Printf("  (whole sweep took %v real time)\n", time.Since(start).Round(time.Millisecond))

	// Act 3: shard the same load across channels.
	fmt.Println("\n== Act 3: channel sharding (10k clients, 10% cross-channel when sharded)")
	for _, ch := range []int{1, 2, 4} {
		cross := 0.0
		if ch > 1 {
			cross = 0.1
		}
		r, err := o.Run(cell(10_000, 100, ch, cross))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d channel(s): tput=%6.1f tps  goodput=%6.2f tps  fail=%5.2f%%  e2e=%5.2fs\n",
			ch, r.Throughput, r.Goodput, r.FailurePct, r.EndToEndSec)
	}
}
