// Policy-design explores the paper's recommendation #2 (§6.1): fewer
// organizations, fewer endorsement signatures and fewer sub-policies
// mean fewer endorsement policy failures.
//
// It runs the EHR chaincode under the four endorsement policies of
// Table 5 and across growing consortium sizes, printing how latency
// and endorsement failures react — the Fig 12/13 experiments as a
// design aid.
package main

import (
	"fmt"
	"log"
	"time"

	lab "repro"
	"repro/internal/policy"
)

func run(orgs int, p policy.Name, seed int64) lab.Report {
	cfg := lab.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 45 * time.Second
	cfg.Drain = 30 * time.Second
	cfg.Orgs = orgs
	cfg.PeersPerOrg = 2
	cfg.Policy = p
	cfg.Chaincode = lab.EHRChaincode()
	cfg.Workload = lab.EHRWorkload(1)
	nw, err := lab.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return nw.Run()
}

func main() {
	fmt.Println("== Endorsement policies over 8 organizations (Table 5)")
	fmt.Printf("%-6s %-46s %-12s %-14s %s\n",
		"name", "policy", "latency", "endorse fail%", "signatures")
	orgNames := make([]string, 8)
	for i := range orgNames {
		orgNames[i] = fmt.Sprintf("Org%d", i)
	}
	for _, name := range policy.AllNames() {
		p := policy.Build(name, orgNames)
		rep := run(8, name, 1)
		fmt.Printf("%-6s %-46s %-12v %-14.2f %d required, %d sub-policies\n",
			name, trim(p.String(), 44), rep.AvgLatency.Round(time.Millisecond),
			rep.EndorsementPct, len(p.RequiredEndorsers(0)), p.SubPolicies())
	}

	fmt.Println("\n== Consortium size under P0 (all orgs endorse)")
	fmt.Printf("%-6s %-8s %-12s %s\n", "orgs", "peers", "latency", "endorse fail%")
	for _, orgs := range []int{2, 4, 6, 8, 10} {
		rep := run(orgs, policy.P0, 2)
		fmt.Printf("%-6d %-8d %-12v %.2f\n", orgs, orgs*2,
			rep.AvgLatency.Round(time.Millisecond), rep.EndorsementPct)
	}

	fmt.Println("\nDesign guidance (§6.1): group branches into fewer organizations,")
	fmt.Println("require fewer signatures (P1-style), and flatten sub-policies —")
	fmt.Println(`"4-of": ["2-of": [Org0, Org1], "2-of": [Org2, Org3]] can be written`)
	fmt.Println(`as "4-of": [Org0, Org1, Org2, Org3] with one search space less.`)
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
