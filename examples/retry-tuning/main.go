// Retry-tuning demonstrates the client retry/resubmission subsystem:
// the paper's open-loop clients fire-and-forget, so a failed
// transaction is simply lost — but a real application must resubmit
// it, and the retry traffic feeds the very contention that failed the
// transaction in the first place.
//
// The example runs the EHR chaincode under growing key skew and
// compares retry policies side by side: goodput (first-submission
// success throughput) versus raw committed throughput, the retry
// amplification factor (how many submissions the network processed
// per logical transaction), the end-to-end latency through every
// resubmission, and the fraction of transactions the client
// eventually abandoned. It closes with a closed-loop run showing the
// same policies under a fixed in-flight window instead of a fixed
// arrival rate. All cells fan out across the harness's parallel
// scheduler; tables are identical at any worker count.
package main

import (
	"fmt"
	"log"
	"time"

	lab "repro"
)

// options is the sweep regime: 40 virtual seconds, one seed.
func options() lab.Options {
	return lab.Options{
		Duration:    40 * time.Second,
		Drain:       30 * time.Second,
		Seeds:       []int64{1},
		Parallelism: 0, // one worker per CPU
	}
}

// builder is one (policy, skew) EHR cell.
func builder(policy lab.RetryPolicy, skew float64, closedLoop bool) lab.Builder {
	return func(seed int64) lab.Config {
		cfg := lab.DefaultConfig()
		cfg.Chaincode = lab.EHRChaincode()
		cfg.Workload = lab.EHRWorkload(skew)
		cfg.Retry = policy
		cfg.ClosedLoop = closedLoop
		cfg.InFlightPerClient = 4
		return cfg
	}
}

func main() {
	policies := []lab.RetryPolicy{
		lab.NoRetry{},
		lab.ImmediateRetry{MaxAttempts: 3},
		lab.ExponentialBackoff{
			Initial: 200 * time.Millisecond, Cap: 2 * time.Second,
			MaxAttempts: 5, Jitter: 0.2,
		},
		lab.GiveUpAfter(lab.ExponentialBackoff{Initial: 100 * time.Millisecond, Jitter: 0.5}, 2),
	}
	skews := []float64{0, 1, 2}

	// Open loop: the paper's arrival process, now with resubmission.
	var builds []lab.Builder
	for _, skew := range skews {
		for _, p := range policies {
			builds = append(builds, builder(p, skew, false))
		}
	}
	results, err := options().RunAll(builds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== EHR, open loop at 100 tps: what does a failure cost end-to-end?")
	fmt.Printf("%-6s %-14s %-14s %-12s %-6s %-10s %-10s\n",
		"skew", "policy", "goodput tps", "tput tps", "amp", "e2e lat", "gave up %")
	i := 0
	for _, skew := range skews {
		for _, p := range policies {
			r := results[i]
			i++
			fmt.Printf("%-6.1f %-14s %-14.1f %-12.1f %-6.2f %-10v %-10.1f\n",
				skew, p.Name(), r.Goodput, r.Throughput, r.RetryAmp,
				time.Duration(r.EndToEndSec*float64(time.Second)).Round(time.Millisecond),
				r.GaveUpPct)
		}
	}

	// Closed loop: the same policies under a fixed in-flight window —
	// retries now displace fresh work instead of adding to it.
	builds = builds[:0]
	for _, p := range policies {
		builds = append(builds, builder(p, 1, true))
	}
	results, err = options().RunAll(builds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== EHR, closed loop (4 in flight per client), skew 1")
	fmt.Printf("%-14s %-14s %-12s %-6s %-10s %-10s\n",
		"policy", "goodput tps", "tput tps", "amp", "e2e lat", "gave up %")
	for i, p := range policies {
		r := results[i]
		fmt.Printf("%-14s %-14.1f %-12.1f %-6.2f %-10v %-10.1f\n",
			p.Name(), r.Goodput, r.Throughput, r.RetryAmp,
			time.Duration(r.EndToEndSec*float64(time.Second)).Round(time.Millisecond),
			r.GaveUpPct)
	}
	fmt.Println("\nFire-and-forget loses every failed transaction; immediate retries")
	fmt.Println("amplify contention (higher amp, lower goodput at high skew); capped")
	fmt.Println("backoff recovers most failures for a fraction of the extra load.")
}
