// Adaptive-blocksize demonstrates the paper's proposed research
// direction (§6.2): "it would be useful to monitor the system and
// adapt the block size dynamically."
//
// An EHR network is driven through a daily load profile (quiet →
// business hours → evening peak → quiet). A static block size is
// compared against the adaptive controller from internal/adaptive,
// which estimates the arrival rate with an EWMA and retunes the
// orderer's batch size every few seconds.
package main

import (
	"fmt"
	"log"
	"time"

	lab "repro"
	"repro/internal/adaptive"
	"repro/internal/fabric"
)

func profile() []fabric.RatePhase {
	return []fabric.RatePhase{
		{Duration: 30 * time.Second, Rate: 15},  // night
		{Duration: 30 * time.Second, Rate: 80},  // business hours
		{Duration: 30 * time.Second, Rate: 180}, // evening peak
		{Duration: 30 * time.Second, Rate: 40},  // wind-down
	}
}

func run(seed int64, adapt bool) (lab.Report, *adaptive.Controller) {
	cfg := lab.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 2 * time.Minute
	cfg.Drain = 30 * time.Second
	cfg.BlockSize = 10 // tuned for the quiet phase
	cfg.RateSchedule = profile()
	cfg.Rate = 40
	cfg.Chaincode = lab.EHRChaincode()
	cfg.Workload = lab.EHRWorkload(1)
	nw, err := lab.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var ctl *adaptive.Controller
	if adapt {
		ctl = adaptive.Attach(nw, adaptive.DefaultConfig())
	}
	return nw.Run(), ctl
}

func main() {
	fmt.Println("Load profile: 15 -> 80 -> 180 -> 40 tps over 2 virtual minutes.")
	fmt.Println()

	static, _ := run(1, false)
	adaptiveRep, ctl := run(1, true)

	fmt.Printf("%-10s %-12s %-12s %-12s\n", "mode", "failures %", "latency", "p95")
	fmt.Printf("%-10s %-12.2f %-12v %-12v\n", "static", static.FailurePct,
		static.AvgLatency.Round(time.Millisecond), static.P95Latency.Round(time.Millisecond))
	fmt.Printf("%-10s %-12.2f %-12v %-12v\n", "adaptive", adaptiveRep.FailurePct,
		adaptiveRep.AvgLatency.Round(time.Millisecond), adaptiveRep.P95Latency.Round(time.Millisecond))

	fmt.Println("\nController trace (virtual time -> estimated rate -> block size):")
	for i, d := range ctl.History {
		if i%3 != 0 { // every ~15s
			continue
		}
		fmt.Printf("  t=%-8v rate=%-7.1f block size=%d\n",
			time.Duration(d.At).Round(time.Second), d.Rate, d.BlockSize)
	}
	fmt.Println("\nThe controller follows the load: small blocks while quiet (no")
	fmt.Println("batching delay), large blocks at the peak (less per-block overhead),")
	fmt.Println("which is exactly the Fig 4 relation applied online.")
}
