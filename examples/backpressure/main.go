// Backpressure demonstrates the orderer-driven congestion signal: the
// ordering service condenses its backlog and arrival-vs-service
// pressure into a hint in [0,1], stamps it onto commit events, and
// clients pace their load from the shared signal instead of each
// discovering congestion through its own failures.
//
// The stage is an undersized ordering service (25 ms of serial CPU
// per transaction ≈ 40 tps capacity) under a 50 tps EHR load whose
// conflicts trigger resubmission — the feedback loop the paper blames
// for a large share of failed transactions. Two acts:
//
//  1. coordination: client-local control (static backoff, the AIMD
//     adaptive policy) versus the orderer-hinted BackpressurePolicy,
//     alone and combined with a drop-mode retry budget — the same
//     ladder as `hyperlab -run retry-coordination`;
//  2. blending: AdaptivePolicy.HintWeight mixes the shared hint into
//     the client-local AIMD level, the halfway house between private
//     and coordinated control.
//
// Everything is deterministic: same seeds, same tables, at any
// parallelism.
package main

import (
	"fmt"
	"log"
	"time"

	lab "repro"
)

// options is the sweep regime: 40 virtual seconds, one seed.
func options() lab.Options {
	return lab.Options{
		Duration: 40 * time.Second,
		Drain:    30 * time.Second,
		Seeds:    []int64{1},
	}
}

// congestedCell builds one EHR run against the undersized orderer
// with the given retry control.
func congestedCell(policy lab.RetryPolicy, budget *lab.RetryBudget, bp *lab.Backpressure) lab.Builder {
	return func(seed int64) lab.Config {
		cfg := lab.DefaultConfig()
		cfg.Chaincode = lab.EHRChaincode()
		cfg.Workload = lab.EHRWorkload(1)
		cfg.OrdererCosts.PerTx = 25 * time.Millisecond
		cfg.Retry = policy
		cfg.RetryBudget = budget
		cfg.Backpressure = bp
		return cfg
	}
}

func main() {
	static := lab.ExponentialBackoff{
		Initial: 200 * time.Millisecond, Cap: 2 * time.Second,
		MaxAttempts: 5, Jitter: 0.2,
	}
	aimd := lab.AdaptivePolicy{
		Floor: 100 * time.Millisecond, Ceiling: 4 * time.Second,
		MaxAttempts: 5, Jitter: 0.2,
	}
	hinted := lab.BackpressurePolicy{
		Floor: 100 * time.Millisecond, Ceiling: 4 * time.Second,
		MaxAttempts: 5, Jitter: 0.2,
	}
	budget := &lab.RetryBudget{RefillPerSec: 1, Burst: 3, DropOnEmpty: true}
	signal := &lab.Backpressure{} // defaults: smoothing 0.5, gain 1s, max pause 2s

	cells := []struct {
		label  string
		policy lab.RetryPolicy
		budget *lab.RetryBudget
		bp     *lab.Backpressure
	}{
		{"static", static, nil, nil},
		{"aimd", aimd, nil, nil},
		{"hinted", hinted, nil, signal},
		{"hinted+budgeted", hinted, budget, signal},
	}
	var builds []lab.Builder
	for _, c := range cells {
		builds = append(builds, congestedCell(c.policy, c.budget, c.bp))
	}
	results, err := options().RunAll(builds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== EHR against a 40 tps orderer: client-local vs coordinated retry control")
	fmt.Printf("%-16s %-12s %-10s %-6s %-9s %-9s %-7s %-10s\n",
		"control", "goodput tps", "tput tps", "amp", "e2e lat", "paced", "hint", "exhausted")
	for i, c := range cells {
		r := results[i]
		fmt.Printf("%-16s %-12.1f %-10.1f %-6.2f %-9v %-9s %-7.3f %-10.0f\n",
			c.label, r.Goodput, r.Throughput, r.RetryAmp,
			time.Duration(r.EndToEndSec*float64(time.Second)).Round(time.Millisecond),
			fmt.Sprintf("%.1fs", r.PacedSec), r.HintFinal, r.BudgetExhausted)
	}

	// Blending: the AIMD controller with increasing weight on the
	// shared hint.
	weights := []float64{0, 0.25, 0.5, 1}
	builds = builds[:0]
	for _, w := range weights {
		blended := aimd
		blended.HintWeight = w
		builds = append(builds, congestedCell(blended, nil, signal))
	}
	results, err = options().RunAll(builds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== AdaptivePolicy.HintWeight: blending the shared hint into the AIMD level")
	fmt.Printf("%-8s %-12s %-10s %-6s %-9s %-9s\n",
		"weight", "goodput tps", "tput tps", "amp", "e2e lat", "aimd fin")
	for i, w := range weights {
		r := results[i]
		fmt.Printf("%-8.2f %-12.1f %-10.1f %-6.2f %-9v %-9v\n",
			w, r.Goodput, r.Throughput, r.RetryAmp,
			time.Duration(r.EndToEndSec*float64(time.Second)).Round(time.Millisecond),
			time.Duration(r.AdaptiveBackSec*float64(time.Second)).Round(time.Millisecond))
	}
	fmt.Println("\nThe hinted clients see the orderer's backlog in the commit events and")
	fmt.Println("back off together before their own transactions fail; the budget still")
	fmt.Println("bounds worst-case duplicate load, and HintWeight lets the client-local")
	fmt.Println("AIMD controller borrow the shared signal without giving up adaptation.")
}
