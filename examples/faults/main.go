// Faults demonstrates the deterministic fault-injection subsystem:
// the same EHR workload is run healthy and then under the seeded
// "crash" scenario (an orderer crash window followed by a peer crash
// window), with client-side endorsement/submission deadlines and the
// hinted-orderer coordination stack picking up the pieces.
//
// Everything is virtual-time driven, so the run is byte-for-byte
// reproducible: same seed, same crashes, same recovery.
package main

import (
	"fmt"
	"log"
	"time"

	lab "repro"
)

func run(seed int64, faults *lab.Faults) lab.Report {
	cfg := lab.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 30 * time.Second
	cfg.Drain = 30 * time.Second
	cfg.Rate = 60
	cfg.Chaincode = lab.EHRChaincode()
	cfg.Workload = lab.EHRWorkload(1)
	cfg.Retry = lab.BackpressurePolicy{MaxAttempts: 5, Jitter: 0.2}
	cfg.Backpressure = &lab.Backpressure{}
	cfg.Faults = faults
	nw, err := lab.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return nw.Run()
}

func main() {
	fmt.Println("EHR at 60 tps, hinted-orderer retries, 30 virtual seconds.")
	fmt.Println()

	healthy := run(1, nil)
	crashed := run(1, &lab.Faults{Scenario: "crash"})

	fmt.Printf("%-10s %-10s %-10s %-8s %-8s %-8s %-10s %-10s\n",
		"run", "goodput", "failures%", "eto", "sto", "crashes", "downtime", "recovery")
	for _, r := range []struct {
		name string
		rep  lab.Report
	}{{"healthy", healthy}, {"crash", crashed}} {
		fmt.Printf("%-10s %-10.1f %-10.2f %-8d %-8d %-8d %-10v %-10v\n",
			r.name, r.rep.Goodput, r.rep.FailurePct,
			r.rep.EndorseTimeouts, r.rep.SubmitTimeouts, r.rep.NodeCrashes,
			r.rep.NodeDowntime.Round(time.Millisecond),
			r.rep.RecoveryAvg.Round(time.Millisecond))
	}

	fmt.Println("\nThe crash scenario derives two windows from the seed: the ordering")
	fmt.Println("service goes down mid-run (submissions time out client-side and are")
	fmt.Println("retried on the hint schedule), then an endorsing peer goes down")
	fmt.Println("(endorsement deadlines expire instead). On restart the peer replays")
	fmt.Println("the ledger suffix it missed — the recovery column is that replay")
	fmt.Println("latency — and the hash chain still verifies end to end.")

	// Determinism: an identical second run must match byte-for-byte.
	again := run(1, &lab.Faults{Scenario: "crash"})
	if again.String() != crashed.String() {
		log.Fatal("fault schedule was not deterministic")
	}
	fmt.Println("\nRe-run with the same seed: report is byte-identical.")
}
