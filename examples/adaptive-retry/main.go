// Adaptive-retry demonstrates the congestion-controlled client model:
// retry *budgets* (per-client token buckets) and the *adaptive* AIMD
// backoff policy, on the workload where naive resubmission hurts the
// most — the Digital Voting chaincode, whose range-query phantoms turn
// every retry into another doomed, orderer-saturating submission.
//
// Three acts:
//
//  1. the retry storm: static exponential backoff on DV versus the
//     adaptive controller that watches the failure rate and backs off
//     multiplicatively while failures persist;
//  2. budgets: the same static policy gated by a token bucket, in
//     drop mode (bound the load, abandon the excess) and defer mode
//     (pace the excess out at the refill rate);
//  3. interactive clients: a closed loop whose think time follows a
//     log-normal distribution — the knob PR 2 left hardcoded to zero.
//
// Everything is deterministic: same seeds, same tables, at any
// parallelism.
package main

import (
	"fmt"
	"log"
	"time"

	lab "repro"
)

// options is the sweep regime: 40 virtual seconds, one seed.
func options() lab.Options {
	return lab.Options{
		Duration: 40 * time.Second,
		Drain:    30 * time.Second,
		Seeds:    []int64{1},
	}
}

// dvCell builds one DV run with the given retry control.
func dvCell(policy lab.RetryPolicy, budget *lab.RetryBudget) lab.Builder {
	return func(seed int64) lab.Config {
		cfg := lab.DefaultConfig()
		cfg.Chaincode = lab.DVChaincode()
		cfg.Workload = lab.DVWorkload(1)
		cfg.Retry = policy
		cfg.RetryBudget = budget
		return cfg
	}
}

func main() {
	static := lab.ExponentialBackoff{
		Initial: 200 * time.Millisecond, Cap: 2 * time.Second,
		MaxAttempts: 5, Jitter: 0.2,
	}
	adaptive := lab.AdaptivePolicy{
		Floor: 100 * time.Millisecond, Ceiling: 4 * time.Second,
		MaxAttempts: 5, Jitter: 0.2,
	}

	cells := []struct {
		label  string
		policy lab.RetryPolicy
		budget *lab.RetryBudget
	}{
		{"none", lab.NoRetry{}, nil},
		{"static", static, nil},
		{"adaptive", adaptive, nil},
		{"budget-drop", static, &lab.RetryBudget{RefillPerSec: 1, Burst: 3, DropOnEmpty: true}},
		{"budget-defer", static, &lab.RetryBudget{RefillPerSec: 1, Burst: 3}},
	}
	var builds []lab.Builder
	for _, c := range cells {
		builds = append(builds, dvCell(c.policy, c.budget))
	}
	results, err := options().RunAll(builds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== DV at 100 tps: taming the phantom-conflict retry storm")
	fmt.Printf("%-13s %-12s %-10s %-6s %-9s %-10s %-9s %-9s\n",
		"control", "goodput tps", "tput tps", "amp", "e2e lat", "exhausted", "deferred", "aimd fin")
	for i, c := range cells {
		r := results[i]
		fmt.Printf("%-13s %-12.1f %-10.1f %-6.2f %-9v %-10.0f %-9.0f %-9v\n",
			c.label, r.Goodput, r.Throughput, r.RetryAmp,
			time.Duration(r.EndToEndSec*float64(time.Second)).Round(time.Millisecond),
			r.BudgetExhausted, r.DeferredRetries,
			time.Duration(r.AdaptiveBackSec*float64(time.Second)).Round(time.Millisecond))
	}

	// Interactive clients: closed loop, think time drawn log-normally.
	thinks := []lab.ThinkTime{
		{},
		{Kind: lab.ThinkFixed, Mean: 500 * time.Millisecond},
		{Kind: lab.ThinkExponential, Mean: 500 * time.Millisecond},
		{Kind: lab.ThinkLogNormal, Mean: 500 * time.Millisecond, Sigma: 1},
	}
	builds = builds[:0]
	for _, tt := range thinks {
		tt := tt
		builds = append(builds, func(seed int64) lab.Config {
			cfg := dvCell(adaptive, nil)(seed)
			cfg.ClosedLoop = true
			cfg.InFlightPerClient = 4
			cfg.ThinkTime = tt
			return cfg
		})
	}
	results, err = options().RunAll(builds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== DV, closed loop (4 in flight), adaptive policy: think-time distributions")
	fmt.Printf("%-28s %-12s %-10s %-6s %-9s\n",
		"think time", "goodput tps", "tput tps", "amp", "e2e lat")
	for i, tt := range thinks {
		r := results[i]
		fmt.Printf("%-28s %-12.1f %-10.1f %-6.2f %-9v\n",
			tt.Name(), r.Goodput, r.Throughput, r.RetryAmp,
			time.Duration(r.EndToEndSec*float64(time.Second)).Round(time.Millisecond))
	}
	fmt.Println("\nThe adaptive controller converges on a backoff near its ceiling while")
	fmt.Println("phantoms persist, budgets cap the duplicate load outright (drop) or")
	fmt.Println("pace it to the refill rate (defer), and think time thins the closed")
	fmt.Println("loop's arrival pressure without changing the protocol at all.")
}
