package hyperledgerlab

import (
	"strings"
	"testing"
	"time"
)

func quickCfg(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 10 * time.Second
	cfg.Drain = 15 * time.Second
	cfg.Rate = 50
	cfg.Chaincode = EHRChaincode()
	cfg.Workload = EHRWorkload(1)
	return cfg
}

func TestQuickstartFlow(t *testing.T) {
	nw, err := NewNetwork(quickCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	rep := nw.Run()
	if rep.Total == 0 || rep.Valid == 0 {
		t.Fatalf("empty run: %v", rep)
	}
	if rep.Counts[Valid] != rep.Valid {
		t.Error("code constants not wired to the report")
	}
}

func TestAllChaincodeFactories(t *testing.T) {
	ccs := []struct {
		cc Chaincode
		wl WorkloadGenerator
	}{
		{EHRChaincode(), EHRWorkload(1)},
		{DVChaincode(), DVWorkload(1)},
		{SCMChaincode(), SCMWorkload(1)},
		{DRMChaincode(), DRMWorkload(1)},
	}
	for _, c := range ccs {
		cfg := quickCfg(2)
		cfg.Duration = 5 * time.Second
		cfg.Rate = 20
		cfg.Chaincode = c.cc
		cfg.Workload = c.wl
		nw, err := NewNetwork(cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.cc.Name(), err)
		}
		rep := nw.Run()
		if rep.Valid == 0 {
			t.Errorf("%s: no valid transactions (%v)", c.cc.Name(), rep)
		}
	}
}

func TestGeneratedChaincodeRoundTrip(t *testing.T) {
	spec := GenChainSpec()
	spec.Keys = 2000
	cc, err := GenerateChaincode(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(3)
	cfg.DBKind = LevelDB
	cfg.Chaincode = cc
	cfg.Workload = GenWorkload(spec, UpdateHeavy, 1)
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep := nw.Run(); rep.Valid == 0 {
		t.Fatalf("generated chaincode run failed: %v", rep)
	}
	src, err := RenderChaincode(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "package genChain") {
		t.Error("rendered source lacks package clause")
	}
}

func TestVariantsViaFacade(t *testing.T) {
	for _, sys := range []System{Fabric14, FabricPP, Streamchain, FabricSharp} {
		cfg := quickCfg(4)
		cfg.Duration = 5 * time.Second
		cfg.Rate = 20
		cfg.Variant = sys.Variant()
		nw, err := NewNetwork(cfg)
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if rep := nw.Run(); rep.Valid == 0 {
			t.Errorf("%v: no valid transactions", sys)
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	if len(Experiments()) != 30 {
		t.Errorf("%d experiments exposed, want 30 (25 paper + retry-policies + retry-cotune + retry-coordination + scale + faults)", len(Experiments()))
	}
	if _, err := LookupExperiment("fig26"); err != nil {
		t.Error(err)
	}
	if _, err := LookupExperiment("retry-policies"); err != nil {
		t.Error(err)
	}
	if _, err := LookupExperiment("retry-cotune"); err != nil {
		t.Error(err)
	}
	if _, err := LookupExperiment("retry-coordination"); err != nil {
		t.Error(err)
	}
	if _, err := LookupExperiment("scale"); err != nil {
		t.Error(err)
	}
	if _, err := LookupExperiment("faults"); err != nil {
		t.Error(err)
	}
	if FullOptions().Duration != 3*time.Minute {
		t.Error("full options should use the paper's 3-minute window")
	}
	if QuickOptions().Duration >= FullOptions().Duration {
		t.Error("quick options should be shorter than full")
	}
}

func TestRetryFacade(t *testing.T) {
	// The policy ladder re-exported at the root must satisfy the
	// acceptance shape and expose distinct names.
	policies := RetryPolicies()
	if len(policies) < 3 {
		t.Fatalf("%d policies, want >= 3", len(policies))
	}
	var _ RetryPolicy = NoRetry{}
	var _ RetryPolicy = ImmediateRetry{MaxAttempts: 2}
	var _ RetryPolicy = ExponentialBackoff{}
	var _ RetryPolicy = GiveUpAfter(NoRetry{}, 1)

	// A short closed-loop run with retries through the facade: the
	// effective metrics must be populated and self-consistent.
	cfg := quickCfg(21)
	cfg.Retry = ImmediateRetry{MaxAttempts: 3}
	cfg.ClosedLoop = true
	cfg.InFlightPerClient = 3
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := nw.Run()
	if rep.Jobs == 0 || rep.Attempts < rep.Jobs {
		t.Fatalf("effective metrics missing: %+v", rep)
	}
	if rep.EventualValid+rep.GaveUp != rep.Jobs {
		t.Errorf("jobs %d != eventual %d + gave-up %d", rep.Jobs, rep.EventualValid, rep.GaveUp)
	}
	if rep.Goodput > rep.Throughput {
		t.Errorf("goodput %.2f above throughput %.2f", rep.Goodput, rep.Throughput)
	}
}
