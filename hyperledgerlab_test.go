package hyperledgerlab

import (
	"strings"
	"testing"
	"time"
)

func quickCfg(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 10 * time.Second
	cfg.Drain = 15 * time.Second
	cfg.Rate = 50
	cfg.Chaincode = EHRChaincode()
	cfg.Workload = EHRWorkload(1)
	return cfg
}

func TestQuickstartFlow(t *testing.T) {
	nw, err := NewNetwork(quickCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	rep := nw.Run()
	if rep.Total == 0 || rep.Valid == 0 {
		t.Fatalf("empty run: %v", rep)
	}
	if rep.Counts[Valid] != rep.Valid {
		t.Error("code constants not wired to the report")
	}
}

func TestAllChaincodeFactories(t *testing.T) {
	ccs := []struct {
		cc Chaincode
		wl WorkloadGenerator
	}{
		{EHRChaincode(), EHRWorkload(1)},
		{DVChaincode(), DVWorkload(1)},
		{SCMChaincode(), SCMWorkload(1)},
		{DRMChaincode(), DRMWorkload(1)},
	}
	for _, c := range ccs {
		cfg := quickCfg(2)
		cfg.Duration = 5 * time.Second
		cfg.Rate = 20
		cfg.Chaincode = c.cc
		cfg.Workload = c.wl
		nw, err := NewNetwork(cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.cc.Name(), err)
		}
		rep := nw.Run()
		if rep.Valid == 0 {
			t.Errorf("%s: no valid transactions (%v)", c.cc.Name(), rep)
		}
	}
}

func TestGeneratedChaincodeRoundTrip(t *testing.T) {
	spec := GenChainSpec()
	spec.Keys = 2000
	cc, err := GenerateChaincode(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(3)
	cfg.DBKind = LevelDB
	cfg.Chaincode = cc
	cfg.Workload = GenWorkload(spec, UpdateHeavy, 1)
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep := nw.Run(); rep.Valid == 0 {
		t.Fatalf("generated chaincode run failed: %v", rep)
	}
	src, err := RenderChaincode(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "package genChain") {
		t.Error("rendered source lacks package clause")
	}
}

func TestVariantsViaFacade(t *testing.T) {
	for _, sys := range []System{Fabric14, FabricPP, Streamchain, FabricSharp} {
		cfg := quickCfg(4)
		cfg.Duration = 5 * time.Second
		cfg.Rate = 20
		cfg.Variant = sys.Variant()
		nw, err := NewNetwork(cfg)
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if rep := nw.Run(); rep.Valid == 0 {
			t.Errorf("%v: no valid transactions", sys)
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	if len(Experiments()) != 25 {
		t.Errorf("%d experiments exposed, want 25", len(Experiments()))
	}
	if _, err := LookupExperiment("fig26"); err != nil {
		t.Error(err)
	}
	if FullOptions().Duration != 3*time.Minute {
		t.Error("full options should use the paper's 3-minute window")
	}
	if QuickOptions().Duration >= FullOptions().Duration {
		t.Error("quick options should be shorter than full")
	}
}
