// Package fabric assembles the full simulated Hyperledger Fabric
// network: clients, endorsing peers, the ordering service with a
// pluggable consenter (solo/kafka/raft), the block cutter, and the
// validation/commit pipeline that produces the paper's three failure
// classes. The Execute-Order-Validate protocol runs for real; virtual
// time comes from the cost model.
package fabric

import (
	"fmt"
	"math"
	"time"

	"repro/internal/chaincode"
	"repro/internal/costmodel"
	"repro/internal/ledger"
	"repro/internal/netem"
	"repro/internal/policy"
	"repro/internal/statedb"
	"repro/internal/workload"
)

// Config describes one experiment run. NewNetwork validates it.
type Config struct {
	Seed int64

	// Topology (Table 3 / §4.2).
	Orgs        int
	PeersPerOrg int
	Orderers    int
	Clients     int

	// Channels shards the chaincode keyspace across independent
	// channels — Fabric's real horizontal-scaling story. Each channel
	// gets its own ordering service (sharing the consensus substrate,
	// like channels sharing one Kafka cluster), its own validator and
	// hash chain, and its own world-state replica on every peer.
	// Transactions route to a channel by hashing their first invocation
	// argument, so a contended entity always lands on the same channel
	// and contention is preserved within shards. 0 or 1 keeps the
	// historical single-channel network, byte-identical to builds
	// without the field. Multi-channel runs support only the vanilla
	// Fabric 1.4 variant (the fork hooks keep cross-block state that is
	// not channel-aware).
	Channels int

	// CrossChannel is the fraction of transactions in [0,1) that span
	// two channels when Channels >= 2: the client submits the same
	// invocation on its home channel and one uniformly drawn second
	// channel, and the logical transaction succeeds only if both legs
	// commit — the application-level two-leg pattern real Fabric apps
	// use, since channels have no atomic cross-channel commit. 0 (the
	// default) draws no rng and submits single-channel only.
	CrossChannel float64

	// CohortSize makes client count a cheap parameter instead of an
	// object count: one cohort state object drives CohortSize
	// statistically identical clients, sharing the heavy retry/budget/
	// AIMD/gossip state while keeping only a per-member endorser
	// rotation (a few bytes per simulated client). Open-loop cohorts
	// submit on one aggregate Poisson process with the submitting
	// member drawn from the sim rng; closed-loop cohorts drive each
	// member's window exactly and reproduce the per-client simulation
	// byte-identically when the shared state is stateless (see
	// cohort.go). 0 or 1 keeps the exact one-object-per-client
	// simulation.
	CohortSize int

	// Ordering (§2 step 4).
	BlockSize    int           // block size: max transactions per block
	BlockTimeout time.Duration // block timeout
	MaxBlockKB   int           // block max bytes, in KiB
	Consensus    string        // "solo", "kafka" or "raft"

	// State database and endorsement policy.
	DBKind statedb.Kind
	Policy policy.Name

	// Load.
	Rate     float64       // transaction arrival rate, tps (all clients combined)
	Duration time.Duration // send window (paper: 3 minutes)
	Drain    time.Duration // extra virtual time to let in-flight txs finish
	// RateSchedule optionally varies the arrival rate over the send
	// window (e.g. the seasonal load of §6.1's block-size example).
	// Phases play in order; any remaining window uses Rate.
	RateSchedule []RatePhase

	// Application.
	Chaincode chaincode.Chaincode
	Workload  workload.Generator

	// Network emulation (§5.1.7): inject extra delay on one org.
	LAN       netem.Link
	DelayOrg  int // -1 = none
	DelayLink netem.Link

	// Cost calibration.
	PeerCosts    costmodel.PeerCosts
	OrdererCosts costmodel.OrdererCosts
	// SpeedFactor scales fixed per-block costs down for larger
	// clusters (C2 has more resources, §5.1.1).
	SpeedFactor float64

	// ClientCheck enables the optional client-side verification of
	// endorsement consistency (§2 step 3): mismatching responses are
	// dropped before ordering.
	ClientCheck bool

	// SkipReadOnlySubmission implements the paper's recommendation #4
	// (§6.1): transactions whose simulation produced no writes are
	// not submitted for ordering — the client already has the result
	// after the execution phase. They are counted as served reads
	// instead of chain transactions.
	SkipReadOnlySubmission bool

	// Retry selects the client resubmission policy. Nil (or NoRetry,
	// the default) reproduces the paper's fire-and-forget clients:
	// failed transactions are never resent (§4.5). Any other policy
	// makes clients track pending transactions, listen for commit
	// events, and resubmit failures per the policy's backoff schedule.
	// Stateful policies (AdaptivePolicy) are instantiated once per
	// client so each client adapts to its own failure rate.
	Retry RetryPolicy

	// RetryBudget rate-limits resubmissions per client with a token
	// bucket (RefillPerSec tokens/s of virtual time, capacity Burst),
	// on top of — and regardless of — whatever Retry policy is
	// configured. Nil (the default) means unlimited: the policy alone
	// decides. An empty bucket defers the retry until a token accrues,
	// or drops the transaction when DropOnEmpty is set. Ignored when
	// no retry policy is configured.
	RetryBudget *RetryBudget

	// Backpressure enables the orderer-driven congestion signal: the
	// ordering service condenses its backlog and arrival-vs-service
	// pressure into a smoothed hint per cut block, stamps it onto
	// commit events, and clients pace resubmissions and new closed-loop
	// submissions by hint×Gain (see the Backpressure type). It also
	// feeds the hint-driven retry policies (BackpressurePolicy,
	// AdaptivePolicy.HintWeight). Nil (the default) disables the
	// subsystem completely — runs are byte-identical to a build
	// without it. Pacing requires outcome tracking (a retry policy or
	// closed-loop mode).
	Backpressure *Backpressure

	// Gossip enables the client-to-client congestion signal: every
	// client condenses its own outcome stream into a windowed
	// failure-rate estimate and periodically exchanges it with Fanout
	// sampled peers over the network model, merging by max-with-decay
	// (see the Gossip type). The merged estimate feeds the same hint
	// path as the orderer's signal, selected by HintSource. Nil (the
	// default) disables the subsystem completely — runs are
	// byte-identical to a build without it. Like backpressure pacing,
	// gossip requires outcome tracking (a retry policy or closed-loop
	// mode) and is inert on fire-and-forget runs.
	Gossip *Gossip

	// HintSource selects which producer feeds the congestion hint
	// clients pace by and that hint-consuming policies read: "orderer"
	// (the default; also the empty string) for the backpressure hint
	// on commit events, "gossip" for the client-to-client estimate
	// (the orderer then computes no hints at all), or "both" to
	// max-combine the two. "gossip" and "both" require Config.Gossip.
	HintSource HintSource

	// SplitSignal splits the client-side outcome signal into a conflict
	// estimate and a congestion estimate and routes each to the control
	// it can help: conflict (MVCC/phantom/endorsement failures) drives
	// backoff — AdaptivePolicy's AIMD increase gates on the conflict
	// rate, and the hint-consuming policies (BackpressurePolicy,
	// AdaptivePolicy.HintWeight) slide on the gossiped conflict
	// estimate — while congestion (CLIENT_TIMEOUT, slow attempts past
	// CongestLatency, the orderer's hint) drives the backpressure
	// pacing path. The gossip mesh then carries a two-component
	// estimate with per-component decay and max-merge. Nil (the
	// default) keeps the scalar signal: runs are byte-identical to
	// builds without the field. Like the signals it routes, the split
	// requires outcome tracking (a retry policy or closed-loop mode).
	SplitSignal *SplitSignal

	// ClosedLoop switches clients from open-loop Poisson arrivals to
	// a closed loop: each client keeps InFlightPerClient logical
	// transactions outstanding and submits the next one as soon as one
	// resolves (commits, is abandoned, or is served as a read), after
	// an optional ThinkTime wait. Rate is ignored for arrivals in this
	// mode. Default false (open loop).
	ClosedLoop bool

	// InFlightPerClient is the closed-loop window per client
	// (outstanding logical transactions). 0 defaults to 1. Ignored in
	// open-loop mode.
	InFlightPerClient int

	// ThinkTime is the closed-loop think-time distribution: how long a
	// client waits between resolving one logical transaction and
	// submitting the next (fixed, exponential or log-normal, mean in
	// virtual time). The zero value means no think time — the
	// historical closed-loop behaviour. Ignored in open-loop mode.
	ThinkTime ThinkTime

	// Faults installs a deterministic fault-injection schedule: timed
	// crash/restart windows for peers and ordering services, netem
	// partitions, stragglers and loss regimes, a slow state-database
	// window, and client-side endorsement/submission deadlines (see
	// the Faults type). Schedules run on the virtual clock and draw
	// their targets from a seed-derived rng separate from the
	// simulation stream, so faulted runs are deterministic at any
	// experiment parallelism. Nil (the default) disables the subsystem
	// completely — runs are byte-identical to a build without it.
	Faults *Faults

	// Variant plugs in a Fabric fork (Fabric++, Streamchain,
	// FabricSharp). Nil runs vanilla Fabric 1.4.
	Variant Variant

	// StripAfterCommit frees heavy transaction payloads (endorsement
	// lists, range observations) once a block is committed and
	// measured, bounding memory on range-heavy workloads.
	StripAfterCommit bool
}

// DefaultConfig returns the paper's default control variables
// (Table 3) on the small C1 cluster: 2 orgs × 2 peers, 3 orderers
// (kafka), 5 clients, block size 100, CouchDB, policy P0, 100 tps.
// Chaincode and Workload must still be set by the caller.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Orgs:             2,
		PeersPerOrg:      2,
		Orderers:         3,
		Clients:          5,
		BlockSize:        100,
		BlockTimeout:     2 * time.Second,
		MaxBlockKB:       10240,
		Consensus:        "kafka",
		DBKind:           statedb.CouchDB,
		Policy:           policy.P0,
		Rate:             100,
		Duration:         3 * time.Minute,
		Drain:            time.Minute,
		LAN:              netem.DefaultLAN(),
		DelayOrg:         -1,
		PeerCosts:        costmodel.DefaultPeerCosts(),
		OrdererCosts:     costmodel.DefaultOrdererCosts(),
		SpeedFactor:      1,
		StripAfterCommit: true,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Orgs < 2:
		return fmt.Errorf("fabric: need >=2 orgs, got %d", c.Orgs)
	case c.PeersPerOrg < 1:
		return fmt.Errorf("fabric: need >=1 peer per org")
	case c.Orderers < 1:
		return fmt.Errorf("fabric: need >=1 orderer")
	case c.Clients < 1:
		return fmt.Errorf("fabric: need >=1 client")
	case c.BlockSize < 1:
		return fmt.Errorf("fabric: block size must be positive")
	case c.BlockTimeout <= 0:
		return fmt.Errorf("fabric: block timeout must be positive")
	case c.Rate <= 0:
		return fmt.Errorf("fabric: arrival rate must be positive")
	case c.Duration <= 0:
		return fmt.Errorf("fabric: duration must be positive")
	case c.Chaincode == nil:
		return fmt.Errorf("fabric: chaincode not set")
	case c.Workload == nil:
		return fmt.Errorf("fabric: workload not set")
	case c.SpeedFactor <= 0:
		return fmt.Errorf("fabric: speed factor must be positive")
	case c.InFlightPerClient < 0:
		return fmt.Errorf("fabric: in-flight window must be non-negative")
	case c.Channels < 0:
		return fmt.Errorf("fabric: channel count must be >= 0 (0 or 1 = single channel), got %d channels", c.Channels)
	case c.CohortSize < 0:
		return fmt.Errorf("fabric: cohort size must be >= 0 clients per cohort (0 or 1 = exact per-client simulation), got %d", c.CohortSize)
	case math.IsNaN(c.CrossChannel) || c.CrossChannel < 0 || c.CrossChannel >= 1:
		return fmt.Errorf("fabric: cross-channel fraction must be in [0,1), got %g", c.CrossChannel)
	case c.CrossChannel > 0 && c.Channels < 2:
		return fmt.Errorf("fabric: cross-channel fraction %g needs >= 2 channels, got %d", c.CrossChannel, c.Channels)
	}
	if c.Channels > 1 && c.Variant != nil && c.Variant.Name() != (Vanilla{}).Name() {
		return fmt.Errorf("fabric: multi-channel sharding (%d channels) supports only the vanilla fabric-1.4 variant, got %q", c.Channels, c.Variant.Name())
	}
	switch c.Consensus {
	case "solo", "kafka", "raft":
	default:
		return fmt.Errorf("fabric: unknown consensus %q", c.Consensus)
	}
	if v, ok := c.Retry.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return err
		}
	}
	if c.RetryBudget != nil {
		if err := c.RetryBudget.Validate(); err != nil {
			return err
		}
	}
	if c.Backpressure != nil {
		if err := c.Backpressure.Validate(); err != nil {
			return err
		}
	}
	if c.Gossip != nil {
		if err := c.Gossip.Validate(); err != nil {
			return err
		}
	}
	if err := c.HintSource.Validate(); err != nil {
		return err
	}
	if c.HintSource.usesGossip() && c.Gossip == nil {
		return fmt.Errorf("fabric: hint source %q needs Config.Gossip", string(c.HintSource))
	}
	if c.SplitSignal != nil {
		if err := c.SplitSignal.Validate(); err != nil {
			return err
		}
	}
	if err := c.ThinkTime.Validate(); err != nil {
		return err
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// channels resolves the configured channel count (0 means 1).
func (c *Config) channels() int {
	if c.Channels < 1 {
		return 1
	}
	return c.Channels
}

// cohortSize resolves the configured cohort size (0 means 1, the
// exact per-client simulation).
func (c *Config) cohortSize() int {
	if c.CohortSize < 1 {
		return 1
	}
	return c.CohortSize
}

// RatePhase is one segment of a time-varying arrival process.
type RatePhase struct {
	Duration time.Duration
	Rate     float64 // tps across all clients
}

// RateAt resolves the configured arrival rate at virtual time t.
func (c *Config) RateAt(t time.Duration) float64 {
	for _, p := range c.RateSchedule {
		if t < p.Duration {
			return p.Rate
		}
		t -= p.Duration
	}
	return c.Rate
}

// Variant is a pluggable Fabric fork. The zero behaviour (vanilla
// Fabric 1.4) is provided by Vanilla.
type Variant interface {
	// Name identifies the system ("fabric++", "streamchain", ...).
	Name() string
	// Adjust lets the variant rewrite the configuration before the
	// network is built (e.g. Streamchain forces block size 1 and
	// RAM-disk commit costs).
	Adjust(cfg *Config)
	// OnSubmit intercepts a transaction as it enters the ordering
	// service. Returning accept=false aborts it early
	// (ABORTED_IN_ORDERING); cost is virtual ordering-CPU time
	// consumed by the decision.
	OnSubmit(tx *ledger.Transaction) (accept bool, cost time.Duration)
	// OnCut post-processes a freshly cut batch: it may reorder kept
	// transactions and abort others; cost is the reordering time
	// (Fabric++'s conflict-graph construction).
	OnCut(batch []*ledger.Transaction) (kept, aborted []*ledger.Transaction, cost time.Duration)
	// SkipMVCC reports whether validation must skip MVCC and phantom
	// checks because the orderer already serialized the transactions
	// (FabricSharp).
	SkipMVCC() bool
	// OnBlockValidated feeds the validation outcome back to the
	// variant, in block order (FabricSharp's scheduler uses it to
	// learn the committed heights of the writes it scheduled).
	OnBlockValidated(b *ledger.Block, codes []ledger.ValidationCode)
	// EndorseSnapshotLag reports whether endorsement reads one block
	// behind the latest commit (FabricSharp's block snapshots,
	// §5.4.1).
	EndorseSnapshotLag() bool
}

// Vanilla is the no-op variant: plain Fabric 1.4.
type Vanilla struct{}

// Name implements Variant.
func (Vanilla) Name() string { return "fabric-1.4" }

// Adjust implements Variant.
func (Vanilla) Adjust(*Config) {}

// OnSubmit implements Variant.
func (Vanilla) OnSubmit(*ledger.Transaction) (bool, time.Duration) { return true, 0 }

// OnCut implements Variant.
func (Vanilla) OnCut(batch []*ledger.Transaction) ([]*ledger.Transaction, []*ledger.Transaction, time.Duration) {
	return batch, nil, 0
}

// SkipMVCC implements Variant.
func (Vanilla) SkipMVCC() bool { return false }

// OnBlockValidated implements Variant.
func (Vanilla) OnBlockValidated(*ledger.Block, []ledger.ValidationCode) {}

// EndorseSnapshotLag implements Variant.
func (Vanilla) EndorseSnapshotLag() bool { return false }
