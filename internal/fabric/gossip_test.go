package fabric

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestGossipDefaultsAndValidation(t *testing.T) {
	g := Gossip{}.withDefaults()
	if g.Fanout != 2 || g.Period != 500*time.Millisecond || g.Decay != 0.5 || g.Window != 32 {
		t.Errorf("defaults = %+v, want f2 500ms d0.5 w32", g)
	}
	for i, bad := range []Gossip{
		{Fanout: -1},
		{Period: -time.Second},
		{Decay: -0.5},
		{Decay: math.NaN()},
		{Decay: math.Inf(1)},
		{Window: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, bad)
		}
	}
	if got := (Gossip{}).Name(); got != "gossip(f2,500ms,d0.5)" {
		t.Errorf("name = %q", got)
	}
	cfg := retryConfig(1, ImmediateRetry{MaxAttempts: 3})
	cfg.Gossip = &Gossip{Fanout: -2}
	if _, err := NewNetwork(cfg); err == nil {
		t.Error("network accepted an invalid gossip config")
	}
}

func TestHintSourceValidation(t *testing.T) {
	for _, ok := range []HintSource{"", HintOrderer, HintGossip, HintBoth} {
		if err := ok.Validate(); err != nil {
			t.Errorf("%q: %v", ok, err)
		}
	}
	if err := HintSource("fleet").Validate(); err == nil {
		t.Error("unknown hint source validated")
	}
	if !HintSource("").usesOrderer() || HintSource("").usesGossip() {
		t.Error("empty source must resolve to orderer-only")
	}
	if !HintBoth.usesOrderer() || !HintBoth.usesGossip() {
		t.Error("both must use both producers")
	}
	if HintGossip.usesOrderer() || !HintGossip.usesGossip() {
		t.Error("gossip source must not use the orderer")
	}
	// gossip/both without Config.Gossip is a config error.
	cfg := retryConfig(1, ImmediateRetry{MaxAttempts: 3})
	cfg.HintSource = HintGossip
	if _, err := NewNetwork(cfg); err == nil {
		t.Error("hint source gossip accepted without Config.Gossip")
	}
}

func TestParseGossip(t *testing.T) {
	if g, err := ParseGossip(""); err != nil || g != nil {
		t.Errorf("ParseGossip(\"\") = %+v, %v", g, err)
	}
	if g, err := ParseGossip("off"); err != nil || g != nil {
		t.Errorf("ParseGossip(off) = %+v, %v", g, err)
	}
	if g, err := ParseGossip("on"); err != nil || g == nil || *g != (Gossip{}) {
		t.Errorf("ParseGossip(on) = %+v, %v", g, err)
	}
	want := Gossip{Fanout: 3, Period: 250 * time.Millisecond, Decay: 1.5}
	if g, err := ParseGossip("3:250ms:1.5"); err != nil || g == nil || *g != want {
		t.Errorf("ParseGossip(3:250ms:1.5) = %+v, %v", g, err)
	}
	if g, err := ParseGossip("3:250ms"); err != nil || g == nil || g.Decay != 0 {
		t.Errorf("two-field spec = %+v, %v", g, err)
	}
	for _, in := range []string{"x", "3", "a:1s", "3:zz", "3:1s:zz", "-1:1s", "3:1s:0.5:9"} {
		if _, err := ParseGossip(in); err == nil {
			t.Errorf("ParseGossip(%q) accepted", in)
		}
	}
	if src, err := ParseHintSource(""); err != nil || src != HintOrderer {
		t.Errorf("ParseHintSource(\"\") = %q, %v", src, err)
	}
	if src, err := ParseHintSource("BOTH"); err != nil || src != HintBoth {
		t.Errorf("ParseHintSource(BOTH) = %q, %v", src, err)
	}
	if _, err := ParseHintSource("fleet"); err == nil {
		t.Error("ParseHintSource(fleet) accepted")
	}
}

func TestDecayAndMergeMath(t *testing.T) {
	if got := DecayEstimate(0.8, 0, 0.5); got != 0.8 {
		t.Errorf("zero age decayed: %g", got)
	}
	if got := DecayEstimate(0.8, time.Second, 0); got != 0.8 {
		t.Errorf("zero rate decayed: %g", got)
	}
	want := 0.8 * math.Exp(-0.5)
	if got := DecayEstimate(0.8, time.Second, 0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("decay(0.8, 1s, 0.5) = %g, want %g", got, want)
	}
	if got := DecayEstimate(1.7, 0, 0.5); got != 1 {
		t.Errorf("over-unity estimate not clamped: %g", got)
	}
	if got := DecayEstimate(math.NaN(), time.Second, 0.5); got != 0 {
		t.Errorf("NaN estimate = %g, want 0", got)
	}
	if got := MergeEstimates(0.3, 0.7); got != 0.7 {
		t.Errorf("merge = %g, want 0.7", got)
	}
	if got := MergeEstimates(-3, 1.5); got != 1 {
		t.Errorf("merge of out-of-range inputs = %g, want 1", got)
	}
}

func TestGossipStateWindowAndEstimate(t *testing.T) {
	g := newGossipState(Gossip{Window: 4}.withDefaults(), false)
	if est, stale := g.estimate(0); est != 0 || stale != 0 {
		t.Fatalf("fresh state estimate = %g stale=%v", est, stale)
	}
	// One failure over a window of 4 reads as 1/4 even while filling.
	g.observe(true)
	if est, _ := g.estimate(0); est != 0.25 {
		t.Errorf("estimate after 1 failure = %g, want 0.25", est)
	}
	g.observe(false)
	g.observe(false)
	g.observe(false)
	g.observe(false) // evicts the failure
	if est, _ := g.estimate(0); est != 0 {
		t.Errorf("estimate after window slid clean = %g, want 0", est)
	}
}

func TestGossipStateMergeMaxWithDecay(t *testing.T) {
	g := newGossipState(Gossip{Decay: math.Ln2}.withDefaults(), false) // half-life 1s
	now := sim.Time(10 * time.Second)
	if !g.merge(0.8, now-sim.Time(time.Second), now) {
		t.Fatal("first estimate not adopted")
	}
	// Decayed one half-life: worth 0.4 now.
	if est, stale := g.estimate(now); math.Abs(est-0.4) > 1e-12 || stale != time.Second {
		t.Errorf("estimate = %g stale=%v, want 0.4 / 1s", est, stale)
	}
	// A weaker incoming estimate is not adopted.
	if g.merge(0.3, now, now) {
		t.Error("weaker estimate displaced a stronger one")
	}
	// A fresher estimate that beats the decayed view is adopted even
	// though its raw value is below the stored raw value.
	if !g.merge(0.5, now, now) {
		t.Error("fresher stronger-now estimate rejected")
	}
	if est, stale := g.estimate(now); est != 0.5 || stale != 0 {
		t.Errorf("estimate after re-merge = %g stale=%v, want 0.5 / 0", est, stale)
	}
	// Local beats remote once the remote has decayed below it: the
	// staleness at use is then zero (own outcomes are live).
	g.observe(true) // 1/32 with the default window... use a long horizon instead
	far := now + sim.Time(time.Minute)
	if est, stale := g.estimate(far); stale != 0 || est != g.localRate() {
		t.Errorf("after a minute of decay estimate = %g stale=%v, want the local rate %g",
			est, stale, g.localRate())
	}
	// Zero estimates are never "adopted" into an empty view.
	fresh := newGossipState(Gossip{}.withDefaults(), false)
	if fresh.merge(0, now, now) {
		t.Error("zero estimate adopted into an empty view")
	}
}

// gossipConfig is a congested run using the gossiped signal: the
// undersized orderer drives failures up, clients share their windowed
// failure views, and the pacer and hinted policy act on them.
func gossipConfig(seed int64) Config {
	cfg := retryConfig(seed, ImmediateRetry{MaxAttempts: 5})
	cfg.OrdererCosts.PerTx = 25 * time.Millisecond
	cfg.Backpressure = &Backpressure{}
	cfg.Gossip = &Gossip{}
	cfg.HintSource = HintGossip
	return cfg
}

func TestGossipRunExchangesAndPaces(t *testing.T) {
	_, rep := run(t, gossipConfig(1))
	if rep.GossipMessages == 0 {
		t.Fatal("no gossip messages sent")
	}
	if rep.GossipMerges == 0 {
		t.Error("no gossip estimate ever adopted")
	}
	if rep.GossipEstimateMax <= 0 || rep.GossipEstimateMax > 1 {
		t.Errorf("gossip estimate max = %g, want in (0,1]", rep.GossipEstimateMax)
	}
	if rep.GossipUses == 0 || rep.GossipStalenessMax <= 0 {
		t.Errorf("uses=%d stale-max=%v, want consultations with non-zero staleness",
			rep.GossipUses, rep.GossipStalenessMax)
	}
	if rep.PacedSubmissions == 0 || rep.TimePaced == 0 {
		t.Errorf("paced=%d time-paced=%v, want gossip-driven pacing under congestion",
			rep.PacedSubmissions, rep.TimePaced)
	}
	// Pure gossip source: the orderer must stay fully out of the
	// signal path.
	if rep.BackpressureHintAvg != 0 || rep.BackpressureHintMax != 0 || rep.BackpressureHintFinal != 0 {
		t.Errorf("orderer hints computed under HintSource=gossip: %+v", rep)
	}
}

func TestGossipFeedsHintedPolicyWithoutBackpressure(t *testing.T) {
	// BackpressurePolicy consuming the gossip estimate with no
	// Backpressure config at all: no pacer, no orderer hints — the
	// backoff alone must stretch with the shared estimate.
	cfg := retryConfig(2, BackpressurePolicy{Floor: 100 * time.Millisecond, Ceiling: 4 * time.Second, MaxAttempts: 5})
	cfg.OrdererCosts.PerTx = 25 * time.Millisecond
	cfg.Gossip = &Gossip{}
	cfg.HintSource = HintGossip
	_, hinted := run(t, cfg)

	floorOnly := retryConfig(2, BackpressurePolicy{Floor: 100 * time.Millisecond, Ceiling: 4 * time.Second, MaxAttempts: 5})
	floorOnly.OrdererCosts.PerTx = 25 * time.Millisecond
	_, f := run(t, floorOnly)

	if hinted.PacedSubmissions != 0 {
		t.Errorf("no pacer configured but %d submissions paced", hinted.PacedSubmissions)
	}
	if hinted.GossipMessages == 0 {
		t.Fatal("gossip never engaged")
	}
	if hinted.RetryAmplification >= f.RetryAmplification {
		t.Errorf("gossip-hinted amplification %.3f >= floor-only %.3f: the shared estimate did not slow retries",
			hinted.RetryAmplification, f.RetryAmplification)
	}
}

func TestGossipNilIsByteIdentical(t *testing.T) {
	// Config.Gossip == nil and an explicit HintSource "orderer" must
	// reproduce the PR-4 behaviour exactly, field for field.
	base := retryConfig(3, ImmediateRetry{MaxAttempts: 5})
	base.OrdererCosts.PerTx = 25 * time.Millisecond
	base.Backpressure = &Backpressure{}
	_, plain := run(t, base)

	explicit := retryConfig(3, ImmediateRetry{MaxAttempts: 5})
	explicit.OrdererCosts.PerTx = 25 * time.Millisecond
	explicit.Backpressure = &Backpressure{}
	explicit.HintSource = HintOrderer
	_, src := run(t, explicit)
	if !reflect.DeepEqual(plain, src) {
		t.Errorf("explicit HintSource=orderer diverged from the default:\n%+v\n%+v", plain, src)
	}
	if plain.GossipMessages != 0 || plain.GossipMerges != 0 || plain.GossipUses != 0 ||
		plain.GossipEstimateMax != 0 || plain.GossipStalenessMax != 0 {
		t.Errorf("nil gossip left traces: %+v", plain)
	}
}

func TestGossipInertWithoutTracking(t *testing.T) {
	// Fire-and-forget open loop: no outcome stream, so the gossip
	// subsystem must be fully inert — no rounds, no rng, identical
	// reports.
	cfg := testConfig(4)
	cfg.Gossip = &Gossip{}
	_, withGossip := run(t, cfg)
	_, plain := run(t, testConfig(4))
	if !reflect.DeepEqual(withGossip, plain) {
		t.Error("gossip changed a fire-and-forget run")
	}
	if withGossip.GossipMessages != 0 {
		t.Errorf("untracked run sent %d gossip messages", withGossip.GossipMessages)
	}
}

func TestGossipRunsDeterministic(t *testing.T) {
	_, a := run(t, gossipConfig(5))
	_, b := run(t, gossipConfig(5))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical gossip runs diverged:\n%+v\n%+v", a, b)
	}
	_, c := run(t, gossipConfig(6))
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical gossip runs")
	}
}

func TestGossipBothSourceCombinesSignals(t *testing.T) {
	cfg := gossipConfig(7)
	cfg.HintSource = HintBoth
	_, rep := run(t, cfg)
	// Both producers must be live: the orderer samples hints at cuts
	// and the clients sample gossip estimates at rounds.
	if rep.BackpressureHintMax <= 0 {
		t.Error("both-source run computed no orderer hints")
	}
	if rep.GossipEstimateMax <= 0 {
		t.Error("both-source run sampled no gossip estimates")
	}
	if rep.GossipEstimateMax > 1 || rep.BackpressureHintMax > 1 {
		t.Errorf("hint out of range: orderer %g gossip %g",
			rep.BackpressureHintMax, rep.GossipEstimateMax)
	}
}

// FuzzGossipMerge drives the merge/decay algebra with adversarial
// estimates, ages and decay rates: whatever the inputs, a merged
// estimate stays in [0,1], the max-merge is monotone (never below
// either clamped input), decay never increases an estimate and is
// monotone in age, and a gossipState fed the same sequence keeps its
// own view in range. The same laws are checked component-wise on the
// two-component split algebra (SplitEstimate), with the inputs
// crossed so the conflict and congestion components exercise
// different values.
func FuzzGossipMerge(f *testing.F) {
	f.Add(0.5, 0.25, int64(time.Second), 0.5)
	f.Add(0.0, 1.0, int64(0), 0.0)
	f.Add(1.5, -0.5, int64(-time.Second), 2.0)
	f.Add(0.9, 0.9, int64(time.Hour), math.MaxFloat64)
	f.Add(math.Inf(1), math.NaN(), int64(time.Millisecond), math.NaN())
	f.Fuzz(func(t *testing.T, a, b float64, ageNs int64, decay float64) {
		age := time.Duration(ageNs)

		merged := MergeEstimates(a, b)
		if merged < 0 || merged > 1 || math.IsNaN(merged) {
			t.Fatalf("merge(%g,%g) = %g out of [0,1]", a, b, merged)
		}
		if merged < ClampEstimate(a) || merged < ClampEstimate(b) {
			t.Fatalf("merge(%g,%g) = %g below an input", a, b, merged)
		}

		d := DecayEstimate(merged, age, decay)
		if d < 0 || d > 1 || math.IsNaN(d) {
			t.Fatalf("decay(%g,%v,%g) = %g out of [0,1]", merged, age, decay, d)
		}
		if d > merged {
			t.Fatalf("decay(%g,%v,%g) = %g grew the estimate", merged, age, decay, d)
		}
		if age >= 0 {
			if older := DecayEstimate(merged, age+time.Second, decay); older > d+1e-15 {
				t.Fatalf("decay not monotone in age: %g at %v vs %g at %v",
					d, age, older, age+time.Second)
			}
		}

		// The split algebra must obey the same laws component-wise.
		sa := SplitEstimate{Conflict: a, Congestion: b}
		sb := SplitEstimate{Conflict: b, Congestion: a}
		sm := MergeSplitEstimates(sa, sb)
		for _, c := range []float64{sm.Conflict, sm.Congestion} {
			if c < 0 || c > 1 || math.IsNaN(c) {
				t.Fatalf("split merge component %g out of [0,1] (merge %+v + %+v)", c, sa, sb)
			}
		}
		if sm.Conflict != merged || sm.Congestion != merged {
			t.Fatalf("split merge %+v != scalar merge %g of the same inputs", sm, merged)
		}
		sd := DecaySplitEstimate(sm, age, decay)
		if sd.Conflict > sm.Conflict || sd.Congestion > sm.Congestion {
			t.Fatalf("split decay grew a component: %+v from %+v", sd, sm)
		}
		for _, c := range []float64{sd.Conflict, sd.Congestion} {
			if c < 0 || c > 1 || math.IsNaN(c) {
				t.Fatalf("split decay component %g out of [0,1]", c)
			}
		}
		if sd.Conflict != d || sd.Congestion != d {
			t.Fatalf("split decay %+v != scalar decay %g of the same inputs", sd, d)
		}
		if mx := sm.Max(); mx != merged {
			t.Fatalf("SplitEstimate.Max() = %g, scalar merge = %g", mx, merged)
		}

		// A state fed the same raw inputs must keep its view in range.
		decayCfg := decay
		if decayCfg < 0 || math.IsNaN(decayCfg) || math.IsInf(decayCfg, 0) {
			decayCfg = 0.5 // state configs are validated; clamp for the harness
		}
		g := newGossipState(Gossip{Decay: decayCfg}.withDefaults(), false)
		now := sim.Time(2 * time.Hour)
		sent := now - sim.Time(age)
		if sent > now {
			sent = now
		}
		g.merge(a, sent, now)
		g.merge(b, now, now)
		g.observe(true)
		if est, stale := g.estimate(now); est < 0 || est > 1 || math.IsNaN(est) || stale < 0 {
			t.Fatalf("state estimate = %g stale=%v out of range", est, stale)
		}

		// And a split state fed the same sequence keeps both components
		// in range.
		gs := newGossipState(Gossip{Decay: decayCfg}.withDefaults(), true)
		gs.mergeSplit(sa, sent, now)
		gs.mergeSplit(sb, now, now)
		gs.observeSplit(SignalConflict, true)
		se, stale := gs.splitEstimate(now)
		if se.Conflict < 0 || se.Conflict > 1 || math.IsNaN(se.Conflict) ||
			se.Congestion < 0 || se.Congestion > 1 || math.IsNaN(se.Congestion) || stale < 0 {
			t.Fatalf("split state estimate %+v stale=%v out of range", se, stale)
		}
	})
}
