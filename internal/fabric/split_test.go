package fabric

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/ledger"
	"repro/internal/statedb"
)

// TestClassifyOutcome pins the class of every validation code the
// ledger defines: the regression the split exists to enforce is that
// CLIENT_TIMEOUT — and only CLIENT_TIMEOUT — reads as congestion
// wherever an outcome feeds an estimator, while every contention-born
// failure reads as conflict. An unknown future code must land in
// conflict, the conservative direction.
func TestClassifyOutcome(t *testing.T) {
	cases := []struct {
		code ledger.ValidationCode
		want SignalClass
	}{
		{ledger.Valid, SignalNone},
		{ledger.MVCCConflictInterBlock, SignalConflict},
		{ledger.MVCCConflictIntraBlock, SignalConflict},
		{ledger.PhantomReadConflict, SignalConflict},
		{ledger.EndorsementPolicyFailure, SignalConflict},
		{ledger.AbortedInOrdering, SignalConflict},
		{ledger.ClientTimeout, SignalCongestion},
		{ledger.ValidationCode(999), SignalConflict}, // unknown: conservative
	}
	for _, c := range cases {
		if got := ClassifyOutcome(c.code); got != c.want {
			t.Errorf("ClassifyOutcome(%v) = %v, want %v", c.code, got, c.want)
		}
	}
	if SignalNone.String() != "none" || SignalConflict.String() != "conflict" ||
		SignalCongestion.String() != "congestion" {
		t.Error("SignalClass names drifted")
	}
}

func TestSplitSignalValidateAndParse(t *testing.T) {
	if err := (SplitSignal{CongestLatency: -time.Second}).Validate(); err == nil {
		t.Error("negative congestion latency validated")
	}
	if got := (SplitSignal{}).Name(); got != "split(auto)" {
		t.Errorf("zero-value name = %q", got)
	}
	if got := (SplitSignal{CongestLatency: 4 * time.Second}).Name(); got != "split(4s)" {
		t.Errorf("name = %q", got)
	}
	if got := (SplitSignal{}).withDefaults(2 * time.Second); got.CongestLatency != 4*time.Second {
		t.Errorf("default congestion latency = %v, want 2×block timeout", got.CongestLatency)
	}
	for _, off := range []string{"", "off"} {
		if sp, err := ParseSplitSignal(off); err != nil || sp != nil {
			t.Errorf("ParseSplitSignal(%q) = %v, %v, want nil, nil", off, sp, err)
		}
	}
	if sp, err := ParseSplitSignal("on"); err != nil || sp == nil || sp.CongestLatency != 0 {
		t.Errorf("ParseSplitSignal(on) = %v, %v", sp, err)
	}
	if sp, err := ParseSplitSignal("3s"); err != nil || sp == nil || sp.CongestLatency != 3*time.Second {
		t.Errorf("ParseSplitSignal(3s) = %v, %v", sp, err)
	}
	if _, err := ParseSplitSignal("wat"); err == nil {
		t.Error("garbage split mode parsed")
	}
	cfg := testConfig(1)
	cfg.SplitSignal = &SplitSignal{CongestLatency: -time.Second}
	if _, err := NewNetwork(cfg); err == nil {
		t.Error("network accepted an invalid split signal")
	}
}

// TestAdaptiveSplitGatesOnConflictOnly unit-tests the split AIMD
// controller: congestion-class failures (CLIENT_TIMEOUT) must leave
// the backoff level at the floor no matter how many arrive — pacing,
// not backoff, is their remedy — while the same volume of
// conflict-class failures multiplies the level up as before.
func TestAdaptiveSplitGatesOnConflictOnly(t *testing.T) {
	mk := func() *adaptiveState {
		p := AdaptivePolicy{Floor: 100 * time.Millisecond, Ceiling: 4 * time.Second,
			Increase: 2, Decrease: 50 * time.Millisecond, Window: 4, Target: 0.25}
		s := p.perClient().(*adaptiveState)
		s.enableSplit()
		return s
	}

	s := mk()
	for i := 0; i < 16; i++ {
		s.observeClass(SignalCongestion)
	}
	if s.currentBackoff() != 100*time.Millisecond {
		t.Errorf("congestion-class failures moved the backoff to %v, want floor", s.currentBackoff())
	}
	if got := s.congestWin.failureRate(); got != 1 {
		t.Errorf("congestion window rate = %g, want 1", got)
	}
	if got := s.conflictWin.failureRate(); got != 0 {
		t.Errorf("conflict window rate = %g, want 0", got)
	}

	s = mk()
	for i := 0; i < 16; i++ {
		s.observeClass(SignalConflict)
	}
	if s.currentBackoff() != 4*time.Second {
		t.Errorf("conflict-class failures left the backoff at %v, want the ceiling", s.currentBackoff())
	}
	// FailureRate partitions: with only conflict failures the split sum
	// equals the scalar rate the same stream would produce.
	if got := s.FailureRate(); got != 1 {
		t.Errorf("split failure rate = %g, want 1", got)
	}

	// Commits decrease additively in split mode exactly as in scalar.
	s.observeClass(SignalNone)
	if want := 4*time.Second - 50*time.Millisecond; s.currentBackoff() != want {
		t.Errorf("commit decreased to %v, want %v", s.currentBackoff(), want)
	}
}

// TestAdaptiveBucketClassRule unit-tests the calibration rule: only
// conflict-class demand on an empty bucket raises the refill rate;
// congestion-class demand never does; and a full bucket relaxes the
// rate back toward the configured base.
func TestAdaptiveBucketClassRule(t *testing.T) {
	tb := newTokenBucket(RetryBudget{RefillPerSec: 1, Burst: 1, DropOnEmpty: true,
		Adaptive: true, MaxRefillPerSec: 4})
	if _, ok := tb.take(0, SignalConflict); !ok {
		t.Fatal("full bucket refused")
	}
	// Empty + congestion: the rate must not move.
	if _, ok := tb.take(0, SignalCongestion); ok || tb.rate != 1 {
		t.Fatalf("congestion-class demand moved the rate to %g (ok=%v), want 1", tb.rate, ok)
	}
	// Empty + conflict: doubles per demand, capped at MaxRefillPerSec.
	for i, want := range []float64{2, 4, 4} {
		if _, ok := tb.take(0, SignalConflict); ok {
			t.Fatalf("take %d on empty drop bucket granted", i)
		}
		if tb.rate != want {
			t.Fatalf("take %d: rate %g, want %g", i, tb.rate, want)
		}
	}
	// Refill at the raised rate: a token arrives well inside 1/4 s
	// (the decay over 250ms erodes the rate only marginally).
	if wait, ok := tb.take(sec(0.25), SignalConflict); !ok || wait != 0 {
		t.Fatalf("raised-rate refill did not grant: wait=%v ok=%v", wait, ok)
	}
	if tb.rate > 4 || tb.rate < 3.9 {
		t.Fatalf("rate after 250ms of decay = %g, want just under 4", tb.rate)
	}
	// Once the storm stops the raised rate relaxes toward base on the
	// 10s half-life: base 1 + excess 3 halves each 10 idle seconds.
	tb.refill(sec(0.25 + 10))
	if tb.rate < 2.4 || tb.rate > 2.6 {
		t.Fatalf("rate one half-life after the storm = %g, want ~2.5", tb.rate)
	}
	tb.refill(sec(0.25 + 100))
	if tb.rate < 1 || tb.rate > 1.01 {
		t.Fatalf("rate ten half-lives after the storm = %g, want ~base 1", tb.rate)
	}
}

func TestRetryBudgetAdaptiveValidation(t *testing.T) {
	if err := (RetryBudget{RefillPerSec: 2, Adaptive: true, MaxRefillPerSec: 1}).Validate(); err == nil {
		t.Error("max refill below base validated")
	}
	if err := (RetryBudget{MaxRefillPerSec: -1}).Validate(); err == nil {
		t.Error("negative max refill validated")
	}
	if got := (RetryBudget{RefillPerSec: 1, Burst: 3, DropOnEmpty: true, Adaptive: true}).Name(); got != "budget(1/s,b3,drop,adapt)" {
		t.Errorf("name = %q", got)
	}
}

// splitStackConfig is the contention-bound coordination stack on an
// idle orderer: EHR's MVCC conflicts supply a steady conflict-class
// failure stream while the default orderer costs leave no backlog for
// the congestion component to see.
func splitStackConfig(seed int64, src HintSource) Config {
	cfg := retryConfig(seed, BackpressurePolicy{MaxAttempts: 5, Jitter: 0.2})
	cfg.Backpressure = &Backpressure{}
	cfg.Gossip = &Gossip{}
	cfg.HintSource = src
	cfg.SplitSignal = &SplitSignal{}
	return cfg
}

// insertOnlyCongestedConfig is the opposite corner: a conflict-free
// insert-only workload pushed through an orderer that cannot keep up
// (25ms per transaction against 50 tps), so every commit wades through
// a growing backlog. The congestion estimate must rise on commit
// latency alone — there are no failures to classify.
func insertOnlyCongestedConfig(seed int64, src HintSource) Config {
	cfg := splitStackConfig(seed, src)
	spec := gen.GenChainSpec()
	spec.Keys = 2000
	cfg.Chaincode = gen.MustChaincode(spec)
	cfg.Workload = gen.NewWorkload(spec, gen.Mix{Insert: 100}, 0)
	cfg.DBKind = statedb.LevelDB
	cfg.OrdererCosts.PerTx = 25 * time.Millisecond
	return cfg
}

// TestSplitSeparatesConflictFromCongestion is the satellite property
// test: on a contention-bound run with an idle orderer the congestion
// component stays (near) zero while the conflict component alarms; on
// a conflict-free congested run the roles swap. Both directions hold
// under every hint source.
func TestSplitSeparatesConflictFromCongestion(t *testing.T) {
	for _, src := range []HintSource{HintOrderer, HintGossip, HintBoth} {
		src := src
		t.Run("contention/"+string(src.resolve()), func(t *testing.T) {
			cfg := splitStackConfig(31, src)
			_, rep := run(t, cfg)
			if rep.ConflictEstMax < 0.2 {
				t.Errorf("conflict estimate max %g under EHR contention, want alarmed", rep.ConflictEstMax)
			}
			if rep.CongestEstMax > 0.05 {
				t.Errorf("congestion estimate max %g with an idle orderer, want ~0", rep.CongestEstMax)
			}
		})
		t.Run("congestion/"+string(src.resolve()), func(t *testing.T) {
			cfg := insertOnlyCongestedConfig(32, src)
			_, rep := run(t, cfg)
			if rep.CongestEstMax < 0.2 {
				t.Errorf("congestion estimate max %g behind a 25ms/tx orderer, want alarmed", rep.CongestEstMax)
			}
			if rep.ConflictEstMax > 0.05 {
				t.Errorf("conflict estimate max %g on an insert-only workload, want ~0", rep.ConflictEstMax)
			}
			if rep.FailurePct > 1 {
				t.Errorf("failure rate %g%% on insert-only: the workload is supposed to be conflict-free", rep.FailurePct)
			}
		})
	}
}

// TestSplitGossipFixesMisPacing pins the tentpole bugfix end-to-end:
// with the scalar signal, a gossip-paced contention-bound run pours
// conflict failures into the pacer and stalls fresh load even though
// the orderer is idle; the split signal routes conflicts to backoff
// and keeps the pacer quiet.
func TestSplitGossipFixesMisPacing(t *testing.T) {
	scalar := splitStackConfig(33, HintGossip)
	scalar.SplitSignal = nil
	_, scalarRep := run(t, scalar)
	if scalarRep.TimePaced < 10*time.Second {
		t.Fatalf("scalar gossip pacing spent only %v paced: the mis-pacing this PR fixes should dwarf that", scalarRep.TimePaced)
	}

	_, splitRep := run(t, splitStackConfig(33, HintGossip))
	if splitRep.TimePaced > scalarRep.TimePaced/100 {
		t.Errorf("split gossip still paced %v (scalar %v): conflicts are driving the pacer",
			splitRep.TimePaced, scalarRep.TimePaced)
	}
	if splitRep.AvgEndToEnd >= scalarRep.AvgEndToEnd {
		t.Errorf("split end-to-end %v did not improve on scalar %v",
			splitRep.AvgEndToEnd, scalarRep.AvgEndToEnd)
	}
}

// TestSplitRunsDeterministic repeats a split-signal run and requires
// identical reports: the split path must draw only from the seeded rng
// like every other subsystem.
func TestSplitRunsDeterministic(t *testing.T) {
	_, a := run(t, splitStackConfig(34, HintBoth))
	_, b := run(t, splitStackConfig(34, HintBoth))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical split runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestSplitNilIsByteIdentical asserts the zero-config guarantee: a
// build that never sets SplitSignal produces byte-identical reports to
// one that sets it to nil explicitly, and a scalar coordination run
// leaves the split trajectories at exactly zero.
func TestSplitNilIsByteIdentical(t *testing.T) {
	base := splitStackConfig(35, HintGossip)
	base.SplitSignal = nil
	explicit := splitStackConfig(35, HintGossip)
	explicit.SplitSignal = nil
	_, a := run(t, base)
	_, b := run(t, explicit)
	if !reflect.DeepEqual(a, b) {
		t.Error("nil split-signal configs diverged")
	}
	if a.ConflictEstMax != 0 || a.CongestEstMax != 0 || a.ConflictEstAvg != 0 ||
		a.CongestEstAvg != 0 || a.ConflictEstFinal != 0 || a.CongestEstFinal != 0 {
		t.Errorf("scalar run left split trajectories non-zero: %+v", a)
	}
}
