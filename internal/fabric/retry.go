package fabric

import (
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy decides whether a client resubmits a failed transaction
// and after what backoff. Fabric clients observe failures through
// commit events (§2 step 7) and the paper's motivating premise is that
// applications must resubmit failed transactions themselves — the SDK
// does not. A policy is consulted once per failed attempt with the
// number of attempts made so far (>= 1); returning ok=false abandons
// the transaction ("give up").
//
// All randomness (jitter) must come from the rng passed in, which is
// the simulation engine's deterministic source: the same (config,
// seed) pair always produces the same retry schedule.
type RetryPolicy interface {
	// Name identifies the policy in reports and experiment tables.
	Name() string
	// NextDelay reports whether a transaction that has failed
	// `attempts` times should be resubmitted, and the backoff to wait
	// before doing so.
	NextDelay(attempts int, rng *rand.Rand) (time.Duration, bool)
}

// NoRetry never resubmits: the fire-and-forget behaviour of the
// paper's Caliper clients (§4.5, "failed transactions are not
// resent"). It is the default when Config.Retry is nil.
type NoRetry struct{}

// Name implements RetryPolicy.
func (NoRetry) Name() string { return "none" }

// NextDelay implements RetryPolicy.
func (NoRetry) NextDelay(int, *rand.Rand) (time.Duration, bool) { return 0, false }

// ImmediateRetry resubmits a failed transaction right away, with no
// backoff. MaxAttempts caps the total number of submissions (first
// attempt included); 0 means unlimited. Immediate resubmission is the
// naive client loop — under contention it amplifies the very conflicts
// that failed the transaction.
type ImmediateRetry struct {
	MaxAttempts int
}

// Name implements RetryPolicy.
func (p ImmediateRetry) Name() string {
	if p.MaxAttempts > 0 {
		return fmt.Sprintf("immediate(%d)", p.MaxAttempts)
	}
	return "immediate"
}

// NextDelay implements RetryPolicy.
func (p ImmediateRetry) NextDelay(attempts int, _ *rand.Rand) (time.Duration, bool) {
	if p.MaxAttempts > 0 && attempts >= p.MaxAttempts {
		return 0, false
	}
	return 0, true
}

// ExponentialBackoff resubmits after a capped exponential backoff with
// multiplicative jitter: the k'th retry waits
// min(Initial*2^(k-1), Cap) scaled by a uniform factor in
// [1-Jitter, 1+Jitter] drawn from the simulation rng. MaxAttempts caps
// total submissions (0 = unlimited).
type ExponentialBackoff struct {
	Initial     time.Duration // first backoff (default 250ms)
	Cap         time.Duration // backoff ceiling (default 8s)
	MaxAttempts int           // total submissions, first included (0 = unlimited)
	Jitter      float64       // uniform ± fraction applied to each backoff
}

// Name implements RetryPolicy.
func (p ExponentialBackoff) Name() string {
	if p.MaxAttempts > 0 {
		return fmt.Sprintf("backoff(%d)", p.MaxAttempts)
	}
	return "backoff"
}

// NextDelay implements RetryPolicy.
func (p ExponentialBackoff) NextDelay(attempts int, rng *rand.Rand) (time.Duration, bool) {
	if p.MaxAttempts > 0 && attempts >= p.MaxAttempts {
		return 0, false
	}
	initial := p.Initial
	if initial <= 0 {
		initial = 250 * time.Millisecond
	}
	cap := p.Cap
	if cap <= 0 {
		cap = 8 * time.Second
	}
	d := initial
	for i := 1; i < attempts && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return jitterDelay(d, p.Jitter, rng), true
}

// GiveUpAfter wraps a policy with a hard attempt budget: the inner
// policy's schedule applies, but after n total submissions the
// transaction is abandoned regardless of what the inner policy says.
// It turns an unlimited policy into a give-up-after-N one. Stateful
// inner policies (AdaptivePolicy) keep their per-client adaptation:
// the wrapper clones the inner policy per client and exposes its
// observer/trajectory facets through unwrap.
func GiveUpAfter(inner RetryPolicy, n int) RetryPolicy {
	return giveUpAfter{inner: inner, n: n}
}

type giveUpAfter struct {
	inner RetryPolicy
	n     int
}

// Name implements RetryPolicy.
func (g giveUpAfter) Name() string { return fmt.Sprintf("%s-cap%d", g.inner.Name(), g.n) }

// NextDelay implements RetryPolicy.
func (g giveUpAfter) NextDelay(attempts int, rng *rand.Rand) (time.Duration, bool) {
	if attempts >= g.n {
		return 0, false
	}
	return g.inner.NextDelay(attempts, rng)
}

// Validate forwards the inner policy's validation (Config.Validate
// checks it through the optional Validate interface).
func (g giveUpAfter) Validate() error {
	if v, ok := g.inner.(interface{ Validate() error }); ok {
		return v.Validate()
	}
	return nil
}

// perClient implements perClientPolicy: a stateful inner policy is
// cloned per client and re-wrapped so the attempt cap still applies.
func (g giveUpAfter) perClient() RetryPolicy {
	if pc, ok := g.inner.(perClientPolicy); ok {
		return giveUpAfter{inner: pc.perClient(), n: g.n}
	}
	return g
}

// unwrap exposes the inner policy so the client can find its
// observer/trajectory facets through the wrapper.
func (g giveUpAfter) unwrap() RetryPolicy { return g.inner }
