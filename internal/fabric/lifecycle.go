package fabric

// NodeState is a node's position in the crash/restart lifecycle that
// the fault scheduler drives. Every node starts NodeUp; a crash window
// moves it to NodeCrashed (in-flight work is dropped and the netem
// layer black-holes its unreliable traffic); the window's end restarts
// it — a peer with missed blocks passes through NodeRestarting while
// it replays the ledger suffix it missed, everything else returns to
// NodeUp directly.
type NodeState int

const (
	// NodeUp is the healthy steady state.
	NodeUp NodeState = iota
	// NodeCrashed means the process is gone: queued and in-flight work
	// died with it, and new unreliable messages are dropped.
	NodeCrashed
	// NodeRestarting means the process is back but still replaying the
	// ledger suffix it missed while down; it turns NodeUp when the
	// replay commits.
	NodeRestarting
)

// String names the state for diagnostics.
func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeCrashed:
		return "crashed"
	case NodeRestarting:
		return "restarting"
	default:
		return "unknown"
	}
}

// lifecycleNode is the node-lifecycle interface the fault scheduler
// operates on: peers and ordering services implement it. crash drops
// all in-flight work (epoch-guarded closures die silently); restart
// resumes from durable state — the peer replays missed blocks from
// the deliver stream, the orderer continues its hash chain at the
// retained block number. The central validator deliberately does not
// implement it: it is a network-wide memoization of the deterministic
// validation outcome, not a process that can crash.
type lifecycleNode interface {
	// NodeID is the node's primary network name.
	NodeID() string
	// State reports the current lifecycle state.
	State() NodeState
	crash()
	restart()
}

var (
	_ lifecycleNode = (*Peer)(nil)
	_ lifecycleNode = (*OrderingService)(nil)
)
