package fabric

import (
	"fmt"
	"time"

	"repro/internal/costmodel"
	"repro/internal/ledger"
	"repro/internal/statedb"
)

// validator computes each block's validation outcome exactly once.
// Fabric's validation is deterministic — every peer reaches the same
// verdict — so the network computes it centrally against a dedicated
// replica and peers replay the cached result at their own commit
// times. Blocks must be validated in order; the ordering service
// triggers validation at cut time.
type validator struct {
	nw   *Network
	db   statedb.VersionedDB
	next uint64
	memo map[uint64]*valResult
}

// valResult is one block's cached outcome.
type valResult struct {
	codes        []ledger.ValidationCode
	batch        *statedb.UpdateBatch
	validateCost time.Duration // VSCC+MVCC+phantom cost, pre-jitter
}

func newValidator(nw *Network, db statedb.VersionedDB) *validator {
	return &validator{nw: nw, db: db, memo: map[uint64]*valResult{}}
}

// result returns the cached outcome for b, validating it if this is
// the first request. Out-of-order first requests are a bug.
func (v *validator) result(b *ledger.Block) *valResult {
	if r, ok := v.memo[b.Number]; ok {
		return r
	}
	if b.Number != v.next+1 && !(v.next == 0 && b.Number == 1) {
		panic(fmt.Sprintf("fabric: block %d validated out of order (next %d)", b.Number, v.next+1))
	}
	r := v.validate(b)
	v.memo[b.Number] = r
	v.next = b.Number
	return r
}

// validate runs the validation phase (§2 step 6) for every transaction
// in the block: VSCC (signatures against the endorsement policy and
// read/write-set consistency across endorsers), then MVCC version
// checks with intra/inter-block classification, then phantom
// re-execution of checked range queries. Valid writes are applied to
// the validator replica with version (blockNum, txNum).
func (v *validator) validate(b *ledger.Block) *valResult {
	res := &valResult{
		codes: make([]ledger.ValidationCode, len(b.Transactions)),
		batch: &statedb.UpdateBatch{},
	}
	// overlay maps keys written by earlier valid txs of this block
	// (the state the version check runs against); attempted
	// additionally records keys written by *any* earlier transaction
	// of the block, valid or not — Equation 3 classifies a conflict
	// as intra-block by the existence of the dependency, not by
	// whether the writer itself committed.
	overlay := map[string]ledger.Height{}
	overlayDel := map[string]bool{}
	attempted := map[string]bool{}

	nSub := v.nw.pol.SubPolicies()
	for i, tx := range b.Transactions {
		res.validateCost += costmodel.ValidateCost(
			v.nw.dbCosts, v.nw.cfg.PeerCosts, len(tx.Endorsements), nSub, tx.RWSet)

		code := v.vscc(tx)
		if code == ledger.Valid && !v.nw.variant.SkipMVCC() {
			code = v.mvcc(tx.RWSet, overlay, overlayDel, attempted)
		}
		res.codes[i] = code
		if code == ledger.Valid {
			h := ledger.Height{BlockNum: b.Number, TxNum: uint64(i)}
			for _, w := range tx.RWSet.Writes {
				if w.IsDelete {
					res.batch.Delete(w.Key, h)
					overlayDel[w.Key] = true
					delete(overlay, w.Key)
				} else {
					res.batch.Put(w.Key, w.Value, h)
					overlay[w.Key] = h
					delete(overlayDel, w.Key)
				}
			}
		}
		for _, w := range tx.RWSet.Writes {
			attempted[w.Key] = true
		}
	}
	if err := v.db.ApplyUpdates(res.batch, b.Number); err != nil {
		panic("fabric: validator apply: " + err.Error())
	}
	v.nw.variant.OnBlockValidated(b, res.codes)
	return res
}

// vscc checks the endorsement policy (§2 step 6): enough valid
// signatures from the right orgs, and identical read/write sets across
// all endorsers (Equation 1 — the paper's endorsement policy failure).
func (v *validator) vscc(tx *ledger.Transaction) ledger.ValidationCode {
	if len(tx.Endorsements) == 0 {
		return ledger.EndorsementPolicyFailure
	}
	orgs := map[string]bool{}
	first := tx.Endorsements[0].RWSet.Digest()
	for _, e := range tx.Endorsements {
		d := e.RWSet.Digest()
		if !v.nw.msp.Verify(e.Org, e.PeerID, d[:], e.Signature) {
			return ledger.EndorsementPolicyFailure
		}
		if d != first {
			// World-state inconsistency between endorsers at
			// simulation time: read/write set mismatch.
			return ledger.EndorsementPolicyFailure
		}
		orgs[e.Org] = true
	}
	if !v.nw.pol.Satisfied(orgs) {
		return ledger.EndorsementPolicyFailure
	}
	return ledger.Valid
}

// mvcc performs the version checks of Equations 2-5 against the
// validator replica plus the block-local overlay. attempted holds
// every key written by an earlier transaction of the block (valid or
// not) and drives the intra (Eq. 3) vs inter (Eq. 4) classification.
func (v *validator) mvcc(rw *ledger.RWSet, overlay map[string]ledger.Height, overlayDel map[string]bool, attempted map[string]bool) ledger.ValidationCode {
	classify := func(key string) ledger.ValidationCode {
		if attempted[key] {
			return ledger.MVCCConflictIntraBlock
		}
		return ledger.MVCCConflictInterBlock
	}
	// Plain reads: Equation 2.
	for _, r := range rw.Reads {
		if h, ok := overlay[r.Key]; ok {
			if h != r.Version {
				return classify(r.Key)
			}
			continue
		}
		if overlayDel[r.Key] {
			return classify(r.Key)
		}
		if code := v.checkCommitted(r); code != ledger.Valid {
			return classify(r.Key)
		}
	}
	// Checked range queries: re-execute the scan (Equation 5).
	for _, rq := range rw.RangeQueries {
		if rq.Unchecked {
			continue
		}
		if !v.rangeUnchanged(rq, overlay, overlayDel) {
			return ledger.PhantomReadConflict
		}
	}
	return ledger.Valid
}

func (v *validator) checkCommitted(r ledger.KVRead) ledger.ValidationCode {
	vv := v.db.Get(r.Key)
	switch {
	case vv == nil && r.Version == ledger.ZeroHeight:
		return ledger.Valid // absent then, absent now
	case vv == nil || vv.Version != r.Version:
		return ledger.MVCCConflictInterBlock
	}
	return ledger.Valid
}

// rangeUnchanged re-executes a range scan against committed state plus
// the block overlay and compares it with the endorsement-time
// observation: any inserted, deleted or updated key fails it.
func (v *validator) rangeUnchanged(rq ledger.RangeQueryInfo, overlay map[string]ledger.Height, overlayDel map[string]bool) bool {
	current := v.db.GetRange(rq.StartKey, rq.EndKey)
	// Merge the overlay into the committed view.
	merged := make([]ledger.KVRead, 0, len(current))
	seen := map[string]bool{}
	for _, kv := range current {
		if overlayDel[kv.Key] {
			continue
		}
		ver := kv.Version
		if h, ok := overlay[kv.Key]; ok {
			ver = h
		}
		merged = append(merged, ledger.KVRead{Key: kv.Key, Version: ver})
		seen[kv.Key] = true
	}
	// Overlay inserts of keys absent from committed state.
	inserted := false
	for key := range overlay {
		if !seen[key] && key >= rq.StartKey && (rq.EndKey == "" || key < rq.EndKey) {
			inserted = true
			break
		}
	}
	if inserted {
		return false
	}
	if len(merged) != len(rq.Reads) {
		return false
	}
	for i, r := range rq.Reads {
		if merged[i].Key != r.Key || merged[i].Version != r.Version {
			return false
		}
	}
	return true
}
