package fabric

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ledger"
)

// SignalClass partitions attempt outcomes by which control can
// actually help against them. The coordination stack's scalar estimate
// (PR 5) folded every failure into one number, so on contention-bound
// workloads — where MVCC and phantom conflicts dominate — clients
// paced hard even when the orderer was idle. The split keeps the two
// phenomena apart:
//
//   - conflict-class failures (MVCC intra/inter-block, phantom reads,
//     endorsement divergence, early aborts of doomed transactions) are
//     caused by data contention: pacing the orderer does nothing for
//     them; *backing off* until the hot key cools does;
//   - congestion-class failures (client-side deadline expiries) are
//     caused by backlog: backing off a single client does little;
//     *pacing* the fleet drains the queue.
//
// Valid outcomes carry no alarm in either direction.
type SignalClass int

const (
	// SignalNone is a Valid outcome: evidence against both alarms.
	SignalNone SignalClass = iota
	// SignalConflict is a contention-caused failure: drives backoff.
	SignalConflict
	// SignalCongestion is a backlog-caused failure: drives pacing.
	SignalCongestion
)

// String names the class for diagnostics.
func (s SignalClass) String() string {
	switch s {
	case SignalConflict:
		return "conflict"
	case SignalCongestion:
		return "congestion"
	}
	return "none"
}

// ClassifyOutcome maps a validation code to its signal class. The
// mapping is total: every failure code lands in exactly one class, and
// codes this build does not know yet default to conflict — the
// conservative direction, since backoff only costs the one client
// while mis-pacing throttles fresh load fleet-wide.
//
// CLIENT_TIMEOUT is the one congestion-class code: a deadline expiry
// means the attempt's envelope (or its commit event) is stuck behind a
// backlog or a fault window, which retrying harder cannot fix but
// pacing can relieve. Everything else — MVCC inter/intra-block,
// phantom reads, endorsement divergence, and ordering-phase early
// aborts of doomed transactions — is contention showing up at
// different pipeline stages.
func ClassifyOutcome(code ledger.ValidationCode) SignalClass {
	switch code {
	case ledger.Valid:
		return SignalNone
	case ledger.ClientTimeout:
		return SignalCongestion
	default:
		return SignalConflict
	}
}

// SplitSignal enables the two-component client signal
// (Config.SplitSignal): the gossip estimate, the adaptive window and
// the budget calibration all classify outcomes per SignalClass instead
// of collapsing them into a scalar failure rate, and the two resulting
// estimates route to the controls they can help — conflict to backoff
// (AdaptivePolicy's AIMD gate, the hint-consuming policies' slide),
// congestion to pacing (the backpressure pacer, whatever HintSource
// feeds it).
//
// Nil (the default) keeps the scalar behaviour byte-identical to
// builds without the field.
type SplitSignal struct {
	// CongestLatency is the attempt-latency threshold at or above
	// which an outcome counts as congestion evidence in the gossiped
	// congestion estimate, whatever its validation code: an attempt
	// that took this long from submission to resolution waded through
	// backlog. This is what lets the congestion estimate rise on a
	// jammed orderer even before any client deadline (Config.Faults)
	// expires — commits still happen, just slowly. 0 defaults to
	// 2 × Config.BlockTimeout at network build (an idle pipeline
	// resolves well under one block timeout plus cutting slack);
	// negative is a validation error.
	CongestLatency time.Duration
}

// withDefaults resolves the documented zero value against the run's
// block timeout.
func (s SplitSignal) withDefaults(blockTimeout time.Duration) SplitSignal {
	if s.CongestLatency == 0 {
		s.CongestLatency = 2 * blockTimeout
	}
	return s
}

// Validate reports configuration errors.
func (s SplitSignal) Validate() error {
	if s.CongestLatency < 0 {
		return fmt.Errorf("fabric: split-signal congestion latency must be >= 0, got %v", s.CongestLatency)
	}
	return nil
}

// Name labels the mode in experiment tables, e.g. "split(4s)" (the
// resolved threshold is only known at network build, so the zero value
// prints as "split(auto)").
func (s SplitSignal) Name() string {
	if s.CongestLatency == 0 {
		return "split(auto)"
	}
	return fmt.Sprintf("split(%v)", s.CongestLatency)
}

// ParseSplitSignal parses the CLI syntax for the split-signal mode:
// "off" (or "") disables it, "on" enables it with the documented
// defaults, and a duration — e.g. "3s" — sets the congestion-latency
// threshold explicitly.
func ParseSplitSignal(s string) (*SplitSignal, error) {
	switch strings.ToLower(s) {
	case "", "off":
		return nil, nil
	case "on", "default":
		return &SplitSignal{}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return nil, fmt.Errorf("fabric: split signal %q: want off, on or a latency threshold duration", s)
	}
	sp := SplitSignal{CongestLatency: d}
	return &sp, sp.Validate()
}

// SplitEstimate is the two-component client signal the split mode
// gossips: the conflict and congestion estimates, each in [0,1] and
// each merged and decayed independently — a fleet-wide conflict storm
// must not manufacture congestion alarm, and vice versa.
type SplitEstimate struct {
	Conflict   float64
	Congestion float64
}

// Max collapses the estimate to its more alarmed component — the
// scalar view used for the shared gossip-estimate trajectory metric.
func (e SplitEstimate) Max() float64 {
	return MergeEstimates(e.Conflict, e.Congestion)
}

// ClampSplitEstimate bounds both components to [0,1] (NaN maps to 0),
// component-wise ClampEstimate.
func ClampSplitEstimate(e SplitEstimate) SplitEstimate {
	return SplitEstimate{
		Conflict:   ClampEstimate(e.Conflict),
		Congestion: ClampEstimate(e.Congestion),
	}
}

// DecaySplitEstimate ages both components by age at the given
// per-second decay rate, component-wise DecayEstimate: the result
// never exceeds the undecayed (clamped) estimate in either component.
func DecaySplitEstimate(e SplitEstimate, age time.Duration, decayPerSec float64) SplitEstimate {
	return SplitEstimate{
		Conflict:   DecayEstimate(e.Conflict, age, decayPerSec),
		Congestion: DecayEstimate(e.Congestion, age, decayPerSec),
	}
}

// MergeSplitEstimates is the split-mode gossip merge operator:
// component-wise max of the clamped estimates, so a merged view is
// never less alarmed than either input in either component — and never
// more alarmed in one component because of the other.
func MergeSplitEstimates(a, b SplitEstimate) SplitEstimate {
	return SplitEstimate{
		Conflict:   MergeEstimates(a.Conflict, b.Conflict),
		Congestion: MergeEstimates(a.Congestion, b.Congestion),
	}
}

// classObserver is implemented by policy state that wants outcomes
// classified per SignalClass when the split-signal mode is on
// (adaptiveState): conflict-class failures gate the AIMD increase,
// congestion-class failures leave the backoff level alone.
type classObserver interface {
	observeClass(class SignalClass)
}

// splitAware is implemented by per-client policy state whose windows
// split per signal class; the network flips it on after instantiation
// when Config.SplitSignal is set.
type splitAware interface {
	enableSplit()
}
