package fabric

import (
	"testing"
	"time"

	"repro/internal/chaincodes/ehr"
	"repro/internal/gen"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/statedb"
)

// testConfig is a short C1-style run with the EHR chaincode.
func testConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 20 * time.Second
	cfg.Drain = 20 * time.Second
	cfg.Rate = 50
	cfg.BlockSize = 50
	cfg.Chaincode = ehr.New()
	cfg.Workload = ehr.NewWorkload(1)
	return cfg
}

func run(t *testing.T, cfg Config) (*Network, metrics.Report) {
	t.Helper()
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw, nw.Run()
}

func TestVanillaRunProducesTraffic(t *testing.T) {
	nw, rep := run(t, testConfig(1))
	if rep.Total < 500 {
		t.Fatalf("only %d transactions in 20s at 50tps", rep.Total)
	}
	if rep.Valid == 0 {
		t.Fatal("no valid transactions")
	}
	if rep.Counts[ledger.MVCCConflictInterBlock]+rep.Counts[ledger.MVCCConflictIntraBlock] == 0 {
		t.Error("EHR at 50tps over 200 hot keys should produce MVCC conflicts")
	}
	if rep.Blocks == 0 {
		t.Fatal("no blocks committed")
	}
	if rep.AvgLatency <= 0 || rep.Throughput <= 0 {
		t.Errorf("latency %v throughput %v", rep.AvgLatency, rep.Throughput)
	}
	if err := nw.Chain().Verify(); err != nil {
		t.Fatalf("chain verification: %v", err)
	}
}

func TestChainParseMatchesCollector(t *testing.T) {
	nw, rep := run(t, testConfig(2))
	parsed := metrics.ParseChain(nw.Chain())
	if parsed.Committed != rep.Committed {
		t.Errorf("parsed committed %d, collector %d", parsed.Committed, rep.Committed)
	}
	for _, code := range []ledger.ValidationCode{
		ledger.Valid, ledger.MVCCConflictInterBlock, ledger.MVCCConflictIntraBlock,
		ledger.PhantomReadConflict, ledger.EndorsementPolicyFailure,
	} {
		if parsed.Counts[code] != rep.Counts[code] {
			t.Errorf("%v: parsed %d, collector %d", code, parsed.Counts[code], rep.Counts[code])
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	_, a := run(t, testConfig(7))
	_, b := run(t, testConfig(7))
	if a.Total != b.Total || a.Valid != b.Valid || a.AvgLatency != b.AvgLatency {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	_, c := run(t, testConfig(8))
	if a.Total == c.Total && a.Valid == c.Valid && a.AvgLatency == c.AvgLatency {
		t.Error("different seeds produced identical runs")
	}
}

func TestInsertOnlyWorkloadHasNoMVCCConflicts(t *testing.T) {
	cfg := testConfig(3)
	spec := gen.GenChainSpec()
	spec.Keys = 2000
	cfg.Chaincode = gen.MustChaincode(spec)
	cfg.Workload = gen.NewWorkload(spec, gen.Mix{Insert: 100}, 0)
	cfg.DBKind = statedb.LevelDB
	_, rep := run(t, cfg)
	if rep.Counts[ledger.MVCCConflictInterBlock]+rep.Counts[ledger.MVCCConflictIntraBlock] != 0 {
		t.Errorf("insert-only workload hit MVCC conflicts: %v", rep)
	}
	if rep.Counts[ledger.PhantomReadConflict] != 0 {
		t.Errorf("insert-only workload hit phantoms: %v", rep)
	}
	if rep.Valid < rep.Total*9/10 {
		t.Errorf("insert-only workload mostly failing: %v", rep)
	}
}

func TestReadOnlyWorkloadAllValid(t *testing.T) {
	cfg := testConfig(4)
	spec := gen.GenChainSpec()
	spec.Keys = 2000
	cfg.Chaincode = gen.MustChaincode(spec)
	cfg.Workload = gen.NewWorkload(spec, gen.Mix{Read: 100}, 1)
	cfg.DBKind = statedb.LevelDB
	_, rep := run(t, cfg)
	if rep.FailurePct > 1 {
		t.Errorf("read-only workload failed %.2f%%", rep.FailurePct)
	}
}

func TestAllConsensusBackendsWork(t *testing.T) {
	for _, cons := range []string{"solo", "kafka", "raft"} {
		cfg := testConfig(5)
		cfg.Consensus = cons
		cfg.Duration = 10 * time.Second
		cfg.Drain = 20 * time.Second
		_, rep := run(t, cfg)
		if rep.Valid == 0 {
			t.Errorf("%s: no valid transactions", cons)
		}
	}
}

func TestPolicyP3CollectsQuorum(t *testing.T) {
	cfg := testConfig(6)
	cfg.Orgs = 4
	cfg.PeersPerOrg = 2
	cfg.Policy = policy.P3
	nw, rep := run(t, cfg)
	if rep.Valid == 0 {
		t.Fatal("no valid transactions under P3")
	}
	// Every committed tx should carry quorum endorsements (3 of 4)
	// unless stripped; check via the chain's validation codes only.
	if err := nw.Chain().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Orgs = 1 },
		func(c *Config) { c.PeersPerOrg = 0 },
		func(c *Config) { c.BlockSize = 0 },
		func(c *Config) { c.Rate = 0 },
		func(c *Config) { c.Chaincode = nil },
		func(c *Config) { c.Workload = nil },
		func(c *Config) { c.Consensus = "pbft" },
		func(c *Config) { c.SpeedFactor = 0 },
	}
	for i, mutate := range bad {
		cfg := testConfig(1)
		mutate(&cfg)
		if _, err := NewNetwork(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestPeersConvergeAfterDrain(t *testing.T) {
	nw, _ := run(t, testConfig(9))
	want := nw.metricsPeer().CommittedBlocks()
	if want == 0 {
		t.Fatal("metrics peer committed nothing")
	}
	for _, p := range nw.Peers() {
		if p.CommittedBlocks() != want {
			t.Errorf("peer %s committed %d blocks, metrics peer %d",
				p.Name(), p.CommittedBlocks(), want)
		}
	}
}

func TestEndorsementFailuresAppear(t *testing.T) {
	// Over a long enough window with hot keys, replica skew should
	// produce at least some endorsement policy failures.
	cfg := testConfig(10)
	cfg.Duration = 40 * time.Second
	cfg.Drain = 20 * time.Second
	_, rep := run(t, cfg)
	if rep.Counts[ledger.EndorsementPolicyFailure] == 0 {
		t.Log("no endorsement failures in this window (acceptable but unexpected)")
	}
	t.Logf("report: %v", rep)
}
