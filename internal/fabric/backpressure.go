package fabric

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Backpressure enables the orderer-driven congestion signal
// (Config.Backpressure): at every block cut the ordering service
// condenses its own load — the serial-server backlog and the
// arrival-vs-service pressure estimated from the ordered-transaction
// stream — into a hint in [0,1], smooths it with an EWMA, and stamps
// it onto the block. The hint travels to clients on the commit events
// they already listen to (and on early-abort notifications), exactly
// where a Fabric SDK would read block metadata, so no extra events and
// no extra rng draws exist anywhere on the path.
//
// Clients use the hint two ways:
//
//   - pacing: every resubmission and every new closed-loop submission
//     is delayed by hint×Gain (capped at MaxPause) on top of whatever
//     the retry policy or think time decided — SDK-level flow control
//     driven by the shared signal instead of each client's private
//     failure history;
//   - policy input: BackpressurePolicy derives its whole backoff from
//     the hint, and AdaptivePolicy.HintWeight blends the hint into the
//     AIMD level.
//
// Nil (the default) disables the subsystem completely: the orderer
// computes nothing, hints stay zero, and runs are byte-identical to a
// build without it. Pacing requires outcome tracking (a retry policy
// or closed-loop mode), since the hint arrives on outcome events.
type Backpressure struct {
	// Smoothing is the EWMA weight of the newest raw congestion sample
	// in (0,1]: smoothed = Smoothing*raw + (1-Smoothing)*previous.
	// 0 defaults to 0.5; 1 disables smoothing (raw hints pass through);
	// outside [0,1] is a validation error.
	Smoothing float64
	// Gain converts the hint into a pacing pause: a client delays its
	// next submission by hint×Gain, so a fully congested orderer
	// (hint 1) paces by the whole Gain. 0 defaults to 1s; negative is a
	// validation error.
	Gain time.Duration
	// MaxPause caps one pacing pause. 0 defaults to 2s; negative is a
	// validation error.
	MaxPause time.Duration
}

// withDefaults resolves the documented zero-value defaults.
func (b Backpressure) withDefaults() Backpressure {
	if b.Smoothing == 0 {
		b.Smoothing = 0.5
	}
	if b.Gain == 0 {
		b.Gain = time.Second
	}
	if b.MaxPause == 0 {
		b.MaxPause = 2 * time.Second
	}
	return b
}

// Validate reports configuration errors.
func (b Backpressure) Validate() error {
	switch {
	case b.Smoothing < 0 || b.Smoothing > 1:
		return fmt.Errorf("fabric: backpressure smoothing must be in [0,1], got %g", b.Smoothing)
	case b.Gain < 0:
		return fmt.Errorf("fabric: backpressure gain must be >= 0, got %v", b.Gain)
	case b.MaxPause < 0:
		return fmt.Errorf("fabric: backpressure max pause must be >= 0, got %v", b.MaxPause)
	}
	return nil
}

// Name labels the signal in experiment tables, e.g. "bp(s0.5,1s,max2s)".
func (b Backpressure) Name() string {
	b = b.withDefaults()
	return fmt.Sprintf("bp(s%g,%v,max%v)", b.Smoothing, b.Gain, b.MaxPause)
}

// pause converts a hint into the pacing delay: hint×Gain capped at
// MaxPause. Zero hints pause nothing.
func (b Backpressure) pause(hint float64) time.Duration {
	if hint <= 0 {
		return 0
	}
	d := time.Duration(hint * float64(b.Gain))
	if d > b.MaxPause {
		d = b.MaxPause
	}
	return d
}

// ParseBackpressure parses the CLI syntax for the backpressure spec:
// "off" (or "") disables it, "on" enables it with the documented
// defaults, and "smoothing:gain[:maxpause]" — e.g. "0.5:1s:2s" — sets
// the knobs explicitly.
func ParseBackpressure(s string) (*Backpressure, error) {
	switch strings.ToLower(s) {
	case "", "off":
		return nil, nil
	case "on", "default":
		return &Backpressure{}, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("fabric: backpressure %q: want off, on or smoothing:gain[:maxpause]", s)
	}
	var b Backpressure
	smooth, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return nil, fmt.Errorf("fabric: backpressure smoothing %q: %w", parts[0], err)
	}
	b.Smoothing = smooth
	gain, err := time.ParseDuration(parts[1])
	if err != nil {
		return nil, fmt.Errorf("fabric: backpressure gain %q: %w", parts[1], err)
	}
	b.Gain = gain
	if len(parts) == 3 {
		maxPause, err := time.ParseDuration(parts[2])
		if err != nil {
			return nil, fmt.Errorf("fabric: backpressure max pause %q: %w", parts[2], err)
		}
		b.MaxPause = maxPause
	}
	return &b, b.Validate()
}

// BackpressurePolicy is the orderer-hinted retry policy: instead of a
// private backoff schedule (ExponentialBackoff) or a private failure
// window (AdaptivePolicy), every resubmission waits a delay derived
// from the shared congestion hint the ordering service stamps onto
// commit events — Floor when the orderer is idle, sliding linearly to
// Ceiling at full congestion. All clients therefore back off from the
// *same* signal, the coordination the client-local controllers lack.
//
// The policy needs Config.Backpressure to be set; without the signal
// the hint stays zero and the policy degenerates to a constant
// Floor-level backoff.
type BackpressurePolicy struct {
	// Floor is the backoff at hint 0. 0 defaults to 50ms; negative is
	// a validation error.
	Floor time.Duration
	// Ceiling is the backoff at hint 1. 0 defaults to 4s.
	Ceiling time.Duration
	// MaxAttempts caps total submissions per logical transaction,
	// first attempt included. 0 = unlimited.
	MaxAttempts int
	// Jitter is the uniform ± fraction applied to each delay.
	// 0 means no jitter.
	Jitter float64
}

// withDefaults resolves the documented zero-value defaults.
func (p BackpressurePolicy) withDefaults() BackpressurePolicy {
	if p.Floor == 0 {
		p.Floor = 50 * time.Millisecond
	}
	if p.Ceiling == 0 {
		p.Ceiling = 4 * time.Second
	}
	return p
}

// Validate reports configuration errors. The floor/ceiling relation is
// checked against the resolved defaults, like AdaptivePolicy.
func (p BackpressurePolicy) Validate() error {
	switch {
	case p.Floor < 0:
		return fmt.Errorf("fabric: backpressure policy floor must be >= 0, got %v", p.Floor)
	case p.Ceiling < 0:
		return fmt.Errorf("fabric: backpressure policy ceiling must be >= 0, got %v", p.Ceiling)
	}
	if d := p.withDefaults(); d.Floor > d.Ceiling {
		return fmt.Errorf("fabric: backpressure policy floor %v above ceiling %v", d.Floor, d.Ceiling)
	}
	return nil
}

// Name implements RetryPolicy.
func (p BackpressurePolicy) Name() string {
	if p.MaxAttempts > 0 {
		return fmt.Sprintf("hinted(%d)", p.MaxAttempts)
	}
	return "hinted"
}

// NextDelay implements RetryPolicy on the bare config value: with no
// per-client hint state it backs off at the Floor level. Inside a
// Network each client consults its own *backpressureState instead.
func (p BackpressurePolicy) NextDelay(attempts int, rng *rand.Rand) (time.Duration, bool) {
	if p.MaxAttempts > 0 && attempts >= p.MaxAttempts {
		return 0, false
	}
	d := p.withDefaults()
	return jitterDelay(d.Floor, d.Jitter, rng), true
}

// perClient implements perClientPolicy: every client tracks the hint
// it last observed on its own commit-event stream.
func (p BackpressurePolicy) perClient() RetryPolicy {
	return &backpressureState{cfg: p.withDefaults()}
}

// backpressureState is one client's view of the shared signal.
type backpressureState struct {
	cfg  BackpressurePolicy // defaults resolved
	hint float64            // latest observed congestion hint
}

// Name implements RetryPolicy.
func (s *backpressureState) Name() string { return s.cfg.Name() }

// NextDelay implements RetryPolicy: Floor + hint×(Ceiling−Floor),
// jittered.
func (s *backpressureState) NextDelay(attempts int, rng *rand.Rand) (time.Duration, bool) {
	if s.cfg.MaxAttempts > 0 && attempts >= s.cfg.MaxAttempts {
		return 0, false
	}
	d := s.cfg.Floor + time.Duration(s.hint*float64(s.cfg.Ceiling-s.cfg.Floor))
	return jitterDelay(d, s.cfg.Jitter, rng), true
}

// observeHint implements hintObserver.
func (s *backpressureState) observeHint(h float64) { s.hint = h }

// hintObserver is implemented by retry policies that consume the
// orderer's congestion hint delivered with commit events
// (BackpressurePolicy always, AdaptivePolicy when HintWeight > 0).
type hintObserver interface {
	observeHint(h float64)
}
