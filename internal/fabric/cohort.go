package fabric

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Cohort drives Config.CohortSize statistically identical clients
// from one state object. Where the exact simulation allocates a
// Client — pending table, retry-policy instance, budget bucket,
// gossip window — per simulated client, a cohort allocates that state
// once and shares it across its members, keeping only one
// endorser-rotation counter per member. Memory and event-queue
// pressure therefore scale with the cohort count (clients /
// CohortSize), not the client count, which is what makes 10^6-client
// sweeps tractable.
//
// The approximations are explicit and small:
//
//   - Open loop: members share one aggregate Poisson arrival process
//     at members × the per-client rate. By superposition this is
//     exactly the sum of the members' independent Poisson processes;
//     the submitting member is drawn uniformly per arrival.
//   - Closed loop: each member keeps its own in-flight window, driven
//     through the shared machinery — the same event cadence as exact
//     clients, amortized onto one object.
//   - Stateful retry policies (AdaptivePolicy), the retry budget and
//     the gossip window are shared: the cohort reacts to its members'
//     pooled outcome stream (a mean-field approximation). The budget's
//     refill rate and burst are scaled by the member count so the
//     aggregate retry allowance matches the exact simulation.
//
// With a stateless retry policy and no budget/gossip/backpressure,
// closed-loop cohort runs are byte-identical to the exact simulation
// (locked by TestCohortEquivalence); shared-state runs track the
// exact aggregates within tolerances instead.
type Cohort struct {
	clientCore
}

// newCohort builds a cohort driving members simulated clients whose
// global indices start at firstID; index is the driver's position in
// the network's driver list.
func newCohort(nw *Network, index, firstID, members int) *Cohort {
	c := &Cohort{}
	c.init(nw, index, firstID, members, fmt.Sprintf("cohort%d", index))
	return c
}

// start schedules the cohort's arrival process. Closed loop: every
// member's in-flight window opens, in member order. Open loop: one
// aggregate Poisson process stands in for the members' independent
// arrivals (superposition), drawing the submitting member uniformly
// per arrival.
func (c *Cohort) start() {
	if c.gossip != nil {
		c.startGossip()
	}
	if c.nw.cfg.ClosedLoop {
		c.openWindow()
		return
	}
	mean := func() time.Duration {
		rate := c.nw.cfg.RateAt(time.Duration(c.nw.eng.Now()))
		return time.Duration(float64(time.Second) * float64(c.nw.cfg.Clients) /
			(rate * float64(c.members)))
	}
	var arrive func()
	arrive = func() {
		if c.nw.eng.Now() >= sim.Time(c.nw.cfg.Duration) {
			return // send window over
		}
		member := 0
		if c.members > 1 {
			member = c.nw.eng.Rand().Intn(c.members)
		}
		c.submitJob(member)
		c.nw.eng.After(c.nw.eng.Exponential(mean()), arrive)
	}
	c.nw.eng.After(c.nw.eng.Exponential(mean()), arrive)
}
