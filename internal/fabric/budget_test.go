package fabric

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

func sec(s float64) sim.Time { return sim.Time(time.Duration(s * float64(time.Second))) }

func TestTokenBucketRefillMath(t *testing.T) {
	tb := newTokenBucket(RetryBudget{RefillPerSec: 2, Burst: 4})
	// Starts full.
	if got := tb.level(0); got != 4 {
		t.Fatalf("initial level %g, want the burst 4", got)
	}
	// Drain it.
	for i := 0; i < 4; i++ {
		if wait, ok := tb.take(0, SignalConflict); !ok || wait != 0 {
			t.Fatalf("take %d: wait=%v ok=%v, want immediate grant", i, wait, ok)
		}
	}
	if got := tb.level(0); got != 0 {
		t.Fatalf("level after draining %g, want 0", got)
	}
	// 1.5s at 2 tokens/s refills 3 tokens.
	if got := tb.level(sec(1.5)); math.Abs(got-3) > 1e-9 {
		t.Errorf("level after 1.5s = %g, want 3", got)
	}
	// Refill never exceeds the burst cap.
	if got := tb.level(sec(100)); got != 4 {
		t.Errorf("level after 100s = %g, want capped at burst 4", got)
	}
}

func TestTokenBucketDropMode(t *testing.T) {
	tb := newTokenBucket(RetryBudget{RefillPerSec: 1, Burst: 2, DropOnEmpty: true})
	if _, ok := tb.take(0, SignalConflict); !ok {
		t.Fatal("full bucket refused a token")
	}
	if _, ok := tb.take(0, SignalConflict); !ok {
		t.Fatal("second token refused with burst 2")
	}
	// Empty: drop mode refuses instead of lending.
	if _, ok := tb.take(0, SignalConflict); ok {
		t.Fatal("empty drop-mode bucket granted a token")
	}
	// A second refusal must not consume anything: after 1s exactly one
	// token accrued and is grantable.
	if _, ok := tb.take(0, SignalConflict); ok {
		t.Fatal("repeat take on empty bucket granted")
	}
	if wait, ok := tb.take(sec(1), SignalConflict); !ok || wait != 0 {
		t.Fatalf("after 1s refill: wait=%v ok=%v, want immediate grant", wait, ok)
	}
	if _, ok := tb.take(sec(1), SignalConflict); ok {
		t.Fatal("bucket granted a second token after refilling only one")
	}
}

func TestTokenBucketDeferMode(t *testing.T) {
	tb := newTokenBucket(RetryBudget{RefillPerSec: 2, Burst: 1})
	if wait, ok := tb.take(0, SignalConflict); !ok || wait != 0 {
		t.Fatalf("initial take: wait=%v ok=%v", wait, ok)
	}
	// Empty: defer mode lends the token; at 2 tokens/s the loan is
	// repaid in 500ms.
	wait, ok := tb.take(0, SignalConflict)
	if !ok {
		t.Fatal("defer-mode bucket refused")
	}
	if want := 500 * time.Millisecond; wait != want {
		t.Errorf("first deferred wait %v, want %v", wait, want)
	}
	// Deferred retries serialize: the next loan waits its own 500ms on
	// top of the outstanding one.
	wait, ok = tb.take(0, SignalConflict)
	if !ok || wait != time.Second {
		t.Errorf("second deferred wait %v ok=%v, want 1s", wait, ok)
	}
	// After the debt is repaid the bucket grants immediately again.
	if wait, ok := tb.take(sec(2), SignalConflict); !ok || wait != 0 {
		t.Errorf("post-repayment take: wait=%v ok=%v, want immediate", wait, ok)
	}
}

func TestTokenBucketDeferModeWithoutRefillDrops(t *testing.T) {
	// Regression: a defer-mode bucket with no refill stream (rate <= 0
	// is unreachable through Config — withDefaults maps 0 to 1 — but
	// the bucket guards it defensively) must refuse outright once the
	// burst is spent. Lending would park the retry forever; the old
	// code refunded correctly but the refusal semantics are what the
	// client's exhaustion/deferral split depends on.
	tb := &tokenBucket{rate: 0, burst: 2, tokens: 2}
	for i := 0; i < 2; i++ {
		if wait, ok := tb.take(0, SignalConflict); !ok || wait != 0 {
			t.Fatalf("take %d: wait=%v ok=%v, want the burst granted immediately", i, wait, ok)
		}
	}
	for i := 0; i < 3; i++ {
		wait, ok := tb.take(sec(float64(i)), SignalConflict)
		if ok {
			t.Fatalf("take %d on an unrefillable bucket granted a loan", i)
		}
		if wait != 0 {
			t.Fatalf("take %d refused with a deferral wait %v, want a plain drop", i, wait)
		}
	}
	// Refusals must not consume or lend tokens.
	if got := tb.level(sec(10)); got != 0 {
		t.Fatalf("refusals moved the token level to %g, want 0", got)
	}
}

func TestDeferModeWithoutRefillCountsAsExhaustion(t *testing.T) {
	// Client/metrics classification for the defensive path: swap every
	// client's bucket for the unrefillable defer-mode bucket and pin
	// the counts — each over-burst retry must land in BudgetExhausted
	// (and abandon its job into GaveUp), never in DeferredRetries.
	cfg := retryConfig(5, ImmediateRetry{MaxAttempts: 5})
	cfg.RetryBudget = &RetryBudget{RefillPerSec: 1, Burst: 2}
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range nw.Clients() {
		cl.bucket = &tokenBucket{rate: 0, burst: 2, tokens: 2}
	}
	rep := nw.Run()
	if rep.BudgetExhausted == 0 {
		t.Fatal("unrefillable defer bucket never exhausted under EHR contention")
	}
	if rep.DeferredRetries != 0 || rep.MaxDeferredDepth != 0 {
		t.Errorf("unrefillable drops classified as deferrals: deferred=%d depth=%d",
			rep.DeferredRetries, rep.MaxDeferredDepth)
	}
	if rep.GaveUp < rep.BudgetExhausted {
		t.Errorf("gave up %d < budget exhausted %d: drops must abandon their jobs",
			rep.GaveUp, rep.BudgetExhausted)
	}
}

func TestRetryBudgetDefaultsAndValidation(t *testing.T) {
	b := RetryBudget{}.withDefaults()
	if b.RefillPerSec != 1 || b.Burst != 1 {
		t.Errorf("defaults = %+v, want refill 1/s burst 1", b)
	}
	if err := (RetryBudget{RefillPerSec: -1}).Validate(); err == nil {
		t.Error("negative refill rate validated")
	}
	if err := (RetryBudget{Burst: -1}).Validate(); err == nil {
		t.Error("negative burst validated")
	}
	if got := (RetryBudget{RefillPerSec: 2, Burst: 5, DropOnEmpty: true}).Name(); got != "budget(2/s,b5,drop)" {
		t.Errorf("name = %q", got)
	}
	cfg := retryConfig(1, ImmediateRetry{MaxAttempts: 3})
	cfg.RetryBudget = &RetryBudget{RefillPerSec: -1}
	if _, err := NewNetwork(cfg); err == nil {
		t.Error("network accepted an invalid retry budget")
	}
}

// budgetConfig is a contended run whose immediate retries hammer the
// budget hard enough to exhaust it.
func budgetConfig(seed int64, b RetryBudget) Config {
	cfg := retryConfig(seed, ImmediateRetry{MaxAttempts: 5})
	cfg.RetryBudget = &b
	return cfg
}

func TestBudgetDropModeExhausts(t *testing.T) {
	_, rep := run(t, budgetConfig(1, RetryBudget{RefillPerSec: 0.5, Burst: 2, DropOnEmpty: true}))
	if rep.BudgetExhausted == 0 {
		t.Fatal("drop-mode budget never exhausted under EHR contention")
	}
	if rep.DeferredRetries != 0 || rep.MaxDeferredDepth != 0 {
		t.Errorf("drop mode deferred %d (depth %d), want none",
			rep.DeferredRetries, rep.MaxDeferredDepth)
	}
	// Every exhaustion abandons its job, so it is bounded by (and
	// counted inside) the give-up total.
	if rep.GaveUp < rep.BudgetExhausted {
		t.Errorf("gave up %d < budget exhausted %d", rep.GaveUp, rep.BudgetExhausted)
	}
	// The budget strictly bounds duplicate submissions relative to the
	// unbudgeted run.
	_, unbounded := run(t, retryConfig(1, ImmediateRetry{MaxAttempts: 5}))
	if rep.Attempts >= unbounded.Attempts {
		t.Errorf("budgeted attempts %d >= unbudgeted %d", rep.Attempts, unbounded.Attempts)
	}
}

func TestBudgetDeferModeQueues(t *testing.T) {
	_, rep := run(t, budgetConfig(2, RetryBudget{RefillPerSec: 0.5, Burst: 2}))
	if rep.DeferredRetries == 0 {
		t.Fatal("defer-mode budget never deferred under EHR contention")
	}
	// Deferred counts only budget-induced delays: with an immediate
	// (zero-backoff) policy, every granted-but-lent token defers.
	if rep.DeferredRetries > rep.Attempts {
		t.Errorf("deferred %d > attempts %d", rep.DeferredRetries, rep.Attempts)
	}
	if rep.MaxDeferredDepth == 0 {
		t.Error("deferred retries recorded but max depth stayed 0")
	}
	if rep.BudgetExhausted != 0 {
		t.Errorf("defer mode dropped %d retries, want none", rep.BudgetExhausted)
	}
}

func TestBudgetRunsDeterministic(t *testing.T) {
	b := RetryBudget{RefillPerSec: 1, Burst: 3}
	_, a := run(t, budgetConfig(3, b))
	_, c := run(t, budgetConfig(3, b))
	if !reflect.DeepEqual(a, c) {
		t.Errorf("identical budgeted runs diverged:\n%+v\n%+v", a, c)
	}
}

func TestBudgetIgnoredWithoutRetryPolicy(t *testing.T) {
	cfg := testConfig(4)
	cfg.RetryBudget = &RetryBudget{RefillPerSec: 1, Burst: 1, DropOnEmpty: true}
	base := testConfig(4)
	_, withBudget := run(t, cfg)
	_, plain := run(t, base)
	if !reflect.DeepEqual(withBudget, plain) {
		t.Error("a retry budget changed a fire-and-forget run")
	}
}
