package fabric

import (
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/policy"
)

// TestEndorsementRotationSpreadsLoad verifies that clients rotate
// across the peers of each endorsing org, so endorsement load is
// balanced like a round-robin SDK.
func TestEndorsementRotationSpreadsLoad(t *testing.T) {
	cfg := testConfig(60)
	cfg.PeersPerOrg = 2
	cfg.Duration = 10 * time.Second
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.Run()
	// Every peer's endorser pool must have been used: its slots moved
	// past zero.
	for _, p := range nw.Peers() {
		used := false
		for _, s := range p.endorserSlots {
			if s > 0 {
				used = true
			}
		}
		if !used {
			t.Errorf("peer %s never endorsed", p.Name())
		}
	}
}

// TestP1OnlySubsetEndorses verifies that under P1 only Org0 plus one
// other org endorse each transaction, so endorsement spread follows
// the policy.
func TestP1OnlySubsetEndorses(t *testing.T) {
	cfg := testConfig(61)
	cfg.Orgs = 4
	cfg.PeersPerOrg = 1
	cfg.Policy = policy.P1
	cfg.Duration = 10 * time.Second
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := nw.Run()
	if rep.Valid == 0 {
		t.Fatal("no valid transactions under P1")
	}
	// Under P1, every tx carries exactly 2 endorsements. Check via
	// chain (unstripped txs would be needed; instead check valid
	// share is high — VSCC would reject wrong sets).
	if rep.FailurePct > 60 {
		t.Fatalf("P1 run mostly failing: %v", rep)
	}
}

// TestClientCheckDropsMismatches ensures that with the optional §2
// step-3 check enabled, endorsement mismatches become early aborts
// instead of on-chain endorsement failures.
func TestClientCheckDropsMismatches(t *testing.T) {
	base := testConfig(62)
	base.Duration = 40 * time.Second
	nwA, err := NewNetwork(base)
	if err != nil {
		t.Fatal(err)
	}
	repA := nwA.Run()

	checked := testConfig(62)
	checked.Duration = 40 * time.Second
	checked.ClientCheck = true
	nwB, err := NewNetwork(checked)
	if err != nil {
		t.Fatal(err)
	}
	repB := nwB.Run()

	if repA.Counts[ledger.EndorsementPolicyFailure] == 0 {
		t.Skip("no endorsement mismatches in this window")
	}
	if repB.Counts[ledger.AbortedInOrdering] == 0 {
		t.Errorf("client check produced no early aborts: %v", repB)
	}
	// With the check on, on-chain endorsement failures shrink (only
	// signature/policy problems remain, and we inject none).
	if repB.Counts[ledger.EndorsementPolicyFailure] >= repA.Counts[ledger.EndorsementPolicyFailure] {
		t.Errorf("client check did not reduce on-chain endorsement failures: %d vs %d",
			repB.Counts[ledger.EndorsementPolicyFailure], repA.Counts[ledger.EndorsementPolicyFailure])
	}
}
