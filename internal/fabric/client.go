package fabric

import (
	"fmt"
	"time"

	"repro/internal/ledger"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Client is one Caliper-style load generator process (§4.2: 5 on C1,
// 25 on C2). It draws invocations from the workload, runs the
// execution phase (collect endorsements from a policy-satisfying set
// of peers), assembles the envelope and submits it to an orderer node.
//
// Two arrival modes exist. Open loop (the paper's §4.5 setup):
// Poisson arrivals at rate/clients tps, and — unless a RetryPolicy is
// configured — failed transactions are never resent. Closed loop:
// the client keeps Config.InFlightPerClient logical transactions
// outstanding and submits the next as soon as one resolves.
//
// When the run needs outcome tracking (a retry policy or closed-loop
// mode), the client registers every submission in its pending table
// and listens for commit events delivered over the network by the
// metrics peer (and for early-abort events from the ordering
// service), exactly like a Fabric SDK client subscribed to a peer's
// block events. A failed attempt is resubmitted — re-endorsed from
// scratch with a fresh transaction id, same invocation — per the
// retry policy's backoff schedule.
type Client struct {
	nw       *Network
	id       int
	name     string
	rotation int

	// pending maps the in-flight attempt's transaction id to its
	// logical transaction, for commit-event correlation. Only
	// populated when the network tracks outcomes.
	pending map[string]*pendingTx

	// policy is this client's retry policy instance. Stateful policies
	// (AdaptivePolicy) get one instance per client; stateless ones are
	// shared with the network.
	policy RetryPolicy
	// observer/reporter are the optional adaptive facets of policy,
	// resolved once at construction.
	observer outcomeObserver
	reporter backoffReporter
	// bucket is the per-client retry budget (nil = unlimited).
	bucket *tokenBucket

	// pacer is the resolved backpressure config when the run both
	// enables the orderer's congestion signal and tracks outcomes (the
	// hint arrives on outcome events); nil otherwise. hint is the
	// latest congestion hint observed on this client's event stream,
	// and hintObs is the optional hint-consuming facet of the policy.
	pacer   *Backpressure
	hint    float64
	hintObs hintObserver

	// gossip is this client's view of the client-to-client congestion
	// signal (nil without Config.Gossip or outcome tracking), and
	// hintSrc selects which producer — orderer hint, gossip estimate,
	// or their max — feeds pacing and the hint-consuming policies.
	gossip  *gossipState
	hintSrc HintSource

	// resubmissions counts retry submissions issued (diagnostics).
	resubmissions int
}

// pendingTx is one logical transaction tracked across resubmissions:
// the client retries the same invocation until it commits or the
// policy gives up.
type pendingTx struct {
	inv         workload.Invocation
	attempts    int      // submissions so far (1 = first attempt)
	firstSubmit sim.Time // first submission, end-to-end latency start
}

func newClient(nw *Network, id int) *Client {
	c := &Client{nw: nw, id: id, name: fmt.Sprintf("client%d", id),
		pending: map[string]*pendingTx{}}
	c.policy = nw.retry
	if pc, ok := c.policy.(perClientPolicy); ok {
		c.policy = pc.perClient()
	}
	// The observer/trajectory facets may sit behind wrappers
	// (GiveUpAfter): unwrap to find them.
	base := c.policy
	for {
		u, ok := base.(interface{ unwrap() RetryPolicy })
		if !ok {
			break
		}
		base = u.unwrap()
	}
	c.observer, _ = base.(outcomeObserver)
	c.reporter, _ = base.(backoffReporter)
	if nw.tracking && nw.cfg.RetryBudget != nil {
		c.bucket = newTokenBucket(*nw.cfg.RetryBudget)
	}
	c.hintSrc = nw.hintSrc
	if nw.tracking && nw.bp != nil {
		c.pacer = nw.bp
	}
	if nw.gossip != nil {
		c.gossip = newGossipState(*nw.gossip)
	}
	if c.pacer != nil || c.gossip != nil {
		c.hintObs, _ = base.(hintObserver)
	}
	return c
}

// Resubmissions reports how many retry submissions this client issued.
func (c *Client) Resubmissions() int { return c.resubmissions }

// Pending reports how many of this client's attempts are still
// awaiting an outcome event (diagnostics; in-flight work at the end
// of a run).
func (c *Client) Pending() int { return len(c.pending) }

// start schedules the arrival process for the send window. Open loop:
// Poisson arrivals whose mean inter-arrival time tracks the (possibly
// time-varying) configured rate. Closed loop: the initial in-flight
// window is opened and each resolved transaction triggers the next.
func (c *Client) start() {
	if c.gossip != nil {
		c.startGossip()
	}
	if c.nw.cfg.ClosedLoop {
		window := c.nw.cfg.InFlightPerClient
		if window < 1 {
			window = 1
		}
		for i := 0; i < window; i++ {
			c.submitJob()
		}
		return
	}
	mean := func() time.Duration {
		rate := c.nw.cfg.RateAt(time.Duration(c.nw.eng.Now()))
		return time.Duration(float64(time.Second) * float64(c.nw.cfg.Clients) / rate)
	}
	var arrive func()
	arrive = func() {
		if c.nw.eng.Now() >= sim.Time(c.nw.cfg.Duration) {
			return // send window over
		}
		c.submitJob()
		c.nw.eng.After(c.nw.eng.Exponential(mean()), arrive)
	}
	c.nw.eng.After(c.nw.eng.Exponential(mean()), arrive)
}

// submitJob draws the next invocation from the workload and submits
// its first attempt.
func (c *Client) submitJob() {
	j := &pendingTx{
		inv:         c.nw.cfg.Workload.Next(c.nw.eng.Rand()),
		firstSubmit: c.nw.eng.Now(),
	}
	c.submitAttempt(j)
}

// submitAttempt runs one submission of a logical transaction through
// the execution phase. Resubmissions replay the same invocation under
// a fresh transaction id (a retried Fabric transaction is a new
// proposal: new endorsements, new read set against current state).
func (c *Client) submitAttempt(j *pendingTx) {
	j.attempts++
	inv := j.inv
	tx := &ledger.Transaction{
		ID:         c.nw.nextTxID(c.id),
		ClientID:   c.name,
		Chaincode:  inv.Chaincode,
		Function:   inv.Function,
		SubmitTime: c.nw.eng.Now(),
	}
	if c.nw.tracking {
		c.pending[tx.ID] = j
	}
	c.rotation++
	endorserOrgs := c.nw.pol.RequiredEndorsers(c.rotation)
	peerInOrg := c.rotation % c.nw.cfg.PeersPerOrg

	want := len(endorserOrgs)
	var got []*ledger.Endorsement
	failed := false
	respond := func(e *ledger.Endorsement, err error) {
		if failed {
			return
		}
		if err != nil {
			// Proposal error (chaincode rejected the call). Counted
			// as an early abort: the attempt is dropped.
			failed = true
			c.nw.col.RecordAbort(tx.SubmitTime, c.nw.eng.Now())
			c.attemptFailed(j, tx.ID, ledger.AbortedInOrdering)
			return
		}
		got = append(got, e)
		if len(got) == want {
			c.assemble(j, tx, got)
		}
	}

	for _, org := range endorserOrgs {
		peer := c.nw.peerOf(org, peerInOrg)
		c.nw.net.Send(c.name, peer.name, func() {
			peer.Endorse(inv, func(e *ledger.Endorsement, err error) {
				c.nw.net.Send(peer.name, c.name, func() { respond(e, err) })
			})
		})
	}
}

// assemble builds the envelope from the collected endorsements and
// sends it to an orderer node (§2 step 3).
func (c *Client) assemble(j *pendingTx, tx *ledger.Transaction, ends []*ledger.Endorsement) {
	tx.EndorseTime = c.nw.eng.Now()
	tx.Endorsements = ends
	tx.RWSet = ends[0].RWSet
	// Deduplicate identical rwsets so a transaction holds one copy
	// (DV endorsements carry 1000-key range observations).
	first := ends[0].RWSet.Digest()
	consistent := true
	for _, e := range ends[1:] {
		if e.RWSet.Digest() == first {
			e.RWSet = ends[0].RWSet
		} else {
			consistent = false
		}
	}
	if c.nw.cfg.ClientCheck && !consistent {
		// Optional early check (§2 step 3): drop mismatching
		// responses before ordering to save overhead. The failure is
		// still a failure.
		c.nw.col.RecordAbort(tx.SubmitTime, c.nw.eng.Now())
		c.attemptFailed(j, tx.ID, ledger.AbortedInOrdering)
		return
	}
	if c.nw.cfg.SkipReadOnlySubmission && consistent && len(tx.RWSet.Writes) == 0 {
		// Recommendation #4 (§6.1): the query result is already in
		// hand after the execution phase; nothing needs ordering.
		c.nw.col.RecordServedRead(tx.SubmitTime, c.nw.eng.Now())
		c.attemptResolved(j, tx.ID, ledger.Valid)
		return
	}
	tx.SnapshotHeight = c.nw.chain.Height()
	orderer := c.nw.orderer.NodeName(c.rotation)
	c.nw.net.Send(c.name, orderer, func() { c.nw.orderer.Submit(tx) })
}

// onOutcome handles a commit (or early-abort) event for one of this
// client's pending attempts. Events for unknown transaction ids still
// refresh the congestion hint — the orderer's signal is fresh
// regardless of which attempt carried it — but are otherwise ignored
// (the attempt was already resolved locally).
func (c *Client) onOutcome(txID string, code ledger.ValidationCode, hint float64) {
	if c.pacer != nil && c.hintSrc.usesOrderer() {
		c.hint = hint
		if c.hintObs != nil {
			c.hintObs.observeHint(hint)
		}
	}
	j, ok := c.pending[txID]
	if !ok {
		return
	}
	if code == ledger.Valid {
		c.attemptResolved(j, txID, code)
		return
	}
	c.attemptFailed(j, txID, code)
}

// attemptResolved finishes a logical transaction successfully: the
// attempt committed as valid (or was served directly as a read).
func (c *Client) attemptResolved(j *pendingTx, txID string, code ledger.ValidationCode) {
	if !c.nw.tracking {
		return
	}
	delete(c.pending, txID)
	c.nw.col.RecordAttempt(j.attempts, code)
	c.observe(false)
	c.gossipObserve(false)
	c.nw.col.RecordJob(j.attempts, true, j.firstSubmit, c.nw.eng.Now())
	c.jobDone()
}

// attemptFailed records a failed attempt and either schedules a
// resubmission per the retry policy or abandons the transaction. The
// orderer's backpressure pacer stretches the policy's backoff by
// hint×Gain before the budget sees it. A configured retry budget
// gates every resubmission the policy asks for: an empty bucket
// defers the retry until a token accrues, or — with DropOnEmpty —
// abandons the transaction as a budget exhaustion. Pacing time is
// recorded only to the extent the pause actually moved the schedule:
// a dropped retry never waited, and a token wait that covers the
// paced backoff (in part or in full) absorbs that much of the pause.
func (c *Client) attemptFailed(j *pendingTx, txID string, code ledger.ValidationCode) {
	if !c.nw.tracking {
		return
	}
	delete(c.pending, txID)
	c.nw.col.RecordAttempt(j.attempts, code)
	c.observe(true)
	c.gossipObserve(true)
	// The gossip estimate is pulled, not pushed: consult the hint once
	// per failure, refresh the policy's view right before it decides
	// the backoff (so the delay reflects the fleet's current alarm,
	// decay included), and reuse the same value for the pacer below.
	gossipFeeds := c.hintObs != nil && c.gossip != nil && c.hintSrc.usesGossip()
	var hint float64
	if gossipFeeds || c.pacer != nil {
		hint = c.currentHint()
	}
	if gossipFeeds {
		c.hintObs.observeHint(hint)
	}
	if delay, ok := c.policy.NextDelay(j.attempts, c.nw.eng.Rand()); ok {
		var pause time.Duration
		if c.pacer != nil {
			pause = c.pacer.pause(hint)
		}
		delay += pause
		if c.bucket != nil {
			wait, granted := c.bucket.take(c.nw.eng.Now())
			if !granted {
				c.nw.col.RecordBudgetExhausted()
				c.nw.col.RecordJob(j.attempts, false, j.firstSubmit, c.nw.eng.Now())
				c.jobDone()
				return
			}
			if wait > delay {
				// The token becomes available only after the policy's
				// (paced) backoff would have fired: the budget alone
				// delays this retry, so none of the pause counts as
				// pacer-added time.
				c.nw.col.RecordDeferStart()
				c.resubmissions++
				c.nw.eng.After(wait, func() {
					c.nw.col.RecordDeferEnd()
					c.submitAttempt(j)
				})
				return
			}
			if unpaced := delay - pause; wait > unpaced {
				// The token wait already covers part of the pause:
				// only the remainder stretched the schedule.
				pause = delay - wait
			}
		}
		if pause > 0 {
			c.nw.col.RecordPaced(pause)
		}
		c.resubmissions++
		c.nw.eng.After(delay, func() { c.submitAttempt(j) })
		return
	}
	c.nw.col.RecordJob(j.attempts, false, j.firstSubmit, c.nw.eng.Now())
	c.jobDone()
}

// pacePause converts the current congestion hint into the extra delay
// the backpressure pacer adds to the next submission: hint×Gain,
// capped at MaxPause. Zero without backpressure or when the selected
// producer reports no congestion, so the default configuration never
// alters scheduling.
func (c *Client) pacePause() time.Duration {
	if c.pacer == nil {
		return 0
	}
	return c.pacer.pause(c.currentHint())
}

// currentHint resolves the congestion hint the configured producer(s)
// currently report: the orderer hint last seen on this client's event
// stream, the live (decayed) gossip estimate, or their max. Each
// consultation of a gossip estimate records the age of the
// information behind it — the staleness-at-use metric.
func (c *Client) currentHint() float64 {
	var h float64
	if c.hintSrc.usesOrderer() {
		h = c.hint
	}
	if c.gossip != nil && c.hintSrc.usesGossip() {
		g, stale := c.gossip.estimate(c.nw.eng.Now())
		c.nw.col.RecordGossipUse(stale)
		if g > h {
			h = g
		}
	}
	return h
}

// gossipObserve slides one attempt outcome into the gossip window
// (no-op without Config.Gossip).
func (c *Client) gossipObserve(failed bool) {
	if c.gossip != nil {
		c.gossip.observe(failed)
	}
}

// startGossip schedules this client's gossip rounds: every Period the
// client samples Fanout distinct peers and sends them its current
// estimate over the network model, like an SDK-side gossip mesh. The
// estimate trajectory is sampled once per round. Rounds run for the
// whole simulation (retries continue through the drain, so the signal
// must too); the engine simply stops executing them at the deadline.
func (c *Client) startGossip() {
	period := c.gossip.cfg.Period
	if period <= 0 || len(c.nw.clients) < 2 {
		return
	}
	var round func()
	round = func() {
		c.gossipRound()
		c.nw.eng.After(period, round)
	}
	c.nw.eng.After(period, round)
}

// gossipRound sends the client's current estimate to Fanout sampled
// peers. Peer sampling draws from the simulation rng, so rounds are
// deterministic per (config, seed) like every other random decision.
func (c *Client) gossipRound() {
	now := c.nw.eng.Now()
	est, _ := c.gossip.estimate(now)
	c.nw.col.RecordGossipSample(est)
	n := len(c.nw.clients)
	fanout := c.gossip.cfg.Fanout
	if fanout > n-1 {
		fanout = n - 1
	}
	if fanout <= 0 {
		return
	}
	// Sample fanout distinct peers other than self: a permutation of
	// the n-1 other indices, prefix-truncated.
	perm := c.nw.eng.Rand().Perm(n - 1)
	for _, p := range perm[:fanout] {
		if p >= c.id {
			p++ // skip self
		}
		peer := c.nw.clients[p]
		c.nw.col.RecordGossipMessage()
		c.nw.net.Send(c.name, peer.name, func() { peer.onGossip(est, now) })
	}
}

// onGossip receives one peer's estimate (worth value at the sender's
// sentAt) and merges it by max-with-decay. Merges only update this
// client's view; the hint-consuming policies read it lazily at their
// next backoff decision, and the pacer at its next pause.
func (c *Client) onGossip(value float64, sentAt sim.Time) {
	if c.gossip == nil {
		return
	}
	if c.gossip.merge(value, sentAt, c.nw.eng.Now()) {
		c.nw.col.RecordGossipMerge()
	}
}

// observe feeds an attempt outcome to an adaptive policy and samples
// its resulting backoff level for the trajectory summary. Inert (and
// rng-neutral) for stateless policies.
func (c *Client) observe(failed bool) {
	if c.observer == nil {
		return
	}
	c.observer.observe(failed)
	if c.reporter != nil {
		c.nw.col.RecordBackoffSample(c.reporter.currentBackoff())
	}
}

// jobDone closes a logical transaction; in closed-loop mode it keeps
// the in-flight window full while the send window is open, waiting
// out the configured think time first. The backpressure pacer delays
// new closed-loop work too — the shared signal throttles fresh load,
// not just retries. With no think time and no pacing the next job
// starts synchronously — the historical behaviour, with no extra
// events and no extra rng draws.
func (c *Client) jobDone() {
	if !c.nw.cfg.ClosedLoop || c.nw.eng.Now() >= sim.Time(c.nw.cfg.Duration) {
		return
	}
	think := c.nw.cfg.ThinkTime.sample(c.nw.eng)
	if pause := c.pacePause(); pause > 0 {
		c.nw.col.RecordPaced(pause)
		think += pause
	}
	if think <= 0 {
		c.submitJob()
		return
	}
	c.nw.eng.After(think, func() {
		// The window may have closed while thinking.
		if c.nw.eng.Now() < sim.Time(c.nw.cfg.Duration) {
			c.submitJob()
		}
	})
}
