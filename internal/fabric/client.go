package fabric

import (
	"fmt"
	"time"

	"repro/internal/ledger"
	"repro/internal/sim"
)

// Client is one Caliper-style load generator process (§4.2: 5 on C1,
// 25 on C2). It draws invocations from the workload, runs the
// execution phase (collect endorsements from a policy-satisfying set
// of peers), assembles the envelope and submits it to an orderer node.
// Arrivals are open-loop Poisson at rate/clients tps; failed
// transactions are never resent (§4.5).
type Client struct {
	nw       *Network
	id       int
	name     string
	rotation int
}

func newClient(nw *Network, id int) *Client {
	return &Client{nw: nw, id: id, name: fmt.Sprintf("client%d", id)}
}

// start schedules the arrival process for the send window. The mean
// inter-arrival time tracks the (possibly time-varying) configured
// rate.
func (c *Client) start() {
	mean := func() time.Duration {
		rate := c.nw.cfg.RateAt(time.Duration(c.nw.eng.Now()))
		return time.Duration(float64(time.Second) * float64(c.nw.cfg.Clients) / rate)
	}
	var arrive func()
	arrive = func() {
		if c.nw.eng.Now() >= sim.Time(c.nw.cfg.Duration) {
			return // send window over
		}
		c.submitOne()
		c.nw.eng.After(c.nw.eng.Exponential(mean()), arrive)
	}
	c.nw.eng.After(c.nw.eng.Exponential(mean()), arrive)
}

// submitOne runs one transaction through the execution phase.
func (c *Client) submitOne() {
	inv := c.nw.cfg.Workload.Next(c.nw.eng.Rand())
	tx := &ledger.Transaction{
		ID:         c.nw.nextTxID(c.id),
		ClientID:   c.name,
		Chaincode:  inv.Chaincode,
		Function:   inv.Function,
		SubmitTime: c.nw.eng.Now(),
	}
	c.rotation++
	endorserOrgs := c.nw.pol.RequiredEndorsers(c.rotation)
	peerInOrg := c.rotation % c.nw.cfg.PeersPerOrg

	want := len(endorserOrgs)
	var got []*ledger.Endorsement
	failed := false
	respond := func(e *ledger.Endorsement, err error) {
		if failed {
			return
		}
		if err != nil {
			// Proposal error (chaincode rejected the call). Counted
			// as an early endorsement failure: the tx is dropped.
			failed = true
			c.nw.col.RecordAbort(tx.SubmitTime, c.nw.eng.Now())
			return
		}
		got = append(got, e)
		if len(got) == want {
			c.assemble(tx, got)
		}
	}

	for _, org := range endorserOrgs {
		peer := c.nw.peerOf(org, peerInOrg)
		c.nw.net.Send(c.name, peer.name, func() {
			peer.Endorse(inv, func(e *ledger.Endorsement, err error) {
				c.nw.net.Send(peer.name, c.name, func() { respond(e, err) })
			})
		})
	}
}

// assemble builds the envelope from the collected endorsements and
// sends it to an orderer node (§2 step 3).
func (c *Client) assemble(tx *ledger.Transaction, ends []*ledger.Endorsement) {
	tx.EndorseTime = c.nw.eng.Now()
	tx.Endorsements = ends
	tx.RWSet = ends[0].RWSet
	// Deduplicate identical rwsets so a transaction holds one copy
	// (DV endorsements carry 1000-key range observations).
	first := ends[0].RWSet.Digest()
	consistent := true
	for _, e := range ends[1:] {
		if e.RWSet.Digest() == first {
			e.RWSet = ends[0].RWSet
		} else {
			consistent = false
		}
	}
	if c.nw.cfg.ClientCheck && !consistent {
		// Optional early check (§2 step 3): drop mismatching
		// responses before ordering to save overhead. The failure is
		// still a failure.
		c.nw.col.RecordAbort(tx.SubmitTime, c.nw.eng.Now())
		return
	}
	if c.nw.cfg.SkipReadOnlySubmission && consistent && len(tx.RWSet.Writes) == 0 {
		// Recommendation #4 (§6.1): the query result is already in
		// hand after the execution phase; nothing needs ordering.
		c.nw.col.RecordServedRead(tx.SubmitTime, c.nw.eng.Now())
		return
	}
	tx.SnapshotHeight = c.nw.chain.Height()
	orderer := c.nw.orderer.NodeName(c.rotation)
	c.nw.net.Send(c.name, orderer, func() { c.nw.orderer.Submit(tx) })
}
