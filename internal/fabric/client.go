package fabric

import (
	"fmt"
	"time"

	"repro/internal/ledger"
	"repro/internal/sim"
	"repro/internal/workload"
)

// clientCore is the client-behavior machinery shared by every
// ClientDriver implementation: the exact per-client Client and the
// Cohort that drives many statistically identical clients from one
// state object. It owns the submission pipeline (draw invocation,
// collect endorsements, assemble, order), the pending-transaction
// table, and the whole coordination stack — retry policy, budget
// bucket, backpressure pacing, gossip estimate. The only thing a
// driver adds on top is its arrival process (start).
//
// The core drives `members` simulated clients starting at global
// client index firstID. Per-member state is deliberately tiny — one
// endorser-rotation counter — so a driver's memory cost is amortized
// across its members; everything heavy (pending map, policy, bucket,
// gossip window) is shared. With members == 1 the behaviour is the
// historical per-client simulation, bit for bit.
type clientCore struct {
	nw *Network
	// index is the driver's position in the network's driver list
	// (gossip peer sampling); firstID is the global index of the first
	// simulated client this driver speaks for.
	index   int
	firstID int
	members int
	name    string

	// rotation holds one endorser/orderer rotation counter per driven
	// member — the only per-member state, a few bytes per simulated
	// client.
	rotation []int

	// pending maps an in-flight attempt's transaction id (one per leg
	// for cross-channel transactions) to its logical transaction, for
	// commit-event correlation. Only populated when the network tracks
	// outcomes.
	pending map[string]*pendingTx

	// policy is this driver's retry policy instance. Stateful policies
	// (AdaptivePolicy) get one instance per driver — a cohort's members
	// share one controller, the mean-field approximation — while
	// stateless ones are shared with the network.
	policy RetryPolicy
	// observer/reporter are the optional adaptive facets of policy,
	// resolved once at construction. classObs is the split-mode variant
	// of observer: outcomes arrive classified per SignalClass instead
	// of as a scalar failed bit. When the split is on and the policy
	// supports it, classObs supersedes observer.
	observer outcomeObserver
	classObs classObserver
	reporter backoffReporter
	// bucket is the retry budget (nil = unlimited). A cohort shares
	// one bucket across its members with refill rate and burst scaled
	// by member count, so the aggregate retry allowance matches the
	// exact simulation.
	bucket *tokenBucket

	// pacer is the resolved backpressure config when the run both
	// enables the orderer's congestion signal and tracks outcomes (the
	// hint arrives on outcome events); nil otherwise. hints holds the
	// latest congestion hint observed per channel on this driver's
	// event stream — each channel's ordering service computes its own —
	// and hintObs is the optional hint-consuming facet of the policy.
	pacer   *Backpressure
	hints   []float64
	hintObs hintObserver

	// gossip is this driver's view of the client-to-client congestion
	// signal (nil without Config.Gossip or outcome tracking), and
	// hintSrc selects which producer — orderer hint, gossip estimate,
	// or their max — feeds pacing and the hint-consuming policies. A
	// cohort is one gossip participant: its members pool their outcome
	// window and estimate.
	gossip  *gossipState
	hintSrc HintSource

	// split is the resolved split-signal mode (nil = scalar): outcome
	// classification per SignalClass, a two-component gossip estimate,
	// and conflict→backoff / congestion→pacing signal routing.
	split *SplitSignal

	// resubmissions counts retry submissions issued (diagnostics).
	resubmissions int
}

// pendingTx is one logical transaction tracked across resubmissions:
// the client retries the same invocation until it commits or the
// policy gives up. A cross-channel transaction (Config.CrossChannel)
// has two legs — one proposal per channel — and each attempt resolves
// only when both legs have reported; any failed leg fails the attempt.
type pendingTx struct {
	inv         workload.Invocation
	attempts    int      // submissions so far (1 = first attempt)
	firstSubmit sim.Time // first submission, end-to-end latency start
	lastSubmit  sim.Time // current attempt's submission (congestion evidence)
	member      int      // driven member this job belongs to

	// channels[:legs] are the channels this transaction spans (legs is
	// 1, or 2 for a cross-channel transaction). legsLeft counts the
	// current attempt's unresolved legs; legFailed/failCode latch the
	// first leg failure so the whole attempt fails with it.
	channels  [2]int
	legs      int
	legsLeft  int
	legFailed bool
	failCode  ledger.ValidationCode
}

// init wires the shared machinery; each driver type calls it from its
// constructor.
func (c *clientCore) init(nw *Network, index, firstID, members int, name string) {
	c.nw = nw
	c.index = index
	c.firstID = firstID
	c.members = members
	c.name = name
	c.rotation = make([]int, members)
	c.pending = map[string]*pendingTx{}
	c.hints = make([]float64, nw.channels)
	c.policy = nw.retry
	if pc, ok := c.policy.(perClientPolicy); ok {
		c.policy = pc.perClient()
	}
	// The observer/trajectory facets may sit behind wrappers
	// (GiveUpAfter): unwrap to find them.
	base := c.policy
	for {
		u, ok := base.(interface{ unwrap() RetryPolicy })
		if !ok {
			break
		}
		base = u.unwrap()
	}
	c.observer, _ = base.(outcomeObserver)
	c.reporter, _ = base.(backoffReporter)
	c.split = nw.split
	if c.split != nil {
		if sa, ok := base.(splitAware); ok {
			sa.enableSplit()
			c.classObs, _ = base.(classObserver)
		}
	}
	if nw.tracking && nw.cfg.RetryBudget != nil {
		b := *nw.cfg.RetryBudget
		if members > 1 {
			// One bucket serves the whole cohort: scale the refill
			// stream and capacity so the aggregate retry allowance
			// equals members independent per-client buckets.
			b = b.withDefaults()
			b.RefillPerSec *= float64(members)
			b.Burst *= float64(members)
			if b.MaxRefillPerSec > 0 {
				b.MaxRefillPerSec *= float64(members)
			}
		}
		c.bucket = newTokenBucket(b)
	}
	c.hintSrc = nw.hintSrc
	if nw.tracking && nw.bp != nil {
		c.pacer = nw.bp
	}
	if nw.gossip != nil {
		c.gossip = newGossipState(*nw.gossip, c.split != nil)
	}
	if c.pacer != nil || c.gossip != nil {
		c.hintObs, _ = base.(hintObserver)
	}
}

// Name returns the driver's network node name.
func (c *clientCore) Name() string { return c.name }

// Members reports how many simulated clients this driver drives.
func (c *clientCore) Members() int { return c.members }

// Resubmissions reports how many retry submissions this driver issued.
func (c *clientCore) Resubmissions() int { return c.resubmissions }

// Pending reports how many of this driver's attempts are still
// awaiting an outcome event (diagnostics; in-flight work at the end
// of a run).
func (c *clientCore) Pending() int { return len(c.pending) }

// openWindow submits the initial closed-loop window for every driven
// member, in member order — exactly the submission order the exact
// simulation produces when its clients start in sequence.
func (c *clientCore) openWindow() {
	window := c.nw.cfg.InFlightPerClient
	if window < 1 {
		window = 1
	}
	for m := 0; m < c.members; m++ {
		for i := 0; i < window; i++ {
			c.submitJob(m)
		}
	}
}

// submitJob draws the next invocation from the workload, routes it to
// its home channel, decides whether it spans a second channel
// (Config.CrossChannel), and submits its first attempt on behalf of
// the given member.
func (c *clientCore) submitJob(member int) {
	j := &pendingTx{
		inv:         c.nw.cfg.Workload.Next(c.nw.eng.Rand()),
		firstSubmit: c.nw.eng.Now(),
		member:      member,
		legs:        1,
	}
	j.channels[0] = c.nw.channelOf(j.inv)
	if n := c.nw.channels; n > 1 && c.nw.cfg.CrossChannel > 0 &&
		c.nw.eng.Rand().Float64() < c.nw.cfg.CrossChannel {
		// Second leg on a uniformly drawn other channel.
		second := c.nw.eng.Rand().Intn(n - 1)
		if second >= j.channels[0] {
			second++
		}
		j.channels[1] = second
		j.legs = 2
	}
	c.submitAttempt(j)
}

// submitAttempt runs one submission of a logical transaction through
// the execution phase, one leg per spanned channel. Resubmissions
// replay the same invocation under fresh transaction ids (a retried
// Fabric transaction is a new proposal: new endorsements, new read set
// against current state).
func (c *clientCore) submitAttempt(j *pendingTx) {
	j.attempts++
	j.lastSubmit = c.nw.eng.Now()
	j.legsLeft = j.legs
	j.legFailed = false
	for l := 0; l < j.legs; l++ {
		c.submitLeg(j, j.channels[l])
	}
}

// submitLeg submits one channel's proposal of the current attempt:
// collect endorsements from a policy-satisfying set of peers against
// the leg channel's replicas, then assemble and order on that channel.
func (c *clientCore) submitLeg(j *pendingTx, channel int) {
	inv := j.inv
	tx := &ledger.Transaction{
		ID:         c.nw.nextTxID(c.firstID + j.member),
		ClientID:   c.name,
		Chaincode:  inv.Chaincode,
		Function:   inv.Function,
		SubmitTime: c.nw.eng.Now(),
	}
	if c.nw.tracking {
		c.pending[tx.ID] = j
	}
	c.rotation[j.member]++
	rot := c.rotation[j.member]
	endorserOrgs := c.nw.pol.RequiredEndorsers(rot)
	peerInOrg := rot % c.nw.cfg.PeersPerOrg

	want := len(endorserOrgs)
	var got []*ledger.Endorsement
	// done latches once the endorsement phase resolved — a proposal
	// error, a complete endorsement set, or the client's endorsement
	// deadline — so late responses and a late deadline are no-ops.
	done := false
	respond := func(e *ledger.Endorsement, err error) {
		if done {
			return
		}
		if err != nil {
			// Proposal error (chaincode rejected the call). Counted
			// as an early abort: the attempt is dropped.
			done = true
			c.nw.col.RecordAbort(tx.SubmitTime, c.nw.eng.Now())
			c.legDone(j, tx.ID, ledger.AbortedInOrdering)
			return
		}
		got = append(got, e)
		if len(got) == want {
			done = true
			c.assemble(j, tx, channel, got)
		}
	}

	for _, org := range endorserOrgs {
		peer := c.nw.peerOf(org, peerInOrg)
		c.nw.net.Send(c.name, peer.name, func() {
			peer.Endorse(inv, channel, func(e *ledger.Endorsement, err error) {
				c.nw.net.Send(peer.name, c.name, func() { respond(e, err) })
			})
		})
	}

	// Client-side endorsement deadline (Config.Faults): if a crashed
	// or partitioned endorser keeps the set incomplete past the
	// timeout, the attempt fails as CLIENT_TIMEOUT and feeds the
	// normal retry path. Inert without fault injection or outcome
	// tracking.
	if ft := c.nw.faults; ft != nil && ft.EndorseTimeout > 0 && c.nw.tracking {
		c.nw.eng.After(ft.EndorseTimeout, func() {
			if done {
				return
			}
			done = true
			c.nw.col.RecordEndorseTimeout()
			c.legDone(j, tx.ID, ledger.ClientTimeout)
		})
	}
}

// assemble builds the envelope from the collected endorsements and
// sends it to an orderer node of the leg's channel (§2 step 3).
func (c *clientCore) assemble(j *pendingTx, tx *ledger.Transaction, channel int, ends []*ledger.Endorsement) {
	tx.EndorseTime = c.nw.eng.Now()
	tx.Endorsements = ends
	tx.RWSet = ends[0].RWSet
	// Deduplicate identical rwsets so a transaction holds one copy
	// (DV endorsements carry 1000-key range observations).
	first := ends[0].RWSet.Digest()
	consistent := true
	for _, e := range ends[1:] {
		if e.RWSet.Digest() == first {
			e.RWSet = ends[0].RWSet
		} else {
			consistent = false
		}
	}
	if c.nw.cfg.ClientCheck && !consistent {
		// Optional early check (§2 step 3): drop mismatching
		// responses before ordering to save overhead. The failure is
		// still a failure.
		c.nw.col.RecordAbort(tx.SubmitTime, c.nw.eng.Now())
		c.legDone(j, tx.ID, ledger.AbortedInOrdering)
		return
	}
	if c.nw.cfg.SkipReadOnlySubmission && consistent && len(tx.RWSet.Writes) == 0 {
		// Recommendation #4 (§6.1): the query result is already in
		// hand after the execution phase; nothing needs ordering.
		c.nw.col.RecordServedRead(tx.SubmitTime, c.nw.eng.Now())
		c.legDone(j, tx.ID, ledger.Valid)
		return
	}
	os := c.nw.orderers[channel]
	tx.SnapshotHeight = c.nw.chains[channel].Height()
	orderer := os.NodeName(c.rotation[j.member])
	c.nw.net.Send(c.name, orderer, func() { os.Submit(tx) })

	// Client-side submission deadline (Config.Faults): if no commit or
	// abort event arrives in time — the envelope died with a crashed
	// orderer, or the event path is cut — the attempt fails as
	// CLIENT_TIMEOUT and is retried. The pending-table check makes a
	// late deadline a no-op; a transaction that commits after its
	// client gave up is counted orphaned in onOutcome.
	if ft := c.nw.faults; ft != nil && ft.SubmitTimeout > 0 && c.nw.tracking {
		c.nw.eng.After(ft.SubmitTimeout, func() {
			if cur, ok := c.pending[tx.ID]; ok && cur == j {
				c.nw.col.RecordSubmitTimeout()
				c.legDone(j, tx.ID, ledger.ClientTimeout)
			}
		})
	}
}

// onOutcome handles a commit (or early-abort) event for one of this
// driver's pending attempts. Events for unknown transaction ids still
// refresh the channel's congestion hint — the orderer's signal is
// fresh regardless of which attempt carried it — but are otherwise
// ignored (the attempt was already resolved locally).
func (c *clientCore) onOutcome(txID string, code ledger.ValidationCode, hint float64, channel int) {
	if c.pacer != nil && c.hintSrc.usesOrderer() {
		c.hints[channel] = hint
		// In split mode the orderer's hint is pure congestion evidence:
		// it feeds pacing via currentSignals but must not slide the
		// hint-consuming policies' backoff, which the conflict estimate
		// drives instead.
		if c.hintObs != nil && c.split == nil {
			c.hintObs.observeHint(hint)
		}
	}
	j, ok := c.pending[txID]
	if !ok {
		// With fault injection, a Valid outcome for an attempt the
		// client already timed out on means the transaction committed
		// after its submitter gave up (and possibly resubmitted): an
		// orphan — duplicate effect risk at the application layer.
		if c.nw.faults != nil && code == ledger.Valid {
			c.nw.col.RecordOrphan()
		}
		return
	}
	c.legDone(j, txID, code)
}

// legDone resolves one leg of a logical transaction's current attempt.
// Single-channel transactions have one leg, so the attempt resolves
// immediately; a cross-channel attempt waits for both legs and fails
// with the first leg failure (both commits are required). It is a
// no-op unless the run tracks outcomes.
func (c *clientCore) legDone(j *pendingTx, txID string, code ledger.ValidationCode) {
	if !c.nw.tracking {
		return
	}
	delete(c.pending, txID)
	if code != ledger.Valid && !j.legFailed {
		j.legFailed = true
		j.failCode = code
	}
	j.legsLeft--
	if j.legsLeft > 0 {
		return
	}
	if j.legFailed {
		c.attemptFailed(j, j.failCode)
		return
	}
	c.attemptResolved(j)
}

// attemptResolved finishes a logical transaction successfully: every
// leg of the attempt committed as valid (or was served directly as a
// read).
func (c *clientCore) attemptResolved(j *pendingTx) {
	c.nw.col.RecordAttempt(j.attempts, ledger.Valid)
	c.observe(ledger.Valid)
	c.gossipObserve(ledger.Valid, j)
	c.nw.col.RecordJob(j.attempts, true, j.firstSubmit, c.nw.eng.Now())
	c.jobDone(j.member)
}

// attemptFailed records a failed attempt and either schedules a
// resubmission per the retry policy or abandons the transaction. The
// orderer's backpressure pacer stretches the policy's backoff by
// hint×Gain before the budget sees it. A configured retry budget
// gates every resubmission the policy asks for: an empty bucket
// defers the retry until a token accrues, or — with DropOnEmpty —
// abandons the transaction as a budget exhaustion. Pacing time is
// recorded only to the extent the pause actually moved the schedule:
// a dropped retry never waited, and a token wait that covers the
// paced backoff (in part or in full) absorbs that much of the pause.
func (c *clientCore) attemptFailed(j *pendingTx, code ledger.ValidationCode) {
	c.nw.col.RecordAttempt(j.attempts, code)
	c.observe(code)
	c.gossipObserve(code, j)
	// The gossip estimate is pulled, not pushed: consult the signal once
	// per failure, refresh the policy's view right before it decides
	// the backoff (so the delay reflects the fleet's current alarm,
	// decay included), and reuse the same value for the pacer below.
	// In split mode the consultation yields two values routed apart:
	// the conflict estimate slides the hint-consuming policy's backoff,
	// the congestion estimate (orderer hints included) drives the pacer.
	gossipFeeds := c.hintObs != nil && c.gossip != nil && c.hintSrc.usesGossip()
	var hint float64
	if c.split != nil {
		if gossipFeeds || c.pacer != nil {
			conflict, congestion := c.currentSignals()
			if gossipFeeds {
				c.hintObs.observeHint(conflict)
			}
			hint = congestion
		}
	} else {
		if gossipFeeds || c.pacer != nil {
			hint = c.currentHint()
		}
		if gossipFeeds {
			c.hintObs.observeHint(hint)
		}
	}
	if delay, ok := c.policy.NextDelay(j.attempts, c.nw.eng.Rand()); ok {
		var pause time.Duration
		if c.pacer != nil {
			pause = c.pacer.pause(hint)
		}
		delay += pause
		if c.bucket != nil {
			wait, granted := c.bucket.take(c.nw.eng.Now(), ClassifyOutcome(code))
			if !granted {
				c.nw.col.RecordBudgetExhausted()
				c.nw.col.RecordJob(j.attempts, false, j.firstSubmit, c.nw.eng.Now())
				c.jobDone(j.member)
				return
			}
			if wait > delay {
				// The token becomes available only after the policy's
				// (paced) backoff would have fired: the budget alone
				// delays this retry, so none of the pause counts as
				// pacer-added time.
				c.nw.col.RecordDeferStart()
				c.resubmissions++
				c.nw.eng.After(wait, func() {
					c.nw.col.RecordDeferEnd()
					c.submitAttempt(j)
				})
				return
			}
			if unpaced := delay - pause; wait > unpaced {
				// The token wait already covers part of the pause:
				// only the remainder stretched the schedule.
				pause = delay - wait
			}
		}
		if pause > 0 {
			c.nw.col.RecordPaced(pause)
		}
		c.resubmissions++
		c.nw.eng.After(delay, func() { c.submitAttempt(j) })
		return
	}
	c.nw.col.RecordJob(j.attempts, false, j.firstSubmit, c.nw.eng.Now())
	c.jobDone(j.member)
}

// pacePause converts the current congestion hint into the extra delay
// the backpressure pacer adds to the next submission: hint×Gain,
// capped at MaxPause. Zero without backpressure or when the selected
// producer reports no congestion, so the default configuration never
// alters scheduling. In split mode only the congestion component
// paces — a conflict storm no longer throttles fresh load.
func (c *clientCore) pacePause() time.Duration {
	if c.pacer == nil {
		return 0
	}
	if c.split != nil {
		_, congestion := c.currentSignals()
		return c.pacer.pause(congestion)
	}
	return c.pacer.pause(c.currentHint())
}

// currentHint resolves the congestion hint the configured producer(s)
// currently report: the highest per-channel orderer hint last seen on
// this driver's event stream, the live (decayed) gossip estimate, or
// their max. Each consultation of a gossip estimate records the age
// of the information behind it — the staleness-at-use metric.
func (c *clientCore) currentHint() float64 {
	var h float64
	if c.hintSrc.usesOrderer() {
		for _, ch := range c.hints {
			if ch > h {
				h = ch
			}
		}
	}
	if c.gossip != nil && c.hintSrc.usesGossip() {
		g, stale := c.gossip.estimate(c.nw.eng.Now())
		c.nw.col.RecordGossipUse(stale)
		if g > h {
			h = g
		}
	}
	return h
}

// currentSignals resolves the two split-mode signals from the
// configured producer(s): the conflict estimate (gossip only — the
// orderer has no conflict view) and the congestion estimate (the max
// of the per-channel orderer hints and the gossiped congestion
// component, per HintSource). Consultations of the gossip estimate
// record staleness-at-use exactly like the scalar path.
func (c *clientCore) currentSignals() (conflict, congestion float64) {
	if c.hintSrc.usesOrderer() {
		for _, ch := range c.hints {
			if ch > congestion {
				congestion = ch
			}
		}
	}
	if c.gossip != nil && c.hintSrc.usesGossip() {
		e, stale := c.gossip.splitEstimate(c.nw.eng.Now())
		c.nw.col.RecordGossipUse(stale)
		conflict = e.Conflict
		if e.Congestion > congestion {
			congestion = e.Congestion
		}
	}
	return conflict, congestion
}

// gossipObserve slides one attempt outcome into the gossip window
// (no-op without Config.Gossip). In split mode the outcome lands in
// the per-class windows, with the attempt's submit→resolution latency
// checked against the CongestLatency threshold as congestion evidence.
func (c *clientCore) gossipObserve(code ledger.ValidationCode, j *pendingTx) {
	if c.gossip == nil {
		return
	}
	if c.split != nil {
		latency := time.Duration(c.nw.eng.Now() - j.lastSubmit)
		congested := c.split.CongestLatency > 0 && latency >= c.split.CongestLatency
		c.gossip.observeSplit(ClassifyOutcome(code), congested)
		return
	}
	c.gossip.observe(code != ledger.Valid)
}

// startGossip schedules this driver's gossip rounds: every Period the
// driver samples Fanout distinct peer drivers and sends them its
// current estimate over the network model, like an SDK-side gossip
// mesh. The estimate trajectory is sampled once per round. Rounds run
// for the whole simulation (retries continue through the drain, so
// the signal must too); the engine simply stops executing them at the
// deadline.
func (c *clientCore) startGossip() {
	period := c.gossip.cfg.Period
	if period <= 0 || len(c.nw.drivers) < 2 {
		return
	}
	var round func()
	round = func() {
		c.gossipRound()
		c.nw.eng.After(period, round)
	}
	c.nw.eng.After(period, round)
}

// gossipRound sends the driver's current estimate to Fanout sampled
// peer drivers. Peer sampling draws from the simulation rng, so rounds
// are deterministic per (config, seed) like every other random
// decision. In cohort mode each cohort is one gossip node — its
// members share the estimate they spread — so the mesh size is the
// driver count, not the simulated client count.
func (c *clientCore) gossipRound() {
	now := c.nw.eng.Now()
	var est float64
	var se SplitEstimate
	if c.split != nil {
		se, _ = c.gossip.splitEstimate(now)
		c.nw.col.RecordSplitSample(se.Conflict, se.Congestion)
		est = se.Max()
	} else {
		est, _ = c.gossip.estimate(now)
	}
	c.nw.col.RecordGossipSample(est)
	n := len(c.nw.drivers)
	fanout := c.gossip.cfg.Fanout
	if fanout > n-1 {
		fanout = n - 1
	}
	if fanout <= 0 {
		return
	}
	// Sample fanout distinct peers other than self: a permutation of
	// the n-1 other indices, prefix-truncated.
	perm := c.nw.eng.Rand().Perm(n - 1)
	for _, p := range perm[:fanout] {
		if p >= c.index {
			p++ // skip self
		}
		peer := c.nw.drivers[p]
		c.nw.col.RecordGossipMessage()
		if c.split != nil {
			c.nw.net.Send(c.name, peer.Name(), func() { peer.onGossipSplit(se, now) })
		} else {
			c.nw.net.Send(c.name, peer.Name(), func() { peer.onGossip(est, now) })
		}
	}
}

// onGossip receives one peer driver's estimate (worth value at the
// sender's sentAt) and merges it by max-with-decay. Merges only update
// this driver's view; the hint-consuming policies read it lazily at
// their next backoff decision, and the pacer at its next pause.
func (c *clientCore) onGossip(value float64, sentAt sim.Time) {
	if c.gossip == nil {
		return
	}
	if c.gossip.merge(value, sentAt, c.nw.eng.Now()) {
		c.nw.col.RecordGossipMerge()
	}
}

// onGossipSplit receives one peer driver's two-component estimate
// (split mode) and merges it component-wise by max-with-decay.
func (c *clientCore) onGossipSplit(e SplitEstimate, sentAt sim.Time) {
	if c.gossip == nil || !c.gossip.split {
		return
	}
	if c.gossip.mergeSplit(e, sentAt, c.nw.eng.Now()) {
		c.nw.col.RecordGossipMerge()
	}
}

// observe feeds an attempt outcome to an adaptive policy and samples
// its resulting backoff level for the trajectory summary. Inert (and
// rng-neutral) for stateless policies. In split mode the outcome
// arrives classified per SignalClass when the policy supports it, so
// the controller can gate its increase on conflict-class failures.
func (c *clientCore) observe(code ledger.ValidationCode) {
	fed := false
	if c.classObs != nil {
		c.classObs.observeClass(ClassifyOutcome(code))
		fed = true
	} else if c.observer != nil {
		c.observer.observe(code != ledger.Valid)
		fed = true
	}
	if fed && c.reporter != nil {
		c.nw.col.RecordBackoffSample(c.reporter.currentBackoff())
	}
}

// jobDone closes a logical transaction; in closed-loop mode it keeps
// the member's in-flight window full while the send window is open,
// waiting out the configured think time first. The backpressure pacer
// delays new closed-loop work too — the shared signal throttles fresh
// load, not just retries. With no think time and no pacing the next
// job starts synchronously — the historical behaviour, with no extra
// events and no extra rng draws.
func (c *clientCore) jobDone(member int) {
	if !c.nw.cfg.ClosedLoop || c.nw.eng.Now() >= sim.Time(c.nw.cfg.Duration) {
		return
	}
	think := c.nw.cfg.ThinkTime.sample(c.nw.eng)
	if pause := c.pacePause(); pause > 0 {
		c.nw.col.RecordPaced(pause)
		think += pause
	}
	if think <= 0 {
		c.submitJob(member)
		return
	}
	c.nw.eng.After(think, func() {
		// The window may have closed while thinking.
		if c.nw.eng.Now() < sim.Time(c.nw.cfg.Duration) {
			c.submitJob(member)
		}
	})
}

// Client is one Caliper-style load generator process (§4.2: 5 on C1,
// 25 on C2): the exact simulation, one driver object per simulated
// client. It draws invocations from the workload, runs the execution
// phase (collect endorsements from a policy-satisfying set of peers),
// assembles the envelope and submits it to an orderer node.
//
// Two arrival modes exist. Open loop (the paper's §4.5 setup):
// Poisson arrivals at rate/clients tps, and — unless a RetryPolicy is
// configured — failed transactions are never resent. Closed loop:
// the client keeps Config.InFlightPerClient logical transactions
// outstanding and submits the next as soon as one resolves.
//
// When the run needs outcome tracking (a retry policy or closed-loop
// mode), the client registers every submission in its pending table
// and listens for commit events delivered over the network by the
// metrics peer (and for early-abort events from the ordering
// service), exactly like a Fabric SDK client subscribed to a peer's
// block events. A failed attempt is resubmitted — re-endorsed from
// scratch with a fresh transaction id, same invocation — per the
// retry policy's backoff schedule.
//
// For sweeps where client count is a parameter rather than a cast of
// characters, see Cohort — the driver that amortizes one state object
// across many clients.
type Client struct {
	clientCore
}

func newClient(nw *Network, id int) *Client {
	c := &Client{}
	c.init(nw, id, id, 1, fmt.Sprintf("client%d", id))
	return c
}

// start schedules the arrival process for the send window. Open loop:
// Poisson arrivals whose mean inter-arrival time tracks the (possibly
// time-varying) configured rate. Closed loop: the initial in-flight
// window is opened and each resolved transaction triggers the next.
func (c *Client) start() {
	if c.gossip != nil {
		c.startGossip()
	}
	if c.nw.cfg.ClosedLoop {
		c.openWindow()
		return
	}
	mean := func() time.Duration {
		rate := c.nw.cfg.RateAt(time.Duration(c.nw.eng.Now()))
		return time.Duration(float64(time.Second) * float64(c.nw.cfg.Clients) / rate)
	}
	var arrive func()
	arrive = func() {
		if c.nw.eng.Now() >= sim.Time(c.nw.cfg.Duration) {
			return // send window over
		}
		c.submitJob(0)
		c.nw.eng.After(c.nw.eng.Exponential(mean()), arrive)
	}
	c.nw.eng.After(c.nw.eng.Exponential(mean()), arrive)
}
