package fabric

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestMultiChannelShardsTraffic runs a 4-channel deployment and
// checks the structural invariants of sharding: every channel's chain
// verifies independently, the per-channel commits add up to the
// collector's view, and the keyspace hash actually spreads load over
// more than one channel.
func TestMultiChannelShardsTraffic(t *testing.T) {
	cfg := testConfig(1)
	cfg.Channels = 4
	nw, rep := run(t, cfg)

	chains := nw.Chains()
	if len(chains) != 4 {
		t.Fatalf("chains = %d, want 4", len(chains))
	}
	committed, active := 0, 0
	for ch, chain := range chains {
		if err := chain.Verify(); err != nil {
			t.Errorf("channel %d chain verification: %v", ch, err)
		}
		n := 0
		for _, b := range chain.Blocks() {
			if b.Channel != ch {
				t.Errorf("channel %d chain holds a block stamped channel %d", ch, b.Channel)
			}
			n += len(b.Transactions)
		}
		committed += n
		if n > 0 {
			active++
		}
	}
	if committed != rep.Committed {
		t.Errorf("per-channel commits %d != collector committed %d", committed, rep.Committed)
	}
	if active < 2 {
		t.Errorf("only %d of 4 channels saw traffic: the keyspace hash is not spreading", active)
	}
	if len(nw.Orderers()) != 4 {
		t.Errorf("orderers = %d, want one service per channel", len(nw.Orderers()))
	}
}

// TestMultiChannelDeterminism pins the sharded deployment to the
// repo's core guarantee: the same seed reproduces the same run,
// cross-channel legs and cohort drivers included.
func TestMultiChannelDeterminism(t *testing.T) {
	mk := func() Config {
		cfg := retryConfig(6, ExponentialBackoff{
			Initial: 100 * time.Millisecond, Cap: time.Second, MaxAttempts: 3, Jitter: 0.2,
		})
		cfg.Channels = 3
		cfg.CrossChannel = 0.2
		cfg.CohortSize = 2
		return cfg
	}
	nwA, repA := run(t, mk())
	nwB, repB := run(t, mk())
	if a, b := fingerprint(nwA, repA), fingerprint(nwB, repB); a != b {
		t.Errorf("same seed diverged on a sharded run:\n a: %s\n b: %s", a, b)
	}
}

// TestCrossChannelLegsResolve checks the two-leg transaction pattern:
// with a large cross-channel fraction every job still resolves to
// exactly one outcome (both legs valid = success, any failed leg =
// one failed attempt), so the job accounting stays conserved.
func TestCrossChannelLegsResolve(t *testing.T) {
	cfg := retryConfig(8, ImmediateRetry{MaxAttempts: 3})
	cfg.Channels = 2
	cfg.CrossChannel = 0.5
	_, rep := run(t, cfg)

	if rep.Jobs == 0 {
		t.Fatal("no jobs resolved")
	}
	if rep.EventualValid+rep.GaveUp != rep.Jobs {
		t.Errorf("job conservation broken: eventual %d + gave-up %d != jobs %d",
			rep.EventualValid, rep.GaveUp, rep.Jobs)
	}
	// Two-leg transactions commit on two chains, so chain-side totals
	// exceed the logical attempt count — but the client-side job view
	// must stay one outcome per job.
	if rep.RetryAmplification < 1 {
		t.Errorf("amplification %.2f < 1", rep.RetryAmplification)
	}
}

// TestChannelRouting pins the routing function: deterministic per
// invocation, in range, constant for single-channel runs, and spread
// across channels for realistic workloads.
func TestChannelRouting(t *testing.T) {
	cfg := testConfig(2)
	cfg.Channels = 4
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	rng := nw.Engine().Rand()
	for i := 0; i < 200; i++ {
		inv := cfg.Workload.Next(rng)
		ch := nw.channelOf(inv)
		if ch < 0 || ch >= 4 {
			t.Fatalf("channelOf out of range: %d", ch)
		}
		if again := nw.channelOf(inv); again != ch {
			t.Fatalf("channelOf not deterministic: %d then %d", ch, again)
		}
		seen[ch] = true
	}
	if len(seen) < 2 {
		t.Errorf("200 draws landed on %d channel(s), want a spread", len(seen))
	}

	single := testConfig(2)
	nw1, err := NewNetwork(single)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if ch := nw1.channelOf(single.Workload.Next(nw1.Engine().Rand())); ch != 0 {
			t.Fatalf("single-channel run routed to channel %d", ch)
		}
	}
}

// TestCrossChannelGossipInteraction crosses the two decentralized
// subsystems: a 4-channel sharded deployment with 20% two-leg
// transactions, paced by the gossiped congestion signal
// (hinted-gossip). The gossip rounds must actually run, the hint path
// must engage, every chain must verify, and the combination must stay
// deterministic.
func TestCrossChannelGossipInteraction(t *testing.T) {
	mk := func() Config {
		cfg := retryConfig(11, BackpressurePolicy{MaxAttempts: 5, Jitter: 0.2})
		cfg.Channels = 4
		cfg.CrossChannel = 0.2
		cfg.Gossip = &Gossip{}
		cfg.HintSource = HintGossip
		return cfg
	}
	nwA, repA := run(t, mk())
	nwB, repB := run(t, mk())

	if repA.GossipMessages == 0 || repA.GossipMerges == 0 {
		t.Errorf("gossip idle on a sharded run: msgs=%d merges=%d",
			repA.GossipMessages, repA.GossipMerges)
	}
	if repA.Jobs == 0 || repA.EventualValid+repA.GaveUp != repA.Jobs {
		t.Errorf("job conservation broken across channels: eventual %d + gave-up %d != jobs %d",
			repA.EventualValid, repA.GaveUp, repA.Jobs)
	}
	active := 0
	for ch, chain := range nwA.Chains() {
		if err := chain.Verify(); err != nil {
			t.Errorf("channel %d chain verification: %v", ch, err)
		}
		if chain.TxCount() > 0 {
			active++
		}
	}
	if active < 2 {
		t.Errorf("only %d of 4 channels saw traffic under gossip pacing", active)
	}
	if a, b := fingerprint(nwA, repA), fingerprint(nwB, repB); a != b {
		t.Errorf("cross-channel gossip run diverged on the same seed:\n a: %s\n b: %s", a, b)
	}
}

// testVariant is a minimal non-vanilla Variant for validation tests.
type testVariant struct{ Vanilla }

func (testVariant) Name() string { return "test-variant" }

// TestValidateScaleKnobs table-tests Config.Validate over the scale
// knobs added with cohorts and sharding: channel count, cohort size
// and cross-channel fraction, including the unit-bearing messages and
// the single-channel-only restriction on stateful variants.
func TestValidateScaleKnobs(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring; "" = must validate
	}{
		{"defaults", func(c *Config) {}, ""},
		{"sharded cohorts", func(c *Config) {
			c.Channels = 16
			c.CrossChannel = 0.3
			c.CohortSize = 10
		}, ""},
		{"one channel explicit", func(c *Config) { c.Channels = 1 }, ""},
		{"negative channels", func(c *Config) { c.Channels = -1 },
			"channel count must be >= 0"},
		{"negative cohort size", func(c *Config) { c.CohortSize = -2 },
			"cohort size must be >= 0 clients per cohort"},
		{"cross-channel NaN", func(c *Config) {
			c.Channels = 2
			c.CrossChannel = math.NaN()
		}, "cross-channel fraction must be in [0,1)"},
		{"cross-channel negative", func(c *Config) {
			c.Channels = 2
			c.CrossChannel = -0.1
		}, "cross-channel fraction must be in [0,1)"},
		{"cross-channel at one", func(c *Config) {
			c.Channels = 2
			c.CrossChannel = 1
		}, "cross-channel fraction must be in [0,1)"},
		{"cross-channel without channels", func(c *Config) { c.CrossChannel = 0.5 },
			"needs >= 2 channels"},
		{"stateful variant sharded", func(c *Config) {
			c.Channels = 4
			c.Variant = testVariant{}
		}, "supports only the vanilla fabric-1.4 variant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(1)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected validation error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validation accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
