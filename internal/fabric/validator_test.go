package fabric

import (
	"testing"
	"time"

	"repro/internal/chaincodes/ehr"
	"repro/internal/ledger"
)

// harness builds a minimal network for direct validator tests.
func harness(t *testing.T) *Network {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Duration = time.Second
	cfg.Chaincode = ehr.New()
	cfg.Workload = ehr.NewWorkload(1)
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// endorse produces a consistent endorsement set for an rwset from the
// first peer of each org.
func endorse(nw *Network, rw *ledger.RWSet) []*ledger.Endorsement {
	digest := rw.Digest()
	var ends []*ledger.Endorsement
	for _, org := range nw.orgs {
		p := nw.peerOf(org, 0)
		ends = append(ends, &ledger.Endorsement{
			Org:       p.org,
			PeerID:    p.name,
			RWSet:     rw,
			Signature: p.identity.Sign(digest[:]),
		})
	}
	return ends
}

func mkTx(nw *Network, id string, rw *ledger.RWSet) *ledger.Transaction {
	return &ledger.Transaction{ID: id, RWSet: rw, Endorsements: endorse(nw, rw)}
}

func mkBlock(nw *Network, num uint64, txs ...*ledger.Transaction) *ledger.Block {
	b := &ledger.Block{Number: num, Transactions: txs}
	b.Hash = b.ComputeHash()
	return b
}

func TestVSCCAcceptsConsistentEndorsements(t *testing.T) {
	nw := harness(t)
	rw := &ledger.RWSet{
		Reads:  []ledger.KVRead{{Key: ehr.ProfileKey(1), Version: ledger.Height{BlockNum: 0, TxNum: 2}}},
		Writes: []ledger.KVWrite{{Key: ehr.ProfileKey(1), Value: []byte("x")}},
	}
	code := nw.vals[0].vscc(mkTx(nw, "t", rw))
	if code != ledger.Valid {
		t.Fatalf("vscc = %v, want VALID", code)
	}
}

func TestVSCCRejectsMismatchedRWSets(t *testing.T) {
	nw := harness(t)
	rwA := &ledger.RWSet{Reads: []ledger.KVRead{{Key: "k", Version: ledger.Height{BlockNum: 1}}}}
	rwB := &ledger.RWSet{Reads: []ledger.KVRead{{Key: "k", Version: ledger.Height{BlockNum: 2}}}}
	tx := mkTx(nw, "t", rwA)
	// Second endorser saw a different version of the key (Eq. 1).
	dB := rwB.Digest()
	tx.Endorsements[1].RWSet = rwB
	tx.Endorsements[1].Signature = nw.peerOf(nw.orgs[1], 0).identity.Sign(dB[:])
	if code := nw.vals[0].vscc(tx); code != ledger.EndorsementPolicyFailure {
		t.Fatalf("vscc = %v, want ENDORSEMENT_POLICY_FAILURE", code)
	}
}

func TestVSCCRejectsBadSignature(t *testing.T) {
	nw := harness(t)
	rw := &ledger.RWSet{}
	tx := mkTx(nw, "t", rw)
	tx.Endorsements[0].Signature = []byte("forged")
	if code := nw.vals[0].vscc(tx); code != ledger.EndorsementPolicyFailure {
		t.Fatalf("vscc = %v, want failure for forged signature", code)
	}
}

func TestVSCCRejectsUnsatisfiedPolicy(t *testing.T) {
	nw := harness(t)
	rw := &ledger.RWSet{}
	tx := mkTx(nw, "t", rw)
	tx.Endorsements = tx.Endorsements[:1] // P0 needs all orgs
	if code := nw.vals[0].vscc(tx); code != ledger.EndorsementPolicyFailure {
		t.Fatalf("vscc = %v, want failure for missing org", code)
	}
	tx.Endorsements = nil
	if code := nw.vals[0].vscc(tx); code != ledger.EndorsementPolicyFailure {
		t.Fatalf("vscc = %v, want failure for no endorsements", code)
	}
}

func TestMVCCInterBlockConflict(t *testing.T) {
	nw := harness(t)
	key := ehr.ProfileKey(0)
	genesisVersion := nw.vals[0].db.Get(key).Version

	// Block 1: writer updates the key.
	writer := mkTx(nw, "w", &ledger.RWSet{
		Reads:  []ledger.KVRead{{Key: key, Version: genesisVersion}},
		Writes: []ledger.KVWrite{{Key: key, Value: []byte("new")}},
	})
	res1 := nw.vals[0].result(mkBlock(nw, 1, writer))
	if res1.codes[0] != ledger.Valid {
		t.Fatalf("writer = %v", res1.codes[0])
	}

	// Block 2: a reader endorsed against genesis fails inter-block.
	reader := mkTx(nw, "r", &ledger.RWSet{
		Reads: []ledger.KVRead{{Key: key, Version: genesisVersion}},
	})
	res2 := nw.vals[0].result(mkBlock(nw, 2, reader))
	if res2.codes[0] != ledger.MVCCConflictInterBlock {
		t.Fatalf("reader = %v, want inter-block conflict", res2.codes[0])
	}
}

func TestMVCCIntraBlockClassification(t *testing.T) {
	nw := harness(t)
	key := ehr.ProfileKey(2)
	v0 := nw.vals[0].db.Get(key).Version

	// Same block: T0 writes the key; T1 endorsed against the old
	// version -> intra-block conflict (Eq. 3).
	t0 := mkTx(nw, "t0", &ledger.RWSet{
		Reads:  []ledger.KVRead{{Key: key, Version: v0}},
		Writes: []ledger.KVWrite{{Key: key, Value: []byte("a")}},
	})
	t1 := mkTx(nw, "t1", &ledger.RWSet{
		Reads:  []ledger.KVRead{{Key: key, Version: v0}},
		Writes: []ledger.KVWrite{{Key: key, Value: []byte("b")}},
	})
	res := nw.vals[0].result(mkBlock(nw, 1, t0, t1))
	if res.codes[0] != ledger.Valid {
		t.Fatalf("t0 = %v", res.codes[0])
	}
	if res.codes[1] != ledger.MVCCConflictIntraBlock {
		t.Fatalf("t1 = %v, want intra-block conflict", res.codes[1])
	}
	// Only t0's write lands in the batch.
	if res.batch.Len() != 1 {
		t.Fatalf("batch has %d writes, want 1", res.batch.Len())
	}
}

func TestIntraClassificationIncludesFailedWriters(t *testing.T) {
	nw := harness(t)
	key := ehr.ProfileKey(3)
	v0 := nw.vals[0].db.Get(key).Version

	// T0 itself fails (stale read of another key). T1 depends on T0's
	// write attempt of `key` — still intra per Eq. 3, dependency on a
	// same-block transaction.
	other := ehr.RecordKey(3)
	t0 := mkTx(nw, "t0", &ledger.RWSet{
		Reads:  []ledger.KVRead{{Key: other, Version: ledger.Height{BlockNum: 999}}}, // stale
		Writes: []ledger.KVWrite{{Key: key, Value: []byte("a")}},
	})
	t1 := mkTx(nw, "t1", &ledger.RWSet{
		Reads: []ledger.KVRead{{Key: key, Version: ledger.Height{BlockNum: 998}}}, // stale too
	})
	res := nw.vals[0].result(mkBlock(nw, 1, t0, t1))
	if res.codes[0] != ledger.MVCCConflictInterBlock {
		t.Fatalf("t0 = %v, want inter-block", res.codes[0])
	}
	if res.codes[1] != ledger.MVCCConflictIntraBlock {
		t.Fatalf("t1 = %v, want intra-block (dependency on attempted writer)", res.codes[1])
	}
	_ = v0
}

func TestPhantomOnInsertIntoRange(t *testing.T) {
	nw := harness(t)
	// Scan observed the genesis profiles; a new key inserted into the
	// interval must fail the re-execution (Eq. 5).
	scan := ledger.RangeQueryInfo{StartKey: "profile_", EndKey: "profile_~"}
	for _, kv := range nw.vals[0].db.GetRange("profile_", "profile_~") {
		scan.Reads = append(scan.Reads, ledger.KVRead{Key: kv.Key, Version: kv.Version})
	}
	inserter := mkTx(nw, "w", &ledger.RWSet{
		Writes: []ledger.KVWrite{{Key: "profile_zzz", Value: []byte("{}")}},
	})
	res1 := nw.vals[0].result(mkBlock(nw, 1, inserter))
	if res1.codes[0] != ledger.Valid {
		t.Fatalf("inserter = %v", res1.codes[0])
	}
	scanner := mkTx(nw, "s", &ledger.RWSet{RangeQueries: []ledger.RangeQueryInfo{scan}})
	res2 := nw.vals[0].result(mkBlock(nw, 2, scanner))
	if res2.codes[0] != ledger.PhantomReadConflict {
		t.Fatalf("scanner = %v, want phantom", res2.codes[0])
	}
}

func TestPhantomOnDeleteAndUpdate(t *testing.T) {
	nw := harness(t)
	scan := ledger.RangeQueryInfo{StartKey: "ehr_", EndKey: "ehr_~"}
	for _, kv := range nw.vals[0].db.GetRange("ehr_", "ehr_~") {
		scan.Reads = append(scan.Reads, ledger.KVRead{Key: kv.Key, Version: kv.Version})
	}
	// Update one key inside the range.
	upd := mkTx(nw, "u", &ledger.RWSet{
		Writes: []ledger.KVWrite{{Key: ehr.RecordKey(5), Value: []byte("v2")}},
	})
	if res := nw.vals[0].result(mkBlock(nw, 1, upd)); res.codes[0] != ledger.Valid {
		t.Fatal("update failed")
	}
	scanner := mkTx(nw, "s", &ledger.RWSet{RangeQueries: []ledger.RangeQueryInfo{scan}})
	if res := nw.vals[0].result(mkBlock(nw, 2, scanner)); res.codes[0] != ledger.PhantomReadConflict {
		t.Fatalf("scanner = %v, want phantom after in-range update", res.codes[0])
	}
}

func TestCleanRangeRescanIsValid(t *testing.T) {
	nw := harness(t)
	scan := ledger.RangeQueryInfo{StartKey: "profile_", EndKey: "profile_~"}
	for _, kv := range nw.vals[0].db.GetRange("profile_", "profile_~") {
		scan.Reads = append(scan.Reads, ledger.KVRead{Key: kv.Key, Version: kv.Version})
	}
	scanner := mkTx(nw, "s", &ledger.RWSet{RangeQueries: []ledger.RangeQueryInfo{scan}})
	if res := nw.vals[0].result(mkBlock(nw, 1, scanner)); res.codes[0] != ledger.Valid {
		t.Fatalf("unchanged range = %v, want VALID", res.codes[0])
	}
}

func TestUncheckedRangeNeverPhantoms(t *testing.T) {
	nw := harness(t)
	// Rich-query observation with deliberately wrong versions.
	rq := ledger.RangeQueryInfo{Unchecked: true,
		Reads: []ledger.KVRead{{Key: "profile_000", Version: ledger.Height{BlockNum: 77}}}}
	tx := mkTx(nw, "q", &ledger.RWSet{RangeQueries: []ledger.RangeQueryInfo{rq}})
	if res := nw.vals[0].result(mkBlock(nw, 1, tx)); res.codes[0] != ledger.Valid {
		t.Fatalf("unchecked range = %v, want VALID (no phantom detection)", res.codes[0])
	}
}

func TestValidatorRejectsOutOfOrderBlocks(t *testing.T) {
	nw := harness(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order validation did not panic")
		}
	}()
	nw.vals[0].result(mkBlock(nw, 5, mkTx(nw, "t", &ledger.RWSet{})))
}

func TestValidateCostGrowsWithSubPolicies(t *testing.T) {
	nw := harness(t)
	rw := &ledger.RWSet{Reads: []ledger.KVRead{{Key: "k"}}}
	tx := mkTx(nw, "t", rw)
	b := mkBlock(nw, 1, tx)
	res := nw.vals[0].result(b)
	if res.validateCost <= 0 {
		t.Fatal("zero validation cost")
	}
}
