package fabric

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/ledger"
)

func TestNoRetryPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, ok := (NoRetry{}).NextDelay(1, rng); ok {
		t.Fatal("NoRetry retried")
	}
	if (NoRetry{}).Name() != "none" {
		t.Errorf("name = %q", NoRetry{}.Name())
	}
}

func TestImmediateRetryCapsAttempts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := ImmediateRetry{MaxAttempts: 3}
	for attempts := 1; attempts <= 2; attempts++ {
		d, ok := p.NextDelay(attempts, rng)
		if !ok || d != 0 {
			t.Errorf("attempt %d: delay=%v ok=%v, want 0,true", attempts, d, ok)
		}
	}
	if _, ok := p.NextDelay(3, rng); ok {
		t.Error("4th submission allowed past MaxAttempts=3")
	}
	// Unlimited variant never gives up.
	if _, ok := (ImmediateRetry{}).NextDelay(1000, rng); !ok {
		t.Error("unlimited immediate retry gave up")
	}
}

func TestExponentialBackoffSchedule(t *testing.T) {
	p := ExponentialBackoff{Initial: 100 * time.Millisecond, Cap: 500 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	want := []time.Duration{
		100 * time.Millisecond, // after 1 failure
		200 * time.Millisecond,
		400 * time.Millisecond,
		500 * time.Millisecond, // capped
		500 * time.Millisecond,
	}
	for i, w := range want {
		d, ok := p.NextDelay(i+1, rng)
		if !ok || d != w {
			t.Errorf("failures=%d: delay=%v ok=%v, want %v", i+1, d, ok, w)
		}
	}
	if _, ok := (ExponentialBackoff{MaxAttempts: 2}).NextDelay(2, rng); ok {
		t.Error("backoff retried past MaxAttempts")
	}
}

func TestExponentialBackoffJitterDeterministic(t *testing.T) {
	p := ExponentialBackoff{Initial: time.Second, Jitter: 0.5}
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 1; i <= 10; i++ {
		da, _ := p.NextDelay(i, a)
		db, _ := p.NextDelay(i, b)
		if da != db {
			t.Fatalf("failures=%d: %v != %v for identical rng seeds", i, da, db)
		}
		base, _ := p.NextDelay(i, rand.New(rand.NewSource(int64(i))))
		if base < 0 {
			t.Fatalf("negative delay %v", base)
		}
	}
	// Jitter must actually vary the delay.
	d1, _ := p.NextDelay(1, rand.New(rand.NewSource(1)))
	d2, _ := p.NextDelay(1, rand.New(rand.NewSource(2)))
	if d1 == d2 {
		t.Error("jittered delays identical across different rng streams")
	}
}

func TestGiveUpAfterTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := GiveUpAfter(ImmediateRetry{}, 2)
	if _, ok := p.NextDelay(1, rng); !ok {
		t.Error("first retry refused")
	}
	if _, ok := p.NextDelay(2, rng); ok {
		t.Error("retry allowed past the give-up budget")
	}
	if p.Name() != "immediate-cap2" {
		t.Errorf("name = %q", p.Name())
	}
}

// retryConfig is testConfig with a retry policy.
func retryConfig(seed int64, p RetryPolicy) Config {
	cfg := testConfig(seed)
	cfg.Retry = p
	return cfg
}

func TestRetryAmplifiesSubmissions(t *testing.T) {
	_, rep := run(t, retryConfig(1, ImmediateRetry{MaxAttempts: 3}))
	if rep.Jobs == 0 {
		t.Fatal("no jobs tracked with a retry policy configured")
	}
	if rep.Attempts <= rep.Jobs {
		t.Errorf("attempts %d <= jobs %d: EHR contention must trigger retries", rep.Attempts, rep.Jobs)
	}
	if rep.RetryAmplification <= 1 {
		t.Errorf("amplification %.2f, want > 1", rep.RetryAmplification)
	}
	if rep.EventualValid+rep.GaveUp != rep.Jobs {
		t.Errorf("eventual-valid %d + gave-up %d != jobs %d", rep.EventualValid, rep.GaveUp, rep.Jobs)
	}
	if rep.EventualValid < rep.FirstAttemptValid {
		t.Errorf("eventual valid %d < first-attempt valid %d", rep.EventualValid, rep.FirstAttemptValid)
	}
	// Retries recover transactions fire-and-forget would lose: the
	// eventual success count must beat the first-attempt one.
	if rep.EventualValid == rep.FirstAttemptValid {
		t.Error("no transaction ever succeeded on a resubmission")
	}
	if rep.Goodput >= rep.Throughput {
		t.Errorf("goodput %.1f >= throughput %.1f despite duplicate submissions", rep.Goodput, rep.Throughput)
	}
	// Per-attempt breakdown covers every attempt number up to the cap.
	for attempt := 1; attempt <= 3; attempt++ {
		if len(rep.AttemptBreakdown[attempt]) == 0 {
			t.Errorf("no outcomes recorded for attempt %d", attempt)
		}
	}
	if len(rep.AttemptBreakdown) > 3 {
		t.Errorf("attempts beyond MaxAttempts recorded: %v", rep.AttemptBreakdown)
	}
}

func TestNoRetryReportMatchesChainView(t *testing.T) {
	_, rep := run(t, testConfig(3))
	if rep.Jobs != rep.Total || rep.Attempts != rep.Total {
		t.Errorf("fire-and-forget jobs=%d attempts=%d, want both == total %d", rep.Jobs, rep.Attempts, rep.Total)
	}
	if rep.RetryAmplification != 1 {
		t.Errorf("amplification %.2f, want exactly 1", rep.RetryAmplification)
	}
	if rep.EventualValid != rep.Valid || rep.FirstAttemptValid != rep.Valid {
		t.Errorf("eventual=%d first=%d, want both == valid %d", rep.EventualValid, rep.FirstAttemptValid, rep.Valid)
	}
	if rep.AvgEndToEnd != rep.AvgLatency {
		t.Errorf("end-to-end %v != chain latency %v without retries", rep.AvgEndToEnd, rep.AvgLatency)
	}
	if len(rep.AttemptBreakdown) != 0 {
		t.Errorf("attempt breakdown %v without tracking", rep.AttemptBreakdown)
	}
}

func TestClosedLoopKeepsWindow(t *testing.T) {
	cfg := testConfig(4)
	cfg.ClosedLoop = true
	cfg.InFlightPerClient = 2
	nw, rep := run(t, cfg)
	if rep.Jobs == 0 {
		t.Fatal("closed loop resolved no jobs")
	}
	// 5 clients × 2 in flight: at any instant at most 10 attempts are
	// outstanding, including at the end of the run.
	pending := 0
	for _, c := range nw.Clients() {
		pending += c.Pending()
	}
	if max := cfg.Clients * cfg.InFlightPerClient; pending > max {
		t.Errorf("%d attempts pending, window allows %d", pending, max)
	}
	// The closed loop is latency-bound: it must finish far fewer
	// transactions than the open-loop 50 tps arrival process would
	// submit in the same window.
	if rep.Total > 500 {
		t.Errorf("closed loop committed %d txs, suspiciously open-loop-like", rep.Total)
	}
}

func TestClosedLoopStopsAtWindowEnd(t *testing.T) {
	cfg := testConfig(5)
	cfg.ClosedLoop = true
	cfg.Retry = ImmediateRetry{MaxAttempts: 2}
	nw, _ := run(t, cfg)
	resub := 0
	for _, c := range nw.Clients() {
		resub += c.Resubmissions()
	}
	if resub == 0 {
		t.Error("closed loop with retries never resubmitted")
	}
	// After Duration+Drain no client may start fresh jobs; the run
	// terminating at all (RunUntil returned) is the real assertion,
	// but also check the engine drained to the deadline.
	if got, want := nw.Engine().Now(), cfg.Duration+cfg.Drain; time.Duration(got) < want {
		t.Errorf("engine stopped at %v, want %v", got, want)
	}
}

func TestRetryRunsDeterministic(t *testing.T) {
	p := ExponentialBackoff{Initial: 100 * time.Millisecond, MaxAttempts: 4, Jitter: 0.3}
	_, a := run(t, retryConfig(6, p))
	_, b := run(t, retryConfig(6, p))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical (config, seed) with retries diverged:\n%+v\n%+v", a, b)
	}
}

func TestServedReadsResolveJobs(t *testing.T) {
	cfg := retryConfig(7, ImmediateRetry{MaxAttempts: 2})
	cfg.SkipReadOnlySubmission = true
	_, rep := run(t, cfg)
	if rep.ServedReads == 0 {
		t.Fatal("EHR workload produced no served reads")
	}
	// Served reads resolve their job as successful without a chain
	// transaction, so eventual-valid must exceed chain valid.
	if rep.EventualValid <= rep.Valid {
		t.Errorf("eventual valid %d <= chain valid %d with served reads", rep.EventualValid, rep.Valid)
	}
}

func TestAbortedAttemptsNotifyClients(t *testing.T) {
	// A variant that rejects every 5th submission exercises the
	// ordering-phase abort path of the event plumbing.
	cfg := retryConfig(8, ImmediateRetry{MaxAttempts: 3})
	cfg.Variant = &rejectEveryN{n: 5}
	_, rep := run(t, cfg)
	if rep.Counts[ledger.AbortedInOrdering] == 0 {
		t.Fatal("variant aborted nothing")
	}
	breakdownAborts := 0
	for _, byCode := range rep.AttemptBreakdown {
		breakdownAborts += byCode[ledger.AbortedInOrdering]
	}
	if breakdownAborts == 0 {
		t.Error("ordering aborts never reached the per-attempt breakdown: clients were not notified")
	}
}

// rejectEveryN aborts every n'th submission in the ordering phase.
type rejectEveryN struct {
	Vanilla
	n    int
	seen int
}

func (r *rejectEveryN) Name() string { return "reject-every-n" }

func (r *rejectEveryN) OnSubmit(*ledger.Transaction) (bool, time.Duration) {
	r.seen++
	return r.seen%r.n != 0, 0
}

func TestServedReadsCountedConsistentlyAcrossModes(t *testing.T) {
	// With SkipReadOnlySubmission on, the fire-and-forget fallback and
	// the tracked path must agree on what a "job" is: switching the
	// policy from none to a retrying one must not inflate the success
	// counts when no retry ever fires on the served reads themselves.
	base := testConfig(9)
	base.SkipReadOnlySubmission = true
	_, plain := run(t, base)

	tracked := retryConfig(9, ImmediateRetry{MaxAttempts: 1})
	tracked.SkipReadOnlySubmission = true
	_, withTracking := run(t, tracked)

	// MaxAttempts 1 means the tracked run never resubmits, so both
	// runs execute the identical event sequence apart from event
	// delivery; the job accounting must match exactly.
	if plain.ServedReads == 0 {
		t.Fatal("no served reads; test needs a read-bearing workload")
	}
	if plain.Jobs != plain.Total+plain.ServedReads {
		t.Errorf("fallback jobs=%d, want total %d + served %d",
			plain.Jobs, plain.Total, plain.ServedReads)
	}
	if withTracking.EventualValid != withTracking.Valid+withTracking.ServedReads {
		t.Errorf("tracked eventual=%d, want valid %d + served %d",
			withTracking.EventualValid, withTracking.Valid, withTracking.ServedReads)
	}
}
