package fabric

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/ledger"
	"repro/internal/sim"
)

// OrderingService is the ordering phase (§2 steps 4–5): transactions
// arrive from clients, pass through the variant's early-abort hook,
// reach total order via the consenter, and are cut into blocks by
// count, byte size or timeout. Cut blocks are validated (once,
// deterministically) and streamed to every peer over FIFO links.
//
// The service is a serial server: variant reordering cost (Fabric++'s
// conflict graphs) and per-peer delivery cost occupy it, so expensive
// ordering work queues subsequent blocks — the mechanism behind
// Fabric++'s latency explosion on large range queries (§5.2.3) and
// Streamchain's collapse at high rates (§5.3.1).
type OrderingService struct {
	nw   *Network
	cons consensus.Consenter
	// channel is the channel this service orders for; blocks it cuts
	// carry the id and extend that channel's hash chain.
	channel int

	pending      []*ledger.Transaction
	pendingBytes int
	timerArmed   bool
	timerEpoch   uint64

	busyUntil sim.Time

	blockNum uint64
	prevHash [32]byte

	// blockSize is the live batch-size target. It starts at
	// cfg.BlockSize and can be retuned mid-run by an adaptive
	// controller (the §6.2 research direction).
	blockSize int

	// orderedCount counts transactions that reached total order, for
	// arrival-rate estimation.
	orderedCount uint64

	// Backpressure hint state (Config.Backpressure; inert otherwise):
	// the smoothed congestion hint published with each cut block, plus
	// the previous cut's time and ordered-count for the inter-cut
	// arrival-rate estimate.
	hint        float64
	lastCutAt   sim.Time
	lastOrdered uint64

	// names of the orderer nodes, for network addressing.
	nodeNames []string

	// state is the lifecycle state (see lifecycle.go; always NodeUp
	// without Config.Faults). A crash drops the volatile pending batch
	// and everything in flight; blockNum and prevHash survive — the
	// cut chain is durable — so the restarted service extends the same
	// hash chain and the peers' Append continuity is never violated.
	state NodeState
}

func newOrderingService(nw *Network, cons consensus.Consenter, channel int) *OrderingService {
	os := &OrderingService{nw: nw, cons: cons, channel: channel, blockSize: nw.cfg.BlockSize}
	for i := 0; i < nw.cfg.Orderers; i++ {
		// Channel 0 keeps the historical names; higher channels get
		// their own orderer nodes, prefixed with the channel id.
		if channel == 0 {
			os.nodeNames = append(os.nodeNames, fmt.Sprintf("orderer%d", i))
		} else {
			os.nodeNames = append(os.nodeNames, fmt.Sprintf("ch%d-orderer%d", channel, i))
		}
	}
	gb := nw.chains[channel].Block(0)
	os.prevHash = gb.Hash
	cons.OnCommit(func(payload interface{}) { os.ordered(payload.(*ledger.Transaction)) })
	return os
}

// NodeName returns the i'th orderer's network name.
func (os *OrderingService) NodeName(i int) string {
	return os.nodeNames[i%len(os.nodeNames)]
}

// Consenter exposes the consensus substrate (failure injection).
func (os *OrderingService) Consenter() consensus.Consenter { return os.cons }

// Submit receives a transaction envelope from a client (already on
// the orderer node — the client paid the network hop).
func (os *OrderingService) Submit(tx *ledger.Transaction) {
	if os.state == NodeCrashed {
		// The service is down; the envelope is silently lost (the
		// netem layer already drops client traffic to the node — this
		// guards direct calls). The client's submission deadline is
		// the recovery path.
		return
	}
	accept, cost := os.nw.variant.OnSubmit(tx)
	if cost > 0 {
		os.occupy(cost)
	}
	if !accept {
		// Early abort in the ordering phase: the client is notified;
		// the transaction never reaches the chain. The notification
		// carries the current congestion hint — the orderer is talking
		// to the client anyway.
		os.nw.col.RecordAbort(tx.SubmitTime, os.nw.eng.Now())
		os.nw.deliverOutcome(os.NodeName(0), tx, ledger.AbortedInOrdering, os.hint, os.channel)
		return
	}
	os.cons.Submit(tx)
}

// BlockSize returns the live batch-size target.
func (os *OrderingService) BlockSize() int { return os.blockSize }

// SetBlockSize retunes the batch-size target; an undersized pending
// batch is cut immediately when it already exceeds the new target.
func (os *OrderingService) SetBlockSize(n int) {
	if n < 1 {
		n = 1
	}
	os.blockSize = n
	if len(os.pending) >= os.blockSize {
		os.cut("retune")
	}
}

// OrderedCount reports how many transactions have reached total order.
func (os *OrderingService) OrderedCount() uint64 { return os.orderedCount }

// ordered consumes the total-order stream and feeds the block cutter.
func (os *OrderingService) ordered(tx *ledger.Transaction) {
	if os.state == NodeCrashed {
		// Consensus keeps running (the substrate is a separate node
		// set), but deliveries to a crashed service are lost with its
		// in-flight state; affected clients recover via the submission
		// deadline.
		return
	}
	os.occupy(os.nw.cfg.OrdererCosts.PerTx)
	os.orderedCount++
	os.pending = append(os.pending, tx)
	os.pendingBytes += txBytes(tx)
	switch {
	case len(os.pending) >= os.blockSize:
		os.cut("size")
	case os.nw.cfg.MaxBlockKB > 0 && os.pendingBytes >= os.nw.cfg.MaxBlockKB*1024:
		os.cut("bytes")
	case !os.timerArmed:
		os.timerArmed = true
		epoch := os.timerEpoch
		os.nw.eng.After(os.nw.cfg.BlockTimeout, func() {
			if os.timerEpoch != epoch {
				// A cut (size, bytes or retune) consumed the batch this
				// timer was armed for; that cut already disarmed the
				// service, and any transactions ordered since have
				// re-armed a fresh timer under the new epoch.
				return
			}
			// This timer is spent either way: disarm before cutting so
			// that even a drained pending queue can never strand the
			// service armed-but-idle (a state where no future arrival
			// would start a timeout clock).
			os.timerArmed = false
			if len(os.pending) > 0 {
				os.cut("timeout")
			}
		})
	}
}

// txBytes approximates the envelope's wire size for the max-bytes cut
// condition.
func txBytes(tx *ledger.Transaction) int {
	n := 256 // headers, signatures, ids
	if tx.RWSet != nil {
		n += 48 * len(tx.RWSet.Reads)
		for _, w := range tx.RWSet.Writes {
			n += len(w.Key) + len(w.Value) + 16
		}
		for _, rq := range tx.RWSet.RangeQueries {
			n += 48 * len(rq.Reads)
		}
	}
	n += 96 * len(tx.Endorsements)
	return n
}

// cut assembles the pending batch into a block, runs the variant's
// reordering hook, validates the block, and schedules delivery. With
// backpressure enabled it first refreshes the congestion hint, so the
// hint published with this block (and with this batch's early aborts)
// reflects the orderer's load at cut time.
func (os *OrderingService) cut(reason string) {
	_ = reason
	batch := os.pending
	os.pending = nil
	os.pendingBytes = 0
	os.timerArmed = false
	os.timerEpoch++
	if os.nw.ordererHints() {
		os.updateHint()
	}

	kept, aborted, cost := os.nw.variant.OnCut(batch)
	now := os.nw.eng.Now()
	for _, tx := range aborted {
		os.nw.col.RecordAbort(tx.SubmitTime, now)
		os.nw.deliverOutcome(os.NodeName(0), tx, ledger.AbortedInOrdering, os.hint, os.channel)
	}
	if len(kept) == 0 {
		if cost > 0 {
			os.occupy(cost)
		}
		return
	}

	os.blockNum++
	b := &ledger.Block{
		Number:         os.blockNum,
		PrevHash:       os.prevHash,
		Transactions:   kept,
		Channel:        os.channel,
		CutTime:        now,
		CongestionHint: os.hint,
	}
	b.Hash = b.ComputeHash()
	os.prevHash = b.Hash

	// Validation outcome is deterministic; compute it once, in cut
	// order, so peers can replay it regardless of delivery timing.
	os.nw.vals[os.channel].result(b)

	service := os.nw.cfg.OrdererCosts.BlockCut + cost +
		time.Duration(len(os.nw.peers))*os.nw.cfg.OrdererCosts.PerDeliver
	ready := os.occupy(service)

	// Stream the block to every peer at the (serialized) ready time.
	// Each peer is statically subscribed to one orderer node and the
	// link is FIFO, so blocks arrive at every peer in cut order.
	os.nw.eng.At(ready, func() {
		for i, p := range os.nw.peers {
			p := p
			src := os.NodeName(i)
			os.nw.net.SendOrdered(src, p.name, func() { p.DeliverBlock(b) })
		}
	})
}

// CongestionHint reports the current smoothed backpressure hint
// (diagnostics and tests; zero without Config.Backpressure).
func (os *OrderingService) CongestionHint() float64 { return os.hint }

// updateHint refreshes the smoothed congestion hint at a block cut.
// The raw sample combines the two load signals a real ordering
// service can observe about itself:
//
//   - backlog: how far the serial server's committed work (busyUntil)
//     extends past the current time, in units of the block timeout —
//     the mechanism behind the latency explosions of §5.2.3/§5.3.1;
//   - pressure: the ordered-transaction arrival rate over the
//     inter-cut window versus the estimated steady-state service rate
//     at the current block size; only the excess above 1.0 counts.
//
// The sum is clamped to [0,1] and folded into an EWMA so one bursty
// cut cannot whipsaw every client's pacing. Pure arithmetic on
// simulation state: no rng draws, no extra events, deterministic at
// any experiment parallelism.
func (os *OrderingService) updateHint() {
	now := os.nw.eng.Now()
	raw := 0.0
	if os.busyUntil > now {
		raw = float64(os.busyUntil-now) / float64(os.nw.cfg.BlockTimeout)
	}
	if dt := now - os.lastCutAt; dt > 0 {
		arrivalRate := float64(os.orderedCount-os.lastOrdered) / time.Duration(dt).Seconds()
		if svc := os.serviceRate(); svc > 0 && arrivalRate > svc {
			raw += arrivalRate/svc - 1
		}
	}
	if raw > 1 {
		raw = 1
	}
	os.hint = os.nw.bp.Smoothing*raw + (1-os.nw.bp.Smoothing)*os.hint
	os.lastCutAt = now
	os.lastOrdered = os.orderedCount
	os.nw.col.RecordHintSample(os.hint)
}

// serviceRate estimates the steady-state transactions/second the
// serial ordering service can drain at the current block size: the
// per-transaction ordering cost plus the fixed per-block cost
// (cut + per-peer delivery fan-out) amortized over a full block.
func (os *OrderingService) serviceRate() float64 {
	fixed := os.nw.cfg.OrdererCosts.BlockCut +
		time.Duration(len(os.nw.peers))*os.nw.cfg.OrdererCosts.PerDeliver
	perTx := os.nw.cfg.OrdererCosts.PerTx + fixed/time.Duration(os.blockSize)
	if perTx <= 0 {
		return 0
	}
	return float64(time.Second) / float64(perTx)
}

// NodeID implements lifecycleNode: the service's first orderer node
// name.
func (os *OrderingService) NodeID() string { return os.nodeNames[0] }

// State reports the service's lifecycle state.
func (os *OrderingService) State() NodeState { return os.state }

// crash implements lifecycleNode: the ordering service dies. The
// volatile pending batch is lost and the armed cut timer dies with
// the process (epoch bump); transactions in the consensus pipeline
// are dropped on delivery. blockNum and prevHash are retained — the
// cut chain is durable state.
func (os *OrderingService) crash() {
	os.state = NodeCrashed
	os.pending = nil
	os.pendingBytes = 0
	os.timerArmed = false
	os.timerEpoch++
}

// restart implements lifecycleNode: the service resumes with an empty
// batch, idle (pre-crash serial work is gone), extending the durable
// chain at the retained block number.
func (os *OrderingService) restart() {
	os.state = NodeUp
	if now := os.nw.eng.Now(); os.busyUntil > now {
		os.busyUntil = now
	}
}

// occupy charges d of serial ordering-service time and returns the
// completion time.
func (os *OrderingService) occupy(d time.Duration) sim.Time {
	start := os.busyUntil
	if now := os.nw.eng.Now(); now > start {
		start = now
	}
	end := start + sim.Time(d)
	os.busyUntil = end
	return end
}
