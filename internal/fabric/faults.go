package fabric

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/costmodel"
	"repro/internal/netem"
	"repro/internal/sim"
)

// Faults is the deterministic fault-injection schedule
// (Config.Faults): the adverse regimes of the ChackoMJ21 failure
// taxonomy — node crashes, partitions, message loss, stragglers, a
// slow state database — expressed as timed windows on the virtual
// clock plus client-side deadlines. Every window is virtual-time
// driven, never wall-clock, so a faulted run is byte-identical at any
// experiment parallelism.
//
// A schedule is either a named Scenario — expanded into concrete
// events at network construction from the run's seed and duration —
// or an explicit Events list; the two are mutually exclusive. Nil
// (the default) disables the subsystem completely: no events are
// scheduled, no rng is drawn, and runs are byte-identical to a build
// without it, so every pre-fault golden is unchanged.
type Faults struct {
	// Scenario names a predefined fault script (see FaultScenarios):
	// "crash", "partition", "flaky", "straggler", "slowdb" or "chaos".
	// It expands into Events at NewNetwork time, with window positions
	// fixed as fractions of Config.Duration and targets drawn from a
	// seed-derived rng separate from the simulation stream. Empty means
	// Events are given explicitly.
	Scenario string

	// Events is the explicit fault schedule. Mutually exclusive with
	// Scenario.
	Events []FaultEvent

	// EndorseTimeout is the client-side deadline on collecting a
	// policy-satisfying endorsement set: when it expires before every
	// endorser answered, the attempt fails as CLIENT_TIMEOUT and feeds
	// the retry path. 0 disables the deadline. Crash/partition
	// scenarios default it to 1s. Requires outcome tracking (a retry
	// policy or closed-loop mode), like every other client reaction.
	EndorseTimeout time.Duration

	// SubmitTimeout is the client-side deadline between envelope
	// submission and the commit (or abort) event: when it expires
	// first, the attempt fails as CLIENT_TIMEOUT and is retried —
	// a transaction that later commits anyway is counted orphaned.
	// 0 disables the deadline. Crash/partition scenarios default it
	// to 4s.
	SubmitTimeout time.Duration
}

// FaultKind names one fault primitive.
type FaultKind string

const (
	// FaultCrashPeer crashes one peer: its in-flight endorsements and
	// queued commits are dropped, unreliable messages from and to it
	// are black-holed, and on restart it replays the block suffix it
	// missed from the (durable) ledger stream.
	FaultCrashPeer FaultKind = "crash-peer"
	// FaultCrashOrderer crashes one channel's ordering service: the
	// pending batch and everything in flight is lost (clients recover
	// via SubmitTimeout); the cut chain itself is durable, so the
	// restarted service continues at the same block number and prev
	// hash.
	FaultCrashOrderer FaultKind = "crash-orderer"
	// FaultPartition cuts one organization's peers off from the rest
	// of the cluster for the window.
	FaultPartition FaultKind = "partition"
	// FaultStraggler injects an extra delay distribution (Extra) on
	// one peer's links for the window — the Pumba emulation of §5.1.7
	// as a transient regime.
	FaultStraggler FaultKind = "straggler"
	// FaultLoss drops each unreliable message touching one peer with
	// probability Factor for the window.
	FaultLoss FaultKind = "loss"
	// FaultSlowDB multiplies every state-database operation cost by
	// Factor for the window — a compacting/overloaded CouchDB.
	FaultSlowDB FaultKind = "slowdb"
)

// FaultEvent is one timed fault window: Kind applied at At for For,
// then reverted. Targets index into the network's topology (peer
// index, channel index for the orderer, org index for partitions) and
// wrap modulo the respective count, so schedules stay valid across
// cluster sizes.
type FaultEvent struct {
	Kind FaultKind
	At   time.Duration // window start, virtual time
	For  time.Duration // window length

	// Target selects the victim: peer index (crash-peer, straggler,
	// loss), channel index (crash-orderer), or org index (partition).
	// Ignored by slowdb.
	Target int

	// Factor parameterizes loss (drop probability in (0,1]) and slowdb
	// (cost multiplier >= 1).
	Factor float64

	// Extra is the straggler's injected delay distribution.
	Extra netem.Link
}

// FaultScenarios lists the predefined scenario names in display order.
func FaultScenarios() []string {
	return []string{"crash", "partition", "flaky", "straggler", "slowdb", "chaos"}
}

func knownScenario(s string) bool {
	for _, name := range FaultScenarios() {
		if s == name {
			return true
		}
	}
	return false
}

// Validate reports configuration errors with the offending values and
// their units.
func (f *Faults) Validate() error {
	if f.Scenario != "" && !knownScenario(f.Scenario) {
		return fmt.Errorf("fabric: unknown fault scenario %q, want one of %s",
			f.Scenario, strings.Join(FaultScenarios(), ", "))
	}
	if f.Scenario != "" && len(f.Events) > 0 {
		return fmt.Errorf("fabric: fault scenario %q and %d explicit events are mutually exclusive",
			f.Scenario, len(f.Events))
	}
	if f.EndorseTimeout < 0 {
		return fmt.Errorf("fabric: endorsement timeout must be >= 0, got %v", f.EndorseTimeout)
	}
	if f.SubmitTimeout < 0 {
		return fmt.Errorf("fabric: submission timeout must be >= 0, got %v", f.SubmitTimeout)
	}
	for i, ev := range f.Events {
		if err := ev.validate(); err != nil {
			return fmt.Errorf("fabric: fault event %d: %w", i, err)
		}
	}
	return nil
}

func (ev FaultEvent) validate() error {
	switch ev.Kind {
	case FaultCrashPeer, FaultCrashOrderer, FaultPartition, FaultStraggler, FaultLoss, FaultSlowDB:
	default:
		return fmt.Errorf("unknown fault kind %q", string(ev.Kind))
	}
	switch {
	case ev.At < 0:
		return fmt.Errorf("window start must be >= 0, got %v", ev.At)
	case ev.For <= 0:
		return fmt.Errorf("window length must be positive, got %v", ev.For)
	case ev.Target < 0:
		return fmt.Errorf("target index must be >= 0, got %d", ev.Target)
	}
	switch ev.Kind {
	case FaultLoss:
		if ev.Factor <= 0 || ev.Factor > 1 {
			return fmt.Errorf("loss probability must be in (0,1], got %g", ev.Factor)
		}
	case FaultSlowDB:
		if ev.Factor < 1 {
			return fmt.Errorf("slowdb cost multiplier must be >= 1, got %g", ev.Factor)
		}
	case FaultStraggler:
		if ev.Extra.Base <= 0 {
			return fmt.Errorf("straggler extra delay must be positive, got %v", ev.Extra.Base)
		}
		if ev.Extra.Jitter < 0 || ev.Extra.Jitter > ev.Extra.Base {
			return fmt.Errorf("straggler jitter must be in [0, base %v], got %v", ev.Extra.Base, ev.Extra.Jitter)
		}
	}
	return nil
}

// Name labels the schedule in experiment tables and run summaries:
// the scenario name, or "faults(<n>ev)" for an explicit list.
func (f *Faults) Name() string {
	if f.Scenario != "" {
		return f.Scenario
	}
	return fmt.Sprintf("faults(%dev)", len(f.Events))
}

// faultSeedSalt decorrelates the fault-target rng from the engine
// stream and from the other seed-derived streams (channel replicas,
// validators).
const faultSeedSalt = 0x5fa017

// resolve expands a scenario into concrete events for a deployment of
// the given size. Window positions are fixed fractions of the run
// duration; victims are drawn from a seed-derived rng that is separate
// from the engine stream, so the fault schedule never perturbs the
// workload's randomness. Explicit Events pass through unchanged.
// Crash and partition scenarios default the client deadlines
// (EndorseTimeout 1s, SubmitTimeout 4s) when unset, since without them
// clients would hang on work the fault destroyed.
func (f Faults) resolve(seed int64, dur time.Duration, peers, orgs, channels int) Faults {
	if f.Scenario == "" {
		return f
	}
	rng := rand.New(rand.NewSource(seed*31 + faultSeedSalt))
	frac := func(x float64) time.Duration { return time.Duration(x * float64(dur)) }
	peer := func() int { return rng.Intn(peers) }
	// Partition victims avoid org 0, whose first peer is the metrics
	// peer and event hub: cutting it off would measure event-plumbing
	// loss, not partition behaviour.
	org := func() int {
		if orgs < 2 {
			return 0
		}
		return 1 + rng.Intn(orgs-1)
	}
	deadlines := false
	switch f.Scenario {
	case "crash":
		f.Events = []FaultEvent{
			{Kind: FaultCrashOrderer, At: frac(0.25), For: frac(0.15), Target: rng.Intn(channels)},
			{Kind: FaultCrashPeer, At: frac(0.55), For: frac(0.15), Target: peer()},
		}
		deadlines = true
	case "partition":
		f.Events = []FaultEvent{
			{Kind: FaultPartition, At: frac(0.3), For: frac(0.25), Target: org()},
		}
		deadlines = true
	case "flaky":
		f.Events = []FaultEvent{
			{Kind: FaultLoss, At: frac(0.2), For: frac(0.6), Target: peer(), Factor: 0.1},
		}
		deadlines = true
	case "straggler":
		f.Events = []FaultEvent{
			{Kind: FaultStraggler, At: frac(0.25), For: frac(0.5), Target: peer(),
				Extra: netem.Link{Base: 100 * time.Millisecond, Jitter: 10 * time.Millisecond}},
		}
	case "slowdb":
		f.Events = []FaultEvent{
			{Kind: FaultSlowDB, At: frac(0.3), For: frac(0.4), Factor: 4},
		}
	case "chaos":
		f.Events = []FaultEvent{
			{Kind: FaultCrashOrderer, At: frac(0.2), For: frac(0.1), Target: rng.Intn(channels)},
			{Kind: FaultPartition, At: frac(0.4), For: frac(0.15), Target: org()},
			{Kind: FaultCrashPeer, At: frac(0.6), For: frac(0.1), Target: peer()},
			{Kind: FaultLoss, At: frac(0.75), For: frac(0.15), Target: peer(), Factor: 0.1},
		}
		deadlines = true
	}
	f.Scenario = ""
	if deadlines {
		if f.EndorseTimeout == 0 {
			f.EndorseTimeout = time.Second
		}
		if f.SubmitTimeout == 0 {
			f.SubmitTimeout = 4 * time.Second
		}
	}
	return f
}

// ParseFaults parses the CLI `-faults` spec. "off" (or "") disables
// fault injection. A bare scenario name ("crash", "chaos", ...)
// selects that predefined script. Otherwise the spec is a
// comma-separated clause list:
//
//	kind[:target]@start+dur[:param]   one fault window
//	etimeout=DUR                      client endorsement deadline
//	stimeout=DUR                      client submission deadline
//
// where kind is crash-peer, crash-orderer, partition, straggler, loss
// or slowdb; target is the victim index (peer, channel or org,
// defaulting to 0); start and dur are Go durations on the virtual
// clock; and param is kind-specific — straggler "base[~jitter]"
// (default 100ms~10ms), loss drop probability (default 0.1), slowdb
// cost multiplier (default 4). Example:
//
//	crash-peer:1@5s+10s,partition:1@20s+5s,etimeout=2s,stimeout=4s
func ParseFaults(s string) (*Faults, error) {
	switch strings.ToLower(s) {
	case "", "off":
		return nil, nil
	}
	if knownScenario(s) {
		return &Faults{Scenario: s}, nil
	}
	var f Faults
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			return nil, fmt.Errorf("fabric: faults %q: empty clause", s)
		}
		if v, ok := strings.CutPrefix(clause, "etimeout="); ok {
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, fmt.Errorf("fabric: faults endorsement timeout %q: %w", v, err)
			}
			f.EndorseTimeout = d
			continue
		}
		if v, ok := strings.CutPrefix(clause, "stimeout="); ok {
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, fmt.Errorf("fabric: faults submission timeout %q: %w", v, err)
			}
			f.SubmitTimeout = d
			continue
		}
		ev, err := parseFaultEvent(clause)
		if err != nil {
			return nil, err
		}
		f.Events = append(f.Events, ev)
	}
	return &f, f.Validate()
}

// parseFaultEvent parses one `kind[:target]@start+dur[:param]` clause.
func parseFaultEvent(clause string) (FaultEvent, error) {
	var ev FaultEvent
	head, tail, ok := strings.Cut(clause, "@")
	if !ok {
		return ev, fmt.Errorf("fabric: fault clause %q: want kind[:target]@start+dur[:param]", clause)
	}
	kind, target, hasTarget := strings.Cut(head, ":")
	ev.Kind = FaultKind(kind)
	if hasTarget {
		n, err := strconv.Atoi(target)
		if err != nil {
			return ev, fmt.Errorf("fabric: fault target %q: %w", target, err)
		}
		ev.Target = n
	}
	startStr, durStr, ok := strings.Cut(tail, "+")
	if !ok {
		return ev, fmt.Errorf("fabric: fault window %q: want start+dur", tail)
	}
	start, err := time.ParseDuration(startStr)
	if err != nil {
		return ev, fmt.Errorf("fabric: fault window start %q: %w", startStr, err)
	}
	ev.At = start
	durStr, param, hasParam := strings.Cut(durStr, ":")
	d, err := time.ParseDuration(durStr)
	if err != nil {
		return ev, fmt.Errorf("fabric: fault window length %q: %w", durStr, err)
	}
	ev.For = d

	switch ev.Kind {
	case FaultStraggler:
		ev.Extra = netem.Link{Base: 100 * time.Millisecond, Jitter: 10 * time.Millisecond}
		if hasParam {
			baseStr, jitStr, hasJitter := strings.Cut(param, "~")
			base, err := time.ParseDuration(baseStr)
			if err != nil {
				return ev, fmt.Errorf("fabric: straggler delay %q: %w", baseStr, err)
			}
			ev.Extra = netem.Link{Base: base}
			if hasJitter {
				jit, err := time.ParseDuration(jitStr)
				if err != nil {
					return ev, fmt.Errorf("fabric: straggler jitter %q: %w", jitStr, err)
				}
				ev.Extra.Jitter = jit
			}
		}
	case FaultLoss:
		ev.Factor = 0.1
		if hasParam {
			p, err := strconv.ParseFloat(param, 64)
			if err != nil {
				return ev, fmt.Errorf("fabric: loss probability %q: %w", param, err)
			}
			ev.Factor = p
		}
	case FaultSlowDB:
		ev.Factor = 4
		if hasParam {
			x, err := strconv.ParseFloat(param, 64)
			if err != nil {
				return ev, fmt.Errorf("fabric: slowdb multiplier %q: %w", param, err)
			}
			ev.Factor = x
		}
	default:
		if hasParam {
			return ev, fmt.Errorf("fabric: fault kind %q takes no parameter, got %q", string(ev.Kind), param)
		}
	}
	return ev, ev.validate()
}

// scheduleFaults arms the resolved fault schedule on the virtual
// clock: each event applies at its window start and reverts at its
// end. Called once from NewNetwork; with Config.Faults nil it is never
// called, so fault-free runs schedule zero events and draw zero rng.
func (nw *Network) scheduleFaults() {
	for _, ev := range nw.faults.Events {
		ev := ev
		nw.eng.At(sim.Time(ev.At), func() { nw.applyFault(ev) })
		nw.eng.At(sim.Time(ev.At+ev.For), func() { nw.revertFault(ev) })
	}
}

// applyFault opens one fault window.
func (nw *Network) applyFault(ev FaultEvent) {
	nw.col.RecordFaultWindow()
	switch ev.Kind {
	case FaultCrashPeer:
		p := nw.peers[ev.Target%len(nw.peers)]
		nw.col.RecordNodeDown(ev.For)
		p.crash()
		nw.net.SetDown(p.name, true)
	case FaultCrashOrderer:
		os := nw.orderers[ev.Target%len(nw.orderers)]
		nw.col.RecordNodeDown(ev.For)
		os.crash()
		for _, n := range os.nodeNames {
			nw.net.SetDown(n, true)
		}
	case FaultPartition:
		org := nw.orgs[ev.Target%len(nw.orgs)]
		var island []string
		for _, p := range nw.peers {
			if p.org == org {
				island = append(island, p.name)
			}
		}
		nw.net.Partition(island)
	case FaultStraggler:
		p := nw.peers[ev.Target%len(nw.peers)]
		nw.net.Inject(p.name, ev.Extra)
	case FaultLoss:
		p := nw.peers[ev.Target%len(nw.peers)]
		nw.net.SetLoss(p.name, ev.Factor)
	case FaultSlowDB:
		nw.savedDBCosts = nw.dbCosts
		nw.dbCosts = scaleDBCosts(nw.dbCosts, ev.Factor)
	}
}

// revertFault closes one fault window: crashed nodes restart,
// partitions heal, regimes lift.
func (nw *Network) revertFault(ev FaultEvent) {
	switch ev.Kind {
	case FaultCrashPeer:
		p := nw.peers[ev.Target%len(nw.peers)]
		nw.net.SetDown(p.name, false)
		p.restart()
	case FaultCrashOrderer:
		os := nw.orderers[ev.Target%len(nw.orderers)]
		for _, n := range os.nodeNames {
			nw.net.SetDown(n, false)
		}
		os.restart()
	case FaultPartition:
		nw.net.Heal()
	case FaultStraggler:
		p := nw.peers[ev.Target%len(nw.peers)]
		nw.net.Inject(p.name, netem.Link{})
	case FaultLoss:
		p := nw.peers[ev.Target%len(nw.peers)]
		nw.net.SetLoss(p.name, 0)
	case FaultSlowDB:
		nw.dbCosts = nw.savedDBCosts
	}
}

// scaleDBCosts multiplies every state-database operation cost by f
// (the slowdb regime).
func scaleDBCosts(c costmodel.DBCosts, f float64) costmodel.DBCosts {
	s := func(d time.Duration) time.Duration { return time.Duration(float64(d) * f) }
	c.Get = s(c.Get)
	c.Put = s(c.Put)
	c.Delete = s(c.Delete)
	c.RangeBase = s(c.RangeBase)
	c.RangePerKey = s(c.RangePerKey)
	c.QueryBase = s(c.QueryBase)
	c.QueryPerDoc = s(c.QueryPerDoc)
	c.CommitBase = s(c.CommitBase)
	c.CommitWrite = s(c.CommitWrite)
	c.ValRangeBase = s(c.ValRangeBase)
	c.ValRangePerKey = s(c.ValRangePerKey)
	return c
}
