package fabric

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/metrics"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata goldens from the current implementation")

// allCodes enumerates every validation code in declaration order, for
// stable fingerprints.
var allCodes = []ledger.ValidationCode{
	ledger.Valid, ledger.MVCCConflictInterBlock, ledger.MVCCConflictIntraBlock,
	ledger.PhantomReadConflict, ledger.EndorsementPolicyFailure, ledger.AbortedInOrdering,
}

// fingerprint renders everything behaviour-relevant about a finished
// run — counts, latencies at nanosecond precision, effective metrics,
// and each channel's chain height and final hash — so two runs are
// byte-identical iff their fingerprints match.
func fingerprint(nw *Network, rep metrics.Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total=%d committed=%d valid=%d", rep.Total, rep.Committed, rep.Valid)
	for _, code := range allCodes {
		fmt.Fprintf(&sb, " %s=%d", code, rep.Counts[code])
	}
	fmt.Fprintf(&sb, " jobs=%d attempts=%d eventual=%d firstvalid=%d gaveup=%d",
		rep.Jobs, rep.Attempts, rep.EventualValid, rep.FirstAttemptValid, rep.GaveUp)
	fmt.Fprintf(&sb, " avglat=%d maxlat=%d p50=%d p95=%d e2e=%d",
		int64(rep.AvgLatency), int64(rep.MaxLatency),
		int64(rep.P50Latency), int64(rep.P95Latency), int64(rep.AvgEndToEnd))
	fmt.Fprintf(&sb, " tput=%.6f goodput=%.6f amp=%.6f blocks=%d",
		rep.Throughput, rep.Goodput, rep.RetryAmplification, rep.Blocks)
	for ch, chain := range nw.Chains() {
		last := chain.Block(chain.Height() - 1)
		fmt.Fprintf(&sb, " ch%d=%d/%x", ch, chain.Height(), last.Hash[:8])
	}
	return sb.String()
}

// cohortEquivConfig is the locked equivalence regime: a closed-loop
// EHR run with a stateless backoff policy and none of the shared-state
// subsystems (budget, gossip, backpressure, adaptive policy), the
// conditions under which cohort drivers make exactly the decisions the
// exact simulation makes.
func cohortEquivConfig(seed int64, cohortSize int) Config {
	cfg := testConfig(seed)
	cfg.Clients = 6
	cfg.ClosedLoop = true
	cfg.InFlightPerClient = 2
	cfg.Duration = 10 * time.Second
	cfg.Drain = 10 * time.Second
	cfg.Retry = ExponentialBackoff{
		Initial:     200 * time.Millisecond,
		Cap:         2 * time.Second,
		MaxAttempts: 4,
		Jitter:      0.2,
	}
	cfg.CohortSize = cohortSize
	return cfg
}

// TestCohortExactEquivalence locks the cohort driver against the exact
// simulation at small N: with a stateless retry policy and no shared
// budget/gossip/pacer state, a 6-client run split into two 3-member
// cohorts must be byte-identical — same rng draw order, same
// transaction ids, same chain — to the same run with six exact
// clients. The exact run's fingerprint is additionally locked in
// testdata/golden_cohort.txt so both modes are pinned to history, not
// merely to each other; regenerate intended changes with
//
//	go test ./internal/fabric -run TestCohortExactEquivalence -update-golden
func TestCohortExactEquivalence(t *testing.T) {
	nwExact, repExact := run(t, cohortEquivConfig(11, 0))
	exact := fingerprint(nwExact, repExact)

	nwCohort, repCohort := run(t, cohortEquivConfig(11, 3))
	cohort := fingerprint(nwCohort, repCohort)

	if len(nwCohort.Drivers()) != 2 || nwCohort.Drivers()[0].Members() != 3 {
		t.Fatalf("expected 2 cohorts of 3 members, got %d drivers", len(nwCohort.Drivers()))
	}
	if exact != cohort {
		t.Errorf("cohort run diverged from exact simulation:\n exact: %s\ncohort: %s", exact, cohort)
	}

	got := exact + "\n"
	path := filepath.Join("testdata", "golden_cohort.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("equivalence golden drift:\n got: %s\nwant: %s",
			strings.TrimRight(got, "\n"), strings.TrimRight(string(want), "\n"))
	}
}

// TestCohortUnevenSplit pins the remainder handling: a client count
// that does not divide by the cohort size still drives every client
// exactly once (the last cohort takes the remainder).
func TestCohortUnevenSplit(t *testing.T) {
	cfg := cohortEquivConfig(3, 4) // 6 clients in cohorts of 4 -> 4 + 2
	nw, _ := run(t, cfg)
	drivers := nw.Drivers()
	if len(drivers) != 2 {
		t.Fatalf("drivers = %d, want 2", len(drivers))
	}
	if drivers[0].Members() != 4 || drivers[1].Members() != 2 {
		t.Errorf("cohort sizes = %d,%d, want 4,2", drivers[0].Members(), drivers[1].Members())
	}
	if nw.Clients() != nil {
		t.Errorf("cohort mode still built %d exact clients", len(nw.Clients()))
	}
}

// TestCohortOpenLoopAggregate checks the open-loop approximation: one
// aggregate Poisson process per cohort must carry the same offered
// load as the members' independent processes (superposition), so the
// totals of a cohort run track the exact run within sampling noise.
func TestCohortOpenLoopAggregate(t *testing.T) {
	base := testConfig(5)
	base.Clients = 20
	_, exact := run(t, base)

	cohorted := base
	cohorted.CohortSize = 5
	_, approx := run(t, cohorted)

	if exact.Total == 0 || approx.Total == 0 {
		t.Fatalf("no traffic: exact=%d cohort=%d", exact.Total, approx.Total)
	}
	ratio := float64(approx.Total) / float64(exact.Total)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("cohort offered load off by %0.f%%: exact=%d cohort=%d",
			100*(ratio-1), exact.Total, approx.Total)
	}
	if diff := approx.FailurePct - exact.FailurePct; diff < -15 || diff > 15 {
		t.Errorf("failure mix drifted: exact=%.2f%% cohort=%.2f%%",
			exact.FailurePct, approx.FailurePct)
	}
}

// liveHeapAfterRun builds and runs cfg, then reports the live heap
// with the network still reachable — the steady-state footprint of
// that population size.
func liveHeapAfterRun(t *testing.T, cfg Config) uint64 {
	t.Helper()
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.Run()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	runtime.KeepAlive(nw)
	return ms.HeapAlloc
}

// TestCohortMemoryFlatness is the scale regression: growing the
// simulated population 100× (10^3 to 10^5 clients) under cohort
// drivers must grow the live heap by at most a small pinned factor,
// because per-member state is one rotation counter — everything else
// is amortized across the cohort. An accidental per-member allocation
// (map entry, slice, driver object) blows the factor immediately.
func TestCohortMemoryFlatness(t *testing.T) {
	mk := func(clients int) Config {
		cfg := testConfig(9)
		cfg.Clients = clients
		cfg.CohortSize = clients / 100
		cfg.Duration = 2 * time.Second
		cfg.Drain = 2 * time.Second
		return cfg
	}
	h3 := liveHeapAfterRun(t, mk(1_000))
	h5 := liveHeapAfterRun(t, mk(100_000))
	const maxFactor = 3.0
	if factor := float64(h5) / float64(h3); factor > maxFactor {
		t.Errorf("heap grew %.2f× from 10^3 to 10^5 clients (%.1f MiB -> %.1f MiB), pinned max %.1f×",
			factor, float64(h3)/(1<<20), float64(h5)/(1<<20), maxFactor)
	}
}
