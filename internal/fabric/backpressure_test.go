package fabric

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestBackpressureDefaultsAndValidation(t *testing.T) {
	b := Backpressure{}.withDefaults()
	if b.Smoothing != 0.5 || b.Gain != time.Second || b.MaxPause != 2*time.Second {
		t.Errorf("defaults = %+v, want s0.5 gain 1s max 2s", b)
	}
	for i, bad := range []Backpressure{
		{Smoothing: -0.1},
		{Smoothing: 1.5},
		{Gain: -time.Second},
		{MaxPause: -time.Second},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, bad)
		}
	}
	if got := (Backpressure{}).Name(); got != "bp(s0.5,1s,max2s)" {
		t.Errorf("name = %q", got)
	}
	cfg := retryConfig(1, ImmediateRetry{MaxAttempts: 3})
	cfg.Backpressure = &Backpressure{Smoothing: 2}
	if _, err := NewNetwork(cfg); err == nil {
		t.Error("network accepted an invalid backpressure config")
	}
}

func TestBackpressurePause(t *testing.T) {
	b := Backpressure{Gain: time.Second, MaxPause: 2 * time.Second}.withDefaults()
	if got := b.pause(0); got != 0 {
		t.Errorf("pause(0) = %v", got)
	}
	if got := b.pause(0.5); got != 500*time.Millisecond {
		t.Errorf("pause(0.5) = %v, want 500ms", got)
	}
	if got := b.pause(1); got != time.Second {
		t.Errorf("pause(1) = %v, want 1s", got)
	}
	steep := Backpressure{Gain: 4 * time.Second, MaxPause: 2 * time.Second}.withDefaults()
	if got := steep.pause(1); got != 2*time.Second {
		t.Errorf("pause(1) with 4s gain = %v, want the 2s cap", got)
	}
}

func TestParseBackpressure(t *testing.T) {
	if bp, err := ParseBackpressure(""); err != nil || bp != nil {
		t.Errorf("ParseBackpressure(\"\") = %+v, %v", bp, err)
	}
	if bp, err := ParseBackpressure("off"); err != nil || bp != nil {
		t.Errorf("ParseBackpressure(off) = %+v, %v", bp, err)
	}
	if bp, err := ParseBackpressure("on"); err != nil || bp == nil || *bp != (Backpressure{}) {
		t.Errorf("ParseBackpressure(on) = %+v, %v", bp, err)
	}
	want := Backpressure{Smoothing: 0.3, Gain: 500 * time.Millisecond, MaxPause: 3 * time.Second}
	if bp, err := ParseBackpressure("0.3:500ms:3s"); err != nil || bp == nil || *bp != want {
		t.Errorf("ParseBackpressure(0.3:500ms:3s) = %+v, %v", bp, err)
	}
	if bp, err := ParseBackpressure("0.3:500ms"); err != nil || bp == nil || bp.MaxPause != 0 {
		t.Errorf("two-field spec = %+v, %v", bp, err)
	}
	for _, in := range []string{"x", "0.3", "a:1s", "0.3:zz", "0.3:1s:zz", "2:1s", "0.3:1s:2s:4"} {
		if _, err := ParseBackpressure(in); err == nil {
			t.Errorf("ParseBackpressure(%q) accepted", in)
		}
	}
}

func TestUpdateHintBacklogAndSmoothing(t *testing.T) {
	nw := harness(t)
	bp := Backpressure{Smoothing: 0.5}.withDefaults()
	nw.bp = &bp
	os := nw.orderers[0]
	// A backlog far past the block timeout saturates the raw sample at
	// 1; the EWMA walks the smoothed hint toward it in halves.
	os.occupy(10 * nw.cfg.BlockTimeout)
	os.updateHint()
	if got := os.CongestionHint(); got != 0.5 {
		t.Fatalf("hint after one saturated sample = %g, want 0.5", got)
	}
	os.updateHint()
	if got := os.CongestionHint(); got != 0.75 {
		t.Fatalf("hint after two saturated samples = %g, want 0.75", got)
	}
	// An idle orderer decays the hint instead of resetting it.
	os.busyUntil = 0
	nw.eng.RunUntil(sim.Time(time.Second))
	os.updateHint()
	if got := os.CongestionHint(); got != 0.375 {
		t.Fatalf("hint after an idle sample = %g, want 0.375", got)
	}
}

func TestServiceRateEstimate(t *testing.T) {
	nw := harness(t)
	svc := nw.orderers[0].serviceRate()
	if svc <= 0 {
		t.Fatalf("service rate = %g, want > 0", svc)
	}
	// Larger blocks amortize the fixed per-block cost: the estimated
	// service rate must not shrink when the block size grows.
	nw.orderers[0].blockSize = 1
	if small := nw.orderers[0].serviceRate(); small >= svc {
		t.Errorf("service rate at block 1 (%g) >= at block 100 (%g)", small, svc)
	}
}

func TestBackpressurePolicyDelayScalesWithHint(t *testing.T) {
	p := BackpressurePolicy{Floor: 100 * time.Millisecond, Ceiling: 1100 * time.Millisecond}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := p.perClient().(*backpressureState)
	rng := sim.NewEngine(1).Rand()
	if d, ok := s.NextDelay(1, rng); !ok || d != 100*time.Millisecond {
		t.Errorf("delay at hint 0 = %v ok=%v, want the 100ms floor", d, ok)
	}
	s.observeHint(0.5)
	if d, _ := s.NextDelay(1, rng); d != 600*time.Millisecond {
		t.Errorf("delay at hint 0.5 = %v, want the 600ms midpoint", d)
	}
	s.observeHint(1)
	if d, _ := s.NextDelay(1, rng); d != 1100*time.Millisecond {
		t.Errorf("delay at hint 1 = %v, want the 1.1s ceiling", d)
	}
	capped := BackpressurePolicy{MaxAttempts: 2}.perClient()
	if _, ok := capped.NextDelay(2, rng); ok {
		t.Error("policy retried past MaxAttempts")
	}
	if (BackpressurePolicy{}).Name() != "hinted" || (BackpressurePolicy{MaxAttempts: 5}).Name() != "hinted(5)" {
		t.Error("unexpected policy names")
	}
	if err := (BackpressurePolicy{Floor: 5 * time.Second, Ceiling: time.Second}).Validate(); err == nil {
		t.Error("floor above ceiling validated")
	}
}

func TestAdaptiveHintWeightBlending(t *testing.T) {
	base := AdaptivePolicy{Floor: 100 * time.Millisecond, Ceiling: 1100 * time.Millisecond}
	rng := sim.NewEngine(1).Rand()

	unweighted := base.perClient().(*adaptiveState)
	unweighted.observeHint(1)
	if d, _ := unweighted.NextDelay(1, rng); d != 100*time.Millisecond {
		t.Errorf("HintWeight 0 delay = %v, want the untouched 100ms floor", d)
	}

	weighted := base
	weighted.HintWeight = 0.5
	s := weighted.perClient().(*adaptiveState)
	s.observeHint(1)
	// Half the headroom above the current level: 100ms + 0.5×1s.
	if d, _ := s.NextDelay(1, rng); d != 600*time.Millisecond {
		t.Errorf("blended delay = %v, want 600ms", d)
	}
	s.observeHint(0)
	if d, _ := s.NextDelay(1, rng); d != 100*time.Millisecond {
		t.Errorf("delay after the hint cleared = %v, want 100ms", d)
	}
	if err := (AdaptivePolicy{HintWeight: 1.5}).Validate(); err == nil {
		t.Error("hint weight above 1 validated")
	}
	if err := (AdaptivePolicy{HintWeight: -0.5}).Validate(); err == nil {
		t.Error("negative hint weight validated")
	}
}

// congestedConfig deliberately undersizes the ordering service (25 ms
// of serial CPU per transaction ≈ 40 tps capacity against a 50 tps
// offered load plus retries), so the backlog — and with it the
// congestion hint — must climb.
func congestedConfig(seed int64) Config {
	cfg := retryConfig(seed, ImmediateRetry{MaxAttempts: 5})
	cfg.OrdererCosts.PerTx = 25 * time.Millisecond
	cfg.Backpressure = &Backpressure{}
	return cfg
}

func TestBackpressureHintsRiseUnderCongestion(t *testing.T) {
	_, rep := run(t, congestedConfig(1))
	if rep.BackpressureHintMax <= 0 || rep.BackpressureHintMax > 1 {
		t.Fatalf("hint max = %g, want in (0,1]", rep.BackpressureHintMax)
	}
	if rep.BackpressureHintFinal <= 0 {
		t.Errorf("final hint = %g, want > 0 with a saturated orderer", rep.BackpressureHintFinal)
	}
	if rep.PacedSubmissions == 0 || rep.TimePaced == 0 {
		t.Errorf("paced=%d time-paced=%v, want pacing under congestion",
			rep.PacedSubmissions, rep.TimePaced)
	}
}

func TestBackpressurePacingShedsRetryLoad(t *testing.T) {
	paced := congestedConfig(2)
	_, withBP := run(t, paced)
	unpaced := congestedConfig(2)
	unpaced.Backpressure = nil
	_, without := run(t, unpaced)
	if without.PacedSubmissions != 0 || without.TimePaced != 0 ||
		without.BackpressureHintMax != 0 {
		t.Fatalf("nil backpressure left traces: %+v", without)
	}
	// Pacing spreads resubmissions out, so the paced run must issue no
	// more attempts than the unpaced one into the same congested
	// orderer.
	if withBP.Attempts > without.Attempts {
		t.Errorf("paced attempts %d > unpaced %d", withBP.Attempts, without.Attempts)
	}
}

func TestBackpressureInertWithoutTracking(t *testing.T) {
	// Fire-and-forget open loop: hints are still computed at each cut
	// (they appear in the report) but nothing is delivered or paced,
	// and the chain-level results are untouched.
	cfg := testConfig(3)
	cfg.Backpressure = &Backpressure{}
	_, withBP := run(t, cfg)
	_, plain := run(t, testConfig(3))
	withBP.BackpressureHintAvg = 0
	withBP.BackpressureHintMax = 0
	withBP.BackpressureHintFinal = 0
	if !reflect.DeepEqual(withBP, plain) {
		t.Error("backpressure changed a fire-and-forget run beyond the hint summary")
	}
}

func TestBackpressureRunsDeterministic(t *testing.T) {
	cfg := congestedConfig(4)
	cfg.Retry = BackpressurePolicy{MaxAttempts: 5, Jitter: 0.2}
	_, a := run(t, cfg)
	cfg2 := congestedConfig(4)
	cfg2.Retry = BackpressurePolicy{MaxAttempts: 5, Jitter: 0.2}
	_, b := run(t, cfg2)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical hinted runs diverged:\n%+v\n%+v", a, b)
	}
	if a.BackpressureHintMax <= 0 {
		t.Error("hinted run never observed congestion")
	}
}

func TestBackpressurePolicyBacksOffHarderUnderCongestion(t *testing.T) {
	// Same congested network, hinted policy vs a floor-only baseline:
	// the shared signal must stretch backoffs, reducing the duplicate
	// submissions pushed into the saturated orderer.
	hinted := congestedConfig(5)
	hinted.Retry = BackpressurePolicy{Floor: 100 * time.Millisecond, Ceiling: 4 * time.Second, MaxAttempts: 5}
	_, h := run(t, hinted)

	floorOnly := congestedConfig(5)
	floorOnly.Backpressure = nil
	floorOnly.Retry = BackpressurePolicy{Floor: 100 * time.Millisecond, Ceiling: 4 * time.Second, MaxAttempts: 5}
	_, f := run(t, floorOnly)

	if h.RetryAmplification >= f.RetryAmplification {
		t.Errorf("hinted amplification %.3f >= floor-only %.3f: the signal did not slow retries",
			h.RetryAmplification, f.RetryAmplification)
	}
}

// TestBudgetWaitAbsorbsPacingTime pins the pacing accounting against
// the retry budget: a token wait that dominates the paced backoff
// absorbs the whole pause (nothing is recorded as pacer-added time),
// and a shorter wait absorbs exactly the part it covers.
func TestBudgetWaitAbsorbsPacingTime(t *testing.T) {
	mkNet := func(seed int64) (*Network, *Client) {
		cfg := retryConfig(seed, ImmediateRetry{MaxAttempts: 5})
		cfg.RetryBudget = &RetryBudget{RefillPerSec: 0.1, Burst: 1}
		cfg.Backpressure = &Backpressure{Gain: time.Second, MaxPause: 2 * time.Second}
		nw, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := nw.clients[0]
		c.hints[0] = 1 // pause = Gain = 1s
		return nw, c
	}
	job := func(nw *Network) *pendingTx {
		return &pendingTx{inv: nw.cfg.Workload.Next(nw.eng.Rand()), attempts: 1}
	}

	// Token wait (10s at 0.1/s) dominates the paced zero-backoff (1s):
	// a deferral, with the pause fully absorbed.
	nw, c := mkNet(7)
	c.bucket = &tokenBucket{rate: 0.1, burst: 1, tokens: 0}
	c.attemptFailed(job(nw), 0)
	rep := nw.col.Report()
	if rep.DeferredRetries != 1 {
		t.Fatalf("deferred = %d, want 1", rep.DeferredRetries)
	}
	if rep.PacedSubmissions != 0 || rep.TimePaced != 0 {
		t.Errorf("budget-dominated deferral recorded pacing: paced=%d time=%v",
			rep.PacedSubmissions, rep.TimePaced)
	}

	// Token wait of 400ms against the 1s pause: the retry fires at the
	// paced delay, but only the 600ms the wait did not cover count as
	// pacer-added time.
	nw, c = mkNet(8)
	c.bucket = &tokenBucket{rate: 2.5, burst: 1, tokens: 0}
	c.attemptFailed(job(nw), 0)
	rep = nw.col.Report()
	if rep.DeferredRetries != 0 {
		t.Fatalf("partial-wait retry deferred, want immediate paced schedule")
	}
	if rep.PacedSubmissions != 1 || rep.TimePaced != 600*time.Millisecond {
		t.Errorf("partial absorption: paced=%d time=%v, want 1 and 600ms",
			rep.PacedSubmissions, rep.TimePaced)
	}
}

func TestClosedLoopPacingThrottlesNewJobs(t *testing.T) {
	// A wide in-flight window defeats the closed loop's natural
	// self-throttling, so the undersized orderer backlogs and hints
	// climb.
	busy := closedConfig(6)
	busy.InFlightPerClient = 40
	busy.OrdererCosts.PerTx = 25 * time.Millisecond
	busy.Retry = nil
	_, unpaced := run(t, busy)

	paced := closedConfig(6)
	paced.InFlightPerClient = 40
	paced.OrdererCosts.PerTx = 25 * time.Millisecond
	paced.Retry = nil
	paced.Backpressure = &Backpressure{Gain: 2 * time.Second, MaxPause: 2 * time.Second}
	_, withBP := run(t, paced)

	if withBP.PacedSubmissions == 0 {
		t.Fatal("closed-loop run under congestion never paced a new job")
	}
	if withBP.Jobs >= unpaced.Jobs {
		t.Errorf("paced closed loop resolved %d jobs vs %d unpaced: pacing did not throttle",
			withBP.Jobs, unpaced.Jobs)
	}
}
