package fabric

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestThinkTimeValidation(t *testing.T) {
	if err := (ThinkTime{}).Validate(); err != nil {
		t.Errorf("zero value rejected: %v", err)
	}
	bad := []ThinkTime{
		{Kind: ThinkFixed},                           // no mean
		{Kind: ThinkExponential, Mean: -time.Second}, // negative mean
		{Kind: ThinkLogNormal, Mean: time.Second, Sigma: -1},
		{Kind: ThinkTimeKind(99), Mean: time.Second},
	}
	for i, tt := range bad {
		if err := tt.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, tt)
		}
	}
	cfg := testConfig(1)
	cfg.ClosedLoop = true
	cfg.ThinkTime = ThinkTime{Kind: ThinkFixed}
	if _, err := NewNetwork(cfg); err == nil {
		t.Error("network accepted a mean-less think time")
	}
}

func TestParseThinkTime(t *testing.T) {
	cases := []struct {
		in   string
		want ThinkTime
	}{
		{"none", ThinkTime{}},
		{"", ThinkTime{}},
		{"fixed:500ms", ThinkTime{Kind: ThinkFixed, Mean: 500 * time.Millisecond}},
		{"exp:2s", ThinkTime{Kind: ThinkExponential, Mean: 2 * time.Second}},
		{"exponential:1s", ThinkTime{Kind: ThinkExponential, Mean: time.Second}},
		{"lognormal:1s", ThinkTime{Kind: ThinkLogNormal, Mean: time.Second}},
		{"lognormal:1s:0.8", ThinkTime{Kind: ThinkLogNormal, Mean: time.Second, Sigma: 0.8}},
	}
	for _, c := range cases {
		got, err := ParseThinkTime(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseThinkTime(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
	}
	for _, in := range []string{"bogus", "fixed", "fixed:xyz", "fixed:1s:2", "lognormal:1s:x", "lognormal:1s:0.8x", "none:1s"} {
		if _, err := ParseThinkTime(in); err == nil {
			t.Errorf("ParseThinkTime(%q) accepted", in)
		}
	}
}

func TestThinkTimeSampling(t *testing.T) {
	eng := sim.NewEngine(1)
	if got := (ThinkTime{}).sample(eng); got != 0 {
		t.Errorf("none sampled %v, want 0", got)
	}
	fixed := ThinkTime{Kind: ThinkFixed, Mean: 250 * time.Millisecond}
	if got := fixed.sample(eng); got != 250*time.Millisecond {
		t.Errorf("fixed sampled %v", got)
	}
	// Exponential and log-normal means converge near the target.
	for _, tt := range []ThinkTime{
		{Kind: ThinkExponential, Mean: time.Second},
		{Kind: ThinkLogNormal, Mean: time.Second, Sigma: 0.5},
	} {
		var sum time.Duration
		const n = 20000
		for i := 0; i < n; i++ {
			d := tt.sample(eng)
			if d < 0 {
				t.Fatalf("%s sampled negative %v", tt.Kind, d)
			}
			sum += d
		}
		mean := float64(sum) / n
		if math.Abs(mean-float64(time.Second)) > 0.05*float64(time.Second) {
			t.Errorf("%s mean %v, want ~1s", tt.Kind, time.Duration(mean))
		}
	}
}

func TestLogNormalDeterministic(t *testing.T) {
	a, b := sim.NewEngine(3), sim.NewEngine(3)
	for i := 0; i < 100; i++ {
		if da, db := a.LogNormal(time.Second, 1), b.LogNormal(time.Second, 1); da != db {
			t.Fatalf("draw %d: %v != %v for identical seeds", i, da, db)
		}
	}
}

// closedConfig is a closed-loop EHR run.
func closedConfig(seed int64) Config {
	cfg := testConfig(seed)
	cfg.ClosedLoop = true
	cfg.InFlightPerClient = 2
	return cfg
}

func TestClosedLoopReadsThinkTime(t *testing.T) {
	// The bugfix under test: closed-loop clients must honour
	// Config.ThinkTime instead of hardcoding zero. A think time about
	// as long as the whole send window throttles each client slot to a
	// couple of jobs.
	busy := closedConfig(8)
	_, noThink := run(t, busy)

	slow := closedConfig(8)
	slow.ThinkTime = ThinkTime{Kind: ThinkFixed, Mean: 10 * time.Second}
	_, withThink := run(t, slow)

	if noThink.Jobs == 0 || withThink.Jobs == 0 {
		t.Fatalf("runs resolved no jobs: %d / %d", noThink.Jobs, withThink.Jobs)
	}
	if withThink.Jobs*2 >= noThink.Jobs {
		t.Errorf("10s think time left %d jobs vs %d without: think time not applied",
			withThink.Jobs, noThink.Jobs)
	}
}

func TestUnsetThinkTimePreservesOldBehaviour(t *testing.T) {
	// Kind ThinkNone must be byte-identical to the pre-think-time
	// closed loop: no extra events, no extra rng draws.
	_, implicit := run(t, closedConfig(9))
	explicit := closedConfig(9)
	explicit.ThinkTime = ThinkTime{Kind: ThinkNone}
	_, withExplicit := run(t, explicit)
	if !reflect.DeepEqual(implicit, withExplicit) {
		t.Error("explicit ThinkNone diverged from the zero value")
	}
}

func TestThinkTimeRunsDeterministic(t *testing.T) {
	cfg := closedConfig(10)
	cfg.ThinkTime = ThinkTime{Kind: ThinkLogNormal, Mean: 300 * time.Millisecond, Sigma: 1}
	_, a := run(t, cfg)
	cfg2 := closedConfig(10)
	cfg2.ThinkTime = ThinkTime{Kind: ThinkLogNormal, Mean: 300 * time.Millisecond, Sigma: 1}
	_, b := run(t, cfg2)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical think-time runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestThinkTimeIgnoredInOpenLoop(t *testing.T) {
	cfg := testConfig(11)
	cfg.ThinkTime = ThinkTime{Kind: ThinkFixed, Mean: 10 * time.Second}
	_, withThink := run(t, cfg)
	_, plain := run(t, testConfig(11))
	if !reflect.DeepEqual(withThink, plain) {
		t.Error("think time changed an open-loop run")
	}
}
