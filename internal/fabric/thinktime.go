package fabric

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// ThinkTimeKind selects the think-time distribution of closed-loop
// clients.
type ThinkTimeKind int

const (
	// ThinkNone is the zero value: no think time, the next job starts
	// the instant the previous one resolves (the historical closed-loop
	// behaviour). It draws nothing from the rng.
	ThinkNone ThinkTimeKind = iota
	// ThinkFixed waits exactly Mean between jobs.
	ThinkFixed
	// ThinkExponential draws an exponentially distributed wait with
	// the given Mean — the classic interactive-client model.
	ThinkExponential
	// ThinkLogNormal draws a log-normally distributed wait with the
	// given Mean and shape Sigma: a heavy-tailed human think time.
	ThinkLogNormal
)

// String names the distribution as the CLI spells it.
func (k ThinkTimeKind) String() string {
	switch k {
	case ThinkFixed:
		return "fixed"
	case ThinkExponential:
		return "exp"
	case ThinkLogNormal:
		return "lognormal"
	default:
		return "none"
	}
}

// ThinkTime configures how long a closed-loop client "thinks" between
// resolving one logical transaction and submitting the next
// (Config.ThinkTime). The zero value means no think time, which
// reproduces the original closed-loop behaviour exactly — no extra
// events, no extra rng draws. Open-loop runs ignore it.
type ThinkTime struct {
	// Kind selects the distribution. Default ThinkNone (no think
	// time).
	Kind ThinkTimeKind
	// Mean is the mean think time for every distribution kind.
	// Must be > 0 for any kind other than ThinkNone.
	Mean time.Duration
	// Sigma is the log-normal shape parameter σ (dimensionless;
	// ThinkLogNormal only). 0 defaults to 1. Larger values fatten the
	// tail while the mean stays at Mean.
	Sigma float64
}

// Validate reports configuration errors.
func (t ThinkTime) Validate() error {
	switch t.Kind {
	case ThinkNone:
		return nil
	case ThinkFixed, ThinkExponential, ThinkLogNormal:
		if t.Mean <= 0 {
			return fmt.Errorf("fabric: %s think time needs a positive mean, got %v", t.Kind, t.Mean)
		}
		if t.Sigma < 0 {
			return fmt.Errorf("fabric: think time sigma must be >= 0, got %g", t.Sigma)
		}
		return nil
	default:
		return fmt.Errorf("fabric: unknown think time kind %d", int(t.Kind))
	}
}

// Name labels the distribution in tables, e.g. "think=exp(500ms)".
func (t ThinkTime) Name() string {
	if t.Kind == ThinkNone {
		return "think=none"
	}
	if t.Kind == ThinkLogNormal {
		sigma := t.Sigma
		if sigma == 0 {
			sigma = 1
		}
		return fmt.Sprintf("think=lognormal(%v,s%g)", t.Mean, sigma)
	}
	return fmt.Sprintf("think=%s(%v)", t.Kind, t.Mean)
}

// sample draws one think time from the simulation engine. ThinkNone
// returns 0 without touching the rng.
func (t ThinkTime) sample(eng *sim.Engine) time.Duration {
	switch t.Kind {
	case ThinkFixed:
		return t.Mean
	case ThinkExponential:
		return eng.Exponential(t.Mean)
	case ThinkLogNormal:
		sigma := t.Sigma
		if sigma == 0 {
			sigma = 1
		}
		return eng.LogNormal(t.Mean, sigma)
	default:
		return 0
	}
}

// ParseThinkTime parses the CLI syntax for a think-time spec:
// "none", "fixed:500ms", "exp:2s" or "lognormal:1s:0.8" (the third
// field is the optional sigma, default 1).
func ParseThinkTime(s string) (ThinkTime, error) {
	parts := strings.Split(s, ":")
	var t ThinkTime
	switch strings.ToLower(parts[0]) {
	case "", "none":
		if len(parts) > 1 {
			return ThinkTime{}, fmt.Errorf("fabric: think time %q: none takes no arguments", s)
		}
		return ThinkTime{}, nil
	case "fixed":
		t.Kind = ThinkFixed
	case "exp", "exponential":
		t.Kind = ThinkExponential
	case "lognormal":
		t.Kind = ThinkLogNormal
	default:
		return ThinkTime{}, fmt.Errorf("fabric: unknown think time distribution %q", parts[0])
	}
	if len(parts) < 2 {
		return ThinkTime{}, fmt.Errorf("fabric: think time %q needs a mean, e.g. %s:500ms", s, parts[0])
	}
	mean, err := time.ParseDuration(parts[1])
	if err != nil {
		return ThinkTime{}, fmt.Errorf("fabric: think time mean %q: %w", parts[1], err)
	}
	t.Mean = mean
	if t.Kind == ThinkLogNormal && len(parts) >= 3 {
		sigma, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return ThinkTime{}, fmt.Errorf("fabric: think time sigma %q: %w", parts[2], err)
		}
		t.Sigma = sigma
	}
	if len(parts) > 3 || (t.Kind != ThinkLogNormal && len(parts) > 2) {
		return ThinkTime{}, fmt.Errorf("fabric: think time %q has trailing fields", s)
	}
	return t, t.Validate()
}
