package fabric

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// newState builds a per-client controller from a config.
func newState(t *testing.T, p AdaptivePolicy) *adaptiveState {
	t.Helper()
	s, ok := p.perClient().(*adaptiveState)
	if !ok {
		t.Fatal("perClient did not return an adaptiveState")
	}
	return s
}

func TestAdaptiveGrowsUnderFailures(t *testing.T) {
	p := AdaptivePolicy{
		Floor: 100 * time.Millisecond, Ceiling: 2 * time.Second,
		Increase: 2, Decrease: 10 * time.Millisecond, Window: 8, Target: 0.1,
	}
	s := newState(t, p)
	if got := s.currentBackoff(); got != p.Floor {
		t.Fatalf("initial backoff %v, want floor %v", got, p.Floor)
	}
	// Sustained failures: multiplicative growth 100ms -> 200 -> 400 ->
	// 800 -> 1600 -> capped at the 2s ceiling.
	want := []time.Duration{
		200 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond,
		1600 * time.Millisecond, 2 * time.Second, 2 * time.Second,
	}
	for i, w := range want {
		s.observe(true)
		if got := s.currentBackoff(); got != w {
			t.Errorf("after %d failures: backoff %v, want %v", i+1, got, w)
		}
	}
	// 6 failures over the configured window of 8.
	if got := s.FailureRate(); got != 0.75 {
		t.Errorf("failure rate %g after 6 failures in a window of 8, want 0.75", got)
	}
}

func TestAdaptiveWarmupFailureNotOverweighted(t *testing.T) {
	// A fresh client's very first failure is 1/Window, not 100%: with
	// the default 10% target and a window of 32, a couple of isolated
	// early conflicts must not trigger the multiplicative increase.
	s := newState(t, AdaptivePolicy{Floor: 100 * time.Millisecond})
	s.observe(true)
	if got := s.FailureRate(); got != 1.0/32 {
		t.Errorf("first-failure rate %g, want 1/32", got)
	}
	if got := s.currentBackoff(); got != 100*time.Millisecond {
		t.Errorf("backoff %v grew on the warm-up failure, want floor", got)
	}
}

func TestAdaptiveShrinksToFloorOnCommits(t *testing.T) {
	p := AdaptivePolicy{
		Floor: 50 * time.Millisecond, Ceiling: time.Second,
		Increase: 4, Decrease: 100 * time.Millisecond, Window: 8, Target: 0.1,
	}
	s := newState(t, p)
	for i := 0; i < 4; i++ {
		s.observe(true)
	}
	if got := s.currentBackoff(); got != time.Second {
		t.Fatalf("backoff %v after failure burst, want ceiling 1s", got)
	}
	// All-commits: additive decrease walks it back down and clamps at
	// the floor (1s / 100ms steps = 10 commits; give it 12).
	for i := 0; i < 12; i++ {
		s.observe(false)
	}
	if got := s.currentBackoff(); got != p.Floor {
		t.Errorf("backoff %v after commit streak, want floor %v", got, p.Floor)
	}
}

func TestAdaptiveTargetGatesIsolatedFailures(t *testing.T) {
	// With a 50% target, a lone failure in a healthy window must not
	// grow the backoff.
	p := AdaptivePolicy{
		Floor: 100 * time.Millisecond, Ceiling: time.Second,
		Increase: 2, Decrease: 10 * time.Millisecond, Window: 10, Target: 0.5,
	}
	s := newState(t, p)
	for i := 0; i < 9; i++ {
		s.observe(false)
	}
	s.observe(true) // 1/10 failures, below the 50% target
	if got := s.currentBackoff(); got != p.Floor {
		t.Errorf("backoff %v grew on an isolated sub-target failure, want floor %v", got, p.Floor)
	}
}

func TestAdaptiveWindowSlides(t *testing.T) {
	p := AdaptivePolicy{Window: 4, Target: 0.5}
	s := newState(t, p)
	for i := 0; i < 4; i++ {
		s.observe(true)
	}
	if got := s.FailureRate(); got != 1 {
		t.Fatalf("rate %g, want 1", got)
	}
	// Four commits push the failures out of the 4-slot window.
	for i := 0; i < 4; i++ {
		s.observe(false)
	}
	if got := s.FailureRate(); got != 0 {
		t.Errorf("rate %g after window slid past the failures, want 0", got)
	}
}

func TestAdaptiveNextDelayRespectsCapAndJitter(t *testing.T) {
	s := newState(t, AdaptivePolicy{MaxAttempts: 3, Jitter: 0.5})
	rng := rand.New(rand.NewSource(1))
	if _, ok := s.NextDelay(2, rng); !ok {
		t.Error("retry refused below MaxAttempts")
	}
	if _, ok := s.NextDelay(3, rng); ok {
		t.Error("retry allowed at MaxAttempts")
	}
	// Jitter draws from the rng deterministically.
	a, _ := newState(t, AdaptivePolicy{Jitter: 0.5}).NextDelay(1, rand.New(rand.NewSource(7)))
	b, _ := newState(t, AdaptivePolicy{Jitter: 0.5}).NextDelay(1, rand.New(rand.NewSource(7)))
	if a != b {
		t.Errorf("identical rng seeds gave %v and %v", a, b)
	}
}

func TestAdaptivePolicyValidation(t *testing.T) {
	bad := []AdaptivePolicy{
		{Floor: -1},
		{Ceiling: -1},
		{Floor: 2 * time.Second, Ceiling: time.Second},
		{Floor: 10 * time.Second}, // above the defaulted 8s ceiling
		{Increase: 0.5},
		{Decrease: -time.Millisecond},
		{Window: -1},
		{Target: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, p)
		}
	}
	if err := (AdaptivePolicy{}).Validate(); err != nil {
		t.Errorf("zero value (all defaults) rejected: %v", err)
	}
	cfg := retryConfig(1, AdaptivePolicy{Target: 2})
	if _, err := NewNetwork(cfg); err == nil {
		t.Error("network accepted an invalid adaptive policy")
	}
}

func TestAdaptiveRunProducesTrajectory(t *testing.T) {
	cfg := retryConfig(5, AdaptivePolicy{
		Floor: 50 * time.Millisecond, Ceiling: 2 * time.Second,
		MaxAttempts: 5, Jitter: 0.2,
	})
	_, rep := run(t, cfg)
	if rep.Jobs == 0 {
		t.Fatal("no jobs tracked")
	}
	if rep.AdaptiveBackoffMax == 0 {
		t.Fatal("no backoff trajectory recorded")
	}
	// EHR contention must push the controller above its floor.
	if rep.AdaptiveBackoffMax <= 50*time.Millisecond {
		t.Errorf("max backoff %v never left the floor", rep.AdaptiveBackoffMax)
	}
	if rep.AdaptiveBackoffAvg > rep.AdaptiveBackoffMax {
		t.Errorf("avg %v > max %v", rep.AdaptiveBackoffAvg, rep.AdaptiveBackoffMax)
	}
	if rep.AdaptiveBackoffFinal > rep.AdaptiveBackoffMax {
		t.Errorf("final %v > max %v", rep.AdaptiveBackoffFinal, rep.AdaptiveBackoffMax)
	}
}

func TestAdaptiveRunsDeterministic(t *testing.T) {
	p := AdaptivePolicy{MaxAttempts: 4, Jitter: 0.3}
	_, a := run(t, retryConfig(6, p))
	_, b := run(t, retryConfig(6, p))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical adaptive runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestGiveUpAfterPreservesAdaptation(t *testing.T) {
	// Wrapping the adaptive policy must not strip its per-client AIMD
	// state: the wrapper clones the inner controller per client and
	// the trajectory still reaches the report.
	wrapped := GiveUpAfter(AdaptivePolicy{
		Floor: 50 * time.Millisecond, Ceiling: 2 * time.Second, Jitter: 0.2,
	}, 5)
	pc, ok := wrapped.(perClientPolicy)
	if !ok {
		t.Fatal("GiveUpAfter(AdaptivePolicy) lost the per-client facet")
	}
	a, b := pc.perClient(), pc.perClient()
	if a == b {
		t.Error("perClient returned a shared instance")
	}
	if a.Name() != "adaptive-cap5" {
		t.Errorf("name = %q", a.Name())
	}
	rng := rand.New(rand.NewSource(1))
	if _, ok := a.NextDelay(5, rng); ok {
		t.Error("wrapper no longer truncates at 5 attempts")
	}
	_, rep := run(t, retryConfig(12, wrapped))
	if rep.AdaptiveBackoffMax == 0 {
		t.Error("wrapped adaptive policy recorded no trajectory")
	}
	if rep.AdaptiveBackoffMax <= 50*time.Millisecond {
		t.Errorf("max backoff %v never left the floor: adaptation lost behind the wrapper",
			rep.AdaptiveBackoffMax)
	}
}

func TestGiveUpAfterForwardsValidation(t *testing.T) {
	cfg := retryConfig(1, GiveUpAfter(AdaptivePolicy{Target: 2}, 3))
	if _, err := NewNetwork(cfg); err == nil {
		t.Error("invalid adaptive policy accepted behind GiveUpAfter")
	}
}

func TestStaticPoliciesHaveNoTrajectory(t *testing.T) {
	_, rep := run(t, retryConfig(7, ImmediateRetry{MaxAttempts: 3}))
	if rep.AdaptiveBackoffMax != 0 || rep.AdaptiveBackoffAvg != 0 {
		t.Errorf("static policy produced a trajectory: avg=%v max=%v",
			rep.AdaptiveBackoffAvg, rep.AdaptiveBackoffMax)
	}
}
