package fabric

import (
	"fmt"
	"math/rand"
	"time"
)

// AdaptivePolicy is a failure-rate-watching retry policy: instead of a
// fixed backoff schedule, each client runs an AIMD (additive increase
// is the *recovery* direction here — additive decrease of the backoff
// on commits, multiplicative increase on aborts) controller fed by the
// commit events the client already listens to. The client observes
// every attempt outcome, keeps the last Window outcomes in a sliding
// window, and adjusts a single current-backoff level:
//
//   - a failed attempt while the windowed failure rate is at or above
//     Target multiplies the backoff by Increase (capped at Ceiling) —
//     the client interprets sustained failures as congestion and
//     backs off hard, like a TCP sender halving its window;
//   - a committed attempt subtracts Decrease (floored at Floor) — the
//     client probes for capacity additively;
//   - isolated failures below the Target rate leave the level alone,
//     so one unlucky MVCC conflict does not stall an otherwise healthy
//     client.
//
// Every resubmission then waits the current level, jittered by ±Jitter
// with randomness from the simulation rng, so runs remain
// deterministic for a given (config, seed).
//
// The network gives every client its own controller instance: the
// failure rate being watched is the client's own, not the fleet's.
// Calling NextDelay on the AdaptivePolicy value itself (outside a
// Network) behaves as a constant Floor-level backoff.
type AdaptivePolicy struct {
	// Floor is the minimum backoff and the starting level.
	// 0 defaults to 50ms; negative is a validation error.
	Floor time.Duration
	// Ceiling is the maximum backoff the multiplicative increase can
	// reach. 0 defaults to 8s.
	Ceiling time.Duration
	// Increase is the multiplicative factor applied to the backoff on
	// a failure at or above the Target rate. 0 defaults to 2.
	Increase float64
	// Decrease is the additive step subtracted from the backoff on
	// every commit. 0 defaults to 25ms.
	Decrease time.Duration
	// Window is the number of most-recent attempt outcomes over which
	// the failure rate is computed. 0 defaults to 32.
	Window int
	// Target is the windowed failure-rate threshold (0..1) at or above
	// which failures trigger the multiplicative increase. 0 defaults
	// to 0.1 (10% failures).
	Target float64
	// MaxAttempts caps total submissions per logical transaction,
	// first attempt included. 0 = unlimited.
	MaxAttempts int
	// Jitter is the uniform ± fraction applied to each delay.
	// 0 means no jitter.
	Jitter float64
	// HintWeight optionally blends the orderer's backpressure hint
	// (Config.Backpressure) into each delay: the backoff slides from
	// the AIMD level toward Ceiling by HintWeight×hint of the
	// remaining headroom. 0 (the default) ignores the hint entirely —
	// the controller stays purely client-local and byte-identical to
	// PR-3 behaviour. Must be in [0,1]; without Config.Backpressure
	// the hint is always zero and the weight is inert.
	HintWeight float64
}

// withDefaults resolves the documented zero-value defaults.
func (p AdaptivePolicy) withDefaults() AdaptivePolicy {
	if p.Floor == 0 {
		p.Floor = 50 * time.Millisecond
	}
	if p.Ceiling == 0 {
		p.Ceiling = 8 * time.Second
	}
	if p.Increase == 0 {
		p.Increase = 2
	}
	if p.Decrease == 0 {
		p.Decrease = 25 * time.Millisecond
	}
	if p.Window == 0 {
		p.Window = 32
	}
	if p.Target == 0 {
		p.Target = 0.1
	}
	return p
}

// Validate reports configuration errors. The floor/ceiling relation
// is checked against the resolved defaults, so a floor above the
// default 8s ceiling is rejected too.
func (p AdaptivePolicy) Validate() error {
	switch {
	case p.Floor < 0:
		return fmt.Errorf("fabric: adaptive floor must be >= 0, got %v", p.Floor)
	case p.Ceiling < 0:
		return fmt.Errorf("fabric: adaptive ceiling must be >= 0, got %v", p.Ceiling)
	case p.Increase < 0 || (p.Increase > 0 && p.Increase < 1):
		return fmt.Errorf("fabric: adaptive increase factor must be >= 1, got %g", p.Increase)
	case p.Decrease < 0:
		return fmt.Errorf("fabric: adaptive decrease step must be >= 0, got %v", p.Decrease)
	case p.Window < 0:
		return fmt.Errorf("fabric: adaptive window must be >= 0, got %d", p.Window)
	case p.Target < 0 || p.Target > 1:
		return fmt.Errorf("fabric: adaptive target rate must be in [0,1], got %g", p.Target)
	case p.HintWeight < 0 || p.HintWeight > 1:
		return fmt.Errorf("fabric: adaptive hint weight must be in [0,1], got %g", p.HintWeight)
	}
	if d := p.withDefaults(); d.Floor > d.Ceiling {
		return fmt.Errorf("fabric: adaptive floor %v above ceiling %v", d.Floor, d.Ceiling)
	}
	return nil
}

// Name implements RetryPolicy.
func (p AdaptivePolicy) Name() string {
	if p.MaxAttempts > 0 {
		return fmt.Sprintf("adaptive(%d)", p.MaxAttempts)
	}
	return "adaptive"
}

// NextDelay implements RetryPolicy on the bare config value: with no
// per-client state it backs off at the Floor level. Inside a Network
// each client consults its own *adaptiveState instead.
func (p AdaptivePolicy) NextDelay(attempts int, rng *rand.Rand) (time.Duration, bool) {
	if p.MaxAttempts > 0 && attempts >= p.MaxAttempts {
		return 0, false
	}
	d := p.withDefaults()
	return jitterDelay(d.Floor, d.Jitter, rng), true
}

// perClient implements perClientPolicy: every client gets a fresh
// controller seeded at the floor.
func (p AdaptivePolicy) perClient() RetryPolicy {
	d := p.withDefaults()
	return &adaptiveState{cfg: d, cur: d.Floor, window: newOutcomeWindow(d.Window)}
}

// outcomeWindow is a sliding ring over a client's last Size attempt
// outcomes (true = the attempt failed), shared by adaptiveState (AIMD
// failure-rate gating) and gossipState (the local congestion
// estimate) so the two consumers cannot drift apart. The failure
// rate's denominator is the configured size even while the ring is
// still filling: a client's first failure reads as 1/Size, not 100%,
// so early unlucky conflicts cannot alarm a controller on their own.
type outcomeWindow struct {
	size     int
	ring     []bool
	next     int // write cursor once the ring is full
	failures int // count of true entries currently in the ring
}

func newOutcomeWindow(size int) outcomeWindow {
	return outcomeWindow{size: size, ring: make([]bool, 0, size)}
}

// observe slides one attempt outcome into the ring.
func (w *outcomeWindow) observe(failed bool) {
	if w.size == 0 {
		return
	}
	if len(w.ring) < w.size {
		w.ring = append(w.ring, failed)
		if failed {
			w.failures++
		}
		return
	}
	if w.ring[w.next] {
		w.failures--
	}
	w.ring[w.next] = failed
	if failed {
		w.failures++
	}
	w.next = (w.next + 1) % len(w.ring)
}

// failureRate reports the failure fraction over the window.
func (w *outcomeWindow) failureRate() float64 {
	if w.size == 0 {
		return 0
	}
	return float64(w.failures) / float64(w.size)
}

// adaptiveState is one client's AIMD controller.
type adaptiveState struct {
	cfg AdaptivePolicy // defaults resolved
	cur time.Duration  // current backoff level

	// hint is the latest orderer congestion hint, blended into delays
	// when cfg.HintWeight > 0 (zero otherwise).
	hint float64

	// window holds the last cfg.Window outcomes behind FailureRate.
	window outcomeWindow

	// split enables per-class windows (Config.SplitSignal): the AIMD
	// increase gates on the conflict window only, so congestion-class
	// failures (CLIENT_TIMEOUT) stop inflating the backoff a conflict
	// controller is supposed to manage — pacing handles them instead.
	split       bool
	conflictWin outcomeWindow
	congestWin  outcomeWindow
}

// Name implements RetryPolicy.
func (s *adaptiveState) Name() string { return s.cfg.Name() }

// NextDelay implements RetryPolicy: the current AIMD level — slid
// toward the ceiling by the weighted congestion hint when HintWeight
// is set — jittered.
func (s *adaptiveState) NextDelay(attempts int, rng *rand.Rand) (time.Duration, bool) {
	if s.cfg.MaxAttempts > 0 && attempts >= s.cfg.MaxAttempts {
		return 0, false
	}
	d := s.cur
	if w := s.cfg.HintWeight; w > 0 && s.hint > 0 && d < s.cfg.Ceiling {
		d += time.Duration(w * s.hint * float64(s.cfg.Ceiling-d))
		if d > s.cfg.Ceiling {
			d = s.cfg.Ceiling
		}
	}
	return jitterDelay(d, s.cfg.Jitter, rng), true
}

// observeHint implements hintObserver: remember the shared signal for
// the next delay computation. The AIMD state itself is untouched —
// the hint shifts delays, it does not rewrite the controller.
func (s *adaptiveState) observeHint(h float64) { s.hint = h }

// observe implements outcomeObserver: slide the window and run the
// AIMD update.
func (s *adaptiveState) observe(failed bool) {
	s.window.observe(failed)
	if failed {
		if s.FailureRate() >= s.cfg.Target {
			s.increase()
		}
		return
	}
	s.decrease()
}

// enableSplit implements splitAware: outcomes arrive classified via
// observeClass, with the AIMD increase gated on the conflict window.
func (s *adaptiveState) enableSplit() {
	s.split = true
	s.conflictWin = newOutcomeWindow(s.cfg.Window)
	s.congestWin = newOutcomeWindow(s.cfg.Window)
}

// observeClass implements classObserver (split mode): every outcome
// slides both per-class windows, but only a conflict-class failure at
// or above the Target conflict rate runs the multiplicative increase.
// A congestion-class failure (CLIENT_TIMEOUT) leaves the level alone —
// backing off one client cannot drain a backlog; the pacing path
// handles it — and a commit decreases additively as in scalar mode.
func (s *adaptiveState) observeClass(class SignalClass) {
	s.conflictWin.observe(class == SignalConflict)
	s.congestWin.observe(class == SignalCongestion)
	switch class {
	case SignalConflict:
		if s.conflictWin.failureRate() >= s.cfg.Target {
			s.increase()
		}
	case SignalNone:
		s.decrease()
	}
}

// increase runs the multiplicative backoff increase, capped at the
// ceiling.
func (s *adaptiveState) increase() {
	s.cur = time.Duration(float64(s.cur) * s.cfg.Increase)
	if s.cur > s.cfg.Ceiling {
		s.cur = s.cfg.Ceiling
	}
}

// decrease runs the additive backoff decrease, floored.
func (s *adaptiveState) decrease() {
	s.cur -= s.cfg.Decrease
	if s.cur < s.cfg.Floor {
		s.cur = s.cfg.Floor
	}
}

// currentBackoff implements backoffReporter.
func (s *adaptiveState) currentBackoff() time.Duration { return s.cur }

// FailureRate reports the failure fraction over the sliding window
// (see outcomeWindow for the fill-phase denominator convention). In
// split mode it is the sum of the per-class rates — the classes
// partition the failure codes, so the sum equals the scalar rate the
// same outcome stream would have produced.
func (s *adaptiveState) FailureRate() float64 {
	if s.split {
		return s.conflictWin.failureRate() + s.congestWin.failureRate()
	}
	return s.window.failureRate()
}

// jitterDelay applies a uniform ±frac factor to d using the
// simulation rng (no draw when frac is zero, so unjittered policies
// stay rng-neutral).
func jitterDelay(d time.Duration, frac float64, rng *rand.Rand) time.Duration {
	if frac <= 0 || d <= 0 {
		return d
	}
	f := 1 + frac*(2*rng.Float64()-1)
	j := time.Duration(float64(d) * f)
	if j < 0 {
		return 0
	}
	return j
}

// perClientPolicy is implemented by stateful retry policies: the
// network hands every client its own instance so that per-client
// adaptation (AIMD levels, failure windows) never aliases across
// clients.
type perClientPolicy interface {
	RetryPolicy
	perClient() RetryPolicy
}

// outcomeObserver is implemented by policies that want to see every
// attempt outcome of their client — commits as well as the failures
// they are consulted about — mirroring an SDK client reacting to its
// own commit-event stream.
type outcomeObserver interface {
	observe(failed bool)
}

// backoffReporter is implemented by policies whose backoff level
// evolves over the run; the client samples it into the collector after
// every observed outcome so reports can summarize the trajectory.
type backoffReporter interface {
	currentBackoff() time.Duration
}
