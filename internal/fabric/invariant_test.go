package fabric

import (
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/statedb"
)

// chainCodes lists every validation code that may legally appear on
// the chain (ABORTED_IN_ORDERING never reaches a block).
var chainCodes = map[ledger.ValidationCode]bool{
	ledger.Valid:                    true,
	ledger.MVCCConflictIntraBlock:   true,
	ledger.MVCCConflictInterBlock:   true,
	ledger.PhantomReadConflict:      true,
	ledger.EndorsementPolicyFailure: true,
}

// checkConservation asserts the paper's accounting identity on every
// block: valid + MVCC(intra) + MVCC(inter) + phantom + endorsement
// failures sum to the block's transaction count (no transaction is
// lost or double-counted), and the versions committed to the world
// state advance strictly monotonically per key.
func checkConservation(t *testing.T, nw *Network) {
	t.Helper()
	lastWrite := map[string]ledger.Height{}
	blocks := nw.Chain().Blocks()
	if len(blocks) < 2 {
		t.Fatal("run committed no blocks")
	}
	for _, b := range blocks {
		if len(b.Transactions) == 0 {
			continue // genesis
		}
		if len(b.ValidationCodes) != len(b.Transactions) {
			t.Fatalf("block %d: %d codes for %d transactions",
				b.Number, len(b.ValidationCodes), len(b.Transactions))
		}
		perCode := map[ledger.ValidationCode]int{}
		for _, code := range b.ValidationCodes {
			if !chainCodes[code] {
				t.Fatalf("block %d: illegal on-chain code %v", b.Number, code)
			}
			perCode[code]++
		}
		sum := perCode[ledger.Valid] + perCode[ledger.MVCCConflictIntraBlock] +
			perCode[ledger.MVCCConflictInterBlock] + perCode[ledger.PhantomReadConflict] +
			perCode[ledger.EndorsementPolicyFailure]
		if sum != len(b.Transactions) {
			t.Fatalf("block %d: codes sum to %d, %d transactions", b.Number, sum, len(b.Transactions))
		}
		// Valid writes commit at version (block, txNum): per key, the
		// committed version sequence must be strictly increasing.
		for i, tx := range b.Transactions {
			if b.ValidationCodes[i] != ledger.Valid {
				continue
			}
			h := ledger.Height{BlockNum: b.Number, TxNum: uint64(i)}
			for _, w := range tx.RWSet.Writes {
				if prev, ok := lastWrite[w.Key]; ok && prev.Compare(h) >= 0 {
					t.Fatalf("block %d tx %d: key %q version %v does not advance past %v",
						b.Number, i, w.Key, h, prev)
				}
				lastWrite[w.Key] = h
			}
		}
	}
	if len(lastWrite) == 0 {
		t.Fatal("no valid write ever committed")
	}
	// The metrics peer's replica must agree with the chain's final
	// version for keys that still exist (later deletes remove them).
	db := nw.metricsPeer().DB()
	checked := 0
	for key, h := range lastWrite {
		vv := db.Get(key)
		if vv == nil {
			continue // deleted after its last write
		}
		if vv.Version != h {
			t.Fatalf("key %q: replica version %v, chain says %v", key, vv.Version, h)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("replica holds none of the chain's written keys")
	}
}

// TestConservationInvariant checks the accounting identity on a
// contended fire-and-forget run.
func TestConservationInvariant(t *testing.T) {
	cfg := testConfig(11)
	cfg.StripAfterCommit = false // keep rwsets for the walk
	nw, _ := run(t, cfg)
	checkConservation(t, nw)
}

// TestConservationInvariantWithRetries checks the same identity with
// the retry subsystem active: resubmissions are new transactions and
// must obey exactly the same per-block accounting.
func TestConservationInvariantWithRetries(t *testing.T) {
	cfg := retryConfig(12, ImmediateRetry{MaxAttempts: 3})
	cfg.StripAfterCommit = false
	nw, rep := run(t, cfg)
	if rep.RetryAmplification <= 1 {
		t.Fatalf("amplification %.2f: retries did not engage", rep.RetryAmplification)
	}
	checkConservation(t, nw)
}

// TestConservationInvariantLevelDB repeats the walk on the LevelDB
// backend.
func TestConservationInvariantLevelDB(t *testing.T) {
	cfg := testConfig(13)
	cfg.DBKind = statedb.LevelDB
	cfg.StripAfterCommit = false
	nw, _ := run(t, cfg)
	checkConservation(t, nw)
}

// TestConservationInvariantWithGossip runs the per-block conservation
// walk with the gossip signal live at several fanouts: gossip may
// only move *when* transactions are resubmitted, never what the
// validator decides about them — the accounting identity and the
// per-key version monotonicity must hold untouched at any mesh width.
func TestConservationInvariantWithGossip(t *testing.T) {
	for _, fanout := range []int{1, 2, 4} {
		cfg := retryConfig(14, ImmediateRetry{MaxAttempts: 3})
		cfg.StripAfterCommit = false
		cfg.OrdererCosts.PerTx = 25 * time.Millisecond // congest so the signal matters
		cfg.Backpressure = &Backpressure{}
		cfg.Gossip = &Gossip{Fanout: fanout}
		cfg.HintSource = HintGossip
		nw, rep := run(t, cfg)
		if rep.GossipMessages == 0 {
			t.Fatalf("fanout %d: gossip never engaged", fanout)
		}
		checkConservation(t, nw)
	}
}

// hintModes enumerates every retry/coordination mode the lab
// supports — client-local, budgeted, orderer-hinted, gossip-hinted,
// combined, and closed-loop pacing — for the hint-range invariant.
func hintModes() []struct {
	name string
	cfg  func(seed int64) Config
} {
	congest := func(cfg Config) Config {
		cfg.OrdererCosts.PerTx = 25 * time.Millisecond
		return cfg
	}
	return []struct {
		name string
		cfg  func(seed int64) Config
	}{
		{"fire-and-forget", func(s int64) Config { return testConfig(s) }},
		{"immediate", func(s int64) Config { return retryConfig(s, ImmediateRetry{MaxAttempts: 3}) }},
		{"backoff", func(s int64) Config {
			return retryConfig(s, ExponentialBackoff{Initial: 100 * time.Millisecond, Cap: time.Second, MaxAttempts: 4, Jitter: 0.2})
		}},
		{"adaptive", func(s int64) Config { return retryConfig(s, AdaptivePolicy{MaxAttempts: 5, Jitter: 0.2}) }},
		{"budgeted", func(s int64) Config {
			cfg := retryConfig(s, ImmediateRetry{MaxAttempts: 5})
			cfg.RetryBudget = &RetryBudget{RefillPerSec: 1, Burst: 3, DropOnEmpty: true}
			return cfg
		}},
		{"hinted-orderer", func(s int64) Config {
			cfg := congest(retryConfig(s, BackpressurePolicy{MaxAttempts: 5, Jitter: 0.2}))
			cfg.Backpressure = &Backpressure{}
			return cfg
		}},
		{"hinted-orderer-weighted", func(s int64) Config {
			cfg := congest(retryConfig(s, AdaptivePolicy{MaxAttempts: 5, HintWeight: 0.5}))
			cfg.Backpressure = &Backpressure{}
			return cfg
		}},
		{"hinted-gossip", func(s int64) Config {
			cfg := congest(retryConfig(s, BackpressurePolicy{MaxAttempts: 5, Jitter: 0.2}))
			cfg.Backpressure = &Backpressure{}
			cfg.Gossip = &Gossip{}
			cfg.HintSource = HintGossip
			return cfg
		}},
		{"hinted-both", func(s int64) Config {
			cfg := congest(retryConfig(s, BackpressurePolicy{MaxAttempts: 5, Jitter: 0.2}))
			cfg.Backpressure = &Backpressure{}
			cfg.Gossip = &Gossip{}
			cfg.HintSource = HintBoth
			return cfg
		}},
		{"closedloop-paced-gossip", func(s int64) Config {
			cfg := congest(testConfig(s))
			cfg.ClosedLoop = true
			cfg.InFlightPerClient = 8
			cfg.Backpressure = &Backpressure{}
			cfg.Gossip = &Gossip{}
			cfg.HintSource = HintGossip
			return cfg
		}},
		{"split-gossip", func(s int64) Config {
			cfg := congest(retryConfig(s, BackpressurePolicy{MaxAttempts: 5, Jitter: 0.2}))
			cfg.Backpressure = &Backpressure{}
			cfg.Gossip = &Gossip{}
			cfg.HintSource = HintGossip
			cfg.SplitSignal = &SplitSignal{}
			return cfg
		}},
		{"split-both", func(s int64) Config {
			cfg := congest(retryConfig(s, BackpressurePolicy{MaxAttempts: 5, Jitter: 0.2}))
			cfg.Backpressure = &Backpressure{}
			cfg.Gossip = &Gossip{}
			cfg.HintSource = HintBoth
			cfg.SplitSignal = &SplitSignal{}
			return cfg
		}},
		{"split-adaptive-orderer", func(s int64) Config {
			cfg := congest(retryConfig(s, AdaptivePolicy{MaxAttempts: 5, HintWeight: 0.5}))
			cfg.Backpressure = &Backpressure{}
			cfg.Gossip = &Gossip{}
			cfg.HintSource = HintOrderer
			cfg.SplitSignal = &SplitSignal{}
			return cfg
		}},
	}
}

// checkHintRange asserts the shared-signal invariants on one report:
// every hint/estimate trajectory stays inside [0,1], no single pacing
// pause exceeds the configured MaxPause, and subsystems that are off
// leave exactly zero traces in the metrics.
func checkHintRange(t *testing.T, name string, cfg Config, rep metrics.Report) {
	t.Helper()
	inUnit := func(label string, v float64) {
		if v < 0 || v > 1 {
			t.Errorf("%s: %s = %g outside [0,1]", name, label, v)
		}
	}
	inUnit("hint avg", rep.BackpressureHintAvg)
	inUnit("hint max", rep.BackpressureHintMax)
	inUnit("hint final", rep.BackpressureHintFinal)
	inUnit("gossip est avg", rep.GossipEstimateAvg)
	inUnit("gossip est max", rep.GossipEstimateMax)
	inUnit("gossip est final", rep.GossipEstimateFinal)
	inUnit("conflict est avg", rep.ConflictEstAvg)
	inUnit("conflict est max", rep.ConflictEstMax)
	inUnit("conflict est final", rep.ConflictEstFinal)
	inUnit("congestion est avg", rep.CongestEstAvg)
	inUnit("congestion est max", rep.CongestEstMax)
	inUnit("congestion est final", rep.CongestEstFinal)
	if rep.BackpressureHintAvg > rep.BackpressureHintMax || rep.GossipEstimateAvg > rep.GossipEstimateMax {
		t.Errorf("%s: trajectory average above its max", name)
	}
	if rep.ConflictEstAvg > rep.ConflictEstMax || rep.CongestEstAvg > rep.CongestEstMax {
		t.Errorf("%s: split trajectory average above its max", name)
	}
	if cfg.SplitSignal == nil && (rep.ConflictEstAvg != 0 || rep.ConflictEstMax != 0 ||
		rep.ConflictEstFinal != 0 || rep.CongestEstAvg != 0 || rep.CongestEstMax != 0 ||
		rep.CongestEstFinal != 0) {
		t.Errorf("%s: split signal off but component trajectories non-zero: %+v", name, rep)
	}

	if cfg.Backpressure != nil {
		maxPause := cfg.Backpressure.MaxPause
		if maxPause == 0 {
			maxPause = 2 * time.Second // documented default
		}
		if rep.MaxPacedPause > maxPause {
			t.Errorf("%s: single pace %v exceeds MaxPause %v", name, rep.MaxPacedPause, maxPause)
		}
	} else if rep.PacedSubmissions != 0 || rep.TimePaced != 0 || rep.MaxPacedPause != 0 {
		t.Errorf("%s: no pacer configured but paced=%d time=%v max=%v",
			name, rep.PacedSubmissions, rep.TimePaced, rep.MaxPacedPause)
	}
	ordererOn := cfg.Backpressure != nil && cfg.HintSource.resolve() != HintGossip
	if !ordererOn && (rep.BackpressureHintAvg != 0 || rep.BackpressureHintMax != 0 || rep.BackpressureHintFinal != 0) {
		t.Errorf("%s: orderer hints off but trajectory non-zero: %+v", name, rep)
	}
	if cfg.Gossip == nil && (rep.GossipMessages != 0 || rep.GossipMerges != 0 ||
		rep.GossipUses != 0 || rep.GossipEstimateMax != 0 || rep.GossipStalenessMax != 0) {
		t.Errorf("%s: gossip off but metrics non-zero: %+v", name, rep)
	}
	if rep.GossipStalenessAvg > rep.GossipStalenessMax || rep.GossipStalenessMax < 0 {
		t.Errorf("%s: staleness avg %v / max %v inconsistent",
			name, rep.GossipStalenessAvg, rep.GossipStalenessMax)
	}
}

// TestHintRangeInvariantAcrossModes runs every retry/coordination
// mode — gossip modes included — and checks the hint-range property:
// whatever the configuration, observed hints and estimates stay in
// [0,1], pacing pauses respect MaxPause, and disabled subsystems
// report exactly zero.
func TestHintRangeInvariantAcrossModes(t *testing.T) {
	for _, mode := range hintModes() {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			cfg := mode.cfg(21)
			_, rep := run(t, cfg)
			checkHintRange(t, mode.name, cfg, rep)
		})
	}
}
