package fabric

import (
	"testing"

	"repro/internal/ledger"
	"repro/internal/statedb"
)

// chainCodes lists every validation code that may legally appear on
// the chain (ABORTED_IN_ORDERING never reaches a block).
var chainCodes = map[ledger.ValidationCode]bool{
	ledger.Valid:                    true,
	ledger.MVCCConflictIntraBlock:   true,
	ledger.MVCCConflictInterBlock:   true,
	ledger.PhantomReadConflict:      true,
	ledger.EndorsementPolicyFailure: true,
}

// checkConservation asserts the paper's accounting identity on every
// block: valid + MVCC(intra) + MVCC(inter) + phantom + endorsement
// failures sum to the block's transaction count (no transaction is
// lost or double-counted), and the versions committed to the world
// state advance strictly monotonically per key.
func checkConservation(t *testing.T, nw *Network) {
	t.Helper()
	lastWrite := map[string]ledger.Height{}
	blocks := nw.Chain().Blocks()
	if len(blocks) < 2 {
		t.Fatal("run committed no blocks")
	}
	for _, b := range blocks {
		if len(b.Transactions) == 0 {
			continue // genesis
		}
		if len(b.ValidationCodes) != len(b.Transactions) {
			t.Fatalf("block %d: %d codes for %d transactions",
				b.Number, len(b.ValidationCodes), len(b.Transactions))
		}
		perCode := map[ledger.ValidationCode]int{}
		for _, code := range b.ValidationCodes {
			if !chainCodes[code] {
				t.Fatalf("block %d: illegal on-chain code %v", b.Number, code)
			}
			perCode[code]++
		}
		sum := perCode[ledger.Valid] + perCode[ledger.MVCCConflictIntraBlock] +
			perCode[ledger.MVCCConflictInterBlock] + perCode[ledger.PhantomReadConflict] +
			perCode[ledger.EndorsementPolicyFailure]
		if sum != len(b.Transactions) {
			t.Fatalf("block %d: codes sum to %d, %d transactions", b.Number, sum, len(b.Transactions))
		}
		// Valid writes commit at version (block, txNum): per key, the
		// committed version sequence must be strictly increasing.
		for i, tx := range b.Transactions {
			if b.ValidationCodes[i] != ledger.Valid {
				continue
			}
			h := ledger.Height{BlockNum: b.Number, TxNum: uint64(i)}
			for _, w := range tx.RWSet.Writes {
				if prev, ok := lastWrite[w.Key]; ok && prev.Compare(h) >= 0 {
					t.Fatalf("block %d tx %d: key %q version %v does not advance past %v",
						b.Number, i, w.Key, h, prev)
				}
				lastWrite[w.Key] = h
			}
		}
	}
	if len(lastWrite) == 0 {
		t.Fatal("no valid write ever committed")
	}
	// The metrics peer's replica must agree with the chain's final
	// version for keys that still exist (later deletes remove them).
	db := nw.metricsPeer().DB()
	checked := 0
	for key, h := range lastWrite {
		vv := db.Get(key)
		if vv == nil {
			continue // deleted after its last write
		}
		if vv.Version != h {
			t.Fatalf("key %q: replica version %v, chain says %v", key, vv.Version, h)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("replica holds none of the chain's written keys")
	}
}

// TestConservationInvariant checks the accounting identity on a
// contended fire-and-forget run.
func TestConservationInvariant(t *testing.T) {
	cfg := testConfig(11)
	cfg.StripAfterCommit = false // keep rwsets for the walk
	nw, _ := run(t, cfg)
	checkConservation(t, nw)
}

// TestConservationInvariantWithRetries checks the same identity with
// the retry subsystem active: resubmissions are new transactions and
// must obey exactly the same per-block accounting.
func TestConservationInvariantWithRetries(t *testing.T) {
	cfg := retryConfig(12, ImmediateRetry{MaxAttempts: 3})
	cfg.StripAfterCommit = false
	nw, rep := run(t, cfg)
	if rep.RetryAmplification <= 1 {
		t.Fatalf("amplification %.2f: retries did not engage", rep.RetryAmplification)
	}
	checkConservation(t, nw)
}

// TestConservationInvariantLevelDB repeats the walk on the LevelDB
// backend.
func TestConservationInvariantLevelDB(t *testing.T) {
	cfg := testConfig(13)
	cfg.DBKind = statedb.LevelDB
	cfg.StripAfterCommit = false
	nw, _ := run(t, cfg)
	checkConservation(t, nw)
}
