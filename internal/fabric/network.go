package fabric

import (
	"fmt"
	"time"

	"repro/internal/chaincode"
	"repro/internal/consensus"
	"repro/internal/costmodel"
	"repro/internal/fabcrypto"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/statedb"
	"repro/internal/workload"
)

// Network is a fully wired simulated Fabric deployment. A deployment
// spans Config.Channels channels: each channel owns its own ordering
// pipeline, validator, hash chain and per-peer state replica (indexed
// by channel everywhere below), while peers, clients and the
// consensus substrate are shared across channels exactly like a real
// Fabric network joins one peer set to many channels over one Kafka
// cluster or Raft node set. Single-channel runs use index 0
// throughout and behave bit-for-bit like the historical deployment.
type Network struct {
	cfg Config

	eng      *sim.Engine
	net      *netem.Model
	msp      *fabcrypto.MSP
	pol      *policy.Policy
	orgs     []string
	peers    []*Peer
	clients  []*Client
	cohorts  []*Cohort
	orderers []*OrderingService
	vals     []*validator
	chains   []*ledger.Chain
	col      *metrics.Collector
	// channels is the resolved channel count (>= 1).
	channels int

	dbCosts costmodel.DBCosts
	variant Variant
	txSeq   uint64

	// retry is the normalized resubmission policy (never nil).
	retry RetryPolicy
	// bp is the resolved backpressure config (defaults applied), nil
	// when Config.Backpressure is unset — the subsystem is then fully
	// inert: the orderer computes no hints and clients never pace.
	bp *Backpressure
	// gossip is the resolved gossip config (defaults applied), nil
	// when Config.Gossip is unset or the run does not track outcomes —
	// the subsystem is then fully inert: no rounds are scheduled and
	// no rng is drawn.
	gossip *Gossip
	// hintSrc is the resolved hint producer (Config.HintSource; the
	// zero value resolves to the orderer, the PR-4 behaviour).
	hintSrc HintSource
	// split is the resolved split-signal mode (CongestLatency
	// defaulted against the block timeout), nil when Config.SplitSignal
	// is unset or the run does not track outcomes — the scalar signal
	// path then runs byte-identically to builds without the split.
	split *SplitSignal
	// faults is the resolved fault schedule (scenario expanded into
	// events), nil when Config.Faults is unset — the subsystem is then
	// fully inert: no events are scheduled, no rng is drawn, and the
	// lifecycle state of every node stays NodeUp forever.
	faults *Faults
	// savedDBCosts holds the pre-window cost profile during a slowdb
	// fault window.
	savedDBCosts costmodel.DBCosts
	// tracking reports whether clients track pending transactions and
	// receive commit events — true when a real retry policy or the
	// closed-loop mode is configured. When false the commit-event
	// plumbing is fully inert and runs behave exactly like the
	// paper's fire-and-forget clients.
	tracking bool
	// drivers is the full client-driver list — exact clients or
	// cohorts, whichever the config selects — in start order. It is
	// also the gossip mesh.
	drivers []ClientDriver
	// driversByName resolves a transaction's ClientID to its driver
	// for commit-event delivery.
	driversByName map[string]ClientDriver
}

// NewNetwork validates the config and builds the deployment: MSP
// identities, genesis world state fanned out to every peer replica on
// every channel, one consenter and ordering service per channel, and
// the client drivers.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Variant == nil {
		cfg.Variant = Vanilla{}
	}
	cfg.Variant.Adjust(&cfg)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LAN == (netem.Link{}) {
		cfg.LAN = netem.DefaultLAN()
	}

	retry := cfg.Retry
	if retry == nil {
		retry = NoRetry{}
	}
	_, noRetry := retry.(NoRetry)
	nw := &Network{
		cfg:           cfg,
		eng:           sim.NewEngine(cfg.Seed),
		msp:           fabcrypto.NewMSP(fmt.Sprintf("hyperlab-%d", cfg.Seed)),
		col:           metrics.NewCollector(),
		channels:      cfg.channels(),
		dbCosts:       costmodel.ForKind(cfg.DBKind),
		variant:       cfg.Variant,
		retry:         retry,
		tracking:      cfg.ClosedLoop || !noRetry,
		driversByName: map[string]ClientDriver{},
	}
	if cfg.Backpressure != nil {
		b := cfg.Backpressure.withDefaults()
		nw.bp = &b
	}
	nw.hintSrc = cfg.HintSource.resolve()
	if cfg.Gossip != nil && nw.tracking {
		g := cfg.Gossip.withDefaults()
		nw.gossip = &g
	}
	if cfg.SplitSignal != nil && nw.tracking {
		s := cfg.SplitSignal.withDefaults(cfg.BlockTimeout)
		nw.split = &s
	}
	nw.net = netem.New(nw.eng, cfg.LAN)
	nw.applySpeedFactor()

	for i := 0; i < cfg.Orgs; i++ {
		nw.orgs = append(nw.orgs, fabcrypto.OrgName(i))
	}
	nw.pol = policy.Build(cfg.Policy, nw.orgs)

	// Genesis: run Init once, apply at height 0, clone per replica.
	genesis := statedb.New(cfg.DBKind, cfg.Seed)
	stub := chaincode.NewStub(genesis)
	if err := cfg.Chaincode.Init(stub); err != nil {
		return nil, fmt.Errorf("fabric: chaincode init: %w", err)
	}
	batch := &statedb.UpdateBatch{}
	for i, w := range stub.RWSet().Writes {
		h := ledger.Height{BlockNum: 0, TxNum: uint64(i)}
		if w.IsDelete {
			batch.Delete(w.Key, h)
		} else {
			batch.Put(w.Key, w.Value, h)
		}
	}
	if err := genesis.ApplyUpdates(batch, 0); err != nil {
		return nil, err
	}

	// Each channel anchors its own hash chain with a genesis block 0.
	// Channel replica seeds stride by a constant far larger than any
	// peer count so channel 0 keeps the historical seeds exactly.
	const channelSeedStride = 1_000_000
	for ch := 0; ch < nw.channels; ch++ {
		chain := ledger.NewChain()
		gb := &ledger.Block{Number: 0, Channel: ch}
		gb.Hash = gb.ComputeHash()
		if err := chain.Append(gb); err != nil {
			return nil, err
		}
		nw.chains = append(nw.chains, chain)
	}

	// Peers, with one state replica per channel.
	for o := 0; o < cfg.Orgs; o++ {
		org := nw.orgs[o]
		for p := 0; p < cfg.PeersPerOrg; p++ {
			seed := cfg.Seed + int64(len(nw.peers)) + 100
			dbs := make([]statedb.VersionedDB, nw.channels)
			for ch := range dbs {
				dbs[ch] = genesis.Clone(seed + int64(ch)*channelSeedStride)
			}
			peer := newPeer(nw, org, fabcrypto.PeerName(org, p), dbs)
			if cfg.DelayOrg == o {
				nw.net.Inject(peer.name, cfg.DelayLink)
			}
			nw.peers = append(nw.peers, peer)
		}
	}
	for ch := 0; ch < nw.channels; ch++ {
		nw.vals = append(nw.vals,
			newValidator(nw, genesis.Clone(cfg.Seed+99+int64(ch)*channelSeedStride)))
	}

	// One ordering service per channel, each with its own consenter
	// instance. Consensus node names are fixed per kind ("kafka0",
	// "raft0", ...), so all channels share the consensus substrate's
	// network locations — like many Fabric channels backed by one
	// Kafka cluster or one Raft node set.
	for ch := 0; ch < nw.channels; ch++ {
		var cons consensus.Consenter
		switch cfg.Consensus {
		case "solo":
			cons = consensus.NewSolo(nw.eng, cfg.OrdererCosts.ConsensusDelay)
		case "kafka":
			kcfg := consensus.DefaultKafkaConfig()
			kcfg.Brokers = cfg.Orderers
			if kcfg.MinISR > kcfg.Brokers {
				kcfg.MinISR = kcfg.Brokers
			}
			cons = consensus.NewKafka(nw.eng, nw.net, kcfg)
		case "raft":
			rcfg := consensus.DefaultRaftConfig()
			rcfg.Nodes = cfg.Orderers
			cons = consensus.NewRaft(nw.eng, nw.net, rcfg)
		}
		nw.orderers = append(nw.orderers, newOrderingService(nw, cons, ch))
	}

	// Client drivers: exact per-client simulation when the cohort size
	// is 1, otherwise cohorts of CohortSize members (the last cohort
	// takes the remainder).
	if size := cfg.cohortSize(); size == 1 {
		for c := 0; c < cfg.Clients; c++ {
			cl := newClient(nw, c)
			nw.clients = append(nw.clients, cl)
			nw.drivers = append(nw.drivers, cl)
			nw.driversByName[cl.name] = cl
		}
	} else {
		for first, idx := 0, 0; first < cfg.Clients; idx++ {
			n := size
			if rest := cfg.Clients - first; n > rest {
				n = rest
			}
			co := newCohort(nw, idx, first, n)
			nw.cohorts = append(nw.cohorts, co)
			nw.drivers = append(nw.drivers, co)
			nw.driversByName[co.name] = co
			first += n
		}
	}

	// Fault schedule last: the topology is known, so scenarios expand
	// against the real peer/org/channel counts. The target rng is
	// seed-derived but separate from the engine stream; with
	// Config.Faults nil this block is skipped entirely and the run is
	// byte-identical to a build without the subsystem.
	if cfg.Faults != nil {
		f := cfg.Faults.resolve(cfg.Seed, cfg.Duration, len(nw.peers), cfg.Orgs, nw.channels)
		nw.faults = &f
		nw.scheduleFaults()
	}
	return nw, nil
}

// deliverOutcome sends a commit (or early-abort) event for tx back to
// the submitting driver over the network, like a peer's block-event
// stream notifying a subscribed SDK client. The event carries the
// channel it happened on and that channel's congestion hint (stamped
// on the block, or the live value for early aborts); without
// Config.Backpressure the hint is always zero and clients ignore it.
// It is a no-op unless the run tracks outcomes (retry policy or
// closed-loop mode), so the default fire-and-forget configuration
// pays no extra events and no extra rng draws.
func (nw *Network) deliverOutcome(src string, tx *ledger.Transaction, code ledger.ValidationCode, hint float64, channel int) {
	if !nw.tracking {
		return
	}
	cl := nw.driversByName[tx.ClientID]
	if cl == nil {
		return
	}
	nw.net.Send(src, cl.Name(), func() { cl.onOutcome(tx.ID, code, hint, channel) })
}

// channelOf routes an invocation to its home channel by hashing its
// first argument (FNV-1a) — in the bundled chaincodes that argument
// names the primary key, so a key's transactions always meet on the
// same channel and cross-channel MVCC conflicts cannot arise except
// through the explicit CrossChannel legs. Invocations without
// arguments hash the function name. Single-channel runs skip the hash
// entirely.
func (nw *Network) channelOf(inv workload.Invocation) int {
	if nw.channels == 1 {
		return 0
	}
	key := inv.Function
	if len(inv.Args) > 0 {
		key = inv.Args[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(nw.channels))
}

// ordererHints reports whether the ordering services compute and
// publish congestion hints: backpressure is configured and the hint
// source includes the orderer. With HintSource "gossip" the orderer
// stays fully out of the signal path — blocks carry a zero hint and
// no hint samples are recorded — so any coordination effect is
// attributable to the clients sharing their own estimates.
func (nw *Network) ordererHints() bool { return nw.bp != nil && nw.hintSrc.usesOrderer() }

// applySpeedFactor scales fixed per-block costs for the cluster size.
func (nw *Network) applySpeedFactor() {
	f := nw.cfg.SpeedFactor
	if f == 1 {
		return
	}
	scale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) / f)
	}
	nw.cfg.PeerCosts.BlockBase = scale(nw.cfg.PeerCosts.BlockBase)
	nw.cfg.OrdererCosts.BlockCut = scale(nw.cfg.OrdererCosts.BlockCut)
	nw.cfg.OrdererCosts.PerTx = scale(nw.cfg.OrdererCosts.PerTx)
	// PerDeliver is per-peer network fan-out, not CPU: it does not
	// shrink with a beefier cluster — the point of §5.3.1.
}

// Engine exposes the simulation engine (tests and failure injection).
func (nw *Network) Engine() *sim.Engine { return nw.eng }

// Netem exposes the network model (tests and failure injection).
func (nw *Network) Netem() *netem.Model { return nw.net }

// Chain returns channel 0's canonical ledger (the metrics peer's
// copy).
func (nw *Network) Chain() *ledger.Chain { return nw.chains[0] }

// Chains returns every channel's canonical ledger, indexed by
// channel.
func (nw *Network) Chains() []*ledger.Chain { return nw.chains }

// Orderer exposes channel 0's ordering service (adaptive controllers,
// tests, failure injection).
func (nw *Network) Orderer() *OrderingService { return nw.orderers[0] }

// Orderers returns every channel's ordering service, indexed by
// channel.
func (nw *Network) Orderers() []*OrderingService { return nw.orderers }

// Faults returns the resolved fault schedule (scenario expanded into
// concrete events), or nil when fault injection is off.
func (nw *Network) Faults() *Faults { return nw.faults }

// Collector returns the metrics collector.
func (nw *Network) Collector() *metrics.Collector { return nw.col }

// Peers returns all peers.
func (nw *Network) Peers() []*Peer { return nw.peers }

// Clients returns the exact per-client drivers. Empty in cohort mode
// (Config.CohortSize > 1) — use Drivers for the mode-independent
// view.
func (nw *Network) Clients() []*Client { return nw.clients }

// Drivers returns every client driver — exact clients or cohorts — in
// start order.
func (nw *Network) Drivers() []ClientDriver { return nw.drivers }

// metricsPeer is the peer whose commits define the canonical chain and
// latency measurements (the first peer of the first org).
func (nw *Network) metricsPeer() *Peer { return nw.peers[0] }

// peerOf returns org's i'th peer.
func (nw *Network) peerOf(org string, i int) *Peer {
	for _, p := range nw.peers {
		if p.org == org {
			if i == 0 {
				return p
			}
			i--
		}
	}
	panic(fmt.Sprintf("fabric: no peer %d in org %s", i, org))
}

// nextTxID allocates a unique transaction id.
func (nw *Network) nextTxID(clientID int) string {
	nw.txSeq++
	return fmt.Sprintf("tx%08d-c%02d", nw.txSeq, clientID)
}

// Run executes the experiment: clients send for cfg.Duration, then the
// network drains for up to cfg.Drain, and the report is computed.
func (nw *Network) Run() metrics.Report {
	for _, d := range nw.drivers {
		d.start()
	}
	nw.eng.RunUntil(sim.Time(nw.cfg.Duration + nw.cfg.Drain))
	return nw.col.Report()
}
