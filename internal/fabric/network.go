package fabric

import (
	"fmt"
	"time"

	"repro/internal/chaincode"
	"repro/internal/consensus"
	"repro/internal/costmodel"
	"repro/internal/fabcrypto"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/statedb"
)

// Network is a fully wired simulated Fabric deployment.
type Network struct {
	cfg Config

	eng     *sim.Engine
	net     *netem.Model
	msp     *fabcrypto.MSP
	pol     *policy.Policy
	orgs    []string
	peers   []*Peer
	clients []*Client
	orderer *OrderingService
	val     *validator
	chain   *ledger.Chain
	col     *metrics.Collector

	dbCosts costmodel.DBCosts
	variant Variant
	txSeq   uint64

	// retry is the normalized resubmission policy (never nil).
	retry RetryPolicy
	// bp is the resolved backpressure config (defaults applied), nil
	// when Config.Backpressure is unset — the subsystem is then fully
	// inert: the orderer computes no hints and clients never pace.
	bp *Backpressure
	// gossip is the resolved gossip config (defaults applied), nil
	// when Config.Gossip is unset or the run does not track outcomes —
	// the subsystem is then fully inert: no rounds are scheduled and
	// no rng is drawn.
	gossip *Gossip
	// hintSrc is the resolved hint producer (Config.HintSource; the
	// zero value resolves to the orderer, the PR-4 behaviour).
	hintSrc HintSource
	// tracking reports whether clients track pending transactions and
	// receive commit events — true when a real retry policy or the
	// closed-loop mode is configured. When false the commit-event
	// plumbing is fully inert and runs behave exactly like the
	// paper's fire-and-forget clients.
	tracking bool
	// clientsByName resolves a transaction's ClientID to its client
	// for commit-event delivery.
	clientsByName map[string]*Client
}

// NewNetwork validates the config and builds the deployment: MSP
// identities, genesis world state fanned out to every peer replica,
// the consenter, and the ordering service.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Variant == nil {
		cfg.Variant = Vanilla{}
	}
	cfg.Variant.Adjust(&cfg)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LAN == (netem.Link{}) {
		cfg.LAN = netem.DefaultLAN()
	}

	retry := cfg.Retry
	if retry == nil {
		retry = NoRetry{}
	}
	_, noRetry := retry.(NoRetry)
	nw := &Network{
		cfg:           cfg,
		eng:           sim.NewEngine(cfg.Seed),
		msp:           fabcrypto.NewMSP(fmt.Sprintf("hyperlab-%d", cfg.Seed)),
		chain:         ledger.NewChain(),
		col:           metrics.NewCollector(),
		dbCosts:       costmodel.ForKind(cfg.DBKind),
		variant:       cfg.Variant,
		retry:         retry,
		tracking:      cfg.ClosedLoop || !noRetry,
		clientsByName: map[string]*Client{},
	}
	if cfg.Backpressure != nil {
		b := cfg.Backpressure.withDefaults()
		nw.bp = &b
	}
	nw.hintSrc = cfg.HintSource.resolve()
	if cfg.Gossip != nil && nw.tracking {
		g := cfg.Gossip.withDefaults()
		nw.gossip = &g
	}
	nw.net = netem.New(nw.eng, cfg.LAN)
	nw.applySpeedFactor()

	for i := 0; i < cfg.Orgs; i++ {
		nw.orgs = append(nw.orgs, fabcrypto.OrgName(i))
	}
	nw.pol = policy.Build(cfg.Policy, nw.orgs)

	// Genesis: run Init once, apply at height 0, clone per replica.
	genesis := statedb.New(cfg.DBKind, cfg.Seed)
	stub := chaincode.NewStub(genesis)
	if err := cfg.Chaincode.Init(stub); err != nil {
		return nil, fmt.Errorf("fabric: chaincode init: %w", err)
	}
	batch := &statedb.UpdateBatch{}
	for i, w := range stub.RWSet().Writes {
		h := ledger.Height{BlockNum: 0, TxNum: uint64(i)}
		if w.IsDelete {
			batch.Delete(w.Key, h)
		} else {
			batch.Put(w.Key, w.Value, h)
		}
	}
	if err := genesis.ApplyUpdates(batch, 0); err != nil {
		return nil, err
	}

	// Genesis block 0 anchors the hash chain.
	gb := &ledger.Block{Number: 0}
	gb.Hash = gb.ComputeHash()
	if err := nw.chain.Append(gb); err != nil {
		return nil, err
	}

	// Peers.
	for o := 0; o < cfg.Orgs; o++ {
		org := nw.orgs[o]
		for p := 0; p < cfg.PeersPerOrg; p++ {
			peer := newPeer(nw, org, fabcrypto.PeerName(org, p),
				genesis.Clone(cfg.Seed+int64(len(nw.peers))+100))
			if cfg.DelayOrg == o {
				nw.net.Inject(peer.name, cfg.DelayLink)
			}
			nw.peers = append(nw.peers, peer)
		}
	}
	nw.val = newValidator(nw, genesis.Clone(cfg.Seed+99))

	// Ordering service with the configured consenter.
	var cons consensus.Consenter
	switch cfg.Consensus {
	case "solo":
		cons = consensus.NewSolo(nw.eng, cfg.OrdererCosts.ConsensusDelay)
	case "kafka":
		kcfg := consensus.DefaultKafkaConfig()
		kcfg.Brokers = cfg.Orderers
		if kcfg.MinISR > kcfg.Brokers {
			kcfg.MinISR = kcfg.Brokers
		}
		cons = consensus.NewKafka(nw.eng, nw.net, kcfg)
	case "raft":
		rcfg := consensus.DefaultRaftConfig()
		rcfg.Nodes = cfg.Orderers
		cons = consensus.NewRaft(nw.eng, nw.net, rcfg)
	}
	nw.orderer = newOrderingService(nw, cons)

	// Clients.
	for c := 0; c < cfg.Clients; c++ {
		cl := newClient(nw, c)
		nw.clients = append(nw.clients, cl)
		nw.clientsByName[cl.name] = cl
	}
	return nw, nil
}

// deliverOutcome sends a commit (or early-abort) event for tx back to
// the submitting client over the network, like a peer's block-event
// stream notifying a subscribed SDK client. The event carries the
// orderer's congestion hint (stamped on the block, or the live value
// for early aborts); without Config.Backpressure the hint is always
// zero and clients ignore it. It is a no-op unless the run tracks
// outcomes (retry policy or closed-loop mode), so the default
// fire-and-forget configuration pays no extra events and no extra rng
// draws.
func (nw *Network) deliverOutcome(src string, tx *ledger.Transaction, code ledger.ValidationCode, hint float64) {
	if !nw.tracking {
		return
	}
	cl := nw.clientsByName[tx.ClientID]
	if cl == nil {
		return
	}
	nw.net.Send(src, cl.name, func() { cl.onOutcome(tx.ID, code, hint) })
}

// ordererHints reports whether the ordering service computes and
// publishes congestion hints: backpressure is configured and the hint
// source includes the orderer. With HintSource "gossip" the orderer
// stays fully out of the signal path — blocks carry a zero hint and
// no hint samples are recorded — so any coordination effect is
// attributable to the clients sharing their own estimates.
func (nw *Network) ordererHints() bool { return nw.bp != nil && nw.hintSrc.usesOrderer() }

// applySpeedFactor scales fixed per-block costs for the cluster size.
func (nw *Network) applySpeedFactor() {
	f := nw.cfg.SpeedFactor
	if f == 1 {
		return
	}
	scale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) / f)
	}
	nw.cfg.PeerCosts.BlockBase = scale(nw.cfg.PeerCosts.BlockBase)
	nw.cfg.OrdererCosts.BlockCut = scale(nw.cfg.OrdererCosts.BlockCut)
	nw.cfg.OrdererCosts.PerTx = scale(nw.cfg.OrdererCosts.PerTx)
	// PerDeliver is per-peer network fan-out, not CPU: it does not
	// shrink with a beefier cluster — the point of §5.3.1.
}

// Engine exposes the simulation engine (tests and failure injection).
func (nw *Network) Engine() *sim.Engine { return nw.eng }

// Netem exposes the network model (tests and failure injection).
func (nw *Network) Netem() *netem.Model { return nw.net }

// Chain returns the canonical ledger (the metrics peer's copy).
func (nw *Network) Chain() *ledger.Chain { return nw.chain }

// Orderer exposes the ordering service (adaptive controllers, tests,
// failure injection).
func (nw *Network) Orderer() *OrderingService { return nw.orderer }

// Collector returns the metrics collector.
func (nw *Network) Collector() *metrics.Collector { return nw.col }

// Peers returns all peers.
func (nw *Network) Peers() []*Peer { return nw.peers }

// Clients returns all clients.
func (nw *Network) Clients() []*Client { return nw.clients }

// metricsPeer is the peer whose commits define the canonical chain and
// latency measurements (the first peer of the first org).
func (nw *Network) metricsPeer() *Peer { return nw.peers[0] }

// peerOf returns org's i'th peer.
func (nw *Network) peerOf(org string, i int) *Peer {
	for _, p := range nw.peers {
		if p.org == org {
			if i == 0 {
				return p
			}
			i--
		}
	}
	panic(fmt.Sprintf("fabric: no peer %d in org %s", i, org))
}

// nextTxID allocates a unique transaction id.
func (nw *Network) nextTxID(clientID int) string {
	nw.txSeq++
	return fmt.Sprintf("tx%08d-c%02d", nw.txSeq, clientID)
}

// Run executes the experiment: clients send for cfg.Duration, then the
// network drains for up to cfg.Drain, and the report is computed.
func (nw *Network) Run() metrics.Report {
	for _, c := range nw.clients {
		c.start()
	}
	nw.eng.RunUntil(sim.Time(nw.cfg.Duration + nw.cfg.Drain))
	return nw.col.Report()
}
