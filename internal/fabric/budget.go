package fabric

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// RetryBudget caps the rate at which one client may resubmit failed
// transactions, independently of which RetryPolicy decides the backoff
// schedule. Each client owns a token bucket: a resubmission consumes
// one token, tokens refill continuously at RefillPerSec (in virtual
// time), and the bucket never holds more than Burst tokens. First
// submissions are never charged — the budget throttles only the extra
// load that retries add.
//
// When the bucket is empty the behaviour depends on DropOnEmpty:
//
//   - false (the default): the retry is *deferred* — the bucket lends
//     the token and the resubmission waits until the loan is repaid by
//     the refill stream, on top of whatever backoff the policy chose.
//     Deferred retries serialize: each waits for its own token, so a
//     burst of failures drains into the network at RefillPerSec.
//   - true: the retry is *dropped* — the logical transaction is
//     abandoned immediately and counted as a budget exhaustion (and as
//     a given-up job) in the report.
//
// The budget is the congestion-control half of the retry subsystem:
// policies shape *when* an individual transaction comes back, the
// budget bounds *how much* duplicate work a misbehaving policy (or a
// pathological workload such as DV's phantom-conflict storm) can
// inject.
type RetryBudget struct {
	// RefillPerSec is the token refill rate in tokens per second of
	// virtual time. 0 defaults to 1; negative is a validation error.
	RefillPerSec float64
	// Burst is the bucket capacity and the initial fill, in tokens.
	// 0 defaults to 1; negative is a validation error.
	Burst float64
	// DropOnEmpty selects drop semantics (abandon the job) instead of
	// the default defer semantics (wait for a token) when the bucket
	// is empty.
	DropOnEmpty bool

	// Adaptive calibrates the budget to the workload instead of
	// trusting one fixed number to fit every chaincode: a conflict-bound
	// storm (DV's phantom conflicts) that finds the bucket empty doubles
	// the refill rate, capped at MaxRefillPerSec, with the bucket
	// capacity scaling along (Burst × rate/RefillPerSec) so the raised
	// rate can actually be banked against the bursty block-commit
	// arrival of failures; the raised rate relaxes exponentially back
	// toward the configured base with a 10 virtual-second half-life
	// once the storm subsides. The rule is driven purely by take-time
	// bucket state, elapsed virtual time and the outcome's SignalClass,
	// so it draws no rng and stays deterministic. Congestion-class
	// demand (CLIENT_TIMEOUT) never raises the rate: granting more
	// retry budget to a backlogged network is exactly the wrong
	// response — pacing, not budget, handles congestion.
	Adaptive bool

	// MaxRefillPerSec caps the adaptive refill rate. 0 defaults to
	// 64 × RefillPerSec; negative, or positive but below the (resolved)
	// base rate, is a validation error. Ignored without Adaptive.
	MaxRefillPerSec float64
}

// withDefaults resolves the documented zero-value defaults.
func (b RetryBudget) withDefaults() RetryBudget {
	if b.RefillPerSec == 0 {
		b.RefillPerSec = 1
	}
	if b.Burst == 0 {
		b.Burst = 1
	}
	return b
}

// Validate reports configuration errors.
func (b RetryBudget) Validate() error {
	if b.RefillPerSec < 0 {
		return fmt.Errorf("fabric: retry budget refill rate must be >= 0, got %g", b.RefillPerSec)
	}
	if b.Burst < 0 {
		return fmt.Errorf("fabric: retry budget burst must be >= 0, got %g", b.Burst)
	}
	if b.MaxRefillPerSec < 0 {
		return fmt.Errorf("fabric: retry budget max refill rate must be >= 0, got %g", b.MaxRefillPerSec)
	}
	if base := b.withDefaults().RefillPerSec; b.MaxRefillPerSec > 0 && b.MaxRefillPerSec < base {
		return fmt.Errorf("fabric: retry budget max refill rate %g below base rate %g", b.MaxRefillPerSec, base)
	}
	return nil
}

// Name labels the budget in experiment tables, e.g. "budget(1/s,b3)",
// "budget(2/s,b5,drop)" or "budget(1/s,b3,drop,adapt)".
func (b RetryBudget) Name() string {
	b = b.withDefaults()
	mode := ""
	if b.DropOnEmpty {
		mode = ",drop"
	}
	if b.Adaptive {
		mode += ",adapt"
	}
	return fmt.Sprintf("budget(%g/s,b%g%s)", b.RefillPerSec, b.Burst, mode)
}

// tokenBucket is the per-client budget state. It operates in virtual
// time and is driven only from simulation events, so it needs no
// locking and stays deterministic.
type tokenBucket struct {
	rate   float64 // tokens per second (current; adaptive mode moves it)
	burst  float64 // capacity
	drop   bool
	tokens float64  // may go negative in defer mode (borrowed tokens)
	last   sim.Time // time of the last refill

	// Adaptive calibration (RetryBudget.Adaptive): rate moves between
	// base and maxRate per the take-time rule in take.
	adaptive bool
	base     float64 // configured refill rate, the relaxation target
	maxRate  float64 // adaptive rate cap
}

// newTokenBucket builds a full bucket from a (defaulted) config.
func newTokenBucket(b RetryBudget) *tokenBucket {
	b = b.withDefaults()
	tb := &tokenBucket{rate: b.RefillPerSec, burst: b.Burst, tokens: b.Burst, drop: b.DropOnEmpty,
		adaptive: b.Adaptive, base: b.RefillPerSec, maxRate: b.MaxRefillPerSec}
	if tb.maxRate <= 0 {
		tb.maxRate = 64 * tb.base
	}
	return tb
}

// adaptiveRelaxHalfLife is the half-life (virtual seconds) at which an
// adaptive bucket's raised refill rate decays back toward its base: a
// persistent conflict storm re-doubles the rate far faster than the
// decay erodes it, while a storm that ends lets the rate relax within
// a few tens of seconds. A per-take relax rule (halve on a full
// bucket) was tried first and misreads success as overshoot: once the
// raised rate absorbs the storm the bucket is full at every take, and
// the rate collapses while the storm still rages.
const adaptiveRelaxHalfLife = 10.0

// cap is the bucket's current capacity. In adaptive mode the capacity
// scales with the calibrated rate (burst × rate/base): failures arrive
// in bursts at block-commit instants, so a raised refill rate is
// useless unless the bucket can bank it between storms — with a fixed
// cap the doubled rate tops the bucket up in a blink and the next
// storm still drops everything past the configured burst.
func (tb *tokenBucket) cap() float64 {
	if tb.adaptive && tb.base > 0 {
		return tb.burst * tb.rate / tb.base
	}
	return tb.burst
}

// refill accrues tokens for the virtual time elapsed since the last
// call, capped at the bucket capacity. In adaptive mode it also
// relaxes a raised rate exponentially toward the base (tokens accrue
// at the pre-decay rate for the elapsed slice — a deterministic
// overestimate of at most one decay step).
func (tb *tokenBucket) refill(now sim.Time) {
	if now > tb.last {
		dt := time.Duration(now - tb.last).Seconds()
		tb.tokens += dt * tb.rate
		if tb.adaptive && tb.rate > tb.base {
			tb.rate = tb.base + (tb.rate-tb.base)*math.Pow(0.5, dt/adaptiveRelaxHalfLife)
		}
		if c := tb.cap(); tb.tokens > c {
			tb.tokens = c
		}
		tb.last = now
	}
}

// take charges one token at virtual time now, for a retry demanded by
// an outcome of the given signal class. ok=false means the retry must
// be dropped — the caller records it as a budget exhaustion, never as
// a deferral, and no token is consumed. A positive wait means the
// retry is deferred: the token was lent and becomes available only
// wait from now.
//
// In adaptive mode the bucket recalibrates its refill rate first:
// conflict-class demand on an empty bucket doubles the rate (capped at
// maxRate) — the base rate is undersized for this workload's failure
// volume — while the raised rate relaxes back toward base on a fixed
// half-life (see refill). Congestion-class demand never raises the
// rate (see RetryBudget.Adaptive). The rate change applies from now
// on; it never retroactively refills, so determinism and the burst
// cap hold.
func (tb *tokenBucket) take(now sim.Time, class SignalClass) (wait time.Duration, ok bool) {
	tb.refill(now)
	if tb.adaptive && tb.tokens < 1 && class == SignalConflict {
		tb.rate *= 2
		if tb.rate > tb.maxRate {
			tb.rate = tb.maxRate
		}
	}
	if tb.tokens < 1 && (tb.drop || tb.rate <= 0) {
		// Drop mode refuses on an empty bucket by design. Defer mode
		// refuses too when there is no refill stream to repay a loan
		// (rate <= 0, unreachable through Config but guarded here):
		// lending would park the retry forever, so the outcome must
		// read as an exhaustion drop, not an open-ended deferral.
		return 0, false
	}
	tb.tokens--
	if tb.tokens >= 0 {
		return 0, true
	}
	return time.Duration(-tb.tokens / tb.rate * float64(time.Second)), true
}

// level reports the current token level at virtual time now
// (diagnostics and tests).
func (tb *tokenBucket) level(now sim.Time) float64 {
	tb.refill(now)
	return tb.tokens
}
