package fabric

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// RetryBudget caps the rate at which one client may resubmit failed
// transactions, independently of which RetryPolicy decides the backoff
// schedule. Each client owns a token bucket: a resubmission consumes
// one token, tokens refill continuously at RefillPerSec (in virtual
// time), and the bucket never holds more than Burst tokens. First
// submissions are never charged — the budget throttles only the extra
// load that retries add.
//
// When the bucket is empty the behaviour depends on DropOnEmpty:
//
//   - false (the default): the retry is *deferred* — the bucket lends
//     the token and the resubmission waits until the loan is repaid by
//     the refill stream, on top of whatever backoff the policy chose.
//     Deferred retries serialize: each waits for its own token, so a
//     burst of failures drains into the network at RefillPerSec.
//   - true: the retry is *dropped* — the logical transaction is
//     abandoned immediately and counted as a budget exhaustion (and as
//     a given-up job) in the report.
//
// The budget is the congestion-control half of the retry subsystem:
// policies shape *when* an individual transaction comes back, the
// budget bounds *how much* duplicate work a misbehaving policy (or a
// pathological workload such as DV's phantom-conflict storm) can
// inject.
type RetryBudget struct {
	// RefillPerSec is the token refill rate in tokens per second of
	// virtual time. 0 defaults to 1; negative is a validation error.
	RefillPerSec float64
	// Burst is the bucket capacity and the initial fill, in tokens.
	// 0 defaults to 1; negative is a validation error.
	Burst float64
	// DropOnEmpty selects drop semantics (abandon the job) instead of
	// the default defer semantics (wait for a token) when the bucket
	// is empty.
	DropOnEmpty bool
}

// withDefaults resolves the documented zero-value defaults.
func (b RetryBudget) withDefaults() RetryBudget {
	if b.RefillPerSec == 0 {
		b.RefillPerSec = 1
	}
	if b.Burst == 0 {
		b.Burst = 1
	}
	return b
}

// Validate reports configuration errors.
func (b RetryBudget) Validate() error {
	if b.RefillPerSec < 0 {
		return fmt.Errorf("fabric: retry budget refill rate must be >= 0, got %g", b.RefillPerSec)
	}
	if b.Burst < 0 {
		return fmt.Errorf("fabric: retry budget burst must be >= 0, got %g", b.Burst)
	}
	return nil
}

// Name labels the budget in experiment tables, e.g. "budget(1/s,b3)"
// or "budget(2/s,b5,drop)".
func (b RetryBudget) Name() string {
	b = b.withDefaults()
	mode := ""
	if b.DropOnEmpty {
		mode = ",drop"
	}
	return fmt.Sprintf("budget(%g/s,b%g%s)", b.RefillPerSec, b.Burst, mode)
}

// tokenBucket is the per-client budget state. It operates in virtual
// time and is driven only from simulation events, so it needs no
// locking and stays deterministic.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // capacity
	drop   bool
	tokens float64  // may go negative in defer mode (borrowed tokens)
	last   sim.Time // time of the last refill
}

// newTokenBucket builds a full bucket from a (defaulted) config.
func newTokenBucket(b RetryBudget) *tokenBucket {
	b = b.withDefaults()
	return &tokenBucket{rate: b.RefillPerSec, burst: b.Burst, tokens: b.Burst, drop: b.DropOnEmpty}
}

// refill accrues tokens for the virtual time elapsed since the last
// call, capped at the burst size.
func (tb *tokenBucket) refill(now sim.Time) {
	if now > tb.last {
		tb.tokens += time.Duration(now-tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
}

// take charges one token at virtual time now. ok=false means the
// retry must be dropped — the caller records it as a budget
// exhaustion, never as a deferral, and no token is consumed. A
// positive wait means the retry is deferred: the token was lent and
// becomes available only wait from now.
func (tb *tokenBucket) take(now sim.Time) (wait time.Duration, ok bool) {
	tb.refill(now)
	if tb.tokens < 1 && (tb.drop || tb.rate <= 0) {
		// Drop mode refuses on an empty bucket by design. Defer mode
		// refuses too when there is no refill stream to repay a loan
		// (rate <= 0, unreachable through Config but guarded here):
		// lending would park the retry forever, so the outcome must
		// read as an exhaustion drop, not an open-ended deferral.
		return 0, false
	}
	tb.tokens--
	if tb.tokens >= 0 {
		return 0, true
	}
	return time.Duration(-tb.tokens / tb.rate * float64(time.Second)), true
}

// level reports the current token level at virtual time now
// (diagnostics and tests).
func (tb *tokenBucket) level(now sim.Time) float64 {
	tb.refill(now)
	return tb.tokens
}
