package fabric

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
)

// faultConfig is retryConfig (backoff retries, so outcome tracking is
// on) with a fault schedule.
func faultConfig(seed int64, f *Faults) Config {
	cfg := retryConfig(seed, ExponentialBackoff{
		Initial: 200 * time.Millisecond, Cap: 2 * time.Second,
		MaxAttempts: 5, Jitter: 0.2,
	})
	cfg.Faults = f
	return cfg
}

// TestFaultScheduleDeterminism pins the subsystem to the repo's core
// guarantee: the same seed reproduces the same faulted run exactly —
// crash windows, replay, deadlines, the lot.
func TestFaultScheduleDeterminism(t *testing.T) {
	mk := func() Config { return faultConfig(3, &Faults{Scenario: "crash"}) }
	nwA, repA := run(t, mk())
	nwB, repB := run(t, mk())
	a := fingerprint(nwA, repA)
	b := fingerprint(nwB, repB)
	if a != b {
		t.Errorf("same seed diverged under the crash scenario:\n a: %s\n b: %s", a, b)
	}
	if repA.FaultWindows != 2 || repA.NodeCrashes != 2 {
		t.Errorf("crash scenario opened %d windows / %d crashes, want 2/2",
			repA.FaultWindows, repA.NodeCrashes)
	}
}

// TestPeerCrashRecovery crashes one endorsing peer for a window and
// checks the lifecycle contract: downtime is accounted, the peer
// replays the ledger suffix it missed on restart (a recovery with a
// positive latency), it ends the run up, and the chain still verifies.
func TestPeerCrashRecovery(t *testing.T) {
	cfg := faultConfig(4, &Faults{
		Events: []FaultEvent{
			{Kind: FaultCrashPeer, At: 5 * time.Second, For: 5 * time.Second, Target: 3},
		},
		EndorseTimeout: time.Second,
	})
	nw, rep := run(t, cfg)

	if rep.NodeCrashes != 1 || rep.NodeDowntime != 5*time.Second {
		t.Errorf("crashes=%d downtime=%v, want 1 crash with 5s scheduled downtime",
			rep.NodeCrashes, rep.NodeDowntime)
	}
	if rep.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1 (the peer must have missed blocks)", rep.Recoveries)
	}
	if rep.RecoveryAvg <= 0 || rep.RecoveryMax < rep.RecoveryAvg {
		t.Errorf("recovery avg=%v max=%v, want positive replay latency", rep.RecoveryAvg, rep.RecoveryMax)
	}
	p := nw.peers[3]
	if p.State() != NodeUp {
		t.Errorf("peer ended the run %v, want up", p.State())
	}
	// The replayed peer holds the same committed height as the rest.
	for _, other := range nw.peers {
		if other.committedBlocks != p.committedBlocks {
			t.Errorf("peer %s committed %d blocks, restarted peer %d — replay incomplete",
				other.name, other.committedBlocks, p.committedBlocks)
		}
	}
	if err := nw.Chain().Verify(); err != nil {
		t.Errorf("chain verification after crash/replay: %v", err)
	}
}

// TestOrdererCrashSubmitTimeouts crashes the ordering service for a
// window: envelopes submitted into the outage vanish with the pending
// batch, so the clients' submission deadline is what rescues them.
func TestOrdererCrashSubmitTimeouts(t *testing.T) {
	nw, rep := run(t, faultConfig(5, &Faults{
		Events: []FaultEvent{
			{Kind: FaultCrashOrderer, At: 5 * time.Second, For: 5 * time.Second},
		},
		SubmitTimeout: time.Second,
	}))
	if rep.NodeCrashes != 1 {
		t.Errorf("crashes = %d, want 1", rep.NodeCrashes)
	}
	if rep.SubmitTimeouts == 0 {
		t.Error("no submission timeouts during a 5s orderer outage")
	}
	if nw.Orderer().State() != NodeUp {
		t.Errorf("orderer ended the run %v, want up", nw.Orderer().State())
	}
	// Chain continuity: the restarted service continued the same chain.
	if err := nw.Chain().Verify(); err != nil {
		t.Errorf("chain verification after orderer crash: %v", err)
	}
	if rep.Blocks == 0 || rep.Committed == 0 {
		t.Error("nothing committed around the outage")
	}
}

// TestPartitionEndorseTimeouts cuts org 1 off: endorsement policies
// needing that org can no longer be satisfied inside the window, so
// the endorsement deadline fires and the attempts feed the retry path.
func TestPartitionEndorseTimeouts(t *testing.T) {
	_, rep := run(t, faultConfig(6, &Faults{
		Events: []FaultEvent{
			{Kind: FaultPartition, At: 5 * time.Second, For: 6 * time.Second, Target: 1},
		},
		EndorseTimeout: time.Second,
	}))
	if rep.FaultWindows != 1 {
		t.Errorf("fault windows = %d, want 1", rep.FaultWindows)
	}
	if rep.EndorseTimeouts == 0 {
		t.Error("no endorsement timeouts during a 6s partition of org 1")
	}
	if rep.NodeCrashes != 0 || rep.Recoveries != 0 {
		t.Errorf("a partition is not a crash: crashes=%d recoveries=%d",
			rep.NodeCrashes, rep.Recoveries)
	}
}

// TestSlowDBRegimeRaisesLatency compares a healthy run against the
// slowdb scenario (every state-database cost ×4 for 40%% of the run):
// average commit latency must rise, and the regime must lift cleanly
// (the window count says it was applied, determinism says reverting
// restored the exact cost model).
func TestSlowDBRegimeRaisesLatency(t *testing.T) {
	_, healthy := run(t, faultConfig(7, nil))
	_, slow := run(t, faultConfig(7, &Faults{Scenario: "slowdb"}))
	if slow.FaultWindows != 1 {
		t.Fatalf("slowdb windows = %d, want 1", slow.FaultWindows)
	}
	if slow.AvgLatency <= healthy.AvgLatency {
		t.Errorf("slowdb latency %v <= healthy %v, want a visible slowdown",
			slow.AvgLatency, healthy.AvgLatency)
	}
	if slow.NodeCrashes != 0 || slow.EndorseTimeouts != 0 {
		t.Errorf("slowdb scenario should not crash nodes or arm deadlines: %d crashes, %d etos",
			slow.NodeCrashes, slow.EndorseTimeouts)
	}
}

// TestStragglerRegime smokes the transient straggler: one peer's links
// carry an extra 100ms±10ms for half the run. The run must stay
// deterministic and the window accounted.
func TestStragglerRegime(t *testing.T) {
	mk := func() Config { return faultConfig(8, &Faults{Scenario: "straggler"}) }
	nwA, repA := run(t, mk())
	nwB, repB := run(t, mk())
	if repA.FaultWindows != 1 {
		t.Errorf("straggler windows = %d, want 1", repA.FaultWindows)
	}
	if a, b := fingerprint(nwA, repA), fingerprint(nwB, repB); a != b {
		t.Errorf("straggler run diverged on the same seed:\n a: %s\n b: %s", a, b)
	}
	_, healthy := run(t, faultConfig(8, nil))
	if repA.AvgLatency <= healthy.AvgLatency {
		t.Errorf("straggler latency %v <= healthy %v", repA.AvgLatency, healthy.AvgLatency)
	}
}

// TestOrphanedTransactions forces orphans with a submission deadline
// far below the commit latency: clients give up on attempts that then
// commit as valid anyway, and the collector counts each one.
func TestOrphanedTransactions(t *testing.T) {
	_, rep := run(t, faultConfig(9, &Faults{
		Events: []FaultEvent{
			// A nominal window keeps the schedule non-empty; the orphans
			// come from the deadline alone.
			{Kind: FaultSlowDB, At: 5 * time.Second, For: 2 * time.Second, Factor: 2},
		},
		SubmitTimeout: 200 * time.Millisecond,
	}))
	if rep.SubmitTimeouts == 0 {
		t.Fatal("a 200ms submission deadline under ~500ms commit latency never fired")
	}
	if rep.OrphanedTxs == 0 {
		t.Error("no orphans: transactions abandoned client-side must still commit chain-side")
	}
}

// TestMultiChannelOrdererCrash crosses faults with sharding: on a
// 3-channel deployment, crashing ordering service 1 must leave the
// other channels cutting blocks, and every chain must still verify.
func TestMultiChannelOrdererCrash(t *testing.T) {
	cfg := faultConfig(10, &Faults{
		Events: []FaultEvent{
			{Kind: FaultCrashOrderer, At: 5 * time.Second, For: 5 * time.Second, Target: 1},
		},
		SubmitTimeout: time.Second,
	})
	cfg.Channels = 3
	nw, rep := run(t, cfg)

	if rep.NodeCrashes != 1 {
		t.Errorf("crashes = %d, want 1", rep.NodeCrashes)
	}
	for ch, chain := range nw.Chains() {
		if err := chain.Verify(); err != nil {
			t.Errorf("channel %d chain verification: %v", ch, err)
		}
		if chain.TxCount() == 0 {
			t.Errorf("channel %d committed nothing", ch)
		}
	}
	for i, os := range nw.Orderers() {
		if os.State() != NodeUp {
			t.Errorf("orderer %d ended the run %v, want up", i, os.State())
		}
	}
}

// TestValidateFaultsKnobs table-tests Config.Validate over the fault
// knobs, including the unit-bearing messages, in the style of
// TestValidateScaleKnobs.
func TestValidateFaultsKnobs(t *testing.T) {
	window := func(ev FaultEvent) *Faults { return &Faults{Events: []FaultEvent{ev}} }
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring; "" = must validate
	}{
		{"nil faults", func(c *Config) { c.Faults = nil }, ""},
		{"crash scenario", func(c *Config) { c.Faults = &Faults{Scenario: "crash"} }, ""},
		{"explicit window", func(c *Config) {
			c.Faults = window(FaultEvent{Kind: FaultCrashPeer, At: time.Second, For: time.Second})
		}, ""},
		{"deadlines only", func(c *Config) {
			c.Faults = &Faults{EndorseTimeout: time.Second, SubmitTimeout: 4 * time.Second}
		}, ""},
		{"unknown scenario", func(c *Config) { c.Faults = &Faults{Scenario: "meteor"} },
			`unknown fault scenario "meteor"`},
		{"scenario plus events", func(c *Config) {
			c.Faults = &Faults{Scenario: "crash",
				Events: []FaultEvent{{Kind: FaultCrashPeer, At: 0, For: time.Second}}}
		}, "mutually exclusive"},
		{"negative endorse timeout", func(c *Config) {
			c.Faults = &Faults{EndorseTimeout: -time.Second}
		}, "endorsement timeout must be >= 0, got -1s"},
		{"negative submit timeout", func(c *Config) {
			c.Faults = &Faults{SubmitTimeout: -2 * time.Second}
		}, "submission timeout must be >= 0, got -2s"},
		{"unknown kind", func(c *Config) {
			c.Faults = window(FaultEvent{Kind: "meltdown", At: 0, For: time.Second})
		}, `unknown fault kind "meltdown"`},
		{"negative window start", func(c *Config) {
			c.Faults = window(FaultEvent{Kind: FaultCrashPeer, At: -time.Second, For: time.Second})
		}, "window start must be >= 0, got -1s"},
		{"zero window length", func(c *Config) {
			c.Faults = window(FaultEvent{Kind: FaultCrashPeer, At: time.Second})
		}, "window length must be positive, got 0s"},
		{"negative target", func(c *Config) {
			c.Faults = window(FaultEvent{Kind: FaultCrashPeer, At: 0, For: time.Second, Target: -1})
		}, "target index must be >= 0, got -1"},
		{"loss probability zero", func(c *Config) {
			c.Faults = window(FaultEvent{Kind: FaultLoss, At: 0, For: time.Second})
		}, "loss probability must be in (0,1], got 0"},
		{"loss probability above one", func(c *Config) {
			c.Faults = window(FaultEvent{Kind: FaultLoss, At: 0, For: time.Second, Factor: 1.5})
		}, "loss probability must be in (0,1], got 1.5"},
		{"slowdb below one", func(c *Config) {
			c.Faults = window(FaultEvent{Kind: FaultSlowDB, At: 0, For: time.Second, Factor: 0.5})
		}, "slowdb cost multiplier must be >= 1, got 0.5"},
		{"straggler no delay", func(c *Config) {
			c.Faults = window(FaultEvent{Kind: FaultStraggler, At: 0, For: time.Second})
		}, "straggler extra delay must be positive, got 0s"},
		{"straggler jitter beyond base", func(c *Config) {
			c.Faults = window(FaultEvent{Kind: FaultStraggler, At: 0, For: time.Second,
				Extra: netem.Link{Base: 10 * time.Millisecond, Jitter: 20 * time.Millisecond}})
		}, "straggler jitter must be in [0, base 10ms], got 20ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(1)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected validation error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validation accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseFaults table-tests the -faults grammar.
func TestParseFaults(t *testing.T) {
	cases := []struct {
		in      string
		want    *Faults
		wantErr string // substring; "" = must parse
	}{
		{"", nil, ""},
		{"off", nil, ""},
		{"crash", &Faults{Scenario: "crash"}, ""},
		{"chaos", &Faults{Scenario: "chaos"}, ""},
		{"crash-peer:1@5s+10s", &Faults{Events: []FaultEvent{
			{Kind: FaultCrashPeer, At: 5 * time.Second, For: 10 * time.Second, Target: 1},
		}}, ""},
		{"crash-orderer@1s+2s,etimeout=2s,stimeout=4s", &Faults{
			Events: []FaultEvent{
				{Kind: FaultCrashOrderer, At: time.Second, For: 2 * time.Second},
			},
			EndorseTimeout: 2 * time.Second,
			SubmitTimeout:  4 * time.Second,
		}, ""},
		{"loss:2@1s+4s:0.2", &Faults{Events: []FaultEvent{
			{Kind: FaultLoss, At: time.Second, For: 4 * time.Second, Target: 2, Factor: 0.2},
		}}, ""},
		{"loss@1s+4s", &Faults{Events: []FaultEvent{
			{Kind: FaultLoss, At: time.Second, For: 4 * time.Second, Factor: 0.1},
		}}, ""},
		{"slowdb@1s+2s:8", &Faults{Events: []FaultEvent{
			{Kind: FaultSlowDB, At: time.Second, For: 2 * time.Second, Factor: 8},
		}}, ""},
		{"straggler:3@1s+2s:50ms~5ms", &Faults{Events: []FaultEvent{
			{Kind: FaultStraggler, At: time.Second, For: 2 * time.Second, Target: 3,
				Extra: netem.Link{Base: 50 * time.Millisecond, Jitter: 5 * time.Millisecond}},
		}}, ""},
		{"straggler@1s+2s", &Faults{Events: []FaultEvent{
			{Kind: FaultStraggler, At: time.Second, For: 2 * time.Second,
				Extra: netem.Link{Base: 100 * time.Millisecond, Jitter: 10 * time.Millisecond}},
		}}, ""},
		{"bogus", nil, "want kind[:target]@start+dur[:param]"},
		{"crash-peer@5s", nil, "want start+dur"},
		{"crash-peer:x@5s+1s", nil, "fault target"},
		{"crash-peer@5s+1s:3", nil, "takes no parameter"},
		{"loss@1s+2s:nope", nil, "loss probability"},
		{"loss@1s+2s:2", nil, "must be in (0,1]"},
		{"etimeout=fast", nil, "endorsement timeout"},
		{"stimeout=", nil, "submission timeout"},
		{"crash,partition", nil, "want kind[:target]@start+dur[:param]"},
		{",", nil, "empty clause"},
	}
	for _, tc := range cases {
		t.Run(tc.in, func(t *testing.T) {
			got, err := ParseFaults(tc.in)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("ParseFaults(%q) accepted, want error mentioning %q", tc.in, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseFaults(%q): %v", tc.in, err)
			}
			if (got == nil) != (tc.want == nil) {
				t.Fatalf("ParseFaults(%q) = %+v, want %+v", tc.in, got, tc.want)
			}
			if got == nil {
				return
			}
			if got.Scenario != tc.want.Scenario ||
				got.EndorseTimeout != tc.want.EndorseTimeout ||
				got.SubmitTimeout != tc.want.SubmitTimeout ||
				len(got.Events) != len(tc.want.Events) {
				t.Fatalf("ParseFaults(%q) = %+v, want %+v", tc.in, got, tc.want)
			}
			for i := range got.Events {
				if got.Events[i] != tc.want.Events[i] {
					t.Errorf("event %d = %+v, want %+v", i, got.Events[i], tc.want.Events[i])
				}
			}
		})
	}
}

// FuzzFaultSpec fuzzes the -faults parser: it must never panic, and
// anything it accepts must validate and carry a printable name (the
// same contract the CLI relies on).
func FuzzFaultSpec(f *testing.F) {
	for _, seed := range []string{
		"", "off", "crash", "chaos", "slowdb",
		"crash-peer:1@5s+10s,etimeout=2s",
		"partition:1@2s+3s",
		"loss:0@1s+4s:0.2",
		"straggler:2@1s+2s:100ms~10ms",
		"slowdb@1s+2s:4",
		"crash-orderer@1s+2s,stimeout=4s",
		"bogus", "crash-peer@5s", "loss@1s+2s:2", ",", "etimeout=",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		flt, err := ParseFaults(s)
		if err != nil {
			if flt != nil {
				t.Errorf("ParseFaults(%q) returned both a schedule and %v", s, err)
			}
			return
		}
		if flt == nil {
			return // disabled
		}
		if verr := flt.Validate(); verr != nil {
			t.Errorf("ParseFaults(%q) accepted a schedule that fails Validate: %v", s, verr)
		}
		if flt.Name() == "" {
			t.Errorf("ParseFaults(%q): empty schedule name", s)
		}
	})
}
