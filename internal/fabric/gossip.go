package fabric

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// Gossip enables the client-to-client congestion signal
// (Config.Gossip): instead of the ordering service condensing its own
// load into a hint (Config.Backpressure), every client distils its
// *own* outcome stream into a local congestion estimate — the failure
// fraction over a sliding window of its last Window attempt outcomes,
// the same window machinery AdaptivePolicy uses — and periodically
// exchanges that estimate with Fanout sampled peers over the network
// model, like an SDK-side gossip mesh. Estimates merge by
// max-with-decay: a receiver adopts an incoming estimate when its
// age-decayed value exceeds the receiver's current remote view, and
// every adopted estimate fades exponentially (e·exp(−Decay·age)) so
// stale panic cannot pin the fleet at a ceiling forever.
//
// The merged estimate feeds the exact hint path the orderer-driven
// signal uses — pacing by hint×Gain (Config.Backpressure supplies the
// pacer), BackpressurePolicy's Floor→Ceiling slide, and
// AdaptivePolicy.HintWeight blending — so Config.HintSource can swap
// the producer (orderer | gossip | both) without touching any
// consumer. That isolates the ROADMAP's question: does the
// coordination win come from the signal's *source* (the orderer's
// global view) or merely its *sharing* (any common signal)?
//
// Nil (the default) disables the subsystem completely: no gossip
// rounds are scheduled, no rng is drawn, and runs are byte-identical
// to a build without it. Gossip requires outcome tracking (a retry
// policy or closed-loop mode) — without outcomes there is nothing to
// estimate — and is silently inert on fire-and-forget runs, exactly
// like backpressure pacing.
type Gossip struct {
	// Fanout is how many distinct peer clients each client samples per
	// gossip round. 0 defaults to 2; negative is a validation error.
	// A fanout at or above the client count sends to every peer.
	Fanout int
	// Period is the virtual time between one client's gossip rounds.
	// 0 defaults to 500ms; negative is a validation error.
	Period time.Duration
	// Decay is the per-second exponential decay rate applied to a
	// remote estimate's age: value(t) = e·exp(−Decay·age). 0 defaults
	// to 0.5 (half-life ≈ 1.4 s); negative is a validation error.
	Decay float64
	// Window is the number of most-recent attempt outcomes over which
	// the local failure-rate estimate is computed (the denominator is
	// the full window even while filling, like AdaptivePolicy).
	// 0 defaults to 32; negative is a validation error.
	Window int
}

// withDefaults resolves the documented zero-value defaults.
func (g Gossip) withDefaults() Gossip {
	if g.Fanout == 0 {
		g.Fanout = 2
	}
	if g.Period == 0 {
		g.Period = 500 * time.Millisecond
	}
	if g.Decay == 0 {
		g.Decay = 0.5
	}
	if g.Window == 0 {
		g.Window = 32
	}
	return g
}

// Validate reports configuration errors.
func (g Gossip) Validate() error {
	switch {
	case g.Fanout < 0:
		return fmt.Errorf("fabric: gossip fanout must be >= 0, got %d", g.Fanout)
	case g.Period < 0:
		return fmt.Errorf("fabric: gossip period must be >= 0, got %v", g.Period)
	case g.Decay < 0 || math.IsNaN(g.Decay) || math.IsInf(g.Decay, 0):
		return fmt.Errorf("fabric: gossip decay must be a finite rate >= 0, got %g", g.Decay)
	case g.Window < 0:
		return fmt.Errorf("fabric: gossip window must be >= 0, got %d", g.Window)
	}
	return nil
}

// Name labels the signal in experiment tables, e.g. "gossip(f2,500ms,d0.5)".
func (g Gossip) Name() string {
	g = g.withDefaults()
	return fmt.Sprintf("gossip(f%d,%v,d%g)", g.Fanout, g.Period, g.Decay)
}

// ParseGossip parses the CLI syntax for the gossip spec: "off" (or
// "") disables it, "on" enables it with the documented defaults, and
// "fanout:period[:decay]" — e.g. "2:500ms:0.5" — sets the knobs
// explicitly.
func ParseGossip(s string) (*Gossip, error) {
	switch strings.ToLower(s) {
	case "", "off":
		return nil, nil
	case "on", "default":
		return &Gossip{}, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("fabric: gossip %q: want off, on or fanout:period[:decay]", s)
	}
	var g Gossip
	fanout, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, fmt.Errorf("fabric: gossip fanout %q: %w", parts[0], err)
	}
	g.Fanout = fanout
	period, err := time.ParseDuration(parts[1])
	if err != nil {
		return nil, fmt.Errorf("fabric: gossip period %q: %w", parts[1], err)
	}
	g.Period = period
	if len(parts) == 3 {
		decay, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("fabric: gossip decay %q: %w", parts[2], err)
		}
		g.Decay = decay
	}
	return &g, g.Validate()
}

// HintSource selects which producer feeds the congestion hint that
// clients pace by and that the hint-consuming retry policies
// (BackpressurePolicy, AdaptivePolicy.HintWeight) read.
type HintSource string

const (
	// HintOrderer is the PR-4 behaviour and the default (the empty
	// string resolves here): the ordering service's smoothed hint,
	// delivered on commit events. Requires Config.Backpressure for a
	// non-zero signal.
	HintOrderer HintSource = "orderer"
	// HintGossip uses the client-to-client gossip estimate only: the
	// orderer computes no hints at all, so any coordination effect
	// comes purely from clients sharing their own failure views.
	// Requires Config.Gossip.
	HintGossip HintSource = "gossip"
	// HintBoth max-combines the two signals: a client backs off from
	// whichever of the orderer's view and the gossiped fleet view is
	// currently more alarmed.
	HintBoth HintSource = "both"
)

// resolve maps the zero value to the default producer.
func (s HintSource) resolve() HintSource {
	if s == "" {
		return HintOrderer
	}
	return s
}

// usesOrderer reports whether the orderer's hint feeds clients.
func (s HintSource) usesOrderer() bool {
	s = s.resolve()
	return s == HintOrderer || s == HintBoth
}

// usesGossip reports whether the gossip estimate feeds clients.
func (s HintSource) usesGossip() bool {
	s = s.resolve()
	return s == HintGossip || s == HintBoth
}

// Validate reports unknown hint sources.
func (s HintSource) Validate() error {
	switch s.resolve() {
	case HintOrderer, HintGossip, HintBoth:
		return nil
	}
	return fmt.Errorf("fabric: hint source %q: want orderer, gossip or both", string(s))
}

// ParseHintSource parses the CLI syntax for Config.HintSource ("" and
// "orderer" both mean the default orderer producer).
func ParseHintSource(s string) (HintSource, error) {
	src := HintSource(strings.ToLower(s))
	return src.resolve(), src.Validate()
}

// ClampEstimate bounds a congestion estimate to [0,1]; NaN maps to 0
// (no evidence of congestion).
func ClampEstimate(e float64) float64 {
	switch {
	case math.IsNaN(e), e < 0:
		return 0
	case e > 1:
		return 1
	}
	return e
}

// DecayEstimate ages a congestion estimate by age at the given
// per-second decay rate: ClampEstimate(e)·exp(−decay·age). Non-positive
// (or non-finite) decay rates and non-positive ages leave the clamped
// estimate unchanged, so the result is always in [0,1] and never
// exceeds the undecayed value.
func DecayEstimate(e float64, age time.Duration, decayPerSec float64) float64 {
	e = ClampEstimate(e)
	if age <= 0 || decayPerSec <= 0 || math.IsNaN(decayPerSec) {
		return e
	}
	return ClampEstimate(e * math.Exp(-decayPerSec*age.Seconds()))
}

// MergeEstimates is the gossip merge operator: the maximum of the two
// clamped estimates, so a merged view is never less alarmed than
// either input.
func MergeEstimates(a, b float64) float64 {
	a, b = ClampEstimate(a), ClampEstimate(b)
	if a > b {
		return a
	}
	return b
}

// gossipState is one client's view of the gossiped congestion signal:
// the sliding outcome window behind its local estimate, plus the most
// alarmed remote estimate it has adopted (timestamped so it decays).
//
// In split-signal mode (Config.SplitSignal) the scalar window and
// remote view are replaced by a per-class pair: a conflict window and
// a congestion window feed a SplitEstimate whose components merge and
// decay independently. The scalar fields stay untouched in that mode
// and vice versa, so scalar-mode runs are byte-identical to builds
// without the split machinery.
type gossipState struct {
	cfg   Gossip // defaults resolved
	split bool   // two-component mode (Config.SplitSignal)

	// window holds the last cfg.Window outcomes behind the local
	// estimate — the same outcomeWindow ring adaptiveState uses.
	window outcomeWindow

	// remote is the adopted remote estimate as it was worth at
	// remoteAt (the sender's send time); its current value decays from
	// there. hasRemote distinguishes "no estimate yet" from zero.
	remote    float64
	remoteAt  sim.Time
	hasRemote bool

	// Split mode: one window and one adopted remote component per
	// signal class.
	conflictWin outcomeWindow
	congestWin  outcomeWindow
	remoteCflt  remoteComponent
	remoteCngst remoteComponent
}

func newGossipState(cfg Gossip, split bool) *gossipState {
	g := &gossipState{cfg: cfg, split: split, window: newOutcomeWindow(cfg.Window)}
	if split {
		g.conflictWin = newOutcomeWindow(cfg.Window)
		g.congestWin = newOutcomeWindow(cfg.Window)
	}
	return g
}

// observe slides one attempt outcome into the window.
func (g *gossipState) observe(failed bool) { g.window.observe(failed) }

// localRate is the windowed failure fraction (see outcomeWindow for
// the fill-phase denominator convention).
func (g *gossipState) localRate() float64 { return g.window.failureRate() }

// estimate returns the client's current congestion estimate at now —
// the max of the live local failure rate and the age-decayed remote
// view — together with the age of the information that produced it
// (zero when the local window dominates: a client's own outcomes are
// fresh by construction).
func (g *gossipState) estimate(now sim.Time) (val float64, staleness time.Duration) {
	local := g.localRate()
	if !g.hasRemote {
		return ClampEstimate(local), 0
	}
	age := time.Duration(now - g.remoteAt)
	rem := DecayEstimate(g.remote, age, g.cfg.Decay)
	if rem > local {
		return rem, age
	}
	return ClampEstimate(local), 0
}

// merge folds one received estimate (worth value at the sender's
// sentAt) into the state: it is adopted iff its decayed value beats
// the current decayed remote view — max-with-decay. Reports whether
// the remote view advanced.
func (g *gossipState) merge(value float64, sentAt, now sim.Time) bool {
	incoming := DecayEstimate(value, time.Duration(now-sentAt), g.cfg.Decay)
	if g.hasRemote {
		cur := DecayEstimate(g.remote, time.Duration(now-g.remoteAt), g.cfg.Decay)
		if incoming <= cur {
			return false
		}
	} else if incoming <= 0 {
		return false
	}
	g.remote = ClampEstimate(value)
	g.remoteAt = sentAt
	g.hasRemote = true
	return true
}

// remoteComponent is one adopted remote component of the split
// estimate: its value as of the sender's send time, so it decays from
// there. has distinguishes "no estimate yet" from zero.
type remoteComponent struct {
	value float64
	at    sim.Time
	has   bool
}

// decayed returns the component's current value at now and the age of
// the information behind it (zero when nothing was ever adopted).
func (r *remoteComponent) decayed(now sim.Time, decayPerSec float64) (float64, time.Duration) {
	if !r.has {
		return 0, 0
	}
	age := time.Duration(now - r.at)
	return DecayEstimate(r.value, age, decayPerSec), age
}

// merge folds one received component value (worth value at sentAt)
// into the view by max-with-decay, exactly like the scalar merge:
// adopted iff its decayed value beats the current decayed view, and a
// zero is never adopted into an empty view.
func (r *remoteComponent) merge(value float64, sentAt, now sim.Time, decayPerSec float64) bool {
	incoming := DecayEstimate(value, time.Duration(now-sentAt), decayPerSec)
	if r.has {
		cur, _ := r.decayed(now, decayPerSec)
		if incoming <= cur {
			return false
		}
	} else if incoming <= 0 {
		return false
	}
	r.value = ClampEstimate(value)
	r.at = sentAt
	r.has = true
	return true
}

// observeSplit slides one classified attempt outcome into the
// per-class windows (split mode). congested marks latency-based
// congestion evidence — the attempt resolved only after the configured
// CongestLatency threshold, whatever its validation code — so a jammed
// orderer raises the congestion estimate even while commits (slowly)
// succeed and no deadline ever expires.
func (g *gossipState) observeSplit(class SignalClass, congested bool) {
	g.conflictWin.observe(class == SignalConflict)
	g.congestWin.observe(class == SignalCongestion || congested)
}

// splitEstimate returns the client's current two-component estimate at
// now — each component the max of its live local window rate and its
// age-decayed remote view — together with the age of the oldest remote
// information that produced a dominating component (zero when the
// local windows dominate both).
func (g *gossipState) splitEstimate(now sim.Time) (est SplitEstimate, staleness time.Duration) {
	est.Conflict = ClampEstimate(g.conflictWin.failureRate())
	if rem, age := g.remoteCflt.decayed(now, g.cfg.Decay); rem > est.Conflict {
		est.Conflict = rem
		staleness = age
	}
	est.Congestion = ClampEstimate(g.congestWin.failureRate())
	if rem, age := g.remoteCngst.decayed(now, g.cfg.Decay); rem > est.Congestion {
		est.Congestion = rem
		if age > staleness {
			staleness = age
		}
	}
	return est, staleness
}

// mergeSplit folds one received split estimate into the view,
// component by component: a peer's conflict storm can raise only the
// conflict view, its backlog alarm only the congestion view. Reports
// whether either component advanced.
func (g *gossipState) mergeSplit(e SplitEstimate, sentAt, now sim.Time) bool {
	cflt := g.remoteCflt.merge(e.Conflict, sentAt, now, g.cfg.Decay)
	cngst := g.remoteCngst.merge(e.Congestion, sentAt, now, g.cfg.Decay)
	return cflt || cngst
}
