package fabric

import (
	"repro/internal/ledger"
	"repro/internal/sim"
)

// ClientDriver is a client-behavior implementation: one network node
// that drives one or more simulated clients through the
// submit/endorse/order/commit loop. Two implementations exist — the
// exact per-client Client and the state-sharing Cohort — both built
// on the same clientCore machinery, so they differ only in their
// arrival process and in how many simulated clients amortize one
// state object.
//
// The driver list is also the gossip mesh: each driver is one gossip
// participant regardless of how many members it speaks for.
type ClientDriver interface {
	// Name returns the driver's network node name ("client3",
	// "cohort0").
	Name() string
	// Members reports how many simulated clients this driver drives
	// (always 1 for Client).
	Members() int
	// Resubmissions reports how many retry submissions this driver
	// issued (diagnostics).
	Resubmissions() int
	// Pending reports how many attempts are still awaiting an outcome
	// event (diagnostics).
	Pending() int

	// start schedules the driver's arrival process.
	start()
	// onOutcome delivers a commit (or early-abort) event for one
	// transaction id, with the channel's congestion hint.
	onOutcome(txID string, code ledger.ValidationCode, hint float64, channel int)
	// onGossip delivers one peer driver's congestion estimate.
	onGossip(value float64, sentAt sim.Time)
	// onGossipSplit delivers one peer driver's two-component estimate
	// (split-signal mode, Config.SplitSignal).
	onGossipSplit(e SplitEstimate, sentAt sim.Time)
}

var (
	_ ClientDriver = (*Client)(nil)
	_ ClientDriver = (*Cohort)(nil)
)
