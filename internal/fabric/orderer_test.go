package fabric

import (
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/ledger"
	"repro/internal/sim"
)

func TestBlockCutBySize(t *testing.T) {
	nw := harness(t)
	nw.cfg.BlockSize = 3
	nw.orderers[0].blockSize = 3
	for i := 0; i < 7; i++ {
		tx := mkTx(nw, string(rune('a'+i)), &ledger.RWSet{})
		tx.SubmitTime = nw.eng.Now()
		nw.orderers[0].Submit(tx)
	}
	nw.eng.RunUntil(sim.Time(time.Second))
	// 7 txs at size 3: two full blocks, one pending awaiting timeout.
	if nw.orderers[0].blockNum != 2 {
		t.Fatalf("cut %d blocks, want 2", nw.orderers[0].blockNum)
	}
	if len(nw.orderers[0].pending) != 1 {
		t.Fatalf("pending = %d, want 1", len(nw.orderers[0].pending))
	}
	nw.eng.RunUntil(sim.Time(5 * time.Second)) // past the 2s timeout
	if nw.orderers[0].blockNum != 3 {
		t.Fatalf("timeout did not flush the partial block: %d", nw.orderers[0].blockNum)
	}
}

func TestBlockCutByTimeout(t *testing.T) {
	nw := harness(t)
	tx := mkTx(nw, "t", &ledger.RWSet{})
	tx.SubmitTime = nw.eng.Now()
	nw.orderers[0].Submit(tx)
	nw.eng.RunUntil(sim.Time(nw.cfg.BlockTimeout / 2))
	if nw.orderers[0].blockNum != 0 {
		t.Fatal("block cut before timeout")
	}
	nw.eng.RunUntil(sim.Time(nw.cfg.BlockTimeout * 2))
	if nw.orderers[0].blockNum != 1 {
		t.Fatalf("blockNum = %d after timeout, want 1", nw.orderers[0].blockNum)
	}
}

func TestBlockCutByBytes(t *testing.T) {
	nw := harness(t)
	nw.cfg.MaxBlockKB = 1 // 1 KiB cap
	big := make([]byte, 600)
	for i := 0; i < 2; i++ {
		rw := &ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: big}}}
		tx := mkTx(nw, string(rune('a'+i)), rw)
		tx.SubmitTime = nw.eng.Now()
		nw.orderers[0].Submit(tx)
	}
	nw.eng.RunUntil(sim.Time(500 * time.Millisecond))
	// Each ~1 KiB transaction trips the 1 KiB cap on its own: two
	// single-transaction blocks, no waiting for the timeout.
	if nw.orderers[0].blockNum != 2 {
		t.Fatalf("bytes cap did not cut: blockNum = %d", nw.orderers[0].blockNum)
	}
	if len(nw.orderers[0].pending) != 0 {
		t.Fatalf("pending = %d, want 0", len(nw.orderers[0].pending))
	}
}

func TestSetBlockSizeCutsOversizedPending(t *testing.T) {
	nw := harness(t)
	for i := 0; i < 5; i++ {
		tx := mkTx(nw, string(rune('a'+i)), &ledger.RWSet{})
		tx.SubmitTime = nw.eng.Now()
		nw.orderers[0].Submit(tx)
	}
	nw.eng.RunUntil(sim.Time(100 * time.Millisecond))
	if nw.orderers[0].blockNum != 0 {
		t.Fatal("premature cut")
	}
	nw.orderers[0].SetBlockSize(4)
	if nw.orderers[0].blockNum != 1 {
		t.Fatalf("retune did not cut oversized pending batch: %d", nw.orderers[0].blockNum)
	}
	if nw.orderers[0].BlockSize() != 4 {
		t.Fatalf("BlockSize = %d", nw.orderers[0].BlockSize())
	}
	nw.orderers[0].SetBlockSize(0)
	if nw.orderers[0].BlockSize() != 1 {
		t.Fatal("SetBlockSize(0) should clamp to 1")
	}
}

// TestStaleTimeoutAfterEarlierCut drives the timeout/cut interleaving
// of the batch-timer audit: a retune cut consumes the batch an armed
// timer was waiting for, the stale timer must fire as a no-op, and
// the very next transaction must be able to arm a fresh timer and cut
// by timeout.
func TestStaleTimeoutAfterEarlierCut(t *testing.T) {
	nw := harness(t)
	for i := 0; i < 3; i++ {
		tx := mkTx(nw, string(rune('a'+i)), &ledger.RWSet{})
		tx.SubmitTime = nw.eng.Now()
		nw.orderers[0].Submit(tx)
	}
	nw.eng.RunUntil(sim.Time(100 * time.Millisecond))
	if !nw.orderers[0].timerArmed {
		t.Fatal("partial batch did not arm the timeout")
	}
	epoch := nw.orderers[0].timerEpoch
	// Retune below the pending depth: cuts immediately, superseding the
	// armed timer.
	nw.orderers[0].SetBlockSize(2)
	if nw.orderers[0].blockNum != 1 {
		t.Fatalf("retune cut %d blocks, want 1", nw.orderers[0].blockNum)
	}
	if nw.orderers[0].timerArmed || nw.orderers[0].timerEpoch == epoch {
		t.Fatal("cut left the timer armed or the epoch unbumped")
	}
	// Let the stale timer fire: no second cut, nothing re-armed.
	nw.eng.RunUntil(sim.Time(2 * nw.cfg.BlockTimeout))
	if nw.orderers[0].blockNum != 1 {
		t.Fatalf("stale timer cut a block: blockNum = %d", nw.orderers[0].blockNum)
	}
	if nw.orderers[0].timerArmed {
		t.Fatal("stale timer left the service armed")
	}
	// A fresh transaction must arm a fresh timer and flush by timeout.
	tx := mkTx(nw, "z", &ledger.RWSet{})
	tx.SubmitTime = nw.eng.Now()
	nw.orderers[0].Submit(tx)
	nw.eng.RunUntil(nw.eng.Now() + sim.Time(100*time.Millisecond))
	if !nw.orderers[0].timerArmed {
		t.Fatal("new transaction did not re-arm the timeout")
	}
	nw.eng.RunUntil(nw.eng.Now() + sim.Time(2*nw.cfg.BlockTimeout))
	if nw.orderers[0].blockNum != 2 {
		t.Fatalf("re-armed timeout did not cut: blockNum = %d", nw.orderers[0].blockNum)
	}
	if nw.orderers[0].timerArmed {
		t.Fatal("service armed with an empty pending queue after the timeout cut")
	}
}

// TestTimeoutOnDrainedQueueDisarms pins the audit's two invariants
// directly: a timer firing over a drained pending queue (simulated by
// draining pending under a live epoch, a state no current code path
// produces) must neither cut an empty block nor leave the service
// armed-but-idle — a state in which no later arrival would ever start
// a timeout clock.
func TestTimeoutOnDrainedQueueDisarms(t *testing.T) {
	nw := harness(t)
	tx := mkTx(nw, "a", &ledger.RWSet{})
	tx.SubmitTime = nw.eng.Now()
	nw.orderers[0].Submit(tx)
	nw.eng.RunUntil(sim.Time(100 * time.Millisecond))
	if !nw.orderers[0].timerArmed {
		t.Fatal("timer not armed")
	}
	nw.orderers[0].pending = nil
	nw.orderers[0].pendingBytes = 0
	nw.eng.RunUntil(sim.Time(2 * nw.cfg.BlockTimeout))
	if nw.orderers[0].blockNum != 0 {
		t.Fatalf("timeout over a drained queue cut %d blocks, want 0", nw.orderers[0].blockNum)
	}
	if nw.orderers[0].timerArmed {
		t.Fatal("timeout over a drained queue left the service armed-but-idle")
	}
	// The service must still make progress afterwards.
	tx2 := mkTx(nw, "b", &ledger.RWSet{})
	tx2.SubmitTime = nw.eng.Now()
	nw.orderers[0].Submit(tx2)
	nw.eng.RunUntil(nw.eng.Now() + sim.Time(2*nw.cfg.BlockTimeout))
	if nw.orderers[0].blockNum != 1 {
		t.Fatalf("service stalled after the drained-queue timeout: blockNum = %d", nw.orderers[0].blockNum)
	}
}

func TestTxBytesAccounting(t *testing.T) {
	small := &ledger.Transaction{RWSet: &ledger.RWSet{}}
	big := &ledger.Transaction{RWSet: &ledger.RWSet{
		Reads:  []ledger.KVRead{{Key: "a"}, {Key: "b"}},
		Writes: []ledger.KVWrite{{Key: "k", Value: make([]byte, 1000)}},
		RangeQueries: []ledger.RangeQueryInfo{{
			Reads: make([]ledger.KVRead, 100),
		}},
	}}
	if txBytes(big) <= txBytes(small) {
		t.Fatal("txBytes not monotone in payload size")
	}
	if txBytes(small) < 256 {
		t.Fatal("txBytes below header floor")
	}
}

// TestKafkaCrashMidRun injects an orderer (kafka leader) crash during
// a live run: the controller re-elects and the run completes with all
// blocks delivered in order.
func TestKafkaCrashMidRun(t *testing.T) {
	cfg := testConfig(42)
	cfg.Consensus = "kafka"
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kafka := nw.Orderer().Consenter().(*consensus.Kafka)
	nw.Engine().At(sim.Time(5*time.Second), func() {
		kafka.Crash(kafka.Leader())
	})
	rep := nw.Run()
	if rep.Valid == 0 {
		t.Fatal("no valid transactions after leader crash")
	}
	if err := nw.Chain().Verify(); err != nil {
		t.Fatalf("chain broken after failover: %v", err)
	}
	// The 5s election gap shows up as elevated latency.
	if rep.P95Latency < 2*time.Second {
		t.Logf("p95 %v — failover gap absorbed faster than expected", rep.P95Latency)
	}
}

// TestRaftCrashMidRun does the same for the raft consenter.
func TestRaftCrashMidRun(t *testing.T) {
	cfg := testConfig(43)
	cfg.Consensus = "raft"
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raft := nw.Orderer().Consenter().(*consensus.Raft)
	nw.Engine().At(sim.Time(5*time.Second), func() {
		raft.Crash(raft.Leader())
	})
	rep := nw.Run()
	if rep.Valid == 0 {
		t.Fatal("no valid transactions after raft leader crash")
	}
	if err := nw.Chain().Verify(); err != nil {
		t.Fatalf("chain broken after re-election: %v", err)
	}
}

func TestSkipReadOnlySubmission(t *testing.T) {
	cfg := testConfig(44)
	cfg.SkipReadOnlySubmission = true
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := nw.Run()
	if rep.ServedReads == 0 {
		t.Fatal("EHR workload has read-only functions; none were served directly")
	}
	// Served reads never land on the chain.
	if rep.Committed+rep.ServedReads <= rep.Committed {
		t.Fatal("bookkeeping broken")
	}
	base, err := NewNetwork(testConfig(44))
	if err != nil {
		t.Fatal(err)
	}
	baseRep := base.Run()
	if rep.Committed >= baseRep.Committed {
		t.Errorf("skip-read-only committed %d >= baseline %d", rep.Committed, baseRep.Committed)
	}
	t.Logf("baseline %v", baseRep)
	t.Logf("skipRO   %v (+%d served reads)", rep, rep.ServedReads)
}

func TestRateSchedule(t *testing.T) {
	cfg := testConfig(45)
	cfg.RateSchedule = []RatePhase{
		{Duration: 10 * time.Second, Rate: 10},
		{Duration: 10 * time.Second, Rate: 100},
	}
	cfg.Duration = 20 * time.Second
	if got := cfg.RateAt(5 * time.Second); got != 10 {
		t.Fatalf("RateAt(5s) = %v", got)
	}
	if got := cfg.RateAt(15 * time.Second); got != 100 {
		t.Fatalf("RateAt(15s) = %v", got)
	}
	if got := cfg.RateAt(25 * time.Second); got != cfg.Rate {
		t.Fatalf("RateAt past schedule = %v, want fallback %v", got, cfg.Rate)
	}
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := nw.Run()
	// Expected volume ~ 10*10 + 10*100 = 1100 txs.
	if rep.Total < 700 || rep.Total > 1500 {
		t.Errorf("scheduled run produced %d txs, want ~1100", rep.Total)
	}
}
