package fabric

import (
	"time"

	"repro/internal/chaincode"
	"repro/internal/costmodel"
	"repro/internal/fabcrypto"
	"repro/internal/ledger"
	"repro/internal/sim"
	"repro/internal/statedb"
	"repro/internal/workload"
)

// Peer is one Fabric peer: an endorser that simulates transactions on
// its own world-state replica and a committer that validates delivered
// blocks and applies them. Replicas advance independently — the
// transient inconsistency between them during the commit window is the
// root cause of endorsement policy failures (§3.2.1).
type Peer struct {
	nw       *Network
	org      string
	name     string
	identity *fabcrypto.Identity
	// dbs holds one world-state replica per channel the peer has
	// joined (every peer joins every channel), indexed by channel.
	dbs []statedb.VersionedDB

	// busyUntil serializes the committer: blocks are validated and
	// applied one at a time, in delivery order.
	busyUntil sim.Time

	// endorserSlots holds the completion times of the peer's
	// endorsement workers; proposals queue for the earliest slot.
	endorserSlots []sim.Time

	// lagBatch delays replica application by one block when the
	// variant endorses against block snapshots (FabricSharp).
	lagBatch  *statedb.UpdateBatch
	lagHeight uint64

	// committedBlocks counts applied blocks (diagnostics).
	committedBlocks int

	// Lifecycle state (see lifecycle.go; always NodeUp without
	// Config.Faults). epoch increments at every crash: closures
	// scheduled before it — queued endorsements, their responses,
	// in-flight commits — capture the epoch they were created under
	// and die silently when it is stale. inflight tracks blocks
	// delivered but not yet committed; backlog accumulates blocks
	// delivered while crashed (the missed ledger suffix the restart
	// replays). catchup counts replayed blocks still uncommitted
	// during NodeRestarting and recoverStart stamps the restart for
	// the recovery-latency metric.
	state        NodeState
	epoch        uint64
	inflight     []*ledger.Block
	backlog      []*ledger.Block
	catchup      int
	recoverStart sim.Time
}

func newPeer(nw *Network, org, name string, dbs []statedb.VersionedDB) *Peer {
	workers := nw.cfg.PeerCosts.EndorserWorkers
	if workers < 1 {
		workers = 1
	}
	return &Peer{
		nw:            nw,
		org:           org,
		name:          name,
		identity:      nw.msp.Register(org, name),
		dbs:           dbs,
		endorserSlots: make([]sim.Time, workers),
	}
}

// Org returns the peer's organization.
func (p *Peer) Org() string { return p.org }

// Name returns the peer's node name.
func (p *Peer) Name() string { return p.name }

// DB exposes channel 0's replica (tests).
func (p *Peer) DB() statedb.VersionedDB { return p.dbs[0] }

// CommittedBlocks reports how many blocks this replica has applied.
func (p *Peer) CommittedBlocks() int { return p.committedBlocks }

// Endorse simulates the invocation on the local replica of the given
// channel (§2 step 2) and, after the endorsement service time, sends
// the signed read/write set back through respond. Proposals queue for
// one of the peer's endorsement workers — the pool is shared across
// channels, like a real peer's endorser runtime: expensive
// simulations (CouchDB range scans) saturate the pool and the queue
// grows — the §5.1.2 collapse.
func (p *Peer) Endorse(inv workload.Invocation, channel int, respond func(*ledger.Endorsement, error)) {
	if p.state == NodeCrashed {
		// The process is gone; the proposal is silently lost (the
		// client's endorsement deadline is the recovery path).
		return
	}
	// The proposal starts executing when a worker frees up; the
	// snapshot it reads is taken at that point.
	slot := 0
	for i, t := range p.endorserSlots {
		if t < p.endorserSlots[slot] {
			slot = i
		}
	}
	start := p.endorserSlots[slot]
	if now := p.nw.eng.Now(); now > start {
		start = now
	}
	epoch := p.epoch
	run := func() {
		if p.epoch != epoch {
			return // the peer crashed; queued proposals died with it
		}
		stub := chaincode.NewStub(p.dbs[channel])
		err := p.nw.cfg.Chaincode.Invoke(stub, inv.Function, inv.Args)
		var end *ledger.Endorsement
		cost := p.nw.cfg.PeerCosts.EndorseBase
		if err == nil {
			rw := stub.RWSet()
			digest := rw.Digest()
			end = &ledger.Endorsement{
				Org:       p.org,
				PeerID:    p.name,
				RWSet:     rw,
				Signature: p.identity.Sign(digest[:]),
			}
			cost = costmodel.EndorseCost(p.nw.dbCosts, p.nw.cfg.PeerCosts, stub.Trace())
		}
		cost = p.nw.eng.Jittered(cost, p.nw.cfg.PeerCosts.Jitter)
		p.endorserSlots[slot] = p.nw.eng.Now() + sim.Time(cost)
		p.nw.eng.After(cost, func() {
			if p.epoch != epoch {
				return // crashed mid-endorsement; the response is lost
			}
			respond(end, err)
		})
	}
	if start <= p.nw.eng.Now() {
		p.endorserSlots[slot] = p.nw.eng.Now() // claimed; updated in run
		run()
		return
	}
	p.endorserSlots[slot] = start // reserve until the worker frees up
	p.nw.eng.At(start, run)
}

// DeliverBlock enqueues a block from the ordering service. The
// committer is a serial server: validation+commit of block N must
// finish before N+1 starts. The validation outcome itself is computed
// once network-wide (it is deterministic); each peer pays its own
// virtual service time and applies the batch at its own commit time.
func (p *Peer) DeliverBlock(b *ledger.Block) {
	if p.state == NodeCrashed {
		// The deliver stream is reliable (netem.SendOrdered), but the
		// process is not there to commit: the block queues as the
		// missed ledger suffix and the restart replays it.
		p.backlog = append(p.backlog, b)
		return
	}
	res := p.nw.vals[b.Channel].result(b)
	// Jitter applies to the fixed per-block part only: per-transaction
	// work averages out across a block (CLT), so the commit-time skew
	// between replicas — the driver of endorsement policy failures —
	// does not scale with block size (the paper's Fig 9 flatness).
	fixed := costmodel.CommitCost(p.nw.dbCosts, p.nw.cfg.PeerCosts, 0)
	variable := res.validateCost +
		costmodel.CommitCost(p.nw.dbCosts, p.nw.cfg.PeerCosts, res.batch.Len()) - fixed
	service := p.nw.eng.Jittered(fixed, p.nw.cfg.PeerCosts.Jitter) +
		p.nw.eng.Jittered(variable, p.nw.cfg.PeerCosts.VarJitter)

	start := p.busyUntil
	if now := p.nw.eng.Now(); now > start {
		start = now
	}
	done := start + sim.Time(service)
	p.busyUntil = done
	p.inflight = append(p.inflight, b)
	epoch := p.epoch
	p.nw.eng.At(done, func() {
		if p.epoch != epoch {
			return // crashed mid-commit; the block is replayed on restart
		}
		p.inflight = p.inflight[1:]
		p.commit(b, res)
	})
}

// commit applies the block's update batch to the replica and, on the
// metrics peer, appends the canonical block and records metrics.
func (p *Peer) commit(b *ledger.Block, res *valResult) {
	if p.nw.variant.EndorseSnapshotLag() {
		// FabricSharp parallelizes execution and validation with
		// block snapshots: endorsement sees the state as of the
		// previous block boundary (§5.4.1), so the replica applies
		// one block late.
		// Snapshot-lag variants are single-channel only (enforced by
		// Config.Validate), so the scalar lag state always refers to
		// channel 0.
		if p.lagBatch != nil {
			p.dbs[b.Channel].ApplyUpdates(p.lagBatch, p.lagHeight)
		}
		p.lagBatch, p.lagHeight = res.batch, b.Number
	} else {
		p.dbs[b.Channel].ApplyUpdates(res.batch, b.Number)
	}
	p.committedBlocks++
	if p.state == NodeRestarting {
		p.catchup--
		if p.catchup == 0 {
			p.state = NodeUp
			p.nw.col.RecordRecovery(time.Duration(p.nw.eng.Now() - p.recoverStart))
		}
	}

	if p != p.nw.metricsPeer() {
		return
	}
	now := p.nw.eng.Now()
	canonical := &ledger.Block{
		Number:          b.Number,
		PrevHash:        b.PrevHash,
		Hash:            b.Hash,
		Transactions:    b.Transactions,
		Channel:         b.Channel,
		CutTime:         b.CutTime,
		CongestionHint:  b.CongestionHint,
		ValidationCodes: res.codes,
		CommitTime:      now,
	}
	if err := p.nw.chains[b.Channel].Append(canonical); err != nil {
		panic("fabric: canonical chain append: " + err.Error())
	}
	p.nw.col.RecordBlock()
	for i, tx := range b.Transactions {
		p.nw.col.RecordTx(res.codes[i], tx.SubmitTime, now)
		// Commit-event delivery for retry/closed-loop clients: the
		// metrics peer doubles as the event hub every client
		// subscribes to. The block's congestion hint rides along, like
		// metadata in a Fabric block event.
		p.nw.deliverOutcome(p.name, tx, res.codes[i], b.CongestionHint, b.Channel)
		if p.nw.cfg.StripAfterCommit {
			stripTx(tx)
		}
	}
}

// NodeID implements lifecycleNode.
func (p *Peer) NodeID() string { return p.name }

// State reports the peer's lifecycle state.
func (p *Peer) State() NodeState { return p.state }

// crash implements lifecycleNode: the peer process dies. Queued
// endorsements, in-flight responses and scheduled commits all carry
// the pre-crash epoch and die silently; blocks that were delivered
// but not yet committed become the start of the missed ledger suffix
// (the deliver stream keeps appending to it while the peer is down).
func (p *Peer) crash() {
	p.state = NodeCrashed
	p.epoch++
	p.backlog = p.inflight
	p.inflight = nil
}

// restart implements lifecycleNode: the process comes back with its
// replica intact (state databases are durable) and replays the block
// suffix it missed through the normal commit path — validation
// results are memoized network-wide, so the replay is deterministic.
// With missed blocks the peer passes through NodeRestarting until the
// replay commits; with none it is NodeUp immediately.
func (p *Peer) restart() {
	now := p.nw.eng.Now()
	p.busyUntil = now
	for i := range p.endorserSlots {
		p.endorserSlots[i] = now
	}
	backlog := p.backlog
	p.backlog = nil
	if len(backlog) == 0 {
		p.state = NodeUp
		return
	}
	p.state = NodeRestarting
	p.recoverStart = now
	p.catchup = len(backlog)
	for _, b := range backlog {
		p.DeliverBlock(b)
	}
}

// stripTx frees heavy payloads once a transaction is measured: the
// endorsement list and range-query observations can hold thousands of
// reads (DV scans all 1000 voters per vote).
func stripTx(tx *ledger.Transaction) {
	tx.Endorsements = nil
	if tx.RWSet == nil {
		return
	}
	for i := range tx.RWSet.RangeQueries {
		tx.RWSet.RangeQueries[i].Reads = nil
	}
}
