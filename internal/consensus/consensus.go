// Package consensus implements the ordering service's total-order
// broadcast substrates. Fabric 1.4 supports Solo and Kafka; the paper
// uses Kafka because "Solo is not used in production" (§4.2). Raft
// (which replaced Kafka in later Fabric releases) is also provided.
// All three run on the discrete-event engine and deliver submitted
// payloads exactly once, in a single total order, to a registered
// callback.
package consensus

import (
	"time"

	"repro/internal/sim"
)

// Consenter is a total-order broadcast. Submit may be called from any
// component; the commit callback fires once per payload, in order, at
// the virtual time the payload becomes final.
type Consenter interface {
	// Name identifies the protocol ("solo", "kafka", "raft").
	Name() string
	// Submit enqueues a payload for ordering.
	Submit(payload interface{})
	// OnCommit registers the delivery callback. Must be set before
	// the first Submit.
	OnCommit(fn func(payload interface{}))
}

// Solo is the single-node ordering used in development setups: every
// submission commits after a fixed small processing delay.
type Solo struct {
	eng   *sim.Engine
	delay time.Duration
	fn    func(interface{})
}

// NewSolo returns a solo consenter with the given commit delay.
func NewSolo(eng *sim.Engine, delay time.Duration) *Solo {
	return &Solo{eng: eng, delay: delay}
}

// Name implements Consenter.
func (s *Solo) Name() string { return "solo" }

// OnCommit implements Consenter.
func (s *Solo) OnCommit(fn func(interface{})) { s.fn = fn }

// Submit implements Consenter.
func (s *Solo) Submit(payload interface{}) {
	if s.fn == nil {
		panic("consensus: Submit before OnCommit")
	}
	s.eng.After(s.delay, func() { s.fn(payload) })
}
