package consensus

import (
	"fmt"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

// Kafka models the Kafka-backed ordering service the paper deploys
// (§4.2): a broker cluster with one partition leader that appends
// submissions to a replicated log. An entry commits once the in-sync
// replicas have acknowledged it. Broker failure triggers controller
// re-election of a partition leader among the surviving in-sync
// replicas; submissions made during the leadership gap are buffered
// and replayed, preserving total order.
type Kafka struct {
	eng     *sim.Engine
	net     *netem.Model
	fn      func(interface{})
	brokers []*broker
	leader  int
	// minISR is the number of replica acks (including the leader)
	// required to commit.
	minISR int
	// electionDelay is the controller failover time.
	electionDelay time.Duration
	pending       []interface{} // buffered while leaderless
	log           []interface{} // committed entries, for inspection
	nextSeq       uint64
	// holdback reorders ack completions back into submission order.
	holdback  map[uint64]interface{}
	delivered uint64
}

type broker struct {
	id    string
	alive bool
	// lag is this broker's replication latency to the leader.
	lag time.Duration
}

// KafkaConfig tunes the broker cluster.
type KafkaConfig struct {
	Brokers       int
	MinISR        int
	ReplicaLag    time.Duration // mean follower ack latency
	ElectionDelay time.Duration
}

// DefaultKafkaConfig mirrors the paper's three-orderer Kafka setup.
func DefaultKafkaConfig() KafkaConfig {
	return KafkaConfig{
		Brokers:       3,
		MinISR:        2,
		ReplicaLag:    2 * time.Millisecond,
		ElectionDelay: 5 * time.Second,
	}
}

// NewKafka builds the broker cluster.
func NewKafka(eng *sim.Engine, net *netem.Model, cfg KafkaConfig) *Kafka {
	if cfg.Brokers < 1 || cfg.MinISR < 1 || cfg.MinISR > cfg.Brokers {
		panic(fmt.Sprintf("consensus: bad kafka config %+v", cfg))
	}
	k := &Kafka{
		eng: eng, net: net,
		minISR:        cfg.MinISR,
		electionDelay: cfg.ElectionDelay,
		holdback:      map[uint64]interface{}{},
	}
	for i := 0; i < cfg.Brokers; i++ {
		k.brokers = append(k.brokers, &broker{
			id:    fmt.Sprintf("kafka%d", i),
			alive: true,
			lag:   cfg.ReplicaLag,
		})
	}
	return k
}

// Name implements Consenter.
func (k *Kafka) Name() string { return "kafka" }

// OnCommit implements Consenter.
func (k *Kafka) OnCommit(fn func(interface{})) { k.fn = fn }

// Leader returns the current partition leader's broker id, or -1 when
// leaderless.
func (k *Kafka) Leader() int { return k.leader }

// Log returns the committed entries so far.
func (k *Kafka) Log() []interface{} { return k.log }

// Submit implements Consenter: the payload travels to the leader,
// replicates to the ISR, then commits.
func (k *Kafka) Submit(payload interface{}) {
	if k.fn == nil {
		panic("consensus: Submit before OnCommit")
	}
	if k.leader < 0 || !k.brokers[k.leader].alive {
		k.pending = append(k.pending, payload)
		return
	}
	leader := k.brokers[k.leader]
	// Producer -> leader hop.
	k.net.SendOrdered("producer", leader.id, func() {
		if !leader.alive {
			// Lost mid-flight: buffer for the next leader.
			k.pending = append(k.pending, payload)
			return
		}
		// Replication: the commit happens after the (minISR-1)'th
		// follower ack round trip.
		ackDelay := time.Duration(0)
		if k.minISR > 1 {
			ackDelay = k.eng.Jittered(2*leader.lag, 0.3)
		}
		seq := k.nextSeq
		k.nextSeq++
		k.eng.After(ackDelay, func() { k.commit(seq, payload) })
	})
}

// commit delivers entries in sequence order even if ack timers fire
// out of order.
func (k *Kafka) commit(seq uint64, payload interface{}) {
	// Sequence numbers are assigned in submission order at the
	// leader; deliveries with jittered ack delays could overtake each
	// other, so hold back until predecessors are in.
	k.holdback[seq] = payload
	for {
		p, ok := k.holdback[k.delivered]
		if !ok {
			return
		}
		delete(k.holdback, k.delivered)
		k.delivered++
		k.log = append(k.log, p)
		k.fn(p)
	}
}

// Crash kills a broker. If it was the leader, a controller election
// starts; pending submissions resume under the new leader.
func (k *Kafka) Crash(i int) {
	if i < 0 || i >= len(k.brokers) || !k.brokers[i].alive {
		return
	}
	k.brokers[i].alive = false
	if i != k.leader {
		return
	}
	k.leader = -1
	k.eng.After(k.electionDelay, func() {
		for j, b := range k.brokers {
			if b.alive {
				k.leader = j
				break
			}
		}
		if k.leader >= 0 {
			replay := k.pending
			k.pending = nil
			for _, p := range replay {
				k.Submit(p)
			}
		}
	})
}

// Recover restarts a crashed broker (it rejoins as a follower).
func (k *Kafka) Recover(i int) {
	if i < 0 || i >= len(k.brokers) {
		return
	}
	k.brokers[i].alive = true
	if k.leader < 0 {
		k.leader = i
		replay := k.pending
		k.pending = nil
		for _, p := range replay {
			k.Submit(p)
		}
	}
}
