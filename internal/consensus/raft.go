package consensus

import (
	"fmt"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

// Raft is a full Raft implementation (leader election, heartbeats, log
// replication, majority commit) running on the discrete-event engine —
// the consensus protocol the paper cites for the ordering service
// ([31], Ongaro & Ousterhout). Messages travel over the netem model so
// elections and replication pay real (virtual) network latency.
type Raft struct {
	eng   *sim.Engine
	net   *netem.Model
	fn    func(interface{})
	nodes []*raftNode
	cfg   RaftConfig
	// exactly-once global delivery: entries are identical on every
	// node at a given index, so the first apply of an index wins.
	applied uint64
	log     []interface{}
}

// RaftConfig tunes timeouts.
type RaftConfig struct {
	Nodes          int
	HeartbeatEvery time.Duration
	ElectionMin    time.Duration
	ElectionMax    time.Duration
	ForwardRetry   time.Duration // client retry while leaderless
}

// DefaultRaftConfig mirrors a three-node orderer set with standard
// Raft timeouts.
func DefaultRaftConfig() RaftConfig {
	return RaftConfig{
		Nodes:          3,
		HeartbeatEvery: 50 * time.Millisecond,
		ElectionMin:    150 * time.Millisecond,
		ElectionMax:    300 * time.Millisecond,
		ForwardRetry:   50 * time.Millisecond,
	}
}

type raftRole int

const (
	follower raftRole = iota
	candidate
	leader
)

type raftEntry struct {
	term    uint64
	payload interface{}
}

type raftNode struct {
	r     *Raft
	id    int
	name  string
	alive bool
	role  raftRole

	currentTerm uint64
	votedFor    int // -1 none
	log         []raftEntry
	commitIndex int // highest committed (1-based length semantics: index into log+1)
	lastApplied int

	nextIndex  []int
	matchIndex []int
	votes      map[int]bool

	electionDeadline sim.Time
}

// NewRaft constructs and starts the cluster: all nodes begin as
// followers with randomized election timers.
func NewRaft(eng *sim.Engine, net *netem.Model, cfg RaftConfig) *Raft {
	if cfg.Nodes < 1 || cfg.ElectionMin <= 0 || cfg.ElectionMax <= cfg.ElectionMin {
		panic(fmt.Sprintf("consensus: bad raft config %+v", cfg))
	}
	r := &Raft{eng: eng, net: net, cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		n := &raftNode{
			r: r, id: i, name: fmt.Sprintf("raft%d", i),
			alive: true, votedFor: -1,
			commitIndex: 0, lastApplied: 0,
		}
		r.nodes = append(r.nodes, n)
	}
	for _, n := range r.nodes {
		n.resetElectionTimer()
	}
	// A single cluster ticker drives timeout checks and heartbeats.
	eng.Tick(cfg.HeartbeatEvery/2, r.tick)
	return r
}

// Name implements Consenter.
func (r *Raft) Name() string { return "raft" }

// OnCommit implements Consenter.
func (r *Raft) OnCommit(fn func(interface{})) { r.fn = fn }

// Log returns globally applied entries.
func (r *Raft) Log() []interface{} { return r.log }

// Leader returns the current leader id, or -1.
func (r *Raft) Leader() int {
	for _, n := range r.nodes {
		if n.alive && n.role == leader {
			return n.id
		}
	}
	return -1
}

// Term returns the highest term among live nodes (diagnostics).
func (r *Raft) Term() uint64 {
	var t uint64
	for _, n := range r.nodes {
		if n.alive && n.currentTerm > t {
			t = n.currentTerm
		}
	}
	return t
}

// Submit implements Consenter: the payload is forwarded to the leader;
// while leaderless it retries until a leader emerges.
func (r *Raft) Submit(payload interface{}) {
	if r.fn == nil {
		panic("consensus: Submit before OnCommit")
	}
	l := r.Leader()
	if l < 0 {
		r.eng.After(r.cfg.ForwardRetry, func() { r.Submit(payload) })
		return
	}
	ln := r.nodes[l]
	r.net.SendOrdered("producer", ln.name, func() {
		if !ln.alive || ln.role != leader {
			r.eng.After(r.cfg.ForwardRetry, func() { r.Submit(payload) })
			return
		}
		ln.log = append(ln.log, raftEntry{term: ln.currentTerm, payload: payload})
		ln.replicate()
	})
}

// Crash stops a node; its timers are ignored until Recover.
func (r *Raft) Crash(i int) {
	if i >= 0 && i < len(r.nodes) {
		r.nodes[i].alive = false
	}
}

// Recover restarts a node as a follower; Raft's log reconciliation
// brings it back up to date.
func (r *Raft) Recover(i int) {
	if i < 0 || i >= len(r.nodes) {
		return
	}
	n := r.nodes[i]
	n.alive = true
	n.role = follower
	n.votedFor = -1
	n.resetElectionTimer()
}

func (r *Raft) tick() {
	now := r.eng.Now()
	for _, n := range r.nodes {
		if !n.alive {
			continue
		}
		switch n.role {
		case leader:
			n.replicate() // heartbeat + catch-up
		default:
			if now >= n.electionDeadline {
				n.startElection()
			}
		}
	}
}

func (n *raftNode) resetElectionTimer() {
	d := n.r.eng.Uniform(n.r.cfg.ElectionMin, n.r.cfg.ElectionMax)
	n.electionDeadline = n.r.eng.Now() + sim.Time(d)
}

func (n *raftNode) lastLogIndex() int { return len(n.log) }
func (n *raftNode) lastLogTerm() uint64 {
	if len(n.log) == 0 {
		return 0
	}
	return n.log[len(n.log)-1].term
}

func (n *raftNode) startElection() {
	n.role = candidate
	n.currentTerm++
	n.votedFor = n.id
	n.votes = map[int]bool{n.id: true}
	n.resetElectionTimer()
	term := n.currentTerm
	lli, llt := n.lastLogIndex(), n.lastLogTerm()
	for _, peer := range n.r.nodes {
		if peer.id == n.id {
			continue
		}
		peer := peer
		n.r.net.Send(n.name, peer.name, func() {
			granted, replyTerm := peer.handleRequestVote(term, n.id, lli, llt)
			n.r.net.Send(peer.name, n.name, func() {
				n.handleVoteReply(term, peer.id, granted, replyTerm)
			})
		})
	}
}

func (n *raftNode) handleRequestVote(term uint64, candidateID, lli int, llt uint64) (bool, uint64) {
	if !n.alive {
		return false, 0
	}
	if term > n.currentTerm {
		n.stepDown(term)
	}
	if term < n.currentTerm {
		return false, n.currentTerm
	}
	upToDate := llt > n.lastLogTerm() ||
		(llt == n.lastLogTerm() && lli >= n.lastLogIndex())
	if (n.votedFor == -1 || n.votedFor == candidateID) && upToDate {
		n.votedFor = candidateID
		n.resetElectionTimer()
		return true, n.currentTerm
	}
	return false, n.currentTerm
}

func (n *raftNode) handleVoteReply(term uint64, voterID int, granted bool, replyTerm uint64) {
	if !n.alive || n.role != candidate || n.currentTerm != term {
		return
	}
	if replyTerm > n.currentTerm {
		n.stepDown(replyTerm)
		return
	}
	if !granted {
		return
	}
	n.votes[voterID] = true
	if len(n.votes) > len(n.r.nodes)/2 {
		n.becomeLeader()
	}
}

func (n *raftNode) becomeLeader() {
	n.role = leader
	n.nextIndex = make([]int, len(n.r.nodes))
	n.matchIndex = make([]int, len(n.r.nodes))
	for i := range n.nextIndex {
		n.nextIndex[i] = n.lastLogIndex() + 1
	}
	n.matchIndex[n.id] = n.lastLogIndex()
	n.replicate()
}

func (n *raftNode) stepDown(term uint64) {
	n.currentTerm = term
	n.role = follower
	n.votedFor = -1
	n.resetElectionTimer()
}

// replicate sends AppendEntries to every follower (empty = heartbeat).
func (n *raftNode) replicate() {
	if n.role != leader || !n.alive {
		return
	}
	n.matchIndex[n.id] = n.lastLogIndex()
	for _, peer := range n.r.nodes {
		if peer.id == n.id {
			continue
		}
		peer := peer
		prevIndex := n.nextIndex[peer.id] - 1
		if prevIndex > len(n.log) {
			prevIndex = len(n.log)
		}
		var prevTerm uint64
		if prevIndex > 0 {
			prevTerm = n.log[prevIndex-1].term
		}
		entries := append([]raftEntry(nil), n.log[prevIndex:]...)
		term := n.currentTerm
		leaderCommit := n.commitIndex
		n.r.net.Send(n.name, peer.name, func() {
			ok, replyTerm, matched := peer.handleAppendEntries(term, n.id, prevIndex, prevTerm, entries, leaderCommit)
			n.r.net.Send(peer.name, n.name, func() {
				n.handleAppendReply(peer.id, term, ok, replyTerm, matched)
			})
		})
	}
}

func (n *raftNode) handleAppendEntries(term uint64, leaderID, prevIndex int, prevTerm uint64, entries []raftEntry, leaderCommit int) (bool, uint64, int) {
	if !n.alive {
		return false, 0, 0
	}
	if term < n.currentTerm {
		return false, n.currentTerm, 0
	}
	if term > n.currentTerm || n.role != follower {
		n.stepDown(term)
	}
	n.resetElectionTimer()
	if prevIndex > len(n.log) {
		return false, n.currentTerm, 0
	}
	if prevIndex > 0 && n.log[prevIndex-1].term != prevTerm {
		n.log = n.log[:prevIndex-1]
		return false, n.currentTerm, 0
	}
	// Append/overwrite from prevIndex.
	n.log = append(n.log[:prevIndex], entries...)
	if leaderCommit > n.commitIndex {
		ci := leaderCommit
		if ci > len(n.log) {
			ci = len(n.log)
		}
		n.commitIndex = ci
		n.applyCommitted()
	}
	return true, n.currentTerm, len(n.log)
}

func (n *raftNode) handleAppendReply(peerID int, term uint64, ok bool, replyTerm uint64, matched int) {
	if !n.alive || n.role != leader || n.currentTerm != term {
		return
	}
	if replyTerm > n.currentTerm {
		n.stepDown(replyTerm)
		return
	}
	if !ok {
		if n.nextIndex[peerID] > 1 {
			n.nextIndex[peerID]--
		}
		return
	}
	n.matchIndex[peerID] = matched
	n.nextIndex[peerID] = matched + 1
	// Advance commitIndex: highest index replicated on a majority
	// with an entry from the current term.
	for idx := len(n.log); idx > n.commitIndex; idx-- {
		if n.log[idx-1].term != n.currentTerm {
			break
		}
		count := 0
		for _, m := range n.matchIndex {
			if m >= idx {
				count++
			}
		}
		if count > len(n.r.nodes)/2 {
			n.commitIndex = idx
			n.applyCommitted()
			break
		}
	}
}

// applyCommitted fires the global callback exactly once per index.
func (n *raftNode) applyCommitted() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		idx := uint64(n.lastApplied)
		if idx > n.r.applied {
			n.r.applied = idx
			payload := n.log[n.lastApplied-1].payload
			n.r.log = append(n.r.log, payload)
			n.r.fn(payload)
		}
	}
}
