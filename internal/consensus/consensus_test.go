package consensus

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

func collect() (func(interface{}), *[]int) {
	var got []int
	return func(p interface{}) { got = append(got, p.(int)) }, &got
}

func inOrder(got []int, n int) error {
	if len(got) != n {
		return fmt.Errorf("delivered %d entries, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			return fmt.Errorf("entry %d = %d, out of order (%v)", i, v, got)
		}
	}
	return nil
}

func TestSoloDeliversInOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewSolo(eng, 3*time.Millisecond)
	fn, got := collect()
	s.OnCommit(fn)
	for i := 0; i < 50; i++ {
		i := i
		eng.At(sim.Time(time.Duration(i)*time.Millisecond), func() { s.Submit(i) })
	}
	eng.Run()
	if err := inOrder(*got, 50); err != nil {
		t.Fatal(err)
	}
	if s.Name() != "solo" {
		t.Error("name wrong")
	}
}

func TestSoloPanicsWithoutCallback(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSolo(sim.NewEngine(1), time.Millisecond).Submit(1)
}

func newKafka(seed int64) (*sim.Engine, *Kafka) {
	eng := sim.NewEngine(seed)
	net := netem.New(eng, netem.DefaultLAN())
	return eng, NewKafka(eng, net, DefaultKafkaConfig())
}

func TestKafkaDeliversInOrder(t *testing.T) {
	eng, k := newKafka(2)
	fn, got := collect()
	k.OnCommit(fn)
	for i := 0; i < 200; i++ {
		i := i
		eng.At(sim.Time(time.Duration(i)*500*time.Microsecond), func() { k.Submit(i) })
	}
	eng.Run()
	if err := inOrder(*got, 200); err != nil {
		t.Fatal(err)
	}
	if len(k.Log()) != 200 {
		t.Errorf("log length %d", len(k.Log()))
	}
}

func TestKafkaLeaderFailover(t *testing.T) {
	eng, k := newKafka(3)
	fn, got := collect()
	k.OnCommit(fn)
	next := 0
	submitBatch := func(n int) {
		for i := 0; i < n; i++ {
			k.Submit(next)
			next++
		}
	}
	eng.At(sim.Time(10*time.Millisecond), func() { submitBatch(10) })
	eng.At(sim.Time(100*time.Millisecond), func() { k.Crash(k.Leader()) })
	// Submissions during the leadership gap are buffered.
	eng.At(sim.Time(200*time.Millisecond), func() { submitBatch(10) })
	eng.Run()
	if err := inOrder(*got, 20); err != nil {
		t.Fatal(err)
	}
	if k.Leader() == 0 {
		t.Error("leader did not change after crash")
	}
}

func TestKafkaRecoverWhenAllDown(t *testing.T) {
	eng, k := newKafka(4)
	fn, got := collect()
	k.OnCommit(fn)
	eng.At(sim.Time(time.Millisecond), func() {
		k.Crash(0)
		k.Crash(1)
		k.Crash(2)
	})
	eng.At(sim.Time(10*time.Second), func() { k.Submit(0) })
	eng.At(sim.Time(11*time.Second), func() { k.Recover(1) })
	eng.Run()
	if err := inOrder(*got, 1); err != nil {
		t.Fatal(err)
	}
}

func TestKafkaConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.New(eng, netem.DefaultLAN())
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	NewKafka(eng, net, KafkaConfig{Brokers: 2, MinISR: 3})
}

func newRaft(seed int64) (*sim.Engine, *Raft) {
	eng := sim.NewEngine(seed)
	net := netem.New(eng, netem.DefaultLAN())
	return eng, NewRaft(eng, net, DefaultRaftConfig())
}

func TestRaftElectsALeader(t *testing.T) {
	eng, r := newRaft(5)
	r.OnCommit(func(interface{}) {})
	eng.RunUntil(sim.Time(2 * time.Second))
	if r.Leader() < 0 {
		t.Fatal("no leader after 2s")
	}
	leaders := 0
	for _, n := range r.nodes {
		if n.role == leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d concurrent leaders", leaders)
	}
}

func TestRaftDeliversInOrder(t *testing.T) {
	eng, r := newRaft(6)
	fn, got := collect()
	r.OnCommit(fn)
	for i := 0; i < 100; i++ {
		i := i
		eng.At(sim.Time(time.Second+time.Duration(i)*2*time.Millisecond), func() { r.Submit(i) })
	}
	eng.RunUntil(sim.Time(10 * time.Second))
	if err := inOrder(*got, 100); err != nil {
		t.Fatal(err)
	}
}

func TestRaftSubmitBeforeLeaderRetries(t *testing.T) {
	eng, r := newRaft(7)
	fn, got := collect()
	r.OnCommit(fn)
	// Submit immediately, before any election finished.
	r.Submit(0)
	eng.RunUntil(sim.Time(5 * time.Second))
	if err := inOrder(*got, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRaftLeaderCrashReElection(t *testing.T) {
	eng, r := newRaft(8)
	fn, got := collect()
	r.OnCommit(fn)
	next := 0
	eng.At(sim.Time(time.Second), func() {
		for i := 0; i < 5; i++ {
			r.Submit(next)
			next++
		}
	})
	var crashed int
	eng.At(sim.Time(2*time.Second), func() {
		crashed = r.Leader()
		r.Crash(crashed)
	})
	eng.At(sim.Time(4*time.Second), func() {
		for i := 0; i < 5; i++ {
			r.Submit(next)
			next++
		}
	})
	eng.RunUntil(sim.Time(10 * time.Second))
	if err := inOrder(*got, 10); err != nil {
		t.Fatal(err)
	}
	if l := r.Leader(); l == crashed || l < 0 {
		t.Fatalf("leader after crash = %d (crashed %d)", l, crashed)
	}
	if r.Term() == 0 {
		t.Error("term never advanced")
	}
}

func TestRaftRecoveredNodeCatchesUp(t *testing.T) {
	eng, r := newRaft(9)
	fn, _ := collect()
	r.OnCommit(fn)
	eng.At(sim.Time(time.Second), func() {
		// Crash a follower, then write entries.
		l := r.Leader()
		for i := range r.nodes {
			if i != l {
				r.Crash(i)
				break
			}
		}
		for i := 0; i < 20; i++ {
			r.Submit(i)
		}
	})
	var down int
	eng.At(sim.Time(3*time.Second), func() {
		for i, n := range r.nodes {
			if !n.alive {
				down = i
				r.Recover(i)
				break
			}
		}
	})
	eng.RunUntil(sim.Time(8 * time.Second))
	n := r.nodes[down]
	if len(n.log) != 20 {
		t.Fatalf("recovered follower has %d entries, want 20", len(n.log))
	}
}

func TestRaftNoDuplicateDeliveries(t *testing.T) {
	eng, r := newRaft(10)
	seen := map[int]int{}
	r.OnCommit(func(p interface{}) { seen[p.(int)]++ })
	eng.At(sim.Time(time.Second), func() {
		for i := 0; i < 50; i++ {
			r.Submit(i)
		}
	})
	// Churn leadership twice.
	eng.At(sim.Time(2*time.Second), func() { r.Crash(r.Leader()) })
	eng.At(sim.Time(4*time.Second), func() {
		for i, n := range r.nodes {
			if !n.alive {
				r.Recover(i)
				break
			}
		}
	})
	eng.RunUntil(sim.Time(10 * time.Second))
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("entry %d delivered %d times", v, c)
		}
	}
	if len(seen) != 50 {
		t.Fatalf("delivered %d distinct entries, want 50", len(seen))
	}
}

func TestRaftConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.New(eng, netem.DefaultLAN())
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	NewRaft(eng, net, RaftConfig{Nodes: 3, ElectionMin: time.Second, ElectionMax: time.Second})
}

// Property: under a random crash/recover schedule that always keeps a
// majority alive, Raft never loses or duplicates a committed entry and
// all live logs agree on the committed prefix.
func TestRaftChurnSafetyProperty(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		eng := sim.NewEngine(seed)
		net := netem.New(eng, netem.DefaultLAN())
		r := NewRaft(eng, net, DefaultRaftConfig())
		var delivered []int
		r.OnCommit(func(p interface{}) { delivered = append(delivered, p.(int)) })

		next := 0
		eng.Tick(200*time.Millisecond, func() {
			if next < 60 {
				r.Submit(next)
				next++
			}
		})
		// Random churn: crash one node, recover it, never losing
		// majority (only one node down at a time).
		down := -1
		eng.Tick(1100*time.Millisecond, func() {
			if down >= 0 {
				r.Recover(down)
				down = -1
				return
			}
			victim := int(eng.Rand().Int63n(int64(len(r.nodes))))
			r.Crash(victim)
			down = victim
		})
		eng.RunUntil(sim.Time(60 * time.Second))

		// Submission order is NOT preserved across failover (retried
		// envelopes may overtake) — the guarantee is no loss and no
		// duplication of committed entries.
		seen := map[int]int{}
		for _, v := range delivered {
			seen[v]++
		}
		if len(delivered) != 60 || len(seen) != 60 {
			t.Fatalf("seed %d: %d delivered, %d distinct", seed, len(delivered), len(seen))
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("seed %d: entry %d delivered %d times", seed, v, c)
			}
		}
		// Committed prefixes agree across live nodes.
		for _, n := range r.nodes {
			if !n.alive {
				continue
			}
			for i := 0; i < n.commitIndex; i++ {
				if got := n.log[i].payload.(int); got != delivered[i] {
					t.Fatalf("seed %d: node %d log[%d] = %d, global %d",
						seed, n.id, i, got, delivered[i])
				}
			}
		}
	}
}
