// Package fabrictest provides shared helpers for integration tests of
// the Fabric variants: short preconfigured runs with the EHR and
// genChain workloads.
package fabrictest

import (
	"testing"
	"time"

	"repro/internal/chaincodes/ehr"
	"repro/internal/fabric"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/statedb"
)

// EHRConfig is a short C1-style EHR run.
func EHRConfig(seed int64, variant fabric.Variant) fabric.Config {
	cfg := fabric.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 20 * time.Second
	cfg.Drain = 30 * time.Second
	cfg.Rate = 50
	cfg.BlockSize = 50
	cfg.Chaincode = ehr.New()
	cfg.Workload = ehr.NewWorkload(1)
	cfg.Variant = variant
	return cfg
}

// GenChainConfig is a short genChain run with the given mix and skew
// on LevelDB (small key space keeps tests fast).
func GenChainConfig(seed int64, variant fabric.Variant, mix gen.Mix, skew float64) fabric.Config {
	cfg := fabric.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 20 * time.Second
	cfg.Drain = 30 * time.Second
	cfg.Rate = 50
	cfg.BlockSize = 50
	cfg.DBKind = statedb.LevelDB
	spec := gen.GenChainSpec()
	spec.Keys = 3000
	cfg.Chaincode = gen.MustChaincode(spec)
	cfg.Workload = gen.NewWorkload(spec, mix, skew)
	cfg.Variant = variant
	return cfg
}

// Run builds and runs the network, failing the test on setup errors.
func Run(t *testing.T, cfg fabric.Config) (*fabric.Network, metrics.Report) {
	t.Helper()
	nw, err := fabric.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw, nw.Run()
}
