package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(Time(30*time.Millisecond), func() { got = append(got, 3) })
	e.At(Time(10*time.Millisecond), func() { got = append(got, 1) })
	e.At(Time(20*time.Millisecond), func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(30*time.Millisecond) {
		t.Errorf("Now() = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOWithinSameTimestamp(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(5*time.Millisecond), func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-timestamp events out of order: %v", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.After(time.Second, func() {
		e.After(2*time.Second, func() { at = e.Now() })
	})
	e.Run()
	if at != Time(3*time.Second) {
		t.Errorf("nested After fired at %v, want 3s", at)
	}
}

func TestSchedulingInPastRunsNow(t *testing.T) {
	e := NewEngine(1)
	var fired Time
	e.After(time.Second, func() {
		e.At(0, func() { fired = e.Now() })
	})
	e.Run()
	if fired != Time(time.Second) {
		t.Errorf("past event fired at %v, want 1s", fired)
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(Time(time.Second), func() { ran++ })
	e.At(Time(3*time.Second), func() { ran++ })
	e.RunUntil(Time(2 * time.Second))
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if e.Now() != Time(2*time.Second) {
		t.Errorf("Now() = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(Time(time.Second), func() { ran++; e.Stop() })
	e.At(Time(2*time.Second), func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran %d events, want 1 after Stop", ran)
	}
}

func TestTickerFiresAndCancels(t *testing.T) {
	e := NewEngine(1)
	ticks := 0
	var tk *Ticker
	tk = e.Tick(100*time.Millisecond, func() {
		ticks++
		if ticks == 5 {
			tk.Cancel()
		}
	})
	e.RunUntil(Time(10 * time.Second))
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
}

func TestTickPanicsOnNonPositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero interval")
		}
	}()
	NewEngine(1).Tick(0, func() {})
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := NewEngine(seed)
		var out []time.Duration
		for i := 0; i < 100; i++ {
			out = append(out, e.Exponential(10*time.Millisecond))
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical draws")
	}
}

func TestExponentialMean(t *testing.T) {
	e := NewEngine(7)
	const n = 20000
	mean := 10 * time.Millisecond
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += e.Exponential(mean)
	}
	got := float64(sum) / n
	if got < 0.9*float64(mean) || got > 1.1*float64(mean) {
		t.Errorf("empirical mean %v, want ~%v", time.Duration(got), mean)
	}
}

func TestExponentialZeroMean(t *testing.T) {
	e := NewEngine(7)
	if d := e.Exponential(0); d != 0 {
		t.Errorf("Exponential(0) = %v, want 0", d)
	}
}

func TestNormalClampsAtZero(t *testing.T) {
	e := NewEngine(7)
	for i := 0; i < 1000; i++ {
		if d := e.Normal(time.Millisecond, 100*time.Millisecond); d < 0 {
			t.Fatalf("Normal returned negative duration %v", d)
		}
	}
}

func TestUniformBounds(t *testing.T) {
	e := NewEngine(7)
	lo, hi := 5*time.Millisecond, 15*time.Millisecond
	for i := 0; i < 1000; i++ {
		d := e.Uniform(lo, hi)
		if d < lo || d >= hi {
			t.Fatalf("Uniform out of range: %v", d)
		}
	}
	if d := e.Uniform(hi, lo); d != hi {
		t.Errorf("degenerate Uniform = %v, want lo", d)
	}
}

func TestJitteredBounds(t *testing.T) {
	e := NewEngine(7)
	base := 10 * time.Millisecond
	for i := 0; i < 1000; i++ {
		d := e.Jittered(base, 0.2)
		if d < 8*time.Millisecond-time.Microsecond || d > 12*time.Millisecond+time.Microsecond {
			t.Fatalf("Jittered out of ±20%% band: %v", d)
		}
	}
	if d := e.Jittered(base, 0); d != base {
		t.Errorf("zero-jitter = %v, want base", d)
	}
}

// Property: for any set of scheduled offsets, events fire in
// non-decreasing time order and the clock ends at the max offset.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		e := NewEngine(1)
		var fired []Time
		var max Time
		for _, off := range offsets {
			at := Time(time.Duration(off) * time.Microsecond)
			if at > max {
				max = at
			}
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestLogNormalExtremeSigmaSaturates(t *testing.T) {
	// Regression: with a huge mean and sigma, draws routinely exceed
	// what a time.Duration can hold. The old float→int64 conversion
	// wrapped those to the minimum int64, and the d < 0 guard then
	// mapped the *heaviest* tail draws to 0 — the shortest think time.
	// They must saturate at the documented MaxLogNormal cap instead.
	eng := NewEngine(1)
	mean := time.Duration(5e18) // near the int64 ceiling: overflow is routine
	sawCap := false
	for i := 0; i < 1000; i++ {
		d := eng.LogNormal(mean, 1)
		if d < 0 {
			t.Fatalf("draw %d: negative duration %v", i, d)
		}
		if d == 0 {
			t.Fatalf("draw %d: overflow mapped to the 0 minimum", i)
		}
		if d > MaxLogNormal {
			t.Fatalf("draw %d: %v above the documented cap %v", i, d, MaxLogNormal)
		}
		if d == MaxLogNormal {
			sawCap = true
		}
	}
	if !sawCap {
		t.Fatal("extreme-sigma draws never reached the saturation cap")
	}
	// Ordinary parameters never touch the cap and keep their mean.
	for i := 0; i < 1000; i++ {
		if d := eng.LogNormal(time.Second, 1); d >= MaxLogNormal {
			t.Fatalf("sigma-1 second-mean draw hit the cap: %v", d)
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		for j := 0; j < 1000; j++ {
			e.After(time.Duration(j)*time.Microsecond, func() {})
		}
		e.Run()
	}
}
