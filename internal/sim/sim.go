// Package sim provides a deterministic discrete-event simulation engine.
//
// All components of the simulated Fabric network (clients, peers,
// orderers, consensus nodes, network links) schedule work on a single
// virtual clock. Events execute in strict (time, sequence) order, so a
// run with a fixed seed is fully reproducible. This is the substitute
// substrate for the paper's Kubernetes testbed: the protocol logic runs
// for real, only elapsed time is virtual.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured as a duration since the
// start of the simulation.
type Time time.Duration

// String formats the virtual time as a duration.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the virtual time in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// event is a scheduled callback. seq breaks ties so that events
// scheduled earlier run earlier, which keeps runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	pq      eventHeap
	rng     *rand.Rand
	stopped bool
	// processed counts executed events, for diagnostics.
	processed uint64
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Rand exposes the engine's deterministic random source. All random
// decisions in a simulation must come from here (or a source derived
// from it) to keep runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past is treated as "now".
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.pq, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative
// delays are clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+Time(d), fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil executes events with timestamps <= deadline, then advances
// the clock to the deadline. Events scheduled beyond the deadline stay
// queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped && e.pq[0].at <= deadline {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.pq).(*event)
	if ev.at > e.now {
		e.now = ev.at
	}
	e.processed++
	ev.fn()
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// Exponential draws an exponentially distributed duration with the
// given mean. It is the inter-arrival distribution of the open-loop
// Poisson clients ("transaction arrival rate" in the paper).
func (e *Engine) Exponential(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(e.rng.ExpFloat64() * float64(mean))
}

// Normal draws a normally distributed duration (mean, stddev), clamped
// at zero. Used for jitter such as the ±10 ms of the Pumba emulation.
func (e *Engine) Normal(mean, stddev time.Duration) time.Duration {
	d := time.Duration(e.rng.NormFloat64()*float64(stddev) + float64(mean))
	if d < 0 {
		return 0
	}
	return d
}

// MaxLogNormal is the documented ceiling of a LogNormal draw: one
// virtual hour, far beyond any experiment window yet small enough to
// keep the event queue sane. An extreme-sigma sample saturates here.
// Without the clamp, a draw overflowing time.Duration would wrap the
// float→int64 conversion to the minimum int64 (on amd64), which the
// old negative-value guard then mapped to 0 — turning the heaviest
// tail draws into the *shortest* think times.
const MaxLogNormal = time.Hour

// LogNormal draws a log-normally distributed duration whose mean is
// mean and whose underlying normal has standard deviation sigma. The
// location parameter is derived as µ = ln(mean) − σ²/2 so that the
// distribution's expectation equals mean regardless of sigma. It
// models heavy-tailed client think times. Draws saturate at
// MaxLogNormal.
func (e *Engine) LogNormal(mean time.Duration, sigma float64) time.Duration {
	if mean <= 0 {
		return 0
	}
	if sigma <= 0 {
		return mean
	}
	mu := math.Log(float64(mean)) - sigma*sigma/2
	x := math.Exp(mu + sigma*e.rng.NormFloat64())
	if x >= float64(MaxLogNormal) {
		return MaxLogNormal
	}
	return time.Duration(x)
}

// Uniform draws a duration uniformly from [lo, hi).
func (e *Engine) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(e.rng.Int63n(int64(hi-lo)))
}

// Jittered returns base scaled by a uniform factor in [1-frac, 1+frac].
// It models per-operation service-time variance.
func (e *Engine) Jittered(base time.Duration, frac float64) time.Duration {
	if frac <= 0 || base <= 0 {
		return base
	}
	f := 1 + frac*(2*e.rng.Float64()-1)
	d := time.Duration(math.Round(float64(base) * f))
	if d < 0 {
		return 0
	}
	return d
}

// Ticker repeatedly schedules fn every interval until the engine stops
// or cancel is invoked. The first tick fires one interval from now.
type Ticker struct {
	cancelled bool
}

// Cancel stops future ticks. It is safe to call multiple times.
func (t *Ticker) Cancel() { t.cancelled = true }

// Tick schedules fn every interval on the engine and returns a Ticker
// that can cancel the series.
func (e *Engine) Tick(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive tick interval %v", interval))
	}
	t := &Ticker{}
	var loop func()
	loop = func() {
		if t.cancelled {
			return
		}
		fn()
		if !t.cancelled {
			e.After(interval, loop)
		}
	}
	e.After(interval, loop)
	return t
}
