// Package adaptive implements the paper's first proposed research
// direction (§6.2, "Adaptive block size"): a controller that monitors
// the transaction arrival rate at the ordering service and retunes the
// block size while the system runs.
//
// The paper establishes (Fig 4) that the best block size grows with
// the arrival rate and differs per chaincode, and recommends (§6.1
// recommendation #1) monitoring the rate trend and adapting. The
// controller does exactly that: every interval it estimates the
// arrival rate from the orderer's total-order counter and sets
//
//	blockSize = clamp(rate × TargetFill, Min, Max)
//
// so that a block fills in roughly TargetFill at the current load —
// the "linear relation between increasing transaction arrival rate
// and the best block size" the study measures.
package adaptive

import (
	"time"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Config tunes the controller.
type Config struct {
	// Interval between rate observations.
	Interval time.Duration
	// TargetFill is the time a block should take to fill at the
	// observed rate. Fig 4's best sizes correspond to roughly half a
	// second to one second of fill.
	TargetFill time.Duration
	// Min and Max clamp the chosen block size.
	Min, Max int
	// Smoothing is the exponential moving-average weight of the
	// newest observation (0 < Smoothing <= 1).
	Smoothing float64
}

// DefaultConfig returns a controller tuned for the paper's rate range
// (10–200 tps).
func DefaultConfig() Config {
	return Config{
		Interval:   5 * time.Second,
		TargetFill: 700 * time.Millisecond,
		Min:        10,
		Max:        200,
		Smoothing:  0.5,
	}
}

// Controller retunes a network's block size while it runs.
type Controller struct {
	cfg     Config
	nw      *fabric.Network
	lastCnt uint64
	ewma    float64
	// History records every decision for analysis.
	History []Decision
}

// Decision is one controller step.
type Decision struct {
	At        sim.Time
	Rate      float64 // smoothed arrival estimate, tps
	BlockSize int
}

// Attach installs the controller on the network's engine. Call before
// nw.Run().
func Attach(nw *fabric.Network, cfg Config) *Controller {
	if cfg.Interval <= 0 || cfg.TargetFill <= 0 || cfg.Min < 1 || cfg.Max < cfg.Min {
		panic("adaptive: invalid controller config")
	}
	if cfg.Smoothing <= 0 || cfg.Smoothing > 1 {
		panic("adaptive: smoothing must be in (0,1]")
	}
	c := &Controller{cfg: cfg, nw: nw}
	nw.Engine().Tick(cfg.Interval, c.step)
	return c
}

func (c *Controller) step() {
	cnt := c.nw.Orderer().OrderedCount()
	rate := float64(cnt-c.lastCnt) / c.cfg.Interval.Seconds()
	c.lastCnt = cnt
	if c.ewma == 0 {
		c.ewma = rate
	} else {
		c.ewma = c.cfg.Smoothing*rate + (1-c.cfg.Smoothing)*c.ewma
	}
	size := int(c.ewma * c.cfg.TargetFill.Seconds())
	if size < c.cfg.Min {
		size = c.cfg.Min
	}
	if size > c.cfg.Max {
		size = c.cfg.Max
	}
	c.nw.Orderer().SetBlockSize(size)
	c.History = append(c.History, Decision{
		At:        c.nw.Engine().Now(),
		Rate:      c.ewma,
		BlockSize: size,
	})
}
