package adaptive

import (
	"testing"
	"time"

	"repro/internal/chaincodes/ehr"
	"repro/internal/fabric"
	"repro/internal/metrics"
)

// rampConfig is an EHR run whose arrival rate ramps 20 -> 150 tps.
func rampConfig(seed int64) fabric.Config {
	cfg := fabric.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 60 * time.Second
	cfg.Drain = 30 * time.Second
	cfg.RateSchedule = []fabric.RatePhase{
		{Duration: 30 * time.Second, Rate: 20},
		{Duration: 30 * time.Second, Rate: 150},
	}
	cfg.Rate = 150 // fallback past the schedule
	cfg.Chaincode = ehr.New()
	cfg.Workload = ehr.NewWorkload(1)
	return cfg
}

func runWith(t *testing.T, cfg fabric.Config, attach bool) (metrics.Report, *Controller) {
	t.Helper()
	nw, err := fabric.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var c *Controller
	if attach {
		c = Attach(nw, DefaultConfig())
	}
	rep := nw.Run()
	return rep, c
}

func TestControllerTracksRateRamp(t *testing.T) {
	_, c := runWith(t, rampConfig(1), true)
	if len(c.History) < 5 {
		t.Fatalf("only %d decisions", len(c.History))
	}
	// Pick decisions by virtual time: one inside the 20 tps phase,
	// one at the end of the 150 tps phase (before the drain).
	var early, late Decision
	for _, d := range c.History {
		if d.At <= 25*1e9 {
			early = d
		}
		if d.At <= 60*1e9 {
			late = d
		}
	}
	if late.BlockSize <= early.BlockSize {
		t.Errorf("block size did not grow with the rate: early %d (%.0f tps) late %d (%.0f tps)",
			early.BlockSize, early.Rate, late.BlockSize, late.Rate)
	}
	if early.Rate > 60 || late.Rate < 80 {
		t.Errorf("rate estimates off: early %.1f late %.1f", early.Rate, late.Rate)
	}
}

func TestAdaptiveBeatsMistunedStatic(t *testing.T) {
	// Static block size tuned for the low phase, run under the ramp.
	staticCfg := rampConfig(2)
	staticCfg.BlockSize = 10
	staticRep, _ := runWith(t, staticCfg, false)

	adaptiveCfg := rampConfig(2)
	adaptiveCfg.BlockSize = 10 // same starting point
	adaptiveRep, _ := runWith(t, adaptiveCfg, true)

	if adaptiveRep.AvgLatency >= staticRep.AvgLatency {
		t.Errorf("adaptive latency %v >= static %v",
			adaptiveRep.AvgLatency, staticRep.AvgLatency)
	}
	t.Logf("static   %v", staticRep)
	t.Logf("adaptive %v", adaptiveRep)
}

func TestClampingAndDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Min < 1 || cfg.Max < cfg.Min || cfg.Smoothing <= 0 {
		t.Fatalf("bad defaults %+v", cfg)
	}
	// Very low rate clamps to Min.
	low := rampConfig(3)
	low.RateSchedule = nil
	low.Rate = 2
	low.Duration = 30 * time.Second
	_, c := runWith(t, low, true)
	last := c.History[len(c.History)-1]
	if last.BlockSize != DefaultConfig().Min {
		t.Errorf("block size %d at 2 tps, want clamp to %d", last.BlockSize, DefaultConfig().Min)
	}
}

func TestAttachValidation(t *testing.T) {
	nw, err := fabric.NewNetwork(rampConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{Interval: 0, TargetFill: time.Second, Min: 1, Max: 10, Smoothing: 0.5},
		{Interval: time.Second, TargetFill: 0, Min: 1, Max: 10, Smoothing: 0.5},
		{Interval: time.Second, TargetFill: time.Second, Min: 10, Max: 5, Smoothing: 0.5},
		{Interval: time.Second, TargetFill: time.Second, Min: 1, Max: 10, Smoothing: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", bad)
				}
			}()
			Attach(nw, bad)
		}()
	}
}
