package dist

import (
	"math"
	"math/rand"
	"testing"
)

func sample(t *testing.T, n int, skew float64, draws int, seed int64) []int {
	t.Helper()
	z := NewZipfian(n, skew)
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := z.Next(rng)
		if v < 0 || v >= n {
			t.Fatalf("Next = %d, out of [0, %d)", v, n)
		}
		counts[v]++
	}
	return counts
}

func TestSkewZeroIsUniform(t *testing.T) {
	const n, draws = 20, 200000
	counts := sample(t, n, 0, draws, 1)
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("index %d drawn %d times, want %.0f±5%%", i, c, want)
		}
	}
}

// TestHotRanksAreHighIndices pins the package convention: at positive
// skew, frequency must increase monotonically with the index, with
// index n-1 the hottest.
func TestHotRanksAreHighIndices(t *testing.T) {
	for _, skew := range []float64{1, 2} {
		counts := sample(t, 10, skew, 200000, 2)
		for i := 1; i < len(counts); i++ {
			if counts[i] <= counts[i-1] {
				t.Errorf("skew %v: count[%d]=%d <= count[%d]=%d, want monotone growth toward high indices",
					skew, i, counts[i], i-1, counts[i-1])
			}
		}
	}
}

func TestSkewMatchesZipfMass(t *testing.T) {
	// At skew 1 over n ranks, rank r carries (1/r)/H_n of the mass.
	const n, draws = 100, 500000
	counts := sample(t, n, 1, draws, 3)
	h := 0.0
	for r := 1; r <= n; r++ {
		h += 1 / float64(r)
	}
	for _, r := range []int{1, 2, 10} {
		got := float64(counts[n-r]) / draws
		want := 1 / (float64(r) * h)
		if math.Abs(got-want) > 0.1*want {
			t.Errorf("rank %d: mass %.4f, want %.4f±10%%", r, got, want)
		}
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	z := NewZipfian(1000, 1.5)
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if x, y := z.Next(a), z.Next(b); x != y {
			t.Fatalf("draw %d: %d != %d with identical seeds", i, x, y)
		}
	}
}

func TestN(t *testing.T) {
	if got := NewZipfian(42, 1).N(); got != 42 {
		t.Errorf("N() = %d, want 42", got)
	}
}

func TestRejectsBadParameters(t *testing.T) {
	for _, tc := range []struct {
		n    int
		skew float64
	}{{0, 1}, {-5, 1}, {10, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipfian(%d, %v) did not panic", tc.n, tc.skew)
				}
			}()
			NewZipfian(tc.n, tc.skew)
		}()
	}
}
