// Package dist provides the workload key-skew machinery of the
// paper's Table 3: a CDF-based Zipfian sampler over a finite index
// space [0, n).
//
// Convention: hot ranks map to HIGH indices. At skew s the sampler
// draws index i with probability proportional to (n-i)^-s, so index
// n-1 is rank 1 (the hottest key), index n-2 is rank 2, and so on
// down to index 0, the coldest. Skew 0 degrades to the uniform
// distribution. The use-case workloads rely on this orientation —
// "hot patients" in the EHR chaincode are the high patient numbers —
// and the genChain workloads (§4.4) use it for their skewed
// read/update key draws.
//
// The module lives at import path "repro"; this package is
// repro/internal/dist.
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipfian is a precomputed finite Zipfian distribution over [0, n).
// Construction is O(n); sampling is O(log n) via binary search on the
// cumulative distribution. A Zipfian is immutable after construction
// and therefore safe for concurrent use — Next draws randomness only
// from the caller's rng, which keeps every simulation's stream
// deterministic under its own seed.
type Zipfian struct {
	cdf []float64 // cdf[i] = unnormalised P(X <= i); cdf[n-1] is the total mass
}

// NewZipfian builds a sampler over [0, n) with the given skew
// exponent. Skew 0 is uniform; larger skews concentrate mass on the
// high indices (rank 1 = index n-1). It panics on n <= 0 or negative
// skew — both are configuration bugs, never data-dependent.
func NewZipfian(n int, skew float64) *Zipfian {
	if n <= 0 {
		panic(fmt.Sprintf("dist: Zipfian needs a positive index space, got n=%d", n))
	}
	if skew < 0 {
		panic(fmt.Sprintf("dist: negative Zipfian skew %v", skew))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		rank := float64(n - i) // index n-1 has rank 1, the hottest
		sum += math.Pow(rank, -skew)
		cdf[i] = sum
	}
	return &Zipfian{cdf: cdf}
}

// N returns the size of the index space.
func (z *Zipfian) N() int { return len(z.cdf) }

// Next draws one index in [0, N()). All randomness comes from rng, so
// a fixed seed reproduces the exact sample stream.
func (z *Zipfian) Next(rng *rand.Rand) int {
	u := rng.Float64() * z.cdf[len(z.cdf)-1]
	return sort.SearchFloat64s(z.cdf, u)
}
