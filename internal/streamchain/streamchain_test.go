package streamchain

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/fabrictest"
	"repro/internal/ledger"
)

func lowRate(cfg fabric.Config) fabric.Config {
	cfg.Rate = 10
	return cfg
}

func TestLowerLatencyThanVanillaAtLowRate(t *testing.T) {
	scCfg := lowRate(fabrictest.EHRConfig(1, New()))
	_, sc := fabrictest.Run(t, scCfg)
	vCfg := lowRate(fabrictest.EHRConfig(1, nil))
	_, vanilla := fabrictest.Run(t, vCfg)
	if sc.AvgLatency >= vanilla.AvgLatency {
		t.Errorf("streamchain latency %v >= vanilla %v", sc.AvgLatency, vanilla.AvgLatency)
	}
	if sc.FailurePct >= vanilla.FailurePct {
		t.Errorf("streamchain failures %.2f%% >= vanilla %.2f%%", sc.FailurePct, vanilla.FailurePct)
	}
	t.Logf("streamchain %v", sc)
	t.Logf("vanilla     %v", vanilla)
}

func TestOneTransactionPerBlock(t *testing.T) {
	cfg := lowRate(fabrictest.EHRConfig(2, New()))
	nw, rep := fabrictest.Run(t, cfg)
	for _, b := range nw.Chain().Blocks() {
		if len(b.Transactions) > 1 {
			t.Fatalf("block %d has %d transactions; streaming requires 1", b.Number, len(b.Transactions))
		}
	}
	if rep.Blocks < rep.Committed {
		t.Errorf("blocks %d < committed %d", rep.Blocks, rep.Committed)
	}
}

func TestCollapsesAtHighRateOnLargeCluster(t *testing.T) {
	// C2-style cluster at 100 tps: per-peer delivery fan-out swamps
	// the orderer (§5.3.1); committed throughput falls well short of
	// the arrival rate while vanilla keeps up.
	c2 := func(v fabric.Variant) fabric.Config {
		cfg := fabrictest.EHRConfig(3, v)
		cfg.Orgs = 8
		cfg.PeersPerOrg = 4
		cfg.Clients = 25
		cfg.Rate = 100
		cfg.BlockSize = 100
		cfg.SpeedFactor = 2
		cfg.Duration = 30 * time.Second
		cfg.Drain = 15 * time.Second
		return cfg
	}
	_, sc := fabrictest.Run(t, c2(New()))
	_, vanilla := fabrictest.Run(t, c2(nil))
	if sc.Throughput >= 0.9*vanilla.Throughput {
		t.Errorf("streamchain tput %.1f not collapsed vs vanilla %.1f",
			sc.Throughput, vanilla.Throughput)
	}
	t.Logf("streamchain %.1f tps, vanilla %.1f tps", sc.Throughput, vanilla.Throughput)
}

func TestRAMDiskAblation(t *testing.T) {
	// Without the RAM disk, each streamed commit pays disk latency:
	// at 50 tps the system should be visibly worse than with it.
	with := fabrictest.EHRConfig(4, New())
	_, w := fabrictest.Run(t, with)
	without := fabrictest.EHRConfig(4, NewWithoutRAMDisk())
	_, wo := fabrictest.Run(t, without)
	if wo.AvgLatency <= w.AvgLatency {
		t.Errorf("no-ramdisk latency %v <= ramdisk %v", wo.AvgLatency, w.AvgLatency)
	}
	t.Logf("ramdisk %v", w)
	t.Logf("no-ramdisk %v", wo)
}

func TestNames(t *testing.T) {
	if New().Name() != "streamchain" || NewWithoutRAMDisk().Name() != "streamchain-noramdisk" {
		t.Error("names wrong")
	}
}

func TestHooksAreNoOps(t *testing.T) {
	v := New()
	tx := &ledger.Transaction{ID: "t", RWSet: &ledger.RWSet{}}
	if ok, cost := v.OnSubmit(tx); !ok || cost != 0 {
		t.Error("OnSubmit not a no-op")
	}
	kept, aborted, cost := v.OnCut([]*ledger.Transaction{tx})
	if len(kept) != 1 || aborted != nil || cost != 0 {
		t.Error("OnCut not a pass-through")
	}
	if v.SkipMVCC() || v.EndorseSnapshotLag() {
		t.Error("flags wrong")
	}
}
