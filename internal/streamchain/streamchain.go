// Package streamchain reimplements Streamchain (István et al.,
// SERIAL'18) as a fabric.Variant: the ordering service streams
// transactions one-by-one instead of batching them into blocks, the
// validation pipeline is parallelized/pipelined, and the ledger and
// world state live on a RAM disk (§5.3 of the study).
//
// The mechanics reproduced here: block size forced to 1 (every
// transaction is its own "block"), a pipelined committer whose fixed
// per-block overhead is far smaller than stock Fabric's, and a
// RAM-disk toggle that decides whether commits pay memory or disk
// costs. What the study observes then follows: world state updates
// propagate quickly at low rates (fewer MVCC conflicts, lower
// latency), while the per-transaction fixed overheads — especially
// the orderer's per-peer delivery fan-out — swamp the system at high
// rates or on the 32-peer cluster (Fig 20/21), and removing the RAM
// disk collapses it even sooner (Fig 23).
package streamchain

import (
	"time"

	"repro/internal/fabric"
	"repro/internal/ledger"
)

// Variant is the Streamchain ordering/commit extension.
type Variant struct {
	// RAMDisk selects memory-backed ledger and state storage (the
	// prototype's requirement). Without it, every streamed commit
	// pays disk latency.
	RAMDisk bool
}

// New returns Streamchain with a RAM disk, as the authors require.
func New() *Variant { return &Variant{RAMDisk: true} }

// NewWithoutRAMDisk returns the ablation of §5.3.3.
func NewWithoutRAMDisk() *Variant { return &Variant{RAMDisk: false} }

// Name implements fabric.Variant.
func (v *Variant) Name() string {
	if v.RAMDisk {
		return "streamchain"
	}
	return "streamchain-noramdisk"
}

// Adjust implements fabric.Variant: stream transactions one-by-one
// and re-price the committer for the pipelined validator.
func (v *Variant) Adjust(cfg *fabric.Config) {
	cfg.BlockSize = 1
	cfg.BlockTimeout = time.Millisecond
	cfg.MaxBlockKB = 0
	// Pipelining hides most of the per-block fixed cost; the RAM
	// disk removes the storage part of it. Without the RAM disk each
	// streamed commit pays the filesystem.
	if v.RAMDisk {
		cfg.PeerCosts.BlockBase = 2500 * time.Microsecond
	} else {
		cfg.PeerCosts.BlockBase = 9 * time.Millisecond
	}
	// Cutting is trivial for single-transaction blocks.
	cfg.OrdererCosts.BlockCut = 300 * time.Microsecond
}

// OnSubmit implements fabric.Variant.
func (v *Variant) OnSubmit(*ledger.Transaction) (bool, time.Duration) { return true, 0 }

// OnCut implements fabric.Variant: nothing to reorder in a
// single-transaction block.
func (v *Variant) OnCut(batch []*ledger.Transaction) ([]*ledger.Transaction, []*ledger.Transaction, time.Duration) {
	return batch, nil, 0
}

// SkipMVCC implements fabric.Variant.
func (v *Variant) SkipMVCC() bool { return false }

// EndorseSnapshotLag implements fabric.Variant.
func (v *Variant) EndorseSnapshotLag() bool { return false }

// OnBlockValidated implements fabric.Variant: no feedback needed.
func (v *Variant) OnBlockValidated(*ledger.Block, []ledger.ValidationCode) {}
