package statedb

import (
	"errors"
	"sync/atomic"

	"repro/internal/skiplist"
)

// levelDB is the embedded sorted-store backend. Values live in a skip
// list (the memtable structure of the real LevelDB); versions are
// encoded inline with the value.
type levelDB struct {
	mem       *skiplist.List
	savepoint atomic.Uint64
}

func newLevelDB(seed int64) *levelDB {
	return &levelDB{mem: skiplist.New(seed)}
}

func (db *levelDB) Kind() Kind { return LevelDB }

func (db *levelDB) Get(key string) *VersionedValue {
	raw, ok := db.mem.Get(key)
	if !ok {
		return nil
	}
	return decodeVV(raw)
}

func (db *levelDB) GetRange(start, end string) []KV {
	var out []KV
	for it := db.mem.Range(start, end); it.Valid(); it.Next() {
		vv := decodeVV(it.Value())
		out = append(out, KV{Key: it.Key(), Value: vv.Value, Version: vv.Version})
	}
	return out
}

// ExecuteQuery always fails: LevelDB has no rich-query support. Users
// of the paper's recommendation #3 design chaincodes so this is never
// needed.
func (db *levelDB) ExecuteQuery(string) ([]KV, error) {
	return nil, errors.New("statedb: rich queries are not supported by LevelDB")
}

func (db *levelDB) ApplyUpdates(batch *UpdateBatch, height uint64) error {
	for _, w := range batch.Writes {
		if w.IsDelete {
			db.mem.Delete(w.Key)
			continue
		}
		db.mem.Put(w.Key, encodeVV(&VersionedValue{Value: w.Value, Version: w.Version}))
	}
	db.savepoint.Store(height)
	return nil
}

func (db *levelDB) Savepoint() uint64 { return db.savepoint.Load() }

func (db *levelDB) Len() int { return db.mem.Len() }

func (db *levelDB) Clone(seed int64) VersionedDB {
	c := newLevelDB(seed)
	c.mem = db.mem.Clone(seed)
	c.savepoint.Store(db.savepoint.Load())
	return c
}
