package statedb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ledger"
)

func allKinds() []Kind { return []Kind{LevelDB, CouchDB} }

func TestKindString(t *testing.T) {
	if LevelDB.String() != "LevelDB" || CouchDB.String() != "CouchDB" {
		t.Error("Kind.String wrong")
	}
}

func TestGetAbsent(t *testing.T) {
	for _, k := range allKinds() {
		db := New(k, 1)
		if db.Get("nope") != nil {
			t.Errorf("%v: Get on empty db returned value", k)
		}
	}
}

func TestApplyAndGet(t *testing.T) {
	for _, k := range allKinds() {
		db := New(k, 1)
		b := &UpdateBatch{}
		b.Put("a", []byte(`{"n":1}`), ledger.Height{BlockNum: 1, TxNum: 0})
		b.Put("b", []byte(`{"n":2}`), ledger.Height{BlockNum: 1, TxNum: 1})
		if err := db.ApplyUpdates(b, 1); err != nil {
			t.Fatal(err)
		}
		vv := db.Get("a")
		if vv == nil || string(vv.Value) != `{"n":1}` {
			t.Fatalf("%v: Get(a) = %v", k, vv)
		}
		if vv.Version != (ledger.Height{BlockNum: 1, TxNum: 0}) {
			t.Errorf("%v: version = %v", k, vv.Version)
		}
		if db.Savepoint() != 1 {
			t.Errorf("%v: savepoint = %d", k, db.Savepoint())
		}
		if db.Len() != 2 {
			t.Errorf("%v: Len = %d", k, db.Len())
		}
	}
}

func TestDeleteRemovesKey(t *testing.T) {
	for _, k := range allKinds() {
		db := New(k, 1)
		b := &UpdateBatch{}
		b.Put("a", []byte(`{"x":1}`), ledger.Height{BlockNum: 1})
		if err := db.ApplyUpdates(b, 1); err != nil {
			t.Fatal(err)
		}
		b2 := &UpdateBatch{}
		b2.Delete("a", ledger.Height{BlockNum: 2})
		if err := db.ApplyUpdates(b2, 2); err != nil {
			t.Fatal(err)
		}
		if db.Get("a") != nil {
			t.Errorf("%v: deleted key still readable", k)
		}
		if db.Len() != 0 {
			t.Errorf("%v: Len = %d after delete", k, db.Len())
		}
	}
}

func TestOverwriteBumpsVersion(t *testing.T) {
	for _, k := range allKinds() {
		db := New(k, 1)
		b := &UpdateBatch{}
		b.Put("a", []byte(`1`), ledger.Height{BlockNum: 1})
		db.ApplyUpdates(b, 1)
		b2 := &UpdateBatch{}
		b2.Put("a", []byte(`2`), ledger.Height{BlockNum: 5, TxNum: 3})
		db.ApplyUpdates(b2, 5)
		vv := db.Get("a")
		if vv.Version != (ledger.Height{BlockNum: 5, TxNum: 3}) {
			t.Errorf("%v: version after overwrite = %v", k, vv.Version)
		}
	}
}

func TestGetRangeOrderedHalfOpen(t *testing.T) {
	for _, k := range allKinds() {
		db := New(k, 1)
		b := &UpdateBatch{}
		for i := 0; i < 10; i++ {
			b.Put(fmt.Sprintf("k%02d", i), []byte(`{}`), ledger.Height{BlockNum: 1, TxNum: uint64(i)})
		}
		db.ApplyUpdates(b, 1)
		kvs := db.GetRange("k02", "k05")
		if len(kvs) != 3 || kvs[0].Key != "k02" || kvs[2].Key != "k04" {
			t.Errorf("%v: GetRange = %v", k, kvs)
		}
		all := db.GetRange("", "")
		if len(all) != 10 {
			t.Errorf("%v: unbounded range returned %d", k, len(all))
		}
	}
}

func TestLevelDBRejectsRichQuery(t *testing.T) {
	db := New(LevelDB, 1)
	if _, err := db.ExecuteQuery(`{"a":1}`); err == nil {
		t.Fatal("LevelDB accepted a rich query")
	}
}

func TestCouchDBRichQuery(t *testing.T) {
	db := New(CouchDB, 1)
	b := &UpdateBatch{}
	b.Put("art1", []byte(`{"owner":"alice","plays":5}`), ledger.Height{BlockNum: 1})
	b.Put("art2", []byte(`{"owner":"bob","plays":9}`), ledger.Height{BlockNum: 1})
	b.Put("art3", []byte(`{"owner":"alice","plays":12}`), ledger.Height{BlockNum: 1})
	b.Put("blob", []byte(`not-json`), ledger.Height{BlockNum: 1})
	db.ApplyUpdates(b, 1)

	kvs, err := db.ExecuteQuery(`{"owner":"alice"}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Key != "art1" || kvs[1].Key != "art3" {
		t.Fatalf("query result = %v", kvs)
	}
	kvs, err = db.ExecuteQuery(`{"plays":{"$gt":6}}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 {
		t.Fatalf("numeric query result = %v", kvs)
	}
	if _, err := db.ExecuteQuery(`{"$bad":1}`); err == nil {
		t.Fatal("invalid selector accepted")
	}
}

func TestCouchDBQueryAfterDelete(t *testing.T) {
	db := New(CouchDB, 1)
	b := &UpdateBatch{}
	b.Put("d1", []byte(`{"t":"x"}`), ledger.Height{BlockNum: 1})
	db.ApplyUpdates(b, 1)
	b2 := &UpdateBatch{}
	b2.Delete("d1", ledger.Height{BlockNum: 2})
	db.ApplyUpdates(b2, 2)
	kvs, err := db.ExecuteQuery(`{"t":"x"}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 0 {
		t.Fatalf("query saw deleted doc: %v", kvs)
	}
}

func TestCouchDBNonJSONValueOverwrite(t *testing.T) {
	db := New(CouchDB, 1)
	b := &UpdateBatch{}
	b.Put("k", []byte(`{"a":1}`), ledger.Height{BlockNum: 1})
	db.ApplyUpdates(b, 1)
	b2 := &UpdateBatch{}
	b2.Put("k", []byte(`raw-bytes`), ledger.Height{BlockNum: 2})
	db.ApplyUpdates(b2, 2)
	kvs, err := db.ExecuteQuery(`{"a":1}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 0 {
		t.Fatal("query matched stale document after non-JSON overwrite")
	}
	if vv := db.Get("k"); string(vv.Value) != "raw-bytes" {
		t.Fatalf("Get = %q", vv.Value)
	}
}

// Property: both backends agree with each other and with a reference
// map under random batches.
func TestBackendsAgree(t *testing.T) {
	type wr struct {
		Key uint8
		Val uint16
		Del bool
	}
	f := func(batches [][]wr) bool {
		ldb, cdb := New(LevelDB, 7), New(CouchDB, 7)
		ref := map[string]string{}
		for bi, ops := range batches {
			b := &UpdateBatch{}
			h := uint64(bi + 1)
			for ti, o := range ops {
				key := fmt.Sprintf("key%03d", o.Key)
				if o.Del {
					b.Delete(key, ledger.Height{BlockNum: h, TxNum: uint64(ti)})
					delete(ref, key)
				} else {
					val := fmt.Sprintf(`{"v":%d}`, o.Val)
					b.Put(key, []byte(val), ledger.Height{BlockNum: h, TxNum: uint64(ti)})
					ref[key] = val
				}
			}
			if ldb.ApplyUpdates(b, h) != nil || cdb.ApplyUpdates(b, h) != nil {
				return false
			}
		}
		if ldb.Len() != len(ref) || cdb.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			lv, cv := ldb.Get(k), cdb.Get(k)
			if lv == nil || cv == nil || string(lv.Value) != v || string(cv.Value) != v {
				return false
			}
			if lv.Version != cv.Version {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLevelDBGet(b *testing.B) {
	db := New(LevelDB, 1)
	batch := &UpdateBatch{}
	for i := 0; i < 10000; i++ {
		batch.Put(fmt.Sprintf("key%06d", i), []byte(`{"n":1}`), ledger.Height{BlockNum: 1})
	}
	db.ApplyUpdates(batch, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Get(fmt.Sprintf("key%06d", i%10000))
	}
}

func BenchmarkCouchDBRichQuery(b *testing.B) {
	db := New(CouchDB, 1)
	batch := &UpdateBatch{}
	for i := 0; i < 1000; i++ {
		batch.Put(fmt.Sprintf("key%06d", i),
			[]byte(fmt.Sprintf(`{"owner":"o%d","n":%d}`, i%10, i)), ledger.Height{BlockNum: 1})
	}
	db.ApplyUpdates(batch, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ExecuteQuery(`{"owner":"o3"}`)
	}
}
