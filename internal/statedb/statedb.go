// Package statedb implements the world state: a versioned key/value
// store replicated on every peer (§2). Two backends mirror the paper's
// database-type control variable (§5.1.2):
//
//   - LevelDB: embedded sorted store over a skip list, fast simple
//     get/put/range, the Fabric default.
//   - CouchDB: JSON document store with Mango-style rich queries,
//     reached over a (simulated) REST hop — functionally richer and
//     markedly slower (Table 4).
//
// Each value carries a Height version (block, tx). The MVCC validation
// of the paper compares read-set versions against these.
package statedb

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ledger"
)

// Kind selects the database backend.
type Kind int

const (
	// LevelDB is the embedded default store.
	LevelDB Kind = iota
	// CouchDB is the external JSON document store.
	CouchDB
)

// String names the backend like the paper's tables.
func (k Kind) String() string {
	if k == CouchDB {
		return "CouchDB"
	}
	return "LevelDB"
}

// VersionedValue is a stored value with its MVCC version.
type VersionedValue struct {
	Value   []byte
	Version ledger.Height
}

// KV is one entry returned by range scans and rich queries.
type KV struct {
	Key     string
	Value   []byte
	Version ledger.Height
}

// Write is one element of an update batch. Each write carries the
// height of the transaction that produced it, exactly like Fabric's
// committer.
type Write struct {
	Key      string
	Value    []byte
	IsDelete bool
	Version  ledger.Height
}

// UpdateBatch is an ordered set of writes applied atomically at
// commit.
type UpdateBatch struct {
	Writes []Write
}

// Put appends a value write to the batch.
func (b *UpdateBatch) Put(key string, value []byte, v ledger.Height) {
	b.Writes = append(b.Writes, Write{Key: key, Value: value, Version: v})
}

// Delete appends a deletion to the batch.
func (b *UpdateBatch) Delete(key string, v ledger.Height) {
	b.Writes = append(b.Writes, Write{Key: key, IsDelete: true, Version: v})
}

// Len reports the number of writes in the batch.
func (b *UpdateBatch) Len() int { return len(b.Writes) }

// VersionedDB is the world-state interface shared by both backends.
type VersionedDB interface {
	// Kind identifies the backend.
	Kind() Kind
	// Get returns the stored value, or nil when the key is absent.
	Get(key string) *VersionedValue
	// GetRange scans the half-open interval [start, end) in key
	// order. Empty bounds are open. This backs GetStateByRange.
	GetRange(start, end string) []KV
	// ExecuteQuery runs a rich (selector) query over all documents.
	// Only CouchDB supports it; LevelDB returns an error (§5.1.2:
	// "LevelDB only supports simple get and set queries").
	ExecuteQuery(query string) ([]KV, error)
	// ApplyUpdates commits a batch and advances the savepoint.
	ApplyUpdates(batch *UpdateBatch, height uint64) error
	// Savepoint is the block height up to which updates are applied.
	Savepoint() uint64
	// Len reports the number of live keys.
	Len() int
	// Clone returns an independent deep copy of the database, used to
	// fan the genesis state out to every peer replica. Values are
	// shared (they are treated as immutable).
	Clone(seed int64) VersionedDB
}

// encodeVV serializes a versioned value: 16-byte height then value.
func encodeVV(v *VersionedValue) []byte {
	out := make([]byte, 16+len(v.Value))
	binary.LittleEndian.PutUint64(out[0:8], v.Version.BlockNum)
	binary.LittleEndian.PutUint64(out[8:16], v.Version.TxNum)
	copy(out[16:], v.Value)
	return out
}

// decodeVV parses the encoding produced by encodeVV.
func decodeVV(raw []byte) *VersionedValue {
	if len(raw) < 16 {
		panic(fmt.Sprintf("statedb: corrupt versioned value of %d bytes", len(raw)))
	}
	return &VersionedValue{
		Version: ledger.Height{
			BlockNum: binary.LittleEndian.Uint64(raw[0:8]),
			TxNum:    binary.LittleEndian.Uint64(raw[8:16]),
		},
		Value: raw[16:],
	}
}

// New constructs a backend of the given kind. The seed fixes internal
// randomized structure (skip-list tower heights).
func New(kind Kind, seed int64) VersionedDB {
	if kind == CouchDB {
		return newCouchDB(seed)
	}
	return newLevelDB(seed)
}
