package statedb

import (
	"encoding/json"
	"sync/atomic"

	"repro/internal/couchq"
	"repro/internal/skiplist"
)

// couchDB is the external JSON document-store backend. Documents are
// kept decoded alongside the raw value so selector queries do not
// re-parse on every match; a skip list provides the ordered key index
// used for range scans.
type couchDB struct {
	index     *skiplist.List // key -> encoded VersionedValue
	docs      map[string]map[string]interface{}
	savepoint atomic.Uint64
}

func newCouchDB(seed int64) *couchDB {
	return &couchDB{
		index: skiplist.New(seed),
		docs:  map[string]map[string]interface{}{},
	}
}

func (db *couchDB) Kind() Kind { return CouchDB }

func (db *couchDB) Get(key string) *VersionedValue {
	raw, ok := db.index.Get(key)
	if !ok {
		return nil
	}
	return decodeVV(raw)
}

func (db *couchDB) GetRange(start, end string) []KV {
	var out []KV
	for it := db.index.Range(start, end); it.Valid(); it.Next() {
		vv := decodeVV(it.Value())
		out = append(out, KV{Key: it.Key(), Value: vv.Value, Version: vv.Version})
	}
	return out
}

// ExecuteQuery evaluates a Mango selector over every document, in key
// order. Non-JSON values are skipped, mirroring CouchDB attachments.
func (db *couchDB) ExecuteQuery(query string) ([]KV, error) {
	sel, err := couchq.Parse([]byte(query))
	if err != nil {
		return nil, err
	}
	var out []KV
	for it := db.index.Iter(); it.Valid(); it.Next() {
		doc, ok := db.docs[it.Key()]
		if !ok {
			continue
		}
		if sel.MatchesDoc(doc) {
			vv := decodeVV(it.Value())
			out = append(out, KV{Key: it.Key(), Value: vv.Value, Version: vv.Version})
		}
	}
	return out, nil
}

func (db *couchDB) ApplyUpdates(batch *UpdateBatch, height uint64) error {
	for _, w := range batch.Writes {
		if w.IsDelete {
			db.index.Delete(w.Key)
			delete(db.docs, w.Key)
			continue
		}
		db.index.Put(w.Key, encodeVV(&VersionedValue{Value: w.Value, Version: w.Version}))
		var doc map[string]interface{}
		if err := json.Unmarshal(w.Value, &doc); err == nil {
			db.docs[w.Key] = doc
		} else {
			delete(db.docs, w.Key) // value is not a JSON object
		}
	}
	db.savepoint.Store(height)
	return nil
}

func (db *couchDB) Savepoint() uint64 { return db.savepoint.Load() }

func (db *couchDB) Len() int { return db.index.Len() }

func (db *couchDB) Clone(seed int64) VersionedDB {
	c := newCouchDB(seed)
	c.index = db.index.Clone(seed)
	for k, v := range db.docs {
		c.docs[k] = v // docs are replaced wholesale on write, never mutated
	}
	c.savepoint.Store(db.savepoint.Load())
	return c
}
