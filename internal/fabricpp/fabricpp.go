// Package fabricpp reimplements Fabric++ (Sharma et al., SIGMOD'19) as
// a fabric.Variant: in the ordering phase, each cut batch's conflict
// graph is built, cycles are removed by aborting transactions (a
// greedy approximation of the NP-hard minimum feedback vertex set),
// and the surviving transactions are serialized so that within-block
// conflicts cannot invalidate them (§5.2 of the study).
//
// The defining cost is conflict-graph construction, which probes every
// read key against every transaction's write set: with large range
// reads (DV scans 1000 voters per vote) this work explodes and the
// ordering service becomes the bottleneck — the latency blow-up of
// Fig 18.
package fabricpp

import (
	"time"

	"repro/internal/conflictgraph"
	"repro/internal/fabric"
	"repro/internal/ledger"
)

// Variant is the Fabric++ ordering extension.
type Variant struct {
	// PerLookup prices one read-key probe during graph construction.
	PerLookup time.Duration
	// stats
	reordered int
	aborted   int
}

// New returns the variant with the calibrated graph-probe cost.
func New() *Variant {
	return &Variant{PerLookup: 500 * time.Nanosecond}
}

// Name implements fabric.Variant.
func (v *Variant) Name() string { return "fabric++" }

// Adjust implements fabric.Variant: Fabric++ changes no base costs.
func (v *Variant) Adjust(*fabric.Config) {}

// OnSubmit implements fabric.Variant: no per-transaction action.
func (v *Variant) OnSubmit(*ledger.Transaction) (bool, time.Duration) { return true, 0 }

// OnCut implements fabric.Variant: reorder the batch, abort cycles.
func (v *Variant) OnCut(batch []*ledger.Transaction) ([]*ledger.Transaction, []*ledger.Transaction, time.Duration) {
	if len(batch) <= 1 {
		return batch, nil, 0
	}
	rwsets := make([]*ledger.RWSet, len(batch))
	for i, tx := range batch {
		rwsets[i] = tx.RWSet
	}
	res := conflictgraph.Build(rwsets)
	cost := time.Duration(res.Lookups) * v.PerLookup

	abortedIdx := res.Graph.BreakCycles()
	order := res.Graph.TopoOrder(abortedIdx)

	kept := make([]*ledger.Transaction, 0, len(order))
	for _, i := range order {
		kept = append(kept, batch[i])
	}
	aborted := make([]*ledger.Transaction, 0, len(abortedIdx))
	for _, i := range abortedIdx {
		aborted = append(aborted, batch[i])
	}
	v.reordered += len(kept)
	v.aborted += len(aborted)
	return kept, aborted, cost
}

// SkipMVCC implements fabric.Variant: validation still runs in full —
// inter-block conflicts are not resolvable by within-block reordering
// (§3.2.2).
func (v *Variant) SkipMVCC() bool { return false }

// EndorseSnapshotLag implements fabric.Variant.
func (v *Variant) EndorseSnapshotLag() bool { return false }

// Stats reports how many transactions were serialized and aborted.
func (v *Variant) Stats() (reordered, aborted int) { return v.reordered, v.aborted }

// OnBlockValidated implements fabric.Variant: no feedback needed.
func (v *Variant) OnBlockValidated(*ledger.Block, []ledger.ValidationCode) {}
