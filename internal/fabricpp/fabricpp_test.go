package fabricpp

import (
	"testing"

	"repro/internal/fabrictest"
	"repro/internal/gen"
	"repro/internal/ledger"
)

func TestNoIntraBlockConflictsReachTheChain(t *testing.T) {
	cfg := fabrictest.EHRConfig(1, New())
	nw, rep := fabrictest.Run(t, cfg)
	if got := rep.Counts[ledger.MVCCConflictIntraBlock]; got != 0 {
		t.Errorf("Fabric++ let %d intra-block conflicts reach validation", got)
	}
	if rep.Counts[ledger.MVCCConflictInterBlock] == 0 {
		t.Error("inter-block conflicts should remain (reordering cannot fix them)")
	}
	if rep.Valid == 0 {
		t.Fatal("no valid transactions")
	}
	if err := nw.Chain().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestReducesFailuresVsVanillaOnUpdateHeavy(t *testing.T) {
	// Skewed update-heavy load: many intra-block dependencies that
	// reordering can rescue.
	ppCfg := fabrictest.GenChainConfig(2, New(), gen.UpdateHeavy, 1)
	_, pp := fabrictest.Run(t, ppCfg)
	vCfg := fabrictest.GenChainConfig(2, nil, gen.UpdateHeavy, 1)
	_, vanilla := fabrictest.Run(t, vCfg)
	if pp.FailurePct >= vanilla.FailurePct {
		t.Errorf("Fabric++ failures %.2f%% >= vanilla %.2f%%", pp.FailurePct, vanilla.FailurePct)
	}
	t.Logf("fabric++ %v", pp)
	t.Logf("vanilla  %v", vanilla)
}

func TestAbortsAreCounted(t *testing.T) {
	v := New()
	cfg := fabrictest.GenChainConfig(3, v, gen.UpdateHeavy, 2)
	_, rep := fabrictest.Run(t, cfg)
	_, aborted := v.Stats()
	if rep.Counts[ledger.AbortedInOrdering] != aborted {
		t.Errorf("report aborted %d, variant counted %d",
			rep.Counts[ledger.AbortedInOrdering], aborted)
	}
	if aborted == 0 {
		t.Error("highly skewed update-heavy load should produce cycle aborts")
	}
}

func TestOnCutKeepsSingletons(t *testing.T) {
	v := New()
	tx := &ledger.Transaction{ID: "t", RWSet: &ledger.RWSet{}}
	kept, aborted, cost := v.OnCut([]*ledger.Transaction{tx})
	if len(kept) != 1 || len(aborted) != 0 || cost != 0 {
		t.Fatalf("singleton batch mishandled: %d kept %d aborted", len(kept), len(aborted))
	}
}

func TestOnCutCyclePair(t *testing.T) {
	v := New()
	mk := func(id string) *ledger.Transaction {
		return &ledger.Transaction{ID: id, RWSet: &ledger.RWSet{
			Reads:  []ledger.KVRead{{Key: "hot"}},
			Writes: []ledger.KVWrite{{Key: "hot"}},
		}}
	}
	kept, aborted, cost := v.OnCut([]*ledger.Transaction{mk("a"), mk("b")})
	if len(kept) != 1 || len(aborted) != 1 {
		t.Fatalf("r-m-w pair: kept %d aborted %d", len(kept), len(aborted))
	}
	if cost <= 0 {
		t.Error("graph construction should cost time")
	}
}

func TestReorderingCostGrowsWithRangeReads(t *testing.T) {
	v := New()
	small := &ledger.Transaction{ID: "s", RWSet: &ledger.RWSet{
		Reads: []ledger.KVRead{{Key: "a"}}, Writes: []ledger.KVWrite{{Key: "b"}},
	}}
	bigScan := &ledger.RWSet{Writes: []ledger.KVWrite{{Key: "w"}}}
	rq := ledger.RangeQueryInfo{StartKey: "k0", EndKey: "k9"}
	for i := 0; i < 1000; i++ {
		rq.Reads = append(rq.Reads, ledger.KVRead{Key: "k5"})
	}
	bigScan.RangeQueries = []ledger.RangeQueryInfo{rq}
	big := &ledger.Transaction{ID: "b", RWSet: bigScan}

	_, _, smallCost := v.OnCut([]*ledger.Transaction{small, small})
	_, _, bigCost := v.OnCut([]*ledger.Transaction{big, big})
	if bigCost <= smallCost {
		t.Errorf("1000-key scans cost %v <= small cost %v", bigCost, smallCost)
	}
}
