package ledger

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeightCompare(t *testing.T) {
	cases := []struct {
		a, b Height
		want int
	}{
		{Height{1, 2}, Height{1, 2}, 0},
		{Height{1, 2}, Height{1, 3}, -1},
		{Height{2, 0}, Height{1, 9}, 1},
		{Height{0, 0}, Height{0, 1}, -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHeightString(t *testing.T) {
	if s := (Height{3, 7}).String(); s != "3:7" {
		t.Errorf("String = %q", s)
	}
}

func TestRWSetDependsOn(t *testing.T) {
	w := &RWSet{Writes: []KVWrite{{Key: "a"}, {Key: "b"}}}
	r := &RWSet{Reads: []KVRead{{Key: "b"}}}
	if !r.DependsOn(w) {
		t.Error("read b should depend on write b")
	}
	r2 := &RWSet{Reads: []KVRead{{Key: "c"}}}
	if r2.DependsOn(w) {
		t.Error("read c should not depend on writes a,b")
	}
}

func TestRWSetDependsOnRangeInsert(t *testing.T) {
	// A write inside a scanned interval is a dependency even when the
	// key was not observed (phantom insertion).
	r := &RWSet{RangeQueries: []RangeQueryInfo{{StartKey: "k10", EndKey: "k20"}}}
	w := &RWSet{Writes: []KVWrite{{Key: "k15"}}}
	if !r.DependsOn(w) {
		t.Error("range [k10,k20) should depend on write k15")
	}
	w2 := &RWSet{Writes: []KVWrite{{Key: "k25"}}}
	if r.DependsOn(w2) {
		t.Error("range [k10,k20) should not depend on write k25")
	}
}

func TestUncheckedRangeNeverDepends(t *testing.T) {
	r := &RWSet{RangeQueries: []RangeQueryInfo{{
		StartKey: "a", EndKey: "z", Unchecked: true,
		Reads: []KVRead{{Key: "m"}},
	}}}
	w := &RWSet{Writes: []KVWrite{{Key: "m"}}}
	if r.DependsOn(w) {
		t.Error("unchecked rich-query range must not create dependencies")
	}
}

func TestDigestDistinguishesVersions(t *testing.T) {
	a := &RWSet{Reads: []KVRead{{Key: "k", Version: Height{1, 0}}}}
	b := &RWSet{Reads: []KVRead{{Key: "k", Version: Height{2, 0}}}}
	if a.Digest() == b.Digest() {
		t.Error("different read versions must give different digests")
	}
	if !a.Equal(a) {
		t.Error("rwset not equal to itself")
	}
	if a.Equal(b) {
		t.Error("distinct rwsets reported equal")
	}
}

// Property: the digest is a pure function of the rwset contents.
func TestDigestDeterministic(t *testing.T) {
	f := func(keys []string, bn, tn uint8) bool {
		mk := func() *RWSet {
			rw := &RWSet{}
			for _, k := range keys {
				rw.Reads = append(rw.Reads, KVRead{Key: k, Version: Height{uint64(bn), uint64(tn)}})
				rw.Writes = append(rw.Writes, KVWrite{Key: k, Value: []byte(k)})
			}
			return rw
		}
		return mk().Digest() == mk().Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestValidationCodeStrings(t *testing.T) {
	cases := map[ValidationCode]string{
		Valid:                    "VALID",
		MVCCConflictInterBlock:   "MVCC_READ_CONFLICT_INTER_BLOCK",
		MVCCConflictIntraBlock:   "MVCC_READ_CONFLICT_INTRA_BLOCK",
		PhantomReadConflict:      "PHANTOM_READ_CONFLICT",
		EndorsementPolicyFailure: "ENDORSEMENT_POLICY_FAILURE",
		AbortedInOrdering:        "ABORTED_IN_ORDERING",
	}
	for code, want := range cases {
		if code.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(code), code.String(), want)
		}
	}
	if !MVCCConflictIntraBlock.IsMVCC() || !MVCCConflictInterBlock.IsMVCC() {
		t.Error("IsMVCC false for MVCC codes")
	}
	if Valid.IsMVCC() || PhantomReadConflict.IsMVCC() {
		t.Error("IsMVCC true for non-MVCC code")
	}
}

func TestReadWriteKeys(t *testing.T) {
	rw := &RWSet{
		Reads:  []KVRead{{Key: "r1"}},
		Writes: []KVWrite{{Key: "w1"}, {Key: "w2"}},
		RangeQueries: []RangeQueryInfo{{
			StartKey: "a", EndKey: "b",
			Reads: []KVRead{{Key: "a1"}},
		}},
	}
	if got := rw.ReadKeys(); len(got) != 2 || got[0] != "r1" || got[1] != "a1" {
		t.Errorf("ReadKeys = %v", got)
	}
	if got := rw.WriteKeys(); len(got) != 2 || got[0] != "w1" {
		t.Errorf("WriteKeys = %v", got)
	}
}

func mkTx(id string) *Transaction {
	return &Transaction{ID: id, RWSet: &RWSet{Writes: []KVWrite{{Key: id}}}}
}

func mkBlock(n uint64, prev [32]byte, txs ...*Transaction) *Block {
	b := &Block{Number: n, PrevHash: prev, Transactions: txs,
		ValidationCodes: make([]ValidationCode, len(txs))}
	b.Hash = b.ComputeHash()
	return b
}

func TestChainAppendAndVerify(t *testing.T) {
	c := NewChain()
	b0 := mkBlock(0, [32]byte{}, mkTx("t0"), mkTx("t1"))
	if err := c.Append(b0); err != nil {
		t.Fatal(err)
	}
	b1 := mkBlock(1, b0.Hash, mkTx("t2"))
	if err := c.Append(b1); err != nil {
		t.Fatal(err)
	}
	if c.Height() != 2 || c.TxCount() != 3 {
		t.Fatalf("height=%d txs=%d", c.Height(), c.TxCount())
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if c.Block(0) != b0 || c.Block(5) != nil {
		t.Error("Block lookup wrong")
	}
}

func TestChainRejectsBadLinkage(t *testing.T) {
	c := NewChain()
	b0 := mkBlock(0, [32]byte{}, mkTx("t0"))
	if err := c.Append(b0); err != nil {
		t.Fatal(err)
	}
	bad := mkBlock(1, [32]byte{0xff}, mkTx("t1"))
	if err := c.Append(bad); err == nil {
		t.Fatal("appended block with wrong prev-hash")
	}
	wrongNum := mkBlock(7, b0.Hash, mkTx("t1"))
	if err := c.Append(wrongNum); err == nil {
		t.Fatal("appended block with wrong number")
	}
}

func TestChainRejectsMissingValidationCodes(t *testing.T) {
	c := NewChain()
	b := &Block{Number: 0, Transactions: []*Transaction{mkTx("t0")}}
	b.Hash = b.ComputeHash()
	if err := c.Append(b); err == nil {
		t.Fatal("appended block lacking validation codes")
	}
}

func TestChainDetectsTamper(t *testing.T) {
	c := NewChain()
	b0 := mkBlock(0, [32]byte{}, mkTx("t0"))
	b1 := mkBlock(1, b0.Hash, mkTx("t1"))
	if err := c.Append(b0); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(b1); err != nil {
		t.Fatal(err)
	}
	// Tamper with an already-appended transaction.
	b0.Transactions[0].RWSet.Writes[0].Key = "evil"
	if err := c.Verify(); err == nil {
		t.Fatal("Verify did not detect tampering")
	}
}

// Property: any chain built with correct linkage verifies.
func TestChainLinkageProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		c := NewChain()
		var prev [32]byte
		for i, sz := range sizes {
			n := int(sz%5) + 1
			txs := make([]*Transaction, n)
			for j := range txs {
				txs[j] = mkTx(string(rune('a'+i)) + string(rune('0'+j)))
			}
			b := mkBlock(uint64(i), prev, txs...)
			if c.Append(b) != nil {
				return false
			}
			prev = b.Hash
		}
		return c.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestBlockMarshalSummary(t *testing.T) {
	b := mkBlock(0, [32]byte{}, mkTx("t0"))
	b.ValidationCodes[0] = MVCCConflictIntraBlock
	data, err := b.MarshalSummary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty summary")
	}
}
