package ledger

import (
	"errors"
	"fmt"
)

// Chain is the append-only block store ("distributed ledger" in §2).
// Both failed and successful transactions are stored; the paper's
// metrics are produced by parsing this chain after the run (§4.5).
type Chain struct {
	blocks []*Block
}

// NewChain returns an empty chain.
func NewChain() *Chain { return &Chain{} }

// Height returns the number of appended blocks.
func (c *Chain) Height() uint64 { return uint64(len(c.blocks)) }

// Append adds a block, checking number continuity and hash linkage.
func (c *Chain) Append(b *Block) error {
	if b.Number != uint64(len(c.blocks)) {
		return fmt.Errorf("ledger: block number %d, want %d", b.Number, len(c.blocks))
	}
	if len(c.blocks) > 0 && b.PrevHash != c.blocks[len(c.blocks)-1].Hash {
		return errors.New("ledger: previous-hash mismatch")
	}
	if len(b.ValidationCodes) != len(b.Transactions) {
		return fmt.Errorf("ledger: %d validation codes for %d transactions",
			len(b.ValidationCodes), len(b.Transactions))
	}
	c.blocks = append(c.blocks, b)
	return nil
}

// Block returns block n, or nil when out of range.
func (c *Chain) Block(n uint64) *Block {
	if n >= uint64(len(c.blocks)) {
		return nil
	}
	return c.blocks[n]
}

// Blocks returns the underlying slice (not a copy); callers must not
// mutate it.
func (c *Chain) Blocks() []*Block { return c.blocks }

// Verify re-checks the whole hash chain, returning the first error.
func (c *Chain) Verify() error {
	var prev [32]byte
	for i, b := range c.blocks {
		if b.Number != uint64(i) {
			return fmt.Errorf("ledger: block %d stored at index %d", b.Number, i)
		}
		if b.PrevHash != prev {
			return fmt.Errorf("ledger: block %d prev-hash mismatch", i)
		}
		if got := b.ComputeHash(); got != b.Hash {
			return fmt.Errorf("ledger: block %d hash mismatch", i)
		}
		prev = b.Hash
	}
	return nil
}

// TxCount returns the total number of transactions on the chain.
func (c *Chain) TxCount() int {
	n := 0
	for _, b := range c.blocks {
		n += len(b.Transactions)
	}
	return n
}
