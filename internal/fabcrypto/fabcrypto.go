// Package fabcrypto provides the identity and signature substrate of
// the simulated network: organizations, peer identities and an
// MSP-like registry. Signatures are HMAC-SHA256 over the signed
// digest; the study's endorsement-policy logic only needs signatures
// that are verifiable and bound to an identity, not a particular
// cipher, so a keyed MAC stands in for X.509/ECDSA (documented
// substitution in DESIGN.md).
package fabcrypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"sort"
)

// Identity is a signing principal: a peer (or client) belonging to an
// organization.
type Identity struct {
	Org string
	ID  string
	key []byte
}

// Sign produces a signature over digest.
func (id *Identity) Sign(digest []byte) []byte {
	m := hmac.New(sha256.New, id.key)
	m.Write(digest)
	return m.Sum(nil)
}

// MSP is the membership service provider: it registers identities and
// verifies signatures against them.
type MSP struct {
	identities map[string]*Identity // "org/id" -> identity
	orgs       map[string][]string  // org -> member ids (sorted)
	secret     []byte
}

// NewMSP creates an empty registry. The secret seeds per-identity
// keys deterministically.
func NewMSP(secret string) *MSP {
	return &MSP{
		identities: map[string]*Identity{},
		orgs:       map[string][]string{},
		secret:     []byte(secret),
	}
}

func qualify(org, id string) string { return org + "/" + id }

// Register creates (or returns) the identity org/id.
func (m *MSP) Register(org, id string) *Identity {
	q := qualify(org, id)
	if existing, ok := m.identities[q]; ok {
		return existing
	}
	mac := hmac.New(sha256.New, m.secret)
	mac.Write([]byte(q))
	ident := &Identity{Org: org, ID: id, key: mac.Sum(nil)}
	m.identities[q] = ident
	m.orgs[org] = append(m.orgs[org], id)
	sort.Strings(m.orgs[org])
	return ident
}

// Lookup returns a registered identity or nil.
func (m *MSP) Lookup(org, id string) *Identity {
	return m.identities[qualify(org, id)]
}

// Verify checks that sig is a valid signature by org/id over digest.
func (m *MSP) Verify(org, id string, digest, sig []byte) bool {
	ident := m.Lookup(org, id)
	if ident == nil {
		return false
	}
	return hmac.Equal(ident.Sign(digest), sig)
}

// Orgs lists all registered organizations in sorted order.
func (m *MSP) Orgs() []string {
	out := make([]string, 0, len(m.orgs))
	for o := range m.orgs {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Members lists the identity IDs registered under org.
func (m *MSP) Members(org string) []string {
	return append([]string(nil), m.orgs[org]...)
}

// OrgName formats the canonical organization name used across the
// simulation ("Org0", "Org1", ...).
func OrgName(i int) string { return fmt.Sprintf("Org%d", i) }

// PeerName formats the canonical peer name within an org.
func PeerName(org string, i int) string { return fmt.Sprintf("%s-peer%d", org, i) }
