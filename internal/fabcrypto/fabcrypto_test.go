package fabcrypto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSignVerify(t *testing.T) {
	msp := NewMSP("secret")
	id := msp.Register("Org0", "peer0")
	digest := []byte("payload-digest")
	sig := id.Sign(digest)
	if !msp.Verify("Org0", "peer0", digest, sig) {
		t.Fatal("valid signature rejected")
	}
	if msp.Verify("Org0", "peer0", []byte("other"), sig) {
		t.Fatal("signature accepted for wrong digest")
	}
	if msp.Verify("Org1", "peer0", digest, sig) {
		t.Fatal("signature accepted for unregistered identity")
	}
}

func TestDistinctIdentitiesDistinctSignatures(t *testing.T) {
	msp := NewMSP("secret")
	a := msp.Register("Org0", "peer0")
	b := msp.Register("Org0", "peer1")
	d := []byte("digest")
	if string(a.Sign(d)) == string(b.Sign(d)) {
		t.Fatal("two identities produced identical signatures")
	}
	if msp.Verify("Org0", "peer1", d, a.Sign(d)) {
		t.Fatal("peer1 verified peer0's signature")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	msp := NewMSP("s")
	a := msp.Register("Org0", "peer0")
	b := msp.Register("Org0", "peer0")
	if a != b {
		t.Fatal("re-registering returned a different identity")
	}
	if got := msp.Members("Org0"); len(got) != 1 {
		t.Fatalf("Members = %v", got)
	}
}

func TestOrgsAndMembersSorted(t *testing.T) {
	msp := NewMSP("s")
	msp.Register("Org2", "b")
	msp.Register("Org0", "z")
	msp.Register("Org0", "a")
	msp.Register("Org1", "m")
	os := msp.Orgs()
	if len(os) != 3 || os[0] != "Org0" || os[2] != "Org2" {
		t.Errorf("Orgs = %v", os)
	}
	ms := msp.Members("Org0")
	if len(ms) != 2 || ms[0] != "a" || ms[1] != "z" {
		t.Errorf("Members = %v", ms)
	}
}

func TestLookupMissing(t *testing.T) {
	msp := NewMSP("s")
	if msp.Lookup("nope", "nobody") != nil {
		t.Fatal("Lookup returned identity for unregistered name")
	}
}

func TestNames(t *testing.T) {
	if OrgName(3) != "Org3" {
		t.Errorf("OrgName = %q", OrgName(3))
	}
	if PeerName("Org3", 1) != "Org3-peer1" {
		t.Errorf("PeerName = %q", PeerName("Org3", 1))
	}
}

func TestDeterministicAcrossMSPInstances(t *testing.T) {
	a := NewMSP("same-secret").Register("Org0", "peer0")
	b := NewMSP("same-secret").Register("Org0", "peer0")
	d := []byte("digest")
	if string(a.Sign(d)) != string(b.Sign(d)) {
		t.Fatal("same secret+identity gave different signatures")
	}
	c := NewMSP("other-secret").Register("Org0", "peer0")
	if string(a.Sign(d)) == string(c.Sign(d)) {
		t.Fatal("different secrets gave identical signatures")
	}
}

// Property: round-trip verification holds for arbitrary org/id/digest.
func TestSignVerifyProperty(t *testing.T) {
	msp := NewMSP("prop")
	f := func(org, id string, digest []byte) bool {
		if org == "" || id == "" {
			return true
		}
		ident := msp.Register(org, id)
		return msp.Verify(org, id, digest, ident.Sign(digest))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Error(err)
	}
}
