package fabricsharp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fabrictest"
	"repro/internal/gen"
	"repro/internal/ledger"
)

func TestNoMVCCConflictsOnChain(t *testing.T) {
	cfg := fabrictest.EHRConfig(1, New())
	nw, rep := fabrictest.Run(t, cfg)
	if rep.Counts[ledger.MVCCConflictInterBlock]+rep.Counts[ledger.MVCCConflictIntraBlock] != 0 {
		t.Errorf("FabricSharp let MVCC conflicts reach the chain: %v", rep)
	}
	if rep.Counts[ledger.PhantomReadConflict] != 0 {
		t.Errorf("phantom conflicts on chain: %v", rep)
	}
	if rep.Valid == 0 {
		t.Fatal("no valid transactions")
	}
	if err := nw.Chain().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSerializesRMWStormsInsteadOfAborting(t *testing.T) {
	// Heavily skewed update-heavy genChain: stock Fabric fails a large
	// share to MVCC conflicts; FabricSharp serializes them (§5.4.3).
	sharpCfg := fabrictest.GenChainConfig(2, New(), gen.UpdateHeavy, 2)
	_, sharp := fabrictest.Run(t, sharpCfg)
	vCfg := fabrictest.GenChainConfig(2, nil, gen.UpdateHeavy, 2)
	_, vanilla := fabrictest.Run(t, vCfg)
	if sharp.FailurePct >= vanilla.FailurePct {
		t.Errorf("sharp failures %.2f%% >= vanilla %.2f%%", sharp.FailurePct, vanilla.FailurePct)
	}
	if sharp.FailurePct >= vanilla.FailurePct/2 {
		t.Errorf("sharp should cut failures by far more: %.2f%% vs %.2f%%",
			sharp.FailurePct, vanilla.FailurePct)
	}
	t.Logf("sharp   %v", sharp)
	t.Logf("vanilla %v", vanilla)
}

func TestFailedTxsNeverReachChain(t *testing.T) {
	cfg := fabrictest.EHRConfig(3, New())
	nw, rep := fabrictest.Run(t, cfg)
	// Chain carries only valid and endorsement-failed transactions
	// (§5.4.2: "only commits successful transactions (and endorsement
	// failures)").
	for _, b := range nw.Chain().Blocks() {
		for _, code := range b.ValidationCodes {
			if code != ledger.Valid && code != ledger.EndorsementPolicyFailure {
				t.Fatalf("code %v on chain", code)
			}
		}
	}
	if rep.Counts[ledger.AbortedInOrdering] == 0 {
		t.Log("no early aborts in this window (possible but unexpected for EHR)")
	}
}

func TestCommittedThroughputBelowVanilla(t *testing.T) {
	// A workload with early aborts: every abort is a transaction that
	// never reaches the chain, so committed throughput drops below
	// vanilla's (§5.4.2).
	sharpCfg := fabrictest.GenChainConfig(4, New(), gen.UpdateHeavy, 2)
	_, sharp := fabrictest.Run(t, sharpCfg)
	vCfg := fabrictest.GenChainConfig(4, nil, gen.UpdateHeavy, 2)
	_, vanilla := fabrictest.Run(t, vCfg)
	if sharp.Counts[ledger.AbortedInOrdering] == 0 {
		t.Fatal("expected early aborts under skewed update-heavy load")
	}
	if sharp.Committed >= vanilla.Committed {
		t.Errorf("sharp committed %d >= vanilla %d (aborts never reach the chain)",
			sharp.Committed, vanilla.Committed)
	}
}

func TestRangeQueriesRejected(t *testing.T) {
	v := New()
	tx := &ledger.Transaction{ID: "t", RWSet: &ledger.RWSet{
		RangeQueries: []ledger.RangeQueryInfo{{StartKey: "a", EndKey: "z"}},
	}}
	accept, _ := v.OnSubmit(tx)
	if accept {
		t.Fatal("checked range query accepted by FabricSharp")
	}
	rich := &ledger.Transaction{ID: "r", RWSet: &ledger.RWSet{
		RangeQueries: []ledger.RangeQueryInfo{{Unchecked: true}},
	}}
	if accept, _ := v.OnSubmit(rich); !accept {
		t.Fatal("unchecked rich query should be accepted")
	}
}

func TestSnapshotSchedulerUnit(t *testing.T) {
	v := New()
	h1 := ledger.Height{BlockNum: 1, TxNum: 0}
	// T1: blind write of k (no reads) -> schedule.
	t1 := &ledger.Transaction{ID: "t1", RWSet: &ledger.RWSet{
		Writes: []ledger.KVWrite{{Key: "k"}},
	}}
	if ok, _ := v.OnSubmit(t1); !ok {
		t.Fatal("t1 rejected")
	}
	// Commit t1 at height 1:0.
	b := &ledger.Block{Number: 1, Transactions: []*ledger.Transaction{t1}}
	v.OnBlockValidated(b, []ledger.ValidationCode{ledger.Valid})

	// T2 and T3 both read k@1:0 and write k — a storm stock Fabric
	// would fail; the interval scheduler serializes both.
	mk := func(id string) *ledger.Transaction {
		return &ledger.Transaction{ID: id, RWSet: &ledger.RWSet{
			Reads:  []ledger.KVRead{{Key: "k", Version: h1}},
			Writes: []ledger.KVWrite{{Key: "k"}},
		}}
	}
	if ok, _ := v.OnSubmit(mk("t2")); !ok {
		t.Fatal("t2 rejected")
	}
	if ok, _ := v.OnSubmit(mk("t3")); !ok {
		t.Fatal("t3 rejected: serializable storm aborted")
	}
	commits, aborts := v.Stats()
	if commits != 3 || aborts != 0 {
		t.Fatalf("stats = %d commits %d aborts", commits, aborts)
	}
}

func TestInconsistentSnapshotAborts(t *testing.T) {
	v := New()
	// Block 1 commits writers of a and b.
	wA := &ledger.Transaction{ID: "wa", RWSet: &ledger.RWSet{Writes: []ledger.KVWrite{{Key: "a"}}}}
	wB := &ledger.Transaction{ID: "wb", RWSet: &ledger.RWSet{Writes: []ledger.KVWrite{{Key: "b"}}}}
	v.OnSubmit(wA)
	v.OnSubmit(wB)
	b1 := &ledger.Block{Number: 1, Transactions: []*ledger.Transaction{wA, wB}}
	v.OnBlockValidated(b1, []ledger.ValidationCode{ledger.Valid, ledger.Valid})
	hA := ledger.Height{BlockNum: 1, TxNum: 0}
	hB := ledger.Height{BlockNum: 1, TxNum: 1}

	// Block 2 supersedes b.
	w2 := &ledger.Transaction{ID: "w2", RWSet: &ledger.RWSet{Writes: []ledger.KVWrite{{Key: "b"}}}}
	v.OnSubmit(w2)
	b2 := &ledger.Block{Number: 2, Transactions: []*ledger.Transaction{w2}}
	v.OnBlockValidated(b2, []ledger.ValidationCode{ledger.Valid})
	hB2 := ledger.Height{BlockNum: 2, TxNum: 0}

	// Block 3 supersedes a.
	w3 := &ledger.Transaction{ID: "w3", RWSet: &ledger.RWSet{Writes: []ledger.KVWrite{{Key: "a"}}}}
	v.OnSubmit(w3)
	b3 := &ledger.Block{Number: 3, Transactions: []*ledger.Transaction{w3}}
	v.OnBlockValidated(b3, []ledger.ValidationCode{ledger.Valid})
	hA3 := ledger.Height{BlockNum: 3, TxNum: 0}

	// Consistent stale snapshot: a@hA with b@hB (both current
	// together before block 2) — commits despite being stale.
	ok1 := &ledger.Transaction{ID: "ok1", RWSet: &ledger.RWSet{
		Reads: []ledger.KVRead{{Key: "a", Version: hA}, {Key: "b", Version: hB}},
	}}
	if accept, _ := v.OnSubmit(ok1); !accept {
		t.Fatal("consistent stale snapshot rejected")
	}
	// Inconsistent snapshot: b@hB was superseded at block 2, while
	// a@hA3 only became current at block 3 — the windows never
	// overlap, so no serialization point exists.
	bad := &ledger.Transaction{ID: "bad", RWSet: &ledger.RWSet{
		Reads: []ledger.KVRead{{Key: "b", Version: hB}, {Key: "a", Version: hA3}},
	}}
	if accept, _ := v.OnSubmit(bad); accept {
		t.Fatal("inconsistent snapshot accepted")
	}
	// New b with new a is again consistent.
	ok2 := &ledger.Transaction{ID: "ok2", RWSet: &ledger.RWSet{
		Reads: []ledger.KVRead{{Key: "b", Version: hB2}, {Key: "a", Version: hA3}},
	}}
	if accept, _ := v.OnSubmit(ok2); !accept {
		t.Fatal("fresh consistent snapshot rejected")
	}
}

// Property: adding reads to a transaction can only shrink (never grow)
// its serialization window — snapshotConsistent is monotone in the
// read set.
func TestSnapshotConsistencyMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 50; trial++ {
		v := New()
		// Build a random committed history over 6 keys.
		heights := map[string][]ledger.Height{}
		for b := uint64(1); b <= 8; b++ {
			var txs []*ledger.Transaction
			var codes []ledger.ValidationCode
			for i := 0; i < 3; i++ {
				key := string(rune('a' + rng.Intn(6)))
				txs = append(txs, &ledger.Transaction{
					ID:    fmt.Sprintf("t%d-%d", b, i),
					RWSet: &ledger.RWSet{Writes: []ledger.KVWrite{{Key: key}}},
				})
				codes = append(codes, ledger.Valid)
				heights[key] = append(heights[key], ledger.Height{BlockNum: b, TxNum: uint64(i)})
			}
			v.OnBlockValidated(&ledger.Block{Number: b, Transactions: txs}, codes)
		}
		// Random read set, evaluated incrementally.
		var rw ledger.RWSet
		prev := true
		for i := 0; i < 4; i++ {
			key := string(rune('a' + rng.Intn(6)))
			vers := heights[key]
			if len(vers) == 0 {
				continue
			}
			rw.Reads = append(rw.Reads, ledger.KVRead{
				Key: key, Version: vers[rng.Intn(len(vers))],
			})
			cur := v.snapshotConsistent(&rw)
			if cur && !prev {
				t.Fatalf("trial %d: adding a read made an inconsistent snapshot consistent", trial)
			}
			prev = cur
		}
	}
}
