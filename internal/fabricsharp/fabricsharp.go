// Package fabricsharp reimplements FabricSharp (Ruan et al.,
// SIGMOD'20, "A Transactional Perspective on Execute-Order-Validate
// Blockchains") as a fabric.Variant. The orderer runs an optimistic
// concurrency-control scheduler with transaction reordering: instead
// of Fabric's "reads must be current at commit" rule, a transaction
// may be serialized *into the past* — it commits as long as there was
// a single point in commit history at which all its reads were
// simultaneously current (a consistent snapshot). Stale
// read-modify-write storms on a hot key, which stock Fabric fails
// wholesale as MVCC read conflicts, all commit under this rule; only
// transactions whose reads straddle incompatible snapshots (a cycle in
// the serialization graph) are aborted, before ordering.
//
// Scheduled transactions skip the MVCC/phantom checks at validation
// (the orderer already serialized them), so no MVCC read conflicts
// ever reach the chain, and aborted transactions never reach it at
// all — which is why the study measures a lower committed throughput
// (§5.4.2). Range queries are not supported (§5.4.3): transactions
// carrying checked range reads are rejected at the orderer.
package fabricsharp

import (
	"time"

	"repro/internal/fabric"
	"repro/internal/ledger"
)

// window is the half-open interval of global sequence numbers during
// which one version of a key was the latest. to == 0 means still
// current.
type window struct {
	height   ledger.Height
	from, to uint64
}

// keyState tracks a key's recent version windows, ascending.
type keyState struct {
	windows []window
}

const historyDepth = 16

// Variant is the FabricSharp ordering extension.
type Variant struct {
	// PerOp prices one scheduler probe (per read/write key).
	PerOp time.Duration
	// Base is the fixed scheduler cost per transaction.
	Base time.Duration

	keys    map[string]*keyState
	gsn     uint64 // global sequence number, one tick per committed tx
	aborts  int
	commits int
}

// New returns the variant with calibrated scheduler costs.
func New() *Variant {
	return &Variant{
		PerOp: 2 * time.Microsecond,
		Base:  300 * time.Microsecond,
		keys:  map[string]*keyState{},
	}
}

// Name implements fabric.Variant.
func (v *Variant) Name() string { return "fabricsharp" }

// Adjust implements fabric.Variant: FabricSharp keeps stock costs.
func (v *Variant) Adjust(*fabric.Config) {}

// Stats reports scheduler decisions.
func (v *Variant) Stats() (commits, aborts int) { return v.commits, v.aborts }

// OnSubmit implements fabric.Variant: the scheduling decision.
func (v *Variant) OnSubmit(tx *ledger.Transaction) (bool, time.Duration) {
	rw := tx.RWSet
	cost := v.Base + time.Duration(len(rw.Reads)+len(rw.Writes))*v.PerOp

	// Range queries are not supported by FabricSharp (§5.4.3).
	for _, rq := range rw.RangeQueries {
		if !rq.Unchecked {
			v.aborts++
			return false, cost
		}
	}

	// Mismatching endorsements will fail VSCC anyway; forward them so
	// the failure is recorded on the chain (§5.4.2: FabricSharp
	// commits successful transactions and endorsement failures).
	if !endorsementsConsistent(tx) {
		return true, cost
	}

	if !v.snapshotConsistent(rw) {
		v.aborts++
		return false, cost
	}
	v.commits++
	return true, cost
}

// snapshotConsistent reports whether all reads were simultaneously
// current at some point of commit history: the intersection of the
// versions' validity windows is non-empty.
func (v *Variant) snapshotConsistent(rw *ledger.RWSet) bool {
	lo := uint64(0)
	hi := v.gsn + 1 // +inf, effectively: "still open"
	open := true    // whether hi is unbounded
	for _, r := range rw.Reads {
		ks := v.keys[r.Key]
		if ks == nil {
			continue // genesis or untracked key: always current
		}
		from, to, known := ks.windowOf(r.Version)
		if !known {
			continue // pruned history: no constraint (lenient)
		}
		if from > lo {
			lo = from
		}
		if to != 0 { // superseded: bounded window
			if open || to < hi {
				hi = to
				open = false
			}
		}
	}
	if open {
		return true
	}
	return lo < hi
}

// windowOf locates the validity window of a version. known is false
// when the version predates the tracked history.
func (ks *keyState) windowOf(h ledger.Height) (from, to uint64, known bool) {
	for _, w := range ks.windows {
		if w.height == h {
			return w.from, w.to, true
		}
	}
	if len(ks.windows) > 0 && h.Compare(ks.windows[0].height) < 0 {
		// Older than everything tracked: it was superseded no later
		// than when the oldest tracked version appeared.
		return 0, ks.windows[0].from, true
	}
	return 0, 0, false
}

func endorsementsConsistent(tx *ledger.Transaction) bool {
	if len(tx.Endorsements) < 2 {
		return true
	}
	first := tx.Endorsements[0].RWSet.Digest()
	for _, e := range tx.Endorsements[1:] {
		if e.RWSet.Digest() != first {
			return false
		}
	}
	return true
}

// OnCut implements fabric.Variant: scheduling already happened per
// transaction; blocks pass through unchanged.
func (v *Variant) OnCut(batch []*ledger.Transaction) ([]*ledger.Transaction, []*ledger.Transaction, time.Duration) {
	return batch, nil, 0
}

// SkipMVCC implements fabric.Variant: the orderer serialized
// everything; validation only checks endorsements.
func (v *Variant) SkipMVCC() bool { return true }

// EndorseSnapshotLag implements fabric.Variant. The study's observed
// endorsement-failure increase (§5.4.1) emerges in this model from the
// higher world-state update rate alone (the §5.2.2 mechanism: more
// successful commits mean more replica churn).
func (v *Variant) EndorseSnapshotLag() bool { return false }

// OnBlockValidated implements fabric.Variant: advance the version
// windows with the block's committed writes, in block order.
func (v *Variant) OnBlockValidated(b *ledger.Block, codes []ledger.ValidationCode) {
	for i, tx := range b.Transactions {
		if codes[i] != ledger.Valid {
			continue
		}
		v.gsn++
		h := ledger.Height{BlockNum: b.Number, TxNum: uint64(i)}
		for _, w := range tx.RWSet.Writes {
			ks := v.keys[w.Key]
			if ks == nil {
				ks = &keyState{}
				v.keys[w.Key] = ks
			}
			if n := len(ks.windows); n > 0 && ks.windows[n-1].to == 0 {
				ks.windows[n-1].to = v.gsn
			}
			ks.windows = append(ks.windows, window{height: h, from: v.gsn})
			if len(ks.windows) > historyDepth {
				ks.windows = ks.windows[len(ks.windows)-historyDepth:]
			}
		}
	}
}
