package netem

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSendPaysLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	m := New(eng, Link{Base: 10 * time.Millisecond})
	var arrived sim.Time
	m.Send("a", "b", func() { arrived = eng.Now() })
	eng.Run()
	if arrived != sim.Time(10*time.Millisecond) {
		t.Errorf("arrived at %v, want 10ms", arrived)
	}
}

func TestJitterWithinBounds(t *testing.T) {
	eng := sim.NewEngine(2)
	m := New(eng, Link{Base: 10 * time.Millisecond, Jitter: 2 * time.Millisecond})
	for i := 0; i < 500; i++ {
		d := m.sample("a", "b")
		if d < 8*time.Millisecond || d >= 12*time.Millisecond {
			t.Fatalf("sample %v outside 10±2ms", d)
		}
	}
}

func TestInjectAddsDelayBothDirections(t *testing.T) {
	eng := sim.NewEngine(3)
	m := New(eng, Link{Base: time.Millisecond})
	m.Inject("Org1-peer0", Link{Base: 100 * time.Millisecond})
	if d := m.sample("client", "Org1-peer0"); d != 101*time.Millisecond {
		t.Errorf("to injected node: %v, want 101ms", d)
	}
	if d := m.sample("Org1-peer0", "client"); d != 101*time.Millisecond {
		t.Errorf("from injected node: %v, want 101ms", d)
	}
	if d := m.sample("client", "Org0-peer0"); d != time.Millisecond {
		t.Errorf("untouched link: %v, want 1ms", d)
	}
}

func TestInjectRemoval(t *testing.T) {
	eng := sim.NewEngine(4)
	m := New(eng, Link{Base: time.Millisecond})
	m.Inject("n", Link{Base: 50 * time.Millisecond})
	m.Inject("n", Link{})
	if d := m.sample("n", "x"); d != time.Millisecond {
		t.Errorf("delay after removal: %v", d)
	}
}

func TestInjectedJitterEmulatesPumba(t *testing.T) {
	// The paper's emulation: 100 ± 10 ms on one organization.
	eng := sim.NewEngine(5)
	m := New(eng, Link{Base: 500 * time.Microsecond})
	m.Inject("Org0-peer0", Link{Base: 100 * time.Millisecond, Jitter: 10 * time.Millisecond})
	for i := 0; i < 200; i++ {
		d := m.sample("client", "Org0-peer0")
		min := 500*time.Microsecond + 90*time.Millisecond
		max := 500*time.Microsecond + 110*time.Millisecond
		if d < min || d >= max {
			t.Fatalf("sample %v outside Pumba band", d)
		}
	}
}

func TestRTTisTwoSamples(t *testing.T) {
	eng := sim.NewEngine(6)
	m := New(eng, Link{Base: 3 * time.Millisecond})
	if rtt := m.RTT("a", "b"); rtt != 6*time.Millisecond {
		t.Errorf("RTT = %v, want 6ms", rtt)
	}
}

func TestDefaultLANSane(t *testing.T) {
	l := DefaultLAN()
	if l.Base <= 0 || l.Jitter <= 0 || l.Jitter >= l.Base {
		t.Errorf("DefaultLAN = %+v", l)
	}
}

func TestSendOrderedFIFO(t *testing.T) {
	eng := sim.NewEngine(7)
	m := New(eng, Link{Base: 5 * time.Millisecond, Jitter: 4 * time.Millisecond})
	var got []int
	// A burst of messages on one link must arrive in send order even
	// though each samples independent jitter.
	for i := 0; i < 200; i++ {
		i := i
		m.SendOrdered("a", "b", func() { got = append(got, i) })
	}
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d arrived at position %d", v, i)
		}
	}
}

func TestSendOrderedIndependentLinks(t *testing.T) {
	eng := sim.NewEngine(8)
	m := New(eng, Link{Base: time.Millisecond})
	var first string
	m.SendOrdered("a", "slow", func() {
		if first == "" {
			first = "slow"
		}
	})
	m.Inject("fast", Link{}) // no-op injection, different link key
	m.SendOrdered("a", "fast", func() {
		if first == "" {
			first = "fast"
		}
	})
	eng.Run()
	if first == "" {
		t.Fatal("nothing delivered")
	}
}
