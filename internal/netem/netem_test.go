package netem

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSendPaysLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	m := New(eng, Link{Base: 10 * time.Millisecond})
	var arrived sim.Time
	m.Send("a", "b", func() { arrived = eng.Now() })
	eng.Run()
	if arrived != sim.Time(10*time.Millisecond) {
		t.Errorf("arrived at %v, want 10ms", arrived)
	}
}

func TestJitterWithinBounds(t *testing.T) {
	eng := sim.NewEngine(2)
	m := New(eng, Link{Base: 10 * time.Millisecond, Jitter: 2 * time.Millisecond})
	for i := 0; i < 500; i++ {
		d := m.sample("a", "b")
		if d < 8*time.Millisecond || d >= 12*time.Millisecond {
			t.Fatalf("sample %v outside 10±2ms", d)
		}
	}
}

func TestInjectAddsDelayBothDirections(t *testing.T) {
	eng := sim.NewEngine(3)
	m := New(eng, Link{Base: time.Millisecond})
	m.Inject("Org1-peer0", Link{Base: 100 * time.Millisecond})
	if d := m.sample("client", "Org1-peer0"); d != 101*time.Millisecond {
		t.Errorf("to injected node: %v, want 101ms", d)
	}
	if d := m.sample("Org1-peer0", "client"); d != 101*time.Millisecond {
		t.Errorf("from injected node: %v, want 101ms", d)
	}
	if d := m.sample("client", "Org0-peer0"); d != time.Millisecond {
		t.Errorf("untouched link: %v, want 1ms", d)
	}
}

func TestInjectRemoval(t *testing.T) {
	eng := sim.NewEngine(4)
	m := New(eng, Link{Base: time.Millisecond})
	m.Inject("n", Link{Base: 50 * time.Millisecond})
	m.Inject("n", Link{})
	if d := m.sample("n", "x"); d != time.Millisecond {
		t.Errorf("delay after removal: %v", d)
	}
}

func TestInjectedJitterEmulatesPumba(t *testing.T) {
	// The paper's emulation: 100 ± 10 ms on one organization.
	eng := sim.NewEngine(5)
	m := New(eng, Link{Base: 500 * time.Microsecond})
	m.Inject("Org0-peer0", Link{Base: 100 * time.Millisecond, Jitter: 10 * time.Millisecond})
	for i := 0; i < 200; i++ {
		d := m.sample("client", "Org0-peer0")
		min := 500*time.Microsecond + 90*time.Millisecond
		max := 500*time.Microsecond + 110*time.Millisecond
		if d < min || d >= max {
			t.Fatalf("sample %v outside Pumba band", d)
		}
	}
}

func TestRTTisTwoSamples(t *testing.T) {
	eng := sim.NewEngine(6)
	m := New(eng, Link{Base: 3 * time.Millisecond})
	if rtt := m.RTT("a", "b"); rtt != 6*time.Millisecond {
		t.Errorf("RTT = %v, want 6ms", rtt)
	}
}

func TestDefaultLANSane(t *testing.T) {
	l := DefaultLAN()
	if l.Base <= 0 || l.Jitter <= 0 || l.Jitter >= l.Base {
		t.Errorf("DefaultLAN = %+v", l)
	}
}

func TestSendOrderedFIFO(t *testing.T) {
	eng := sim.NewEngine(7)
	m := New(eng, Link{Base: 5 * time.Millisecond, Jitter: 4 * time.Millisecond})
	var got []int
	// A burst of messages on one link must arrive in send order even
	// though each samples independent jitter.
	for i := 0; i < 200; i++ {
		i := i
		m.SendOrdered("a", "b", func() { got = append(got, i) })
	}
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d arrived at position %d", v, i)
		}
	}
}

func TestInjectReplacesInsteadOfStacking(t *testing.T) {
	// Documented semantics: a second Inject on the same node replaces
	// the first — the extras never accumulate.
	eng := sim.NewEngine(20)
	m := New(eng, Link{Base: time.Millisecond})
	m.Inject("n", Link{Base: 100 * time.Millisecond})
	m.Inject("n", Link{Base: 30 * time.Millisecond})
	if d := m.sample("n", "x"); d != 31*time.Millisecond {
		t.Errorf("after re-inject: %v, want 31ms (replace, not 131ms stack)", d)
	}
}

func TestInjectBothEndpointsPayBothExtras(t *testing.T) {
	// Documented semantics: the extra applies to the node as source AND
	// destination, so a link between two injected nodes pays both.
	eng := sim.NewEngine(21)
	m := New(eng, Link{Base: time.Millisecond})
	m.Inject("a", Link{Base: 10 * time.Millisecond})
	m.Inject("b", Link{Base: 20 * time.Millisecond})
	if d := m.sample("a", "b"); d != 31*time.Millisecond {
		t.Errorf("between two injected nodes: %v, want 31ms", d)
	}
}

func TestSetDownDropsBothDirections(t *testing.T) {
	eng := sim.NewEngine(22)
	m := New(eng, Link{Base: time.Millisecond})
	m.SetDown("peer", true)
	delivered := 0
	m.Send("client", "peer", func() { delivered++ })
	m.Send("peer", "client", func() { delivered++ })
	m.Send("client", "other", func() { delivered++ })
	eng.Run()
	if delivered != 1 {
		t.Errorf("delivered %d messages with peer down, want 1 (the untouched link)", delivered)
	}
	if m.Drops() != 2 {
		t.Errorf("Drops() = %d, want 2", m.Drops())
	}
	m.SetDown("peer", false)
	m.Send("client", "peer", func() { delivered++ })
	eng.Run()
	if delivered != 2 {
		t.Errorf("message to recovered node dropped")
	}
}

func TestPartitionCutsIslandBoundaryOnly(t *testing.T) {
	eng := sim.NewEngine(23)
	m := New(eng, Link{Base: time.Millisecond})
	m.Partition([]string{"p0", "p1"})
	var got []string
	send := func(from, to string) {
		m.Send(from, to, func() { got = append(got, from+">"+to) })
	}
	send("p0", "p1")          // intra-island: flows
	send("client", "client2") // outside the island: flows
	send("client", "p0")      // crosses the boundary: dropped
	send("p1", "orderer0")    // crosses the boundary: dropped
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %v, want intra-island and outside traffic only", got)
	}
	m.Heal()
	send("client", "p0")
	eng.Run()
	if len(got) != 3 {
		t.Errorf("message after Heal dropped")
	}
}

func TestSetLossDropsFraction(t *testing.T) {
	eng := sim.NewEngine(24)
	m := New(eng, Link{Base: time.Millisecond})
	m.SetLoss("p", 0.5)
	delivered := 0
	for i := 0; i < 1000; i++ {
		m.Send("client", "p", func() { delivered++ })
	}
	eng.Run()
	if delivered < 350 || delivered > 650 {
		t.Errorf("delivered %d/1000 at 50%% loss", delivered)
	}
	m.SetLoss("p", 0)
	before := delivered
	for i := 0; i < 100; i++ {
		m.Send("client", "p", func() { delivered++ })
	}
	eng.Run()
	if delivered != before+100 {
		t.Errorf("loss regime not removed: %d/100 delivered", delivered-before)
	}
}

func TestSendOrderedIgnoresFaults(t *testing.T) {
	// The block-delivery stream models Fabric's re-fetching deliver
	// service: reliable end-to-end even across down nodes and
	// partitions.
	eng := sim.NewEngine(25)
	m := New(eng, Link{Base: time.Millisecond})
	m.SetDown("peer", true)
	m.Partition([]string{"orderer0"})
	delivered := 0
	m.SendOrdered("orderer0", "peer", func() { delivered++ })
	eng.Run()
	if delivered != 1 {
		t.Errorf("ordered stream dropped by faults")
	}
}

func TestFaultFreeFastPathDrawsNoRng(t *testing.T) {
	// A model whose fault primitives were used and then cleared must
	// behave exactly like a fresh model: same samples, no drops.
	engA := sim.NewEngine(26)
	a := New(engA, Link{Base: 5 * time.Millisecond, Jitter: 2 * time.Millisecond})
	engB := sim.NewEngine(26)
	b := New(engB, Link{Base: 5 * time.Millisecond, Jitter: 2 * time.Millisecond})
	b.SetDown("x", true)
	b.SetLoss("y", 0.5)
	b.Partition([]string{"z"})
	b.SetDown("x", false)
	b.SetLoss("y", 0)
	b.Heal()
	var arrA, arrB []sim.Time
	for i := 0; i < 50; i++ {
		a.Send("m", "n", func() { arrA = append(arrA, engA.Now()) })
		b.Send("m", "n", func() { arrB = append(arrB, engB.Now()) })
	}
	engA.Run()
	engB.Run()
	if len(arrA) != len(arrB) {
		t.Fatalf("delivery counts differ: %d vs %d", len(arrA), len(arrB))
	}
	for i := range arrA {
		if arrA[i] != arrB[i] {
			t.Fatalf("arrival %d differs: %v vs %v (cleared fault state perturbs rng)", i, arrA[i], arrB[i])
		}
	}
}

func TestSendOrderedIndependentLinks(t *testing.T) {
	eng := sim.NewEngine(8)
	m := New(eng, Link{Base: time.Millisecond})
	var first string
	m.SendOrdered("a", "slow", func() {
		if first == "" {
			first = "slow"
		}
	})
	m.Inject("fast", Link{}) // no-op injection, different link key
	m.SendOrdered("a", "fast", func() {
		if first == "" {
			first = "fast"
		}
	})
	eng.Run()
	if first == "" {
		t.Fatal("nothing delivered")
	}
}
