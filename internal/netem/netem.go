// Package netem models the cluster network: per-link latency with
// jitter, plus targeted delay injection in the style of Pumba, the
// Docker chaos tool the paper uses to emulate a geographically remote
// organization (§4.5, §5.1.7: an additional 100 ± 10 ms for one org).
package netem

import (
	"time"

	"repro/internal/sim"
)

// Link describes one directed hop's latency distribution.
type Link struct {
	Base   time.Duration // mean latency
	Jitter time.Duration // uniform ± jitter
}

// Model is the cluster network model. Delays compose: base LAN latency
// plus any injected delay on either endpoint.
type Model struct {
	eng      *sim.Engine
	lan      Link
	injected map[string]Link // node id -> extra delay on all its links
	// lastArrival enforces FIFO per directed link for SendOrdered.
	lastArrival map[string]sim.Time
}

// New returns a model with the given LAN profile. A Kubernetes-pod
// network is well below a millisecond; the default experiments use
// {500µs, 200µs}.
func New(eng *sim.Engine, lan Link) *Model {
	return &Model{
		eng:         eng,
		lan:         lan,
		injected:    map[string]Link{},
		lastArrival: map[string]sim.Time{},
	}
}

// DefaultLAN is the intra-cluster link profile.
func DefaultLAN() Link {
	return Link{Base: 500 * time.Microsecond, Jitter: 200 * time.Microsecond}
}

// Inject adds an extra delay distribution to every link that touches
// node (Pumba's `netem delay`). Injecting again replaces the previous
// value; a zero Link removes the injection.
func (m *Model) Inject(node string, extra Link) {
	if extra == (Link{}) {
		delete(m.injected, node)
		return
	}
	m.injected[node] = extra
}

// sample draws one latency for a link between from and to.
func (m *Model) sample(from, to string) time.Duration {
	d := m.one(m.lan)
	if extra, ok := m.injected[from]; ok {
		d += m.one(extra)
	}
	if extra, ok := m.injected[to]; ok {
		d += m.one(extra)
	}
	return d
}

func (m *Model) one(l Link) time.Duration {
	if l.Jitter <= 0 {
		return l.Base
	}
	return m.eng.Uniform(l.Base-l.Jitter, l.Base+l.Jitter)
}

// Send schedules fn on the engine after one sampled link delay from
// from to to. It is the only way components talk to each other, so
// every hop pays a latency.
func (m *Model) Send(from, to string, fn func()) {
	m.eng.After(m.sample(from, to), fn)
}

// SendOrdered is Send over a FIFO stream: messages on the same
// directed link never overtake each other, like frames on one TCP
// connection. Use it for ordered protocols — producer → broker
// submission and orderer → peer block delivery.
func (m *Model) SendOrdered(from, to string, fn func()) {
	key := from + "\x00" + to
	at := m.eng.Now() + sim.Time(m.sample(from, to))
	if last := m.lastArrival[key]; at <= last {
		at = last + 1 // nanosecond bump keeps strict FIFO
	}
	m.lastArrival[key] = at
	m.eng.At(at, fn)
}

// RTT estimates a round trip between two nodes (two samples).
func (m *Model) RTT(a, b string) time.Duration {
	return m.sample(a, b) + m.sample(b, a)
}
