// Package netem models the cluster network: per-link latency with
// jitter, targeted delay injection in the style of Pumba, the Docker
// chaos tool the paper uses to emulate a geographically remote
// organization (§4.5, §5.1.7: an additional 100 ± 10 ms for one org),
// and the fault primitives of the adversity pack — node down states,
// partitions and probabilistic message loss — that the fabric layer's
// fault scheduler drives (Config.Faults).
//
// All fault state is inert by default: a model on which no fault
// primitive has ever been used draws exactly the rng stream and
// schedules exactly the events of the pre-fault implementation, so
// fault-free runs stay byte-identical.
package netem

import (
	"time"

	"repro/internal/sim"
)

// Link describes one directed hop's latency distribution.
type Link struct {
	Base   time.Duration // mean latency
	Jitter time.Duration // uniform ± jitter
}

// Model is the cluster network model. Delays compose: base LAN latency
// plus any injected delay on either endpoint.
type Model struct {
	eng      *sim.Engine
	lan      Link
	injected map[string]Link // node id -> extra delay on all its links
	// lastArrival enforces FIFO per directed link for SendOrdered.
	lastArrival map[string]sim.Time

	// Fault state (all empty by default — see faulty). down nodes drop
	// every unreliable message they send or receive; island, when
	// non-nil, is the current partition's island set (messages crossing
	// the island boundary are dropped); loss maps a node to the
	// probability that an unreliable message touching it is dropped.
	down   map[string]bool
	island map[string]bool
	loss   map[string]float64
	// faulty caches whether any fault state is active, so the
	// fault-free fast path costs one boolean test and draws no rng.
	faulty bool
	// drops counts unreliable messages dropped by faults (diagnostics).
	drops int
}

// New returns a model with the given LAN profile. A Kubernetes-pod
// network is well below a millisecond; the default experiments use
// {500µs, 200µs}.
func New(eng *sim.Engine, lan Link) *Model {
	return &Model{
		eng:         eng,
		lan:         lan,
		injected:    map[string]Link{},
		lastArrival: map[string]sim.Time{},
		down:        map[string]bool{},
		loss:        map[string]float64{},
	}
}

// DefaultLAN is the intra-cluster link profile.
func DefaultLAN() Link {
	return Link{Base: 500 * time.Microsecond, Jitter: 200 * time.Microsecond}
}

// Inject adds an extra delay distribution to every link that touches
// node (Pumba's `netem delay`), in both directions: the extra is
// sampled once per message for which node is the source and once per
// message for which it is the destination, on top of the base LAN
// sample — a message between two injected nodes therefore pays both
// extras. Injections do not stack: injecting the same node again
// replaces the previous Link (the last call wins), and a zero Link
// removes the injection entirely. The fault scheduler relies on
// exactly these semantics for straggler windows: Inject(node, extra)
// at the window start, Inject(node, Link{}) at the end.
func (m *Model) Inject(node string, extra Link) {
	if extra == (Link{}) {
		delete(m.injected, node)
		return
	}
	m.injected[node] = extra
}

// SetDown marks a node crashed (down=true) or recovered (down=false).
// While down, every unreliable message (Send) from or to the node is
// dropped — in-flight RPCs die with the process. Ordered streams
// (SendOrdered) still deliver; see SendOrdered for why.
func (m *Model) SetDown(node string, down bool) {
	if down {
		m.down[node] = true
	} else {
		delete(m.down, node)
	}
	m.refault()
}

// Partition installs a network partition: island is the set of node
// names cut off from the rest of the cluster. Unreliable messages with
// exactly one endpoint inside the island are dropped; traffic within
// the island, and among the remaining nodes, flows normally. A new
// call replaces the previous partition; an empty set heals it.
func (m *Model) Partition(island []string) {
	if len(island) == 0 {
		m.Heal()
		return
	}
	m.island = make(map[string]bool, len(island))
	for _, n := range island {
		m.island[n] = true
	}
	m.refault()
}

// Heal removes the current partition.
func (m *Model) Heal() {
	m.island = nil
	m.refault()
}

// SetLoss sets the probability in (0,1] that an unreliable message
// from or to node is dropped (Pumba's `netem loss`). Each endpoint's
// probability is drawn independently. p <= 0 removes the loss regime
// from the node.
func (m *Model) SetLoss(node string, p float64) {
	if p <= 0 {
		delete(m.loss, node)
	} else {
		m.loss[node] = p
	}
	m.refault()
}

// Drops reports how many unreliable messages faults have dropped.
func (m *Model) Drops() int { return m.drops }

// refault recomputes the fast-path flag after a fault mutation.
func (m *Model) refault() {
	m.faulty = len(m.down) > 0 || m.island != nil || len(m.loss) > 0
}

// dropped decides whether an unreliable message from->to is lost to
// the active fault state. The decision is made at send time — down
// and partition windows are orders of magnitude longer than a link
// delay, so the difference from a delivery-time check is negligible
// and the FIFO bookkeeping stays untouched. Loss probabilities draw
// from the engine rng, like every other random decision; with no
// fault state active the method returns before any map lookup or rng
// draw.
func (m *Model) dropped(from, to string) bool {
	if !m.faulty {
		return false
	}
	if m.down[from] || m.down[to] {
		m.drops++
		return true
	}
	if m.island != nil && m.island[from] != m.island[to] {
		m.drops++
		return true
	}
	for _, n := range [2]string{from, to} {
		if p := m.loss[n]; p > 0 && m.eng.Rand().Float64() < p {
			m.drops++
			return true
		}
	}
	return false
}

// sample draws one latency for a link between from and to.
func (m *Model) sample(from, to string) time.Duration {
	d := m.one(m.lan)
	if extra, ok := m.injected[from]; ok {
		d += m.one(extra)
	}
	if extra, ok := m.injected[to]; ok {
		d += m.one(extra)
	}
	return d
}

func (m *Model) one(l Link) time.Duration {
	if l.Jitter <= 0 {
		return l.Base
	}
	return m.eng.Uniform(l.Base-l.Jitter, l.Base+l.Jitter)
}

// Send schedules fn on the engine after one sampled link delay from
// from to to. It is the only way components talk to each other, so
// every hop pays a latency. Send is the *unreliable* datagram/RPC
// path — endorsement requests and responses, envelope submissions,
// commit events, gossip — and is subject to the fault primitives:
// a down endpoint, a partition boundary or a loss regime silently
// drops the message.
func (m *Model) Send(from, to string, fn func()) {
	if m.dropped(from, to) {
		return
	}
	m.eng.After(m.sample(from, to), fn)
}

// SendOrdered is Send over a FIFO stream: messages on the same
// directed link never overtake each other, like frames on one TCP
// connection. Use it for ordered protocols — producer → broker
// submission and orderer → peer block delivery.
//
// SendOrdered deliberately ignores the fault primitives: it models
// Fabric's deliver service, where a peer's client re-fetches any block
// range it missed, so the stream is reliable end-to-end even across
// crashes and partitions. Crash semantics for block delivery live at
// the receiving node instead — a crashed peer queues delivered blocks
// as its missed ledger suffix and replays them on restart.
func (m *Model) SendOrdered(from, to string, fn func()) {
	key := from + "\x00" + to
	at := m.eng.Now() + sim.Time(m.sample(from, to))
	if last := m.lastArrival[key]; at <= last {
		at = last + 1 // nanosecond bump keeps strict FIFO
	}
	m.lastArrival[key] = at
	m.eng.At(at, fn)
}

// RTT estimates a round trip between two nodes (two samples).
func (m *Model) RTT(a, b string) time.Duration {
	return m.sample(a, b) + m.sample(b, a)
}
