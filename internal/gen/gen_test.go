package gen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cctest"
	"repro/internal/statedb"
)

func smallSpec() ChaincodeSpec {
	s := GenChainSpec()
	s.Keys = 500 // keep unit tests fast
	return s
}

func TestSpecValidation(t *testing.T) {
	good := GenChainSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ChaincodeSpec{
		{Name: "", Keys: 10, Functions: []FunctionSpec{{Name: "f", Reads: 1}}},
		{Name: "x", Keys: 0, Functions: []FunctionSpec{{Name: "f", Reads: 1}}},
		{Name: "x", Keys: 10},
		{Name: "x", Keys: 10, Functions: []FunctionSpec{{Name: "", Reads: 1}}},
		{Name: "x", Keys: 10, Functions: []FunctionSpec{{Name: "f", Reads: 1}, {Name: "f", Reads: 1}}},
		{Name: "x", Keys: 10, Functions: []FunctionSpec{{Name: "f"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestInitSeedsKeys(t *testing.T) {
	cc := MustChaincode(smallSpec())
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 500 {
		t.Fatalf("seeded %d keys, want 500", db.Len())
	}
}

func TestOpsExecuteAndRecord(t *testing.T) {
	cc := MustChaincode(smallSpec())
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		fn     string
		args   []string
		reads  int
		writes int
		ranges int
	}{
		{"readOp", []string{"42"}, 1, 0, 0},
		{"insertOp", []string{"seq00000001"}, 0, 1, 0},
		{"updateOp", []string{"42"}, 1, 1, 0},
		{"deleteOp", []string{"42"}, 0, 1, 0},
		{"rangeOp", []string{"10:4"}, 0, 0, 1},
	}
	for _, c := range cases {
		stub, err := cctest.Invoke(cc, db, c.fn, c.args...)
		if err != nil {
			t.Fatalf("%s: %v", c.fn, err)
		}
		tr := stub.Trace()
		if tr.Gets != c.reads || tr.Puts+tr.Deletes != c.writes || tr.Ranges != c.ranges {
			t.Errorf("%s: trace %+v, want r=%d w=%d rr=%d", c.fn, tr, c.reads, c.writes, c.ranges)
		}
	}
}

func TestRangeOpObservesWidthKeys(t *testing.T) {
	cc := MustChaincode(smallSpec())
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err := cctest.Invoke(cc, db, "rangeOp", "100:8")
	if err != nil {
		t.Fatal(err)
	}
	rq := stub.RWSet().RangeQueries[0]
	if len(rq.Reads) != 8 {
		t.Fatalf("range observed %d keys, want 8", len(rq.Reads))
	}
}

func TestInvokeArgCountChecked(t *testing.T) {
	cc := MustChaincode(smallSpec())
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cctest.Invoke(cc, db, "readOp"); err == nil {
		t.Error("readOp without args accepted")
	}
	if _, err := cctest.Invoke(cc, db, "nope", "1"); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := cctest.Invoke(cc, db, "rangeOp", "notarange"); err == nil {
		t.Error("bad range arg accepted")
	}
	if _, err := cctest.Invoke(cc, db, "rangeOp", "5:0"); err == nil {
		t.Error("zero-width range accepted")
	}
}

func TestRichQueryFunction(t *testing.T) {
	spec := ChaincodeSpec{
		Name: "rich", Keys: 200,
		Functions: []FunctionSpec{{Name: "q", RichQueries: 1}},
	}
	cc := MustChaincode(spec)
	cdb, err := cctest.InitState(cc, statedb.CouchDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err := cctest.Invoke(cc, cdb, "q", "13")
	if err != nil {
		t.Fatal(err)
	}
	if stub.Trace().Queries != 1 {
		t.Fatalf("trace = %+v, want 1 rich query", stub.Trace())
	}
	// LevelDB degrades to a point read instead of failing.
	ldb, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err = cctest.Invoke(cc, ldb, "q", "13")
	if err != nil {
		t.Fatal(err)
	}
	if stub.Trace().Gets != 1 || stub.Trace().Queries != 0 {
		t.Fatalf("LevelDB trace = %+v", stub.Trace())
	}
}

func TestMixByName(t *testing.T) {
	for _, n := range []string{"RH", "IH", "UH", "DH", "RaH", "RU"} {
		if _, err := MixByName(n); err != nil {
			t.Errorf("MixByName(%s): %v", n, err)
		}
	}
	if _, err := MixByName("XX"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestWorkloadMixProportions(t *testing.T) {
	spec := smallSpec()
	gen := NewWorkload(spec, UpdateHeavy, 0)
	rng := rand.New(rand.NewSource(5))
	counts := map[string]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		counts[gen.Next(rng).Function]++
	}
	frac := float64(counts["updateOp"]) / n
	if frac < 0.76 || frac > 0.84 {
		t.Errorf("updateOp fraction %.3f, want ~0.80", frac)
	}
	for _, other := range []string{"readOp", "insertOp", "deleteOp", "rangeOp"} {
		f := float64(counts[other]) / n
		if f < 0.02 || f > 0.09 {
			t.Errorf("%s fraction %.3f, want ~0.05", other, f)
		}
	}
}

func TestInsertAndDeleteKeysUnique(t *testing.T) {
	spec := smallSpec()
	gen := NewWorkload(spec, Mix{Insert: 50, Delete: 50}, 0)
	rng := rand.New(rand.NewSource(6))
	seenIns, seenDel := map[string]bool{}, map[string]bool{}
	for i := 0; i < 400; i++ { // < spec.Keys so deletes stay unique
		inv := gen.Next(rng)
		switch inv.Function {
		case "insertOp":
			if seenIns[inv.Args[0]] {
				t.Fatalf("duplicate insert key %s", inv.Args[0])
			}
			seenIns[inv.Args[0]] = true
		case "deleteOp":
			if seenDel[inv.Args[0]] {
				t.Fatalf("duplicate delete key %s", inv.Args[0])
			}
			seenDel[inv.Args[0]] = true
		}
	}
}

func TestWorkloadRunsAgainstChaincode(t *testing.T) {
	spec := smallSpec()
	cc := MustChaincode(spec)
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	for _, mix := range []Mix{ReadHeavy, InsertHeavy, UpdateHeavy, DeleteHeavy, RangeHeavy, UniformRU} {
		gen := NewWorkload(spec, mix, 1)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			inv := gen.Next(rng)
			if _, err := cctest.Invoke(cc, db, inv.Function, inv.Args...); err != nil {
				t.Fatalf("mix %+v: %s(%v): %v", mix, inv.Function, inv.Args, err)
			}
		}
	}
}

func TestRenderParsesAndContainsFunctions(t *testing.T) {
	spec := ChaincodeSpec{
		Name: "demo", Keys: 100,
		Functions: []FunctionSpec{
			{Name: "mixed", Reads: 2, Inserts: 1, Updates: 1, Deletes: 1, RangeReads: 1},
			{Name: "qonly", RichQueries: 2},
		},
	}
	for _, rich := range []bool{false, true} {
		src, err := Render(spec, rich)
		if err != nil {
			t.Fatalf("rich=%v: %v", rich, err)
		}
		for _, want := range []string{"func (c *Contract) mixed(", "func (c *Contract) qonly(", "package demo"} {
			if !strings.Contains(src, want) {
				t.Errorf("rich=%v: rendered source missing %q", rich, want)
			}
		}
		if rich && !strings.Contains(src, "GetQueryResult") {
			t.Error("rich variant lacks GetQueryResult")
		}
		if !rich && strings.Contains(src, "GetQueryResult") {
			t.Error("plain variant uses GetQueryResult")
		}
	}
}

func TestRenderRejectsInvalidSpec(t *testing.T) {
	if _, err := Render(ChaincodeSpec{Name: "x"}, false); err == nil {
		t.Fatal("invalid spec rendered")
	}
}
