// Package gen implements the paper's chaincode and workload generator
// (§4.4). The chaincode generator takes the number of functions and,
// per function, the number of read / insert / update / delete / range
// read (and optionally rich query) actions, and produces an executable
// chaincode; Render additionally emits syntactically correct Go source
// for it. The workload generator produces transaction streams with a
// configurable type mix (read/insert/update/delete/range percentages)
// and Zipfian key distribution.
//
// The canonical instance is genChain: five functions with equally
// distributed read, insert, update, delete and range-read actions over
// a world state of 100,000 keys.
package gen

import (
	"fmt"
	"go/token"
	"math/rand"
	"strconv"
	"unicode"

	"repro/internal/chaincode"
	"repro/internal/dist"
	"repro/internal/workload"
)

// DefaultKeys is the genChain world-state size (§4.4: "a large number
// of keys (100,000 keys) to run experiments with reduced transaction
// conflicts").
const DefaultKeys = 100000

// FunctionSpec declares one generated function's actions.
type FunctionSpec struct {
	Name        string
	Reads       int // GetState on an existing key
	Inserts     int // PutState on a fresh key
	Updates     int // GetState + PutState on an existing key
	Deletes     int // DelState on a unique existing key
	RangeReads  int // GetStateByRange over a small interval
	RichQueries int // GetQueryResult (CouchDB only)
}

// Ops reports the total number of key arguments the function consumes.
func (f FunctionSpec) Ops() int {
	return f.Reads + f.Inserts + f.Updates + f.Deletes + f.RangeReads + f.RichQueries
}

// ChaincodeSpec declares a generated chaincode.
type ChaincodeSpec struct {
	Name      string
	Keys      int // seeded world-state size
	Functions []FunctionSpec
}

// validIdent reports whether s can be emitted as a Go identifier
// (Render uses the chaincode name as the package name and function
// names as method names, so anything else would break the
// "syntactically correct chaincode" promise of §4.4).
func validIdent(s string) bool {
	// The blank identifier is a valid token but not a usable package
	// or method name ("package _" and "c._(...)" do not compile).
	if s == "" || s == "_" || token.Lookup(s).IsKeyword() {
		return false
	}
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}

// Validate checks the spec for configuration errors. Names must be
// valid Go identifiers and function names must not collide with the
// generated Contract's own methods — NewChaincode and Render accept
// exactly the same specs.
func (s ChaincodeSpec) Validate() error {
	if !validIdent(s.Name) {
		return fmt.Errorf("gen: chaincode name %q is not a valid Go identifier", s.Name)
	}
	if s.Keys <= 0 {
		return fmt.Errorf("gen: chaincode %q needs a positive key count", s.Name)
	}
	if len(s.Functions) == 0 {
		return fmt.Errorf("gen: chaincode %q has no functions", s.Name)
	}
	seen := map[string]bool{}
	for _, f := range s.Functions {
		if !validIdent(f.Name) {
			return fmt.Errorf("gen: function name %q is not a valid Go identifier", f.Name)
		}
		switch f.Name {
		case "Name", "Init", "Invoke":
			return fmt.Errorf("gen: function name %q collides with a generated method", f.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("gen: duplicate function %q", f.Name)
		}
		seen[f.Name] = true
		if f.Ops() == 0 {
			return fmt.Errorf("gen: function %q performs no actions", f.Name)
		}
	}
	return nil
}

// GenChainSpec is the default five-function genChain chaincode.
func GenChainSpec() ChaincodeSpec {
	return ChaincodeSpec{
		Name: "genChain",
		Keys: DefaultKeys,
		Functions: []FunctionSpec{
			{Name: "readOp", Reads: 1},
			{Name: "insertOp", Inserts: 1},
			{Name: "updateOp", Updates: 1},
			{Name: "deleteOp", Deletes: 1},
			{Name: "rangeOp", RangeReads: 1},
		},
	}
}

// KeyName formats a seeded world-state key.
func KeyName(i int) string { return fmt.Sprintf("key_%06d", i) }

// insertKeyName formats a fresh key that cannot collide with seeded
// ones.
func insertKeyName(seq string) string { return "new_" + seq }

// Chaincode is the executable form of a generated chaincode.
type Chaincode struct {
	spec ChaincodeSpec
	byFn map[string]FunctionSpec
}

// NewChaincode compiles a spec into an executable chaincode.
func NewChaincode(spec ChaincodeSpec) (*Chaincode, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cc := &Chaincode{spec: spec, byFn: map[string]FunctionSpec{}}
	for _, f := range spec.Functions {
		cc.byFn[f.Name] = f
	}
	return cc, nil
}

// MustChaincode is NewChaincode for known-good specs.
func MustChaincode(spec ChaincodeSpec) *Chaincode {
	cc, err := NewChaincode(spec)
	if err != nil {
		panic(err)
	}
	return cc
}

// Name implements chaincode.Chaincode.
func (c *Chaincode) Name() string { return c.spec.Name }

// Spec returns the compiled specification.
func (c *Chaincode) Spec() ChaincodeSpec { return c.spec }

// Init seeds the world state with spec.Keys JSON documents.
func (c *Chaincode) Init(stub *chaincode.Stub) error {
	for i := 0; i < c.spec.Keys; i++ {
		doc := fmt.Sprintf(`{"v":0,"grp":%d}`, i%97)
		if err := stub.PutState(KeyName(i), []byte(doc)); err != nil {
			return err
		}
	}
	return nil
}

// Invoke executes a generated function. Arguments supply one token per
// action, in spec order: key indices for reads/updates/deletes, a
// sequence token for inserts, "start:width" for range reads, and a
// group number for rich queries.
func (c *Chaincode) Invoke(stub *chaincode.Stub, fn string, args []string) error {
	f, ok := c.byFn[fn]
	if !ok {
		return fmt.Errorf("%s: unknown function %q", c.spec.Name, fn)
	}
	if len(args) != f.Ops() {
		return fmt.Errorf("%s.%s: got %d args, want %d", c.spec.Name, fn, len(args), f.Ops())
	}
	next := func() string {
		a := args[0]
		args = args[1:]
		return a
	}
	for i := 0; i < f.Reads; i++ {
		if _, err := stub.GetState(keyArg(next())); err != nil {
			return err
		}
	}
	for i := 0; i < f.Inserts; i++ {
		if err := stub.PutState(insertKeyName(next()), []byte(`{"v":1}`)); err != nil {
			return err
		}
	}
	for i := 0; i < f.Updates; i++ {
		key := keyArg(next())
		raw, err := stub.GetState(key)
		if err != nil {
			return err
		}
		v := len(raw) % 7 // derive the new value from the old
		if err := stub.PutState(key, []byte(fmt.Sprintf(`{"v":%d}`, v+1))); err != nil {
			return err
		}
	}
	for i := 0; i < f.Deletes; i++ {
		if err := stub.DelState(keyArg(next())); err != nil {
			return err
		}
	}
	for i := 0; i < f.RangeReads; i++ {
		start, width, err := rangeArg(next())
		if err != nil {
			return err
		}
		if _, err := stub.GetStateByRange(KeyName(start), KeyName(start+width)); err != nil {
			return err
		}
	}
	for i := 0; i < f.RichQueries; i++ {
		grp := next()
		if !stub.SupportsRichQueries() {
			// Graceful degradation on LevelDB: a point read keeps the
			// generated code runnable on either backend.
			if _, err := stub.GetState(keyArg(grp)); err != nil {
				return err
			}
			continue
		}
		if _, err := stub.GetQueryResult(fmt.Sprintf(`{"grp":%s}`, grp)); err != nil {
			return err
		}
	}
	return nil
}

func keyArg(a string) string {
	if n, err := strconv.Atoi(a); err == nil {
		return KeyName(n)
	}
	return a // already a key name (insert sequence tokens etc.)
}

func rangeArg(a string) (start, width int, err error) {
	if _, err = fmt.Sscanf(a, "%d:%d", &start, &width); err != nil {
		return 0, 0, fmt.Errorf("gen: bad range argument %q", a)
	}
	if width <= 0 {
		return 0, 0, fmt.Errorf("gen: non-positive range width in %q", a)
	}
	return start, width, nil
}

// Mix is a transaction-type distribution in relative weights.
type Mix struct {
	Read   float64
	Insert float64
	Update float64
	Delete float64
	Range  float64
}

// The paper's five "x-heavy" workloads: 80% of one type, uniform rest
// (§4.4), plus the uniform read/update mix used for the skew sweep.
var (
	ReadHeavy   = Mix{Read: 80, Insert: 5, Update: 5, Delete: 5, Range: 5}
	InsertHeavy = Mix{Read: 5, Insert: 80, Update: 5, Delete: 5, Range: 5}
	UpdateHeavy = Mix{Read: 5, Insert: 5, Update: 80, Delete: 5, Range: 5}
	DeleteHeavy = Mix{Read: 5, Insert: 5, Update: 5, Delete: 80, Range: 5}
	RangeHeavy  = Mix{Read: 5, Insert: 5, Update: 5, Delete: 5, Range: 80}
	// UniformRU is the 50/50 read/update mix of the Zipf-skew
	// experiments (§4.4: "a uniform workload of read and update
	// transactions").
	UniformRU = Mix{Read: 50, Update: 50}
)

// MixByName resolves the paper's workload abbreviations (RH, IH, UH,
// DH, RaH).
func MixByName(name string) (Mix, error) {
	switch name {
	case "RH":
		return ReadHeavy, nil
	case "IH":
		return InsertHeavy, nil
	case "UH":
		return UpdateHeavy, nil
	case "DH":
		return DeleteHeavy, nil
	case "RaH":
		return RangeHeavy, nil
	case "RU":
		return UniformRU, nil
	}
	return Mix{}, fmt.Errorf("gen: unknown workload %q", name)
}

// NewWorkload builds the genChain workload generator: transactions
// drawn from mix, keys drawn Zipfian with the given skew over the
// seeded key space. Inserts get globally unique fresh keys; deletes
// get unique seeded keys (walking up from index 0) so that
// insert/delete transactions never conflict (§5.1.5).
func NewWorkload(spec ChaincodeSpec, mix Mix, skew float64) workload.Generator {
	z := dist.NewZipfian(spec.Keys, skew)
	insertSeq := 0
	deleteSeq := 0
	widths := []int{2, 4, 8} // §4.4: ranges of 2, 4 or 8 keys
	pick := workload.NewWeighted(
		[]workload.Generator{
			workload.Func(func(rng *rand.Rand) workload.Invocation {
				return workload.Invocation{Chaincode: spec.Name, Function: "readOp",
					Args: []string{fmt.Sprint(z.Next(rng))}}
			}),
			workload.Func(func(rng *rand.Rand) workload.Invocation {
				insertSeq++
				return workload.Invocation{Chaincode: spec.Name, Function: "insertOp",
					Args: []string{fmt.Sprintf("ins%08d", insertSeq)}}
			}),
			workload.Func(func(rng *rand.Rand) workload.Invocation {
				return workload.Invocation{Chaincode: spec.Name, Function: "updateOp",
					Args: []string{fmt.Sprint(z.Next(rng))}}
			}),
			workload.Func(func(rng *rand.Rand) workload.Invocation {
				deleteSeq++
				return workload.Invocation{Chaincode: spec.Name, Function: "deleteOp",
					Args: []string{fmt.Sprint(deleteSeq % spec.Keys)}}
			}),
			workload.Func(func(rng *rand.Rand) workload.Invocation {
				w := widths[rng.Intn(len(widths))]
				start := rng.Intn(spec.Keys - w)
				return workload.Invocation{Chaincode: spec.Name, Function: "rangeOp",
					Args: []string{fmt.Sprintf("%d:%d", start, w)}}
			}),
		},
		[]float64{mix.Read, mix.Insert, mix.Update, mix.Delete, mix.Range},
	)
	return pick
}
