package gen

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/statedb"
)

// specFromFuzz decodes a fuzz payload into a ChaincodeSpec. Each
// 7-byte chunk of data declares one function: six action counts and a
// mutation byte that can blank or duplicate the function name, so the
// fuzzer explores both valid specs and every Validate failure mode.
func specFromFuzz(name string, keys int, data []byte) ChaincodeSpec {
	spec := ChaincodeSpec{Name: name, Keys: keys}
	for i := 0; i+7 <= len(data) && len(spec.Functions) < 8; i += 7 {
		c := data[i : i+7]
		f := FunctionSpec{
			Name:        fmt.Sprintf("fn%d", len(spec.Functions)),
			Reads:       int(c[0]) % 4,
			Inserts:     int(c[1]) % 4,
			Updates:     int(c[2]) % 4,
			Deletes:     int(c[3]) % 4,
			RangeReads:  int(c[4]) % 3,
			RichQueries: int(c[5]) % 3,
		}
		switch c[6] % 4 {
		case 1:
			f.Name = "" // unnamed function: Validate must reject
		case 2:
			if n := len(spec.Functions); n > 0 {
				f.Name = spec.Functions[n-1].Name // duplicate
			}
		}
		spec.Functions = append(spec.Functions, f)
	}
	return spec
}

// FuzzGenChaincode drives the chaincode generator with randomized
// specs: NewChaincode and Render must never panic, Render must be
// deterministic, and every chaincode that compiles must also render
// and survive an Init plus one Invoke of each function.
func FuzzGenChaincode(f *testing.F) {
	// Seed corpus: the canonical genChain shape, a rejected spec, a
	// rich-query-heavy one, and degenerate inputs. Mirrored in
	// testdata/fuzz/FuzzGenChaincode so CI replays them.
	f.Add("genChain", 100, []byte{1, 1, 1, 1, 1, 0, 0, 2, 0, 2, 0, 0, 2, 0})
	f.Add("bad", 0, []byte{1, 0, 0, 0, 0, 0, 0})
	f.Add("rich", 40, []byte{0, 0, 0, 0, 0, 2, 0})
	f.Add("dup", 10, []byte{1, 0, 0, 0, 0, 0, 2, 1, 0, 0, 0, 0, 0, 2})
	f.Add("", 5, []byte{})
	f.Add("_", 5, []byte{1, 0, 0, 0, 0, 0, 0}) // blank identifier: Validate must reject
	f.Fuzz(func(t *testing.T, name string, keys int, data []byte) {
		if keys > 256 {
			keys %= 256 // bound Init cost; negatives stay to test Validate
		}
		spec := specFromFuzz(name, keys, data)

		cc, err := NewChaincode(spec)
		src1, rerr1 := Render(spec, true)
		src2, rerr2 := Render(spec, true)
		if src1 != src2 || (rerr1 == nil) != (rerr2 == nil) {
			t.Fatalf("Render is not deterministic for %+v", spec)
		}
		if (err == nil) != (rerr1 == nil) {
			t.Fatalf("NewChaincode err=%v but Render err=%v", err, rerr1)
		}
		if plain, perr := Render(spec, false); (perr == nil) != (rerr1 == nil) {
			t.Fatalf("rich/plain Render disagree: %v vs %v", rerr1, perr)
		} else if perr == nil && plain == "" {
			t.Fatal("valid spec rendered empty source")
		}
		if err != nil {
			return // invalid spec: rejection without panic is the contract
		}
		if !strings.Contains(src1, "func (c *Contract) Invoke") {
			t.Fatalf("rendered source lacks an Invoke method:\n%s", src1)
		}

		// The compiled chaincode must initialize and execute every
		// function without panicking.
		db := statedb.New(statedb.CouchDB, 1)
		stub := chaincode.NewStub(db)
		if err := cc.Init(stub); err != nil {
			t.Fatalf("Init: %v", err)
		}
		for _, fn := range spec.Functions {
			args := fuzzArgs(fn, spec.Keys)
			stub := chaincode.NewStub(db)
			if err := cc.Invoke(stub, fn.Name, args); err != nil {
				t.Fatalf("%s(%v): %v", fn.Name, args, err)
			}
		}
		// Unknown functions and bad arity must error, not panic.
		if err := cc.Invoke(chaincode.NewStub(db), "no-such-fn", nil); err == nil {
			t.Fatal("unknown function accepted")
		}
		if first := spec.Functions[0]; first.Ops() > 0 {
			if err := cc.Invoke(chaincode.NewStub(db), first.Name, nil); err == nil {
				t.Fatal("bad arity accepted")
			}
		}
	})
}

// fuzzArgs builds a valid argument vector for one generated function.
func fuzzArgs(f FunctionSpec, keys int) []string {
	var args []string
	for i := 0; i < f.Reads; i++ {
		args = append(args, fmt.Sprint(i%keys))
	}
	for i := 0; i < f.Inserts; i++ {
		args = append(args, fmt.Sprintf("seq%d", i))
	}
	for i := 0; i < f.Updates; i++ {
		args = append(args, fmt.Sprint(i%keys))
	}
	for i := 0; i < f.Deletes; i++ {
		args = append(args, fmt.Sprint(i%keys))
	}
	for i := 0; i < f.RangeReads; i++ {
		args = append(args, fmt.Sprintf("%d:%d", i%keys, 2))
	}
	for i := 0; i < f.RichQueries; i++ {
		args = append(args, fmt.Sprint(i%97))
	}
	return args
}
