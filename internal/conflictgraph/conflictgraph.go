// Package conflictgraph provides the dependency-graph machinery shared
// by the Fabric++ and FabricSharp reimplementations: building the
// within-block conflict graph from read/write sets, Tarjan strongly
// connected components, a greedy approximation of the minimum feedback
// vertex set (cycle removal — the MFVS problem is NP-hard, §5.2.3),
// and deterministic topological serialization.
package conflictgraph

import (
	"sort"

	"repro/internal/ledger"
)

// Graph is a directed graph over transaction indices 0..N-1.
type Graph struct {
	n   int
	adj [][]int
}

// NewGraph returns an empty graph over n nodes.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the directed edge u -> v (u must precede v).
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u] = append(g.adj[u], v)
}

// Succ returns u's successors.
func (g *Graph) Succ(u int) []int { return g.adj[u] }

// Edges counts directed edges.
func (g *Graph) Edges() int {
	n := 0
	for _, a := range g.adj {
		n += len(a)
	}
	return n
}

// Lookups is the number of read-key hash probes performed while
// building the last graph — Fabric++'s dominant reordering cost, used
// by the cost model to price the ordering phase (large range reads
// make this explode, §5.2.3).
type BuildResult struct {
	Graph   *Graph
	Lookups int
}

// Build constructs the within-block conflict graph: an edge Ti -> Tj
// means Ti must be ordered before Tj. Fabric validates a block's
// transactions against the pre-block state plus earlier in-block
// writes, so a transaction that reads key k must precede any
// transaction that writes k — edge reader -> writer. Unchecked (rich
// query) range observations create no constraints.
func Build(rwsets []*ledger.RWSet) BuildResult {
	g := NewGraph(len(rwsets))
	writers := map[string][]int{}
	for i, rw := range rwsets {
		for _, w := range rw.Writes {
			writers[w.Key] = append(writers[w.Key], i)
		}
	}
	lookups := 0
	addReaderEdges := func(i int, key string) {
		lookups++
		for _, j := range writers[key] {
			if j != i {
				g.AddEdge(i, j)
			}
		}
	}
	for i, rw := range rwsets {
		for _, r := range rw.Reads {
			addReaderEdges(i, r.Key)
		}
		for _, rq := range rw.RangeQueries {
			if rq.Unchecked {
				continue
			}
			for _, r := range rq.Reads {
				addReaderEdges(i, r.Key)
			}
			// Writers inserting into the scanned interval would
			// change the phantom re-execution, so the scanner must
			// also precede them.
			for key, ws := range writers {
				if key >= rq.StartKey && (rq.EndKey == "" || key < rq.EndKey) {
					lookups++
					for _, j := range ws {
						if j != i {
							g.AddEdge(i, j)
						}
					}
				}
			}
		}
	}
	return BuildResult{Graph: g, Lookups: lookups}
}

// SCCs returns the strongly connected components in reverse
// topological order (Tarjan). Components are sorted internally for
// determinism.
func (g *Graph) SCCs() [][]int {
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var out [][]int
	next := 0
	// Iterative Tarjan to survive large blocks without stack overflow.
	type frame struct {
		v, ei int
	}
	for start := 0; start < g.n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{v: start}}
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.adj[f.v]) {
				w := g.adj[f.v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// post-visit
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				out = append(out, comp)
			}
		}
	}
	return out
}

// BreakCycles removes nodes until the graph is acyclic, using the
// greedy MFVS approximation Fabric++ describes: within every strongly
// connected component of size > 1, repeatedly drop the node with the
// highest internal degree. Returns the removed node set (aborted
// transactions), deterministically.
func (g *Graph) BreakCycles() []int {
	removed := map[int]bool{}
	var aborted []int
	comps := g.SCCs()
	for _, comp := range comps {
		if len(comp) == 1 {
			v := comp[0]
			if !hasSelfLoop(g, v) {
				continue
			}
		}
		// Work on the subgraph induced by comp, removing greedily.
		in := map[int]bool{}
		for _, v := range comp {
			in[v] = true
		}
		for {
			sub := subgraph(g, in, removed)
			if sub.acyclic() {
				break
			}
			v := sub.maxDegreeNode()
			removed[v] = true
			aborted = append(aborted, v)
		}
	}
	sort.Ints(aborted)
	return aborted
}

func hasSelfLoop(g *Graph, v int) bool {
	for _, w := range g.adj[v] {
		if w == v {
			return true
		}
	}
	return false
}

// sub is an induced subgraph view used during cycle breaking.
type sub struct {
	nodes []int
	adj   map[int][]int
}

func subgraph(g *Graph, in map[int]bool, removed map[int]bool) *sub {
	s := &sub{adj: map[int][]int{}}
	for v := range in {
		if removed[v] {
			continue
		}
		s.nodes = append(s.nodes, v)
	}
	sort.Ints(s.nodes)
	member := map[int]bool{}
	for _, v := range s.nodes {
		member[v] = true
	}
	for _, v := range s.nodes {
		for _, w := range g.adj[v] {
			if member[w] && w != v {
				s.adj[v] = append(s.adj[v], w)
			}
		}
	}
	return s
}

func (s *sub) acyclic() bool {
	indeg := map[int]int{}
	for _, v := range s.nodes {
		indeg[v] += 0
		for _, w := range s.adj[v] {
			indeg[w]++
		}
	}
	queue := []int{}
	for _, v := range s.nodes {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for _, w := range s.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return seen == len(s.nodes)
}

func (s *sub) maxDegreeNode() int {
	best, bestDeg := -1, -1
	indeg := map[int]int{}
	for _, v := range s.nodes {
		for _, w := range s.adj[v] {
			indeg[w]++
		}
	}
	for _, v := range s.nodes {
		deg := len(s.adj[v]) + indeg[v]
		if deg > bestDeg {
			best, bestDeg = v, deg
		}
	}
	return best
}

// TopoOrder returns a deterministic topological order of the graph
// with the given nodes removed. It must only be called once the
// remaining graph is acyclic (after BreakCycles); it panics otherwise.
// Ties are broken by original index, so the serialization is stable.
func (g *Graph) TopoOrder(removed []int) []int {
	gone := map[int]bool{}
	for _, v := range removed {
		gone[v] = true
	}
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		if gone[u] {
			continue
		}
		for _, v := range g.adj[u] {
			if !gone[v] && v != u {
				indeg[v]++
			}
		}
	}
	// Min-heap by index for stability; a sorted slice suffices here.
	var ready []int
	for v := 0; v < g.n; v++ {
		if !gone[v] && indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	var order []int
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, w := range g.adj[v] {
			if gone[w] || w == v {
				continue
			}
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	want := 0
	for v := 0; v < g.n; v++ {
		if !gone[v] {
			want++
		}
	}
	if len(order) != want {
		panic("conflictgraph: TopoOrder called on a cyclic graph")
	}
	return order
}
