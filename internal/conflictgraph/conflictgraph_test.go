package conflictgraph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ledger"
)

func rw(reads []string, writes []string) *ledger.RWSet {
	s := &ledger.RWSet{}
	for _, k := range reads {
		s.Reads = append(s.Reads, ledger.KVRead{Key: k})
	}
	for _, k := range writes {
		s.Writes = append(s.Writes, ledger.KVWrite{Key: k})
	}
	return s
}

func TestBuildReaderBeforeWriter(t *testing.T) {
	// T0 reads a; T1 writes a  =>  edge 0 -> 1.
	res := Build([]*ledger.RWSet{
		rw([]string{"a"}, nil),
		rw(nil, []string{"a"}),
	})
	g := res.Graph
	if g.Edges() != 1 || len(g.Succ(0)) != 1 || g.Succ(0)[0] != 1 {
		t.Fatalf("edges wrong: %+v", g.adj)
	}
	if res.Lookups == 0 {
		t.Error("lookups not counted")
	}
}

func TestBuildRangeConstraint(t *testing.T) {
	// T0 scans [k1,k5); T1 writes k3 (inside), T2 writes k9 (outside).
	scan := &ledger.RWSet{RangeQueries: []ledger.RangeQueryInfo{{
		StartKey: "k1", EndKey: "k5",
		Reads: []ledger.KVRead{{Key: "k2"}},
	}}}
	res := Build([]*ledger.RWSet{
		scan,
		rw(nil, []string{"k3"}),
		rw(nil, []string{"k9"}),
	})
	succ := res.Graph.Succ(0)
	if len(succ) != 1 || succ[0] != 1 {
		t.Fatalf("scan edges = %v, want [1]", succ)
	}
}

func TestUncheckedRangeNoConstraint(t *testing.T) {
	scan := &ledger.RWSet{RangeQueries: []ledger.RangeQueryInfo{{
		StartKey: "a", EndKey: "z", Unchecked: true,
		Reads: []ledger.KVRead{{Key: "m"}},
	}}}
	res := Build([]*ledger.RWSet{scan, rw(nil, []string{"m"})})
	if res.Graph.Edges() != 0 {
		t.Fatal("unchecked range produced constraints")
	}
}

func TestRMWPairIsCycle(t *testing.T) {
	// Two read-modify-writes of the same key form a 2-cycle.
	res := Build([]*ledger.RWSet{
		rw([]string{"a"}, []string{"a"}),
		rw([]string{"a"}, []string{"a"}),
	})
	aborted := res.Graph.BreakCycles()
	if len(aborted) != 1 {
		t.Fatalf("aborted = %v, want exactly one", aborted)
	}
	order := res.Graph.TopoOrder(aborted)
	if len(order) != 1 {
		t.Fatalf("order = %v", order)
	}
}

func TestDisjointTxsNoCycles(t *testing.T) {
	var sets []*ledger.RWSet
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		sets = append(sets, rw([]string{k}, []string{k}))
	}
	res := Build(sets)
	if got := res.Graph.BreakCycles(); len(got) != 0 {
		t.Fatalf("disjoint txs aborted: %v", got)
	}
	if order := res.Graph.TopoOrder(nil); len(order) != 10 {
		t.Fatalf("order = %v", order)
	}
}

func TestReorderableChainKept(t *testing.T) {
	// T0 reads a; T1 writes a; T2 reads b; T3 writes b. No cycles:
	// everyone survives, readers ordered before writers.
	res := Build([]*ledger.RWSet{
		rw([]string{"a"}, nil),
		rw(nil, []string{"a"}),
		rw([]string{"b"}, nil),
		rw(nil, []string{"b"}),
	})
	if ab := res.Graph.BreakCycles(); len(ab) != 0 {
		t.Fatalf("aborted %v from an acyclic graph", ab)
	}
	order := res.Graph.TopoOrder(nil)
	pos := map[int]int{}
	for i, v := range order {
		pos[v] = i
	}
	if pos[0] > pos[1] || pos[2] > pos[3] {
		t.Fatalf("order %v violates reader-before-writer", order)
	}
}

func TestSCCsFindCycle(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	comps := g.SCCs()
	var big []int
	for _, c := range comps {
		if len(c) > 1 {
			big = c
		}
	}
	if len(big) != 3 || big[0] != 0 || big[2] != 2 {
		t.Fatalf("SCCs = %v", comps)
	}
}

func TestTopoOrderPanicsOnCycle(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("TopoOrder on a cycle did not panic")
		}
	}()
	g.TopoOrder(nil)
}

func TestSelfLoopIgnoredByAddEdge(t *testing.T) {
	g := NewGraph(1)
	g.AddEdge(0, 0)
	if g.Edges() != 0 {
		t.Fatal("self edge stored")
	}
}

// Property: after BreakCycles, TopoOrder succeeds (graph acyclic) and
// respects every remaining edge.
func TestBreakCyclesProperty(t *testing.T) {
	f := func(edges []struct{ U, V uint8 }) bool {
		const n = 12
		g := NewGraph(n)
		for _, e := range edges {
			g.AddEdge(int(e.U)%n, int(e.V)%n)
		}
		aborted := g.BreakCycles()
		gone := map[int]bool{}
		for _, v := range aborted {
			gone[v] = true
		}
		order := g.TopoOrder(aborted) // panics -> quick reports failure
		pos := map[int]int{}
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < n; u++ {
			if gone[u] {
				continue
			}
			for _, v := range g.Succ(u) {
				if gone[v] || v == u {
					continue
				}
				if pos[u] > pos[v] {
					return false
				}
			}
		}
		return len(order)+len(aborted) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Error(err)
	}
}

// Property: Build lookups grows with read-set size (the Fabric++ cost
// driver).
func TestLookupsScaleWithReads(t *testing.T) {
	mk := func(reads int) int {
		var sets []*ledger.RWSet
		for i := 0; i < 20; i++ {
			var rs []string
			for j := 0; j < reads; j++ {
				rs = append(rs, fmt.Sprintf("k%d", j))
			}
			sets = append(sets, rw(rs, []string{fmt.Sprintf("w%d", i)}))
		}
		return Build(sets).Lookups
	}
	small, large := mk(2), mk(100)
	if large <= small {
		t.Errorf("lookups small=%d large=%d, want growth", small, large)
	}
}

func BenchmarkBuildAndBreak100Txs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var sets []*ledger.RWSet
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(50))
		k2 := fmt.Sprintf("k%d", rng.Intn(50))
		sets = append(sets, rw([]string{k}, []string{k2}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Build(sets)
		ab := res.Graph.BreakCycles()
		res.Graph.TopoOrder(ab)
	}
}
