// Package costmodel holds the virtual-time service-cost calibration of
// the simulation. The protocol logic executes for real; these numbers
// decide how much virtual time each step consumes. They are calibrated
// against the paper's own measurements: the per-function-call
// latencies of Table 4 (GetState 8.3 ms CouchDB / 0.6 ms LevelDB,
// PutState 0.8/0.5, GetRange 88/1.4, DeleteState 1.2/0.6) and the
// testbed's ~200 tps capacity (§5).
//
// Nothing here hard-codes a failure rate: failures emerge from the
// interplay of these latencies with the E-O-V protocol.
package costmodel

import (
	"time"

	"repro/internal/ledger"
	"repro/internal/statedb"
)

// DBCosts is the per-operation cost of one state-database backend as
// seen by the chaincode runtime (endorsement simulation and phantom
// re-execution both pay them).
type DBCosts struct {
	Get         time.Duration // GetState
	Put         time.Duration // PutState (buffered write at endorsement)
	Delete      time.Duration // DeleteState
	RangeBase   time.Duration // fixed cost of opening a range scan
	RangePerKey time.Duration // per returned key
	QueryBase   time.Duration // fixed cost of a rich (selector) query
	QueryPerDoc time.Duration // per scanned document
	CommitBase  time.Duration // per-block state-db commit overhead
	CommitWrite time.Duration // per committed write
	// ValRangeBase/ValRangePerKey price the *validation-phase*
	// re-execution of a checked range query (phantom detection). They
	// are much cheaper than the endorsement-side RangeBase because
	// validation reads the state database directly, without the
	// chaincode shim round trips that dominate Table 4's GetRange.
	ValRangeBase   time.Duration
	ValRangePerKey time.Duration
}

// ForKind returns the calibrated cost profile of a backend. LevelDB is
// embedded in the peer process; CouchDB is reached via REST, which
// adds a per-call overhead that dominates for reads and is
// catastrophic for range scans (Table 4, §5.1.2).
func ForKind(k statedb.Kind) DBCosts {
	if k == statedb.CouchDB {
		return DBCosts{
			Get:            8300 * time.Microsecond,
			Put:            800 * time.Microsecond,
			Delete:         1200 * time.Microsecond,
			RangeBase:      80 * time.Millisecond,
			RangePerKey:    10 * time.Microsecond,
			QueryBase:      80 * time.Millisecond,
			QueryPerDoc:    4 * time.Microsecond,
			CommitBase:     4 * time.Millisecond,
			CommitWrite:    2 * time.Millisecond,
			ValRangeBase:   2 * time.Millisecond,
			ValRangePerKey: 2 * time.Microsecond,
		}
	}
	return DBCosts{
		Get:         600 * time.Microsecond,
		Put:         500 * time.Microsecond,
		Delete:      600 * time.Microsecond,
		RangeBase:   1200 * time.Microsecond,
		RangePerKey: 25 * time.Nanosecond,
		// LevelDB has no rich queries; costs left zero.
		CommitBase:     500 * time.Microsecond,
		CommitWrite:    100 * time.Microsecond,
		ValRangeBase:   200 * time.Microsecond,
		ValRangePerKey: 25 * time.Nanosecond,
	}
}

// PeerCosts is the validation/commit-side cost profile of a peer.
type PeerCosts struct {
	// EndorseBase is the fixed proposal-handling cost (gRPC, channel
	// checks, signing the response).
	EndorseBase time.Duration
	// EndorserWorkers is the number of proposals a peer simulates
	// concurrently. It bounds endorsement throughput: range-heavy
	// CouchDB work at ~88 ms per scan saturates the endorsers — the
	// mechanism behind Table 4's range-heavy latency collapse.
	EndorserWorkers int
	// SigVerify is the cost of verifying one endorsement signature
	// during VSCC validation.
	SigVerify time.Duration
	// SubPolicy is the additional VSCC search cost per sub-policy in
	// the endorsement policy (§5.1.4: each sub-policy is a separate
	// search space).
	SubPolicy time.Duration
	// MVCCPerKey is the version-check cost per read key.
	MVCCPerKey time.Duration
	// BlockBase is the fixed per-block cost of the committer (ledger
	// append, index update). It is what makes many small blocks more
	// expensive than few large ones (§5.1.1).
	BlockBase time.Duration
	// Jitter is the relative service-time variance (uniform ±Jitter)
	// applied per peer to the *fixed* per-block commit cost; it is
	// the dominant source of transient world-state inconsistency
	// between replicas (endorsement policy failures).
	Jitter float64
	// VarJitter is the (smaller) relative variance of the per-
	// transaction part of block processing: per-tx fluctuations
	// average out over a block, so replica skew grows only mildly
	// with block size — which keeps endorsement failures roughly
	// flat across block sizes (Fig 9).
	VarJitter float64
}

// DefaultPeerCosts returns the calibrated peer profile.
func DefaultPeerCosts() PeerCosts {
	return PeerCosts{
		EndorseBase:     2 * time.Millisecond,
		EndorserWorkers: 4,
		SigVerify:       600 * time.Microsecond,
		SubPolicy:       900 * time.Microsecond,
		MVCCPerKey:      15 * time.Microsecond,
		BlockBase:       45 * time.Millisecond,
		Jitter:          0.35,
		VarJitter:       0.08,
	}
}

// OrdererCosts is the ordering-service cost profile.
type OrdererCosts struct {
	// PerTx is the per-transaction ingestion cost (unmarshal, enqueue
	// into the consensus log).
	PerTx time.Duration
	// BlockCut is the per-block assembly cost.
	BlockCut time.Duration
	// PerDeliver is the per-peer cost of streaming one block out of
	// the ordering service. It is what makes Streamchain's
	// one-transaction blocks collapse on the 32-peer cluster
	// (§5.3.1: "streaming the transactions one-by-one will increase
	// the communication overhead between the orderer and the
	// multiple peers").
	PerDeliver time.Duration
	// ConsensusDelay approximates the Kafka/Raft round-trip for a
	// batch to become final.
	ConsensusDelay time.Duration
}

// DefaultOrdererCosts returns the calibrated orderer profile.
func DefaultOrdererCosts() OrdererCosts {
	return OrdererCosts{
		PerTx:          150 * time.Microsecond,
		BlockCut:       2 * time.Millisecond,
		PerDeliver:     400 * time.Microsecond,
		ConsensusDelay: 8 * time.Millisecond,
	}
}

// OpTrace summarizes the state-database operations performed by one
// chaincode invocation; the chaincode shim records it and the cost
// model prices it.
type OpTrace struct {
	Gets       int
	Puts       int
	Deletes    int
	Ranges     int
	RangeKeys  int // total keys returned by plain range scans
	Queries    int
	QueryDocs  int // total documents scanned by rich queries
	ScannedLen int // db size at query time (rich queries scan everything)
}

// EndorseCost prices the simulation of one transaction on an endorser.
func EndorseCost(db DBCosts, peer PeerCosts, t OpTrace) time.Duration {
	d := peer.EndorseBase
	d += time.Duration(t.Gets) * db.Get
	d += time.Duration(t.Puts) * db.Put
	d += time.Duration(t.Deletes) * db.Delete
	d += time.Duration(t.Ranges)*db.RangeBase + time.Duration(t.RangeKeys)*db.RangePerKey
	d += time.Duration(t.Queries)*db.QueryBase + time.Duration(t.ScannedLen)*db.QueryPerDoc
	return d
}

// ValidateCost prices VSCC+MVCC validation of one transaction: nSigs
// signature verifications, the sub-policy search overhead, a version
// check per read key, and re-execution of checked range queries
// (phantom detection re-reads the whole range from the state db,
// which is what makes range-heavy CouchDB workloads collapse).
func ValidateCost(db DBCosts, peer PeerCosts, nSigs, nSubPolicies int, rw *ledger.RWSet) time.Duration {
	d := time.Duration(nSigs)*peer.SigVerify + time.Duration(nSubPolicies)*peer.SubPolicy
	nReads := len(rw.Reads)
	for _, rq := range rw.RangeQueries {
		if rq.Unchecked {
			continue // rich queries are not re-executed (Table 2 footnote)
		}
		nReads += len(rq.Reads)
		d += db.ValRangeBase + time.Duration(len(rq.Reads))*db.ValRangePerKey
	}
	d += time.Duration(nReads) * peer.MVCCPerKey
	return d
}

// CommitCost prices applying a block's update batch to the state
// database plus the fixed per-block ledger append.
func CommitCost(db DBCosts, peer PeerCosts, nWrites int) time.Duration {
	return peer.BlockBase + db.CommitBase + time.Duration(nWrites)*db.CommitWrite
}
