package costmodel

import (
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/statedb"
)

func TestCalibrationMatchesTable4(t *testing.T) {
	cdb := ForKind(statedb.CouchDB)
	ldb := ForKind(statedb.LevelDB)
	// Table 4 function-call latencies: GetState 8.3/0.6 ms, PutState
	// 0.8/0.5, GetRange 88/1.4 (base), DeleteState 1.2/0.6.
	if cdb.Get != 8300*time.Microsecond || ldb.Get != 600*time.Microsecond {
		t.Errorf("GetState calibration: %v / %v", cdb.Get, ldb.Get)
	}
	if cdb.Put != 800*time.Microsecond || ldb.Put != 500*time.Microsecond {
		t.Errorf("PutState calibration: %v / %v", cdb.Put, ldb.Put)
	}
	if cdb.Delete != 1200*time.Microsecond || ldb.Delete != 600*time.Microsecond {
		t.Errorf("DeleteState calibration: %v / %v", cdb.Delete, ldb.Delete)
	}
	if cdb.RangeBase != 80*time.Millisecond {
		t.Errorf("CouchDB GetRange base: %v", cdb.RangeBase)
	}
	// Every CouchDB op must cost at least its LevelDB counterpart.
	if cdb.Get < ldb.Get || cdb.Put < ldb.Put || cdb.Delete < ldb.Delete ||
		cdb.RangeBase < ldb.RangeBase || cdb.CommitWrite < ldb.CommitWrite {
		t.Error("CouchDB cheaper than LevelDB somewhere")
	}
	// Validation-side range costs must be far below the shim-side
	// ones (no chaincode round trips).
	if cdb.ValRangeBase >= cdb.RangeBase || ldb.ValRangeBase >= ldb.RangeBase {
		t.Error("validation range cost not cheaper than endorsement range cost")
	}
}

func TestEndorseCostComposition(t *testing.T) {
	db := ForKind(statedb.LevelDB)
	pc := DefaultPeerCosts()
	base := EndorseCost(db, pc, OpTrace{})
	if base != pc.EndorseBase {
		t.Errorf("empty trace cost = %v, want %v", base, pc.EndorseBase)
	}
	withOps := EndorseCost(db, pc, OpTrace{Gets: 2, Puts: 1, Deletes: 1, Ranges: 1, RangeKeys: 10})
	want := pc.EndorseBase + 2*db.Get + db.Put + db.Delete + db.RangeBase + 10*db.RangePerKey
	if withOps != want {
		t.Errorf("cost = %v, want %v", withOps, want)
	}
	// Rich queries price the scan over the whole db.
	rich := EndorseCost(ForKind(statedb.CouchDB), pc, OpTrace{Queries: 1, ScannedLen: 1000})
	if rich <= pc.EndorseBase+ForKind(statedb.CouchDB).QueryBase {
		t.Error("rich query per-doc cost missing")
	}
}

func TestValidateCostSkipsUncheckedRanges(t *testing.T) {
	db := ForKind(statedb.CouchDB)
	pc := DefaultPeerCosts()
	checked := &ledger.RWSet{RangeQueries: []ledger.RangeQueryInfo{{
		Reads: make([]ledger.KVRead, 100),
	}}}
	unchecked := &ledger.RWSet{RangeQueries: []ledger.RangeQueryInfo{{
		Unchecked: true, Reads: make([]ledger.KVRead, 100),
	}}}
	cChecked := ValidateCost(db, pc, 2, 0, checked)
	cUnchecked := ValidateCost(db, pc, 2, 0, unchecked)
	if cChecked <= cUnchecked {
		t.Errorf("checked range %v not more expensive than unchecked %v", cChecked, cUnchecked)
	}
	if cUnchecked != 2*pc.SigVerify {
		t.Errorf("unchecked validation = %v, want pure VSCC", cUnchecked)
	}
}

func TestValidateCostGrowsWithSigsAndSubPolicies(t *testing.T) {
	db := ForKind(statedb.LevelDB)
	pc := DefaultPeerCosts()
	rw := &ledger.RWSet{Reads: make([]ledger.KVRead, 3)}
	c1 := ValidateCost(db, pc, 2, 0, rw)
	c2 := ValidateCost(db, pc, 8, 0, rw)
	c3 := ValidateCost(db, pc, 8, 2, rw)
	if !(c1 < c2 && c2 < c3) {
		t.Errorf("validate cost not monotone: %v %v %v", c1, c2, c3)
	}
}

func TestCommitCost(t *testing.T) {
	db := ForKind(statedb.LevelDB)
	pc := DefaultPeerCosts()
	c0 := CommitCost(db, pc, 0)
	if c0 != pc.BlockBase+db.CommitBase {
		t.Errorf("empty commit = %v", c0)
	}
	c100 := CommitCost(db, pc, 100)
	if c100 != c0+100*db.CommitWrite {
		t.Errorf("100-write commit = %v", c100)
	}
}

func TestDefaultProfilesSane(t *testing.T) {
	pc := DefaultPeerCosts()
	if pc.Jitter <= 0 || pc.Jitter >= 1 {
		t.Errorf("jitter %v out of (0,1)", pc.Jitter)
	}
	if pc.BlockBase <= 0 || pc.SigVerify <= 0 {
		t.Error("zero peer costs")
	}
	oc := DefaultOrdererCosts()
	if oc.PerTx <= 0 || oc.BlockCut <= 0 || oc.PerDeliver <= 0 {
		t.Error("zero orderer costs")
	}
}
