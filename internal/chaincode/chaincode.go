// Package chaincode defines the smart-contract programming model of
// the simulation: the Chaincode interface implemented by the four
// use-case contracts and the generated genChain contracts, and the
// Stub through which invocations read and write the world state.
//
// The stub mirrors Fabric's transaction simulator semantics:
//
//   - GetState reads the *committed* state; a transaction cannot read
//     its own buffered writes (Fabric has no read-your-writes).
//   - PutState/DelState buffer into the write set; the last write per
//     key wins.
//   - GetStateByRange records a RangeQueryInfo that validation
//     re-executes for phantom detection.
//   - GetQueryResult (rich query, CouchDB only) records nothing that
//     validation checks — Fabric provides no phantom detection for
//     rich queries (Table 2 footnote, §5.1.2).
//
// Every stub also records an OpTrace so the cost model can price the
// invocation in virtual time.
package chaincode

import (
	"errors"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/ledger"
	"repro/internal/statedb"
)

// Chaincode is a smart contract. Implementations must be
// deterministic: for a given world state and arguments, every peer
// must produce the same read/write set.
type Chaincode interface {
	// Name is the chaincode identifier.
	Name() string
	// Init populates the initial world state (the paper's initLedger
	// functions) through the stub.
	Init(stub *Stub) error
	// Invoke dispatches a named function.
	Invoke(stub *Stub, fn string, args []string) error
}

// Stub is the world-state access object handed to chaincode
// invocations. It captures the read/write set and operation trace.
type Stub struct {
	db      statedb.VersionedDB
	rwset   *ledger.RWSet
	trace   costmodel.OpTrace
	readKey map[string]bool // keys already in the read set
	writes  map[string]int  // key -> index into rwset.Writes
}

// NewStub creates a stub executing against db.
func NewStub(db statedb.VersionedDB) *Stub {
	return &Stub{
		db:      db,
		rwset:   &ledger.RWSet{},
		readKey: map[string]bool{},
		writes:  map[string]int{},
	}
}

// RWSet returns the captured read/write set.
func (s *Stub) RWSet() *ledger.RWSet { return s.rwset }

// Trace returns the recorded operation counts for cost pricing.
func (s *Stub) Trace() costmodel.OpTrace { return s.trace }

// GetState returns the committed value of key, or nil when absent.
// The observed version is appended to the read set once per key.
func (s *Stub) GetState(key string) ([]byte, error) {
	if key == "" {
		return nil, errors.New("chaincode: empty key")
	}
	s.trace.Gets++
	vv := s.db.Get(key)
	if !s.readKey[key] {
		s.readKey[key] = true
		r := ledger.KVRead{Key: key}
		if vv != nil {
			r.Version = vv.Version
		}
		s.rwset.Reads = append(s.rwset.Reads, r)
	}
	if vv == nil {
		return nil, nil
	}
	return vv.Value, nil
}

// PutState buffers a write of value under key.
func (s *Stub) PutState(key string, value []byte) error {
	if key == "" {
		return errors.New("chaincode: empty key")
	}
	s.trace.Puts++
	s.bufferWrite(ledger.KVWrite{Key: key, Value: value})
	return nil
}

// DelState buffers a deletion of key.
func (s *Stub) DelState(key string) error {
	if key == "" {
		return errors.New("chaincode: empty key")
	}
	s.trace.Deletes++
	s.bufferWrite(ledger.KVWrite{Key: key, IsDelete: true})
	return nil
}

func (s *Stub) bufferWrite(w ledger.KVWrite) {
	if i, ok := s.writes[w.Key]; ok {
		s.rwset.Writes[i] = w
		return
	}
	s.writes[w.Key] = len(s.rwset.Writes)
	s.rwset.Writes = append(s.rwset.Writes, w)
}

// GetStateByRange scans [start, end) and records the observed
// key/version list for phantom validation.
func (s *Stub) GetStateByRange(start, end string) ([]statedb.KV, error) {
	kvs := s.db.GetRange(start, end)
	s.trace.Ranges++
	s.trace.RangeKeys += len(kvs)
	rq := ledger.RangeQueryInfo{StartKey: start, EndKey: end}
	for _, kv := range kvs {
		rq.Reads = append(rq.Reads, ledger.KVRead{Key: kv.Key, Version: kv.Version})
	}
	s.rwset.RangeQueries = append(s.rwset.RangeQueries, rq)
	return kvs, nil
}

// SupportsRichQueries reports whether the underlying state database
// can execute selector queries (CouchDB only).
func (s *Stub) SupportsRichQueries() bool { return s.db.Kind() == statedb.CouchDB }

// GetQueryResult executes a rich selector query. The results are
// recorded as an *unchecked* range observation: validation never
// re-executes them, so rich queries cannot produce phantom read
// conflicts — and provide no guarantee of result validity.
func (s *Stub) GetQueryResult(query string) ([]statedb.KV, error) {
	kvs, err := s.db.ExecuteQuery(query)
	if err != nil {
		return nil, fmt.Errorf("chaincode: rich query failed: %w", err)
	}
	s.trace.Queries++
	s.trace.QueryDocs += len(kvs)
	s.trace.ScannedLen += s.db.Len()
	rq := ledger.RangeQueryInfo{Unchecked: true}
	for _, kv := range kvs {
		rq.Reads = append(rq.Reads, ledger.KVRead{Key: kv.Key, Version: kv.Version})
	}
	s.rwset.RangeQueries = append(s.rwset.RangeQueries, rq)
	return kvs, nil
}

// Registry maps chaincode names to constructors so experiments can
// instantiate contracts by name.
type Registry struct {
	byName map[string]func() Chaincode
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]func() Chaincode{}}
}

// Register adds a constructor under name, replacing any previous one.
func (r *Registry) Register(name string, ctor func() Chaincode) {
	r.byName[name] = ctor
}

// New instantiates the named chaincode.
func (r *Registry) New(name string) (Chaincode, error) {
	ctor, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("chaincode: unknown chaincode %q", name)
	}
	return ctor(), nil
}
