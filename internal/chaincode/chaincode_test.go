package chaincode

import (
	"testing"

	"repro/internal/ledger"
	"repro/internal/statedb"
)

func seeded(kind statedb.Kind) statedb.VersionedDB {
	db := statedb.New(kind, 1)
	b := &statedb.UpdateBatch{}
	b.Put("k1", []byte(`{"n":1}`), ledger.Height{BlockNum: 1, TxNum: 0})
	b.Put("k2", []byte(`{"n":2}`), ledger.Height{BlockNum: 1, TxNum: 1})
	b.Put("k3", []byte(`{"n":3}`), ledger.Height{BlockNum: 2, TxNum: 0})
	db.ApplyUpdates(b, 2)
	return db
}

func TestGetStateRecordsVersion(t *testing.T) {
	s := NewStub(seeded(statedb.LevelDB))
	v, err := s.GetState("k1")
	if err != nil || string(v) != `{"n":1}` {
		t.Fatalf("GetState = %q, %v", v, err)
	}
	rw := s.RWSet()
	if len(rw.Reads) != 1 || rw.Reads[0].Key != "k1" ||
		rw.Reads[0].Version != (ledger.Height{BlockNum: 1, TxNum: 0}) {
		t.Fatalf("read set = %+v", rw.Reads)
	}
}

func TestGetStateAbsentKeyRecordsZeroVersion(t *testing.T) {
	s := NewStub(seeded(statedb.LevelDB))
	v, err := s.GetState("missing")
	if err != nil || v != nil {
		t.Fatalf("GetState(missing) = %q, %v", v, err)
	}
	if len(s.RWSet().Reads) != 1 || s.RWSet().Reads[0].Version != ledger.ZeroHeight {
		t.Fatalf("read set = %+v", s.RWSet().Reads)
	}
}

func TestDuplicateReadRecordedOnce(t *testing.T) {
	s := NewStub(seeded(statedb.LevelDB))
	s.GetState("k1")
	s.GetState("k1")
	if len(s.RWSet().Reads) != 1 {
		t.Fatalf("duplicate read recorded twice: %+v", s.RWSet().Reads)
	}
	if s.Trace().Gets != 2 {
		t.Fatalf("trace gets = %d, want 2", s.Trace().Gets)
	}
}

func TestNoReadYourOwnWrites(t *testing.T) {
	s := NewStub(seeded(statedb.LevelDB))
	s.PutState("k1", []byte("new"))
	v, _ := s.GetState("k1")
	if string(v) != `{"n":1}` {
		t.Fatalf("GetState after PutState = %q, want committed value", v)
	}
}

func TestLastWriteWins(t *testing.T) {
	s := NewStub(seeded(statedb.LevelDB))
	s.PutState("k9", []byte("a"))
	s.PutState("k9", []byte("b"))
	s.DelState("k9")
	rw := s.RWSet()
	if len(rw.Writes) != 1 || !rw.Writes[0].IsDelete {
		t.Fatalf("writes = %+v", rw.Writes)
	}
	if s.Trace().Puts != 2 || s.Trace().Deletes != 1 {
		t.Fatalf("trace = %+v", s.Trace())
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s := NewStub(seeded(statedb.LevelDB))
	if _, err := s.GetState(""); err == nil {
		t.Error("GetState accepted empty key")
	}
	if err := s.PutState("", nil); err == nil {
		t.Error("PutState accepted empty key")
	}
	if err := s.DelState(""); err == nil {
		t.Error("DelState accepted empty key")
	}
}

func TestRangeRecordsQueryInfo(t *testing.T) {
	s := NewStub(seeded(statedb.LevelDB))
	kvs, err := s.GetStateByRange("k1", "k3")
	if err != nil || len(kvs) != 2 {
		t.Fatalf("range = %v, %v", kvs, err)
	}
	rw := s.RWSet()
	if len(rw.RangeQueries) != 1 {
		t.Fatalf("range queries = %+v", rw.RangeQueries)
	}
	rq := rw.RangeQueries[0]
	if rq.StartKey != "k1" || rq.EndKey != "k3" || len(rq.Reads) != 2 || rq.Unchecked {
		t.Fatalf("range query info = %+v", rq)
	}
	if s.Trace().Ranges != 1 || s.Trace().RangeKeys != 2 {
		t.Fatalf("trace = %+v", s.Trace())
	}
}

func TestRichQueryUncheckedOnCouch(t *testing.T) {
	s := NewStub(seeded(statedb.CouchDB))
	if !s.SupportsRichQueries() {
		t.Fatal("CouchDB stub reports no rich queries")
	}
	kvs, err := s.GetQueryResult(`{"n":{"$gte":2}}`)
	if err != nil || len(kvs) != 2 {
		t.Fatalf("query = %v, %v", kvs, err)
	}
	rw := s.RWSet()
	if len(rw.RangeQueries) != 1 || !rw.RangeQueries[0].Unchecked {
		t.Fatalf("rich query not recorded unchecked: %+v", rw.RangeQueries)
	}
	if len(rw.Reads) != 0 {
		t.Fatal("rich query polluted the plain read set")
	}
	if s.Trace().Queries != 1 || s.Trace().QueryDocs != 2 || s.Trace().ScannedLen != 3 {
		t.Fatalf("trace = %+v", s.Trace())
	}
}

func TestRichQueryFailsOnLevelDB(t *testing.T) {
	s := NewStub(seeded(statedb.LevelDB))
	if s.SupportsRichQueries() {
		t.Fatal("LevelDB stub reports rich queries")
	}
	if _, err := s.GetQueryResult(`{"n":1}`); err == nil {
		t.Fatal("rich query succeeded on LevelDB")
	}
}

type fakeCC struct{ name string }

func (f *fakeCC) Name() string                         { return f.name }
func (f *fakeCC) Init(*Stub) error                     { return nil }
func (f *fakeCC) Invoke(*Stub, string, []string) error { return nil }

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register("fake", func() Chaincode { return &fakeCC{name: "fake"} })
	cc, err := r.New("fake")
	if err != nil || cc.Name() != "fake" {
		t.Fatalf("New = %v, %v", cc, err)
	}
	if _, err := r.New("nope"); err == nil {
		t.Fatal("unknown chaincode instantiated")
	}
}
