package metrics

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/sim"
)

func sec(s int) sim.Time { return sim.Time(time.Duration(s) * time.Second) }

func TestCollectorCountsAndPercentages(t *testing.T) {
	c := NewCollector()
	c.RecordTx(ledger.Valid, sec(0), sec(1))
	c.RecordTx(ledger.Valid, sec(0), sec(2))
	c.RecordTx(ledger.MVCCConflictIntraBlock, sec(1), sec(2))
	c.RecordTx(ledger.MVCCConflictInterBlock, sec(1), sec(3))
	c.RecordTx(ledger.EndorsementPolicyFailure, sec(2), sec(3))
	c.RecordAbort(sec(2), sec(3))
	c.RecordBlock()
	c.RecordBlock()

	r := c.Report()
	if r.Total != 6 || r.Committed != 5 || r.Valid != 2 {
		t.Fatalf("totals: %+v", r)
	}
	if r.FailurePct != 100*4.0/6 {
		t.Errorf("FailurePct = %v", r.FailurePct)
	}
	if r.MVCCPct != 100*2.0/6 || r.IntraBlockPct != 100*1.0/6 {
		t.Errorf("MVCC percentages wrong: %+v", r)
	}
	if r.AbortedPct != 100*1.0/6 {
		t.Errorf("AbortedPct = %v", r.AbortedPct)
	}
	if r.Blocks != 2 {
		t.Errorf("Blocks = %d", r.Blocks)
	}
}

func TestLatencyStats(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 10; i++ {
		c.RecordTx(ledger.Valid, sec(0), sec(i))
	}
	r := c.Report()
	if r.AvgLatency != 5500*time.Millisecond {
		t.Errorf("AvgLatency = %v", r.AvgLatency)
	}
	// Percentiles are histogram estimates: at least the exact order
	// statistic, at most one bucket width (6.25%) above it.
	if p, exact := r.P50Latency, 6*time.Second; p < exact || p > exact+exact/16 {
		t.Errorf("P50 = %v, want within [%v, %v]", p, exact, exact+exact/16)
	}
	// The top percentile is capped at the exact observed maximum.
	if r.P95Latency != 10*time.Second {
		t.Errorf("P95 = %v", r.P95Latency)
	}
	if r.MaxLatency != 10*time.Second {
		t.Errorf("MaxLatency = %v", r.MaxLatency)
	}
	// Duration spans first submit to last commit; throughput follows.
	if r.Duration != 10*time.Second {
		t.Errorf("Duration = %v", r.Duration)
	}
	if r.Throughput != 1.0 {
		t.Errorf("Throughput = %v", r.Throughput)
	}
}

func TestLatencyHistogramGeometry(t *testing.T) {
	// Sub-16ns values get exact unit buckets.
	for d := time.Duration(0); d < histSubCount; d++ {
		if got := bucketUpper(latBucket(d)); got != d {
			t.Errorf("bucketUpper(latBucket(%d)) = %v, want exact", d, got)
		}
	}
	// Larger values land in a bucket whose upper bound is within 6.25%
	// of the value, and never below it.
	for _, d := range []time.Duration{
		16, 17, 255, 1023, time.Microsecond, 37 * time.Millisecond,
		time.Second, 6 * time.Second, 90 * time.Minute, 400 * time.Hour,
	} {
		up := bucketUpper(latBucket(d))
		if up < d {
			t.Errorf("bucket upper %v below recorded value %v", up, d)
		}
		if up > d+d/histSubCount {
			t.Errorf("bucket upper %v more than 1/%d above %v", up, histSubCount, d)
		}
	}
	// Bucket indices are monotone in the value and stay in range.
	prev := -1
	for _, d := range []time.Duration{0, 1, 15, 16, 31, 32, 1000,
		time.Millisecond, time.Second, time.Hour, 1<<62 - 1} {
		b := latBucket(d)
		if b <= prev {
			t.Errorf("latBucket(%v) = %d not monotone after %d", d, b, prev)
		}
		if b < 0 || b >= histBuckets {
			t.Fatalf("latBucket(%v) = %d out of range [0,%d)", d, b, histBuckets)
		}
		prev = b
	}
}

func TestServedReadsExcludedFromChainCounts(t *testing.T) {
	c := NewCollector()
	c.RecordTx(ledger.Valid, sec(0), sec(1))
	c.RecordServedRead(sec(0), sec(1))
	r := c.Report()
	if r.Total != 1 || r.Committed != 1 {
		t.Fatalf("served read leaked into chain counts: %+v", r)
	}
	if r.ServedReads != 1 {
		t.Fatalf("ServedReads = %d", r.ServedReads)
	}
}

func TestEmptyReport(t *testing.T) {
	r := NewCollector().Report()
	if r.Total != 0 || r.FailurePct != 0 || r.AvgLatency != 0 || r.Throughput != 0 {
		t.Errorf("empty report not zeroed: %+v", r)
	}
}

func TestReportString(t *testing.T) {
	c := NewCollector()
	c.RecordTx(ledger.Valid, sec(0), sec(1))
	s := c.Report().String()
	for _, want := range []string{"total=1", "valid=1", "fail=0.00%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func chainWith(t *testing.T, codes ...ledger.ValidationCode) *ledger.Chain {
	t.Helper()
	ch := ledger.NewChain()
	gb := &ledger.Block{Number: 0}
	gb.Hash = gb.ComputeHash()
	if err := ch.Append(gb); err != nil {
		t.Fatal(err)
	}
	var txs []*ledger.Transaction
	for i := range codes {
		txs = append(txs, &ledger.Transaction{
			ID:    string(rune('a' + i)),
			RWSet: &ledger.RWSet{},
		})
	}
	b := &ledger.Block{Number: 1, PrevHash: gb.Hash, Transactions: txs, ValidationCodes: codes}
	b.Hash = b.ComputeHash()
	if err := ch.Append(b); err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestParseChain(t *testing.T) {
	ch := chainWith(t,
		ledger.Valid, ledger.Valid, ledger.MVCCConflictIntraBlock,
		ledger.PhantomReadConflict)
	r := ParseChain(ch)
	if r.Total != 4 || r.Valid != 2 || r.Blocks != 1 {
		t.Fatalf("parsed %+v", r)
	}
	if r.PhantomPct != 25 || r.IntraBlockPct != 25 {
		t.Errorf("percentages %+v", r)
	}
}

func TestParseChainSkipsGenesis(t *testing.T) {
	ch := ledger.NewChain()
	gb := &ledger.Block{Number: 0}
	gb.Hash = gb.ComputeHash()
	if err := ch.Append(gb); err != nil {
		t.Fatal(err)
	}
	r := ParseChain(ch)
	if r.Total != 0 || r.Blocks != 0 {
		t.Errorf("genesis counted: %+v", r)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("b", 1500*time.Millisecond)
	tb.AddRow("c", 42)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/separator wrong:\n%s", out)
	}
	if !strings.Contains(out, "3.14") {
		t.Errorf("float not formatted: %s", out)
	}
	if !strings.Contains(out, "1.5s") {
		t.Errorf("duration not rounded: %s", out)
	}
	// Columns aligned: every line at least as wide as the header.
	for i, l := range lines {
		if len(l) < len("name") {
			t.Errorf("line %d too short: %q", i, l)
		}
	}
}

func TestEffectiveMetricsFromJobs(t *testing.T) {
	c := NewCollector()
	// Job A: fails twice (intra, inter), commits on attempt 3.
	c.RecordAttempt(1, ledger.MVCCConflictIntraBlock)
	c.RecordAttempt(2, ledger.MVCCConflictInterBlock)
	c.RecordAttempt(3, ledger.Valid)
	c.RecordJob(3, true, sec(0), sec(6))
	// Job B: commits first try.
	c.RecordAttempt(1, ledger.Valid)
	c.RecordJob(1, true, sec(1), sec(2))
	// Job C: fails once, client gives up.
	c.RecordAttempt(1, ledger.PhantomReadConflict)
	c.RecordJob(1, false, sec(2), sec(4))
	// Chain-level view: the attempts that reached the chain.
	for _, code := range []ledger.ValidationCode{
		ledger.MVCCConflictIntraBlock, ledger.MVCCConflictInterBlock,
		ledger.Valid, ledger.Valid, ledger.PhantomReadConflict,
	} {
		c.RecordTx(code, sec(0), sec(6))
	}

	r := c.Report()
	if r.Jobs != 3 || r.EventualValid != 2 || r.GaveUp != 1 {
		t.Fatalf("jobs: %+v", r)
	}
	if r.Attempts != 5 {
		t.Errorf("Attempts = %d, want 5", r.Attempts)
	}
	if r.FirstAttemptValid != 1 {
		t.Errorf("FirstAttemptValid = %d, want 1 (only job B)", r.FirstAttemptValid)
	}
	if want := 5.0 / 3; r.RetryAmplification != want {
		t.Errorf("RetryAmplification = %v, want %v", r.RetryAmplification, want)
	}
	// End-to-end: (6 + 1 + 2) / 3 seconds.
	if want := 3 * time.Second; r.AvgEndToEnd != want {
		t.Errorf("AvgEndToEnd = %v, want %v", r.AvgEndToEnd, want)
	}
	// Goodput: 1 first-try success over the 6s window.
	if want := 1.0 / 6; r.Goodput != want {
		t.Errorf("Goodput = %v, want %v", r.Goodput, want)
	}
	if r.AttemptBreakdown[1][ledger.Valid] != 1 ||
		r.AttemptBreakdown[1][ledger.MVCCConflictIntraBlock] != 1 ||
		r.AttemptBreakdown[3][ledger.Valid] != 1 {
		t.Errorf("breakdown: %v", r.AttemptBreakdown)
	}
}

func TestEffectiveMetricsFallback(t *testing.T) {
	c := NewCollector()
	c.RecordTx(ledger.Valid, sec(0), sec(1))
	c.RecordTx(ledger.Valid, sec(0), sec(2))
	c.RecordTx(ledger.MVCCConflictInterBlock, sec(1), sec(2))
	r := c.Report()
	// Fire-and-forget: every transaction is a single-attempt job.
	if r.Jobs != 3 || r.Attempts != 3 || r.EventualValid != 2 || r.FirstAttemptValid != 2 {
		t.Fatalf("fallback: %+v", r)
	}
	if r.RetryAmplification != 1 {
		t.Errorf("RetryAmplification = %v, want 1", r.RetryAmplification)
	}
	if r.AvgEndToEnd != r.AvgLatency {
		t.Errorf("AvgEndToEnd %v != AvgLatency %v", r.AvgEndToEnd, r.AvgLatency)
	}
	if want := 2.0 / 2; r.Goodput != want { // 2 valid over the 2s window
		t.Errorf("Goodput = %v, want %v", r.Goodput, want)
	}
	if r.GaveUp != 0 || len(r.AttemptBreakdown) != 0 {
		t.Errorf("fallback leaked tracking state: %+v", r)
	}
}

func TestReportStringIncludesEffective(t *testing.T) {
	c := NewCollector()
	c.RecordAttempt(1, ledger.Valid)
	c.RecordJob(1, true, sec(0), sec(1))
	c.RecordTx(ledger.Valid, sec(0), sec(1))
	s := c.Report().String()
	if !strings.Contains(s, "goodput=") || !strings.Contains(s, "amp=") {
		t.Errorf("summary lacks effective metrics: %s", s)
	}
}

func TestFallbackCountsServedReadsAsFirstTrySuccess(t *testing.T) {
	c := NewCollector()
	c.RecordTx(ledger.Valid, sec(0), sec(1))
	c.RecordTx(ledger.MVCCConflictInterBlock, sec(0), sec(2))
	c.RecordServedRead(sec(1), sec(2))
	r := c.Report()
	// Served reads are successful single-attempt jobs in both the
	// tracked and the fire-and-forget view.
	if r.Jobs != 3 || r.Attempts != 3 {
		t.Fatalf("jobs=%d attempts=%d, want 3/3", r.Jobs, r.Attempts)
	}
	if r.EventualValid != 2 || r.FirstAttemptValid != 2 {
		t.Errorf("eventual=%d first=%d, want 2/2 (1 valid + 1 served read)",
			r.EventualValid, r.FirstAttemptValid)
	}
	if r.RetryAmplification != 1 {
		t.Errorf("amplification = %v, want 1", r.RetryAmplification)
	}
}

func TestBudgetAndDeferAccounting(t *testing.T) {
	c := NewCollector()
	c.RecordBudgetExhausted()
	c.RecordBudgetExhausted()
	// Two deferrals overlap (depth 2), a third follows alone.
	c.RecordDeferStart()
	c.RecordDeferStart()
	c.RecordDeferEnd()
	c.RecordDeferEnd()
	c.RecordDeferStart()
	c.RecordDeferEnd()
	// A spurious extra end must not drive the depth negative.
	c.RecordDeferEnd()
	c.RecordDeferStart()
	r := c.Report()
	if r.BudgetExhausted != 2 {
		t.Errorf("exhausted %d, want 2", r.BudgetExhausted)
	}
	if r.DeferredRetries != 4 {
		t.Errorf("deferred %d, want 4", r.DeferredRetries)
	}
	if r.MaxDeferredDepth != 2 {
		t.Errorf("max depth %d, want 2", r.MaxDeferredDepth)
	}
}

func TestBackoffTrajectorySummary(t *testing.T) {
	c := NewCollector()
	r := c.Report()
	if r.AdaptiveBackoffAvg != 0 || r.AdaptiveBackoffMax != 0 || r.AdaptiveBackoffFinal != 0 {
		t.Error("empty collector reported a trajectory")
	}
	c.RecordBackoffSample(100 * time.Millisecond)
	c.RecordBackoffSample(400 * time.Millisecond)
	c.RecordBackoffSample(200 * time.Millisecond)
	r = c.Report()
	if want := (100 + 400 + 200) * time.Millisecond / 3; r.AdaptiveBackoffAvg != want {
		t.Errorf("avg %v, want %v", r.AdaptiveBackoffAvg, want)
	}
	if r.AdaptiveBackoffMax != 400*time.Millisecond {
		t.Errorf("max %v, want 400ms", r.AdaptiveBackoffMax)
	}
	if r.AdaptiveBackoffFinal != 200*time.Millisecond {
		t.Errorf("final %v, want 200ms", r.AdaptiveBackoffFinal)
	}
}

func TestBackpressureSummary(t *testing.T) {
	c := NewCollector()
	r := c.Report()
	if r.BackpressureHintAvg != 0 || r.BackpressureHintMax != 0 ||
		r.BackpressureHintFinal != 0 || r.PacedSubmissions != 0 || r.TimePaced != 0 {
		t.Error("empty collector reported backpressure activity")
	}
	c.RecordHintSample(0.2)
	c.RecordHintSample(0.8)
	c.RecordHintSample(0.5)
	c.RecordPaced(300 * time.Millisecond)
	c.RecordPaced(700 * time.Millisecond)
	r = c.Report()
	if want := (0.2 + 0.8 + 0.5) / 3; r.BackpressureHintAvg != want {
		t.Errorf("hint avg %g, want %g", r.BackpressureHintAvg, want)
	}
	if r.BackpressureHintMax != 0.8 {
		t.Errorf("hint max %g, want 0.8", r.BackpressureHintMax)
	}
	if r.BackpressureHintFinal != 0.5 {
		t.Errorf("hint final %g, want 0.5", r.BackpressureHintFinal)
	}
	if r.PacedSubmissions != 2 {
		t.Errorf("paced %d, want 2", r.PacedSubmissions)
	}
	if r.TimePaced != time.Second {
		t.Errorf("time paced %v, want 1s", r.TimePaced)
	}
}

func TestMaxPacedPauseTracksLargestSinglePause(t *testing.T) {
	c := NewCollector()
	c.RecordPaced(300 * time.Millisecond)
	c.RecordPaced(900 * time.Millisecond)
	c.RecordPaced(100 * time.Millisecond)
	if r := c.Report(); r.MaxPacedPause != 900*time.Millisecond {
		t.Errorf("max paced pause %v, want 900ms", r.MaxPacedPause)
	}
}

func TestGossipSummary(t *testing.T) {
	c := NewCollector()
	r := c.Report()
	if r.GossipMessages != 0 || r.GossipMerges != 0 || r.GossipEstimateAvg != 0 ||
		r.GossipEstimateMax != 0 || r.GossipEstimateFinal != 0 ||
		r.GossipUses != 0 || r.GossipStalenessAvg != 0 || r.GossipStalenessMax != 0 {
		t.Error("empty collector reported gossip activity")
	}
	c.RecordGossipMessage()
	c.RecordGossipMessage()
	c.RecordGossipMessage()
	c.RecordGossipMerge()
	c.RecordGossipSample(0.2)
	c.RecordGossipSample(0.9)
	c.RecordGossipSample(0.4)
	c.RecordGossipUse(100 * time.Millisecond)
	c.RecordGossipUse(500 * time.Millisecond)
	r = c.Report()
	if r.GossipMessages != 3 || r.GossipMerges != 1 {
		t.Errorf("msgs=%d merges=%d, want 3 and 1", r.GossipMessages, r.GossipMerges)
	}
	if want := (0.2 + 0.9 + 0.4) / 3; r.GossipEstimateAvg != want {
		t.Errorf("estimate avg %g, want %g", r.GossipEstimateAvg, want)
	}
	if r.GossipEstimateMax != 0.9 || r.GossipEstimateFinal != 0.4 {
		t.Errorf("estimate max=%g final=%g, want 0.9 and 0.4", r.GossipEstimateMax, r.GossipEstimateFinal)
	}
	if r.GossipUses != 2 {
		t.Errorf("uses %d, want 2", r.GossipUses)
	}
	if r.GossipStalenessAvg != 300*time.Millisecond || r.GossipStalenessMax != 500*time.Millisecond {
		t.Errorf("staleness avg=%v max=%v, want 300ms and 500ms",
			r.GossipStalenessAvg, r.GossipStalenessMax)
	}
}
