// Package metrics collects and reports the study's performance
// metrics (§4.5): per-failure-type percentages, average total
// transaction latency over failed and successful transactions,
// committed transaction throughput, and latency percentiles. Reports
// can also be reproduced by parsing the blockchain after a run, which
// is how the paper gathers them.
package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"time"

	"repro/internal/ledger"
	"repro/internal/sim"
)

// Latency histogram geometry: durations are binned into 16 linear
// sub-buckets per power of two (an HDR-histogram layout), so any
// recorded latency is reconstructed within 1/16 = 6.25% of its true
// value from a fixed 960-counter array. This replaces the old
// materialized per-transaction latency slice: collector memory stays
// flat no matter how many transactions (or simulated clients) a run
// produces, which is what makes million-client sweeps affordable.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits
	histBuckets  = (64 - histSubBits) * histSubCount
)

// latBucket maps a duration to its histogram bucket. Values below
// histSubCount nanoseconds get exact unit buckets; larger values share
// a bucket with at most 6.25% of relative width.
func latBucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	v := uint64(d)
	if v < histSubCount {
		return int(v)
	}
	exp := uint(bits.Len64(v)) - 1
	sub := (v >> (exp - histSubBits)) & (histSubCount - 1)
	return (int(exp)-histSubBits+1)*histSubCount + int(sub)
}

// bucketUpper returns the largest duration that maps to bucket i, the
// value percentile estimation reports for the bucket.
func bucketUpper(i int) time.Duration {
	row := i >> histSubBits
	sub := uint64(i & (histSubCount - 1))
	if row == 0 {
		return time.Duration(sub)
	}
	exp := uint(row + histSubBits - 1)
	low := uint64(1)<<exp | sub<<(exp-histSubBits)
	return time.Duration(low + 1<<(exp-histSubBits) - 1)
}

// Collector accumulates per-transaction outcomes during a run. All
// latency state is streaming (count/sum/max plus the fixed-size
// histogram above); nothing grows with transaction count.
type Collector struct {
	counts      map[ledger.ValidationCode]int
	latencySum  time.Duration
	latCount    int64
	latMax      time.Duration
	latHist     []int64
	committed   int // transactions appended to the chain
	servedReads int // read-only txs answered without ordering
	blocks      int
	firstEvent  sim.Time
	lastEvent   sim.Time
	started     bool

	// Effective (client-side) metrics, fed by the retry subsystem: a
	// "job" is one logical transaction tracked across resubmissions.
	jobs          int                                   // resolved logical transactions
	jobValid      int                                   // jobs that eventually committed (or were served)
	jobGaveUp     int                                   // jobs abandoned after exhausting the policy
	jobAttempts   int                                   // total submissions across resolved jobs
	jobLatencySum time.Duration                         // first submission -> final resolution
	firstTryValid int                                   // jobs valid on their first submission
	attempts      map[int]map[ledger.ValidationCode]int // outcome of each attempt number

	// Retry-budget accounting (Config.RetryBudget).
	budgetExhausted int // retries dropped on an empty bucket
	deferred        int // retries delayed waiting for a token
	deferDepth      int // retries currently waiting
	maxDeferDepth   int // peak of deferDepth over the run

	// Adaptive-backoff trajectory (AdaptivePolicy): one sample per
	// observed outcome, across all clients.
	backoffSamples int
	backoffSum     time.Duration
	backoffMax     time.Duration
	backoffLast    time.Duration

	// Orderer-backpressure accounting (Config.Backpressure): the
	// congestion-hint trajectory sampled at every block cut, and the
	// pacing delay clients added to submissions from the shared signal.
	hintSamples int
	hintSum     float64
	hintMax     float64
	hintLast    float64
	pacedCount  int
	pacedTime   time.Duration
	pacedMax    time.Duration

	// Gossip accounting (Config.Gossip): message/merge counters, the
	// estimate trajectory sampled once per client round, and the
	// staleness of the gossip estimate at each point of use.
	gossipMsgs     int
	gossipMerges   int
	gossipSamples  int
	gossipSum      float64
	gossipMax      float64
	gossipLast     float64
	gossipUses     int
	gossipStaleSum time.Duration
	gossipStaleMax time.Duration

	// Split-signal accounting (Config.SplitSignal): the two-component
	// estimate trajectory sampled once per gossip round, conflict and
	// congestion components tracked separately.
	splitSamples int
	conflictSum  float64
	conflictMax  float64
	conflictLast float64
	congestSum   float64
	congestMax   float64
	congestLast  float64

	// Fault-injection accounting (Config.Faults): opened fault
	// windows, node crashes and their scheduled downtime, client-side
	// deadline expiries, orphaned transactions (committed after their
	// client timed out), and peer catch-up latency after restarts.
	faultWindows    int
	crashes         int
	downtime        time.Duration
	endorseTimeouts int
	submitTimeouts  int
	orphans         int
	recoveries      int
	recoverySum     time.Duration
	recoveryMax     time.Duration
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		counts:   map[ledger.ValidationCode]int{},
		attempts: map[int]map[ledger.ValidationCode]int{},
		latHist:  make([]int64, histBuckets),
	}
}

func (c *Collector) touch(t sim.Time) {
	if !c.started || t < c.firstEvent {
		c.firstEvent = t
		c.started = true
	}
	if t > c.lastEvent {
		c.lastEvent = t
	}
}

// RecordTx records a transaction that reached the chain with the given
// validation code and end-to-end latency.
func (c *Collector) RecordTx(code ledger.ValidationCode, submit, done sim.Time) {
	c.counts[code]++
	c.committed++
	c.record(submit, done)
}

// RecordAbort records a transaction aborted in the ordering phase
// (Fabric++ / FabricSharp early aborts): it never reaches the chain
// but still counts as a failure.
func (c *Collector) RecordAbort(submit, done sim.Time) {
	c.counts[ledger.AbortedInOrdering]++
	c.record(submit, done)
}

func (c *Collector) record(submit, done sim.Time) {
	lat := time.Duration(done - submit)
	c.latencySum += lat
	c.latCount++
	if lat > c.latMax {
		c.latMax = lat
	}
	c.latHist[latBucket(lat)]++
	c.touch(submit)
	c.touch(done)
}

// percentile estimates the pct-th latency percentile from the
// histogram: the upper bound of the bucket holding the rank the old
// sorted-slice computation would have indexed, capped at the exact
// observed maximum. The estimate is within the bucket width (6.25%)
// above the true order statistic.
func (c *Collector) percentile(pct int64) time.Duration {
	if c.latCount == 0 {
		return 0
	}
	target := c.latCount * pct / 100
	if target >= c.latCount {
		target = c.latCount - 1
	}
	var cum int64
	for i, n := range c.latHist {
		cum += n
		if cum > target {
			if u := bucketUpper(i); u < c.latMax {
				return u
			}
			return c.latMax
		}
	}
	return c.latMax
}

// RecordServedRead records a read-only transaction answered directly
// from the execution phase, never submitted for ordering
// (recommendation #4, §6.1). It counts toward latency but not toward
// chain transactions or failures.
func (c *Collector) RecordServedRead(submit, done sim.Time) {
	c.servedReads++
	c.record(submit, done)
}

// RecordBlock counts one committed block.
func (c *Collector) RecordBlock() { c.blocks++ }

// RecordAttempt records the outcome of one submission attempt of a
// tracked logical transaction. attempt is 1-based (1 = the first
// submission); code is Valid for commits and served reads, a failure
// code otherwise.
func (c *Collector) RecordAttempt(attempt int, code ledger.ValidationCode) {
	byCode := c.attempts[attempt]
	if byCode == nil {
		byCode = map[ledger.ValidationCode]int{}
		c.attempts[attempt] = byCode
	}
	byCode[code]++
	if attempt == 1 && code == ledger.Valid {
		c.firstTryValid++
	}
}

// RecordBudgetExhausted counts one resubmission dropped because the
// client's retry budget was empty (token bucket in drop mode). The
// affected job is additionally recorded as given up via RecordJob.
func (c *Collector) RecordBudgetExhausted() { c.budgetExhausted++ }

// RecordDeferStart counts one resubmission entering the deferred
// state: the retry budget lent a token and the retry waits for the
// refill stream. The paired RecordDeferEnd fires when it resubmits.
func (c *Collector) RecordDeferStart() {
	c.deferred++
	c.deferDepth++
	if c.deferDepth > c.maxDeferDepth {
		c.maxDeferDepth = c.deferDepth
	}
}

// RecordDeferEnd marks one deferred resubmission leaving the queue.
func (c *Collector) RecordDeferEnd() {
	if c.deferDepth > 0 {
		c.deferDepth--
	}
}

// RecordBackoffSample records the current backoff level of an
// adaptive retry controller after it processed an outcome. The report
// summarizes the sample stream as the AIMD trajectory.
func (c *Collector) RecordBackoffSample(d time.Duration) {
	c.backoffSamples++
	c.backoffSum += d
	if d > c.backoffMax {
		c.backoffMax = d
	}
	c.backoffLast = d
}

// RecordHintSample records the ordering service's smoothed congestion
// hint at one block cut. The report summarizes the sample stream as
// the backpressure-hint trajectory.
func (c *Collector) RecordHintSample(h float64) {
	c.hintSamples++
	c.hintSum += h
	if h > c.hintMax {
		c.hintMax = h
	}
	c.hintLast = h
}

// RecordPaced counts one submission (a resubmission or a new
// closed-loop job) the backpressure pacer delayed, accumulating the
// extra delay it added on top of policy backoff and think time.
func (c *Collector) RecordPaced(d time.Duration) {
	c.pacedCount++
	c.pacedTime += d
	if d > c.pacedMax {
		c.pacedMax = d
	}
}

// RecordGossipMessage counts one gossip message handed to the network
// (one per sampled peer per round).
func (c *Collector) RecordGossipMessage() { c.gossipMsgs++ }

// RecordGossipMerge counts one received gossip estimate whose decayed
// value beat the receiver's remote view and was adopted.
func (c *Collector) RecordGossipMerge() { c.gossipMerges++ }

// RecordGossipSample records one client's congestion estimate at the
// start of one of its gossip rounds. The report summarizes the sample
// stream as the gossip-estimate trajectory.
func (c *Collector) RecordGossipSample(e float64) {
	c.gossipSamples++
	c.gossipSum += e
	if e > c.gossipMax {
		c.gossipMax = e
	}
	c.gossipLast = e
}

// RecordSplitSample records one client's two-component signal
// estimate at the start of one of its gossip rounds (split-signal
// mode). The report summarizes the streams as the conflict and
// congestion estimate trajectories.
func (c *Collector) RecordSplitSample(conflict, congestion float64) {
	c.splitSamples++
	c.conflictSum += conflict
	if conflict > c.conflictMax {
		c.conflictMax = conflict
	}
	c.conflictLast = conflict
	c.congestSum += congestion
	if congestion > c.congestMax {
		c.congestMax = congestion
	}
	c.congestLast = congestion
}

// RecordGossipUse records one consultation of a client's gossip
// estimate (for pacing or a hint-driven backoff) together with the
// age of the remote information behind it — zero when the client's
// own fresh window dominated the estimate.
func (c *Collector) RecordGossipUse(staleness time.Duration) {
	c.gossipUses++
	c.gossipStaleSum += staleness
	if staleness > c.gossipStaleMax {
		c.gossipStaleMax = staleness
	}
}

// RecordFaultWindow counts one fault window opening (any kind).
func (c *Collector) RecordFaultWindow() { c.faultWindows++ }

// RecordNodeDown counts one node crash with its scheduled downtime
// (the window length — recorded at crash onset, since the schedule
// fixes the restart time).
func (c *Collector) RecordNodeDown(d time.Duration) {
	c.crashes++
	c.downtime += d
}

// RecordEndorseTimeout counts one client endorsement deadline expiry.
func (c *Collector) RecordEndorseTimeout() { c.endorseTimeouts++ }

// RecordSubmitTimeout counts one client submission deadline expiry.
func (c *Collector) RecordSubmitTimeout() { c.submitTimeouts++ }

// RecordOrphan counts one orphaned transaction: it committed as valid
// after its submitting client had already timed out and moved on.
func (c *Collector) RecordOrphan() { c.orphans++ }

// RecordRecovery records one peer finishing its post-restart ledger
// replay, d after the restart.
func (c *Collector) RecordRecovery(d time.Duration) {
	c.recoveries++
	c.recoverySum += d
	if d > c.recoveryMax {
		c.recoveryMax = d
	}
}

// RecordJob records the final resolution of a tracked logical
// transaction: after `attempts` submissions it either committed
// (success) or was abandoned by the retry policy. firstSubmit/done
// bound the end-to-end latency including every resubmission.
func (c *Collector) RecordJob(attempts int, success bool, firstSubmit, done sim.Time) {
	c.jobs++
	c.jobAttempts += attempts
	if success {
		c.jobValid++
	} else {
		c.jobGaveUp++
	}
	c.jobLatencySum += time.Duration(done - firstSubmit)
	c.touch(firstSubmit)
	c.touch(done)
}

// Report summarizes a run.
type Report struct {
	Total     int // all finished transactions (committed + aborted)
	Committed int // appended to the chain (valid + failed-in-validation)
	Valid     int
	Counts    map[ledger.ValidationCode]int

	// Percentages over Total, as the paper plots them.
	FailurePct     float64 // all failures
	EndorsementPct float64
	MVCCPct        float64 // inter + intra
	IntraBlockPct  float64
	InterBlockPct  float64
	PhantomPct     float64
	AbortedPct     float64

	// ServedReads counts read-only transactions answered directly
	// from endorsement (never ordered), when the client is configured
	// per recommendation #4.
	ServedReads int

	// AvgLatency and MaxLatency are exact (streaming sum/max); the
	// percentiles are histogram estimates within 6.25% above the true
	// order statistic (see the histogram geometry at the top of the
	// package).
	AvgLatency time.Duration
	MaxLatency time.Duration
	P50Latency time.Duration
	P95Latency time.Duration

	// Throughput is committed transactions per second over the run
	// ("committed transaction throughput", §4.5).
	Throughput float64
	Duration   time.Duration
	Blocks     int

	// Effective client-side metrics (the retry subsystem). A "job" is
	// one logical transaction tracked across resubmissions. With
	// fire-and-forget clients (no retry policy, open loop) these are
	// synthesized from the chain-level counts: every transaction is a
	// single-attempt job.

	// Jobs is the number of resolved logical transactions.
	Jobs int
	// EventualValid counts jobs that eventually committed as valid
	// (including read-only jobs served directly from endorsement).
	EventualValid int
	// GaveUp counts jobs abandoned after exhausting the retry policy.
	GaveUp int
	// Attempts is the total number of submissions across resolved
	// jobs, resubmissions included.
	Attempts int
	// FirstAttemptValid counts jobs that committed on their first
	// submission.
	FirstAttemptValid int
	// Goodput is the first-submission success throughput in tps: the
	// rate of transactions that succeed without any resubmission —
	// work the chain did not have to repeat. Read-only transactions
	// served directly from endorsement count as first-attempt
	// successes, so with SkipReadOnlySubmission enabled Goodput can
	// exceed the committed-transaction Throughput.
	Goodput float64
	// RetryAmplification is Attempts / Jobs: how many submissions the
	// network processed per logical transaction (1.0 = no retries).
	RetryAmplification float64
	// AvgEndToEnd is the mean latency from a job's first submission
	// to its final resolution, resubmission backoffs included.
	AvgEndToEnd time.Duration
	// AttemptBreakdown maps each attempt number (1-based) to its
	// outcome counts: how first submissions fail vs how retries fare.
	// Empty when no tracking was active. Unlike Attempts (which spans
	// resolved jobs only), the breakdown records every attempt whose
	// outcome was observed — including attempts of jobs whose next
	// resubmission was still pending when the run ended — so its
	// totals can slightly exceed Attempts.
	AttemptBreakdown map[int]map[ledger.ValidationCode]int

	// BudgetExhausted counts resubmissions dropped because the
	// client's retry budget (token bucket, drop mode) was empty; each
	// such drop also abandons its job (counted in GaveUp).
	BudgetExhausted int
	// DeferredRetries counts resubmissions that had to wait for a
	// budget token beyond their policy backoff (token bucket, defer
	// mode).
	DeferredRetries int
	// MaxDeferredDepth is the peak number of resubmissions
	// simultaneously parked waiting for budget tokens.
	MaxDeferredDepth int

	// Adaptive-backoff trajectory summary (AdaptivePolicy runs only):
	// the mean, peak and final backoff level across every adjustment
	// made by every client's AIMD controller. Zero otherwise.
	AdaptiveBackoffAvg   time.Duration
	AdaptiveBackoffMax   time.Duration
	AdaptiveBackoffFinal time.Duration

	// Orderer-backpressure summary (Config.Backpressure runs only):
	// the congestion-hint trajectory over all block cuts — mean, peak
	// and final smoothed hint in [0,1] — and the client-side pacing it
	// produced. Zero otherwise.
	BackpressureHintAvg   float64
	BackpressureHintMax   float64
	BackpressureHintFinal float64
	// PacedSubmissions counts submissions (resubmissions and new
	// closed-loop jobs) the pacer delayed; TimePaced is the total
	// extra delay the shared signal injected across all clients, and
	// MaxPacedPause the largest single pause — by construction never
	// above the configured Backpressure.MaxPause.
	PacedSubmissions int
	TimePaced        time.Duration
	MaxPacedPause    time.Duration

	// Gossip summary (Config.Gossip runs only; zero otherwise):
	// message and merge counters, the estimate trajectory sampled once
	// per client gossip round (mean/peak/final, in [0,1]), and the
	// staleness of the estimate at its points of use — how old the
	// remote information a client acted on was (zero when its own
	// window dominated).
	GossipMessages      int
	GossipMerges        int
	GossipEstimateAvg   float64
	GossipEstimateMax   float64
	GossipEstimateFinal float64
	GossipUses          int
	GossipStalenessAvg  time.Duration
	GossipStalenessMax  time.Duration

	// Split-signal summary (Config.SplitSignal runs only; zero
	// otherwise): the conflict and congestion estimate trajectories
	// sampled once per client gossip round, each in [0,1]. On a
	// contention-bound workload with an idle orderer the conflict
	// trajectory should be alarmed and the congestion trajectory ≈ 0 —
	// the mis-pacing signature the split exists to remove.
	ConflictEstAvg   float64
	ConflictEstMax   float64
	ConflictEstFinal float64
	CongestEstAvg    float64
	CongestEstMax    float64
	CongestEstFinal  float64

	// Fault-injection summary (Config.Faults runs only; zero
	// otherwise). FaultWindows counts opened windows; NodeCrashes and
	// NodeDowntime tally crash events and their scheduled downtime;
	// EndorseTimeouts/SubmitTimeouts count client deadline expiries
	// (each also a CLIENT_TIMEOUT attempt on the retry path);
	// OrphanedTxs counts transactions that committed as valid after
	// their client timed out — duplicate-effect risk at the
	// application layer; Recoveries and RecoveryAvg/RecoveryMax
	// summarize peer post-restart ledger replays.
	FaultWindows    int
	NodeCrashes     int
	NodeDowntime    time.Duration
	EndorseTimeouts int
	SubmitTimeouts  int
	OrphanedTxs     int
	Recoveries      int
	RecoveryAvg     time.Duration
	RecoveryMax     time.Duration
}

// Report computes the summary.
func (c *Collector) Report() Report {
	r := Report{
		Committed:   c.committed,
		Counts:      map[ledger.ValidationCode]int{},
		Blocks:      c.blocks,
		ServedReads: c.servedReads,
	}
	for code, n := range c.counts {
		r.Counts[code] = n
		r.Total += n
	}
	r.Valid = r.Counts[ledger.Valid]
	if r.Total > 0 {
		pct := func(n int) float64 { return 100 * float64(n) / float64(r.Total) }
		r.FailurePct = pct(r.Total - r.Valid)
		r.EndorsementPct = pct(r.Counts[ledger.EndorsementPolicyFailure])
		r.IntraBlockPct = pct(r.Counts[ledger.MVCCConflictIntraBlock])
		r.InterBlockPct = pct(r.Counts[ledger.MVCCConflictInterBlock])
		r.MVCCPct = r.IntraBlockPct + r.InterBlockPct
		r.PhantomPct = pct(r.Counts[ledger.PhantomReadConflict])
		r.AbortedPct = pct(r.Counts[ledger.AbortedInOrdering])
	}
	if c.latCount > 0 {
		r.AvgLatency = c.latencySum / time.Duration(c.latCount)
		r.MaxLatency = c.latMax
		r.P50Latency = c.percentile(50)
		r.P95Latency = c.percentile(95)
	}
	r.Duration = time.Duration(c.lastEvent - c.firstEvent)
	if r.Duration > 0 {
		r.Throughput = float64(c.committed) / r.Duration.Seconds()
	}
	if c.jobs > 0 {
		r.Jobs = c.jobs
		r.EventualValid = c.jobValid
		r.GaveUp = c.jobGaveUp
		r.Attempts = c.jobAttempts
		r.FirstAttemptValid = c.firstTryValid
		r.RetryAmplification = float64(c.jobAttempts) / float64(c.jobs)
		r.AvgEndToEnd = c.jobLatencySum / time.Duration(c.jobs)
		r.AttemptBreakdown = map[int]map[ledger.ValidationCode]int{}
		for attempt, byCode := range c.attempts {
			cp := make(map[ledger.ValidationCode]int, len(byCode))
			for code, n := range byCode {
				cp[code] = n
			}
			r.AttemptBreakdown[attempt] = cp
		}
	} else {
		// Fire-and-forget clients: every finished transaction is a
		// single-attempt job, so goodput degenerates to valid
		// throughput and amplification to 1. Served reads count as
		// first-attempt successes, exactly as the tracked path
		// resolves them.
		r.Jobs = r.Total + r.ServedReads
		r.EventualValid = r.Valid + r.ServedReads
		r.Attempts = r.Total + r.ServedReads
		r.FirstAttemptValid = r.Valid + r.ServedReads
		r.AvgEndToEnd = r.AvgLatency
		if r.Jobs > 0 {
			r.RetryAmplification = 1
		}
	}
	if r.Duration > 0 {
		r.Goodput = float64(r.FirstAttemptValid) / r.Duration.Seconds()
	}
	r.BudgetExhausted = c.budgetExhausted
	r.DeferredRetries = c.deferred
	r.MaxDeferredDepth = c.maxDeferDepth
	if c.backoffSamples > 0 {
		r.AdaptiveBackoffAvg = c.backoffSum / time.Duration(c.backoffSamples)
		r.AdaptiveBackoffMax = c.backoffMax
		r.AdaptiveBackoffFinal = c.backoffLast
	}
	if c.hintSamples > 0 {
		r.BackpressureHintAvg = c.hintSum / float64(c.hintSamples)
		r.BackpressureHintMax = c.hintMax
		r.BackpressureHintFinal = c.hintLast
	}
	r.PacedSubmissions = c.pacedCount
	r.TimePaced = c.pacedTime
	r.MaxPacedPause = c.pacedMax
	r.GossipMessages = c.gossipMsgs
	r.GossipMerges = c.gossipMerges
	if c.gossipSamples > 0 {
		r.GossipEstimateAvg = c.gossipSum / float64(c.gossipSamples)
		r.GossipEstimateMax = c.gossipMax
		r.GossipEstimateFinal = c.gossipLast
	}
	if c.splitSamples > 0 {
		r.ConflictEstAvg = c.conflictSum / float64(c.splitSamples)
		r.ConflictEstMax = c.conflictMax
		r.ConflictEstFinal = c.conflictLast
		r.CongestEstAvg = c.congestSum / float64(c.splitSamples)
		r.CongestEstMax = c.congestMax
		r.CongestEstFinal = c.congestLast
	}
	r.GossipUses = c.gossipUses
	if c.gossipUses > 0 {
		r.GossipStalenessAvg = c.gossipStaleSum / time.Duration(c.gossipUses)
		r.GossipStalenessMax = c.gossipStaleMax
	}
	r.FaultWindows = c.faultWindows
	r.NodeCrashes = c.crashes
	r.NodeDowntime = c.downtime
	r.EndorseTimeouts = c.endorseTimeouts
	r.SubmitTimeouts = c.submitTimeouts
	r.OrphanedTxs = c.orphans
	r.Recoveries = c.recoveries
	if c.recoveries > 0 {
		r.RecoveryAvg = c.recoverySum / time.Duration(c.recoveries)
		r.RecoveryMax = c.recoveryMax
	}
	return r
}

// String renders a compact single-line summary.
func (r Report) String() string {
	return fmt.Sprintf(
		"total=%d valid=%d fail=%.2f%% (endorse=%.2f%% intra=%.2f%% inter=%.2f%% phantom=%.2f%% aborted=%.2f%%) lat=%v tput=%.1ftps goodput=%.1ftps amp=%.2f",
		r.Total, r.Valid, r.FailurePct, r.EndorsementPct, r.IntraBlockPct,
		r.InterBlockPct, r.PhantomPct, r.AbortedPct,
		r.AvgLatency.Round(time.Millisecond), r.Throughput,
		r.Goodput, r.RetryAmplification)
}

// ParseChain rebuilds the failure counts by walking the blockchain,
// exactly like the paper's post-run metrics collection ("performance
// metrics are collected by parsing the blockchain after each
// experiment", §4.5). Latencies are not recoverable from the chain;
// only counts and block statistics are filled in.
func ParseChain(chain *ledger.Chain) Report {
	r := Report{Counts: map[ledger.ValidationCode]int{}}
	for _, b := range chain.Blocks() {
		if len(b.Transactions) == 0 {
			continue // genesis
		}
		r.Blocks++
		for _, code := range b.ValidationCodes {
			r.Counts[code]++
			r.Total++
			r.Committed++
		}
	}
	r.Valid = r.Counts[ledger.Valid]
	if r.Total > 0 {
		pct := func(n int) float64 { return 100 * float64(n) / float64(r.Total) }
		r.FailurePct = pct(r.Total - r.Valid)
		r.EndorsementPct = pct(r.Counts[ledger.EndorsementPolicyFailure])
		r.IntraBlockPct = pct(r.Counts[ledger.MVCCConflictIntraBlock])
		r.InterBlockPct = pct(r.Counts[ledger.MVCCConflictInterBlock])
		r.MVCCPct = r.IntraBlockPct + r.InterBlockPct
		r.PhantomPct = pct(r.Counts[ledger.PhantomReadConflict])
	}
	return r
}

// Table is a small fixed-width text table builder used by the CLI and
// the benchmark harness to print paper-style result rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends one row; values are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
