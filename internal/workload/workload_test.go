package workload

import (
	"math/rand"
	"testing"
)

func inv(name string) Generator {
	return Func(func(*rand.Rand) Invocation {
		return Invocation{Function: name}
	})
}

func TestFuncAdapter(t *testing.T) {
	g := inv("f")
	if got := g.Next(rand.New(rand.NewSource(1))); got.Function != "f" {
		t.Fatalf("Next = %+v", got)
	}
}

func TestWeightedProportions(t *testing.T) {
	w := NewWeighted(
		[]Generator{inv("a"), inv("b"), inv("c")},
		[]float64{70, 20, 10},
	)
	rng := rand.New(rand.NewSource(2))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[w.Next(rng).Function]++
	}
	fa := float64(counts["a"]) / n
	fb := float64(counts["b"]) / n
	fc := float64(counts["c"]) / n
	if fa < 0.66 || fa > 0.74 || fb < 0.17 || fb > 0.23 || fc < 0.08 || fc > 0.12 {
		t.Errorf("proportions a=%.3f b=%.3f c=%.3f", fa, fb, fc)
	}
}

func TestWeightedZeroWeightNeverPicked(t *testing.T) {
	w := NewWeighted(
		[]Generator{inv("a"), inv("never")},
		[]float64{1, 0},
	)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		if got := w.Next(rng).Function; got == "never" {
			t.Fatal("zero-weight generator selected")
		}
	}
}

func TestWeightedValidation(t *testing.T) {
	cases := []func(){
		func() { NewWeighted(nil, nil) },
		func() { NewWeighted([]Generator{inv("a")}, []float64{1, 2}) },
		func() { NewWeighted([]Generator{inv("a")}, []float64{-1}) },
		func() { NewWeighted([]Generator{inv("a"), inv("b")}, []float64{0, 0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid weighting accepted", i)
				}
			}()
			f()
		}()
	}
}

func TestFunctionInfoFields(t *testing.T) {
	f := FunctionInfo{Name: "x", Reads: 1, Writes: 2, RangeReads: 3, Unchecked: true}
	if f.Name != "x" || f.Reads+f.Writes+f.RangeReads != 6 || !f.Unchecked {
		t.Fatal("FunctionInfo fields broken")
	}
}
