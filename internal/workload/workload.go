// Package workload defines the interface between workload generators
// and the simulated clients: a stream of chaincode invocations.
package workload

import "math/rand"

// FunctionInfo describes one chaincode function's operation profile —
// the rows of the paper's Table 2.
type FunctionInfo struct {
	Name       string
	Reads      int // GetState calls
	Writes     int // PutState/DelState calls
	RangeReads int // GetStateByRange / GetQueryResult calls
	// Unchecked marks range reads for which Fabric performs no
	// phantom detection (rich queries; the "*" rows of Table 2).
	Unchecked bool
}

// Invocation is one transaction proposal: a chaincode function call
// with concrete arguments.
type Invocation struct {
	Chaincode string
	Function  string
	Args      []string
}

// Generator produces the invocation stream of an experiment. Next
// must be deterministic given the rng state.
type Generator interface {
	Next(rng *rand.Rand) Invocation
}

// Func adapts a function to the Generator interface.
type Func func(rng *rand.Rand) Invocation

// Next implements Generator.
func (f Func) Next(rng *rand.Rand) Invocation { return f(rng) }

// Weighted picks among generators with the given relative weights.
// It panics when the slices differ in length, are empty, or the total
// weight is non-positive — all configuration bugs.
type Weighted struct {
	gens    []Generator
	weights []float64
	total   float64
}

// NewWeighted builds a weighted mixture generator.
func NewWeighted(gens []Generator, weights []float64) *Weighted {
	if len(gens) == 0 || len(gens) != len(weights) {
		panic("workload: mismatched generators and weights")
	}
	w := &Weighted{gens: gens, weights: weights}
	for _, x := range weights {
		if x < 0 {
			panic("workload: negative weight")
		}
		w.total += x
	}
	if w.total <= 0 {
		panic("workload: zero total weight")
	}
	return w
}

// Next draws a generator proportionally to its weight and delegates.
func (w *Weighted) Next(rng *rand.Rand) Invocation {
	u := rng.Float64() * w.total
	for i, x := range w.weights {
		u -= x
		if u < 0 {
			return w.gens[i].Next(rng)
		}
	}
	return w.gens[len(w.gens)-1].Next(rng)
}
