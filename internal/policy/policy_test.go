package policy

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func orgs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("Org%d", i)
	}
	return out
}

func set(names ...string) map[string]bool {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestP0RequiresAll(t *testing.T) {
	p := Build(P0, orgs(4))
	if !p.Satisfied(set("Org0", "Org1", "Org2", "Org3")) {
		t.Error("P0 unsatisfied with all orgs")
	}
	if p.Satisfied(set("Org0", "Org1", "Org2")) {
		t.Error("P0 satisfied with a missing org")
	}
	if p.SubPolicies() != 0 {
		t.Errorf("P0 sub-policies = %d, want 0", p.SubPolicies())
	}
}

func TestP1RequiresOrg0PlusOne(t *testing.T) {
	p := Build(P1, orgs(4))
	if !p.Satisfied(set("Org0", "Org3")) {
		t.Error("P1 unsatisfied with Org0+Org3")
	}
	if p.Satisfied(set("Org1", "Org2")) {
		t.Error("P1 satisfied without Org0")
	}
	if p.Satisfied(set("Org0")) {
		t.Error("P1 satisfied with Org0 alone")
	}
	if p.SubPolicies() != 1 {
		t.Errorf("P1 sub-policies = %d, want 1", p.SubPolicies())
	}
}

func TestP2RequiresBothHalves(t *testing.T) {
	p := Build(P2, orgs(8))
	if !p.Satisfied(set("Org1", "Org6")) {
		t.Error("P2 unsatisfied with one org per half")
	}
	if p.Satisfied(set("Org0", "Org3")) {
		t.Error("P2 satisfied with two first-half orgs")
	}
	if p.Satisfied(set("Org5", "Org7")) {
		t.Error("P2 satisfied with two second-half orgs")
	}
	if p.SubPolicies() != 2 {
		t.Errorf("P2 sub-policies = %d, want 2", p.SubPolicies())
	}
}

func TestP2TwoOrgs(t *testing.T) {
	p := Build(P2, orgs(2))
	if !p.Satisfied(set("Org0", "Org1")) {
		t.Error("P2 with 2 orgs unsatisfied by both")
	}
	if p.Satisfied(set("Org0")) || p.Satisfied(set("Org1")) {
		t.Error("P2 with 2 orgs satisfied by one org")
	}
}

func TestP3Quorum(t *testing.T) {
	p := Build(P3, orgs(8)) // needs 5 of 8
	if !p.Satisfied(set("Org0", "Org1", "Org2", "Org3", "Org4")) {
		t.Error("P3 unsatisfied with quorum")
	}
	if p.Satisfied(set("Org0", "Org1", "Org2", "Org3")) {
		t.Error("P3 satisfied below quorum")
	}
	if p.SubPolicies() != 0 {
		t.Errorf("P3 sub-policies = %d, want 0", p.SubPolicies())
	}
}

func TestBuildPanicsOnTooFewOrgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1 org")
		}
	}()
	Build(P0, orgs(1))
}

func TestRequiredEndorsersSatisfy(t *testing.T) {
	for _, name := range AllNames() {
		for _, n := range []int{2, 4, 6, 8, 10} {
			p := Build(name, orgs(n))
			for rot := 0; rot < n; rot++ {
				req := p.RequiredEndorsers(rot)
				if !p.Satisfied(set(req...)) {
					t.Errorf("%v n=%d rot=%d: endorser set %v does not satisfy %v",
						name, n, rot, req, p)
				}
			}
		}
	}
}

func TestRequiredEndorsersSizes(t *testing.T) {
	n := 8
	if got := len(Build(P0, orgs(n)).RequiredEndorsers(0)); got != n {
		t.Errorf("P0 endorsers = %d, want %d", got, n)
	}
	if got := len(Build(P1, orgs(n)).RequiredEndorsers(0)); got != 2 {
		t.Errorf("P1 endorsers = %d, want 2", got)
	}
	if got := len(Build(P2, orgs(n)).RequiredEndorsers(0)); got != 2 {
		t.Errorf("P2 endorsers = %d, want 2", got)
	}
	if got := len(Build(P3, orgs(n)).RequiredEndorsers(0)); got != n/2+1 {
		t.Errorf("P3 endorsers = %d, want %d", got, n/2+1)
	}
}

func TestRotationSpreadsChoice(t *testing.T) {
	p := Build(P1, orgs(4))
	seen := map[string]bool{}
	for rot := 0; rot < 8; rot++ {
		for _, o := range p.RequiredEndorsers(rot) {
			seen[o] = true
		}
	}
	if len(seen) < 3 {
		t.Errorf("rotation only ever picked %v", seen)
	}
}

func TestStringRendering(t *testing.T) {
	p := Build(P1, orgs(3))
	want := "2-of[signed-by:Org0, 1-of[signed-by:Org1, signed-by:Org2]]"
	if p.String() != want {
		t.Errorf("String = %q, want %q", p.String(), want)
	}
	for i, n := range AllNames() {
		if n.String() != fmt.Sprintf("P%d", i) {
			t.Errorf("Name %d String = %q", i, n.String())
		}
	}
}

func TestMaxEndorsements(t *testing.T) {
	if got := Build(P0, orgs(5)).MaxEndorsements(); got != 5 {
		t.Errorf("P0 MaxEndorsements = %d", got)
	}
	if got := Build(P2, orgs(8)).MaxEndorsements(); got != 8 {
		t.Errorf("P2 MaxEndorsements = %d", got)
	}
}

// Property: a superset of a satisfying set still satisfies
// (monotonicity), and the empty set never satisfies.
func TestSatisfactionMonotone(t *testing.T) {
	f := func(nOrgs uint8, which uint8, extra uint8) bool {
		n := int(nOrgs%9) + 2 // 2..10
		os := orgs(n)
		p := Build(AllNames()[which%4], os)
		if p.Satisfied(map[string]bool{}) {
			return false
		}
		base := p.RequiredEndorsers(int(which))
		s := set(base...)
		if !p.Satisfied(s) {
			return false
		}
		s[os[int(extra)%n]] = true // add one more org
		return p.Satisfied(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Error(err)
	}
}
