// Package policy implements Fabric endorsement policies as "n-of"
// trees over organizations (Table 5 of the paper), their evaluation
// during VSCC validation, and the P0–P3 policy builders the study
// sweeps in §5.1.4.
//
// A policy node is either a leaf ("signed-by Org_i") or an "n-of"
// combinator over child nodes. An "n-of" nested inside another "n-of"
// is a sub-policy; the paper shows that the number of sub-policies
// (separate VSCC search spaces) increases validation time and
// endorsement-policy failures.
package policy

import (
	"fmt"
	"sort"
	"strings"
)

// Policy is an endorsement policy tree node.
type Policy struct {
	// N is the number of satisfied children required. For a leaf it
	// is 0 and Org is set instead.
	N        int
	Children []*Policy
	Org      string // leaf: the organization whose signature is required
}

// SignedBy returns a leaf requiring a signature from org.
func SignedBy(org string) *Policy { return &Policy{Org: org} }

// NOf returns an "n-of" combinator over children.
func NOf(n int, children ...*Policy) *Policy {
	return &Policy{N: n, Children: children}
}

// IsLeaf reports whether the node is a signed-by leaf.
func (p *Policy) IsLeaf() bool { return len(p.Children) == 0 && p.Org != "" }

// Satisfied reports whether the set of endorsing organizations
// satisfies the policy. Duplicate endorsements from one org count
// once, as in Fabric.
func (p *Policy) Satisfied(orgs map[string]bool) bool {
	if p.IsLeaf() {
		return orgs[p.Org]
	}
	have := 0
	for _, c := range p.Children {
		if c.Satisfied(orgs) {
			have++
			if have >= p.N {
				return true
			}
		}
	}
	return have >= p.N
}

// SubPolicies counts the "n-of" clauses nested inside another "n-of"
// (Table 5's definition). A flat policy like P0 has zero.
func (p *Policy) SubPolicies() int {
	n := 0
	var walk func(node *Policy, depth int)
	walk = func(node *Policy, depth int) {
		if node.IsLeaf() {
			return
		}
		if depth > 0 {
			n++
		}
		for _, c := range node.Children {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return n
}

// RequiredEndorsers returns a minimal set of organizations that
// satisfies the policy, preferring the orgs listed earlier (which
// matches how a client SDK picks endorsers). rotation shifts the
// choice among equally valid options so that load spreads across
// orgs, like a round-robin client would.
func (p *Policy) RequiredEndorsers(rotation int) []string {
	set := p.minimalSet(rotation)
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

func (p *Policy) minimalSet(rotation int) map[string]bool {
	if p.IsLeaf() {
		return map[string]bool{p.Org: true}
	}
	// Gather each child's minimal set, pick the N cheapest starting
	// at the rotation offset.
	type choice struct {
		set  map[string]bool
		size int
	}
	choices := make([]choice, len(p.Children))
	for i, c := range p.Children {
		s := c.minimalSet(rotation)
		choices[i] = choice{set: s, size: len(s)}
	}
	need := p.N
	if need > len(choices) {
		need = len(choices)
	}
	picked := map[string]bool{}
	// Stable selection: iterate children starting at rotation offset,
	// preferring smaller sets among the scanned window.
	order := make([]int, len(choices))
	for i := range order {
		order[i] = (i + rotation) % len(choices)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return choices[order[a]].size < choices[order[b]].size
	})
	for _, idx := range order[:need] {
		for o := range choices[idx].set {
			picked[o] = true
		}
	}
	return picked
}

// MaxEndorsements is the number of leaves, an upper bound on
// signatures a client could collect.
func (p *Policy) MaxEndorsements() int {
	if p.IsLeaf() {
		return 1
	}
	n := 0
	for _, c := range p.Children {
		n += c.MaxEndorsements()
	}
	return n
}

// String renders the policy in the paper's notation.
func (p *Policy) String() string {
	if p.IsLeaf() {
		return fmt.Sprintf("signed-by:%s", p.Org)
	}
	parts := make([]string, len(p.Children))
	for i, c := range p.Children {
		parts[i] = c.String()
	}
	return fmt.Sprintf("%d-of[%s]", p.N, strings.Join(parts, ", "))
}

// Name identifies one of the paper's four policies.
type Name int

const (
	// P0 requires all N organizations to sign.
	P0 Name = iota
	// P1 requires Org0 plus any one of the others.
	P1
	// P2 requires one org from the first half and one from the
	// second half (two sub-policies).
	P2
	// P3 requires a quorum of N/2+1 organizations.
	P3
)

// String names the policy like the paper.
func (n Name) String() string { return fmt.Sprintf("P%d", int(n)) }

// Build constructs the named policy over orgs (Table 5). It panics if
// fewer than two organizations are supplied, which matches the
// paper's experimental range (2–10 orgs).
func Build(name Name, orgs []string) *Policy {
	if len(orgs) < 2 {
		panic(fmt.Sprintf("policy: need at least 2 orgs, got %d", len(orgs)))
	}
	leaves := func(names []string) []*Policy {
		out := make([]*Policy, len(names))
		for i, o := range names {
			out[i] = SignedBy(o)
		}
		return out
	}
	switch name {
	case P0:
		return NOf(len(orgs), leaves(orgs)...)
	case P1:
		rest := NOf(1, leaves(orgs[1:])...)
		return NOf(2, append([]*Policy{SignedBy(orgs[0])}, rest)...)
	case P2:
		// One signature from the first half of the orgs and one from
		// the second half; splitting at N/2 keeps both halves
		// non-empty for every N >= 2.
		half := len(orgs) / 2
		first := NOf(1, leaves(orgs[:half])...)
		second := NOf(1, leaves(orgs[half:])...)
		return NOf(2, first, second)
	case P3:
		return NOf(len(orgs)/2+1, leaves(orgs)...)
	default:
		panic(fmt.Sprintf("policy: unknown policy name %d", int(name)))
	}
}

// AllNames lists P0..P3 for sweeps.
func AllNames() []Name { return []Name{P0, P1, P2, P3} }
