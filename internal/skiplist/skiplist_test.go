package skiplist

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	l := New(1)
	if _, ok := l.Get("a"); ok {
		t.Fatal("empty list returned a value")
	}
	l.Put("a", []byte("1"))
	l.Put("b", []byte("2"))
	l.Put("a", []byte("3")) // overwrite
	if v, ok := l.Get("a"); !ok || string(v) != "3" {
		t.Fatalf("Get(a) = %q,%v want 3,true", v, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if !l.Delete("a") {
		t.Fatal("Delete(a) = false")
	}
	if l.Delete("a") {
		t.Fatal("second Delete(a) = true")
	}
	if l.Has("a") {
		t.Fatal("deleted key still present")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestIterAscending(t *testing.T) {
	l := New(1)
	keys := []string{"delta", "alpha", "charlie", "bravo", "echo"}
	for i, k := range keys {
		l.Put(k, []byte{byte(i)})
	}
	got := l.Keys()
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}

func TestRangeHalfOpen(t *testing.T) {
	l := New(1)
	for i := 0; i < 10; i++ {
		l.Put(fmt.Sprintf("k%02d", i), nil)
	}
	var got []string
	for it := l.Range("k03", "k07"); it.Valid(); it.Next() {
		got = append(got, it.Key())
	}
	want := []string{"k03", "k04", "k05", "k06"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
}

func TestRangeOpenEnds(t *testing.T) {
	l := New(1)
	for i := 0; i < 5; i++ {
		l.Put(fmt.Sprintf("k%d", i), nil)
	}
	count := 0
	for it := l.Range("", ""); it.Valid(); it.Next() {
		count++
	}
	if count != 5 {
		t.Fatalf("unbounded range saw %d keys, want 5", count)
	}
	count = 0
	for it := l.Range("k3", ""); it.Valid(); it.Next() {
		count++
	}
	if count != 2 {
		t.Fatalf("range from k3 saw %d keys, want 2", count)
	}
	for it := l.Range("zzz", ""); it.Valid(); it.Next() {
		t.Fatal("range beyond last key yielded entries")
	}
}

func TestRangeStartNotPresent(t *testing.T) {
	l := New(1)
	l.Put("b", nil)
	l.Put("d", nil)
	it := l.Range("c", "")
	if !it.Valid() || it.Key() != "d" {
		t.Fatalf("Range(c) starts at %v, want d", it)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	l := New(1)
	l.Put("a", []byte("1"))
	c := l.Clone(2)
	c.Put("b", []byte("2"))
	l.Delete("a")
	if !c.Has("a") || !c.Has("b") {
		t.Fatal("clone lost entries after mutating original")
	}
	if l.Has("b") {
		t.Fatal("original gained entries from clone")
	}
}

// Property: the skip list agrees with a reference map under a random
// sequence of put/delete operations, and iteration is sorted.
func TestAgainstReferenceMap(t *testing.T) {
	type op struct {
		Key    uint8
		Val    uint16
		Delete bool
	}
	f := func(ops []op) bool {
		l := New(99)
		ref := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("key%03d", o.Key)
			if o.Delete {
				delete(ref, k)
				l.Delete(k)
			} else {
				v := fmt.Sprint(o.Val)
				ref[k] = v
				l.Put(k, []byte(v))
			}
		}
		if l.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := l.Get(k)
			if !ok || string(got) != v {
				return false
			}
		}
		keys := l.Keys()
		if !sort.StringsAreSorted(keys) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

// Property: every range scan [a,b) returns exactly the reference keys
// in that interval, in order.
func TestRangeProperty(t *testing.T) {
	f := func(keys []uint8, a, b uint8) bool {
		l := New(3)
		ref := map[string]bool{}
		for _, k := range keys {
			s := fmt.Sprintf("k%03d", k)
			l.Put(s, nil)
			ref[s] = true
		}
		lo, hi := fmt.Sprintf("k%03d", a), fmt.Sprintf("k%03d", b)
		var want []string
		for k := range ref {
			if k >= lo && (hi == "" || k < hi) {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		var got []string
		for it := l.Range(lo, hi); it.Valid(); it.Next() {
			got = append(got, it.Key())
		}
		return fmt.Sprint(got) == fmt.Sprint(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}

func TestLargeVolume(t *testing.T) {
	l := New(4)
	const n = 20000
	for i := 0; i < n; i++ {
		l.Put(fmt.Sprintf("key%06d", i), []byte{byte(i)})
	}
	if l.Len() != n {
		t.Fatalf("Len = %d, want %d", l.Len(), n)
	}
	for i := 0; i < n; i += 997 {
		k := fmt.Sprintf("key%06d", i)
		if !l.Has(k) {
			t.Fatalf("missing %s", k)
		}
	}
	for i := 0; i < n; i += 2 {
		l.Delete(fmt.Sprintf("key%06d", i))
	}
	if l.Len() != n/2 {
		t.Fatalf("Len after deletes = %d, want %d", l.Len(), n/2)
	}
}

func BenchmarkPut(b *testing.B) {
	l := New(1)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%06d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Put(keys[i%1024], nil)
	}
}

func BenchmarkGet(b *testing.B) {
	l := New(1)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%06d", i)
		l.Put(keys[i], nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get(keys[i%1024])
	}
}
