// Package skiplist implements an ordered in-memory key/value map with
// O(log n) expected search, insert and delete, plus forward iterators
// and half-open range scans.
//
// It is the memtable substrate for the simulated LevelDB state
// database: Hyperledger Fabric's default embedded store keeps its
// working set in exactly this kind of sorted structure, and range
// queries (the source of phantom read conflicts in the paper) map to
// iterator scans here.
//
// The list is not safe for concurrent use; in the discrete-event
// simulation every peer owns its replica and all events run on one
// goroutine.
package skiplist

import "math/rand"

const (
	maxHeight = 18
	// pBranch is the probability of promoting a node one level.
	pBranchDenom = 4
)

type node struct {
	key   string
	value []byte
	next  []*node
}

// List is an ordered string→[]byte map. Construct with New.
type List struct {
	head   *node
	height int
	length int
	rng    *rand.Rand
}

// New returns an empty list. The seed fixes tower heights so that runs
// are deterministic.
func New(seed int64) *List {
	return &List{
		head:   &node{next: make([]*node, maxHeight)},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Len reports the number of keys stored.
func (l *List) Len() int { return l.length }

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Intn(pBranchDenom) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with node.key >= key, and
// fills prev with the rightmost node before that position on every
// level (used for insert/delete splicing).
func (l *List) findGreaterOrEqual(key string, prev []*node) *node {
	x := l.head
	for level := l.height - 1; level >= 0; level-- {
		for x.next[level] != nil && x.next[level].key < key {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Get returns the value stored under key. The boolean reports whether
// the key was present. The returned slice must not be modified.
func (l *List) Get(key string) ([]byte, bool) {
	n := l.findGreaterOrEqual(key, nil)
	if n != nil && n.key == key {
		return n.value, true
	}
	return nil, false
}

// Has reports whether key is present.
func (l *List) Has(key string) bool {
	_, ok := l.Get(key)
	return ok
}

// Put stores value under key, replacing any previous value.
func (l *List) Put(key string, value []byte) {
	prev := make([]*node, maxHeight)
	n := l.findGreaterOrEqual(key, prev)
	if n != nil && n.key == key {
		n.value = value
		return
	}
	h := l.randomHeight()
	if h > l.height {
		for level := l.height; level < h; level++ {
			prev[level] = l.head
		}
		l.height = h
	}
	nn := &node{key: key, value: value, next: make([]*node, h)}
	for level := 0; level < h; level++ {
		nn.next[level] = prev[level].next[level]
		prev[level].next[level] = nn
	}
	l.length++
}

// Delete removes key and reports whether it was present.
func (l *List) Delete(key string) bool {
	prev := make([]*node, maxHeight)
	n := l.findGreaterOrEqual(key, prev)
	if n == nil || n.key != key {
		return false
	}
	for level := 0; level < len(n.next); level++ {
		if prev[level].next[level] == n {
			prev[level].next[level] = n.next[level]
		}
	}
	for l.height > 1 && l.head.next[l.height-1] == nil {
		l.height--
	}
	l.length--
	return true
}

// Iterator walks keys in ascending order. Use Valid/Next/Key/Value.
type Iterator struct {
	n   *node
	end string // exclusive bound; empty means unbounded
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool {
	if it.n == nil {
		return false
	}
	return it.end == "" || it.n.key < it.end
}

// Next advances to the following entry.
func (it *Iterator) Next() {
	if it.n != nil {
		it.n = it.n.next[0]
	}
}

// Key returns the current key. Only valid while Valid() is true.
func (it *Iterator) Key() string { return it.n.key }

// Value returns the current value. Only valid while Valid() is true.
func (it *Iterator) Value() []byte { return it.n.value }

// Iter returns an iterator over all entries in ascending key order.
func (l *List) Iter() *Iterator {
	return &Iterator{n: l.head.next[0]}
}

// Range returns an iterator over the half-open interval [start, end).
// An empty start begins at the first key; an empty end is unbounded.
// This is the primitive behind Fabric's GetStateByRange.
func (l *List) Range(start, end string) *Iterator {
	var first *node
	if start == "" {
		first = l.head.next[0]
	} else {
		first = l.findGreaterOrEqual(start, nil)
	}
	return &Iterator{n: first, end: end}
}

// Keys returns all keys in ascending order. Intended for tests and
// post-run analysis, not the hot path.
func (l *List) Keys() []string {
	out := make([]string, 0, l.length)
	for it := l.Iter(); it.Valid(); it.Next() {
		out = append(out, it.Key())
	}
	return out
}

// Clone returns a deep copy of the list structure (values are shared,
// which is safe because values are treated as immutable).
func (l *List) Clone(seed int64) *List {
	c := New(seed)
	for it := l.Iter(); it.Valid(); it.Next() {
		c.Put(it.Key(), it.Value())
	}
	return c
}
