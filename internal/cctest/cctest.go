// Package cctest provides helpers for chaincode unit tests: a
// one-shot committer that applies a captured read/write set to a
// state database, and an op-count checker against Table 2 rows.
package cctest

import (
	"fmt"

	"repro/internal/chaincode"
	"repro/internal/ledger"
	"repro/internal/statedb"
	"repro/internal/workload"
)

// Commit applies the stub's write set to db at the given block height,
// as the validation phase would for a valid transaction.
func Commit(db statedb.VersionedDB, stub *chaincode.Stub, block uint64) error {
	batch := &statedb.UpdateBatch{}
	for i, w := range stub.RWSet().Writes {
		h := ledger.Height{BlockNum: block, TxNum: uint64(i)}
		if w.IsDelete {
			batch.Delete(w.Key, h)
		} else {
			batch.Put(w.Key, w.Value, h)
		}
	}
	return db.ApplyUpdates(batch, block)
}

// InitState builds a fresh database seeded by the chaincode's Init.
func InitState(cc chaincode.Chaincode, kind statedb.Kind) (statedb.VersionedDB, error) {
	db := statedb.New(kind, 1)
	stub := chaincode.NewStub(db)
	if err := cc.Init(stub); err != nil {
		return nil, err
	}
	if err := Commit(db, stub, 0); err != nil {
		return nil, err
	}
	return db, nil
}

// Invoke runs one function on a fresh stub and returns the stub.
func Invoke(cc chaincode.Chaincode, db statedb.VersionedDB, fn string, args ...string) (*chaincode.Stub, error) {
	stub := chaincode.NewStub(db)
	if err := cc.Invoke(stub, fn, args); err != nil {
		return nil, err
	}
	return stub, nil
}

// CheckOps verifies that a stub's operation trace matches a Table 2
// row: the declared number of reads, writes and range reads.
func CheckOps(info workload.FunctionInfo, stub *chaincode.Stub) error {
	tr := stub.Trace()
	if tr.Gets != info.Reads {
		return fmt.Errorf("%s: %d reads, table says %d", info.Name, tr.Gets, info.Reads)
	}
	if tr.Puts+tr.Deletes != info.Writes {
		return fmt.Errorf("%s: %d writes, table says %d", info.Name, tr.Puts+tr.Deletes, info.Writes)
	}
	if tr.Ranges+tr.Queries != info.RangeReads {
		return fmt.Errorf("%s: %d range reads, table says %d", info.Name, tr.Ranges+tr.Queries, info.RangeReads)
	}
	return nil
}
