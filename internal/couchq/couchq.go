// Package couchq implements a Mango-style JSON selector engine — the
// "rich query" capability that distinguishes CouchDB from LevelDB in
// the paper (§5.1.2). Chaincode values stored as JSON documents can be
// filtered with CouchDB selector syntax:
//
//	{"selector": {"owner": "artist42", "plays": {"$gt": 10}}}
//
// Supported operators: $eq, $ne, $gt, $gte, $lt, $lte, $in, $nin,
// $exists, $regex, and the combinators $and, $or, $not. Numeric
// comparisons follow JSON semantics (all numbers are float64).
package couchq

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Selector is a compiled query selector.
type Selector struct {
	root cond
}

type cond interface {
	match(doc map[string]interface{}) bool
}

// Parse compiles a selector from its JSON representation. The input
// may be either a bare selector object or a full query wrapper with a
// "selector" field (as accepted by CouchDB's _find endpoint).
func Parse(query []byte) (*Selector, error) {
	var raw map[string]interface{}
	if err := json.Unmarshal(query, &raw); err != nil {
		return nil, fmt.Errorf("couchq: invalid query JSON: %w", err)
	}
	if sel, ok := raw["selector"].(map[string]interface{}); ok {
		raw = sel
	}
	c, err := compileObject(raw)
	if err != nil {
		return nil, err
	}
	return &Selector{root: c}, nil
}

// MustParse is Parse for statically known selectors; it panics on
// error.
func MustParse(query string) *Selector {
	s, err := Parse([]byte(query))
	if err != nil {
		panic(err)
	}
	return s
}

// Matches reports whether the JSON document satisfies the selector.
// Invalid JSON never matches.
func (s *Selector) Matches(doc []byte) bool {
	var m map[string]interface{}
	if err := json.Unmarshal(doc, &m); err != nil {
		return false
	}
	return s.root.match(m)
}

// MatchesDoc reports whether an already-decoded document satisfies the
// selector.
func (s *Selector) MatchesDoc(doc map[string]interface{}) bool {
	return s.root.match(doc)
}

// ---- compilation ----

type andCond []cond

func (a andCond) match(doc map[string]interface{}) bool {
	for _, c := range a {
		if !c.match(doc) {
			return false
		}
	}
	return true
}

type orCond []cond

func (o orCond) match(doc map[string]interface{}) bool {
	for _, c := range o {
		if c.match(doc) {
			return true
		}
	}
	return false
}

type notCond struct{ inner cond }

func (n notCond) match(doc map[string]interface{}) bool { return !n.inner.match(doc) }

// fieldCond applies an operator to one (possibly dotted) field path.
type fieldCond struct {
	path []string
	op   string
	arg  interface{}
	re   *regexp.Regexp // compiled for $regex
}

func compileObject(obj map[string]interface{}) (cond, error) {
	// Deterministic compile order for reproducibility of error cases.
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var conds andCond
	for _, k := range keys {
		v := obj[k]
		switch k {
		case "$and", "$or":
			arr, ok := v.([]interface{})
			if !ok {
				return nil, fmt.Errorf("couchq: %s expects an array", k)
			}
			var subs []cond
			for _, e := range arr {
				m, ok := e.(map[string]interface{})
				if !ok {
					return nil, fmt.Errorf("couchq: %s elements must be objects", k)
				}
				c, err := compileObject(m)
				if err != nil {
					return nil, err
				}
				subs = append(subs, c)
			}
			if k == "$and" {
				conds = append(conds, andCond(subs))
			} else {
				conds = append(conds, orCond(subs))
			}
		case "$not":
			m, ok := v.(map[string]interface{})
			if !ok {
				return nil, fmt.Errorf("couchq: $not expects an object")
			}
			c, err := compileObject(m)
			if err != nil {
				return nil, err
			}
			conds = append(conds, notCond{c})
		default:
			if strings.HasPrefix(k, "$") {
				return nil, fmt.Errorf("couchq: unknown combinator %q", k)
			}
			c, err := compileField(strings.Split(k, "."), v)
			if err != nil {
				return nil, err
			}
			conds = append(conds, c)
		}
	}
	return conds, nil
}

func compileField(path []string, v interface{}) (cond, error) {
	if m, ok := v.(map[string]interface{}); ok {
		ops := make([]string, 0, len(m))
		for op := range m {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		var conds andCond
		for _, op := range ops {
			arg := m[op]
			switch op {
			case "$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$exists":
				conds = append(conds, &fieldCond{path: path, op: op, arg: arg})
			case "$in", "$nin":
				if _, ok := arg.([]interface{}); !ok {
					return nil, fmt.Errorf("couchq: %s expects an array", op)
				}
				conds = append(conds, &fieldCond{path: path, op: op, arg: arg})
			case "$regex":
				s, ok := arg.(string)
				if !ok {
					return nil, fmt.Errorf("couchq: $regex expects a string")
				}
				re, err := regexp.Compile(s)
				if err != nil {
					return nil, fmt.Errorf("couchq: bad $regex: %w", err)
				}
				conds = append(conds, &fieldCond{path: path, op: op, re: re})
			default:
				return nil, fmt.Errorf("couchq: unknown operator %q", op)
			}
		}
		return conds, nil
	}
	// Bare value means implicit $eq.
	return &fieldCond{path: path, op: "$eq", arg: v}, nil
}

func (f *fieldCond) match(doc map[string]interface{}) bool {
	val, present := lookup(doc, f.path)
	switch f.op {
	case "$exists":
		want, _ := f.arg.(bool)
		return present == want
	case "$eq":
		return present && jsonEqual(val, f.arg)
	case "$ne":
		return !present || !jsonEqual(val, f.arg)
	case "$gt", "$gte", "$lt", "$lte":
		if !present {
			return false
		}
		c, ok := jsonCompare(val, f.arg)
		if !ok {
			return false
		}
		switch f.op {
		case "$gt":
			return c > 0
		case "$gte":
			return c >= 0
		case "$lt":
			return c < 0
		default:
			return c <= 0
		}
	case "$in":
		if !present {
			return false
		}
		for _, e := range f.arg.([]interface{}) {
			if jsonEqual(val, e) {
				return true
			}
		}
		return false
	case "$nin":
		if !present {
			return true
		}
		for _, e := range f.arg.([]interface{}) {
			if jsonEqual(val, e) {
				return false
			}
		}
		return true
	case "$regex":
		s, ok := val.(string)
		return present && ok && f.re.MatchString(s)
	}
	return false
}

func lookup(doc map[string]interface{}, path []string) (interface{}, bool) {
	var cur interface{} = doc
	for _, p := range path {
		m, ok := cur.(map[string]interface{})
		if !ok {
			return nil, false
		}
		cur, ok = m[p]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

func jsonEqual(a, b interface{}) bool {
	if c, ok := jsonCompare(a, b); ok {
		return c == 0
	}
	// Fall back to deep equality via re-marshalling for arrays/objects.
	ab, errA := json.Marshal(a)
	bb, errB := json.Marshal(b)
	return errA == nil && errB == nil && string(ab) == string(bb)
}

// jsonCompare orders two scalar JSON values of the same kind. ok is
// false for non-comparable kinds.
func jsonCompare(a, b interface{}) (int, bool) {
	switch av := a.(type) {
	case float64:
		bv, ok := b.(float64)
		if !ok {
			return 0, false
		}
		switch {
		case av < bv:
			return -1, true
		case av > bv:
			return 1, true
		}
		return 0, true
	case string:
		bv, ok := b.(string)
		if !ok {
			return 0, false
		}
		return strings.Compare(av, bv), true
	case bool:
		bv, ok := b.(bool)
		if !ok {
			return 0, false
		}
		switch {
		case av == bv:
			return 0, true
		case !av:
			return -1, true
		}
		return 1, true
	case nil:
		if b == nil {
			return 0, true
		}
		return 0, false
	}
	return 0, false
}
