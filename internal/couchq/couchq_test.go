package couchq

import (
	"fmt"
	"testing"
)

func doc(s string) []byte { return []byte(s) }

func TestImplicitEq(t *testing.T) {
	s := MustParse(`{"owner":"alice"}`)
	if !s.Matches(doc(`{"owner":"alice","n":1}`)) {
		t.Error("expected match")
	}
	if s.Matches(doc(`{"owner":"bob"}`)) {
		t.Error("unexpected match")
	}
	if s.Matches(doc(`{"n":1}`)) {
		t.Error("missing field matched $eq")
	}
}

func TestSelectorWrapper(t *testing.T) {
	s := MustParse(`{"selector":{"type":"asset"}}`)
	if !s.Matches(doc(`{"type":"asset"}`)) {
		t.Error("wrapped selector did not match")
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		sel, d string
		want   bool
	}{
		{`{"n":{"$gt":5}}`, `{"n":6}`, true},
		{`{"n":{"$gt":5}}`, `{"n":5}`, false},
		{`{"n":{"$gte":5}}`, `{"n":5}`, true},
		{`{"n":{"$lt":5}}`, `{"n":4}`, true},
		{`{"n":{"$lte":5}}`, `{"n":5}`, true},
		{`{"n":{"$lte":5}}`, `{"n":5.5}`, false},
		{`{"s":{"$gt":"abc"}}`, `{"s":"abd"}`, true},
		{`{"s":{"$lt":"abc"}}`, `{"s":"abb"}`, true},
		{`{"n":{"$gt":5}}`, `{"n":"six"}`, false}, // type mismatch
		{`{"n":{"$gt":5}}`, `{}`, false},          // missing field
		{`{"n":{"$ne":5}}`, `{"n":6}`, true},
		{`{"n":{"$ne":5}}`, `{}`, true}, // absent counts as not-equal
		{`{"b":{"$gt":false}}`, `{"b":true}`, true},
	}
	for _, c := range cases {
		s := MustParse(c.sel)
		if got := s.Matches(doc(c.d)); got != c.want {
			t.Errorf("%s on %s = %v, want %v", c.sel, c.d, got, c.want)
		}
	}
}

func TestInNin(t *testing.T) {
	s := MustParse(`{"color":{"$in":["red","green"]}}`)
	if !s.Matches(doc(`{"color":"red"}`)) || s.Matches(doc(`{"color":"blue"}`)) {
		t.Error("$in wrong")
	}
	n := MustParse(`{"color":{"$nin":["red"]}}`)
	if n.Matches(doc(`{"color":"red"}`)) || !n.Matches(doc(`{"color":"blue"}`)) {
		t.Error("$nin wrong")
	}
	if !n.Matches(doc(`{}`)) {
		t.Error("$nin should match missing field")
	}
}

func TestExists(t *testing.T) {
	s := MustParse(`{"tag":{"$exists":true}}`)
	if !s.Matches(doc(`{"tag":null}`)) {
		t.Error("$exists true should match explicit null")
	}
	if s.Matches(doc(`{}`)) {
		t.Error("$exists true matched missing field")
	}
	ns := MustParse(`{"tag":{"$exists":false}}`)
	if !ns.Matches(doc(`{}`)) || ns.Matches(doc(`{"tag":1}`)) {
		t.Error("$exists false wrong")
	}
}

func TestRegex(t *testing.T) {
	s := MustParse(`{"id":{"$regex":"^GTIN-[0-9]+$"}}`)
	if !s.Matches(doc(`{"id":"GTIN-42"}`)) || s.Matches(doc(`{"id":"SSCC-42"}`)) {
		t.Error("$regex wrong")
	}
}

func TestAndOrNot(t *testing.T) {
	s := MustParse(`{"$or":[{"a":1},{"b":2}]}`)
	if !s.Matches(doc(`{"a":1}`)) || !s.Matches(doc(`{"b":2}`)) || s.Matches(doc(`{"c":3}`)) {
		t.Error("$or wrong")
	}
	a := MustParse(`{"$and":[{"a":{"$gt":0}},{"a":{"$lt":10}}]}`)
	if !a.Matches(doc(`{"a":5}`)) || a.Matches(doc(`{"a":15}`)) {
		t.Error("$and wrong")
	}
	n := MustParse(`{"$not":{"a":1}}`)
	if n.Matches(doc(`{"a":1}`)) || !n.Matches(doc(`{"a":2}`)) {
		t.Error("$not wrong")
	}
}

func TestDottedPath(t *testing.T) {
	s := MustParse(`{"meta.owner":"a1"}`)
	if !s.Matches(doc(`{"meta":{"owner":"a1"}}`)) {
		t.Error("dotted path failed")
	}
	if s.Matches(doc(`{"meta":"flat"}`)) {
		t.Error("dotted path matched non-object")
	}
}

func TestMultiFieldIsConjunction(t *testing.T) {
	s := MustParse(`{"a":1,"b":2}`)
	if !s.Matches(doc(`{"a":1,"b":2}`)) || s.Matches(doc(`{"a":1,"b":3}`)) {
		t.Error("multi-field selector not a conjunction")
	}
}

func TestMultiOpOnOneField(t *testing.T) {
	s := MustParse(`{"n":{"$gte":2,"$lt":8}}`)
	for n, want := range map[int]bool{1: false, 2: true, 7: true, 8: false} {
		if got := s.Matches(doc(fmt.Sprintf(`{"n":%d}`, n))); got != want {
			t.Errorf("n=%d got %v want %v", n, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`not json`,
		`{"n":{"$bogus":1}}`,
		`{"$bogus":[]}`,
		`{"$and":"x"}`,
		`{"$and":["x"]}`,
		`{"$not":"x"}`,
		`{"n":{"$in":"x"}}`,
		`{"n":{"$regex":5}}`,
		`{"n":{"$regex":"["}}`,
	}
	for _, q := range bad {
		if _, err := Parse([]byte(q)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestInvalidDocNeverMatches(t *testing.T) {
	s := MustParse(`{"a":1}`)
	if s.Matches(doc(`not json`)) {
		t.Error("invalid document matched")
	}
}

func TestEqualOnArrays(t *testing.T) {
	s := MustParse(`{"tags":["a","b"]}`)
	if !s.Matches(doc(`{"tags":["a","b"]}`)) || s.Matches(doc(`{"tags":["b","a"]}`)) {
		t.Error("array equality wrong")
	}
}

func BenchmarkSelectorMatch(b *testing.B) {
	s := MustParse(`{"owner":"artist42","plays":{"$gt":10}}`)
	d := doc(`{"owner":"artist42","plays":12,"title":"song"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Matches(d)
	}
}
