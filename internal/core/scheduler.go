package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/fabric"
	"repro/internal/metrics"
)

// Builder produces the config for one seed of one experiment cell.
// The harness fills in Seed, Duration and Drain afterwards.
type Builder func(seed int64) fabric.Config

// RunAll executes every builder for every seed on a shared worker
// pool and returns the seed-averaged results in builder order. The
// unit of scheduling is one (builder, seed) cell, so a sweep with few
// rows but several seeds still saturates the pool. Output is
// byte-for-byte identical to the sequential path regardless of
// Parallelism: every simulation owns its own rng seed, and the
// per-builder averages accumulate in fixed seed order.
func (o Options) RunAll(builds []Builder) ([]Result, error) {
	return o.RunAllContext(context.Background(), builds)
}

// RunAllContext is RunAll with cancellation. When ctx is cancelled,
// in-flight simulations finish, queued ones are abandoned, and the
// context's error is returned; if every cell was already in flight
// (or finished) at cancellation time, the completed batch is
// returned with a nil error. A builder error cancels the remaining
// work; the earliest recorded error in input order (not completion
// order) propagates.
func (o Options) RunAllContext(ctx context.Context, builds []Builder) ([]Result, error) {
	if len(o.Seeds) == 0 {
		return nil, fmt.Errorf("core: no seeds configured")
	}
	if len(builds) == 0 {
		return nil, nil
	}

	// One job per (builder, seed) cell, in input order: job i covers
	// builder i/len(Seeds) with seed i%len(Seeds).
	seeds := len(o.Seeds)
	jobs := len(builds) * seeds
	reports := make([]metrics.Report, jobs)
	errs := make([]error, jobs)
	done := make([]bool, jobs)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Serialized progress funnel: one drainer goroutine owns the
	// Progress callback, so lines from concurrent workers never
	// interleave.
	var progress chan string
	var progressWG sync.WaitGroup
	if o.Progress != nil {
		progress = make(chan string, o.workerCount(jobs))
		progressWG.Add(1)
		go func() {
			defer progressWG.Done()
			for line := range progress {
				o.Progress(line)
			}
		}()
	}

	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < jobs; i++ {
			select {
			case next <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := o.workerCount(jobs); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if runCtx.Err() != nil {
					return
				}
				cell, seed := i/seeds, o.Seeds[i%seeds]
				cfg := builds[cell](seed)
				cfg.Seed = seed
				cfg.Duration = o.Duration
				cfg.Drain = o.Drain
				nw, err := fabric.NewNetwork(cfg)
				if err != nil {
					errs[i] = cellError(len(builds), cell, seed, err)
					cancel()
					continue
				}
				reports[i] = nw.Run()
				done[i] = true
				if progress != nil {
					progress <- progressLine(len(builds), cell, seed, reports[i])
				}
			}
		}()
	}
	wg.Wait()
	if progress != nil {
		close(progress)
		progressWG.Wait()
	}

	// First-error propagation: scan in input order so the reported
	// error favours the earliest failing cell over whichever worker
	// happened to finish first.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, ok := range done {
		if !ok {
			// No builder failed, so an undone job means the parent
			// context was cancelled under us.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("core: batch aborted")
		}
	}

	results := make([]Result, len(builds))
	for c := range builds {
		var acc Result
		for s := 0; s < seeds; s++ {
			acc = acc.add(fromReport(reports[c*seeds+s]))
		}
		results[c] = acc.scale(1 / float64(seeds))
	}
	return results, nil
}

// sweep fans one builder per item of a sweep axis out across the
// pool and returns the seed-averaged results in axis order.
func sweep[T any](o Options, items []T, build func(item T) Builder) ([]Result, error) {
	builds := make([]Builder, len(items))
	for i, item := range items {
		builds[i] = build(item)
	}
	return o.RunAll(builds)
}

// workerCount resolves the Parallelism knob against the job count:
// 0 (or negative) means one worker per CPU, and the pool never
// exceeds the number of jobs.
func (o Options) workerCount(jobs int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// progressLine keeps the historical single-cell format ("seed 1: …")
// and prefixes the cell coordinate only for real batches.
func progressLine(cells, cell int, seed int64, rep metrics.Report) string {
	if cells == 1 {
		return fmt.Sprintf("seed %d: %v", seed, rep)
	}
	return fmt.Sprintf("cell %d/%d seed %d: %v", cell+1, cells, seed, rep)
}

// cellError mirrors progressLine: a single-cell batch returns the
// bare cause (as the serial runner did), a real batch prefixes the
// 1-based cell coordinate and seed.
func cellError(cells, cell int, seed int64, err error) error {
	if cells == 1 {
		return err
	}
	return fmt.Errorf("core: cell %d/%d seed %d: %w", cell+1, cells, seed, err)
}
