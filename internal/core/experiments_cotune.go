package core

import (
	"time"

	"repro/internal/fabric"
	"repro/internal/metrics"
)

// CotunePolicy is one rung of the retry-control ladder compared by the
// retry-cotune experiment: a named combination of a backoff policy and
// an optional per-client retry budget.
type CotunePolicy struct {
	Label  string
	Policy fabric.RetryPolicy
	Budget *fabric.RetryBudget
}

// CotunePolicies returns the five retry-control strategies the
// co-tuning study compares, all capped at 5 submissions so grids stay
// comparable:
//
//   - "static": the PR-2 exponential backoff — a fixed schedule that
//     ignores what the network is doing;
//   - "adaptive": the AIMD controller, which watches each client's
//     windowed failure rate and grows/shrinks its backoff;
//   - "budgeted": the static backoff gated by a drop-mode token bucket
//     (1 token/s, burst 3 per client), which bounds retry load at the
//     price of abandoning transactions when the budget runs dry;
//   - "paced": the same bucket in defer mode — no transaction is
//     dropped, but retries beyond the budget queue up and drain into
//     the network at the refill rate;
//   - "budgeted-adaptive": the drop-mode bucket with adaptive refill
//     calibration (RetryBudget.Adaptive) — conflict-class demand on an
//     empty bucket doubles the refill rate so hot chaincodes like DV
//     stop burning thousands of drops against a rate tuned for EHR,
//     while an idle full bucket decays back to the base rate.
func CotunePolicies() []CotunePolicy {
	staticBackoff := fabric.ExponentialBackoff{
		Initial:     200 * time.Millisecond,
		Cap:         2 * time.Second,
		MaxAttempts: 5,
		Jitter:      0.2,
	}
	return []CotunePolicy{
		{"static", staticBackoff, nil},
		{"adaptive", fabric.AdaptivePolicy{
			Floor:       100 * time.Millisecond,
			Ceiling:     4 * time.Second,
			Increase:    2,
			Decrease:    50 * time.Millisecond,
			Window:      32,
			Target:      0.1,
			MaxAttempts: 5,
			Jitter:      0.2,
		}, nil},
		{"budgeted", staticBackoff,
			&fabric.RetryBudget{RefillPerSec: 1, Burst: 3, DropOnEmpty: true}},
		{"paced", staticBackoff,
			&fabric.RetryBudget{RefillPerSec: 1, Burst: 3}},
		{"budgeted-adaptive", staticBackoff,
			&fabric.RetryBudget{RefillPerSec: 1, Burst: 3, DropOnEmpty: true, Adaptive: true}},
	}
}

// CotuneBlockSizes is the block-size axis of the co-tuning study: the
// paper's Table 3 default and the half-size block that cuts
// intra-block conflict windows.
var CotuneBlockSizes = []int{50, 100}

// cotuneSystems is the variant axis: does Fabric++'s early abort tame
// the retry storm that vanilla Fabric feeds back into the orderer?
var cotuneSystems = []System{Fabric14, FabricPP}

// cotuneCell is one cell of the retry-cotune grid.
type cotuneCell struct {
	ccName string
	sys    System
	pol    CotunePolicy
	bs     int
}

// cotuneGrid enumerates the sweep in deterministic row order:
// chaincode, system, policy, block size. Smoke mode keeps only the
// EHR rows so CI can run the experiment end-to-end in seconds.
func cotuneGrid(smoke bool) []cotuneCell {
	ccs := []string{"ehr", "dv", "scm", "drm"}
	if smoke {
		ccs = []string{"ehr"}
	}
	var cells []cotuneCell
	for _, ccName := range ccs {
		for _, sys := range cotuneSystems {
			for _, pol := range CotunePolicies() {
				for _, bs := range CotuneBlockSizes {
					cells = append(cells, cotuneCell{ccName, sys, pol, bs})
				}
			}
		}
	}
	return cells
}

// RetryCotuneExp is the block-size × backoff co-tuning study: it
// sweeps block size × retry-control strategy (static backoff vs AIMD
// adaptive vs budgeted) × variant (vanilla Fabric 1.4 vs Fabric++
// early abort) over the four use-case chaincodes on C1, at the
// default skew. It extends the retry-policies experiment along the
// ROADMAP's two open axes: can a client-side controller (adaptive
// backoff, retry budgets) or a server-side one (Fabric++ aborting
// doomed transactions before they waste a block slot) tame the retry
// storm that PR 2 exposed — DV's phantom conflicts being resubmitted
// into a saturated orderer — and how does the answer shift with block
// size?
//
// Columns: goodput (first-submission success throughput), committed
// throughput, retry amplification (submissions per logical
// transaction), end-to-end latency including resubmissions, budget
// exhaustions (retries dropped by an empty token bucket), deferred
// retries, the final AIMD backoff level, give-up rate and chain-level
// failure rate. All cells fan out across the worker pool; the table
// is byte-for-byte identical at any Options.Parallelism.
func RetryCotuneExp(o Options) (string, error) {
	cells := cotuneGrid(o.Smoke)
	builds := make([]Builder, len(cells))
	for i, c := range cells {
		cc, err := UseCase(c.ccName)
		if err != nil {
			return "", err
		}
		c := c
		builds[i] = func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, 1, c.sys)(seed)
			cfg.BlockSize = c.bs
			cfg.Retry = c.pol.Policy
			cfg.RetryBudget = c.pol.Budget
			return cfg
		}
	}
	results, err := o.RunAll(builds)
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("chaincode", "system", "policy", "block",
		"goodput (tps)", "tput (tps)", "amp", "e2e lat (s)",
		"exhausted", "deferred", "aimd (s)", "gave up %", "failures %")
	for i, c := range cells {
		res := results[i]
		t.AddRow(c.ccName, c.sys, c.pol.Label, c.bs,
			res.Goodput, res.Throughput, res.RetryAmp, res.EndToEndSec,
			res.BudgetExhausted, res.DeferredRetries, res.AdaptiveBackSec,
			res.GaveUpPct, res.FailurePct)
	}
	return t.String(), nil
}
