package core
