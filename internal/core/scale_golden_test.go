package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenScaleLine renders one locked scale cell with enough precision
// that any drift in the cohort drivers, the channel router, the
// cross-channel legs or the streaming latency aggregation changes the
// line.
func goldenScaleLine(c scaleCell, r Result) string {
	return fmt.Sprintf(
		"clients%d/ch%d: total=%.0f committed=%.0f fail=%.4f aborted=%.4f lat=%.6f tput=%.4f goodput=%.4f amp=%.4f e2e=%.6f gaveup=%.4f",
		c.clients, c.channels, r.Total, r.Committed, r.FailurePct, r.AbortedPct,
		r.LatencySec, r.Throughput, r.Goodput, r.RetryAmp, r.EndToEndSec, r.GaveUpPct)
}

// TestGoldenScaleRows locks the smoke grid of the scale experiment —
// exact-vs-cohort drivers at 100 and 1000 clients, 1 and 4 channels —
// the way TestGoldenQuickReports locks the paper's base grid.
// Regenerate intentional changes with
//
//	go test ./internal/core -run TestGoldenScaleRows -update-golden
//
// and justify the diff in the commit.
func TestGoldenScaleRows(t *testing.T) {
	cells := scaleGrid(true)
	cc, err := UseCase("ehr")
	if err != nil {
		t.Fatal(err)
	}
	builds := make([]Builder, len(cells))
	for i, c := range cells {
		builds[i] = scaleConfig(cc, c)
	}
	o := QuickOptions()
	results, err := o.RunAll(builds)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i, c := range cells {
		lines = append(lines, goldenScaleLine(c, results[i]))
	}
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "golden_scale.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("scale golden drift line %d:\n got: %s\nwant: %s", i+1, g, w)
		}
	}
}
