package core

import (
	"testing"
	"time"

	"repro/internal/fabric"
)

// TestBudgetCalibrationPerChaincode pins the satellite finding behind
// RetryBudget.Adaptive: one fixed refill rate cannot fit every
// chaincode. Over 40 virtual seconds, DV's phantom-conflict storm
// burns a 1 token/s drop-mode bucket dry thousands of times while EHR
// — the workload the rate was presumably tuned for — exhausts an
// order of magnitude less. Adaptive calibration reacts to the
// conflict-class demand instead, raising DV's refill rate until drops
// collapse, while leaving a workload that fits its base rate roughly
// alone.
func TestBudgetCalibrationPerChaincode(t *testing.T) {
	backoff := fabric.ExponentialBackoff{
		Initial:     200 * time.Millisecond,
		Cap:         2 * time.Second,
		MaxAttempts: 5,
		Jitter:      0.2,
	}
	fixed := fabric.RetryBudget{RefillPerSec: 1, Burst: 3, DropOnEmpty: true}
	adaptive := fabric.RetryBudget{RefillPerSec: 1, Burst: 3, DropOnEmpty: true, Adaptive: true}

	grid := []struct {
		cc     string
		budget fabric.RetryBudget
	}{
		{"ehr", fixed},
		{"ehr", adaptive},
		{"dv", fixed},
		{"dv", adaptive},
	}
	builds := make([]Builder, len(grid))
	for i, cell := range grid {
		cc, err := UseCase(cell.cc)
		if err != nil {
			t.Fatal(err)
		}
		budget := cell.budget
		builds[i] = func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, 1, Fabric14)(seed)
			cfg.BlockSize = 100
			cfg.Retry = backoff
			cfg.RetryBudget = &budget
			return cfg
		}
	}
	o := Options{Duration: 40 * time.Second, Drain: 20 * time.Second, Seeds: []int64{1}}
	results, err := o.RunAll(builds)
	if err != nil {
		t.Fatal(err)
	}
	ehrFixed, ehrAdaptive := results[0], results[1]
	dvFixed, dvAdaptive := results[2], results[3]
	t.Logf("exhaustions over 40s: ehr fixed=%.0f adaptive=%.0f, dv fixed=%.0f adaptive=%.0f",
		ehrFixed.BudgetExhausted, ehrAdaptive.BudgetExhausted,
		dvFixed.BudgetExhausted, dvAdaptive.BudgetExhausted)

	// The mismatch: the same fixed bucket that roughly fits EHR burns
	// thousands of DV retries.
	if dvFixed.BudgetExhausted < 1000 {
		t.Errorf("dv fixed-budget exhaustions %.0f, want the thousands the 1/s rate cannot absorb",
			dvFixed.BudgetExhausted)
	}
	if dvFixed.BudgetExhausted < 2*ehrFixed.BudgetExhausted {
		t.Errorf("dv fixed exhaustions %.0f not clearly above ehr's %.0f: the per-chaincode mismatch vanished",
			dvFixed.BudgetExhausted, ehrFixed.BudgetExhausted)
	}
	// The fix: adaptive calibration absorbs most of DV's conflict-class
	// demand without being told the workload.
	if dvAdaptive.BudgetExhausted > dvFixed.BudgetExhausted/2 {
		t.Errorf("dv adaptive exhaustions %.0f, want well under half of fixed %.0f",
			dvAdaptive.BudgetExhausted, dvFixed.BudgetExhausted)
	}
	if dvAdaptive.Throughput < dvFixed.Throughput {
		t.Errorf("dv adaptive throughput %.1f below fixed %.1f: the raised budget should commit more",
			dvAdaptive.Throughput, dvFixed.Throughput)
	}
}
