package core

import (
	"time"

	"repro/internal/fabric"
	"repro/internal/metrics"
)

// FaultScenarios is the scenario axis of the faults experiment: the
// healthy baseline plus the predefined adversity scripts that matter
// for coordination behaviour (crash windows, a partition, a flaky
// peer, a slow state database).
var FaultScenarios = []string{"none", "crash", "partition", "flaky", "slowdb"}

// faultModes returns the retry/coordination strategies the faults
// study compares. "backoff" is the plain capped exponential baseline;
// the coordination rungs are reused verbatim from the coordination
// study (CoordinationPolicies), so their healthy-scenario rows are
// directly comparable with the retry-coordination grid.
func faultModes() []CoordinationPolicy {
	modes := []CoordinationPolicy{
		{Label: "backoff", Policy: fabric.ExponentialBackoff{
			Initial:     200 * time.Millisecond,
			Cap:         2 * time.Second,
			MaxAttempts: 5,
			Jitter:      0.2,
		}},
	}
	for _, p := range CoordinationPolicies() {
		if p.Label == "aimd" || p.Label == "hinted-orderer" || p.Label == "hinted-gossip" {
			modes = append(modes, p)
		}
	}
	return modes
}

// faultsCell is one cell of the faults grid.
type faultsCell struct {
	ccName   string
	scenario string
	mode     CoordinationPolicy
}

// faultsGrid enumerates the sweep in deterministic row order:
// chaincode, scenario, mode. Smoke mode keeps EHR with the crash and
// partition scenarios under the backoff and hinted-orderer modes —
// four cells that still cross a node-lifecycle fault with a netem
// fault and a local with a coordinated control.
func faultsGrid(smoke bool) []faultsCell {
	ccs := []string{"ehr", "dv"}
	scenarios := FaultScenarios
	modes := faultModes()
	if smoke {
		ccs = []string{"ehr"}
		scenarios = []string{"crash", "partition"}
		var kept []CoordinationPolicy
		for _, m := range modes {
			if m.Label == "backoff" || m.Label == "hinted-orderer" {
				kept = append(kept, m)
			}
		}
		modes = kept
	}
	var cells []faultsCell
	for _, ccName := range ccs {
		for _, sc := range scenarios {
			for _, m := range modes {
				cells = append(cells, faultsCell{ccName, sc, m})
			}
		}
	}
	return cells
}

// faultsConfig assembles one cell's fabric.Config (shared with the
// golden-row test, so the locked rows use exactly the grid's wiring).
// The "none" scenario leaves Config.Faults nil — the fault subsystem
// is then byte-identical off and the row is a healthy baseline.
func faultsConfig(cc CCFactory, c faultsCell) Builder {
	return func(seed int64) fabric.Config {
		cfg := baseConfig(C1, cc, 1, Fabric14)(seed)
		cfg.Retry = c.mode.Policy
		cfg.RetryBudget = c.mode.Budget
		cfg.Backpressure = c.mode.Backpressure
		cfg.Gossip = c.mode.Gossip
		cfg.HintSource = c.mode.HintSource
		if c.scenario != "none" {
			cfg.Faults = &fabric.Faults{Scenario: c.scenario}
		}
		return cfg
	}
}

// FaultsExp measures how the coordination stack actually behaves under
// the adverse regimes it was built for: every prior result assumed a
// permanently healthy network, while the ChackoMJ21 failure taxonomy
// came from a system that crashes, partitions and slows down. The
// experiment sweeps fault scenario {none, crash, partition, flaky,
// slowdb} × retry/coordination mode {exponential backoff, AIMD,
// hinted-orderer, hinted-gossip} × chaincode {EHR, DV} on C1, with
// deterministic seed-derived fault schedules (Config.Faults).
//
// Columns: goodput, committed throughput, retry amplification,
// end-to-end latency, endorsement and submission deadline expiries,
// orphaned transactions (committed after their client gave up),
// scheduled node downtime, peer post-restart recovery latency,
// give-up rate and chain-level failure rate. Fault windows are
// virtual-time driven, so the table is byte-for-byte identical at any
// Options.Parallelism.
func FaultsExp(o Options) (string, error) {
	cells := faultsGrid(o.Smoke)
	builds := make([]Builder, len(cells))
	for i, c := range cells {
		cc, err := UseCase(c.ccName)
		if err != nil {
			return "", err
		}
		builds[i] = faultsConfig(cc, c)
	}
	results, err := o.RunAll(builds)
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("chaincode", "scenario", "control",
		"goodput (tps)", "tput (tps)", "amp", "e2e lat (s)",
		"eto", "sto", "orphans", "down (s)", "recov (s)",
		"gave up %", "failures %")
	for i, c := range cells {
		res := results[i]
		t.AddRow(c.ccName, c.scenario, c.mode.Label,
			res.Goodput, res.Throughput, res.RetryAmp, res.EndToEndSec,
			res.EndorseTOs, res.SubmitTOs, res.Orphans,
			res.DowntimeSec, res.RecoverySec,
			res.GaveUpPct, res.FailurePct)
	}
	return t.String(), nil
}
