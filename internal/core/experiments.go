package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/chaincodes/drm"
	"repro/internal/chaincodes/dv"
	"repro/internal/chaincodes/ehr"
	"repro/internal/chaincodes/scm"
	"repro/internal/costmodel"
	"repro/internal/fabric"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/policy"
	"repro/internal/statedb"
	"repro/internal/workload"
)

// Rates is the paper's transaction-arrival-rate sweep (Fig 4/5).
var Rates = []float64{10, 50, 100, 150, 200}

// BlockSizes is the paper's block-size sweep.
var BlockSizes = []int{10, 50, 100, 150, 200}

// Table2 prints the chaincode functions and their operation profiles.
func Table2(Options) (string, error) {
	t := metrics.NewTable("chaincode", "function", "reads", "writes", "range reads", "unchecked")
	rows := []struct {
		cc  string
		fns []workload.FunctionInfo
	}{
		{"EHR", ehr.Functions()}, {"DV", dv.Functions()},
		{"SCM", scm.Functions()}, {"DRM", drm.Functions()},
	}
	for _, r := range rows {
		for _, f := range r.fns {
			star := ""
			if f.Unchecked {
				star = "*"
			}
			t.AddRow(r.cc, f.Name, f.Reads, f.Writes, f.RangeReads, star)
		}
	}
	return t.String(), nil
}

// Table4 reproduces the database-type study: average latency and
// failure percentage per workload on CouchDB vs LevelDB, plus the
// calibrated per-function-call latencies.
func Table4(o Options) (string, error) {
	var sb strings.Builder
	t := metrics.NewTable("workload", "db", "avg latency (s)", "failures %")
	type cell struct {
		wl   string
		kind statedb.Kind
	}
	var cells []cell
	var builds []Builder
	for _, wl := range []string{"RH", "IH", "UH", "RaH", "DH"} {
		mix, err := gen.MixByName(wl)
		if err != nil {
			return "", err
		}
		for _, kind := range []statedb.Kind{statedb.CouchDB, statedb.LevelDB} {
			kind := kind
			cc := GenChain(mix, o.GenKeys)
			cells = append(cells, cell{wl, kind})
			builds = append(builds, func(seed int64) fabric.Config {
				cfg := baseConfig(C1, cc, 1, Fabric14)(seed)
				cfg.DBKind = kind
				return cfg
			})
		}
	}
	results, err := o.RunAll(builds)
	if err != nil {
		return "", err
	}
	for i, c := range cells {
		res := results[i]
		t.AddRow(c.wl, c.kind.String(), fmt.Sprintf("%.2f", res.LatencySec), res.FailurePct)
	}
	sb.WriteString(t.String())
	sb.WriteString("\nFunction call latency (cost model, calibrated to the paper):\n")
	ft := metrics.NewTable("function", "CouchDB (ms)", "LevelDB (ms)")
	cdb, ldb := costmodel.ForKind(statedb.CouchDB), costmodel.ForKind(statedb.LevelDB)
	ms := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond)) }
	ft.AddRow("GetState", ms(cdb.Get), ms(ldb.Get))
	ft.AddRow("PutState", ms(cdb.Put), ms(ldb.Put))
	ft.AddRow("GetRange", ms(cdb.RangeBase), ms(ldb.RangeBase))
	ft.AddRow("DeleteState", ms(cdb.Delete), ms(ldb.Delete))
	sb.WriteString(ft.String())
	return sb.String(), nil
}

// blockSizeSweep runs one chaincode on one cluster over rates × block
// sizes and returns the result grid. All rate × block-size × seed
// cells fan out across the worker pool; the grid is assembled in
// sweep order, so its contents do not depend on Parallelism.
func blockSizeSweep(o Options, cluster Cluster, ccName string, sys System) (map[float64]map[int]Result, error) {
	cc, err := UseCase(ccName)
	if err != nil {
		return nil, err
	}
	builds := make([]Builder, 0, len(Rates)*len(BlockSizes))
	for _, rate := range Rates {
		for _, bs := range BlockSizes {
			rate, bs := rate, bs
			builds = append(builds, func(seed int64) fabric.Config {
				cfg := baseConfig(cluster, cc, 1, sys)(seed)
				cfg.Rate = rate
				cfg.BlockSize = bs
				return cfg
			})
		}
	}
	results, err := o.RunAll(builds)
	if err != nil {
		return nil, err
	}
	grid := map[float64]map[int]Result{}
	i := 0
	for _, rate := range Rates {
		grid[rate] = map[int]Result{}
		for _, bs := range BlockSizes {
			grid[rate][bs] = results[i]
			i++
		}
	}
	return grid, nil
}

// bestWorst extracts the block sizes with the fewest and most failed
// transactions at one rate (§5.1.1's "best/worst block size").
func bestWorst(row map[int]Result) (bestBS, worstBS int, least, most float64) {
	first := true
	for _, bs := range BlockSizes {
		r, ok := row[bs]
		if !ok {
			continue
		}
		if first || r.FailurePct < least {
			bestBS, least = bs, r.FailurePct
		}
		if first || r.FailurePct > most {
			worstBS, most = bs, r.FailurePct
		}
		first = false
	}
	return bestBS, worstBS, least, most
}

// Fig4 prints the best block size at each arrival rate for EHR, DV
// and DRM on both clusters.
func Fig4(o Options) (string, error) {
	t := metrics.NewTable("chaincode", "cluster", "rate (tps)", "best block size", "failures %")
	for _, ccName := range []string{"ehr", "dv", "drm"} {
		for _, cluster := range []Cluster{C1, C2} {
			grid, err := blockSizeSweep(o, cluster, ccName, Fabric14)
			if err != nil {
				return "", err
			}
			for _, rate := range Rates {
				best, _, least, _ := bestWorst(grid[rate])
				t.AddRow(ccName, cluster, rate, best, least)
			}
		}
	}
	return t.String(), nil
}

// Fig5 prints the minimum and maximum failure percentages over the
// block-size sweep at each rate on C2.
func Fig5(o Options) (string, error) {
	t := metrics.NewTable("chaincode", "rate (tps)", "least failures %", "most failures %", "reduction %")
	for _, ccName := range []string{"ehr", "dv", "drm"} {
		grid, err := blockSizeSweep(o, C2, ccName, Fabric14)
		if err != nil {
			return "", err
		}
		for _, rate := range Rates {
			_, _, least, most := bestWorst(grid[rate])
			reduction := 0.0
			if most > 0 {
				reduction = 100 * (most - least) / most
			}
			t.AddRow(ccName, rate, least, most, reduction)
		}
	}
	return t.String(), nil
}

// Fig6 prints latency and committed throughput vs block size (EHR at
// 100 tps on C2).
func Fig6(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("block size", "avg latency (s)", "throughput (tps)", "failures %")
	results, err := sweep(o, BlockSizes, func(bs int) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C2, cc, 1, Fabric14)(seed)
			cfg.BlockSize = bs
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, bs := range BlockSizes {
		res := results[i]
		t.AddRow(bs, fmt.Sprintf("%.2f", res.LatencySec), res.Throughput, res.FailurePct)
	}
	return t.String(), nil
}

// Fig7 prints inter- vs intra-block MVCC conflicts vs block size
// (EHR, C2, 100 tps).
func Fig7(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("block size", "inter-block %", "intra-block %")
	results, err := sweep(o, BlockSizes, func(bs int) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C2, cc, 1, Fabric14)(seed)
			cfg.BlockSize = bs
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, bs := range BlockSizes {
		t.AddRow(bs, results[i].InterPct, results[i].IntraPct)
	}
	return t.String(), nil
}

// Fig8 prints inter- vs intra-block MVCC conflicts vs arrival rate
// (EHR, C2, block size 100).
func Fig8(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("rate (tps)", "inter-block %", "intra-block %")
	results, err := sweep(o, Rates, func(rate float64) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C2, cc, 1, Fabric14)(seed)
			cfg.Rate = rate
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, rate := range Rates {
		t.AddRow(rate, results[i].InterPct, results[i].IntraPct)
	}
	return t.String(), nil
}

// Fig9 prints endorsement policy failures vs block size (EHR, C2).
func Fig9(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("block size", "endorsement failures %")
	results, err := sweep(o, BlockSizes, func(bs int) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C2, cc, 1, Fabric14)(seed)
			cfg.BlockSize = bs
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, bs := range BlockSizes {
		t.AddRow(bs, results[i].EndorsementPct)
	}
	return t.String(), nil
}

// Fig10 prints phantom read conflicts vs block size (SCM, C2).
func Fig10(o Options) (string, error) {
	cc, err := UseCase("scm")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("block size", "phantom read conflicts %")
	results, err := sweep(o, BlockSizes, func(bs int) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C2, cc, 1, Fabric14)(seed)
			cfg.BlockSize = bs
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, bs := range BlockSizes {
		t.AddRow(bs, results[i].PhantomPct)
	}
	return t.String(), nil
}

// Fig11 prints the database-type comparison on the EHR chaincode:
// latency, endorsement failures, inter/intra MVCC conflicts.
func Fig11(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("db", "avg latency (s)", "endorsement %", "inter-block %", "intra-block %")
	kinds := []statedb.Kind{statedb.CouchDB, statedb.LevelDB}
	results, err := sweep(o, kinds, func(kind statedb.Kind) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C2, cc, 1, Fabric14)(seed)
			cfg.DBKind = kind
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, kind := range kinds {
		res := results[i]
		t.AddRow(kind.String(), fmt.Sprintf("%.2f", res.LatencySec),
			res.EndorsementPct, res.InterPct, res.IntraPct)
	}
	return t.String(), nil
}

// Fig12 prints the effect of the number of organizations (4 peers
// each): latency and endorsement failures.
func Fig12(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("orgs", "peers", "avg latency (s)", "endorsement failures %")
	orgCounts := []int{2, 4, 6, 8, 10}
	results, err := sweep(o, orgCounts, func(orgs int) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C2, cc, 1, Fabric14)(seed)
			cfg.Orgs = orgs
			cfg.PeersPerOrg = 4
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, orgs := range orgCounts {
		t.AddRow(orgs, orgs*4, fmt.Sprintf("%.2f", results[i].LatencySec), results[i].EndorsementPct)
	}
	return t.String(), nil
}

// Fig13 prints the effect of the endorsement policies P0–P3.
func Fig13(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("policy", "avg latency (s)", "endorsement failures %")
	policies := policy.AllNames()
	results, err := sweep(o, policies, func(p policy.Name) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C2, cc, 1, Fabric14)(seed)
			cfg.Policy = p
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, p := range policies {
		t.AddRow(p.String(), fmt.Sprintf("%.2f", results[i].LatencySec), results[i].EndorsementPct)
	}
	return t.String(), nil
}

// Fig14 prints failures per workload mix (genChain, C2).
func Fig14(o Options) (string, error) {
	t := metrics.NewTable("workload", "failures %")
	mixes := []string{"RH", "IH", "UH", "RaH", "DH"}
	var builds []Builder
	for _, wl := range mixes {
		mix, err := gen.MixByName(wl)
		if err != nil {
			return "", err
		}
		cc := GenChain(mix, o.GenKeys)
		builds = append(builds, baseConfig(C2, cc, 1, Fabric14))
	}
	results, err := o.RunAll(builds)
	if err != nil {
		return "", err
	}
	for i, wl := range mixes {
		t.AddRow(wl, results[i].FailurePct)
	}
	return t.String(), nil
}

// Fig15 prints failures per Zipfian skew (genChain uniform
// read/update mix, C2).
func Fig15(o Options) (string, error) {
	t := metrics.NewTable("zipf skew", "failures %")
	skews := []float64{0, 1, 2}
	results, err := sweep(o, skews, func(skew float64) Builder {
		cc := GenChain(gen.UniformRU, o.GenKeys)
		return baseConfig(C2, cc, skew, Fabric14)
	})
	if err != nil {
		return "", err
	}
	for i, skew := range skews {
		t.AddRow(skew, results[i].FailurePct)
	}
	return t.String(), nil
}

// Fig16 prints the network-delay emulation: Fabric 1.4 with and
// without 100±10 ms injected on one organization, at 10/50/100 tps.
func Fig16(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("rate (tps)", "delay", "avg latency (s)", "endorsement %", "MVCC %")
	type cell struct {
		rate    float64
		delayed bool
	}
	var cells []cell
	for _, rate := range []float64{10, 50, 100} {
		for _, delayed := range []bool{false, true} {
			cells = append(cells, cell{rate, delayed})
		}
	}
	results, err := sweep(o, cells, func(c cell) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, 1, Fabric14)(seed)
			cfg.Rate = c.rate
			if c.delayed {
				cfg.DelayOrg = 0
				cfg.DelayLink = netem.Link{Base: 100 * time.Millisecond, Jitter: 10 * time.Millisecond}
			}
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, c := range cells {
		res := results[i]
		label := "no"
		if c.delayed {
			label = "100±10ms"
		}
		t.AddRow(c.rate, label, fmt.Sprintf("%.2f", res.LatencySec),
			res.EndorsementPct, res.MVCCPct)
	}
	return t.String(), nil
}
