package core

import (
	"strings"
	"testing"
	"time"
)

// cotuneOpts is a tiny deterministic regime for the co-tuning grid:
// smoke-sized so the full parallel-vs-serial comparison stays cheap.
func cotuneOpts(parallelism int) Options {
	o := SmokeOptions()
	o.Parallelism = parallelism
	return o
}

func TestRetryCotuneTableShape(t *testing.T) {
	out, err := RetryCotuneExp(cotuneOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"goodput (tps)", "amp", "exhausted", "deferred", "aimd (s)"} {
		if !strings.Contains(out, col) {
			t.Errorf("table missing column %q", col)
		}
	}
	for _, label := range []string{"static", "adaptive", "budgeted", "paced"} {
		if !strings.Contains(out, label) {
			t.Errorf("table missing policy %q", label)
		}
	}
	for _, sys := range []string{"Fabric 1.4", "Fabric++"} {
		if !strings.Contains(out, sys) {
			t.Errorf("table missing system %q", sys)
		}
	}
	// Smoke mode shrinks the grid to EHR only.
	if strings.Contains(out, "dv") || strings.Contains(out, "scm") {
		t.Error("smoke grid still sweeps the full chaincode axis")
	}
	rows := len(strings.Split(strings.TrimSpace(out), "\n")) - 2 // header + rule
	if want := 2 * len(CotunePolicies()) * len(CotuneBlockSizes); rows != want {
		t.Errorf("smoke grid has %d rows, want %d", rows, want)
	}
}

func TestRetryCotuneFullGridEnumeration(t *testing.T) {
	cells := cotuneGrid(false)
	want := 4 * 2 * len(CotunePolicies()) * len(CotuneBlockSizes)
	if len(cells) != want {
		t.Fatalf("full grid has %d cells, want %d", len(cells), want)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		seen[c.ccName] = true
	}
	for _, cc := range []string{"ehr", "dv", "scm", "drm"} {
		if !seen[cc] {
			t.Errorf("full grid missing chaincode %s", cc)
		}
	}
}

func TestSmokeOptionsRegime(t *testing.T) {
	o := SmokeOptions()
	if !o.Smoke {
		t.Error("SmokeOptions must set Smoke")
	}
	if o.Duration > 10*time.Second {
		t.Errorf("smoke duration %v too long for CI", o.Duration)
	}
	if len(o.Seeds) != 1 {
		t.Errorf("smoke regime runs %d seeds, want 1", len(o.Seeds))
	}
}
