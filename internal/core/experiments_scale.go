package core

import (
	"time"

	"repro/internal/fabric"
	"repro/internal/metrics"
)

// ScaleClients is the client-count axis of the scale sweep: two
// orders of magnitude per step, up to a million simulated clients.
var ScaleClients = []int{100, 10_000, 1_000_000}

// ScaleChannels is the channel-count axis of the scale sweep.
var ScaleChannels = []int{1, 4, 16}

// scaleCohortTarget is the driver count the sweep keeps constant:
// every cell runs (about) this many cohorts regardless of client
// count, so state and event-queue pressure stay flat as the client
// axis grows four orders of magnitude.
const scaleCohortTarget = 100

// scaleCell is one cell of the scale grid.
type scaleCell struct {
	clients  int
	channels int
}

// scaleGrid enumerates the scale sweep in deterministic row order:
// client count, then channel count. Smoke mode truncates both axes so
// CI (and the determinism matrix test) can run the experiment
// end-to-end in seconds.
func scaleGrid(smoke bool) []scaleCell {
	clients, channels := ScaleClients, ScaleChannels
	if smoke {
		clients = []int{100, 1_000}
		channels = []int{1, 4}
	}
	var cells []scaleCell
	for _, cl := range clients {
		for _, ch := range channels {
			cells = append(cells, scaleCell{cl, ch})
		}
	}
	return cells
}

// scaleConfig builds one cell's config: open-loop arrivals at a fixed
// total rate (so the chain-side load is comparable across the client
// axis and only the population size varies), cohort drivers sized to
// keep scaleCohortTarget cohorts per cell, channel sharding on the
// channel axis with 10% cross-channel transactions when there is more
// than one channel, and a capped exponential-backoff retry policy so
// failed transactions resubmit — the regime the paper's
// fire-and-forget clients never reach.
func scaleConfig(cc CCFactory, c scaleCell) Builder {
	return func(seed int64) fabric.Config {
		cfg := baseConfig(C1, cc, 2, Fabric14)(seed)
		cfg.Clients = c.clients
		cfg.Rate = 200
		cfg.Channels = c.channels
		if c.channels > 1 {
			cfg.CrossChannel = 0.1
		}
		cfg.CohortSize = c.clients / scaleCohortTarget
		cfg.Retry = fabric.ExponentialBackoff{
			Initial:     200 * time.Millisecond,
			Cap:         2 * time.Second,
			MaxAttempts: 5,
			Jitter:      0.2,
		}
		return cfg
	}
}

// ScaleExp sweeps client population × channel count at a fixed total
// arrival rate: 10^2 to 10^6 clients driven by cohort drivers (one
// state object per ~1% of the population) over 1, 4 and 16 channels.
// It reports the effective client-side metrics next to the chain
// view, so the table shows what sharding buys (failure isolation,
// per-channel ordering capacity) and what cross-channel transactions
// cost, while the cohort layer keeps the largest cell's memory within
// a constant factor of the smallest's. All cells fan out across the
// worker pool; the table is identical at any Options.Parallelism.
func ScaleExp(o Options) (string, error) {
	cells := scaleGrid(o.Smoke)
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	builds := make([]Builder, len(cells))
	for i, c := range cells {
		builds[i] = scaleConfig(cc, c)
	}
	results, err := o.RunAll(builds)
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("clients", "channels", "cohort size",
		"goodput (tps)", "tput (tps)", "amp", "e2e lat (s)", "gave up %", "failures %")
	for i, c := range cells {
		res := results[i]
		size := c.clients / scaleCohortTarget
		if size < 1 {
			size = 1
		}
		t.AddRow(c.clients, c.channels, size,
			res.Goodput, res.Throughput, res.RetryAmp,
			res.EndToEndSec, res.GaveUpPct, res.FailurePct)
	}
	return t.String(), nil
}
