package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenFaultsLine renders one locked faults cell with enough
// precision that any drift in the lifecycle machinery, the netem
// fault primitives, the client deadlines or the fault-window
// accounting changes the line.
func goldenFaultsLine(c faultsCell, r Result) string {
	return fmt.Sprintf(
		"%s/%s/%s: total=%.0f committed=%.0f fail=%.4f lat=%.6f tput=%.4f goodput=%.4f amp=%.4f e2e=%.6f gaveup=%.4f eto=%.0f sto=%.0f orphans=%.0f down=%.2f recov=%.6f",
		c.ccName, c.scenario, c.mode.Label,
		r.Total, r.Committed, r.FailurePct, r.LatencySec, r.Throughput,
		r.Goodput, r.RetryAmp, r.EndToEndSec, r.GaveUpPct,
		r.EndorseTOs, r.SubmitTOs, r.Orphans, r.DowntimeSec, r.RecoverySec)
}

// TestGoldenFaultsRows locks the smoke grid of the faults experiment —
// crash and partition scenarios under the backoff and hinted-orderer
// controls on EHR — the way TestGoldenScaleRows locks the scale grid.
// Regenerate intentional changes with
//
//	go test ./internal/core -run TestGoldenFaultsRows -update-golden
//
// and justify the diff in the commit.
func TestGoldenFaultsRows(t *testing.T) {
	cells := faultsGrid(true)
	builds := make([]Builder, len(cells))
	for i, c := range cells {
		cc, err := UseCase(c.ccName)
		if err != nil {
			t.Fatal(err)
		}
		builds[i] = faultsConfig(cc, c)
	}
	o := QuickOptions()
	results, err := o.RunAll(builds)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i, c := range cells {
		lines = append(lines, goldenFaultsLine(c, results[i]))
	}
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "golden_faults.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("faults golden drift line %d:\n got: %s\nwant: %s", i+1, g, w)
		}
	}
}
