// Package core is the HyperLedgerLab experiment harness: cluster
// presets (C1/C2, §4.2), system selection (Fabric 1.4, Fabric++,
// Streamchain, FabricSharp), multi-seed averaged runs, and one
// experiment function per table and figure of the paper's evaluation
// (§5). The CLI (cmd/hyperlab) and the benchmark suite regenerate any
// result through this package, which lives at repro/internal/core
// (the module path is "repro").
//
// Experiments execute on a shared worker pool (see RunAll): every
// (config, seed) cell of a sweep is an independent simulation with
// its own rng, so cells fan out across Options.Parallelism workers
// while tables and figures stay byte-for-byte identical to a
// sequential run — results aggregate in input order, never in
// completion order.
package core

import (
	"fmt"
	"time"

	"repro/internal/chaincode"
	"repro/internal/chaincodes/drm"
	"repro/internal/chaincodes/dv"
	"repro/internal/chaincodes/ehr"
	"repro/internal/chaincodes/scm"
	"repro/internal/fabric"
	"repro/internal/fabricpp"
	"repro/internal/fabricsharp"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/streamchain"
	"repro/internal/workload"
)

// Cluster is one of the paper's two testbeds (§4.2).
type Cluster int

const (
	// C1: 3 workers, 4 peers (2 orgs × 2), 3 orderers, 5 clients.
	C1 Cluster = iota
	// C2: 32 workers, 32 peers (8 orgs × 4), 3 orderers, 25 clients.
	C2
)

// String names the cluster.
func (c Cluster) String() string {
	if c == C2 {
		return "C2"
	}
	return "C1"
}

// Apply sets the cluster topology on a config. C2's larger worker
// pool shows up as a speed factor on fixed per-block costs.
func (c Cluster) Apply(cfg *fabric.Config) {
	switch c {
	case C1:
		cfg.Orgs = 2
		cfg.PeersPerOrg = 2
		cfg.Clients = 5
		cfg.SpeedFactor = 1
	case C2:
		cfg.Orgs = 8
		cfg.PeersPerOrg = 4
		cfg.Clients = 25
		cfg.SpeedFactor = 2.5
	}
}

// System selects one of the four compared Fabric builds (§4.5).
type System int

const (
	// Fabric14 is stock Fabric 1.4.
	Fabric14 System = iota
	// FabricPP is Fabric++ (within-block reordering + early abort).
	FabricPP
	// Streamchain streams transactions one-by-one with a RAM disk.
	Streamchain
	// StreamchainNoRAM is Streamchain's §5.3.3 ablation.
	StreamchainNoRAM
	// FabricSharp is the cross-block OCC scheduler.
	FabricSharp
)

// String names the system like the paper's legends.
func (s System) String() string {
	switch s {
	case FabricPP:
		return "Fabric++"
	case Streamchain:
		return "Streamchain"
	case StreamchainNoRAM:
		return "Streamchain w/o ramdisk"
	case FabricSharp:
		return "FabricSharp"
	default:
		return "Fabric 1.4"
	}
}

// Variant constructs a fresh variant instance for one run.
func (s System) Variant() fabric.Variant {
	switch s {
	case FabricPP:
		return fabricpp.New()
	case Streamchain:
		return streamchain.New()
	case StreamchainNoRAM:
		return streamchain.NewWithoutRAMDisk()
	case FabricSharp:
		return fabricsharp.New()
	default:
		return fabric.Vanilla{}
	}
}

// AllSystems lists the four systems of Fig 26.
func AllSystems() []System {
	return []System{Fabric14, FabricPP, Streamchain, FabricSharp}
}

// CCFactory builds a chaincode and its default workload with a given
// Zipfian skew.
type CCFactory struct {
	Name     string
	New      func() chaincode.Chaincode
	Workload func(skew float64) workload.Generator
}

// UseCase returns the factory for one of the paper's chaincodes
// ("ehr", "dv", "scm", "drm").
func UseCase(name string) (CCFactory, error) {
	switch name {
	case ehr.Name:
		return CCFactory{Name: name,
			New:      func() chaincode.Chaincode { return ehr.New() },
			Workload: ehr.NewWorkload}, nil
	case dv.Name:
		return CCFactory{Name: name,
			New:      func() chaincode.Chaincode { return dv.New() },
			Workload: dv.NewWorkload}, nil
	case scm.Name:
		return CCFactory{Name: name,
			New:      func() chaincode.Chaincode { return scm.New() },
			Workload: scm.NewWorkload}, nil
	case drm.Name:
		return CCFactory{Name: name,
			New:      func() chaincode.Chaincode { return drm.New() },
			Workload: drm.NewWorkload}, nil
	}
	return CCFactory{}, fmt.Errorf("core: unknown chaincode %q", name)
}

// GenChain returns the genChain factory for a workload mix. keys
// overrides the world-state size (0 = the paper's 100,000).
func GenChain(mix gen.Mix, keys int) CCFactory {
	spec := gen.GenChainSpec()
	if keys > 0 {
		spec.Keys = keys
	}
	return CCFactory{
		Name:     spec.Name,
		New:      func() chaincode.Chaincode { return gen.MustChaincode(spec) },
		Workload: func(skew float64) workload.Generator { return gen.NewWorkload(spec, mix, skew) },
	}
}

// Options scales an experiment: virtual send window and seeds.
type Options struct {
	Duration time.Duration
	Drain    time.Duration
	Seeds    []int64
	// GenKeys shrinks genChain's world state for quick runs (0 keeps
	// the paper's 100,000).
	GenKeys int
	// Parallelism caps how many simulations run concurrently across
	// a batch (0 = one worker per CPU). Results are independent of
	// this value: every (config, seed) cell owns its rng and the
	// harness aggregates in input order.
	Parallelism int
	// Progress, when non-nil, receives one line per completed run.
	// Calls are serialized through a single funnel goroutine, so the
	// callback never runs concurrently with itself.
	Progress func(string)
	// Smoke asks experiments with large grids to shrink their sweep to
	// a CI-sized subset (analogous to -benchtime=1x for benchmarks).
	// Row values change; determinism and table structure do not.
	Smoke bool
}

// FullOptions reproduces the paper's regime: 3 virtual minutes, 3
// repetitions (§5).
func FullOptions() Options {
	return Options{Duration: 3 * time.Minute, Drain: time.Minute, Seeds: []int64{1, 2, 3}}
}

// QuickOptions is a fast regime for benchmarks and smoke runs: 30
// virtual seconds, one seed, a 20k-key genChain.
func QuickOptions() Options {
	return Options{Duration: 30 * time.Second, Drain: 30 * time.Second,
		Seeds: []int64{1}, GenKeys: 20000}
}

// SmokeOptions is the tiniest regime: 5 virtual seconds, one seed, a
// 5k-key genChain, and Smoke set so experiments shrink their grids.
// CI uses it to prove every experiment still runs end-to-end.
func SmokeOptions() Options {
	return Options{Duration: 5 * time.Second, Drain: 5 * time.Second,
		Seeds: []int64{1}, GenKeys: 5000, Smoke: true}
}

// Result is a seed-averaged run summary.
type Result struct {
	Total          float64
	Committed      float64
	FailurePct     float64
	EndorsementPct float64
	IntraPct       float64
	InterPct       float64
	MVCCPct        float64
	PhantomPct     float64
	AbortedPct     float64
	LatencySec     float64
	Throughput     float64

	// Effective client-side metrics (the retry subsystem; equal to
	// the chain-level view when clients are fire-and-forget).
	Goodput     float64 // first-submission success throughput, tps
	RetryAmp    float64 // submissions per logical transaction
	EndToEndSec float64 // first submission -> final resolution, seconds
	GaveUpPct   float64 // jobs abandoned by the retry policy, % of jobs

	// Retry-budget and adaptive-policy metrics (zero without them).
	BudgetExhausted float64 // retries dropped on an empty token bucket
	DeferredRetries float64 // retries parked waiting for a budget token
	MaxDeferred     float64 // peak concurrently parked retries
	AdaptiveBackSec float64 // final AIMD backoff level, seconds

	// Orderer-backpressure metrics (zero without Config.Backpressure).
	HintAvg   float64 // mean congestion hint over block cuts, [0,1]
	HintFinal float64 // final smoothed congestion hint, [0,1]
	Paced     float64 // submissions delayed by the backpressure pacer
	PacedSec  float64 // total pacer-added delay, seconds

	// Client-gossip metrics (zero without Config.Gossip).
	GossipMsgs     float64 // gossip messages sent across all clients
	GossipMerges   float64 // received estimates adopted by max-with-decay
	GossipEstAvg   float64 // mean gossip estimate over rounds, [0,1]
	GossipEstFinal float64 // final sampled gossip estimate, [0,1]
	GossipStaleSec float64 // mean staleness of the estimate at use, seconds

	// Split-signal metrics (zero without Config.SplitSignal).
	ConflictEstAvg   float64 // mean conflict estimate over rounds, [0,1]
	ConflictEstFinal float64 // final sampled conflict estimate, [0,1]
	CongestEstAvg    float64 // mean congestion estimate over rounds, [0,1]
	CongestEstFinal  float64 // final sampled congestion estimate, [0,1]

	// Fault-injection metrics (zero without Config.Faults).
	FaultWindows float64 // fault windows opened over the run
	DowntimeSec  float64 // scheduled node downtime, seconds
	EndorseTOs   float64 // client endorsement deadline expiries
	SubmitTOs    float64 // client submission deadline expiries
	Orphans      float64 // txs committed after their client timed out
	RecoverySec  float64 // mean peer post-restart replay latency, seconds
}

// Run executes build(seed) for every seed and averages the reports.
// The build function must produce a complete config except Duration
// and Drain, which the options control. Seeds fan out across the
// worker pool (see RunAll and Options.Parallelism).
func (o Options) Run(build func(seed int64) fabric.Config) (Result, error) {
	results, err := o.RunAll([]Builder{build})
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}

func fromReport(r metrics.Report) Result {
	res := Result{
		Total:            float64(r.Total),
		Committed:        float64(r.Committed),
		FailurePct:       r.FailurePct,
		EndorsementPct:   r.EndorsementPct,
		IntraPct:         r.IntraBlockPct,
		InterPct:         r.InterBlockPct,
		MVCCPct:          r.MVCCPct,
		PhantomPct:       r.PhantomPct,
		AbortedPct:       r.AbortedPct,
		LatencySec:       r.AvgLatency.Seconds(),
		Throughput:       r.Throughput,
		Goodput:          r.Goodput,
		RetryAmp:         r.RetryAmplification,
		EndToEndSec:      r.AvgEndToEnd.Seconds(),
		BudgetExhausted:  float64(r.BudgetExhausted),
		DeferredRetries:  float64(r.DeferredRetries),
		MaxDeferred:      float64(r.MaxDeferredDepth),
		AdaptiveBackSec:  r.AdaptiveBackoffFinal.Seconds(),
		HintAvg:          r.BackpressureHintAvg,
		HintFinal:        r.BackpressureHintFinal,
		Paced:            float64(r.PacedSubmissions),
		PacedSec:         r.TimePaced.Seconds(),
		GossipMsgs:       float64(r.GossipMessages),
		GossipMerges:     float64(r.GossipMerges),
		GossipEstAvg:     r.GossipEstimateAvg,
		GossipEstFinal:   r.GossipEstimateFinal,
		GossipStaleSec:   r.GossipStalenessAvg.Seconds(),
		ConflictEstAvg:   r.ConflictEstAvg,
		ConflictEstFinal: r.ConflictEstFinal,
		CongestEstAvg:    r.CongestEstAvg,
		CongestEstFinal:  r.CongestEstFinal,
		FaultWindows:     float64(r.FaultWindows),
		DowntimeSec:      r.NodeDowntime.Seconds(),
		EndorseTOs:       float64(r.EndorseTimeouts),
		SubmitTOs:        float64(r.SubmitTimeouts),
		Orphans:          float64(r.OrphanedTxs),
		RecoverySec:      r.RecoveryAvg.Seconds(),
	}
	if r.Jobs > 0 {
		res.GaveUpPct = 100 * float64(r.GaveUp) / float64(r.Jobs)
	}
	return res
}

func (r Result) add(o Result) Result {
	r.Total += o.Total
	r.Committed += o.Committed
	r.FailurePct += o.FailurePct
	r.EndorsementPct += o.EndorsementPct
	r.IntraPct += o.IntraPct
	r.InterPct += o.InterPct
	r.MVCCPct += o.MVCCPct
	r.PhantomPct += o.PhantomPct
	r.AbortedPct += o.AbortedPct
	r.LatencySec += o.LatencySec
	r.Throughput += o.Throughput
	r.Goodput += o.Goodput
	r.RetryAmp += o.RetryAmp
	r.EndToEndSec += o.EndToEndSec
	r.GaveUpPct += o.GaveUpPct
	r.BudgetExhausted += o.BudgetExhausted
	r.DeferredRetries += o.DeferredRetries
	r.MaxDeferred += o.MaxDeferred
	r.AdaptiveBackSec += o.AdaptiveBackSec
	r.HintAvg += o.HintAvg
	r.HintFinal += o.HintFinal
	r.Paced += o.Paced
	r.PacedSec += o.PacedSec
	r.GossipMsgs += o.GossipMsgs
	r.GossipMerges += o.GossipMerges
	r.GossipEstAvg += o.GossipEstAvg
	r.GossipEstFinal += o.GossipEstFinal
	r.GossipStaleSec += o.GossipStaleSec
	r.ConflictEstAvg += o.ConflictEstAvg
	r.ConflictEstFinal += o.ConflictEstFinal
	r.CongestEstAvg += o.CongestEstAvg
	r.CongestEstFinal += o.CongestEstFinal
	r.FaultWindows += o.FaultWindows
	r.DowntimeSec += o.DowntimeSec
	r.EndorseTOs += o.EndorseTOs
	r.SubmitTOs += o.SubmitTOs
	r.Orphans += o.Orphans
	r.RecoverySec += o.RecoverySec
	return r
}

func (r Result) scale(f float64) Result {
	r.Total *= f
	r.Committed *= f
	r.FailurePct *= f
	r.EndorsementPct *= f
	r.IntraPct *= f
	r.InterPct *= f
	r.MVCCPct *= f
	r.PhantomPct *= f
	r.AbortedPct *= f
	r.LatencySec *= f
	r.Throughput *= f
	r.Goodput *= f
	r.RetryAmp *= f
	r.EndToEndSec *= f
	r.GaveUpPct *= f
	r.BudgetExhausted *= f
	r.DeferredRetries *= f
	r.MaxDeferred *= f
	r.AdaptiveBackSec *= f
	r.HintAvg *= f
	r.HintFinal *= f
	r.Paced *= f
	r.PacedSec *= f
	r.GossipMsgs *= f
	r.GossipMerges *= f
	r.GossipEstAvg *= f
	r.GossipEstFinal *= f
	r.GossipStaleSec *= f
	r.ConflictEstAvg *= f
	r.ConflictEstFinal *= f
	r.CongestEstAvg *= f
	r.CongestEstFinal *= f
	r.FaultWindows *= f
	r.DowntimeSec *= f
	r.EndorseTOs *= f
	r.SubmitTOs *= f
	r.Orphans *= f
	r.RecoverySec *= f
	return r
}

// baseConfig assembles the default config for a chaincode factory on a
// cluster with the given skew.
func baseConfig(cluster Cluster, cc CCFactory, skew float64, sys System) func(int64) fabric.Config {
	return func(seed int64) fabric.Config {
		cfg := fabric.DefaultConfig()
		cluster.Apply(&cfg)
		cfg.Chaincode = cc.New()
		cfg.Workload = cc.Workload(skew)
		cfg.Variant = sys.Variant()
		return cfg
	}
}
