package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fabric"
)

// goldenCotuneCells is the locked retry-cotune slab: the EHR rows on
// vanilla Fabric 1.4 at the Table 3 block size, one per retry-control
// strategy, under QuickOptions. It pins exactly the budget/adaptive
// code paths the QuickOptions golden grid (fire-and-forget clients)
// cannot see.
func goldenCotuneCells() []CotunePolicy {
	return CotunePolicies()
}

// goldenCotuneLine renders one cell with enough precision that any
// drift in the retry, budget, AIMD or (rng-neutral) backpressure
// plumbing changes the line. The paced/hint columns must stay zero:
// the cotune grid never enables Config.Backpressure, so any non-zero
// value — or any shift in the other columns — means the backpressure
// subsystem stopped being inert when disabled.
func goldenCotuneLine(pol CotunePolicy, r Result) string {
	return fmt.Sprintf(
		"ehr/%s/bs100: goodput=%.4f tput=%.4f amp=%.4f e2e=%.6f exhausted=%.0f deferred=%.0f maxdefer=%.0f aimd=%.6f gaveup=%.4f fail=%.4f paced=%.0f pacedsec=%.6f hint=%.6f",
		pol.Label, r.Goodput, r.Throughput, r.RetryAmp, r.EndToEndSec,
		r.BudgetExhausted, r.DeferredRetries, r.MaxDeferred,
		r.AdaptiveBackSec, r.GaveUpPct, r.FailurePct,
		r.Paced, r.PacedSec, r.HintFinal)
}

// TestGoldenCotuneRow locks one retry-cotune row per retry-control
// strategy (EHR, Fabric 1.4, block size 100, QuickOptions) so drift
// in the budget/adaptive paths is caught even when the
// fire-and-forget golden grid stays clean. Regenerate intentional
// changes with
//
//	go test ./internal/core -run TestGoldenCotuneRow -update-golden
//
// and justify the diff in the commit.
func TestGoldenCotuneRow(t *testing.T) {
	pols := goldenCotuneCells()
	cc, err := UseCase("ehr")
	if err != nil {
		t.Fatal(err)
	}
	builds := make([]Builder, len(pols))
	for i, pol := range pols {
		pol := pol
		builds[i] = func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, 1, Fabric14)(seed)
			cfg.BlockSize = 100
			cfg.Retry = pol.Policy
			cfg.RetryBudget = pol.Budget
			return cfg
		}
	}
	results, err := QuickOptions().RunAll(builds)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i, pol := range pols {
		lines = append(lines, goldenCotuneLine(pol, results[i]))
	}
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "golden_cotune.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("cotune golden drift line %d:\n got: %s\nwant: %s", i+1, g, w)
		}
	}
}
