package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gen"
	"repro/internal/metrics"
)

// Fig17 compares Fabric 1.4 and Fabric++ across block sizes (EHR):
// total failures and endorsement failures.
func Fig17(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("system", "block size", "failures %", "endorsement %")
	for _, sys := range []System{Fabric14, FabricPP} {
		for _, bs := range []int{10, 50, 100} {
			sys, bs := sys, bs
			res, err := o.Run(func(seed int64) fabric.Config {
				cfg := baseConfig(C1, cc, 1, sys)(seed)
				cfg.BlockSize = bs
				return cfg
			})
			if err != nil {
				return "", err
			}
			t.AddRow(sys, bs, res.FailurePct, res.EndorsementPct)
		}
	}
	return t.String(), nil
}

// Fig18 compares Fabric 1.4 and Fabric++ across the four use-case
// chaincodes: latency and total failures. DV and SCM carry very large
// range reads, which make Fabric++'s conflict graphs explode.
func Fig18(o Options) (string, error) {
	t := metrics.NewTable("chaincode", "system", "avg latency (s)", "failures %")
	for _, ccName := range []string{"ehr", "dv", "scm", "drm"} {
		cc, err := UseCase(ccName)
		if err != nil {
			return "", err
		}
		for _, sys := range []System{Fabric14, FabricPP} {
			res, err := o.Run(baseConfig(C1, cc, 1, sys))
			if err != nil {
				return "", err
			}
			t.AddRow(ccName, sys, fmt.Sprintf("%.2f", res.LatencySec), res.FailurePct)
		}
	}
	return t.String(), nil
}

// variantWorkloadSweep prints failures per workload mix and per skew
// for one system vs stock Fabric (Figs 19, 22, 25).
func variantWorkloadSweep(o Options, sys System, mixes []string) (string, error) {
	t := metrics.NewTable("workload", "system", "failures %")
	for _, wl := range mixes {
		mix, err := gen.MixByName(wl)
		if err != nil {
			return "", err
		}
		for _, s := range []System{Fabric14, sys} {
			cc := GenChain(mix, o.GenKeys)
			res, err := o.Run(baseConfig(C2, cc, 1, s))
			if err != nil {
				return "", err
			}
			t.AddRow(wl, s, res.FailurePct)
		}
	}
	skewT := metrics.NewTable("zipf skew", "system", "failures %")
	for _, skew := range []float64{0, 1, 2} {
		for _, s := range []System{Fabric14, sys} {
			cc := GenChain(gen.UniformRU, o.GenKeys)
			res, err := o.Run(baseConfig(C2, cc, skew, s))
			if err != nil {
				return "", err
			}
			skewT.AddRow(skew, s, res.FailurePct)
		}
	}
	return t.String() + "\n" + skewT.String(), nil
}

// Fig19 compares Fabric++ across workloads and skews.
func Fig19(o Options) (string, error) {
	return variantWorkloadSweep(o, FabricPP, []string{"RH", "IH", "UH", "RaH", "DH"})
}

// Fig20 compares Streamchain and Fabric 1.4 at 10/50/100 tps on C1:
// latency, endorsement failures, MVCC conflicts.
func Fig20(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("rate (tps)", "system", "avg latency (s)", "endorsement %", "MVCC %")
	for _, rate := range []float64{10, 50, 100} {
		for _, sys := range []System{Fabric14, Streamchain} {
			rate, sys := rate, sys
			res, err := o.Run(func(seed int64) fabric.Config {
				cfg := baseConfig(C1, cc, 1, sys)(seed)
				cfg.Rate = rate
				cfg.BlockSize = 10
				return cfg
			})
			if err != nil {
				return "", err
			}
			t.AddRow(rate, sys, fmt.Sprintf("%.2f", res.LatencySec),
				res.EndorsementPct, res.MVCCPct)
		}
	}
	return t.String(), nil
}

// Fig21 prints committed transaction throughput at high rates: 150
// and 200 tps on C1, 100 tps on C2.
func Fig21(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("cluster", "rate (tps)", "system", "committed throughput (tps)")
	type point struct {
		cluster Cluster
		rate    float64
	}
	for _, pt := range []point{{C1, 150}, {C1, 200}, {C2, 100}} {
		for _, sys := range []System{Fabric14, Streamchain} {
			pt, sys := pt, sys
			res, err := o.Run(func(seed int64) fabric.Config {
				cfg := baseConfig(pt.cluster, cc, 1, sys)(seed)
				cfg.Rate = pt.rate
				cfg.BlockSize = 100
				return cfg
			})
			if err != nil {
				return "", err
			}
			t.AddRow(pt.cluster, pt.rate, sys, res.Throughput)
		}
	}
	return t.String(), nil
}

// Fig22 compares Streamchain across workloads and skews (50 tps, C2).
func Fig22(o Options) (string, error) {
	t := metrics.NewTable("workload", "system", "failures %")
	for _, wl := range []string{"RH", "IH", "UH", "RaH", "DH"} {
		mix, err := gen.MixByName(wl)
		if err != nil {
			return "", err
		}
		for _, s := range []System{Fabric14, Streamchain} {
			s := s
			cc := GenChain(mix, o.GenKeys)
			res, err := o.Run(func(seed int64) fabric.Config {
				cfg := baseConfig(C2, cc, 1, s)(seed)
				cfg.Rate = 50
				return cfg
			})
			if err != nil {
				return "", err
			}
			t.AddRow(wl, s, res.FailurePct)
		}
	}
	skewT := metrics.NewTable("zipf skew", "system", "failures %")
	for _, skew := range []float64{0, 1, 2} {
		for _, s := range []System{Fabric14, Streamchain} {
			s, skew := s, skew
			cc := GenChain(gen.UniformRU, o.GenKeys)
			res, err := o.Run(func(seed int64) fabric.Config {
				cfg := baseConfig(C2, cc, skew, s)(seed)
				cfg.Rate = 50
				return cfg
			})
			if err != nil {
				return "", err
			}
			skewT.AddRow(skew, s, res.FailurePct)
		}
	}
	return t.String() + "\n" + skewT.String(), nil
}

// Fig23 is the RAM-disk ablation: Streamchain with and without it,
// and Fabric 1.4, at 10 and 50 tps.
func Fig23(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("rate (tps)", "system", "avg latency (s)", "endorsement %", "MVCC %")
	for _, rate := range []float64{10, 50} {
		for _, sys := range []System{Fabric14, Streamchain, StreamchainNoRAM} {
			rate, sys := rate, sys
			res, err := o.Run(func(seed int64) fabric.Config {
				cfg := baseConfig(C1, cc, 1, sys)(seed)
				cfg.Rate = rate
				cfg.BlockSize = 10
				return cfg
			})
			if err != nil {
				return "", err
			}
			t.AddRow(rate, sys, fmt.Sprintf("%.2f", res.LatencySec),
				res.EndorsementPct, res.MVCCPct)
		}
	}
	return t.String(), nil
}

// Fig24 compares FabricSharp and Fabric 1.4 at 10/50/100 tps: total
// failures, endorsement failures and committed throughput.
func Fig24(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("rate (tps)", "system", "failures %", "endorsement %", "committed tput (tps)")
	for _, rate := range []float64{10, 50, 100} {
		for _, sys := range []System{Fabric14, FabricSharp} {
			rate, sys := rate, sys
			res, err := o.Run(func(seed int64) fabric.Config {
				cfg := baseConfig(C1, cc, 1, sys)(seed)
				cfg.Rate = rate
				return cfg
			})
			if err != nil {
				return "", err
			}
			t.AddRow(rate, sys, res.FailurePct, res.EndorsementPct, res.Throughput)
		}
	}
	return t.String(), nil
}

// Fig25 compares FabricSharp across workloads (no range-heavy —
// FabricSharp does not support range queries) and skews.
func Fig25(o Options) (string, error) {
	return variantWorkloadSweep(o, FabricSharp, []string{"RH", "IH", "UH", "DH"})
}

// Fig26 compares all four systems on the C1 cluster (EHR): latency,
// endorsement failures and MVCC conflicts at 10/50/100 tps.
func Fig26(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("rate (tps)", "system", "avg latency (s)", "endorsement %", "MVCC %", "failures %")
	for _, rate := range []float64{10, 50, 100} {
		for _, sys := range AllSystems() {
			rate, sys := rate, sys
			res, err := o.Run(func(seed int64) fabric.Config {
				cfg := baseConfig(C1, cc, 1, sys)(seed)
				cfg.Rate = rate
				return cfg
			})
			if err != nil {
				return "", err
			}
			t.AddRow(rate, sys, fmt.Sprintf("%.2f", res.LatencySec),
				res.EndorsementPct, res.MVCCPct, res.FailurePct)
		}
	}
	return t.String(), nil
}

// Experiment is a runnable reproduction of one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (string, error)
}

// Experiments lists every reproducible table and figure, in paper
// order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Chaincode functions and operations", Table2},
		{"table4", "Effect of database type (genChain workloads)", Table4},
		{"fig4", "Best block size at different transaction arrival rates", Fig4},
		{"fig5", "Minimum and maximum transaction failures", Fig5},
		{"fig6", "Latency and throughput at different block size", Fig6},
		{"fig7", "Inter/intra-block MVCC conflicts vs block size", Fig7},
		{"fig8", "Inter/intra-block MVCC conflicts vs arrival rate", Fig8},
		{"fig9", "Endorsement policy failures vs block size", Fig9},
		{"fig10", "Phantom read conflicts vs block size (SCM)", Fig10},
		{"fig11", "Effect of database type on latency and failures (EHR)", Fig11},
		{"fig12", "Effect of the number of organizations", Fig12},
		{"fig13", "Effect of endorsement policies P0-P3", Fig13},
		{"fig14", "Effect of workload mix", Fig14},
		{"fig15", "Effect of Zipfian key skew", Fig15},
		{"fig16", "Fabric 1.4 with and without network delay", Fig16},
		{"fig17", "Fabric++ vs Fabric 1.4: effect of block size", Fig17},
		{"fig18", "Fabric++ vs Fabric 1.4: effect of chaincodes", Fig18},
		{"fig19", "Fabric++ vs Fabric 1.4: workloads and skew", Fig19},
		{"fig20", "Streamchain vs Fabric 1.4: latency and failures", Fig20},
		{"fig21", "Streamchain vs Fabric 1.4: committed throughput", Fig21},
		{"fig22", "Streamchain vs Fabric 1.4: workloads and skew", Fig22},
		{"fig23", "Streamchain with and without a RAM disk", Fig23},
		{"fig24", "FabricSharp vs Fabric 1.4: failures and throughput", Fig24},
		{"fig25", "FabricSharp vs Fabric 1.4: workloads and skew", Fig25},
		{"fig26", "Comparison of all Fabric systems (C1)", Fig26},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}
