package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gen"
	"repro/internal/metrics"
)

// rateSysCell is one cell of the rate × system grids shared by the
// variant-comparison figures (Figs 20, 23, 24, 26).
type rateSysCell struct {
	rate float64
	sys  System
}

// rateSysGrid enumerates rates × systems in row order.
func rateSysGrid(rates []float64, systems []System) []rateSysCell {
	var cells []rateSysCell
	for _, rate := range rates {
		for _, sys := range systems {
			cells = append(cells, rateSysCell{rate, sys})
		}
	}
	return cells
}

// Fig17 compares Fabric 1.4 and Fabric++ across block sizes (EHR):
// total failures and endorsement failures.
func Fig17(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("system", "block size", "failures %", "endorsement %")
	type cell struct {
		sys System
		bs  int
	}
	var cells []cell
	for _, sys := range []System{Fabric14, FabricPP} {
		for _, bs := range []int{10, 50, 100} {
			cells = append(cells, cell{sys, bs})
		}
	}
	results, err := sweep(o, cells, func(c cell) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, 1, c.sys)(seed)
			cfg.BlockSize = c.bs
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, c := range cells {
		t.AddRow(c.sys, c.bs, results[i].FailurePct, results[i].EndorsementPct)
	}
	return t.String(), nil
}

// Fig18 compares Fabric 1.4 and Fabric++ across the four use-case
// chaincodes: latency and total failures. DV and SCM carry very large
// range reads, which make Fabric++'s conflict graphs explode.
func Fig18(o Options) (string, error) {
	t := metrics.NewTable("chaincode", "system", "avg latency (s)", "failures %")
	type cell struct {
		ccName string
		sys    System
	}
	var cells []cell
	var builds []Builder
	for _, ccName := range []string{"ehr", "dv", "scm", "drm"} {
		cc, err := UseCase(ccName)
		if err != nil {
			return "", err
		}
		for _, sys := range []System{Fabric14, FabricPP} {
			cells = append(cells, cell{ccName, sys})
			builds = append(builds, baseConfig(C1, cc, 1, sys))
		}
	}
	results, err := o.RunAll(builds)
	if err != nil {
		return "", err
	}
	for i, c := range cells {
		t.AddRow(c.ccName, c.sys, fmt.Sprintf("%.2f", results[i].LatencySec), results[i].FailurePct)
	}
	return t.String(), nil
}

// variantWorkloadSweep prints failures per workload mix and per skew
// for one system vs stock Fabric (Figs 19, 22, 25). rate overrides
// the arrival rate when positive (0 keeps the Table 3 default).
func variantWorkloadSweep(o Options, sys System, mixes []string, rate float64) (string, error) {
	t := metrics.NewTable("workload", "system", "failures %")
	type mixCell struct {
		wl string
		s  System
	}
	var mixCells []mixCell
	var builds []Builder
	for _, wl := range mixes {
		mix, err := gen.MixByName(wl)
		if err != nil {
			return "", err
		}
		for _, s := range []System{Fabric14, sys} {
			s := s
			cc := GenChain(mix, o.GenKeys)
			mixCells = append(mixCells, mixCell{wl, s})
			builds = append(builds, func(seed int64) fabric.Config {
				cfg := baseConfig(C2, cc, 1, s)(seed)
				if rate > 0 {
					cfg.Rate = rate
				}
				return cfg
			})
		}
	}
	type skewCell struct {
		skew float64
		s    System
	}
	var skewCells []skewCell
	for _, skew := range []float64{0, 1, 2} {
		for _, s := range []System{Fabric14, sys} {
			s, skew := s, skew
			cc := GenChain(gen.UniformRU, o.GenKeys)
			skewCells = append(skewCells, skewCell{skew, s})
			builds = append(builds, func(seed int64) fabric.Config {
				cfg := baseConfig(C2, cc, skew, s)(seed)
				if rate > 0 {
					cfg.Rate = rate
				}
				return cfg
			})
		}
	}
	results, err := o.RunAll(builds)
	if err != nil {
		return "", err
	}
	for i, c := range mixCells {
		t.AddRow(c.wl, c.s, results[i].FailurePct)
	}
	skewT := metrics.NewTable("zipf skew", "system", "failures %")
	for i, c := range skewCells {
		skewT.AddRow(c.skew, c.s, results[len(mixCells)+i].FailurePct)
	}
	return t.String() + "\n" + skewT.String(), nil
}

// Fig19 compares Fabric++ across workloads and skews.
func Fig19(o Options) (string, error) {
	return variantWorkloadSweep(o, FabricPP, []string{"RH", "IH", "UH", "RaH", "DH"}, 0)
}

// Fig20 compares Streamchain and Fabric 1.4 at 10/50/100 tps on C1:
// latency, endorsement failures, MVCC conflicts.
func Fig20(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("rate (tps)", "system", "avg latency (s)", "endorsement %", "MVCC %")
	cells := rateSysGrid([]float64{10, 50, 100}, []System{Fabric14, Streamchain})
	results, err := sweep(o, cells, func(c rateSysCell) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, 1, c.sys)(seed)
			cfg.Rate = c.rate
			cfg.BlockSize = 10
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, c := range cells {
		t.AddRow(c.rate, c.sys, fmt.Sprintf("%.2f", results[i].LatencySec),
			results[i].EndorsementPct, results[i].MVCCPct)
	}
	return t.String(), nil
}

// Fig21 prints committed transaction throughput at high rates: 150
// and 200 tps on C1, 100 tps on C2.
func Fig21(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("cluster", "rate (tps)", "system", "committed throughput (tps)")
	type cell struct {
		cluster Cluster
		rate    float64
		sys     System
	}
	var cells []cell
	for _, pt := range []cell{{cluster: C1, rate: 150}, {cluster: C1, rate: 200}, {cluster: C2, rate: 100}} {
		for _, sys := range []System{Fabric14, Streamchain} {
			cells = append(cells, cell{pt.cluster, pt.rate, sys})
		}
	}
	results, err := sweep(o, cells, func(c cell) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(c.cluster, cc, 1, c.sys)(seed)
			cfg.Rate = c.rate
			cfg.BlockSize = 100
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, c := range cells {
		t.AddRow(c.cluster, c.rate, c.sys, results[i].Throughput)
	}
	return t.String(), nil
}

// Fig22 compares Streamchain across workloads and skews (50 tps, C2).
func Fig22(o Options) (string, error) {
	return variantWorkloadSweep(o, Streamchain, []string{"RH", "IH", "UH", "RaH", "DH"}, 50)
}

// Fig23 is the RAM-disk ablation: Streamchain with and without it,
// and Fabric 1.4, at 10 and 50 tps.
func Fig23(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("rate (tps)", "system", "avg latency (s)", "endorsement %", "MVCC %")
	cells := rateSysGrid([]float64{10, 50}, []System{Fabric14, Streamchain, StreamchainNoRAM})
	results, err := sweep(o, cells, func(c rateSysCell) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, 1, c.sys)(seed)
			cfg.Rate = c.rate
			cfg.BlockSize = 10
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, c := range cells {
		t.AddRow(c.rate, c.sys, fmt.Sprintf("%.2f", results[i].LatencySec),
			results[i].EndorsementPct, results[i].MVCCPct)
	}
	return t.String(), nil
}

// Fig24 compares FabricSharp and Fabric 1.4 at 10/50/100 tps: total
// failures, endorsement failures and committed throughput.
func Fig24(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("rate (tps)", "system", "failures %", "endorsement %", "committed tput (tps)")
	cells := rateSysGrid([]float64{10, 50, 100}, []System{Fabric14, FabricSharp})
	results, err := sweep(o, cells, func(c rateSysCell) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, 1, c.sys)(seed)
			cfg.Rate = c.rate
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, c := range cells {
		t.AddRow(c.rate, c.sys, results[i].FailurePct, results[i].EndorsementPct, results[i].Throughput)
	}
	return t.String(), nil
}

// Fig25 compares FabricSharp across workloads (no range-heavy —
// FabricSharp does not support range queries) and skews.
func Fig25(o Options) (string, error) {
	return variantWorkloadSweep(o, FabricSharp, []string{"RH", "IH", "UH", "DH"}, 0)
}

// Fig26 compares all four systems on the C1 cluster (EHR): latency,
// endorsement failures and MVCC conflicts at 10/50/100 tps.
func Fig26(o Options) (string, error) {
	cc, err := UseCase("ehr")
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("rate (tps)", "system", "avg latency (s)", "endorsement %", "MVCC %", "failures %")
	cells := rateSysGrid([]float64{10, 50, 100}, AllSystems())
	results, err := sweep(o, cells, func(c rateSysCell) Builder {
		return func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, 1, c.sys)(seed)
			cfg.Rate = c.rate
			return cfg
		}
	})
	if err != nil {
		return "", err
	}
	for i, c := range cells {
		t.AddRow(c.rate, c.sys, fmt.Sprintf("%.2f", results[i].LatencySec),
			results[i].EndorsementPct, results[i].MVCCPct, results[i].FailurePct)
	}
	return t.String(), nil
}

// Experiment is a runnable reproduction of one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (string, error)
}

// Experiments lists every reproducible table and figure, in paper
// order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Chaincode functions and operations", Table2},
		{"table4", "Effect of database type (genChain workloads)", Table4},
		{"fig4", "Best block size at different transaction arrival rates", Fig4},
		{"fig5", "Minimum and maximum transaction failures", Fig5},
		{"fig6", "Latency and throughput at different block size", Fig6},
		{"fig7", "Inter/intra-block MVCC conflicts vs block size", Fig7},
		{"fig8", "Inter/intra-block MVCC conflicts vs arrival rate", Fig8},
		{"fig9", "Endorsement policy failures vs block size", Fig9},
		{"fig10", "Phantom read conflicts vs block size (SCM)", Fig10},
		{"fig11", "Effect of database type on latency and failures (EHR)", Fig11},
		{"fig12", "Effect of the number of organizations", Fig12},
		{"fig13", "Effect of endorsement policies P0-P3", Fig13},
		{"fig14", "Effect of workload mix", Fig14},
		{"fig15", "Effect of Zipfian key skew", Fig15},
		{"fig16", "Fabric 1.4 with and without network delay", Fig16},
		{"fig17", "Fabric++ vs Fabric 1.4: effect of block size", Fig17},
		{"fig18", "Fabric++ vs Fabric 1.4: effect of chaincodes", Fig18},
		{"fig19", "Fabric++ vs Fabric 1.4: workloads and skew", Fig19},
		{"fig20", "Streamchain vs Fabric 1.4: latency and failures", Fig20},
		{"fig21", "Streamchain vs Fabric 1.4: committed throughput", Fig21},
		{"fig22", "Streamchain vs Fabric 1.4: workloads and skew", Fig22},
		{"fig23", "Streamchain with and without a RAM disk", Fig23},
		{"fig24", "FabricSharp vs Fabric 1.4: failures and throughput", Fig24},
		{"fig25", "FabricSharp vs Fabric 1.4: workloads and skew", Fig25},
		{"fig26", "Comparison of all Fabric systems (C1)", Fig26},
		{"retry-policies", "Client retry policies: goodput, amplification, end-to-end cost", RetryPoliciesExp},
		{"retry-cotune", "Block size × backoff co-tuning: static vs adaptive vs budgeted, Fabric 1.4 vs Fabric++", RetryCotuneExp},
		{"retry-coordination", "Coordinated retry control: client-local AIMD vs orderer-hinted vs gossip-hinted vs both", RetryCoordinationExp},
		{"scale", "Million-client scale: cohort drivers × multi-channel sharding at fixed load", ScaleExp},
		{"faults", "Fault injection: crash/partition/flaky/slowdb scenarios × retry coordination mode", FaultsExp},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}
