package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/statedb"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_quick.txt from the current implementation")

// goldenCells enumerates the locked grid: the four use-case
// chaincodes on both database backends under QuickOptions.
func goldenCells() []struct {
	cc   string
	kind statedb.Kind
} {
	var cells []struct {
		cc   string
		kind statedb.Kind
	}
	for _, cc := range []string{"ehr", "dv", "scm", "drm"} {
		for _, kind := range []statedb.Kind{statedb.LevelDB, statedb.CouchDB} {
			cells = append(cells, struct {
				cc   string
				kind statedb.Kind
			}{cc, kind})
		}
	}
	return cells
}

// goldenLine renders one cell's result with enough precision that any
// behavioural drift — failure mix, latency, throughput, effective
// metrics — changes the line.
func goldenLine(cc string, kind statedb.Kind, r Result) string {
	return fmt.Sprintf(
		"%s/%s: total=%.0f committed=%.0f fail=%.4f endorse=%.4f intra=%.4f inter=%.4f phantom=%.4f aborted=%.4f lat=%.6f tput=%.4f goodput=%.4f amp=%.4f e2e=%.6f",
		cc, kind, r.Total, r.Committed, r.FailurePct, r.EndorsementPct,
		r.IntraPct, r.InterPct, r.PhantomPct, r.AbortedPct,
		r.LatencySec, r.Throughput, r.Goodput, r.RetryAmp, r.EndToEndSec)
}

// TestGoldenQuickReports locks the QuickOptions reports of all four
// use-case chaincodes on LevelDB and CouchDB. A future refactor that
// shifts any failure percentage, latency, throughput or effective
// metric fails this test; if the shift is intended, regenerate with
//
//	go test ./internal/core -run TestGoldenQuickReports -update-golden
//
// and justify the diff in the commit.
func TestGoldenQuickReports(t *testing.T) {
	cells := goldenCells()
	builds := make([]Builder, len(cells))
	for i, c := range cells {
		cc, err := UseCase(c.cc)
		if err != nil {
			t.Fatal(err)
		}
		kind := c.kind
		builds[i] = func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, 1, Fabric14)(seed)
			cfg.DBKind = kind
			return cfg
		}
	}
	results, err := QuickOptions().RunAll(builds)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i, c := range cells {
		lines = append(lines, goldenLine(c.cc, c.kind, results[i]))
	}
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "golden_quick.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("golden drift line %d:\n got: %s\nwant: %s", i+1, g, w)
		}
	}
}
