package core

import (
	"time"

	"repro/internal/fabric"
	"repro/internal/metrics"
)

// CoordinationPolicy is one rung of the coordination ladder compared
// by the retry-coordination experiment: a named combination of a
// retry policy, an optional per-client budget, and the optional
// orderer-driven backpressure signal.
type CoordinationPolicy struct {
	Label        string
	Policy       fabric.RetryPolicy
	Budget       *fabric.RetryBudget
	Backpressure *fabric.Backpressure
}

// CoordinationPolicies returns the four retry-control strategies the
// coordination study compares, all capped at 5 submissions so grids
// stay comparable with retry-cotune:
//
//   - "aimd": the PR-3 client-local AIMD controller — each client
//     watches only its own windowed failure rate;
//   - "budgeted": static exponential backoff gated by a drop-mode
//     token bucket (1 token/s, burst 3 per client) — still
//     client-local, but the duplicate load is bounded outright;
//   - "hinted": the orderer-driven BackpressurePolicy — every client
//     backs off from the *shared* congestion hint the ordering
//     service stamps onto commit events, with the pacer also
//     stretching resubmission delays by hint×gain;
//   - "hinted+budgeted": the shared signal and the drop-mode bucket
//     together — coordination plus a hard bound.
func CoordinationPolicies() []CoordinationPolicy {
	staticBackoff := fabric.ExponentialBackoff{
		Initial:     200 * time.Millisecond,
		Cap:         2 * time.Second,
		MaxAttempts: 5,
		Jitter:      0.2,
	}
	budget := &fabric.RetryBudget{RefillPerSec: 1, Burst: 3, DropOnEmpty: true}
	hinted := fabric.BackpressurePolicy{
		Floor:       100 * time.Millisecond,
		Ceiling:     4 * time.Second,
		MaxAttempts: 5,
		Jitter:      0.2,
	}
	signal := &fabric.Backpressure{} // documented defaults: s0.5, 1s gain, 2s max pause
	return []CoordinationPolicy{
		{"aimd", fabric.AdaptivePolicy{
			Floor:       100 * time.Millisecond,
			Ceiling:     4 * time.Second,
			Increase:    2,
			Decrease:    50 * time.Millisecond,
			Window:      32,
			Target:      0.1,
			MaxAttempts: 5,
			Jitter:      0.2,
		}, nil, nil},
		{"budgeted", staticBackoff, budget, nil},
		{"hinted", hinted, nil, signal},
		{"hinted+budgeted", hinted, budget, signal},
	}
}

// CoordinationBlockSizes is the block-size axis of the coordination
// study, matching retry-cotune so the two grids line up.
var CoordinationBlockSizes = []int{50, 100}

// coordinationSystems is the variant axis: does Fabric++'s early
// abort still matter once clients share a congestion signal?
var coordinationSystems = []System{Fabric14, FabricPP}

// coordinationCell is one cell of the retry-coordination grid.
type coordinationCell struct {
	ccName string
	sys    System
	pol    CoordinationPolicy
	bs     int
}

// coordinationGrid enumerates the sweep in deterministic row order:
// chaincode, system, policy, block size. Smoke mode keeps only the
// EHR rows so CI can run the experiment end-to-end in seconds.
func coordinationGrid(smoke bool) []coordinationCell {
	ccs := []string{"ehr", "dv", "scm", "drm"}
	if smoke {
		ccs = []string{"ehr"}
	}
	var cells []coordinationCell
	for _, ccName := range ccs {
		for _, sys := range coordinationSystems {
			for _, pol := range CoordinationPolicies() {
				for _, bs := range CoordinationBlockSizes {
					cells = append(cells, coordinationCell{ccName, sys, pol, bs})
				}
			}
		}
	}
	return cells
}

// RetryCoordinationExp answers the ROADMAP's coordination question
// head-to-head: the AIMD controllers of retry-cotune are per-client
// and cannot see orderer congestion until their own transactions
// fail, while an orderer-driven backpressure hint in the commit event
// — the SDK-level flow control a real deployment would use — lets
// every client back off from the same signal at once. The experiment
// sweeps retry-control strategy {client-local AIMD, budgeted,
// orderer-hinted, hinted+budgeted} × block size × variant {Fabric
// 1.4, Fabric++} over the four use-case chaincodes on C1 at the
// default skew.
//
// Columns: goodput (first-submission success throughput), committed
// throughput, retry amplification, end-to-end latency including
// resubmissions and pacing, time spent paced by the shared signal,
// the final smoothed congestion hint, budget exhaustions, give-up
// rate and chain-level failure rate. All cells fan out across the
// worker pool; the table is byte-for-byte identical at any
// Options.Parallelism.
func RetryCoordinationExp(o Options) (string, error) {
	cells := coordinationGrid(o.Smoke)
	builds := make([]Builder, len(cells))
	for i, c := range cells {
		cc, err := UseCase(c.ccName)
		if err != nil {
			return "", err
		}
		c := c
		builds[i] = func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, 1, c.sys)(seed)
			cfg.BlockSize = c.bs
			cfg.Retry = c.pol.Policy
			cfg.RetryBudget = c.pol.Budget
			cfg.Backpressure = c.pol.Backpressure
			return cfg
		}
	}
	results, err := o.RunAll(builds)
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("chaincode", "system", "control", "block",
		"goodput (tps)", "tput (tps)", "amp", "e2e lat (s)",
		"paced (s)", "hint", "exhausted", "gave up %", "failures %")
	for i, c := range cells {
		res := results[i]
		t.AddRow(c.ccName, c.sys, c.pol.Label, c.bs,
			res.Goodput, res.Throughput, res.RetryAmp, res.EndToEndSec,
			res.PacedSec, res.HintFinal, res.BudgetExhausted,
			res.GaveUpPct, res.FailurePct)
	}
	return t.String(), nil
}
