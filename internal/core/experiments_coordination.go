package core

import (
	"time"

	"repro/internal/fabric"
	"repro/internal/metrics"
)

// CoordinationPolicy is one rung of the coordination ladder compared
// by the retry-coordination experiment: a named combination of a
// retry policy, an optional per-client budget, the optional
// orderer-driven backpressure signal, the optional client-to-client
// gossip signal, and the hint source that selects which of the two
// produces the hint clients act on.
type CoordinationPolicy struct {
	Label        string
	Policy       fabric.RetryPolicy
	Budget       *fabric.RetryBudget
	Backpressure *fabric.Backpressure
	Gossip       *fabric.Gossip
	HintSource   fabric.HintSource
	// Split, when non-nil, classifies outcomes into conflict vs
	// congestion components instead of the scalar failed/ok signal
	// (Config.SplitSignal): conflict drives backoff, congestion drives
	// pacing.
	Split *fabric.SplitSignal
}

// CoordinationPolicies returns the retry-control strategies the
// coordination study compares, all capped at 5 submissions so grids
// stay comparable with retry-cotune:
//
//   - "aimd": the PR-3 client-local AIMD controller — each client
//     watches only its own windowed failure rate, no sharing at all;
//   - "hinted-orderer": the orderer-driven BackpressurePolicy — every
//     client backs off from the shared congestion hint the ordering
//     service stamps onto commit events (the global view, pushed),
//     with the pacer also stretching resubmission delays by hint×gain;
//   - "hinted-gossip": the same policy and pacer, but fed by the
//     client-to-client gossip estimate instead — the orderer computes
//     no hints, so the clients share only what they each observed
//     (no privileged source, still a common signal);
//   - "hinted-both": the max-combination of the two signals — backs
//     off from whichever view is currently more alarmed;
//   - "split-gossip" / "split-both": the same wiring as the matching
//     hinted rung plus SplitSignal — outcomes are classified into a
//     conflict component (MVCC/phantom failures, drives backoff) and
//     a congestion component (ordering backlog and slow commits,
//     drives pacing) instead of one scalar estimate. These rungs pin
//     the fix for the scalar signal's mis-pacing: on contention-bound
//     workloads with an idle orderer, the scalar rungs pace heavily
//     from pure conflict failures while the split rungs keep pacing
//     near zero and let backoff absorb the conflicts.
//
// Comparing the three hinted rungs isolates the ROADMAP question of
// whether the coordination win comes from the signal's *source* (the
// orderer's global view) or its *sharing* (any common signal). The
// "hinted-orderer" rung is configuration-identical to PR 4's "hinted"
// rung, so its rows are byte-identical to that baseline; the split
// rungs likewise leave every pre-existing row byte-identical.
func CoordinationPolicies() []CoordinationPolicy {
	hinted := fabric.BackpressurePolicy{
		Floor:       100 * time.Millisecond,
		Ceiling:     4 * time.Second,
		MaxAttempts: 5,
		Jitter:      0.2,
	}
	signal := &fabric.Backpressure{} // documented defaults: s0.5, 1s gain, 2s max pause
	mesh := &fabric.Gossip{}         // documented defaults: fanout 2, 500ms period, decay 0.5
	split := &fabric.SplitSignal{}   // documented default: congestion latency 2×block timeout
	return []CoordinationPolicy{
		{"aimd", fabric.AdaptivePolicy{
			Floor:       100 * time.Millisecond,
			Ceiling:     4 * time.Second,
			Increase:    2,
			Decrease:    50 * time.Millisecond,
			Window:      32,
			Target:      0.1,
			MaxAttempts: 5,
			Jitter:      0.2,
		}, nil, nil, nil, "", nil},
		{"hinted-orderer", hinted, nil, signal, nil, fabric.HintOrderer, nil},
		{"hinted-gossip", hinted, nil, signal, mesh, fabric.HintGossip, nil},
		{"hinted-both", hinted, nil, signal, mesh, fabric.HintBoth, nil},
		{"split-gossip", hinted, nil, signal, mesh, fabric.HintGossip, split},
		{"split-both", hinted, nil, signal, mesh, fabric.HintBoth, split},
	}
}

// CoordinationBlockSizes is the block-size axis of the coordination
// study, matching retry-cotune so the two grids line up.
var CoordinationBlockSizes = []int{50, 100}

// coordinationSystems is the variant axis: does Fabric++'s early
// abort still matter once clients share a congestion signal?
var coordinationSystems = []System{Fabric14, FabricPP}

// coordinationCell is one cell of the retry-coordination grid.
type coordinationCell struct {
	ccName string
	sys    System
	pol    CoordinationPolicy
	bs     int
}

// coordinationGrid enumerates the sweep in deterministic row order:
// chaincode, system, policy, block size. Smoke mode keeps only the
// EHR rows so CI can run the experiment end-to-end in seconds.
func coordinationGrid(smoke bool) []coordinationCell {
	ccs := []string{"ehr", "dv", "scm", "drm"}
	if smoke {
		ccs = []string{"ehr"}
	}
	var cells []coordinationCell
	for _, ccName := range ccs {
		for _, sys := range coordinationSystems {
			for _, pol := range CoordinationPolicies() {
				for _, bs := range CoordinationBlockSizes {
					cells = append(cells, coordinationCell{ccName, sys, pol, bs})
				}
			}
		}
	}
	return cells
}

// coordinationConfig assembles one cell's fabric.Config (shared with
// the golden-row test, so the locked rows use exactly the grid's
// wiring).
func coordinationConfig(cc CCFactory, c coordinationCell) Builder {
	return func(seed int64) fabric.Config {
		cfg := baseConfig(C1, cc, 1, c.sys)(seed)
		cfg.BlockSize = c.bs
		cfg.Retry = c.pol.Policy
		cfg.RetryBudget = c.pol.Budget
		cfg.Backpressure = c.pol.Backpressure
		cfg.Gossip = c.pol.Gossip
		cfg.HintSource = c.pol.HintSource
		cfg.SplitSignal = c.pol.Split
		return cfg
	}
}

// RetryCoordinationExp answers the ROADMAP's coordination question
// head-to-head and then splits it: the AIMD controllers of
// retry-cotune are per-client and cannot see orderer congestion until
// their own transactions fail; an orderer-driven backpressure hint in
// the commit event lets every client back off from the same global
// signal at once; and a gossiped client-to-client estimate shares a
// signal with no orderer involvement at all — isolating whether the
// coordination win comes from the signal's source or its sharing.
// The experiment sweeps retry-control strategy {client-local AIMD,
// hinted-orderer, hinted-gossip, hinted-both} × block size × variant
// {Fabric 1.4, Fabric++} over the four use-case chaincodes on C1 at
// the default skew.
//
// Columns: goodput (first-submission success throughput), committed
// throughput, retry amplification, end-to-end latency including
// resubmissions and pacing, time spent paced by the shared signal,
// the final smoothed orderer hint, the final gossip estimate, the
// final conflict and congestion components (split rungs only), gossip
// messages exchanged, give-up rate and chain-level failure rate. All
// cells fan out across the worker pool; the table is byte-for-byte
// identical at any Options.Parallelism.
func RetryCoordinationExp(o Options) (string, error) {
	cells := coordinationGrid(o.Smoke)
	builds := make([]Builder, len(cells))
	for i, c := range cells {
		cc, err := UseCase(c.ccName)
		if err != nil {
			return "", err
		}
		builds[i] = coordinationConfig(cc, c)
	}
	results, err := o.RunAll(builds)
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("chaincode", "system", "control", "block",
		"goodput (tps)", "tput (tps)", "amp", "e2e lat (s)",
		"paced (s)", "hint", "gest", "cflt", "cngst", "gmsg",
		"gave up %", "failures %")
	for i, c := range cells {
		res := results[i]
		t.AddRow(c.ccName, c.sys, c.pol.Label, c.bs,
			res.Goodput, res.Throughput, res.RetryAmp, res.EndToEndSec,
			res.PacedSec, res.HintFinal, res.GossipEstFinal,
			res.ConflictEstFinal, res.CongestEstFinal, res.GossipMsgs,
			res.GaveUpPct, res.FailurePct)
	}
	return t.String(), nil
}
