package core

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// retryExperimentIDs pulls every retry/coordination experiment — plus
// the scale sweep, which exercises the cohort and multi-channel
// machinery, and the faults sweep, which exercises the lifecycle and
// fault-injection machinery — out of the registry, so a new retry-*
// experiment is swept automatically: the matrix below is
// registry-driven, not a copy-pasted test per experiment id.
func retryExperimentIDs(t *testing.T) []string {
	t.Helper()
	var ids []string
	for _, e := range Experiments() {
		if strings.HasPrefix(e.ID, "retry-") || e.ID == "scale" || e.ID == "faults" {
			ids = append(ids, e.ID)
		}
	}
	for _, want := range []string{"retry-policies", "retry-cotune", "retry-coordination", "scale", "faults"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("registry lost experiment %q", want)
		}
	}
	return ids
}

// TestExperimentDeterminismMatrix runs every retry/coordination
// experiment's smoke grid at Parallelism 1 and 8 and diffs the
// rendered reports: the tables must be byte-for-byte identical at any
// worker count, resubmission rng, budget gating, orderer hints and
// gossip rounds included. One registry-driven sweep replaces the
// per-experiment determinism tests.
func TestExperimentDeterminismMatrix(t *testing.T) {
	for _, id := range retryExperimentIDs(t) {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			serial := SmokeOptions()
			serial.Parallelism = 1
			seq, err := e.Run(serial)
			if err != nil {
				t.Fatal(err)
			}
			parallel := SmokeOptions()
			parallel.Parallelism = 8
			par, err := e.Run(parallel)
			if err != nil {
				t.Fatal(err)
			}
			if seq != par {
				t.Errorf("%s differs between -parallel 1 and 8:\n--- serial\n%s\n--- parallel\n%s",
					id, seq, par)
			}
			// The diff only proves determinism if the grid did real
			// work: every report must hold data rows, and at least one
			// cell must actually have resubmitted (amplification > 1) —
			// an inert grid would be identical at any parallelism too.
			if rows := len(strings.Split(strings.TrimSpace(seq), "\n")); rows < 3 {
				t.Errorf("%s smoke grid rendered no data rows:\n%s", id, seq)
			}
			if !tableHasAmplification(t, seq) {
				t.Errorf("%s: no cell of the smoke grid amplified submissions:\n%s", id, seq)
			}
		})
	}
}

// tableHasAmplification parses the fixed-width table's "amp" column
// and reports whether any row exceeds 1 (retries actually engaged).
func tableHasAmplification(t *testing.T, table string) bool {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(table), "\n")
	cols := regexp.MustCompile(`\s{2,}`).Split(lines[0], -1)
	ampCol := -1
	for i, c := range cols {
		if c == "amp" {
			ampCol = i
			break
		}
	}
	if ampCol < 0 {
		t.Fatalf("table has no amp column:\n%s", table)
	}
	for _, line := range lines[2:] { // skip header + rule
		fields := regexp.MustCompile(`\s{2,}`).Split(strings.TrimSpace(line), -1)
		if ampCol >= len(fields) {
			continue
		}
		amp, err := strconv.ParseFloat(fields[ampCol], 64)
		if err != nil {
			t.Fatalf("unparsable amp %q in row %q", fields[ampCol], line)
		}
		if amp > 1 {
			return true
		}
	}
	return false
}
