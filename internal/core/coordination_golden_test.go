package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenCoordinationLine renders one locked retry-coordination cell
// with enough precision that any drift in the hint plumbing — orderer
// or gossip side — changes the line. The aimd row must keep zero
// paced/hint/gossip columns (nothing shared is configured), and the
// hinted-orderer row must keep zero gossip columns while staying
// byte-identical to the values PR 4's "hinted" rung produced: a
// HintSource=orderer run must not change when the gossip subsystem
// merely exists in the build.
func goldenCoordinationLine(pol CoordinationPolicy, r Result) string {
	line := fmt.Sprintf(
		"ehr/%s/bs100: goodput=%.4f tput=%.4f amp=%.4f e2e=%.6f paced=%.0f pacedsec=%.6f hintavg=%.6f hint=%.6f gmsgs=%.0f gmerges=%.0f gest=%.6f gstale=%.6f gaveup=%.4f fail=%.4f",
		pol.Label, r.Goodput, r.Throughput, r.RetryAmp, r.EndToEndSec,
		r.Paced, r.PacedSec, r.HintAvg, r.HintFinal,
		r.GossipMsgs, r.GossipMerges, r.GossipEstFinal, r.GossipStaleSec,
		r.GaveUpPct, r.FailurePct)
	// Split rungs carry the two estimate components; scalar rungs keep
	// the exact pre-split line so their golden rows never move.
	if pol.Split != nil {
		line += fmt.Sprintf(" cflt=%.6f cngst=%.6f", r.ConflictEstFinal, r.CongestEstFinal)
	}
	return line
}

// TestGoldenCoordinationRow locks one retry-coordination row per
// coordination rung (EHR, Fabric 1.4, block size 100, QuickOptions),
// gossip variants included, so drift in either hint producer — or in
// the supposedly inert one — is caught the way TestGoldenCotuneRow
// catches budget/adaptive drift. Regenerate intentional changes with
//
//	go test ./internal/core -run TestGoldenCoordinationRow -update-golden
//
// and justify the diff in the commit.
func TestGoldenCoordinationRow(t *testing.T) {
	pols := CoordinationPolicies()
	cc, err := UseCase("ehr")
	if err != nil {
		t.Fatal(err)
	}
	builds := make([]Builder, len(pols))
	for i, pol := range pols {
		builds[i] = coordinationConfig(cc, coordinationCell{"ehr", Fabric14, pol, 100})
	}
	results, err := QuickOptions().RunAll(builds)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i, pol := range pols {
		lines = append(lines, goldenCoordinationLine(pol, results[i]))
	}
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "golden_coordination.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("coordination golden drift line %d:\n got: %s\nwant: %s", i+1, g, w)
		}
	}
}
