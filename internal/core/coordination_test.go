package core

import (
	"strings"
	"testing"

	"repro/internal/fabric"
)

func TestRetryCoordinationTableShape(t *testing.T) {
	out, err := RetryCoordinationExp(cotuneOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"goodput (tps)", "amp", "paced (s)", "hint", "gest", "gmsg"} {
		if !strings.Contains(out, col) {
			t.Errorf("table missing column %q", col)
		}
	}
	for _, label := range []string{"aimd", "hinted-orderer", "hinted-gossip", "hinted-both"} {
		if !strings.Contains(out, label) {
			t.Errorf("table missing control %q", label)
		}
	}
	for _, sys := range []string{"Fabric 1.4", "Fabric++"} {
		if !strings.Contains(out, sys) {
			t.Errorf("table missing system %q", sys)
		}
	}
	// Smoke mode shrinks the grid to EHR only.
	if strings.Contains(out, "dv") || strings.Contains(out, "scm") {
		t.Error("smoke grid still sweeps the full chaincode axis")
	}
	rows := len(strings.Split(strings.TrimSpace(out), "\n")) - 2 // header + rule
	if want := 2 * len(CoordinationPolicies()) * len(CoordinationBlockSizes); rows != want {
		t.Errorf("smoke grid has %d rows, want %d", rows, want)
	}
}

func TestRetryCoordinationFullGridEnumeration(t *testing.T) {
	cells := coordinationGrid(false)
	want := 4 * 2 * len(CoordinationPolicies()) * len(CoordinationBlockSizes)
	if len(cells) != want {
		t.Fatalf("full grid has %d cells, want %d", len(cells), want)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		seen[c.ccName] = true
	}
	for _, cc := range []string{"ehr", "dv", "scm", "drm"} {
		if !seen[cc] {
			t.Errorf("full grid missing chaincode %s", cc)
		}
	}
}

// TestCoordinationPoliciesWireTheSignal pins the ladder's wiring: it
// must compare a client-local rung against shared-signal rungs, and
// the shared rungs must cover both producers plus their combination,
// with each rung's HintSource matching the signals it configures.
func TestCoordinationPoliciesWireTheSignal(t *testing.T) {
	var sawLocal, sawOrderer, sawGossip, sawBoth bool
	for _, p := range CoordinationPolicies() {
		src := p.HintSource
		if src.Validate() != nil {
			t.Errorf("%s: invalid hint source %q", p.Label, src)
		}
		switch {
		case p.Backpressure == nil && p.Gossip == nil:
			sawLocal = true
		case src == fabric.HintOrderer:
			sawOrderer = true
			if p.Gossip != nil {
				t.Errorf("%s: orderer-sourced rung configures gossip", p.Label)
			}
		case src == fabric.HintGossip:
			sawGossip = true
			if p.Gossip == nil {
				t.Errorf("%s: gossip-sourced rung lacks Config.Gossip", p.Label)
			}
		case src == fabric.HintBoth:
			sawBoth = true
			if p.Gossip == nil || p.Backpressure == nil {
				t.Errorf("%s: combined rung must configure both signals", p.Label)
			}
		}
	}
	if !sawLocal || !sawOrderer || !sawGossip || !sawBoth {
		t.Fatalf("ladder must compare local vs orderer vs gossip vs both rungs (local=%v orderer=%v gossip=%v both=%v)",
			sawLocal, sawOrderer, sawGossip, sawBoth)
	}
}

// TestCoordinationGossipRungsExchangeEstimates proves the gossip
// rungs actually gossip in the smoke regime — messages flow, merges
// happen — while the orderer rung keeps every gossip metric at zero.
func TestCoordinationGossipRungsExchangeEstimates(t *testing.T) {
	cc, err := UseCase("ehr")
	if err != nil {
		t.Fatal(err)
	}
	var cells []coordinationCell
	for _, pol := range CoordinationPolicies() {
		cells = append(cells, coordinationCell{"ehr", Fabric14, pol, 100})
	}
	builds := make([]Builder, len(cells))
	for i, c := range cells {
		builds[i] = coordinationConfig(cc, c)
	}
	results, err := cotuneOpts(0).RunAll(builds)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		r := results[i]
		if c.pol.Gossip != nil {
			if r.GossipMsgs == 0 || r.GossipMerges == 0 {
				t.Errorf("%s: gossip configured but msgs=%.0f merges=%.0f",
					c.pol.Label, r.GossipMsgs, r.GossipMerges)
			}
		} else if r.GossipMsgs != 0 || r.GossipMerges != 0 || r.GossipEstFinal != 0 {
			t.Errorf("%s: gossip disabled but msgs=%.0f merges=%.0f est=%g",
				c.pol.Label, r.GossipMsgs, r.GossipMerges, r.GossipEstFinal)
		}
	}
}
