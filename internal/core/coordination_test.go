package core

import (
	"strings"
	"testing"
)

func TestRetryCoordinationDeterministicAcrossParallelism(t *testing.T) {
	serial, err := RetryCoordinationExp(cotuneOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RetryCoordinationExp(cotuneOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Errorf("retry-coordination differs between -parallel 1 and 8:\n--- serial\n%s\n--- parallel\n%s",
			serial, parallel)
	}
}

func TestRetryCoordinationTableShape(t *testing.T) {
	out, err := RetryCoordinationExp(cotuneOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"goodput (tps)", "amp", "paced (s)", "hint", "exhausted"} {
		if !strings.Contains(out, col) {
			t.Errorf("table missing column %q", col)
		}
	}
	for _, label := range []string{"aimd", "budgeted", "hinted", "hinted+budgeted"} {
		if !strings.Contains(out, label) {
			t.Errorf("table missing control %q", label)
		}
	}
	for _, sys := range []string{"Fabric 1.4", "Fabric++"} {
		if !strings.Contains(out, sys) {
			t.Errorf("table missing system %q", sys)
		}
	}
	// Smoke mode shrinks the grid to EHR only.
	if strings.Contains(out, "dv") || strings.Contains(out, "scm") {
		t.Error("smoke grid still sweeps the full chaincode axis")
	}
	rows := len(strings.Split(strings.TrimSpace(out), "\n")) - 2 // header + rule
	if want := 2 * len(CoordinationPolicies()) * len(CoordinationBlockSizes); rows != want {
		t.Errorf("smoke grid has %d rows, want %d", rows, want)
	}
}

func TestRetryCoordinationFullGridEnumeration(t *testing.T) {
	cells := coordinationGrid(false)
	want := 4 * 2 * len(CoordinationPolicies()) * len(CoordinationBlockSizes)
	if len(cells) != want {
		t.Fatalf("full grid has %d cells, want %d", len(cells), want)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		seen[c.ccName] = true
	}
	for _, cc := range []string{"ehr", "dv", "scm", "drm"} {
		if !seen[cc] {
			t.Errorf("full grid missing chaincode %s", cc)
		}
	}
}

func TestCoordinationPoliciesWireTheSignal(t *testing.T) {
	var sawHinted, sawLocal bool
	for _, p := range CoordinationPolicies() {
		if p.Backpressure != nil {
			sawHinted = true
		} else {
			sawLocal = true
		}
	}
	if !sawHinted || !sawLocal {
		t.Fatal("coordination ladder must compare hinted against client-local rungs")
	}
}
