package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/gen"
)

// tinyOptions keeps harness tests fast.
func tinyOptions() Options {
	return Options{
		Duration: 8 * time.Second,
		Drain:    12 * time.Second,
		Seeds:    []int64{1},
		GenKeys:  3000,
	}
}

func TestClusterPresets(t *testing.T) {
	cfg := fabric.DefaultConfig()
	C1.Apply(&cfg)
	if cfg.Orgs != 2 || cfg.PeersPerOrg != 2 || cfg.Clients != 5 {
		t.Errorf("C1 = %+v", cfg)
	}
	C2.Apply(&cfg)
	if cfg.Orgs != 8 || cfg.PeersPerOrg != 4 || cfg.Clients != 25 {
		t.Errorf("C2 = %+v", cfg)
	}
	if C1.String() != "C1" || C2.String() != "C2" {
		t.Error("cluster names wrong")
	}
}

func TestSystemVariants(t *testing.T) {
	names := map[System]string{
		Fabric14:         "fabric-1.4",
		FabricPP:         "fabric++",
		Streamchain:      "streamchain",
		StreamchainNoRAM: "streamchain-noramdisk",
		FabricSharp:      "fabricsharp",
	}
	for sys, want := range names {
		if got := sys.Variant().Name(); got != want {
			t.Errorf("%v variant = %q, want %q", sys, got, want)
		}
	}
	if len(AllSystems()) != 4 {
		t.Error("AllSystems should list the four compared systems")
	}
}

func TestUseCaseFactories(t *testing.T) {
	for _, name := range []string{"ehr", "dv", "scm", "drm"} {
		f, err := UseCase(name)
		if err != nil {
			t.Fatal(err)
		}
		if f.New().Name() != name {
			t.Errorf("factory %q built %q", name, f.New().Name())
		}
		if f.Workload(1) == nil {
			t.Errorf("factory %q has no workload", name)
		}
	}
	if _, err := UseCase("nope"); err == nil {
		t.Error("unknown chaincode accepted")
	}
}

func TestGenChainFactory(t *testing.T) {
	f := GenChain(gen.UpdateHeavy, 500)
	if f.New().Name() != "genChain" {
		t.Errorf("genChain factory name = %q", f.New().Name())
	}
}

func TestRunAveragesSeeds(t *testing.T) {
	o := tinyOptions()
	o.Seeds = []int64{1, 2}
	cc, err := UseCase("ehr")
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(func(seed int64) fabric.Config {
		cfg := baseConfig(C1, cc, 1, Fabric14)(seed)
		cfg.Rate = 30
		return cfg
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 100 {
		t.Errorf("averaged total %.0f too small", res.Total)
	}
	if res.FailurePct <= 0 || res.LatencySec <= 0 {
		t.Errorf("suspicious result %+v", res)
	}
}

func TestRunRequiresSeeds(t *testing.T) {
	o := tinyOptions()
	o.Seeds = nil
	if _, err := o.Run(nil); err == nil {
		t.Fatal("no-seed options accepted")
	}
}

func TestBestWorst(t *testing.T) {
	row := map[int]Result{
		10:  {FailurePct: 30},
		50:  {FailurePct: 10},
		100: {FailurePct: 50},
		150: {FailurePct: 20},
		200: {FailurePct: 40},
	}
	best, worst, least, most := bestWorst(row)
	if best != 50 || worst != 100 || least != 10 || most != 50 {
		t.Errorf("bestWorst = %d %d %.0f %.0f", best, worst, least, most)
	}
}

func TestTable2IsStatic(t *testing.T) {
	out, err := Table2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"addEhr", "vote", "queryASN", "calcRevenue", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig7"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("unknown experiment found")
	}
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if len(seen) != 30 {
		t.Errorf("%d experiments, want 30 (2 tables + 23 figures + retry-policies + retry-cotune + retry-coordination + scale + faults)", len(seen))
	}
}

// TestFig7ShapeQuick checks the inverse relation of inter vs
// intra-block conflicts with block size on a reduced sweep.
func TestFig7ShapeQuick(t *testing.T) {
	cc, err := UseCase("ehr")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Duration = 15 * time.Second
	runBS := func(bs int) Result {
		res, err := o.Run(func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, 1, Fabric14)(seed)
			cfg.Rate = 100
			cfg.BlockSize = bs
			return cfg
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Compare block sizes that actually fill before the batch timeout
	// at 100 tps, so the classification shift (not the timeout wait)
	// drives the difference.
	small, large := runBS(10), runBS(100)
	if large.IntraPct <= small.IntraPct {
		t.Errorf("intra-block: bs10=%.2f%% bs200=%.2f%%, want increase with block size",
			small.IntraPct, large.IntraPct)
	}
	if large.InterPct >= small.InterPct {
		t.Errorf("inter-block: bs10=%.2f%% bs200=%.2f%%, want decrease with block size",
			small.InterPct, large.InterPct)
	}
}

// TestFig15ShapeQuick checks failures grow with skew.
func TestFig15ShapeQuick(t *testing.T) {
	o := tinyOptions()
	runSkew := func(skew float64) Result {
		cc := GenChain(gen.UniformRU, o.GenKeys)
		res, err := o.Run(func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, skew, Fabric14)(seed)
			cfg.Rate = 50
			return cfg
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	s0, s2 := runSkew(0), runSkew(2)
	if s2.FailurePct <= s0.FailurePct {
		t.Errorf("failures: skew0=%.2f%% skew2=%.2f%%, want growth with skew",
			s0.FailurePct, s2.FailurePct)
	}
}

func TestRetryPoliciesExperimentRegistered(t *testing.T) {
	e, err := Lookup("retry-policies")
	if err != nil {
		t.Fatal(err)
	}
	if e.Run == nil || !strings.Contains(e.Title, "retry") {
		t.Errorf("experiment = %+v", e)
	}
}

func TestRetryGridShape(t *testing.T) {
	cells := retryGrid(false)
	if len(RetryPolicies()) < 3 || len(RetrySkews) < 3 {
		t.Fatalf("acceptance needs >= 3 policies x 3 skews, got %d x %d",
			len(RetryPolicies()), len(RetrySkews))
	}
	// Policy names must be distinct (they are table keys).
	names := map[string]bool{}
	for _, p := range RetryPolicies() {
		if names[p.Name()] {
			t.Errorf("duplicate policy name %q", p.Name())
		}
		names[p.Name()] = true
	}
	// Every chaincode covers the full policy x skew plane.
	type pair struct {
		cc, pol string
		skew    float64
	}
	seen := map[pair]bool{}
	for _, c := range cells {
		seen[pair{c.ccName, c.policy.Name(), c.skew}] = true
	}
	for _, cc := range []string{"ehr", "dv", "scm", "drm"} {
		for _, p := range RetryPolicies() {
			for _, skew := range RetrySkews {
				if !seen[pair{cc, p.Name(), skew}] {
					t.Errorf("grid misses cell %s/%s/skew=%v", cc, p.Name(), skew)
				}
			}
		}
	}
	// The block-size axis is exercised on the cheap chaincodes.
	bs := map[int]bool{}
	for _, c := range cells {
		if c.ccName == "ehr" {
			bs[c.bs] = true
		}
	}
	if len(bs) < 2 {
		t.Errorf("EHR sweeps %d block sizes, want >= 2", len(bs))
	}
	// Grid enumeration is deterministic (it feeds a golden table).
	again := retryGrid(false)
	if len(again) != len(cells) {
		t.Fatalf("grid size unstable: %d vs %d", len(again), len(cells))
	}
	for i := range cells {
		if cells[i].ccName != again[i].ccName || cells[i].policy.Name() != again[i].policy.Name() ||
			cells[i].skew != again[i].skew || cells[i].bs != again[i].bs {
			t.Fatalf("grid order unstable at %d: %+v vs %+v", i, cells[i], again[i])
		}
	}
}
