package core

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fabric"
)

// ehrBuilder is a small valid cell for scheduler tests.
func ehrBuilder(t testing.TB, rate float64, bs int) Builder {
	t.Helper()
	cc, err := UseCase("ehr")
	if err != nil {
		t.Fatal(err)
	}
	return func(seed int64) fabric.Config {
		cfg := baseConfig(C1, cc, 1, Fabric14)(seed)
		cfg.Rate = rate
		cfg.BlockSize = bs
		return cfg
	}
}

// TestParallelMatchesSequentialGolden is the acceptance check of the
// parallel harness: the QuickOptions block-size sweep must produce an
// identical Result grid whether it runs on one worker or many.
func TestParallelMatchesSequentialGolden(t *testing.T) {
	seq := QuickOptions()
	seq.Parallelism = 1
	par := QuickOptions()
	par.Parallelism = 4

	seqGrid, err := blockSizeSweep(seq, C1, "ehr", Fabric14)
	if err != nil {
		t.Fatal(err)
	}
	parGrid, err := blockSizeSweep(par, C1, "ehr", Fabric14)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqGrid, parGrid) {
		t.Errorf("parallel grid differs from sequential grid:\nseq: %+v\npar: %+v", seqGrid, parGrid)
	}
}

// TestRunAllParallelRace exercises the pool with more workers than
// CPUs on a multi-seed batch; run with -race to verify the scheduler
// is data-race free.
func TestRunAllParallelRace(t *testing.T) {
	o := tinyOptions()
	o.Seeds = []int64{1, 2}
	o.Parallelism = 4
	builds := []Builder{
		ehrBuilder(t, 30, 10), ehrBuilder(t, 30, 50),
		ehrBuilder(t, 60, 10), ehrBuilder(t, 60, 50),
	}
	results, err := o.RunAll(builds)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(builds) {
		t.Fatalf("%d results for %d builders", len(results), len(builds))
	}
	for i, res := range results {
		if res.Total <= 0 {
			t.Errorf("cell %d: empty result %+v", i, res)
		}
	}
}

func TestRunAllResultsInInputOrder(t *testing.T) {
	o := tinyOptions()
	o.Parallelism = 3
	rates := []float64{20, 60, 120}
	results, err := o.RunAll([]Builder{
		ehrBuilder(t, rates[0], 50), ehrBuilder(t, rates[1], 50), ehrBuilder(t, rates[2], 50),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Higher arrival rate sends more transactions in the same window,
	// so totals must increase along the input axis regardless of which
	// worker finished first.
	for i := 1; i < len(results); i++ {
		if results[i].Total <= results[i-1].Total {
			t.Errorf("results out of input order: rate %.0f total %.0f <= rate %.0f total %.0f",
				rates[i], results[i].Total, rates[i-1], results[i-1].Total)
		}
	}
}

func TestRunAllErrorPropagation(t *testing.T) {
	o := tinyOptions()
	o.Parallelism = 4
	bad := func(seed int64) fabric.Config {
		cfg := ehrBuilder(t, 30, 10)(seed)
		cfg.Orgs = 0 // rejected by Config.Validate
		return cfg
	}
	_, err := o.RunAll([]Builder{ehrBuilder(t, 30, 10), bad, ehrBuilder(t, 30, 50)})
	if err == nil {
		t.Fatal("invalid cell accepted")
	}
	// 1-based coordinate, consistent with verbose progress lines.
	if !strings.Contains(err.Error(), "cell 2/3") {
		t.Errorf("error %q does not name the failing cell", err)
	}
}

func TestRunAllContextCancelled(t *testing.T) {
	o := tinyOptions()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.RunAllContext(ctx, []Builder{ehrBuilder(t, 30, 10)}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestRunAllEmptyBatch(t *testing.T) {
	results, err := tinyOptions().RunAll(nil)
	if err != nil || results != nil {
		t.Errorf("empty batch = %v, %v; want nil, nil", results, err)
	}
}

func TestRunAllProgressFunnel(t *testing.T) {
	o := tinyOptions()
	o.Seeds = []int64{1, 2}
	o.Parallelism = 4
	// The funnel serializes Progress calls, so an unsynchronized
	// append is safe; the race detector enforces it.
	var lines []string
	o.Progress = func(line string) { lines = append(lines, line) }
	builds := []Builder{ehrBuilder(t, 30, 10), ehrBuilder(t, 30, 50)}
	if _, err := o.RunAll(builds); err != nil {
		t.Fatal(err)
	}
	if want := len(builds) * len(o.Seeds); len(lines) != want {
		t.Errorf("%d progress lines, want %d", len(lines), want)
	}
	for _, line := range lines {
		if !strings.Contains(line, "seed ") {
			t.Errorf("malformed progress line %q", line)
		}
	}
}

func TestRunKeepsSingleCellProgressFormat(t *testing.T) {
	o := tinyOptions()
	var lines []string
	o.Progress = func(line string) { lines = append(lines, line) }
	if _, err := o.Run(ehrBuilder(t, 30, 10)); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "seed 1: ") {
		t.Errorf("single-cell progress = %q, want historical \"seed 1: …\" format", lines)
	}
}

func TestWorkerCount(t *testing.T) {
	cases := []struct {
		parallelism, jobs, want int
	}{
		{1, 10, 1},
		{4, 10, 4},
		{4, 2, 2}, // never more workers than jobs
		{-3, 1, 1},
	}
	for _, c := range cases {
		o := Options{Parallelism: c.parallelism}
		if got := o.workerCount(c.jobs); got != c.want {
			t.Errorf("workerCount(parallelism=%d, jobs=%d) = %d, want %d",
				c.parallelism, c.jobs, got, c.want)
		}
	}
	if got := (Options{}).workerCount(1000); got < 1 {
		t.Errorf("default workerCount = %d, want >= 1", got)
	}
}

// BenchmarkBlockSizeSweepParallelism measures harness scaling: the
// EHR rate × block-size sweep at increasing Options.Parallelism. On a
// multi-core machine wall-clock should drop roughly with the worker
// count until the core count is reached.
func BenchmarkBlockSizeSweepParallelism(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", p), func(b *testing.B) {
			o := tinyOptions()
			o.Parallelism = p
			for i := 0; i < b.N; i++ {
				if _, err := blockSizeSweep(o, C1, "ehr", Fabric14); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
