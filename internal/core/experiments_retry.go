package core

import (
	"time"

	"repro/internal/fabric"
	"repro/internal/metrics"
)

// RetryPolicies returns the policy ladder compared by the
// retry-policies sweep: fire-and-forget (the paper's clients), capped
// immediate resubmission, capped exponential backoff with
// deterministic jitter, and an unlimited backoff truncated to a
// give-up-after-N budget.
func RetryPolicies() []fabric.RetryPolicy {
	return []fabric.RetryPolicy{
		fabric.NoRetry{},
		fabric.ImmediateRetry{MaxAttempts: 3},
		fabric.ExponentialBackoff{
			Initial:     200 * time.Millisecond,
			Cap:         2 * time.Second,
			MaxAttempts: 5,
			Jitter:      0.2,
		},
		fabric.GiveUpAfter(fabric.ExponentialBackoff{
			Initial: 100 * time.Millisecond,
			Cap:     time.Second,
			Jitter:  0.5,
		}, 2),
	}
}

// RetrySkews is the Zipfian contention axis of the retry sweep.
var RetrySkews = []float64{0, 1, 2}

// RetryBlockSizes is the block-size axis of the retry sweep. Only the
// cheap chaincodes (EHR, DRM) sweep it; the range-query-heavy ones
// (DV, SCM) run at the Table 3 default to keep the grid affordable.
var RetryBlockSizes = []int{50, 100}

// retryCell is one cell of the retry-policies grid.
type retryCell struct {
	ccName string
	policy fabric.RetryPolicy
	skew   float64
	bs     int
}

// retryGrid enumerates the retry-policies sweep in deterministic row
// order: chaincode, policy, skew, block size. Smoke mode keeps only
// the EHR rows, like the cotune and coordination grids, so CI (and
// the determinism matrix test) can run the experiment end-to-end in
// seconds.
func retryGrid(smoke bool) []retryCell {
	ccs := []string{"ehr", "dv", "scm", "drm"}
	if smoke {
		ccs = []string{"ehr"}
	}
	var cells []retryCell
	for _, ccName := range ccs {
		sizes := RetryBlockSizes
		if ccName == "dv" || ccName == "scm" {
			sizes = []int{100}
		}
		for _, pol := range RetryPolicies() {
			for _, skew := range RetrySkews {
				for _, bs := range sizes {
					cells = append(cells, retryCell{ccName, pol, skew, bs})
				}
			}
		}
	}
	return cells
}

// RetryPoliciesExp answers the paper's motivating question end-to-end:
// what does a failed transaction cost once clients resubmit it? It
// sweeps retry policy × Zipfian skew × block size over the four
// use-case chaincodes on C1 and reports the effective metrics —
// goodput (first-submission success throughput), retry amplification
// (submissions per logical transaction), end-to-end latency including
// resubmissions, and the give-up rate — next to the chain-level
// failure percentage. All cells fan out across the worker pool; the
// table is identical at any Options.Parallelism.
func RetryPoliciesExp(o Options) (string, error) {
	cells := retryGrid(o.Smoke)
	builds := make([]Builder, len(cells))
	for i, c := range cells {
		cc, err := UseCase(c.ccName)
		if err != nil {
			return "", err
		}
		c := c
		builds[i] = func(seed int64) fabric.Config {
			cfg := baseConfig(C1, cc, c.skew, Fabric14)(seed)
			cfg.BlockSize = c.bs
			cfg.Retry = c.policy
			return cfg
		}
	}
	results, err := o.RunAll(builds)
	if err != nil {
		return "", err
	}
	t := metrics.NewTable("chaincode", "policy", "skew", "block",
		"goodput (tps)", "tput (tps)", "amp", "e2e lat (s)", "gave up %", "failures %")
	for i, c := range cells {
		res := results[i]
		t.AddRow(c.ccName, c.policy.Name(), c.skew, c.bs,
			res.Goodput, res.Throughput, res.RetryAmp,
			res.EndToEndSec, res.GaveUpPct, res.FailurePct)
	}
	return t.String(), nil
}
