// Package ehr implements the Electronic Health Records chaincode of
// the paper (§4.3, Table 2): access-credential management for patient
// profiles and health records. Every patient owns two entities — a
// profile and an EHR — and medical actors are granted or revoked
// access to either. Only credentials and logical connections live on
// chain; the records themselves are off-chain.
//
// The paper populates 100 profiles and 100 EHRs and reports >40 %
// failed transactions for this chaincode under default settings — the
// small hot key space is intentional.
package ehr

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/chaincode"
	"repro/internal/dist"
	"repro/internal/workload"
)

// Name is the chaincode identifier.
const Name = "ehr"

// Patients is the number of patients seeded by Init (100 profiles +
// 100 EHRs, §4.3).
const Patients = 100

// Actors is the number of medical actors that request access.
const Actors = 50

type profile struct {
	PatientID string          `json:"patientId"`
	Access    map[string]bool `json:"access"` // actor -> granted
	Updates   int             `json:"updates"`
}

type record struct {
	PatientID string          `json:"patientId"`
	Access    map[string]bool `json:"access"`
	Entries   int             `json:"entries"`
}

// Chaincode is the EHR contract. The zero value is ready to use.
type Chaincode struct{}

// New returns the contract.
func New() *Chaincode { return &Chaincode{} }

// Name implements chaincode.Chaincode.
func (c *Chaincode) Name() string { return Name }

// ProfileKey is the world-state key of a patient's profile.
func ProfileKey(patient int) string { return fmt.Sprintf("profile_%03d", patient) }

// RecordKey is the world-state key of a patient's EHR.
func RecordKey(patient int) string { return fmt.Sprintf("ehr_%03d", patient) }

func actorName(i int) string { return fmt.Sprintf("actor%02d", i) }

// Init seeds the 100 profiles and 100 EHRs.
func (c *Chaincode) Init(stub *chaincode.Stub) error {
	for p := 0; p < Patients; p++ {
		if err := putJSON(stub, ProfileKey(p), &profile{
			PatientID: fmt.Sprint(p), Access: map[string]bool{},
		}); err != nil {
			return err
		}
		if err := putJSON(stub, RecordKey(p), &record{
			PatientID: fmt.Sprint(p), Access: map[string]bool{},
		}); err != nil {
			return err
		}
	}
	return nil
}

// Invoke dispatches the functions of Table 2.
func (c *Chaincode) Invoke(stub *chaincode.Stub, fn string, args []string) error {
	switch fn {
	case "initLedger": // 2xW: (re)create one patient's pair
		patient, err := patientArg(args)
		if err != nil {
			return err
		}
		if err := putJSON(stub, ProfileKey(patient), &profile{
			PatientID: fmt.Sprint(patient), Access: map[string]bool{},
		}); err != nil {
			return err
		}
		return putJSON(stub, RecordKey(patient), &record{
			PatientID: fmt.Sprint(patient), Access: map[string]bool{},
		})
	case "addEhr": // 2xR, 2xW
		patient, err := patientArg(args)
		if err != nil {
			return err
		}
		var p profile
		if err := getJSON(stub, ProfileKey(patient), &p); err != nil {
			return err
		}
		var r record
		if err := getJSON(stub, RecordKey(patient), &r); err != nil {
			return err
		}
		r.Entries++
		p.Updates++
		if err := putJSON(stub, RecordKey(patient), &r); err != nil {
			return err
		}
		return putJSON(stub, ProfileKey(patient), &p)
	case "grantProfileAccess", "revokeProfileAccess": // 1xR, 1xW
		patient, actor, err := patientActorArgs(args)
		if err != nil {
			return err
		}
		var p profile
		if err := getJSON(stub, ProfileKey(patient), &p); err != nil {
			return err
		}
		if p.Access == nil {
			p.Access = map[string]bool{}
		}
		if fn == "grantProfileAccess" {
			p.Access[actor] = true
		} else {
			delete(p.Access, actor)
		}
		return putJSON(stub, ProfileKey(patient), &p)
	case "grantEhrAccess", "revokeEhrAccess": // 2xR, 2xW
		patient, actor, err := patientActorArgs(args)
		if err != nil {
			return err
		}
		var p profile
		if err := getJSON(stub, ProfileKey(patient), &p); err != nil {
			return err
		}
		var r record
		if err := getJSON(stub, RecordKey(patient), &r); err != nil {
			return err
		}
		if p.Access == nil {
			p.Access = map[string]bool{}
		}
		if r.Access == nil {
			r.Access = map[string]bool{}
		}
		if fn == "grantEhrAccess" {
			r.Access[actor] = true
			p.Access[actor] = true
		} else {
			delete(r.Access, actor)
			delete(p.Access, actor)
		}
		if err := putJSON(stub, RecordKey(patient), &r); err != nil {
			return err
		}
		return putJSON(stub, ProfileKey(patient), &p)
	case "readProfile", "viewPartialProfile": // 1xR
		patient, err := patientArg(args)
		if err != nil {
			return err
		}
		_, err = stub.GetState(ProfileKey(patient))
		return err
	case "viewEHR", "queryEHR": // 1xR
		patient, err := patientArg(args)
		if err != nil {
			return err
		}
		_, err = stub.GetState(RecordKey(patient))
		return err
	default:
		return fmt.Errorf("ehr: unknown function %q", fn)
	}
}

func patientArg(args []string) (int, error) {
	if len(args) < 1 {
		return 0, fmt.Errorf("ehr: missing patient argument")
	}
	var p int
	if _, err := fmt.Sscanf(args[0], "%d", &p); err != nil || p < 0 {
		return 0, fmt.Errorf("ehr: bad patient %q", args[0])
	}
	return p % Patients, nil
}

func patientActorArgs(args []string) (int, string, error) {
	p, err := patientArg(args)
	if err != nil {
		return 0, "", err
	}
	if len(args) < 2 {
		return 0, "", fmt.Errorf("ehr: missing actor argument")
	}
	return p, args[1], nil
}

func getJSON(stub *chaincode.Stub, key string, out interface{}) error {
	raw, err := stub.GetState(key)
	if err != nil {
		return err
	}
	if raw == nil {
		return nil // upsert semantics: absent entity starts zeroed
	}
	return json.Unmarshal(raw, out)
}

func putJSON(stub *chaincode.Stub, key string, v interface{}) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return stub.PutState(key, raw)
}

// Functions lists the invocable functions with their operation counts
// (reads, writes, range reads) exactly as in Table 2.
func Functions() []workload.FunctionInfo {
	return []workload.FunctionInfo{
		{Name: "initLedger", Reads: 0, Writes: 2},
		{Name: "addEhr", Reads: 2, Writes: 2},
		{Name: "grantProfileAccess", Reads: 1, Writes: 1},
		{Name: "readProfile", Reads: 1},
		{Name: "revokeProfileAccess", Reads: 1, Writes: 1},
		{Name: "viewPartialProfile", Reads: 1},
		{Name: "revokeEhrAccess", Reads: 2, Writes: 2},
		{Name: "viewEHR", Reads: 1},
		{Name: "grantEhrAccess", Reads: 2, Writes: 2},
		{Name: "queryEHR", Reads: 1},
	}
}

// NewWorkload returns the uniform EHR workload: all nine post-init
// functions invoked equally often, patients drawn with the given
// Zipfian skew (Table 3 default: skew 1).
func NewWorkload(skew float64) workload.Generator {
	z := dist.NewZipfian(Patients, skew)
	fns := []string{
		"addEhr", "grantProfileAccess", "readProfile", "revokeProfileAccess",
		"viewPartialProfile", "revokeEhrAccess", "viewEHR", "grantEhrAccess",
		"queryEHR",
	}
	return workload.Func(func(rng *rand.Rand) workload.Invocation {
		fn := fns[rng.Intn(len(fns))]
		patient := z.Next(rng)
		args := []string{fmt.Sprint(patient)}
		switch fn {
		case "grantProfileAccess", "revokeProfileAccess", "grantEhrAccess", "revokeEhrAccess":
			args = append(args, actorName(rng.Intn(Actors)))
		}
		return workload.Invocation{Chaincode: Name, Function: fn, Args: args}
	})
}
