package ehr

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/cctest"
	"repro/internal/statedb"
)

func TestInitSeedsAllEntities(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2*Patients {
		t.Fatalf("seeded %d keys, want %d", db.Len(), 2*Patients)
	}
	if db.Get(ProfileKey(0)) == nil || db.Get(RecordKey(Patients-1)) == nil {
		t.Fatal("expected profile/ehr keys missing")
	}
}

// TestTable2OpCounts verifies every function's read/write/range counts
// against the paper's Table 2.
func TestTable2OpCounts(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	argsFor := func(fn string) []string {
		switch fn {
		case "grantProfileAccess", "revokeProfileAccess", "grantEhrAccess", "revokeEhrAccess":
			return []string{"7", "actor01"}
		case "addEhr", "readProfile", "viewPartialProfile", "viewEHR", "queryEHR", "initLedger":
			return []string{"7"}
		}
		return nil
	}
	for _, info := range Functions() {
		stub, err := cctest.Invoke(New(), db, info.Name, argsFor(info.Name)...)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if err := cctest.CheckOps(info, stub); err != nil {
			t.Error(err)
		}
	}
}

func TestGrantThenRevokeRoundTrip(t *testing.T) {
	cc := New()
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err := cctest.Invoke(cc, db, "grantProfileAccess", "3", "actor09")
	if err != nil {
		t.Fatal(err)
	}
	if err := cctest.Commit(db, stub, 1); err != nil {
		t.Fatal(err)
	}
	var p struct {
		Access map[string]bool `json:"access"`
	}
	if err := json.Unmarshal(db.Get(ProfileKey(3)).Value, &p); err != nil {
		t.Fatal(err)
	}
	if !p.Access["actor09"] {
		t.Fatal("grant not persisted")
	}
	stub, err = cctest.Invoke(cc, db, "revokeProfileAccess", "3", "actor09")
	if err != nil {
		t.Fatal(err)
	}
	if err := cctest.Commit(db, stub, 2); err != nil {
		t.Fatal(err)
	}
	p.Access = nil // json.Unmarshal merges into an existing map
	if err := json.Unmarshal(db.Get(ProfileKey(3)).Value, &p); err != nil {
		t.Fatal(err)
	}
	if p.Access["actor09"] {
		t.Fatal("revoke not persisted")
	}
}

func TestAddEhrIncrementsCounters(t *testing.T) {
	cc := New()
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		stub, err := cctest.Invoke(cc, db, "addEhr", "5")
		if err != nil {
			t.Fatal(err)
		}
		if err := cctest.Commit(db, stub, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	var r struct {
		Entries int `json:"entries"`
	}
	if err := json.Unmarshal(db.Get(RecordKey(5)).Value, &r); err != nil {
		t.Fatal(err)
	}
	if r.Entries != 3 {
		t.Fatalf("entries = %d, want 3", r.Entries)
	}
}

func TestUnknownFunctionAndBadArgs(t *testing.T) {
	cc := New()
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cctest.Invoke(cc, db, "nope"); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := cctest.Invoke(cc, db, "readProfile"); err == nil {
		t.Error("missing patient accepted")
	}
	if _, err := cctest.Invoke(cc, db, "readProfile", "xyz"); err == nil {
		t.Error("non-numeric patient accepted")
	}
	if _, err := cctest.Invoke(cc, db, "grantProfileAccess", "1"); err == nil {
		t.Error("missing actor accepted")
	}
}

func TestWorkloadProducesValidInvocations(t *testing.T) {
	cc := New()
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewWorkload(1)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		inv := gen.Next(rng)
		if inv.Chaincode != Name {
			t.Fatalf("invocation for %q", inv.Chaincode)
		}
		if _, err := cctest.Invoke(cc, db, inv.Function, inv.Args...); err != nil {
			t.Fatalf("%s(%v): %v", inv.Function, inv.Args, err)
		}
	}
}

func TestWorkloadSkewFavoursHighPatients(t *testing.T) {
	gen := NewWorkload(2)
	rng := rand.New(rand.NewSource(10))
	high, low := 0, 0
	for i := 0; i < 2000; i++ {
		inv := gen.Next(rng)
		var p int
		if _, err := sscan(inv.Args[0], &p); err != nil {
			t.Fatal(err)
		}
		if p >= Patients/2 {
			high++
		} else {
			low++
		}
	}
	if high <= low {
		t.Errorf("skew 2: high=%d low=%d, want high > low", high, low)
	}
}

func sscan(s string, p *int) (int, error) {
	n := 0
	for _, r := range s {
		n = n*10 + int(r-'0')
	}
	*p = n
	return 1, nil
}
