// Package scm implements the Supply Chain Management chaincode of the
// paper (§4.3, Table 2): logistic service providers (LSPs) and
// logistic units tracked by GTIN/SSCC identifiers, advanced shipping
// notices, shipping between LSPs, and stock queries. Five LSPs are
// seeded — four with 400 logistic units and one with 800 — and
// queryASN scans all units of a random LSP (400–800 keys), which is
// what drives this chaincode's phantom read conflicts (Fig 10).
package scm

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/chaincode"
	"repro/internal/dist"
	"repro/internal/workload"
)

// Name is the chaincode identifier.
const Name = "scm"

// LSPs is the number of logistic service providers.
const LSPs = 5

// UnitsPerLSP is the seeded unit count per provider; the last provider
// gets DoubleLSPUnits (§4.3).
const UnitsPerLSP = 400

// DoubleLSPUnits is the unit count of the fifth provider.
const DoubleLSPUnits = 800

// TotalUnits is the number of seeded logistic units.
const TotalUnits = 4*UnitsPerLSP + DoubleLSPUnits

type unitDoc struct {
	SSCC  string `json:"sscc"` // serial shipping container code
	GTIN  string `json:"gtin"` // global trade item number
	LSP   string `json:"lsp"`
	Items int    `json:"items"`
}

type lspDoc struct {
	LSPID string `json:"lspId"`
	Moves int    `json:"moves"`
}

type asnDoc struct {
	ASNID string `json:"asnId"`
	From  string `json:"from"`
	To    string `json:"to"`
}

// LSPName formats a provider identifier.
func LSPName(i int) string { return fmt.Sprintf("LSP%d", i) }

// LSPKey is the provider's world-state key.
func LSPKey(i int) string { return "lsp_" + LSPName(i) }

// UnitKey is a logistic unit's world-state key. Units are prefixed by
// their current LSP so that queryASN can range-scan one provider's
// stock.
func UnitKey(lsp string, unit int) string { return fmt.Sprintf("lu_%s_%04d", lsp, unit) }

// unitRange returns the half-open key interval covering all units of
// one provider.
func unitRange(lsp string) (string, string) {
	return "lu_" + lsp + "_", "lu_" + lsp + "_~"
}

// unitsOf returns how many units provider i is seeded with.
func unitsOf(i int) int {
	if i == LSPs-1 {
		return DoubleLSPUnits
	}
	return UnitsPerLSP
}

// Chaincode is the SCM contract.
type Chaincode struct{}

// New returns the contract.
func New() *Chaincode { return &Chaincode{} }

// Name implements chaincode.Chaincode.
func (c *Chaincode) Name() string { return Name }

// Init seeds the five providers and their logistic units.
func (c *Chaincode) Init(stub *chaincode.Stub) error {
	for i := 0; i < LSPs; i++ {
		lsp := LSPName(i)
		if err := putJSON(stub, LSPKey(i), &lspDoc{LSPID: lsp}); err != nil {
			return err
		}
		for u := 0; u < unitsOf(i); u++ {
			doc := &unitDoc{
				SSCC:  fmt.Sprintf("SSCC-%d-%04d", i, u),
				GTIN:  fmt.Sprintf("GTIN-%06d", i*10000+u),
				LSP:   lsp,
				Items: 1 + u%5,
			}
			if err := putJSON(stub, UnitKey(lsp, u), doc); err != nil {
				return err
			}
		}
	}
	return nil
}

// Invoke dispatches the functions of Table 2.
func (c *Chaincode) Invoke(stub *chaincode.Stub, fn string, args []string) error {
	switch fn {
	case "initLedger": // 2xW: one provider + one unit
		if err := putJSON(stub, LSPKey(0), &lspDoc{LSPID: LSPName(0)}); err != nil {
			return err
		}
		return putJSON(stub, UnitKey(LSPName(0), 0), &unitDoc{LSP: LSPName(0), Items: 1})
	case "pushASN": // 1xW
		if len(args) < 3 {
			return fmt.Errorf("scm: pushASN needs id, from, to")
		}
		return putJSON(stub, "asn_"+args[0], &asnDoc{ASNID: args[0], From: args[1], To: args[2]})
	case "Ship": // 2xR, 2xW: move a unit between providers
		if len(args) < 3 {
			return fmt.Errorf("scm: Ship needs unitKey, srcLSP, dstLSP")
		}
		unitKey, dst := args[0], args[2]
		var u unitDoc
		found, err := getJSON(stub, unitKey, &u)
		if err != nil {
			return err
		}
		var d lspDoc
		if _, err := getJSON(stub, "lsp_"+dst, &d); err != nil {
			return err
		}
		if !found {
			// Unit already shipped away by a concurrent transaction:
			// record the attempt on the destination provider only.
			d.LSPID = dst
			d.Moves++
			return putJSON(stub, "lsp_"+dst, &d)
		}
		// Delete at the source prefix, insert at the destination
		// prefix (upon successful shipping the unit is removed from
		// the originating LSP and added to the destination, §4.3).
		if err := stub.DelState(unitKey); err != nil {
			return err
		}
		u.LSP = dst
		newKey := fmt.Sprintf("lu_%s_%s", dst, u.SSCC)
		return putJSON(stub, newKey, &u)
	case "Unload": // 2xR, 2xW: extract the embedded trade items
		if len(args) < 2 {
			return fmt.Errorf("scm: Unload needs unitKey and lsp")
		}
		unitKey, lsp := args[0], args[1]
		var u unitDoc
		found, err := getJSON(stub, unitKey, &u)
		if err != nil {
			return err
		}
		var l lspDoc
		if _, err := getJSON(stub, "lsp_"+lsp, &l); err != nil {
			return err
		}
		l.LSPID = lsp
		l.Moves++
		if err := putJSON(stub, "lsp_"+lsp, &l); err != nil {
			return err
		}
		if !found {
			return putJSON(stub, unitKey+"_items", &unitDoc{})
		}
		u.Items = 0
		return putJSON(stub, unitKey, &u)
	case "queryASN": // 1xRR: all units of one provider (400–800 keys)
		if len(args) < 1 {
			return fmt.Errorf("scm: queryASN needs lsp")
		}
		start, end := unitRange(args[0])
		_, err := stub.GetStateByRange(start, end)
		return err
	case "queryStock": // 1xRR*: rich query; no phantom detection
		if len(args) < 1 {
			return fmt.Errorf("scm: queryStock needs lsp")
		}
		if stub.SupportsRichQueries() {
			_, err := stub.GetQueryResult(fmt.Sprintf(`{"lsp":%q}`, args[0]))
			return err
		}
		// LevelDB fallback: plain (checked) range scan.
		start, end := unitRange(args[0])
		_, err := stub.GetStateByRange(start, end)
		return err
	default:
		return fmt.Errorf("scm: unknown function %q", fn)
	}
}

func getJSON(stub *chaincode.Stub, key string, out interface{}) (bool, error) {
	raw, err := stub.GetState(key)
	if err != nil || raw == nil {
		return false, err
	}
	return true, json.Unmarshal(raw, out)
}

func putJSON(stub *chaincode.Stub, key string, v interface{}) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return stub.PutState(key, raw)
}

// Functions lists the Table 2 rows for SCM.
func Functions() []workload.FunctionInfo {
	return []workload.FunctionInfo{
		{Name: "initLedger", Writes: 2},
		{Name: "pushASN", Writes: 1},
		{Name: "Ship", Reads: 2, Writes: 2},
		{Name: "Unload", Reads: 2, Writes: 2},
		{Name: "queryASN", RangeReads: 1},
		{Name: "queryStock", RangeReads: 1, Unchecked: true},
	}
}

// NewWorkload returns the SCM workload: a uniform mix of pushASN,
// Ship, Unload, queryASN and queryStock; units are drawn with the
// given Zipfian skew and providers uniformly.
func NewWorkload(skew float64) workload.Generator {
	z := dist.NewZipfian(UnitsPerLSP, skew)
	asnSeq := 0
	return workload.Func(func(rng *rand.Rand) workload.Invocation {
		lspIdx := rng.Intn(LSPs)
		lsp := LSPName(lspIdx)
		switch rng.Intn(5) {
		case 0:
			asnSeq++
			dst := LSPName(rng.Intn(LSPs))
			return workload.Invocation{Chaincode: Name, Function: "pushASN",
				Args: []string{fmt.Sprintf("%06d", asnSeq), lsp, dst}}
		case 1:
			unit := z.Next(rng) % unitsOf(lspIdx)
			dst := LSPName(rng.Intn(LSPs))
			return workload.Invocation{Chaincode: Name, Function: "Ship",
				Args: []string{UnitKey(lsp, unit), lsp, dst}}
		case 2:
			unit := z.Next(rng) % unitsOf(lspIdx)
			return workload.Invocation{Chaincode: Name, Function: "Unload",
				Args: []string{UnitKey(lsp, unit), lsp}}
		case 3:
			return workload.Invocation{Chaincode: Name, Function: "queryASN", Args: []string{lsp}}
		default:
			return workload.Invocation{Chaincode: Name, Function: "queryStock", Args: []string{lsp}}
		}
	})
}
