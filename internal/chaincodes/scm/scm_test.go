package scm

import (
	"math/rand"
	"testing"

	"repro/internal/cctest"
	"repro/internal/statedb"
)

func TestInitSeedsUnits(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != TotalUnits+LSPs {
		t.Fatalf("seeded %d keys, want %d", db.Len(), TotalUnits+LSPs)
	}
	// Fifth LSP has double stock.
	start, end := unitRange(LSPName(4))
	if got := len(db.GetRange(start, end)); got != DoubleLSPUnits {
		t.Fatalf("LSP4 stock = %d, want %d", got, DoubleLSPUnits)
	}
}

func TestTable2OpCounts(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	argsFor := map[string][]string{
		"pushASN":    {"000001", "LSP0", "LSP1"},
		"Ship":       {UnitKey("LSP0", 3), "LSP0", "LSP1"},
		"Unload":     {UnitKey("LSP1", 5), "LSP1"},
		"queryASN":   {"LSP2"},
		"queryStock": {"LSP2"},
	}
	for _, info := range Functions() {
		stub, err := cctest.Invoke(New(), db, info.Name, argsFor[info.Name]...)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if err := cctest.CheckOps(info, stub); err != nil {
			t.Error(err)
		}
	}
}

func TestShipMovesUnitBetweenPrefixes(t *testing.T) {
	cc := New()
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	key := UnitKey("LSP0", 7)
	stub, err := cctest.Invoke(cc, db, "Ship", key, "LSP0", "LSP3")
	if err != nil {
		t.Fatal(err)
	}
	if err := cctest.Commit(db, stub, 1); err != nil {
		t.Fatal(err)
	}
	if db.Get(key) != nil {
		t.Fatal("unit still at source after Ship")
	}
	start, end := unitRange("LSP3")
	if got := len(db.GetRange(start, end)); got != UnitsPerLSP+1 {
		t.Fatalf("LSP3 stock = %d, want %d", got, UnitsPerLSP+1)
	}
}

func TestShipMissingUnitStillWrites(t *testing.T) {
	cc := New()
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err := cctest.Invoke(cc, db, "Ship", "lu_LSP0_9999", "LSP0", "LSP1")
	if err != nil {
		t.Fatal(err)
	}
	if len(stub.RWSet().Writes) == 0 {
		t.Fatal("Ship of missing unit produced no writes")
	}
}

func TestQueryASNScansOneProvider(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err := cctest.Invoke(New(), db, "queryASN", "LSP4")
	if err != nil {
		t.Fatal(err)
	}
	rqs := stub.RWSet().RangeQueries
	if len(rqs) != 1 || len(rqs[0].Reads) != DoubleLSPUnits {
		t.Fatalf("queryASN observed %d keys, want %d", len(rqs[0].Reads), DoubleLSPUnits)
	}
	if rqs[0].Unchecked {
		t.Fatal("queryASN range must be phantom-checked")
	}
}

func TestQueryStockUncheckedOnCouch(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.CouchDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err := cctest.Invoke(New(), db, "queryStock", "LSP1")
	if err != nil {
		t.Fatal(err)
	}
	rqs := stub.RWSet().RangeQueries
	if len(rqs) != 1 || !rqs[0].Unchecked {
		t.Fatal("queryStock on CouchDB should be an unchecked rich query")
	}
	if len(rqs[0].Reads) != UnitsPerLSP {
		t.Fatalf("queryStock matched %d units, want %d", len(rqs[0].Reads), UnitsPerLSP)
	}
	// On LevelDB it falls back to a checked range.
	ldb, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err = cctest.Invoke(New(), ldb, "queryStock", "LSP1")
	if err != nil {
		t.Fatal(err)
	}
	if stub.RWSet().RangeQueries[0].Unchecked {
		t.Fatal("queryStock on LevelDB should be checked")
	}
}

func TestArgumentValidation(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	for fn, args := range map[string][]string{
		"pushASN":    {"1", "LSP0"},
		"Ship":       {"k", "LSP0"},
		"Unload":     {"k"},
		"queryASN":   {},
		"queryStock": {},
		"wat":        {},
	} {
		if _, err := cctest.Invoke(New(), db, fn, args...); err == nil {
			t.Errorf("%s(%v) accepted", fn, args)
		}
	}
}

func TestWorkloadProducesValidInvocations(t *testing.T) {
	cc := New()
	db, err := cctest.InitState(cc, statedb.CouchDB)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewWorkload(1)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		inv := gen.Next(rng)
		if _, err := cctest.Invoke(cc, db, inv.Function, inv.Args...); err != nil {
			t.Fatalf("%s(%v): %v", inv.Function, inv.Args, err)
		}
	}
}
