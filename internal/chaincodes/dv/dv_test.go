package dv

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/cctest"
	"repro/internal/statedb"
)

func TestInitSeedsElectorate(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != Voters+Parties+1 {
		t.Fatalf("seeded %d keys, want %d", db.Len(), Voters+Parties+1)
	}
}

func TestTable2OpCounts(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	argsFor := map[string][]string{
		"vote": {"0042", "03"},
	}
	for _, info := range Functions() {
		stub, err := cctest.Invoke(New(), db, info.Name, argsFor[info.Name]...)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if err := cctest.CheckOps(info, stub); err != nil {
			t.Error(err)
		}
	}
}

func TestVoteScansWholeElectorate(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err := cctest.Invoke(New(), db, "vote", "0001", "05")
	if err != nil {
		t.Fatal(err)
	}
	rqs := stub.RWSet().RangeQueries
	if len(rqs) != 2 {
		t.Fatalf("range queries = %d, want 2", len(rqs))
	}
	if len(rqs[0].Reads) != Voters {
		t.Fatalf("voter scan saw %d keys, want %d", len(rqs[0].Reads), Voters)
	}
	if len(rqs[1].Reads) != Parties {
		t.Fatalf("party scan saw %d keys, want %d", len(rqs[1].Reads), Parties)
	}
}

func TestVoteCountsAndDoubleVoteBlocked(t *testing.T) {
	cc := New()
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err := cctest.Invoke(cc, db, "vote", "0007", "02")
	if err != nil {
		t.Fatal(err)
	}
	if err := cctest.Commit(db, stub, 1); err != nil {
		t.Fatal(err)
	}
	var p struct {
		Votes int `json:"votes"`
	}
	if err := json.Unmarshal(db.Get(PartyKey(2)).Value, &p); err != nil {
		t.Fatal(err)
	}
	if p.Votes != 1 {
		t.Fatalf("votes = %d, want 1", p.Votes)
	}
	// Second vote by the same voter: no write set beyond nothing.
	stub, err = cctest.Invoke(cc, db, "vote", "0007", "03")
	if err != nil {
		t.Fatal(err)
	}
	if len(stub.RWSet().Writes) != 0 {
		t.Fatalf("double vote produced writes: %+v", stub.RWSet().Writes)
	}
}

func TestCloseElectionStopsVotes(t *testing.T) {
	cc := New()
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err := cctest.Invoke(cc, db, "closeElctn")
	if err != nil {
		t.Fatal(err)
	}
	if err := cctest.Commit(db, stub, 1); err != nil {
		t.Fatal(err)
	}
	stub, err = cctest.Invoke(cc, db, "vote", "0001", "01")
	if err != nil {
		t.Fatal(err)
	}
	if len(stub.RWSet().Writes) != 0 {
		t.Fatal("vote after close produced writes")
	}
}

func TestUnknownFunction(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cctest.Invoke(New(), db, "bogus"); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := cctest.Invoke(New(), db, "vote", "0001"); err == nil {
		t.Error("vote without party accepted")
	}
}

func TestWorkloadProducesValidInvocations(t *testing.T) {
	cc := New()
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewWorkload(1)
	rng := rand.New(rand.NewSource(4))
	votes := 0
	for i := 0; i < 100; i++ {
		inv := gen.Next(rng)
		if inv.Function == "vote" {
			votes++
		}
		if _, err := cctest.Invoke(cc, db, inv.Function, inv.Args...); err != nil {
			t.Fatalf("%s(%v): %v", inv.Function, inv.Args, err)
		}
	}
	if votes < 30 {
		t.Errorf("only %d/100 votes; workload should be vote-dominated", votes)
	}
}
