// Package dv implements the Digital Voting chaincode of the paper
// (§4.3, Table 2): 1000 registered voters, 12 competing parties, an
// election that can be closed, and result counting. Its defining
// property for the study is the very large range reads — the vote
// function scans all 1000 voters and qryParties/seeResults scan all 12
// parties — which makes it the most phantom-prone chaincode and the
// worst case for Fabric++'s reordering (§5.2.3).
package dv

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/chaincode"
	"repro/internal/dist"
	"repro/internal/workload"
)

// Name is the chaincode identifier.
const Name = "dv"

// Voters is the size of the electorate (§4.3).
const Voters = 1000

// Parties is the number of competing parties (§4.3).
const Parties = 12

// electionKey holds the open/closed flag.
const electionKey = "election"

type voterDoc struct {
	VoterID string `json:"voterId"`
	Voted   bool   `json:"voted"`
	Party   string `json:"party,omitempty"`
}

type partyDoc struct {
	PartyID string `json:"partyId"`
	Votes   int    `json:"votes"`
}

type electionDoc struct {
	Open bool `json:"open"`
}

// VoterKey is the world-state key of a voter.
func VoterKey(i int) string { return fmt.Sprintf("voter_%04d", i) }

// PartyKey is the world-state key of a party.
func PartyKey(i int) string { return fmt.Sprintf("party_%02d", i) }

// voterRangeEnd is the exclusive upper bound that covers every voter.
const voterRangeEnd = "voter_~"

// partyRangeEnd is the exclusive upper bound that covers every party.
const partyRangeEnd = "party_~"

// Chaincode is the DV contract.
type Chaincode struct{}

// New returns the contract.
func New() *Chaincode { return &Chaincode{} }

// Name implements chaincode.Chaincode.
func (c *Chaincode) Name() string { return Name }

// Init seeds the electorate, the parties and the open election flag.
func (c *Chaincode) Init(stub *chaincode.Stub) error {
	for v := 0; v < Voters; v++ {
		if err := putJSON(stub, VoterKey(v), &voterDoc{VoterID: fmt.Sprint(v)}); err != nil {
			return err
		}
	}
	for p := 0; p < Parties; p++ {
		if err := putJSON(stub, PartyKey(p), &partyDoc{PartyID: fmt.Sprint(p)}); err != nil {
			return err
		}
	}
	return putJSON(stub, electionKey, &electionDoc{Open: true})
}

// Invoke dispatches the functions of Table 2.
func (c *Chaincode) Invoke(stub *chaincode.Stub, fn string, args []string) error {
	switch fn {
	case "initLedger": // 3xW: election flag + one voter + one party
		if err := putJSON(stub, electionKey, &electionDoc{Open: true}); err != nil {
			return err
		}
		if err := putJSON(stub, VoterKey(0), &voterDoc{VoterID: "0"}); err != nil {
			return err
		}
		return putJSON(stub, PartyKey(0), &partyDoc{PartyID: "0"})
	case "vote": // 1xR, 2xRR, 2xW
		if len(args) < 2 {
			return fmt.Errorf("dv: vote needs voter and party")
		}
		voter, party := args[0], args[1]
		var e electionDoc
		if err := getJSON(stub, electionKey, &e); err != nil {
			return err
		}
		if !e.Open {
			// Election closed: the vote is rejected at the
			// application level but still produces a (read-only)
			// transaction.
			return nil
		}
		// The vote function queries all 1000 voters (double-vote
		// audit) and all 12 parties (§4.3).
		voters, err := stub.GetStateByRange("voter_", voterRangeEnd)
		if err != nil {
			return err
		}
		parties, err := stub.GetStateByRange("party_", partyRangeEnd)
		if err != nil {
			return err
		}
		var vd voterDoc
		for _, kv := range voters {
			if kv.Key == "voter_"+voter {
				if err := json.Unmarshal(kv.Value, &vd); err != nil {
					return err
				}
				break
			}
		}
		if vd.Voted {
			return nil // blocked from casting twice
		}
		vd.VoterID, vd.Voted, vd.Party = voter, true, party
		if err := putJSON(stub, "voter_"+voter, &vd); err != nil {
			return err
		}
		// The party's current tally comes from the range scan above —
		// no extra point read, so the op profile stays 1xR 2xRR 2xW.
		var pd partyDoc
		for _, kv := range parties {
			if kv.Key == "party_"+party {
				if err := json.Unmarshal(kv.Value, &pd); err != nil {
					return err
				}
				break
			}
		}
		pd.PartyID = party
		pd.Votes++
		return putJSON(stub, "party_"+party, &pd)
	case "closeElctn": // 1xR, 1xW
		var e electionDoc
		if err := getJSON(stub, electionKey, &e); err != nil {
			return err
		}
		e.Open = false
		return putJSON(stub, electionKey, &e)
	case "qryParties", "seeResults": // 1xR, 1xRR
		var e electionDoc
		if err := getJSON(stub, electionKey, &e); err != nil {
			return err
		}
		_, err := stub.GetStateByRange("party_", partyRangeEnd)
		return err
	default:
		return fmt.Errorf("dv: unknown function %q", fn)
	}
}

func getJSON(stub *chaincode.Stub, key string, out interface{}) error {
	raw, err := stub.GetState(key)
	if err != nil {
		return err
	}
	if raw == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func putJSON(stub *chaincode.Stub, key string, v interface{}) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return stub.PutState(key, raw)
}

// Functions lists the Table 2 rows for DV.
func Functions() []workload.FunctionInfo {
	return []workload.FunctionInfo{
		{Name: "initLedger", Writes: 3},
		{Name: "vote", Reads: 1, RangeReads: 2, Writes: 2},
		{Name: "closeElctn", Reads: 1, Writes: 1},
		{Name: "qryParties", Reads: 1, RangeReads: 1},
		{Name: "seeResults", Reads: 1, RangeReads: 1},
	}
}

// NewWorkload returns the DV workload. Votes dominate (the election is
// running); qryParties and seeResults are sprinkled in; closeElctn is
// never issued during the measured window so the election stays open,
// matching the paper's three-minute voting runs.
func NewWorkload(skew float64) workload.Generator {
	z := dist.NewZipfian(Voters, skew)
	return workload.Func(func(rng *rand.Rand) workload.Invocation {
		switch rng.Intn(4) {
		case 0:
			return workload.Invocation{Chaincode: Name, Function: "qryParties"}
		case 1:
			return workload.Invocation{Chaincode: Name, Function: "seeResults"}
		default:
			voter := fmt.Sprintf("%04d", z.Next(rng))
			party := fmt.Sprintf("%02d", rng.Intn(Parties))
			return workload.Invocation{Chaincode: Name, Function: "vote", Args: []string{voter, party}}
		}
	})
}
