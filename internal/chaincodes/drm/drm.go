// Package drm implements the Digital Rights Management chaincode of
// the paper (§4.3, Table 2): artists share artworks on chain, metadata
// is stored in the dot-blockchain-media format, right holders are
// identified by industry-standard IPI IDs, and royalties are computed
// from play counts. 200 artworks and 200 right holders are seeded.
package drm

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/chaincode"
	"repro/internal/dist"
	"repro/internal/workload"
)

// Name is the chaincode identifier.
const Name = "drm"

// Artworks is the seeded artwork count (§4.3).
const Artworks = 200

// Holders is the seeded right-holder count (§4.3).
const Holders = 200

type artworkDoc struct {
	ArtID  string `json:"artId"`
	Format string `json:"format"` // dot blockchain media
	Owner  string `json:"owner"`  // IPI of the right holder
	Plays  int    `json:"plays"`
	Rate   int    `json:"rate"` // royalty per play, in cents
}

type holderDoc struct {
	IPI     string `json:"ipi"`
	Works   int    `json:"works"`
	Revenue int    `json:"revenue"`
}

// ArtKey is an artwork's world-state key.
func ArtKey(i int) string { return fmt.Sprintf("art_%03d", i) }

// HolderKey is a right holder's world-state key.
func HolderKey(i int) string { return fmt.Sprintf("holder_%03d", i) }

// IPI formats a right holder's industry-standard identifier.
func IPI(i int) string { return fmt.Sprintf("IPI-%08d", i) }

// Chaincode is the DRM contract.
type Chaincode struct{}

// New returns the contract.
func New() *Chaincode { return &Chaincode{} }

// Name implements chaincode.Chaincode.
func (c *Chaincode) Name() string { return Name }

// Init seeds the artworks and right holders.
func (c *Chaincode) Init(stub *chaincode.Stub) error {
	for h := 0; h < Holders; h++ {
		if err := putJSON(stub, HolderKey(h), &holderDoc{IPI: IPI(h)}); err != nil {
			return err
		}
	}
	for a := 0; a < Artworks; a++ {
		doc := &artworkDoc{
			ArtID:  fmt.Sprint(a),
			Format: "dotBC",
			Owner:  IPI(a % Holders),
			Rate:   1 + a%9,
		}
		if err := putJSON(stub, ArtKey(a), doc); err != nil {
			return err
		}
	}
	return nil
}

// Invoke dispatches the functions of Table 2.
func (c *Chaincode) Invoke(stub *chaincode.Stub, fn string, args []string) error {
	switch fn {
	case "initLedger": // 2xW
		if err := putJSON(stub, HolderKey(0), &holderDoc{IPI: IPI(0)}); err != nil {
			return err
		}
		return putJSON(stub, ArtKey(0), &artworkDoc{ArtID: "0", Format: "dotBC", Owner: IPI(0)})
	case "create": // 1xR, 2xW: register a new artwork for a holder
		art, holder, err := artHolderArgs(args)
		if err != nil {
			return err
		}
		var h holderDoc
		if err := getJSON(stub, HolderKey(holder), &h); err != nil {
			return err
		}
		h.IPI = IPI(holder)
		h.Works++
		if err := putJSON(stub, HolderKey(holder), &h); err != nil {
			return err
		}
		return putJSON(stub, ArtKey(art), &artworkDoc{
			ArtID: fmt.Sprint(art), Format: "dotBC", Owner: IPI(holder), Rate: 1,
		})
	case "play": // 2xR, 1xW: bump the play count
		art, holder, err := artHolderArgs(args)
		if err != nil {
			return err
		}
		var a artworkDoc
		if err := getJSON(stub, ArtKey(art), &a); err != nil {
			return err
		}
		var h holderDoc
		if err := getJSON(stub, HolderKey(holder), &h); err != nil {
			return err
		}
		a.Plays++
		return putJSON(stub, ArtKey(art), &a)
	case "queryRghts": // 2xR
		art, holder, err := artHolderArgs(args)
		if err != nil {
			return err
		}
		if _, err := stub.GetState(ArtKey(art)); err != nil {
			return err
		}
		_, err = stub.GetState(HolderKey(holder))
		return err
	case "viewMetaData": // 1xR
		art, err := artArg(args)
		if err != nil {
			return err
		}
		_, err = stub.GetState(ArtKey(art))
		return err
	case "calcRevenue": // 1xRR*: all artworks of one holder
		if len(args) < 1 {
			return fmt.Errorf("drm: calcRevenue needs holder IPI")
		}
		if stub.SupportsRichQueries() {
			_, err := stub.GetQueryResult(fmt.Sprintf(`{"owner":%q}`, args[0]))
			return err
		}
		// LevelDB fallback: checked scan over all artworks.
		_, err := stub.GetStateByRange("art_", "art_~")
		return err
	default:
		return fmt.Errorf("drm: unknown function %q", fn)
	}
}

func artArg(args []string) (int, error) {
	if len(args) < 1 {
		return 0, fmt.Errorf("drm: missing artwork argument")
	}
	var a int
	if _, err := fmt.Sscanf(args[0], "%d", &a); err != nil || a < 0 {
		return 0, fmt.Errorf("drm: bad artwork %q", args[0])
	}
	return a % Artworks, nil
}

func artHolderArgs(args []string) (int, int, error) {
	a, err := artArg(args)
	if err != nil {
		return 0, 0, err
	}
	if len(args) < 2 {
		return 0, 0, fmt.Errorf("drm: missing holder argument")
	}
	var h int
	if _, err := fmt.Sscanf(args[1], "%d", &h); err != nil || h < 0 {
		return 0, 0, fmt.Errorf("drm: bad holder %q", args[1])
	}
	return a, h % Holders, nil
}

func getJSON(stub *chaincode.Stub, key string, out interface{}) error {
	raw, err := stub.GetState(key)
	if err != nil {
		return err
	}
	if raw == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func putJSON(stub *chaincode.Stub, key string, v interface{}) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return stub.PutState(key, raw)
}

// Functions lists the Table 2 rows for DRM.
func Functions() []workload.FunctionInfo {
	return []workload.FunctionInfo{
		{Name: "initLedger", Writes: 2},
		{Name: "create", Reads: 1, Writes: 2},
		{Name: "play", Reads: 2, Writes: 1},
		{Name: "queryRghts", Reads: 2},
		{Name: "viewMetaData", Reads: 1},
		{Name: "calcRevenue", RangeReads: 1, Unchecked: true},
	}
}

// NewWorkload returns the DRM workload: a uniform mix of the five
// post-init functions; artworks are drawn with the given Zipfian skew.
func NewWorkload(skew float64) workload.Generator {
	z := dist.NewZipfian(Artworks, skew)
	return workload.Func(func(rng *rand.Rand) workload.Invocation {
		art := z.Next(rng)
		holder := art % Holders
		switch rng.Intn(5) {
		case 0:
			return workload.Invocation{Chaincode: Name, Function: "create",
				Args: []string{fmt.Sprint(art), fmt.Sprint(holder)}}
		case 1:
			return workload.Invocation{Chaincode: Name, Function: "play",
				Args: []string{fmt.Sprint(art), fmt.Sprint(holder)}}
		case 2:
			return workload.Invocation{Chaincode: Name, Function: "queryRghts",
				Args: []string{fmt.Sprint(art), fmt.Sprint(holder)}}
		case 3:
			return workload.Invocation{Chaincode: Name, Function: "viewMetaData",
				Args: []string{fmt.Sprint(art)}}
		default:
			return workload.Invocation{Chaincode: Name, Function: "calcRevenue",
				Args: []string{IPI(holder)}}
		}
	})
}
