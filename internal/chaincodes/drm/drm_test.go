package drm

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/cctest"
	"repro/internal/statedb"
)

func TestInitSeedsCatalog(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != Artworks+Holders {
		t.Fatalf("seeded %d keys, want %d", db.Len(), Artworks+Holders)
	}
}

func TestTable2OpCounts(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.CouchDB)
	if err != nil {
		t.Fatal(err)
	}
	argsFor := map[string][]string{
		"create":       {"5", "5"},
		"play":         {"9", "9"},
		"queryRghts":   {"3", "3"},
		"viewMetaData": {"2"},
		"calcRevenue":  {IPI(4)},
	}
	for _, info := range Functions() {
		stub, err := cctest.Invoke(New(), db, info.Name, argsFor[info.Name]...)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if err := cctest.CheckOps(info, stub); err != nil {
			t.Error(err)
		}
	}
}

func TestPlayIncrementsCount(t *testing.T) {
	cc := New()
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		stub, err := cctest.Invoke(cc, db, "play", "11", "11")
		if err != nil {
			t.Fatal(err)
		}
		if err := cctest.Commit(db, stub, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	var a struct {
		Plays int `json:"plays"`
	}
	if err := json.Unmarshal(db.Get(ArtKey(11)).Value, &a); err != nil {
		t.Fatal(err)
	}
	if a.Plays != 4 {
		t.Fatalf("plays = %d, want 4", a.Plays)
	}
}

func TestCalcRevenueRichQueryMatchesOwner(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.CouchDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err := cctest.Invoke(New(), db, "calcRevenue", IPI(7))
	if err != nil {
		t.Fatal(err)
	}
	rqs := stub.RWSet().RangeQueries
	if len(rqs) != 1 || !rqs[0].Unchecked {
		t.Fatal("calcRevenue on CouchDB should be an unchecked rich query")
	}
	// Holder 7 owns artworks 7 (200 artworks, 200 holders, owner = a % Holders).
	if len(rqs[0].Reads) != 1 {
		t.Fatalf("rich query matched %d artworks, want 1", len(rqs[0].Reads))
	}
}

func TestCalcRevenueFallbackOnLevelDB(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err := cctest.Invoke(New(), db, "calcRevenue", IPI(7))
	if err != nil {
		t.Fatal(err)
	}
	rqs := stub.RWSet().RangeQueries
	if len(rqs) != 1 || rqs[0].Unchecked {
		t.Fatal("calcRevenue on LevelDB should be a checked range scan")
	}
	if len(rqs[0].Reads) != Artworks {
		t.Fatalf("fallback scanned %d artworks, want %d", len(rqs[0].Reads), Artworks)
	}
}

func TestCreateUpdatesHolder(t *testing.T) {
	cc := New()
	db, err := cctest.InitState(cc, statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	stub, err := cctest.Invoke(cc, db, "create", "42", "13")
	if err != nil {
		t.Fatal(err)
	}
	if err := cctest.Commit(db, stub, 1); err != nil {
		t.Fatal(err)
	}
	var h struct {
		Works int `json:"works"`
	}
	if err := json.Unmarshal(db.Get(HolderKey(13)).Value, &h); err != nil {
		t.Fatal(err)
	}
	if h.Works != 1 {
		t.Fatalf("works = %d, want 1", h.Works)
	}
}

func TestArgumentValidation(t *testing.T) {
	db, err := cctest.InitState(New(), statedb.LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	for fn, args := range map[string][]string{
		"create":       {"1"},
		"play":         {},
		"queryRghts":   {"bad", "1"},
		"viewMetaData": {},
		"calcRevenue":  {},
		"nope":         {},
	} {
		if _, err := cctest.Invoke(New(), db, fn, args...); err == nil {
			t.Errorf("%s(%v) accepted", fn, args)
		}
	}
}

func TestWorkloadProducesValidInvocations(t *testing.T) {
	cc := New()
	db, err := cctest.InitState(cc, statedb.CouchDB)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewWorkload(1)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		inv := gen.Next(rng)
		if _, err := cctest.Invoke(cc, db, inv.Function, inv.Args...); err != nil {
			t.Fatalf("%s(%v): %v", inv.Function, inv.Args, err)
		}
	}
}
