package hyperledgerlab

import (
	"testing"
	"time"

	"repro/internal/adaptive"
	"repro/internal/fabric"
)

// Ablation benchmarks: the design knobs this reproduction adds on top
// of the paper's experiments. Each reports the run's failure
// percentage and latency as benchmark metrics.

func ablationCfg(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 20 * time.Second
	cfg.Drain = 20 * time.Second
	cfg.Chaincode = EHRChaincode()
	cfg.Workload = EHRWorkload(1)
	return cfg
}

func reportRun(b *testing.B, rep Report) {
	b.ReportMetric(rep.FailurePct, "fail%")
	b.ReportMetric(rep.AvgLatency.Seconds()*1000, "lat_ms")
	b.ReportMetric(rep.Throughput, "tps")
}

// BenchmarkAblationAdaptiveBlockSize compares a static block size with
// the §6.2 adaptive controller under a 20→150 tps rate ramp.
func BenchmarkAblationAdaptiveBlockSize(b *testing.B) {
	for _, mode := range []string{"static", "adaptive"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var last Report
			for i := 0; i < b.N; i++ {
				cfg := ablationCfg(int64(i + 1))
				cfg.Duration = 60 * time.Second
				cfg.Drain = 30 * time.Second
				cfg.BlockSize = 10
				cfg.RateSchedule = []fabric.RatePhase{
					{Duration: 30 * time.Second, Rate: 20},
					{Duration: 30 * time.Second, Rate: 150},
				}
				nw, err := NewNetwork(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if mode == "adaptive" {
					adaptive.Attach(nw, adaptive.DefaultConfig())
				}
				last = nw.Run()
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkAblationReadOnlySubmission measures recommendation #4:
// answering read-only transactions at endorsement instead of ordering
// them.
func BenchmarkAblationReadOnlySubmission(b *testing.B) {
	for _, mode := range []string{"submit-all", "skip-readonly"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var last Report
			for i := 0; i < b.N; i++ {
				cfg := ablationCfg(int64(i + 1))
				cfg.SkipReadOnlySubmission = mode == "skip-readonly"
				nw, err := NewNetwork(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = nw.Run()
			}
			reportRun(b, last)
			b.ReportMetric(float64(last.ServedReads), "served_reads")
		})
	}
}

// BenchmarkAblationClientCheck measures the optional client-side
// endorsement consistency check of §2 step 3.
func BenchmarkAblationClientCheck(b *testing.B) {
	for _, mode := range []string{"no-check", "client-check"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var last Report
			for i := 0; i < b.N; i++ {
				cfg := ablationCfg(int64(i + 1))
				cfg.ClientCheck = mode == "client-check"
				nw, err := NewNetwork(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = nw.Run()
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkAblationConsensus compares the three ordering-service
// consensus substrates.
func BenchmarkAblationConsensus(b *testing.B) {
	for _, cons := range []string{"solo", "kafka", "raft"} {
		cons := cons
		b.Run(cons, func(b *testing.B) {
			var last Report
			for i := 0; i < b.N; i++ {
				cfg := ablationCfg(int64(i + 1))
				cfg.Consensus = cons
				nw, err := NewNetwork(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = nw.Run()
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkAblationDatabase compares the state-database backends on
// the same load (the Fig 11 knob as a microbenchmark).
func BenchmarkAblationDatabase(b *testing.B) {
	for _, kind := range []struct {
		name string
		kind interface{ String() string }
	}{{"couchdb", CouchDB}, {"leveldb", LevelDB}} {
		kind := kind
		b.Run(kind.name, func(b *testing.B) {
			var last Report
			for i := 0; i < b.N; i++ {
				cfg := ablationCfg(int64(i + 1))
				if kind.name == "leveldb" {
					cfg.DBKind = LevelDB
				}
				nw, err := NewNetwork(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = nw.Run()
			}
			reportRun(b, last)
		})
	}
}
