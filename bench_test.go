// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§5). Each benchmark runs the corresponding experiment on
// a reduced regime (shorter virtual window, one seed) and prints the
// resulting rows once, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole study. For the paper's full regime use the CLI:
//
//	go run ./cmd/hyperlab -exp all -full
package hyperledgerlab

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// benchOptions is a reduced regime so the full suite completes in
// minutes: 12 virtual seconds, one seed, a 10k-key genChain. Sweeps
// fan their (config, seed) cells across all cores (Parallelism 0);
// the printed tables are identical to a sequential run.
func benchOptions() core.Options {
	return core.Options{
		Duration:    12 * time.Second,
		Drain:       18 * time.Second,
		Seeds:       []int64{1},
		GenKeys:     10000,
		Parallelism: 0, // one worker per CPU
	}
}

var printedMu sync.Mutex
var printed = map[string]bool{}

// runExperiment executes the experiment once per benchmark iteration
// and logs its table on the first run.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := core.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		out, err := exp.Run(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		printedMu.Lock()
		if !printed[id] {
			printed[id] = true
			// Straight to stdout: the tables are the artifact this
			// suite produces, and test-log buffers may be truncated.
			fmt.Fprintf(os.Stdout, "\n%s — %s\n%s\n", exp.ID, exp.Title, out)
		}
		printedMu.Unlock()
	}
}

func BenchmarkTable2_ChaincodeOps(b *testing.B)         { runExperiment(b, "table2") }
func BenchmarkTable4_DatabaseType(b *testing.B)         { runExperiment(b, "table4") }
func BenchmarkFig4_BestBlockSize(b *testing.B)          { runExperiment(b, "fig4") }
func BenchmarkFig5_MinMaxFailures(b *testing.B)         { runExperiment(b, "fig5") }
func BenchmarkFig6_LatencyThroughput(b *testing.B)      { runExperiment(b, "fig6") }
func BenchmarkFig7_MVCCvsBlockSize(b *testing.B)        { runExperiment(b, "fig7") }
func BenchmarkFig8_MVCCvsRate(b *testing.B)             { runExperiment(b, "fig8") }
func BenchmarkFig9_EndorsementVsBlockSize(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkFig10_PhantomVsBlockSize(b *testing.B)    { runExperiment(b, "fig10") }
func BenchmarkFig11_DatabaseTypeEHR(b *testing.B)       { runExperiment(b, "fig11") }
func BenchmarkFig12_Organizations(b *testing.B)         { runExperiment(b, "fig12") }
func BenchmarkFig13_Policies(b *testing.B)              { runExperiment(b, "fig13") }
func BenchmarkFig14_Workloads(b *testing.B)             { runExperiment(b, "fig14") }
func BenchmarkFig15_Skew(b *testing.B)                  { runExperiment(b, "fig15") }
func BenchmarkFig16_NetworkDelay(b *testing.B)          { runExperiment(b, "fig16") }
func BenchmarkFig17_FabricPPBlockSize(b *testing.B)     { runExperiment(b, "fig17") }
func BenchmarkFig18_FabricPPChaincodes(b *testing.B)    { runExperiment(b, "fig18") }
func BenchmarkFig19_FabricPPWorkloads(b *testing.B)     { runExperiment(b, "fig19") }
func BenchmarkFig20_Streamchain(b *testing.B)           { runExperiment(b, "fig20") }
func BenchmarkFig21_StreamchainThroughput(b *testing.B) { runExperiment(b, "fig21") }
func BenchmarkFig22_StreamchainWorkloads(b *testing.B)  { runExperiment(b, "fig22") }
func BenchmarkFig23_Ramdisk(b *testing.B)               { runExperiment(b, "fig23") }
func BenchmarkFig24_FabricSharp(b *testing.B)           { runExperiment(b, "fig24") }
func BenchmarkFig25_FabricSharpWorkloads(b *testing.B)  { runExperiment(b, "fig25") }
func BenchmarkFig26_AllSystems(b *testing.B)            { runExperiment(b, "fig26") }

// BenchmarkRetryPolicies_Goodput exercises the client retry
// subsystem: the policy × skew × block-size sweep with its goodput,
// amplification and end-to-end-latency columns.
func BenchmarkRetryPolicies_Goodput(b *testing.B) { runExperiment(b, "retry-policies") }

// BenchmarkRetryCoordination_Backpressure exercises the orderer-driven
// backpressure subsystem: the coordination ladder × block size ×
// variant sweep with its paced/hint columns.
func BenchmarkRetryCoordination_Backpressure(b *testing.B) {
	runExperiment(b, "retry-coordination")
}

// BenchmarkScale_CohortsChannels exercises the million-client scale
// machinery: the client-population × channel-count sweep driven by
// cohort drivers, cross-channel legs included.
func BenchmarkScale_CohortsChannels(b *testing.B) { runExperiment(b, "scale") }

// BenchmarkMillionClients_SingleRun measures one 10^6-client run on 4
// channels — the largest single cell the scale experiment holds — to
// track the cohort layer's per-run cost in isolation.
func BenchmarkMillionClients_SingleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Seed = int64(i + 1)
		cfg.Duration = 12 * time.Second
		cfg.Drain = 18 * time.Second
		cfg.Chaincode = EHRChaincode()
		cfg.Workload = EHRWorkload(2)
		cfg.Rate = 200
		cfg.Clients = 1_000_000
		cfg.CohortSize = 10_000
		cfg.Channels = 4
		cfg.CrossChannel = 0.1
		nw, err := NewNetwork(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep := nw.Run()
		if rep.Total == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkExpAllParallelism measures how the harness's wall-clock
// for a full sweep scales with the worker-pool size (see also
// BenchmarkBlockSizeSweepParallelism in internal/core for the raw
// sweep primitive).
func BenchmarkExpAllParallelism(b *testing.B) {
	for _, p := range []int{1, 0} { // sequential vs all cores
		name := fmt.Sprintf("parallel=%d", p)
		if p == 0 {
			name = "parallel=numcpu"
		}
		b.Run(name, func(b *testing.B) {
			exp, err := core.Lookup("fig4")
			if err != nil {
				b.Fatal(err)
			}
			o := benchOptions()
			o.Parallelism = p
			for i := 0; i < b.N; i++ {
				if _, err := exp.Run(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSingleRun_EHR measures one end-to-end simulated run (the
// harness's unit of work): a 12-virtual-second EHR experiment.
func BenchmarkSingleRun_EHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Seed = int64(i + 1)
		cfg.Duration = 12 * time.Second
		cfg.Drain = 18 * time.Second
		cfg.Chaincode = EHRChaincode()
		cfg.Workload = EHRWorkload(1)
		nw, err := NewNetwork(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep := nw.Run()
		if rep.Total == 0 {
			b.Fatal("empty run")
		}
	}
}
